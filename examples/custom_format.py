#!/usr/bin/env python
"""Extending the library: write your own storage format in ~60 lines.

Implements "DIA-lite" — a diagonal format storing each populated
off-diagonal as one dense stripe — against the `SparseMatrixFormat`
ABC, registers it with the conversion machinery, validates it with
`verify_format`, and uses it in the CG solver.  Everything downstream
(solvers, MatrixMarket I/O, analysis) works immediately.

Run:  python examples/custom_format.py
"""

import numpy as np

from repro.formats import register_format, verify_format
from repro.formats.base import SparseMatrixFormat, index_nbytes
from repro.formats.coo import COOMatrix
from repro.matrices import off_diagonal_sparse
from repro.solvers import conjugate_gradient


class DIALiteMatrix(SparseMatrixFormat):
    """Diagonal storage: one dense stripe per populated offset."""

    name = "DIA-lite"

    def __init__(self, offsets, stripes, shape, nnz):
        super().__init__(shape, nnz=nnz, dtype=stripes.dtype)
        self._offsets = offsets      # (ndiags,) sorted offsets
        self._stripes = stripes      # (ndiags, nrows): stripe[d][i] = A[i, i+off]

    @classmethod
    def from_coo(cls, coo: COOMatrix, **kwargs):
        if kwargs:
            raise TypeError(f"unexpected kwargs: {sorted(kwargs)}")
        offs = np.unique(coo.cols - coo.rows)
        stripes = np.zeros((offs.shape[0], coo.nrows), dtype=coo.dtype)
        slot = np.searchsorted(offs, coo.cols - coo.rows)
        stripes[slot, coo.rows] = coo.values
        return cls(offs, stripes, coo.shape, coo.nnz)

    def spmv(self, x, out=None):
        x = self.check_rhs(x)
        y = self.alloc_result(out)
        acc = np.zeros(self.nrows, dtype=np.float64)
        for d, stripe in zip(self._offsets, self._stripes):
            lo = max(0, -d)
            hi = min(self.nrows, self.ncols - d)
            if hi > lo:
                acc[lo:hi] += stripe[lo:hi].astype(np.float64) * x[lo + d : hi + d]
        y[:] = acc.astype(self.dtype)
        return y

    def to_coo(self):
        rows_, cols_, vals_ = [], [], []
        for d, stripe in zip(self._offsets, self._stripes):
            i = np.nonzero(stripe)[0]
            i = i[(i + d >= 0) & (i + d < self.ncols)]
            rows_.append(i)
            cols_.append(i + d)
            vals_.append(stripe[i])
        rows = np.concatenate(rows_) if rows_ else np.empty(0, np.int64)
        cols = np.concatenate(cols_) if cols_ else np.empty(0, np.int64)
        vals = np.concatenate(vals_) if vals_ else np.empty(0, self.dtype)
        return COOMatrix(rows, cols, vals, self.shape, sum_duplicates=False)

    def memory_breakdown(self):
        return {
            "val": self._stripes.size * self.value_itemsize,
            "offsets": index_nbytes(self._offsets.size),
        }

    def row_lengths(self):
        return self.to_coo().row_lengths()


def main() -> None:
    register_format(DIALiteMatrix)

    # an SPD diagonal-structured matrix: 2I + symmetric off-diagonals
    n = 400
    base = off_diagonal_sparse(n, np.array([-7, -1, 1, 7]), seed=1)
    sym = COOMatrix(
        np.concatenate([base.rows, base.cols, np.arange(n)]),
        np.concatenate([base.cols, base.rows, np.arange(n)]),
        np.concatenate([0.1 * base.values, 0.1 * base.values, np.full(n, 2.0)]),
        (n, n),
    )

    dia = DIALiteMatrix.from_coo(sym)
    print(f"DIA-lite: {dia._offsets.size} stripes, "
          f"{dia.nbytes} bytes ({dia.nnz} non-zeros)")

    verify_format(dia)  # the ABC contract holds
    print("verify_format: all invariants pass")

    x = np.random.default_rng(0).normal(size=n)
    assert np.allclose(dia.spmv(x), sym.spmv(x))
    print("spMVM matches the COO oracle")

    b = np.ones(n)
    res = conjugate_gradient(dia, b, tol=1e-10)
    print(f"CG through the custom format: converged={res.converged} "
          f"in {res.iterations} iterations")
    assert res.converged
    print("OK")


if __name__ == "__main__":
    main()
