#!/usr/bin/env python
"""The Sect. II-B performance model: is your matrix worth a GPU?

Evaluates Eqs. (1)-(4) for the paper suite and for a user-style sweep
of Nnzr values, reproducing the paper's conclusions: HMEp and sAMG are
poor GPGPU candidates once PCIe transfers are charged; the DLR/UHBR
class is safe.

Run:  python examples/performance_model.py
"""

from repro.matrices import SUITE
from repro.perfmodel import (
    analyse,
    code_balance_dp,
    cpu_crs_gflops,
    nnzr_lower_bound_10pct,
    nnzr_upper_bound_50pct,
    predicted_gflops,
)

ALPHAS = {"HMEp": 0.73, "sAMG": 1.0, "DLR1": 0.25, "DLR2": 0.25, "UHBR": 0.25}


def main() -> None:
    print("Eq. (1): kernel-only performance, DP, ECC on (91 GB/s)")
    print(f"{'matrix':6s} {'Nnzr':>7s} {'alpha':>6s} {'B [B/F]':>8s} {'GF/s':>6s}")
    for key, spec in SUITE.items():
        a = ALPHAS[key]
        b = code_balance_dp(a, spec.paper_nnzr)
        g = predicted_gflops(91.0, a, spec.paper_nnzr)
        print(f"{key:6s} {spec.paper_nnzr:7.1f} {a:6.2f} {b:8.2f} {g:6.1f}")

    print("\nEqs. (2)-(3): charge the PCIe transfers (6 GB/s)")
    print(f"{'matrix':6s} {'effective':>9s} {'penalty':>8s} "
          f"{'CPU CRS':>8s} {'verdict':>18s}")
    for key, spec in SUITE.items():
        a = analyse(spec.paper_dim, spec.paper_nnzr, ALPHAS[key])
        cpu = cpu_crs_gflops(0.3 * ALPHAS[key], spec.paper_nnzr)
        verdict = "GPU worthwhile" if a.effective_gflops > cpu else "stay on the CPU"
        print(f"{key:6s} {a.effective_gflops:9.1f} {a.pcie_penalty:8.2f} "
              f"{cpu:8.1f} {verdict:>18s}")

    print("\nEq. (3)/(4) admissibility bounds on Nnzr:")
    for ratio, alpha, label in (
        (20.0, 1.0 / 25.0, "worst case (BGPU ~ 20 BPCI, alpha = 1/Nnzr)"),
        (10.0, 1.0, "best case  (BGPU ~ 10 BPCI, alpha = 1)"),
    ):
        lo = nnzr_upper_bound_50pct(ratio, alpha)
        hi = nnzr_lower_bound_10pct(ratio, alpha)
        print(f"  {label}:")
        print(f"    > 50 % PCIe penalty below Nnzr ~ {lo:5.1f}")
        print(f"    < 10 % PCIe penalty above Nnzr ~ {hi:5.1f}")

    print("\nrule of thumb: matrices with Nnzr below ~25 should stay on "
          "the CPU; above ~80-270 (depending on caching) the PCIe cost "
          "disappears — exactly the paper's conclusion.")


if __name__ == "__main__":
    main()
