#!/usr/bin/env python
"""Quickstart: build a sparse matrix, convert to pJDS, multiply, compare.

Covers the core public API in ~60 lines:

1. assemble a matrix in COO form,
2. convert between storage formats,
3. run spMVM and check the formats agree,
4. inspect the pJDS memory savings,
5. model the kernel on the Fermi-class device.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.formats import COOMatrix, convert
from repro.gpu import C2070, simulate_spmv
from repro.matrices import poisson2d

def main() -> None:
    # 1. assemble: a 2-D Poisson operator plus a few dense rows, so row
    #    lengths are irregular enough for the format comparison to matter
    lap = poisson2d(60, 60)
    n = lap.nrows
    rng = np.random.default_rng(7)
    dense_rows = rng.choice(n, size=5, replace=False)
    extra_r = np.repeat(dense_rows, 200)
    extra_c = rng.integers(0, n, size=extra_r.shape[0])
    coo = COOMatrix(
        np.concatenate([lap.to_coo().rows, extra_r]),
        np.concatenate([lap.to_coo().cols, extra_c]),
        np.concatenate([lap.to_coo().values, rng.normal(size=extra_r.shape[0])]),
        (n, n),
    )
    print(f"matrix: {n} x {n}, {coo.nnz} non-zeros, Nnzr = {coo.avg_row_length:.1f}")

    # 2. convert to the GPU formats
    ellpack = convert(coo, "ELLPACK")
    ellpack_r = convert(coo, "ELLPACK-R")
    pjds = convert(coo, "pJDS", block_rows=32)

    # 3. spMVM agreement across formats
    x = rng.normal(size=n)
    y_ref = coo.spmv(x)
    for m in (ellpack, ellpack_r, pjds):
        assert np.allclose(m.spmv(x), y_ref, atol=1e-10)
    print("spMVM agrees across COO / ELLPACK / ELLPACK-R / pJDS")

    # 4. storage accounting (the Table I 'data reduction' metric)
    red = 100.0 * pjds.data_reduction_vs(ellpack)
    print(f"pJDS stores {pjds.stored_elements} value slots "
          f"vs ELLPACK's {ellpack.stored_elements}  (reduction {red:.1f} %)")
    print(f"pJDS overhead vs non-zeros only: "
          f"{100 * pjds.overhead_vs_minimum():.3f} %")

    # 5. device model: what would a Fermi C2070 do with each format?
    dev = C2070(ecc=True)
    for m in (ellpack_r, pjds):
        rep = simulate_spmv(m, dev, "DP")
        print(f"{m.name:10s} modelled at {rep.gflops:5.1f} GF/s "
              f"(balance {rep.code_balance:.2f} bytes/flop, "
              f"alpha {rep.effective_alpha:.2f})")


if __name__ == "__main__":
    main()
