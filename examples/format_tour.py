#!/usr/bin/env python
"""Format tour: the Fig. 1 derivation of pJDS, step by step.

Builds the same kind of small irregular matrix as Fig. 1, shows the
compress / sort / pad pipeline, and prints the resulting device arrays
(`val`, `col_idx`, `col_start`, `rowmax`) next to the ELLPACK ones.

Run:  python examples/format_tour.py
"""

import numpy as np

from repro.core import PJDSMatrix
from repro.formats import COOMatrix, ELLPACKMatrix, ELLPACKRMatrix


def show_matrix(title: str, dense: np.ndarray) -> None:
    print(f"\n{title}")
    for row in dense:
        print("  " + " ".join("x" if v else "." for v in row))


def main() -> None:
    # an 8x8 matrix with row lengths 2,4,3,1,2,3,2,1 (Fig. 1 flavour)
    rows = [0, 0, 1, 1, 1, 1, 2, 2, 2, 3, 4, 4, 5, 5, 5, 6, 6, 7]
    cols = [0, 3, 1, 2, 4, 7, 0, 2, 5, 6, 1, 3, 2, 4, 6, 0, 5, 7]
    vals = np.arange(1.0, len(rows) + 1.0)
    coo = COOMatrix(rows, cols, vals, (8, 8))
    show_matrix("source matrix (x = non-zero):", coo.todense() != 0)

    br = 4  # Fig. 1 uses a blocking size of 4
    ell = ELLPACKMatrix.from_coo(coo, row_pad=br)
    ellr = ELLPACKRMatrix.from_coo(coo, row_pad=br)
    pjds = PJDSMatrix.from_coo(coo, block_rows=br)

    print("\nstep 1 - compress (ELLPACK): pad every row to the global "
          f"maximum ({ell.width}) -> {ell.stored_elements} stored slots")
    print(f"  ELLPACK-R adds rowmax[] = {ellr.rowmax[:8].tolist()} so "
          "threads stop at their row end (storage unchanged)")

    print("\nstep 2 - sort: stable descending by row length")
    print(f"  permutation (stored -> original row): {pjds.permutation.perm.tolist()}")
    print(f"  sorted lengths: {pjds.rowmax.tolist()}")

    print(f"\nstep 3 - pad in blocks of br = {br}: "
          f"padded lengths {pjds.padded_lengths.tolist()}")
    print(f"  pJDS stores {pjds.total_slots} slots "
          f"({coo.nnz} non-zeros + {pjds.total_slots - coo.nnz} padding)")
    red = 100 * pjds.data_reduction_vs(ell)
    print(f"  data reduction vs ELLPACK: {red:.1f} %")

    print("\npJDS device arrays (Listing 2 inputs):")
    print(f"  col_start = {pjds.col_start.tolist()}")
    print(f"  val       = {np.array2string(np.asarray(pjds.val), precision=0)}")
    print(f"  col_idx   = {pjds.col_idx.tolist()}")

    # the permuted-basis contract of Sect. II-A
    x = np.arange(1.0, 9.0)
    y = coo.spmv(x)
    xp = pjds.permutation.to_permuted(x)
    yp = pjds.spmv_permuted(xp)
    assert np.allclose(pjds.permutation.to_original(yp), y)
    print("\npermuted-basis spMVM verified against the COO reference")


if __name__ == "__main__":
    main()
