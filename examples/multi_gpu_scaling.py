#!/usr/bin/env python
"""Multi-GPGPU strong scaling: the Sect. III pipeline on DLR1.

Walks through the full distributed stack:

1. partition the matrix into row blocks balanced by non-zeros,
2. derive the communication plan (halo lists, local/nonlocal split),
3. *execute* the distributed spMVM with real threads and verify it,
4. simulate one iteration per mode and print the Fig. 4 timeline,
5. sweep node counts to regenerate the Fig. 5a series.

Run:  python examples/multi_gpu_scaling.py
"""

import numpy as np

from repro.distributed import (
    DIRAC_IB,
    KernelCost,
    build_plan,
    distributed_spmv,
    partition_rows,
    render_timeline,
    simulate_mode,
    stats_from_plan,
    strong_scaling,
    single_gpu_effective_gflops,
)
from repro.formats import CSRMatrix
from repro.gpu import C2050
from repro.matrices import generate

SCALE = 32
NODES = [1, 2, 4, 8, 16, 24, 32]


def main() -> None:
    coo = generate("DLR1", scale=SCALE)
    csr = CSRMatrix.from_coo(coo)
    print(f"DLR1-like: {csr.nrows} rows, {csr.nnz} non-zeros "
          f"(1/{SCALE} of the paper dimension)")

    # --- functional check: 8 ranks as real threads ------------------
    part = partition_rows(csr.nrows, 8, row_weights=csr.row_lengths())
    plan = build_plan(csr, part)
    x = np.random.default_rng(0).normal(size=csr.nrows)
    y = distributed_spmv(plan, x)
    assert np.allclose(y, csr.spmv(x), atol=1e-9)
    vol = sum(r.halo_size for r in plan.ranks)
    print(f"threaded 8-rank spMVM verified; total halo: {vol} elements")

    # --- one simulated task-mode iteration + Fig. 4 timeline --------
    device = C2050(ecc=True)
    cost = KernelCost.from_alpha(0.25)
    stats = stats_from_plan(plan, itemsize=8, workload_scale=SCALE)
    res = simulate_mode("task", stats, device, DIRAC_IB, cost)
    print(f"\ntask mode, 8 nodes: {res.gflops:.1f} GF/s "
          f"({res.iteration_seconds * 1e6:.0f} us/iteration)")
    print(render_timeline(res.timeline, rank=res.slowest_rank))

    # --- Fig. 5a: strong scaling sweep -------------------------------
    series = strong_scaling(
        coo, NODES, device=device, cost=cost,
        workload_scale=SCALE, matrix_name="DLR1",
    )
    ref = single_gpu_effective_gflops(
        csr.nnz * SCALE, csr.nrows * SCALE, device, cost
    )
    print(f"\nstrong scaling (GF/s); single-GPU reference {ref:.1f} GF/s:")
    print("nodes   " + " ".join(f"{n:7d}" for n in NODES))
    for mode in ("vector", "naive", "task"):
        row = " ".join(f"{p.gflops:7.1f}" for p in series.series(mode))
        print(f"{mode:7s} {row}")
    base = series.series("task")[0]
    eff = series.series("task")[-1].efficiency(base)
    print(f"task-mode parallel efficiency at 32 nodes: {100 * eff:.0f} % "
          f"(DLR1 is communication-bound at scale — the paper's point)")


if __name__ == "__main__":
    main()
