#!/usr/bin/env python
"""HMEp workload: ground state of a Holstein-Hubbard-like Hamiltonian.

The paper's HMEp matrix comes from exact diagonalisation of a
quantum-mechanical model; the consuming application is a sparse
eigensolver whose runtime is dominated by spMVM (Sect. I).  This
example reproduces that pipeline end to end:

1. generate the HMEp-like matrix and symmetrise it (a Hamiltonian),
2. convert to pJDS and enter the permuted basis once,
3. run Lanczos for the lowest eigenvalues ("ground state energy"),
4. verify against a dense reference at this reduced scale,
5. count the spMVM invocations — the quantity the paper optimises.

Run:  python examples/eigensolver_hmep.py
"""

import numpy as np

from repro.formats import COOMatrix, convert
from repro.matrices import generate
from repro.solvers import lanczos


def symmetrise(coo: COOMatrix) -> COOMatrix:
    """H = (A + A^T) / 2 — Hamiltonians are Hermitian."""
    t = coo.transpose()
    return COOMatrix(
        np.concatenate([coo.rows, t.rows]),
        np.concatenate([coo.cols, t.cols]),
        np.concatenate([0.5 * coo.values, 0.5 * t.values]),
        coo.shape,
    )


def main() -> None:
    # ~1500-row instance (the full HMEp is 6.2M; physics is the same)
    coo = generate("HMEp", scale=4096, seed=3)
    ham = symmetrise(coo)
    print(f"Hamiltonian: {ham.nrows} x {ham.ncols}, {ham.nnz} non-zeros, "
          f"Nnzr = {ham.avg_row_length:.1f}")

    pjds = convert(ham, "pJDS", block_rows=32)
    print(f"pJDS storage: {pjds.nbytes / 1024:.0f} kB "
          f"({100 * pjds.overhead_vs_minimum():.2f} % padding)")

    result = lanczos(pjds, num_eigenvalues=3, tol=1e-10, max_iter=300)
    print(f"Lanczos converged in {result.iterations} iterations "
          f"({result.spmv_count} spMVM calls)")
    print(f"lowest eigenvalues: {np.array2string(result.eigenvalues, precision=6)}")
    print(f"ground state energy: {result.ground_state_energy:.8f}")
    print(f"residual norms: {np.array2string(result.residual_norms, precision=2)}")

    # dense cross-check (only possible at this reduced scale)
    dense_vals = np.linalg.eigvalsh(ham.todense())[:3]
    err = np.abs(result.eigenvalues - dense_vals).max()
    print(f"dense reference: {np.array2string(dense_vals, precision=6)} "
          f"(max deviation {err:.2e})")
    assert err < 1e-6, "Lanczos disagrees with the dense reference"
    print("OK")


if __name__ == "__main__":
    main()
