#!/usr/bin/env python
"""Spectral density of a Holstein-Hubbard-like Hamiltonian via KPM.

The Kernel Polynomial Method is the archetypal spMVM-bound algorithm
in the HMEp matrix's home field: thousands of Chebyshev matrix
applications, no factorisations.  This example estimates the density
of states of the symmetrised HMEp matrix through the pJDS
permuted-basis operator and draws it as an ASCII plot.

Run:  python examples/spectral_density.py
"""

import numpy as np

from repro.formats import COOMatrix, convert
from repro.matrices import generate
from repro.solvers import kpm_spectral_density


def symmetrise(coo: COOMatrix) -> COOMatrix:
    t = coo.transpose()
    return COOMatrix(
        np.concatenate([coo.rows, t.rows]),
        np.concatenate([coo.cols, t.cols]),
        np.concatenate([0.5 * coo.values, 0.5 * t.values]),
        coo.shape,
    )


def ascii_plot(x: np.ndarray, y: np.ndarray, *, rows: int = 14, cols: int = 72) -> str:
    """Minimal terminal line plot."""
    ymax = float(y.max())
    grid = [[" "] * cols for _ in range(rows)]
    for xi, yi in zip(np.linspace(0, cols - 1, x.size).astype(int), y):
        h = int(round((rows - 1) * max(yi, 0.0) / ymax))
        for r in range(h + 1):
            grid[rows - 1 - r][xi] = "#"
    lines = ["".join(row) for row in grid]
    lines.append("-" * cols)
    lines.append(f"{x[0]:<12.2f}{'E':^{cols - 24}s}{x[-1]:>12.2f}")
    return "\n".join(lines)


def main() -> None:
    coo = generate("HMEp", scale=1024, seed=5)
    ham = symmetrise(coo)
    pjds = convert(ham, "pJDS", block_rows=32)
    print(f"Hamiltonian: {ham.nrows} x {ham.ncols}, {ham.nnz} non-zeros")

    result = kpm_spectral_density(
        pjds, num_moments=160, num_vectors=10, num_points=240, seed=2
    )
    lo, hi = result.spectrum_bounds
    print(f"estimated spectrum: [{lo:.3f}, {hi:.3f}] "
          f"({result.spmv_count} spMVM calls)")
    norm = np.trapezoid(result.density, result.energies)
    print(f"density integral: {norm:.4f} (should be ~1)")
    print(f"mean energy: {result.mean_energy():.4f}")
    print()
    print("density of states:")
    print(ascii_plot(result.energies, result.density))

    # cross-check against the exact spectrum at this reduced size
    exact = np.linalg.eigvalsh(ham.todense())
    hist, edges = np.histogram(exact, bins=24, density=True)
    centres = 0.5 * (edges[:-1] + edges[1:])
    kpm_at = np.interp(centres, result.energies, result.density)
    corr = np.corrcoef(hist, kpm_at)[0, 1]
    print(f"\ncorrelation with the exact eigenvalue histogram: {corr:.3f}")
    assert corr > 0.8, "KPM estimate diverges from the exact spectrum"
    print("OK")


if __name__ == "__main__":
    main()
