"""Wall-clock benchmarks of the vectorised NumPy spMVM kernels.

These are *host* measurements (the GPU numbers come from the device
model), but the relative shape is informative: pJDS sweeps fewer
padded slots than ELLPACK, so on strongly irregular matrices the
column-sweep kernel family orders the same way as on the device.

Run as a script (``python benchmarks/bench_kernels.py``) to produce
``BENCH_kernels.json``: engine-bound (autotuned + workspace) kernels
vs the seed kernels, and batched SpMM vs the per-column loop — the
numbers the CI bench-smoke step uploads.  See
``docs/performance.md`` for how to read the fields.
"""

import time

import numpy as np
import pytest

from repro.utils import gflops

from _bench_common import TABLE1_KEYS, emit_table
from _gates import EXIT_OK, GateSet, no_data, split_summary, write_artifact

FORMATS = ("CRS", "ELLPACK", "ELLPACK-R", "JDS", "pJDS", "SELL-C-sigma")


@pytest.fixture(scope="module")
def vectors(suite_coo):
    rng = np.random.default_rng(0)
    return {k: rng.normal(size=suite_coo[k].ncols) for k in TABLE1_KEYS}


@pytest.mark.parametrize("key", TABLE1_KEYS)
@pytest.mark.parametrize("fmt", FORMATS)
def test_bench_spmv(benchmark, suite_formats, vectors, key, fmt):
    m = suite_formats(key, fmt)
    x = vectors[key]
    out = np.zeros(m.nrows)
    benchmark(m.spmv, x, out=out)
    rate = gflops(m.nnz, benchmark.stats["mean"])
    benchmark.extra_info["numpy_gflops"] = round(rate, 4)


@pytest.fixture(scope="module")
def relative_table(suite_formats, vectors):
    """One-shot relative timing table (independent of pytest-benchmark)."""
    import time

    lines = [f"{'matrix':6s} " + " ".join(f"{f:>13s}" for f in FORMATS)]
    rows = {}
    for key in TABLE1_KEYS:
        x = vectors[key]
        cells = []
        rows[key] = {}
        for fmt in FORMATS:
            m = suite_formats(key, fmt)
            out = np.zeros(m.nrows)
            m.spmv(x, out=out)  # warm up
            reps = 3
            t0 = time.perf_counter()
            for _ in range(reps):
                m.spmv(x, out=out)
            dt = (time.perf_counter() - t0) / reps
            rate = gflops(m.nnz, dt)
            rows[key][fmt] = rate
            cells.append(f"{rate:13.3f}")
        lines.append(f"{key:6s} " + " ".join(cells))
    lines.append("(host NumPy GF/s; device numbers come from the GPU model)")
    emit_table("kernels_wallclock", lines)
    return rows


def test_pjds_not_slower_than_plain_ellpack(relative_table):
    """pJDS sweeps fewer padded slots: never materially slower."""
    for key in TABLE1_KEYS:
        r = relative_table[key]
        assert r["pJDS"] >= 0.7 * r["ELLPACK"], key


def test_high_reduction_matrices_speed_up(relative_table):
    """On sAMG (68 % reduction) the slot savings must show up."""
    r = relative_table["sAMG"]
    assert r["pJDS"] > 1.2 * r["ELLPACK"]


def test_all_rates_positive(relative_table):
    for key in TABLE1_KEYS:
        for fmt in FORMATS:
            assert relative_table[key][fmt] > 0


# ---------------------------------------------------------------------------
# Engine-vs-seed comparison (the CI bench-smoke JSON artifact)
# ---------------------------------------------------------------------------

def _engine_formats():
    from repro.scenarios import BENCH_FORMATS

    return BENCH_FORMATS


ENGINE_FORMATS = _engine_formats()


def scenario_pairs(keys=TABLE1_KEYS):
    """Candidate (matrix, format) combos from the scenario bench suite.

    The ``bench`` suite cells (``repro matrix expand --suite bench``)
    are the single source of what gets measured; this collapses them
    to unique (suite-matrix, format) pairs, reordered key-major in the
    caller's ``keys`` order so the printed tables group per matrix.
    """
    from repro.scenarios import expand_suite

    seen = []
    for cell in expand_suite("bench", wave="full"):
        axes = cell.axes_dict
        pair = (axes["suite-matrix"], axes["format"])
        if pair not in seen:
            seen.append(pair)
    if keys is None:
        keys = tuple(dict.fromkeys(k for k, _ in seen))
    fmts = tuple(dict.fromkeys(f for _, f in seen))
    return [(k, f) for k in keys for f in fmts if (k, f) in seen]


def _seed_spmv_crs(m, x, out):
    """The seed CRS kernel: float64 prefix-sum segments, per-call
    allocations (the seed's default ``out=None`` path, which is how the
    seed solver loops exercised it)."""
    prod = m.data.astype(np.float64) * x[m.indices].astype(np.float64)
    csum = np.concatenate(([0.0], np.cumsum(prod)))
    y = np.zeros(m.nrows, dtype=m.dtype)  # seed alloc_result
    y[:] = (csum[m.indptr[1:]] - csum[m.indptr[:-1]]).astype(m.dtype)
    return y


def _seed_spmv_jagged(m, x, out):
    """The seed jagged kernel: float64 column sweep, astype copies and a
    freshly allocated, scattered result every call."""
    acc = np.zeros(m.nrows, dtype=np.float64)
    xf = x.astype(np.float64, copy=False)
    cs = m.col_start
    val = m.val
    col_idx = m.col_idx
    for j in range(m.width):
        s = cs[j]
        e = cs[j + 1]
        acc[: e - s] += val[s:e].astype(np.float64) * xf[col_idx[s:e]]
    y = np.zeros(m.nrows, dtype=m.dtype)  # seed alloc_result
    y[m.permutation.perm] = acc.astype(m.dtype)
    return y


def _seed_kernel_for(m):
    """Pre-engine kernel for ``m`` (historical transcription where the
    seed differed; the format's own allocating spmv otherwise)."""
    from repro.core.jds import JaggedDiagonalsBase
    from repro.formats.csr import CSRMatrix

    if isinstance(m, CSRMatrix):
        return _seed_spmv_crs
    if isinstance(m, JaggedDiagonalsBase):
        return _seed_spmv_jagged
    return lambda mm, x, out: mm.spmv(x)  # allocates the result per call


def _best_seconds(fn, reps):
    fn()  # warmup
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_engine_bench(scale=64, *, keys=TABLE1_KEYS, reps=5, spmm_rhs=8):
    """Measure engine vs seed kernels; return one record per (matrix, fmt).

    Fields per record: ``seed_gflops`` / ``engine_gflops`` /
    ``engine_speedup`` (same 2*nnz flop count), the autotuned
    ``variant``, and ``spmm_percolumn_gflops`` / ``spmm_batched_gflops``
    / ``spmm_speedup`` at ``spmm_rhs`` right-hand sides.
    """
    from repro.engine import bind
    from repro.formats import convert
    from repro.matrices import generate
    from repro.matrices.cache import TunerCache

    cache = TunerCache(persist=False)  # rank fresh on this machine
    records = []
    coos = {}
    for key, fmt in scenario_pairs(keys):
        if key not in coos:
            coos[key] = generate(key, scale=scale)
        coo = coos[key]
        x = np.random.default_rng(0).standard_normal(coo.ncols)
        X = np.ascontiguousarray(
            np.random.default_rng(1).standard_normal((coo.ncols, spmm_rhs))
        )
        m = convert(coo, fmt)
        out = np.zeros(m.nrows)
        seed_kernel = _seed_kernel_for(m)
        t_seed = _best_seconds(lambda: seed_kernel(m, x, out), reps)
        b = bind(m, reps=max(1, reps // 2), cache=cache)
        t_engine = _best_seconds(lambda: b.spmv(x, out=out), reps)
        Yout = np.zeros((m.nrows, spmm_rhs))
        t_col = _best_seconds(lambda: m.spmm_percolumn(X, out=Yout), reps)
        t_blk = _best_seconds(lambda: b.spmm(X, out=Yout), reps)
        records.append(
            {
                "matrix": key,
                "format": fmt,
                "scale": scale,
                "nnz": m.nnz,
                "variant": b.variant_name,
                "seed_gflops": round(gflops(m.nnz, t_seed), 4),
                "engine_gflops": round(gflops(m.nnz, t_engine), 4),
                "engine_speedup": round(t_seed / t_engine, 3),
                "spmm_rhs": spmm_rhs,
                "spmm_percolumn_gflops": round(
                    gflops(m.nnz * spmm_rhs, t_col), 4
                ),
                "spmm_batched_gflops": round(
                    gflops(m.nnz * spmm_rhs, t_blk), 4
                ),
                "spmm_speedup": round(t_col / t_blk, 3),
            }
        )
    return records


# ---------------------------------------------------------------------------
# Registry dispatch overhead (the CI dispatch-smoke JSON artifact)
# ---------------------------------------------------------------------------

def run_dispatch_bench(scale=48, *, keys=TABLE1_KEYS, reps=7, inner=20):
    """Cost of resolving a kernel through the central registry.

    For each (matrix, format) the rank-0 spmv kernel runs ``inner``
    times per timed batch three ways:

    * ``direct``   — the kernel function captured in a local, called
      straight (``fn(m, ws, x, y)``): the floor;
    * ``registry`` — re-resolved through
      ``repro.ops.get_variant(m, name).run(...)`` on every call: the
      pure dispatch indirection the ISSUE-4 refactor added;
    * ``engine``   — the full ``BoundMatrix.spmv`` path (validation,
      dtype coercion, stored-order scatter) for context.

    The *aggregate* overhead (total registry time over total direct
    time, across all combinations) must stay ≤ 5 %: the registry is
    one list scan against a ≥ 10 µs kernel, so anything above that is
    measurement noise — per-record numbers are reported but jitter by
    several percent either way on shared runners.  Returns one record
    per combination plus a final ``{"summary": True}`` record.
    """
    from repro.engine import Workspace, bind
    from repro.formats import convert
    from repro.matrices import generate
    from repro.ops import get_variant

    records = []
    coos = {}
    for key, fmt in scenario_pairs(keys):
        if key not in coos:
            coos[key] = generate(key, scale=scale)
        m = convert(coos[key], fmt)
        b = bind(m, tune=False)  # rank-0 (untuned default) kernel
        name = b.variant_name
        ws = Workspace()
        x = np.random.default_rng(0).standard_normal(m.ncols).astype(m.dtype)
        y = np.zeros(m.nrows, dtype=m.dtype)
        fn = get_variant(m, name).run
        out = np.zeros(m.nrows, dtype=m.dtype)

        def direct():
            for _ in range(inner):
                fn(m, ws, x, y)

        def registry():
            for _ in range(inner):
                get_variant(m, name).run(m, ws, x, y)

        def engine():
            for _ in range(inner):
                b.spmv(x, out=out)

        t_direct = _best_seconds(direct, reps) / inner
        t_registry = _best_seconds(registry, reps) / inner
        t_engine = _best_seconds(engine, reps) / inner
        records.append(
            {
                "matrix": key,
                "format": fmt,
                "scale": scale,
                "variant": name,
                "nnz": m.nnz,
                "direct_us": round(1e6 * t_direct, 3),
                "registry_us": round(1e6 * t_registry, 3),
                "engine_us": round(1e6 * t_engine, 3),
                "overhead_registry": round(t_registry / t_direct - 1.0, 4),
                "overhead_engine": round(t_engine / t_direct - 1.0, 4),
            }
        )
    total_direct = sum(r["direct_us"] for r in records)
    total_registry = sum(r["registry_us"] for r in records)
    total_engine = sum(r["engine_us"] for r in records)
    records.append(
        {
            "summary": True,
            "total_direct_us": round(total_direct, 3),
            "total_registry_us": round(total_registry, 3),
            "total_engine_us": round(total_engine, 3),
            "overhead_registry": round(total_registry / total_direct - 1.0, 4),
            "overhead_engine": round(total_engine / total_direct - 1.0, 4),
        }
    )
    return records


# ---------------------------------------------------------------------------
# Observability overhead (the CI obs-smoke JSON artifact)
# ---------------------------------------------------------------------------

def run_obs_overhead_bench(scale=48, *, keys=TABLE1_KEYS, reps=7, inner=20):
    """Cost of the obs instrumentation on the engine spmv hot path.

    For each (matrix, format) the bound spmv runs ``inner`` times per
    timed batch three ways:

    * ``off``    — ``obs.disable()``: the uninstrumented floor;
    * ``on``     — ``obs.enable()`` with the profiler sampling every
      call but *no* enclosing span: the serving steady state outside a
      traced request (counter bump + profiler sample + cached lookups);
    * ``traced`` — the same loop under an open span, so every call
      also records an ``engine.spmv`` span: the per-request tracing
      cost, reported for context.

    The *aggregate* ``on`` overhead (total on-time over total
    off-time, across all combinations) must stay ≤ 5 % — that is the
    instrumentation's zero-ish-cost contract; per-record numbers
    jitter by several percent on shared runners.  ``traced`` is not
    gated: a request that asked to be traced pays for its spans.
    """
    from repro import obs
    from repro.engine import bind
    from repro.formats import convert
    from repro.matrices import generate

    was_enabled = obs.enabled()
    records = []
    coos = {}
    try:
        for key, fmt in scenario_pairs(keys):
            if key not in coos:
                coos[key] = generate(key, scale=scale)
            m = convert(coos[key], fmt)
            obs.disable()
            b = bind(m, tune=False, label=key)
            x = np.random.default_rng(0).standard_normal(m.ncols).astype(m.dtype)
            out = np.zeros(m.nrows, dtype=m.dtype)

            def loop():
                for _ in range(inner):
                    b.spmv(x, out=out)

            def traced_loop():
                with obs.span("bench.traced"):
                    for _ in range(inner):
                        b.spmv(x, out=out)

            t_off = _best_seconds(loop, reps) / inner
            obs.enable()
            obs.reset_all()
            t_on = _best_seconds(loop, reps) / inner
            t_traced = _best_seconds(traced_loop, reps) / inner
            records.append(
                {
                    "matrix": key,
                    "format": fmt,
                    "scale": scale,
                    "variant": b.variant_name,
                    "nnz": m.nnz,
                    "off_us": round(1e6 * t_off, 3),
                    "on_us": round(1e6 * t_on, 3),
                    "traced_us": round(1e6 * t_traced, 3),
                    "overhead_on": round(t_on / t_off - 1.0, 4),
                    "overhead_traced": round(t_traced / t_off - 1.0, 4),
                }
            )
    finally:
        obs.reset_all()
        if was_enabled:
            obs.enable()
        else:
            obs.disable()
    total_off = sum(r["off_us"] for r in records)
    total_on = sum(r["on_us"] for r in records)
    total_traced = sum(r["traced_us"] for r in records)
    records.append(
        {
            "summary": True,
            "total_off_us": round(total_off, 3),
            "total_on_us": round(total_on, 3),
            "total_traced_us": round(total_traced, 3),
            "overhead_on": round(total_on / total_off - 1.0, 4),
            "overhead_traced": round(total_traced / total_off - 1.0, 4),
        }
    )
    return records


# ---------------------------------------------------------------------------
# Compiled tier vs vectorised NumPy (the CI compiled-smoke JSON artifact)
# ---------------------------------------------------------------------------

def _tier_of(spec) -> str:
    if {"cnative", "numba"} & set(spec.tags):
        return "compiled"
    if "scipy" in spec.tags:
        return "scipy"
    return "numpy"


def run_compiled_bench(scale=64, *, keys=TABLE1_KEYS, reps=5):
    """Best compiled-tier (cnative/numba) vs best pure-NumPy spmv kernel.

    The scipy delegates are excluded from *both* groups — they are a
    third-party compiled baseline, and the ISSUE-7 gate compares this
    repo's compiled tier against this repo's vectorised kernels.  Per
    (matrix, format) record: best variant and best-of-``reps`` seconds
    for each group, effective GB/s against the Eq.-1 traffic model of
    the winning variant, speedup, and roofline efficiency vs the
    measured host copy bandwidth.  A final summary record carries the
    ``aggregate_speedup`` (total NumPy time over total compiled time)
    that CI gates on.
    """
    from repro.engine import Workspace
    from repro.formats import convert
    from repro.matrices import generate
    from repro.obs.profile import measure_host_bandwidth
    from repro.ops import variants_for
    from repro.perfmodel.predict import predict_spmv

    host_gbs = measure_host_bandwidth()
    records = []
    total_numpy = total_compiled = 0.0
    coos = {}
    for key, fmt in scenario_pairs(keys):
        if key not in coos:
            coos[key] = generate(key, scale=scale)
        coo = coos[key]
        x = np.random.default_rng(0).standard_normal(coo.ncols)
        m = convert(coo, fmt)
        preds = {p.name: p for p in predict_spmv(m, bandwidth_gbs=host_gbs)}
        groups = {"numpy": {}, "compiled": {}}
        y = np.zeros(m.nrows, dtype=m.dtype)
        xd = x.astype(m.dtype)
        for spec in variants_for(m):
            tier = _tier_of(spec)
            if tier == "scipy":
                continue
            ws = Workspace()
            t = _best_seconds(lambda: spec.run(m, ws, xd, y), reps)
            groups[tier][spec.name] = t
        if not groups["compiled"]:
            continue  # no compiled backend on this host
        np_name = min(groups["numpy"], key=groups["numpy"].get)
        cc_name = min(groups["compiled"], key=groups["compiled"].get)
        t_np = groups["numpy"][np_name]
        t_cc = groups["compiled"][cc_name]
        total_numpy += t_np
        total_compiled += t_cc
        cc_gbs = preds[cc_name].bytes_per_call / t_cc / 1e9
        records.append(
            {
                "matrix": key,
                "format": fmt,
                "scale": scale,
                "nnz": m.nnz,
                "numpy_variant": np_name,
                "numpy_us": round(1e6 * t_np, 2),
                "numpy_gbs": round(
                    preds[np_name].bytes_per_call / t_np / 1e9, 3
                ),
                "compiled_variant": cc_name,
                "compiled_us": round(1e6 * t_cc, 2),
                "compiled_gbs": round(cc_gbs, 3),
                "speedup": round(t_np / t_cc, 3),
                "roofline_efficiency": round(cc_gbs / host_gbs, 3),
            }
        )
    summary = {
        "summary": True,
        "host_bandwidth_gbs": round(host_gbs, 3),
        "total_numpy_us": round(1e6 * total_numpy, 2),
        "total_compiled_us": round(1e6 * total_compiled, 2),
        "aggregate_speedup": round(total_numpy / total_compiled, 3)
        if total_compiled
        else None,
    }
    records.append(summary)
    return records


def run_shootout(scale=64, *, keys=TABLE1_KEYS, reps=5):
    """Table-I-style shootout across *every* registered format.

    Unlike :func:`run_engine_bench` (which probes the curated
    ``BENCH_FORMATS`` subset), this sweeps the full live roster from
    ``available_formats()`` — so a newly registered format lands in the
    ranking with zero bench edits.  Per (matrix, format) cell every
    spmv roster variant is timed and the best one reported with its
    effective GB/s against the Eq.-1 traffic model, the roofline
    efficiency vs the measured host copy bandwidth, and the wall-clock
    ratio vs the ``csr_scipy`` reference on the same matrix (the
    library-CSR baseline the CI gate compares newcomers against).  The
    summary record carries the GB/s ranking averaged across the suite
    and the worst newcomer-vs-baseline ratio.
    """
    from repro.engine import Workspace
    from repro.formats import available_formats, convert
    from repro.matrices import generate
    from repro.obs.profile import measure_host_bandwidth
    from repro.ops import variants_for
    from repro.perfmodel.predict import predict_spmv

    host_gbs = measure_host_bandwidth()
    roster = tuple(available_formats())
    records = []
    gbs_by_fmt: dict = {fmt: [] for fmt in roster}
    for key in keys:
        coo = generate(key, scale=scale)
        x = np.random.default_rng(0).standard_normal(coo.ncols)
        # the library-CSR reference every cell is measured against
        crs = convert(coo, "CRS")
        ref_spec = next(
            (s for s in variants_for(crs) if s.name == "csr_scipy"), None
        )
        t_ref = None
        if ref_spec is not None:
            ws = Workspace()
            y = np.zeros(crs.nrows, dtype=crs.dtype)
            xd = x.astype(crs.dtype)
            t_ref = _best_seconds(lambda: ref_spec.run(crs, ws, xd, y), reps)
        for fmt in roster:
            m = convert(coo, fmt)
            preds = {
                p.name: p for p in predict_spmv(m, bandwidth_gbs=host_gbs)
            }
            y = np.zeros(m.nrows, dtype=m.dtype)
            xd = x.astype(m.dtype)
            timings = {}
            for spec in variants_for(m):
                ws = Workspace()
                timings[spec.name] = _best_seconds(
                    lambda: spec.run(m, ws, xd, y), reps
                )
            best = min(timings, key=timings.get)
            t = timings[best]
            gbs = preds[best].bytes_per_call / t / 1e9
            gbs_by_fmt[fmt].append(gbs)
            records.append(
                {
                    "matrix": key,
                    "format": fmt,
                    "scale": scale,
                    "nnz": m.nnz,
                    "bytes_per_row": round(m.nbytes / max(m.nrows, 1), 2),
                    "variant": best,
                    "tier": _tier_of(
                        next(s for s in variants_for(m) if s.name == best)
                    ),
                    "variants_timed": len(timings),
                    "best_us": round(1e6 * t, 2),
                    "gflops": round(gflops(m.nnz, t), 4),
                    "gbs": round(gbs, 3),
                    "roofline_efficiency": round(gbs / host_gbs, 3),
                    "vs_csr_scipy": round(t / t_ref, 3) if t_ref else None,
                }
            )
    ranking = sorted(
        (
            (fmt, sum(v) / len(v))
            for fmt, v in gbs_by_fmt.items()
            if v
        ),
        key=lambda kv: -kv[1],
    )
    newcomer_rows = [
        r
        for r in records
        if r["format"] in ("CMRS", "ARG-CSR") and r["vs_csr_scipy"]
    ]
    records.append(
        {
            "summary": True,
            "host_bandwidth_gbs": round(host_gbs, 3),
            "formats_measured": sorted(gbs_by_fmt),
            "ranking": [
                {"format": fmt, "mean_gbs": round(g, 3)} for fmt, g in ranking
            ],
            "worst_newfmt_vs_csr_scipy": round(
                max(r["vs_csr_scipy"] for r in newcomer_rows), 3
            )
            if newcomer_rows
            else None,
        }
    )
    return records


def run_prune_quality(scale=48, *, keys=TABLE1_KEYS, reps=5, top_k=2):
    """How good is Eq.-1 pruning?  Model keep-set vs exhaustive timings.

    Each roster is timed exhaustively *once* and the model's keep-set
    is evaluated against those same timings: ``pruned_winner`` is the
    fastest kept candidate, ``regression`` its slowdown vs the overall
    winner (0.0 whenever the winner survived the prune).  Scoring both
    modes inside one timing context isolates *model* quality from
    run-to-run timer jitter — a pruned autotune with these timings
    would pick exactly this variant.  The summary aggregates the
    timed-candidate reduction and the worst regression — the CI
    compiled-smoke job gates reduction ≥ 50 % and regression ≤ 5 %.
    """
    from repro.engine import Workspace, autotune
    from repro.formats import convert
    from repro.matrices import generate
    from repro.perfmodel.predict import prune_roster

    records = []
    total_exhaustive = total_pruned = 0
    hits = 0
    worst_regression = 0.0
    coos = {}
    for key, fmt in scenario_pairs(keys):
        if key not in coos:
            coos[key] = generate(key, scale=scale)
        m = convert(coos[key], fmt)
        ex = autotune(m, Workspace(), reps=reps, use_cache=False)
        keep, dropped, _ = prune_roster(m, top_k=top_k)
        best = ex.timings[ex.variant]
        pruned_winner = min(keep, key=lambda n: ex.timings[n])
        regression = max(0.0, ex.timings[pruned_winner] / best - 1.0)
        hit = ex.variant in keep
        total_exhaustive += len(ex.timings)
        total_pruned += len(keep)
        hits += hit
        worst_regression = max(worst_regression, regression)
        records.append(
            {
                "matrix": key,
                "format": fmt,
                "scale": scale,
                "exhaustive_timed": len(ex.timings),
                "pruned_timed": len(keep),
                "exhaustive_winner": ex.variant,
                "pruned_winner": pruned_winner,
                "winner_in_top_k": hit,
                "regression": round(regression, 4),
                "dropped": dropped,
            }
        )
    n = len(records)
    records.append(
        {
            "summary": True,
            "top_k": top_k,
            "total_exhaustive_timed": total_exhaustive,
            "total_pruned_timed": total_pruned,
            "timed_reduction": round(1.0 - total_pruned / total_exhaustive, 4)
            if total_exhaustive
            else None,
            "winner_hit_rate": round(hits / n, 4) if n else None,
            "worst_regression": round(worst_regression, 4),
        }
    )
    return records


def main(argv=None):
    import argparse

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=int, default=64)
    ap.add_argument("--reps", type=int, default=5)
    ap.add_argument("--rhs", type=int, default=8)
    ap.add_argument("--out", default="BENCH_kernels.json")
    ap.add_argument(
        "--dispatch", action="store_true",
        help="run the registry dispatch-overhead probe instead "
        "(writes BENCH_dispatch.json unless --out is given)",
    )
    ap.add_argument(
        "--obs-overhead", action="store_true",
        help="run the obs instrumentation-overhead probe instead "
        "(writes BENCH_obs.json unless --out is given)",
    )
    ap.add_argument(
        "--max-overhead", type=float, default=0.05,
        help="fail (exit 1) when the aggregate overhead exceeds this "
        "fraction in --dispatch / --obs-overhead mode",
    )
    ap.add_argument(
        "--compiled", action="store_true",
        help="run the compiled-vs-vectorized comparison instead "
        "(writes BENCH_compiled.json unless --out is given)",
    )
    ap.add_argument(
        "--min-speedup", type=float, default=0.0,
        help="fail (exit 1) when the --compiled aggregate speedup is "
        "below this (CI gate: 1.0; the repo target is 1.5)",
    )
    ap.add_argument(
        "--shootout", action="store_true",
        help="run the full-roster format shootout instead "
        "(writes BENCH_shootout.json unless --out is given)",
    )
    ap.add_argument(
        "--max-newfmt-ratio", type=float, default=1.5,
        help="fail (exit 1) when a CMRS/ARG-CSR cell is more than this "
        "factor slower than csr_scipy in --shootout mode",
    )
    ap.add_argument(
        "--prune-quality", action="store_true",
        help="run the Eq.-1 prune-quality probe instead "
        "(writes BENCH_prune.json unless --out is given)",
    )
    ap.add_argument(
        "--top-k", type=int, default=2,
        help="candidates the prune keeps in --prune-quality mode",
    )
    ap.add_argument(
        "--min-reduction", type=float, default=0.5,
        help="fail when --prune-quality times fewer than this fraction "
        "fewer candidates than the exhaustive sweep",
    )
    ap.add_argument(
        "--max-regress", type=float, default=0.05,
        help="fail when any pruned pick is more than this fraction "
        "slower than the exhaustive winner",
    )
    args = ap.parse_args(argv)
    if args.compiled:
        out = "BENCH_compiled.json" if args.out == "BENCH_kernels.json" else args.out
        records = run_compiled_bench(args.scale, reps=args.reps)
        write_artifact(out, records)
        rows, summary = split_summary(records)
        if not rows:
            return no_data("no compiled backend available on this host")
        print(
            f"{'matrix':6s} {'format':12s} {'numpy':16s} {'compiled':14s} "
            f"{'np GB/s':>8s} {'cc GB/s':>8s} {'x':>6s} {'roof%':>6s}"
        )
        for r in rows:
            print(
                f"{r['matrix']:6s} {r['format']:12s} {r['numpy_variant']:16s} "
                f"{r['compiled_variant']:14s} {r['numpy_gbs']:8.2f} "
                f"{r['compiled_gbs']:8.2f} {r['speedup']:6.2f} "
                f"{100 * r['roofline_efficiency']:6.1f}"
            )
        print(
            f"wrote {out} ({len(rows)} records); aggregate compiled speedup "
            f"{summary['aggregate_speedup']:.2f}x at host bandwidth "
            f"{summary['host_bandwidth_gbs']:.1f} GB/s"
        )
        gates = GateSet()
        gates.at_least(
            summary["aggregate_speedup"], args.min_speedup,
            "aggregate speedup",
        )
        return gates.exit_code()
    if args.shootout:
        from repro.formats import available_formats

        out = "BENCH_shootout.json" if args.out == "BENCH_kernels.json" else args.out
        records = run_shootout(args.scale, reps=args.reps)
        write_artifact(out, records)
        rows, summary = split_summary(records)
        print(
            f"{'matrix':6s} {'format':14s} {'variant':16s} {'tier':9s} "
            f"{'us':>9s} {'GB/s':>7s} {'roof%':>6s} {'vs csr':>7s}"
        )
        for r in rows:
            ratio = f"{r['vs_csr_scipy']:7.2f}" if r["vs_csr_scipy"] else "      -"
            print(
                f"{r['matrix']:6s} {r['format']:14s} {r['variant']:16s} "
                f"{r['tier']:9s} {r['best_us']:9.2f} {r['gbs']:7.2f} "
                f"{100 * r['roofline_efficiency']:6.1f} {ratio}"
            )
        print("ranking (mean GB/s across the suite):")
        for i, e in enumerate(summary["ranking"], 1):
            print(f"  {i:2d}. {e['format']:14s} {e['mean_gbs']:7.2f}")
        print(
            f"wrote {out} ({len(rows)} records); worst CMRS/ARG-CSR ratio "
            f"vs csr_scipy {summary['worst_newfmt_vs_csr_scipy']} at host "
            f"bandwidth {summary['host_bandwidth_gbs']:.1f} GB/s"
        )
        gates = GateSet()
        measured = set(summary["formats_measured"])
        gates.require(
            measured == set(available_formats()),
            f"every registered format measured (missing: "
            f"{sorted(set(available_formats()) - measured)})",
        )
        if summary["worst_newfmt_vs_csr_scipy"] is not None:
            gates.at_most(
                summary["worst_newfmt_vs_csr_scipy"],
                args.max_newfmt_ratio,
                "worst new-format ratio vs csr_scipy",
            )
        return gates.exit_code()
    if args.prune_quality:
        out = "BENCH_prune.json" if args.out == "BENCH_kernels.json" else args.out
        records = run_prune_quality(
            args.scale, reps=args.reps, top_k=args.top_k
        )
        write_artifact(out, records)
        rows, summary = split_summary(records)
        print(
            f"{'matrix':6s} {'format':12s} {'exhaustive':16s} {'pruned':16s} "
            f"{'timed':>7s} {'hit':>4s} {'regr%':>6s}"
        )
        for r in rows:
            print(
                f"{r['matrix']:6s} {r['format']:12s} "
                f"{r['exhaustive_winner']:16s} {r['pruned_winner']:16s} "
                f"{r['pruned_timed']}/{r['exhaustive_timed']:>5d} "
                f"{'yes' if r['winner_in_top_k'] else 'NO':>4s} "
                f"{100 * r['regression']:6.2f}"
            )
        print(
            f"wrote {out} ({len(rows)} records); timed-candidate reduction "
            f"{100 * summary['timed_reduction']:.1f}%, winner hit rate "
            f"{100 * summary['winner_hit_rate']:.0f}%, worst regression "
            f"{100 * summary['worst_regression']:.2f}%"
        )
        gates = GateSet()
        gates.at_least(
            summary["timed_reduction"], args.min_reduction, "timed reduction"
        )
        gates.at_most(
            summary["worst_regression"], args.max_regress, "worst regression"
        )
        return gates.exit_code()
    if args.obs_overhead:
        out = "BENCH_obs.json" if args.out == "BENCH_kernels.json" else args.out
        records = run_obs_overhead_bench(args.scale, reps=args.reps)
        write_artifact(out, records)
        print(
            f"{'matrix':6s} {'format':12s} {'variant':16s} "
            f"{'off':>9s} {'on':>9s} {'traced':>9s} {'ovh%':>6s}"
        )
        rows, summary = split_summary(records)
        for r in rows:
            print(
                f"{r['matrix']:6s} {r['format']:12s} {r['variant']:16s} "
                f"{r['off_us']:9.2f} {r['on_us']:9.2f} "
                f"{r['traced_us']:9.2f} {100 * r['overhead_on']:6.2f}"
            )
        print(
            f"wrote {out} ({len(rows)} records); aggregate obs-on overhead "
            f"{100 * summary['overhead_on']:.2f}% "
            f"(traced path {100 * summary['overhead_traced']:.2f}%)"
        )
        gates = GateSet()
        gates.at_most(
            summary["overhead_on"], args.max_overhead, "aggregate overhead"
        )
        return gates.exit_code()
    if args.dispatch:
        out = "BENCH_dispatch.json" if args.out == "BENCH_kernels.json" else args.out
        records = run_dispatch_bench(args.scale, reps=args.reps)
        write_artifact(out, records)
        print(
            f"{'matrix':6s} {'format':12s} {'variant':16s} "
            f"{'direct':>9s} {'registry':>9s} {'engine':>9s} {'ovh%':>6s}"
        )
        rows, summary = split_summary(records)
        for r in rows:
            print(
                f"{r['matrix']:6s} {r['format']:12s} {r['variant']:16s} "
                f"{r['direct_us']:9.2f} {r['registry_us']:9.2f} "
                f"{r['engine_us']:9.2f} {100 * r['overhead_registry']:6.2f}"
            )
        print(
            f"wrote {out} ({len(rows)} records); aggregate registry overhead "
            f"{100 * summary['overhead_registry']:.2f}% "
            f"(engine path {100 * summary['overhead_engine']:.2f}%)"
        )
        gates = GateSet()
        gates.at_most(
            summary["overhead_registry"], args.max_overhead,
            "aggregate overhead",
        )
        return gates.exit_code()
    records = run_engine_bench(args.scale, reps=args.reps, spmm_rhs=args.rhs)
    write_artifact(args.out, records)
    hdr = (
        f"{'matrix':6s} {'format':12s} {'variant':16s} "
        f"{'seed':>8s} {'engine':>8s} {'x':>6s} {'spmm':>6s}"
    )
    print(hdr)
    for r in records:
        print(
            f"{r['matrix']:6s} {r['format']:12s} {r['variant']:16s} "
            f"{r['seed_gflops']:8.3f} {r['engine_gflops']:8.3f} "
            f"{r['engine_speedup']:6.2f} {r['spmm_speedup']:6.2f}"
        )
    print(f"wrote {args.out} ({len(records)} records)")
    return EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
