"""Wall-clock benchmarks of the vectorised NumPy spMVM kernels.

These are *host* measurements (the GPU numbers come from the device
model), but the relative shape is informative: pJDS sweeps fewer
padded slots than ELLPACK, so on strongly irregular matrices the
column-sweep kernel family orders the same way as on the device.
"""

import numpy as np
import pytest

from repro.utils import gflops

from _bench_common import TABLE1_KEYS, emit_table

FORMATS = ("CRS", "ELLPACK", "ELLPACK-R", "JDS", "pJDS", "SELL-C-sigma")


@pytest.fixture(scope="module")
def vectors(suite_coo):
    rng = np.random.default_rng(0)
    return {k: rng.normal(size=suite_coo[k].ncols) for k in TABLE1_KEYS}


@pytest.mark.parametrize("key", TABLE1_KEYS)
@pytest.mark.parametrize("fmt", FORMATS)
def test_bench_spmv(benchmark, suite_formats, vectors, key, fmt):
    m = suite_formats(key, fmt)
    x = vectors[key]
    out = np.zeros(m.nrows)
    benchmark(m.spmv, x, out=out)
    rate = gflops(m.nnz, benchmark.stats["mean"])
    benchmark.extra_info["numpy_gflops"] = round(rate, 4)


@pytest.fixture(scope="module")
def relative_table(suite_formats, vectors):
    """One-shot relative timing table (independent of pytest-benchmark)."""
    import time

    lines = [f"{'matrix':6s} " + " ".join(f"{f:>13s}" for f in FORMATS)]
    rows = {}
    for key in TABLE1_KEYS:
        x = vectors[key]
        cells = []
        rows[key] = {}
        for fmt in FORMATS:
            m = suite_formats(key, fmt)
            out = np.zeros(m.nrows)
            m.spmv(x, out=out)  # warm up
            reps = 3
            t0 = time.perf_counter()
            for _ in range(reps):
                m.spmv(x, out=out)
            dt = (time.perf_counter() - t0) / reps
            rate = gflops(m.nnz, dt)
            rows[key][fmt] = rate
            cells.append(f"{rate:13.3f}")
        lines.append(f"{key:6s} " + " ".join(cells))
    lines.append("(host NumPy GF/s; device numbers come from the GPU model)")
    emit_table("kernels_wallclock", lines)
    return rows


def test_pjds_not_slower_than_plain_ellpack(relative_table):
    """pJDS sweeps fewer padded slots: never materially slower."""
    for key in TABLE1_KEYS:
        r = relative_table[key]
        assert r["pJDS"] >= 0.7 * r["ELLPACK"], key


def test_high_reduction_matrices_speed_up(relative_table):
    """On sAMG (68 % reduction) the slot savings must show up."""
    r = relative_table["sAMG"]
    assert r["pJDS"] > 1.2 * r["ELLPACK"]


def test_all_rates_positive(relative_table):
    for key in TABLE1_KEYS:
        for fmt in FORMATS:
            assert relative_table[key][fmt] > 0
