"""Eqs. (2)-(4): PCIe transfer impact and the Nnzr admissibility bounds.

Regenerates the quantitative statements of Sect. II-B / III:

* worst case (alpha = 1/Nnzr, BGPU ~ 20 BPCI): Nnzr <= 25 for > 50 %
  penalty; best case (alpha = 1, BGPU ~ 10 BPCI): Nnzr <= 7;
* 10 %-penalty bounds: Nnzr >~ 80 (alpha = 1) .. ~266 (worst case);
* single-GPU effective performance: HMEp 3.7, sAMG 2.3, DLR1
  10.9-vs-12.9 GF/s.
"""

import pytest

from repro.matrices import SUITE
from repro.perfmodel import analyse, nnzr_lower_bound_10pct, nnzr_upper_bound_50pct

from _bench_common import emit_table

#: per-matrix alpha consistent with the paper's measured balances
ALPHAS = {"HMEp": 0.73, "sAMG": 1.0, "DLR1": 0.25, "DLR2": 0.25, "UHBR": 0.25}
PAPER_EFFECTIVE = {"HMEp": 3.7, "sAMG": 2.3, "DLR1": 10.9}


@pytest.fixture(scope="module")
def pcie_table():
    rows = {}
    for key, alpha in ALPHAS.items():
        spec = SUITE[key]
        rows[key] = analyse(spec.paper_dim, spec.paper_nnzr, alpha)
    lines = [
        f"{'matrix':6s} {'Nnzr':>6s} {'kernel':>7s} {'effective':>9s} "
        f"{'penalty':>8s} {'bound50':>8s} {'worthwhile':>10s}"
    ]
    for key, a in rows.items():
        lines.append(
            f"{key:6s} {a.nnzr:6.1f} {a.kernel_gflops:7.1f} {a.effective_gflops:9.1f} "
            f"{a.pcie_penalty:8.2f} {a.nnzr_bound_50pct:8.1f} {str(a.gpu_worthwhile):>10s}"
        )
    lines.append("")
    lines.append("Eq. (3)/(4) bounds:")
    lines.append(
        f"  worst case (a=1/25, ratio 20): Nnzr <= {nnzr_upper_bound_50pct(20, 1 / 25):.1f} (paper ~25)"
    )
    lines.append(
        f"  best case  (a=1,    ratio 10): Nnzr <= {nnzr_upper_bound_50pct(10, 1.0):.1f} (paper ~7)"
    )
    lines.append(
        f"  10% bound  (a=1,    ratio 10): Nnzr >= {nnzr_lower_bound_10pct(10, 1.0):.1f} (paper ~80)"
    )
    lines.append(
        f"  10% bound  (a=1/266, ratio 20): Nnzr >= {nnzr_lower_bound_10pct(20, 1 / 266):.1f} (paper ~266)"
    )
    emit_table("pcie_model", lines)
    return rows


class TestSingleGPUNumbers:
    def test_dlr1_kernel_vs_effective(self, pcie_table):
        """Paper: '10.9 GF/s vs 12.9 GF/s for DLR1'."""
        a = pcie_table["DLR1"]
        assert a.kernel_gflops == pytest.approx(12.9, rel=0.08)
        assert a.effective_gflops == pytest.approx(10.9, rel=0.12)

    def test_hmep_effective(self, pcie_table):
        # paper 3.7 GF/s; Eq. (2) is an optimistic bound (no launch or
        # driver overheads), so the model lands somewhat above it
        assert pcie_table["HMEp"].effective_gflops == pytest.approx(3.7, rel=0.45)

    def test_samg_effective(self, pcie_table):
        assert pcie_table["sAMG"].effective_gflops == pytest.approx(2.3, rel=0.45)

    def test_low_nnzr_matrices_ruled_out(self, pcie_table):
        """HMEp and sAMG fall below a dual-socket node (Sect. III)."""
        from repro.perfmodel import cpu_crs_gflops

        for key in ("HMEp", "sAMG"):
            a = pcie_table[key]
            cpu = cpu_crs_gflops(ALPHAS[key] * 0.3, a.nnzr)
            assert a.effective_gflops < cpu * 1.6

    def test_dlr_class_admitted(self, pcie_table):
        for key in ("DLR1", "DLR2", "UHBR"):
            assert pcie_table[key].gpu_worthwhile
            assert pcie_table[key].pcie_penalty < 0.35


class TestBounds:
    def test_paper_bound_values(self):
        assert nnzr_upper_bound_50pct(20, 1 / 25) == pytest.approx(25, abs=1)
        assert nnzr_upper_bound_50pct(10, 1.0) == pytest.approx(7.2, abs=0.2)
        assert nnzr_lower_bound_10pct(10, 1.0) == pytest.approx(79.2, abs=0.2)
        assert nnzr_lower_bound_10pct(20, 1 / 266) == pytest.approx(265, abs=2)

    def test_bounds_bracket_the_suite(self, pcie_table):
        """HMEp/sAMG below their Eq. (3) bound, DLR above it."""
        assert pcie_table["sAMG"].nnzr < pcie_table["sAMG"].nnzr_bound_50pct
        assert pcie_table["DLR1"].nnzr > pcie_table["DLR1"].nnzr_bound_50pct


def test_bench_analysis(benchmark):
    a = benchmark(analyse, 10**6, 100.0, 0.3)
    assert a.gpu_worthwhile
