"""Fig. 4: the task-mode event timeline with a dedicated MPI thread.

Regenerates the timeline picture for a DLR1-like workload on 4 ranks
and checks its defining properties: MPI runs on thread 0 concurrently
with the local spMVM on the GPU; the halo upload and the nonlocal
kernel follow; the result equals the sum of the parts minus overlap.
"""

import pytest

from repro.distributed import (
    DIRAC_IB,
    KernelCost,
    build_plan,
    partition_rows,
    render_timeline,
    simulate_mode,
    stats_from_plan,
)
from repro.formats import CSRMatrix
from repro.gpu import C2050
from repro.matrices import generate

from _bench_common import emit_table

NODES = 4


@pytest.fixture(scope="module")
def task_result():
    coo = generate("DLR1", scale=32)
    csr = CSRMatrix.from_coo(coo)
    part = partition_rows(csr.nrows, NODES, row_weights=csr.row_lengths())
    plan = build_plan(csr, part, with_matrices=False)
    stats = stats_from_plan(plan, itemsize=8, workload_scale=32)
    res = simulate_mode(
        "task", stats, C2050(ecc=True), DIRAC_IB, KernelCost.from_alpha(0.25)
    )
    art = render_timeline(res.timeline, rank=res.slowest_rank)
    emit_table("fig4_timeline", art.splitlines())
    return res


class TestFig4:
    def test_all_fig4_phases_present(self, task_result):
        labels = {iv.label for iv in task_result.timeline.intervals}
        for expected in (
            "gather",
            "DL buf",
            "MPI_Waitall",
            "UL halo",
            "local spMVM",
            "nonlocal spMVM",
        ):
            assert expected in labels

    def test_mpi_overlaps_local_kernel(self, task_result):
        tl = task_result.timeline
        r = task_result.slowest_rank
        local = next(iv for iv in tl.for_rank(r) if iv.label == "local spMVM")
        mpi = next(iv for iv in tl.for_rank(r) if iv.label == "MPI_Waitall")
        assert local.start < mpi.end and mpi.start < local.end

    def test_nonlocal_after_upload_and_local(self, task_result):
        tl = task_result.timeline
        r = task_result.slowest_rank
        nl = next(iv for iv in tl.for_rank(r) if iv.label == "nonlocal spMVM")
        ul = next(iv for iv in tl.for_rank(r) if iv.label == "UL halo")
        local = next(iv for iv in tl.for_rank(r) if iv.label == "local spMVM")
        assert nl.start >= max(ul.end, local.end) - 1e-12

    def test_makespan_below_serial_sum(self, task_result):
        """Overlap means the iteration is shorter than the busy total."""
        tl = task_result.timeline
        r = task_result.slowest_rank
        busy = sum(iv.duration for iv in tl.for_rank(r))
        assert task_result.per_rank_seconds[r] < busy

    def test_render_contains_lanes(self, task_result):
        art = render_timeline(task_result.timeline, rank=task_result.slowest_rank)
        for lane in ("gpu", "pcie", "thread0"):
            assert lane in art


def test_bench_mode_simulation(benchmark):
    coo = generate("DLR1", scale=64)
    csr = CSRMatrix.from_coo(coo)
    part = partition_rows(csr.nrows, NODES, row_weights=csr.row_lengths())
    plan = build_plan(csr, part, with_matrices=False)
    stats = stats_from_plan(plan, itemsize=8, workload_scale=64)

    res = benchmark(
        simulate_mode, "task", stats, C2050(ecc=True), DIRAC_IB
    )
    assert res.gflops > 0
