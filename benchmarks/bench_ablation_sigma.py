"""Ablation: the sorting window sigma (the SELL-C-sigma outlook).

Sect. II-A names the pJDS caveat — the global sort can destroy RHS
locality — and Sect. IV points to sliced formats as follow-up work.
Sweeping sigma from 1 (no reordering) to N (full pJDS sort) exposes
the trade-off: padding shrinks with sigma while the RHS gather traffic
can grow as the permutation scatters formerly-adjacent rows.
"""

import pytest

from repro.core import SELLMatrix
from repro.gpu import C2070, simulate_spmv

from _bench_common import SCALE, emit_table

KEY = "DLR2"  # block structure => locality destruction is visible


@pytest.fixture(scope="module")
def sigmas(suite_coo):
    n = suite_coo[KEY].nrows
    return (1, 32, 256, 2048, n)


@pytest.fixture(scope="module")
def sweep(suite_coo, sigmas):
    coo = suite_coo[KEY]
    dev = C2070(ecc=True).scaled(SCALE)
    rows = {}
    for sigma in sigmas:
        m = SELLMatrix.from_coo(coo, chunk_rows=32, sigma=sigma)
        rep = simulate_spmv(m, dev, "DP")
        rows[sigma] = (m, rep)
    lines = [
        f"{'sigma':>7s} {'slots':>9s} {'padding %':>10s} {'rhs MB':>8s} {'GF/s':>7s}"
    ]
    for sigma, (m, rep) in rows.items():
        pad = 100.0 * (m.total_slots / m.nnz - 1.0)
        lines.append(
            f"{sigma:7d} {m.total_slots:9d} {pad:10.2f} "
            f"{rep.rhs_bytes / 2**20:8.2f} {rep.gflops:7.2f}"
        )
    emit_table("ablation_sigma", lines)
    return rows


class TestSigmaAblation:
    def test_padding_decreases_with_sigma(self, sweep, sigmas):
        slots = [sweep[s][0].total_slots for s in sigmas]
        assert slots == sorted(slots, reverse=True)

    def test_sigma1_no_reordering(self, sweep):
        assert sweep[1][0].permutation.is_identity

    def test_full_sigma_minimises_storage(self, sweep, sigmas):
        full = sweep[sigmas[-1]][0]
        for s in sigmas[:-1]:
            assert full.total_slots <= sweep[s][0].total_slots

    def test_rhs_traffic_grows_with_sigma(self, sweep, sigmas):
        """Sorting scatters the 5x5-block locality (the pJDS caveat)."""
        first = sweep[1][1].rhs_bytes
        last = sweep[sigmas[-1]][1].rhs_bytes
        assert last >= first

    def test_intermediate_sigma_is_competitive(self, sweep, sigmas):
        """A windowed sort keeps most of the storage win at lower RHS
        cost — the SELL-C-sigma design point."""
        mid = sigmas[2]
        g_mid = sweep[mid][1].gflops
        g_all = [rep.gflops for _, rep in sweep.values()]
        assert g_mid >= 0.9 * max(g_all)


def test_bench_sell_construction(benchmark, suite_coo):
    coo = suite_coo[KEY]
    m = benchmark.pedantic(
        SELLMatrix.from_coo, args=(coo,), kwargs={"chunk_rows": 32, "sigma": 256},
        rounds=3, iterations=1,
    )
    assert m.sigma == 256
