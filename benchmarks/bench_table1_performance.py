"""Table I, performance rows: ELLPACK-R vs pJDS on the C2070 model.

Grid: {SP, DP} x {ECC off, on} x {ELLPACK-R, pJDS} x 4 matrices, GF/s.
The absolute numbers come from the mechanistic device model at 1/64
scale (cache and residency scaled alongside); the paper's *shape* —
who wins where, the ECC and precision derating — is the target.
"""

import numpy as np
import pytest

from repro.gpu import C2070, extract_trace, run_kernel

from _bench_common import SCALE, TABLE1_KEYS, emit_table

#: Table I of the paper: (ELLPACK-R, pJDS) GF/s per configuration
PAPER = {
    ("SP", 0): {"DLR1": (22.1, 27.6), "DLR2": (15.2, 18.7), "HMEp": (15.8, 18.9), "sAMG": (14.6, 19.5)},
    ("SP", 1): {"DLR1": (18.0, 19.1), "DLR2": (13.2, 12.1), "HMEp": (12.1, 11.6), "sAMG": (11.6, 12.6)},
    ("DP", 0): {"DLR1": (18.7, 18.3), "DLR2": (11.7, 14.6), "HMEp": (12.3, 12.2), "sAMG": (11.1, 13.0)},
    ("DP", 1): {"DLR1": (12.9, 12.9), "DLR2": (9.6, 9.5), "HMEp": (7.9, 7.5), "sAMG": (7.8, 8.5)},
}

CONFIGS = [("SP", 0), ("SP", 1), ("DP", 0), ("DP", 1)]


@pytest.fixture(scope="module")
def perf_grid(suite_formats):
    """GF/s per (precision, ecc, matrix, format) from the device model."""
    grid = {}
    traces = {}
    for prec, dtype in (("SP", np.float32), ("DP", np.float64)):
        base = C2070().scaled(SCALE)
        for key in TABLE1_KEYS:
            for fmt in ("ELLPACK-R", "pJDS"):
                m = suite_formats(key, fmt, dtype)
                traces[(prec, key, fmt)] = extract_trace(m, base, prec)
        for ecc in (0, 1):
            dev = C2070(ecc=bool(ecc)).scaled(SCALE)
            for key in TABLE1_KEYS:
                for fmt in ("ELLPACK-R", "pJDS"):
                    rep = run_kernel(traces[(prec, key, fmt)], dev)
                    grid[(prec, ecc, key, fmt)] = rep
    lines = [
        f"{'config':10s} {'format':10s} "
        + " ".join(f"{k:>12s}" for k in TABLE1_KEYS)
    ]
    for prec, ecc in CONFIGS:
        for fmt in ("ELLPACK-R", "pJDS"):
            cells = []
            for key in TABLE1_KEYS:
                g = grid[(prec, ecc, key, fmt)].gflops
                p = PAPER[(prec, ecc)][key][0 if fmt == "ELLPACK-R" else 1]
                cells.append(f"{g:5.1f}(p{p:4.1f})")
            lines.append(f"{prec} ECC={ecc:d}   {fmt:10s} " + " ".join(cells))
    emit_table("table1_performance", lines)
    return grid


class TestShape:
    def test_all_values_in_fermi_range(self, perf_grid):
        """Every cell within the physically sensible 2-35 GF/s window."""
        for rep in perf_grid.values():
            assert 2.0 < rep.gflops < 35.0

    def test_ecc_derates_every_cell(self, perf_grid):
        for prec, _ in (("SP", 0), ("DP", 0)):
            for key in TABLE1_KEYS:
                for fmt in ("ELLPACK-R", "pJDS"):
                    off = perf_grid[(prec, 0, key, fmt)].gflops
                    on = perf_grid[(prec, 1, key, fmt)].gflops
                    assert on < off

    def test_sp_beats_dp(self, perf_grid):
        for ecc in (0, 1):
            for key in TABLE1_KEYS:
                for fmt in ("ELLPACK-R", "pJDS"):
                    sp = perf_grid[("SP", ecc, key, fmt)].gflops
                    dp = perf_grid[("DP", ecc, key, fmt)].gflops
                    assert sp > dp

    def test_pjds_wins_dlr2_and_samg(self, perf_grid):
        """Table I: pJDS leads on the high-reduction matrices."""
        for key in ("DLR2", "sAMG"):
            for prec, ecc in CONFIGS:
                er = perf_grid[(prec, ecc, key, "ELLPACK-R")].gflops
                pj = perf_grid[(prec, ecc, key, fmt := "pJDS")].gflops
                assert pj >= 0.95 * er, (key, prec, ecc)

    def test_pjds_within_paper_band_everywhere(self, perf_grid):
        """Paper: pJDS achieves 91 %..130 % of ELLPACK-R; allow 70-135 %."""
        for prec, ecc in CONFIGS:
            for key in TABLE1_KEYS:
                er = perf_grid[(prec, ecc, key, "ELLPACK-R")].gflops
                pj = perf_grid[(prec, ecc, key, "pJDS")].gflops
                assert 0.70 <= pj / er <= 1.35, (key, prec, ecc)

    def test_absolute_within_45pct_of_paper(self, perf_grid):
        """Absolute GF/s within +-45 % of every Table I cell (the model
        runs the synthetic HMEp a touch fast; shape tests above pin the
        orderings that matter)."""
        for prec, ecc in CONFIGS:
            for key in TABLE1_KEYS:
                for i, fmt in enumerate(("ELLPACK-R", "pJDS")):
                    got = perf_grid[(prec, ecc, key, fmt)].gflops
                    want = PAPER[(prec, ecc)][key][i]
                    assert got == pytest.approx(want, rel=0.45), (key, prec, ecc, fmt)


@pytest.mark.parametrize("key", TABLE1_KEYS)
@pytest.mark.parametrize("fmt", ["ELLPACK-R", "pJDS"])
def test_bench_device_simulation(benchmark, suite_formats, key, fmt):
    """Wall-clock of one trace extraction + kernel evaluation."""
    from repro.gpu import simulate_spmv

    m = suite_formats(key, fmt)
    dev = C2070(ecc=True).scaled(SCALE)
    rep = benchmark.pedantic(
        simulate_spmv, args=(m, dev, "DP"), rounds=2, iterations=1
    )
    assert rep.gflops > 0
