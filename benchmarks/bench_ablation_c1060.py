"""Ablation: GPU generation — Fermi (C2070) vs pre-Fermi (C1060).

Sect. II-A: the pJDS permutation's RHS-locality damage "is more severe
on older GPGPU generations without L2 cache".  We rerun the pJDS /
ELLPACK-R comparison on both device generations and check that the
pJDS-vs-ELLPACK-R ratio degrades when the L2 disappears.
"""

import numpy as np
import pytest

from repro.gpu import C1060, C2070, simulate_spmv

from _bench_common import SCALE, TABLE1_KEYS, emit_table


@pytest.fixture(scope="module")
def generation_grid(suite_formats):
    grid = {}
    devices = {
        "C2070": C2070(ecc=False).scaled(SCALE),
        "C1060": C1060().scaled(SCALE),
    }
    for key in TABLE1_KEYS:
        for fmt in ("ELLPACK-R", "pJDS"):
            m = suite_formats(key, fmt, np.float64)
            for dev_name, dev in devices.items():
                grid[(key, fmt, dev_name)] = simulate_spmv(m, dev, "DP")
    lines = [
        f"{'matrix':6s} {'device':6s} {'ELLR GF/s':>9s} {'pJDS GF/s':>9s} "
        f"{'ratio':>6s} {'aE':>5s} {'aP':>5s}"
    ]
    for key in TABLE1_KEYS:
        for dev_name in ("C2070", "C1060"):
            er = grid[(key, "ELLPACK-R", dev_name)]
            pj = grid[(key, "pJDS", dev_name)]
            lines.append(
                f"{key:6s} {dev_name:6s} {er.gflops:9.2f} {pj.gflops:9.2f} "
                f"{pj.gflops / er.gflops:6.2f} {er.effective_alpha:5.2f} "
                f"{pj.effective_alpha:5.2f}"
            )
    emit_table("ablation_c1060", lines)
    return grid


class TestGenerationAblation:
    def test_c1060_slower_everywhere(self, generation_grid):
        for key in TABLE1_KEYS:
            for fmt in ("ELLPACK-R", "pJDS"):
                fermi = generation_grid[(key, fmt, "C2070")].gflops
                gt200 = generation_grid[(key, fmt, "C1060")].gflops
                assert gt200 < fermi, (key, fmt)

    def test_rhs_traffic_explodes_without_l2(self, generation_grid):
        for key in TABLE1_KEYS:
            fermi = generation_grid[(key, "pJDS", "C2070")]
            gt200 = generation_grid[(key, "pJDS", "C1060")]
            assert gt200.effective_alpha >= fermi.effective_alpha

    def test_pjds_penalty_more_severe_without_l2(self, generation_grid):
        """The paper's claim, on the locality-sensitive matrices: the
        pJDS/ELLPACK-R ratio drops from Fermi to the C1060."""
        worse = 0
        for key in ("DLR2", "HMEp"):
            r_fermi = (
                generation_grid[(key, "pJDS", "C2070")].gflops
                / generation_grid[(key, "ELLPACK-R", "C2070")].gflops
            )
            r_gt200 = (
                generation_grid[(key, "pJDS", "C1060")].gflops
                / generation_grid[(key, "ELLPACK-R", "C1060")].gflops
            )
            if r_gt200 < r_fermi:
                worse += 1
        assert worse >= 1

    def test_c1060_cacheless(self):
        dev = C1060()
        assert dev.l2_bytes == 0
        assert dev.l2_lines == 0
        assert dev.scaled(64).l2_bytes == 0

    def test_c1060_spec(self):
        dev = C1060()
        assert dev.num_sms == 30
        assert dev.cache_line_bytes == 64
        assert dev.bandwidth_gbs == 78.0


def test_bench_c1060_simulation(benchmark, suite_formats):
    m = suite_formats("sAMG", "pJDS", np.float64)
    rep = benchmark.pedantic(
        simulate_spmv, args=(m, C1060().scaled(SCALE), "DP"), rounds=2, iterations=1
    )
    assert rep.gflops > 0
