"""Shared JSON-artifact and threshold-gate helpers for the bench scripts.

Every bench entry point (``bench_kernels.py`` and its ``--dispatch`` /
``--obs-overhead`` / ``--compiled`` / ``--prune-quality`` modes,
``bench_serve.py`` and its ``--fleet`` mode) writes its records with
:func:`write_artifact`, splits the trailing ``{"summary": True}``
record off with :func:`split_summary`, and funnels its thresholds
through one :class:`GateSet`, so CI reads one exit-code convention:

* ``EXIT_OK`` (0)          — every gate held (or nothing was gated);
* ``EXIT_GATE_FAILED`` (1) — at least one threshold was violated
  (each prints a ``FAIL: ...`` line as it trips);
* ``EXIT_NO_DATA`` (3)     — the probe produced nothing to gate
  (e.g. no compiled backend on this host).  Previously this was
  ``1`` or ``0`` depending on the flag values, so a missing backend
  was indistinguishable from a real regression.
"""

import json

EXIT_OK = 0
EXIT_GATE_FAILED = 1
EXIT_NO_DATA = 3


def write_artifact(path, records):
    """Write the records list as the CI-uploadable JSON artifact."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(records, fh, indent=2)
    return path


def split_summary(records):
    """Split ``records`` into (data rows, trailing summary or None)."""
    rows = [r for r in records if not r.get("summary")]
    tails = [r for r in records if r.get("summary")]
    return rows, (tails[-1] if tails else None)


def no_data(reason):
    """Report an ungateable run; return the dedicated exit code."""
    print(f"{reason}; nothing to gate")
    return EXIT_NO_DATA


def _show(value):
    return "none" if value is None else f"{value:.4g}"


class GateSet:
    """Threshold checks that print ``FAIL:`` lines and pool one verdict.

    A ``None`` threshold disables the check (report-only runs); a
    ``None`` *value* fails it — a summary that could not compute the
    gated quantity must not pass the gate.
    """

    def __init__(self):
        self.failures = []

    def _fail(self, msg):
        self.failures.append(msg)
        print(f"FAIL: {msg}")

    def at_least(self, value, floor, label):
        """Gate ``value >= floor``; skip when ``floor`` is None."""
        if floor is None:
            return True
        if value is None or value < floor:
            self._fail(f"{label} {_show(value)} < {floor:g}")
            return False
        return True

    def at_most(self, value, limit, label):
        """Gate ``value <= limit``; skip when ``limit`` is None."""
        if limit is None:
            return True
        if value is None or value > limit:
            self._fail(f"{label} {_show(value)} > {limit:g}")
            return False
        return True

    def require(self, ok, label):
        """Gate a boolean invariant (e.g. bitwise-equal answers)."""
        if not ok:
            self._fail(label)
            return False
        return True

    def exit_code(self):
        return EXIT_GATE_FAILED if self.failures else EXIT_OK
