"""Solver pipeline: spMVM share of real iterative algorithms.

The paper's opening claim — spMVM "may easily consume most of the
total runtime" of sparse solvers — measured on this package's own
solvers: wall-clock per CG / Lanczos / KPM run, spMVM call counts, and
the format comparison inside an identical solver loop.
"""

import time

import numpy as np
import pytest

from repro.formats import convert
from repro.matrices import poisson2d
from repro.solvers import (
    bicgstab,
    conjugate_gradient,
    kpm_spectral_density,
    lanczos,
)

from _bench_common import emit_table


@pytest.fixture(scope="module")
def spd():
    return poisson2d(48, 48)


@pytest.fixture(scope="module")
def solver_table(spd):
    rows = []
    b = np.random.default_rng(0).normal(size=spd.nrows)
    pjds = convert(spd, "pJDS")

    t0 = time.perf_counter()
    cg = conjugate_gradient(pjds, b, tol=1e-8)
    t_cg = time.perf_counter() - t0
    rows.append(("CG", cg.iterations, cg.spmv_count, t_cg))

    t0 = time.perf_counter()
    bi = bicgstab(pjds, b, tol=1e-8)
    t_bi = time.perf_counter() - t0
    rows.append(("BiCGSTAB", bi.iterations, bi.spmv_count, t_bi))

    t0 = time.perf_counter()
    lz = lanczos(pjds, num_eigenvalues=2, tol=1e-8)
    t_lz = time.perf_counter() - t0
    rows.append(("Lanczos", lz.iterations, lz.spmv_count, t_lz))

    t0 = time.perf_counter()
    kpm = kpm_spectral_density(pjds, num_moments=64, num_vectors=4, seed=1)
    t_kpm = time.perf_counter() - t0
    rows.append(("KPM", 64, kpm.spmv_count, t_kpm))

    lines = [f"{'solver':9s} {'iters':>6s} {'spMVMs':>7s} {'seconds':>8s}"]
    for name, iters, spmvs, sec in rows:
        lines.append(f"{name:9s} {iters:6d} {spmvs:7d} {sec:8.3f}")
    emit_table("solver_pipeline", lines)
    return {r[0]: r for r in rows}


class TestSolverPipeline:
    def test_all_solvers_ran(self, solver_table):
        assert set(solver_table) == {"CG", "BiCGSTAB", "Lanczos", "KPM"}

    def test_spmv_dominates_call_counts(self, solver_table):
        """Each solver issues at least one spMVM per iteration."""
        for name, iters, spmvs, _ in solver_table.values():
            assert spmvs >= iters * 0.9, name

    def test_kpm_is_pure_spmvm(self, solver_table):
        _, moments, spmvs, _ = solver_table["KPM"]
        # (moments - 1) applications per random vector + bound probes
        assert spmvs >= 4 * (moments - 1)


@pytest.mark.parametrize("fmt", ["CRS", "ELLPACK-R", "pJDS", "SELL-C-sigma"])
def test_bench_cg_iteration(benchmark, spd, fmt):
    """Wall-clock of a fixed-iteration CG run per storage format."""
    m = convert(spd, fmt)
    b = np.ones(spd.nrows)

    def run():
        return conjugate_gradient(m, b, tol=1e-30, max_iter=20)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert res.iterations == 20


def test_bench_kpm_moments(benchmark, spd):
    m = convert(spd, "pJDS")
    res = benchmark.pedantic(
        kpm_spectral_density,
        args=(m,),
        kwargs={"num_moments": 32, "num_vectors": 2, "bounds": (0.0, 8.0)},
        rounds=2,
        iterations=1,
    )
    assert res.spmv_count == 2 * 31
