"""Shared benchmark helpers (uniquely named to avoid conftest shadowing).

Every bench regenerates one table or figure of the paper.  Tables are
printed to stdout (run with ``-s`` to see them live) and written to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference them.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.formats import convert
from repro.matrices import generate

#: matrix scale used by the benches (1/SCALE of the paper dimensions)
SCALE = 64
#: Table I matrices in paper column order
TABLE1_KEYS = ("DLR1", "DLR2", "HMEp", "sAMG")

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def suite_coo():
    """The four Table I matrices at 1/64 scale (DP)."""
    return {k: generate(k, scale=SCALE) for k in TABLE1_KEYS}


@pytest.fixture(scope="session")
def suite_formats(suite_coo):
    """Cached format conversions per matrix and precision."""
    cache: dict = {}

    def get(key: str, fmt: str, dtype=np.float64):
        ck = (key, fmt, np.dtype(dtype).name)
        if ck not in cache:
            coo = suite_coo[key].astype(dtype)
            cache[ck] = convert(coo, fmt)
        return cache[ck]

    return get


def emit_table(name: str, lines: list[str]) -> str:
    """Print a result table and persist it under benchmarks/results/."""
    text = "\n".join(lines)
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    return text
