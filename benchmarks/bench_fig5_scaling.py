"""Fig. 5: strong scaling of DLR1 (a) and UHBR (b) on the Dirac model.

Paper shape targets:

* DLR1 — single-GPU reference 10.9 GF/s; scaling flattens by 32 nodes
  (task ~60 GF/s in the paper); task mode leads at small/medium node
  counts; the variants converge at large counts.
* UHBR — reference 44.6 GF/s at 5 nodes is memory-infeasible below 5
  nodes on a 3 GB C2050; task mode reaches ~84 % parallel efficiency
  at 32 nodes (naive overlap ~70 %).
"""

import pytest

from repro.distributed import (
    KernelCost,
    single_gpu_effective_gflops,
    strong_scaling,
)
from repro.formats import convert
from repro.gpu import C2050
from repro.matrices import generate

from _bench_common import emit_table

DLR1_NODES = [1, 2, 4, 8, 16, 24, 32]
UHBR_NODES = [5, 8, 16, 24, 32]
DLR1_SCALE = 16
UHBR_SCALE = 64


@pytest.fixture(scope="module")
def device():
    return C2050(ecc=True)


@pytest.fixture(scope="module")
def dlr1_series(device):
    coo = generate("DLR1", scale=DLR1_SCALE)
    return strong_scaling(
        coo,
        DLR1_NODES,
        device=device,
        cost=KernelCost.from_alpha(0.25),
        workload_scale=DLR1_SCALE,
        matrix_name="DLR1",
    )


@pytest.fixture(scope="module")
def uhbr_series(device):
    coo = generate("UHBR", scale=UHBR_SCALE)
    return strong_scaling(
        coo,
        UHBR_NODES,
        device=device,
        cost=KernelCost.from_alpha(0.25),
        workload_scale=UHBR_SCALE,
        matrix_name="UHBR",
    )


@pytest.fixture(scope="module")
def scaling_tables(dlr1_series, uhbr_series, device):
    lines = []
    for series, nodes, ref_paper in (
        (dlr1_series, DLR1_NODES, 10.9),
        (uhbr_series, UHBR_NODES, 44.6),
    ):
        lines.append(f"--- {series.matrix_name} (GF/s per node count) ---")
        lines.append("nodes   " + " ".join(f"{n:7d}" for n in nodes))
        for mode in ("vector", "naive", "task"):
            vals = " ".join(f"{p.gflops:7.1f}" for p in series.series(mode))
            lines.append(f"{mode:7s} {vals}")
        lines.append(f"(paper single-GPU reference: {ref_paper} GF/s)")
        lines.append("")
    emit_table("fig5_scaling", lines)
    return {"DLR1": dlr1_series, "UHBR": uhbr_series}


class TestFig5a:
    def test_single_gpu_reference(self, device):
        """The 10.9 GF/s dashed line of Fig. 5a."""
        eff = single_gpu_effective_gflops(
            40_025_628, 278_502, device, KernelCost.from_alpha(0.25)
        )
        assert eff == pytest.approx(10.9, rel=0.12)

    def test_task_mode_leads_midrange(self, scaling_tables):
        s = scaling_tables["DLR1"]
        for nodes in (2, 4, 8):
            assert s.gflops_at("task", nodes) >= s.gflops_at("vector", nodes)

    def test_flattening_at_scale(self, scaling_tables):
        """Per-node efficiency collapses by 32 nodes (paper: ~17 %)."""
        s = scaling_tables["DLR1"]
        base = s.series("task")[0]
        eff32 = s.series("task")[-1].efficiency(base)
        assert eff32 < 0.45

    def test_modes_converge_at_high_counts(self, scaling_tables):
        s = scaling_tables["DLR1"]
        hi = [s.gflops_at(m, 32) for m in ("vector", "naive", "task")]
        assert max(hi) / min(hi) < 1.25

    def test_absolute_within_50pct_of_paper_task32(self, scaling_tables):
        """Paper Fig. 5a task mode tops out near ~60 GF/s at 32 nodes."""
        got = scaling_tables["DLR1"].gflops_at("task", 32)
        assert got == pytest.approx(60.0, rel=0.5)


class TestFig5b:
    def test_uhbr_infeasible_at_small_node_counts(self, device):
        """'Due to memory restrictions ... not possible on fewer than
        five nodes': the matrix alone rules out 1-2 C2050s; with the
        vectors, halo and CUDA runtime overheads the practical bound
        is the paper's five."""
        coo = generate("UHBR", scale=UHBR_SCALE)
        bytes_total = convert(coo, "ELLPACK-R").nbytes * UHBR_SCALE
        assert bytes_total / 2 > device.memory_bytes  # 2 nodes impossible
        assert bytes_total / 5 < device.memory_bytes  # 5 nodes feasible

    def test_single_gpu_reference(self, device):
        """The 44.6 GF/s line: UHBR's Nnzr makes PCIe nearly free, so
        the kernel-rate reference is ~4x DLR1's vector-transfer-limited
        one; we accept a broad band here."""
        coo = generate("UHBR", scale=UHBR_SCALE)
        eff = single_gpu_effective_gflops(
            coo.nnz * UHBR_SCALE,
            coo.nrows * UHBR_SCALE,
            device,
            KernelCost.from_alpha(0.25),
        )
        assert 10.0 < eff < 44.6

    def test_task_efficiency_near_paper(self, scaling_tables):
        """84 % task-mode parallel efficiency at 32 nodes (paper)."""
        s = scaling_tables["UHBR"]
        base = s.series("task")[0]
        eff = s.series("task")[-1].efficiency(base)
        assert eff == pytest.approx(0.84, abs=0.12)

    def test_naive_efficiency_below_task(self, scaling_tables):
        s = scaling_tables["UHBR"]
        base_t = s.series("task")[0]
        base_n = s.series("naive")[0]
        eff_t = s.series("task")[-1].efficiency(base_t)
        eff_n = s.series("naive")[-1].efficiency(base_n)
        assert eff_n < eff_t
        assert eff_n == pytest.approx(0.70, abs=0.15)

    def test_good_scaling_no_breakdown(self, scaling_tables):
        """UHBR keeps gaining through 32 nodes (no DLR1-style collapse)."""
        task = scaling_tables["UHBR"].series("task")
        gains = [b.gflops / a.gflops for a, b in zip(task, task[1:])]
        assert all(g > 1.1 for g in gains)


class TestSectIIIExclusion:
    """'We restrict the discussion in this section to the DLR1 and UHBR
    matrices' — because HMEp/sAMG single-GPU performance (PCIe charged)
    'is already below the capability of a typical dual-socket server
    node'.  Regenerate that decision."""

    def test_hmep_samg_excluded(self, device):
        from repro.matrices import SUITE
        from repro.perfmodel import cpu_crs_gflops

        for key, alpha in (("HMEp", 0.73), ("sAMG", 1.0)):
            spec = SUITE[key]
            eff = single_gpu_effective_gflops(
                spec.paper_nnz,
                spec.paper_dim,
                device,
                KernelCost.from_alpha(alpha),
            )
            cpu = cpu_crs_gflops(0.3, spec.paper_nnzr)
            # one GPU lands at/below ~1.3x the CPU node: not worth a
            # GPU cluster (the paper's cut-off reasoning)
            assert eff < 1.4 * cpu, key

    def test_dlr_class_included(self, device):
        from repro.matrices import SUITE
        from repro.perfmodel import cpu_crs_gflops

        for key in ("DLR1", "UHBR"):
            spec = SUITE[key]
            eff = single_gpu_effective_gflops(
                spec.paper_nnz, spec.paper_dim, device, KernelCost.from_alpha(0.25)
            )
            cpu = cpu_crs_gflops(0.2, spec.paper_nnzr)
            assert eff > 1.5 * cpu, key


def test_bench_strong_scaling_sweep(benchmark, device):
    coo = generate("DLR1", scale=64)
    result = benchmark.pedantic(
        strong_scaling,
        args=(coo, [1, 4, 16]),
        kwargs={
            "device": device,
            "cost": KernelCost.from_alpha(0.25),
            "workload_scale": 64,
            "matrix_name": "DLR1",
        },
        rounds=2,
        iterations=1,
    )
    assert len(result.points) == 9
