"""Fig. 2: scheduling patterns and required storage per format.

The figure compares, for a toy matrix and a 4-thread warp, three
quantities per format:

* stored value slots (white + light + dark boxes),
* executed operations (arrows),
* reserved warp-iterations (hardware occupancy, light + dark).

ELLPACK computes everything it stores; ELLPACK-R executes only the
non-zeros but reserves full warps; pJDS reduces both storage and
reservation to (nearly) the executed work.
"""

import numpy as np
import pytest

from repro.formats import COOMatrix, convert
from repro.gpu import DeviceSpec, extract_trace

from _bench_common import emit_table


@pytest.fixture(scope="module")
def toy():
    """An 8-row matrix with strongly imbalanced row lengths."""
    rng = np.random.default_rng(0)
    lengths = [7, 2, 5, 1, 3, 6, 2, 1]
    rows, cols = [], []
    for i, k in enumerate(lengths):
        rows += [i] * k
        cols += rng.choice(8, size=k, replace=False).tolist()
    return COOMatrix(rows, cols, np.ones(len(rows)), (8, 8))


@pytest.fixture(scope="module")
def warp4():
    """Fig. 2 uses a four-thread warp."""
    return DeviceSpec(warp_size=4, resident_warps=2)


@pytest.fixture(scope="module")
def fig2_table(toy, warp4):
    rows = {}
    for fmt, kwargs in (
        ("ELLPACK", {"row_pad": 4}),
        ("ELLPACK-R", {"row_pad": 4}),
        ("pJDS", {"block_rows": 4}),
    ):
        m = convert(toy, fmt, **kwargs)
        tr = extract_trace(m, warp4, "DP")
        rows[fmt] = {
            "stored": m.stored_elements,
            "executed": tr.executed_slots,
            "reserved_lanes": tr.reserved_steps * warp4.warp_size,
        }
    lines = [f"{'format':10s} {'stored':>7s} {'executed':>9s} {'reserved':>9s}"]
    for fmt, r in rows.items():
        lines.append(
            f"{fmt:10s} {r['stored']:7d} {r['executed']:9d} {r['reserved_lanes']:9d}"
        )
    lines.append(f"(non-zeros: {toy.nnz}; warp size 4)")
    emit_table("fig2_overhead", lines)
    return rows


class TestFig2:
    def test_ellpack_executes_everything_it_stores(self, fig2_table):
        e = fig2_table["ELLPACK"]
        assert e["executed"] == e["stored"]

    def test_ellpack_r_executes_only_nonzeros(self, fig2_table, toy):
        er = fig2_table["ELLPACK-R"]
        assert er["executed"] == toy.nnz
        # but storage is unchanged (white boxes stay)
        assert er["stored"] == fig2_table["ELLPACK"]["stored"]

    def test_ellpack_r_still_reserves_warp_maxima(self, fig2_table, toy):
        """The light boxes of Fig. 2b: reserved > executed."""
        er = fig2_table["ELLPACK-R"]
        assert er["reserved_lanes"] > toy.nnz

    def test_pjds_cuts_storage(self, fig2_table):
        assert fig2_table["pJDS"]["stored"] < fig2_table["ELLPACK"]["stored"]

    def test_pjds_cuts_reservation(self, fig2_table):
        assert (
            fig2_table["pJDS"]["reserved_lanes"]
            <= fig2_table["ELLPACK-R"]["reserved_lanes"]
        )

    def test_pjds_storage_equals_reservation(self, fig2_table):
        """In pJDS the padded rectangle IS the reserved work (Fig. 2c)."""
        p = fig2_table["pJDS"]
        assert p["stored"] == p["reserved_lanes"]


def test_bench_trace_extraction_toy(benchmark, toy, warp4):
    m = convert(toy, "pJDS", block_rows=4)
    tr = benchmark(extract_trace, m, warp4, "DP")
    assert tr.nnz == toy.nnz
