"""Table I, last row: Westmere-EP CRS (DP) baseline.

Paper values: DLR1 5.7, DLR2 5.8, HMEp 3.9, sAMG 4.1 GF/s.  The model
is bandwidth-limited CRS with a cache-derived alpha; the wall-clock
bench times the actual vectorised NumPy CRS kernel for reference.
"""

import numpy as np
import pytest

from repro.perfmodel import model_cpu_crs
from repro.utils import gflops

from _bench_common import SCALE, TABLE1_KEYS, emit_table

PAPER_CPU = {"DLR1": 5.7, "DLR2": 5.8, "HMEp": 3.9, "sAMG": 4.1}


@pytest.fixture(scope="module")
def cpu_table(suite_coo):
    rows = {}
    for key in TABLE1_KEYS:
        rep = model_cpu_crs(suite_coo[key], scale=SCALE)
        rows[key] = rep
    lines = [f"{'matrix':6s} {'model GF/s':>10s} {'paper GF/s':>10s} {'alpha':>6s}"]
    for key in TABLE1_KEYS:
        r = rows[key]
        lines.append(
            f"{key:6s} {r.gflops:10.2f} {PAPER_CPU[key]:10.1f} {r.alpha:6.2f}"
        )
    emit_table("table1_cpu", lines)
    return rows


def test_cpu_model_within_band(cpu_table):
    for key, rep in cpu_table.items():
        assert rep.gflops == pytest.approx(PAPER_CPU[key], rel=0.45)


def test_dlr_class_faster_than_low_nnzr(cpu_table):
    """The paper's ordering: DLR matrices lead the CPU row."""
    assert cpu_table["DLR1"].gflops > cpu_table["sAMG"].gflops
    assert cpu_table["DLR2"].gflops > cpu_table["HMEp"].gflops


def test_gpu_kernel_beats_cpu_for_dlr(suite_formats, cpu_table):
    """Sect. III: DLR-class matrices keep a 'substantial advantage'."""
    from repro.gpu import C2070, simulate_spmv

    dev = C2070(ecc=True).scaled(SCALE)
    rep = simulate_spmv(suite_formats("DLR1", "ELLPACK-R"), dev, "DP")
    assert rep.gflops > 1.5 * cpu_table["DLR1"].gflops


@pytest.mark.parametrize("key", TABLE1_KEYS)
def test_bench_numpy_crs_kernel(benchmark, suite_formats, key):
    """Real wall-clock of the vectorised NumPy CRS spMVM."""
    m = suite_formats(key, "CRS")
    x = np.random.default_rng(0).normal(size=m.ncols)
    out = np.zeros(m.nrows)
    result = benchmark(m.spmv, x, out=out)
    assert result is out
    # report the achieved NumPy GF/s for context (not a paper number)
    print(f"  numpy CRS {key}: {gflops(m.nnz, benchmark.stats['mean']):.3f} GF/s")
