"""Fig. 3: row-length distribution histograms (bin size 1).

Regenerates the four panels as data series and checks their defining
features: axis extents, where the weight sits, and the dynamic range
of the relative shares (Fig. 3 uses log axes down to 1e-4 .. 1e-7).
"""

import pytest

from repro.matrices import row_length_histogram

from _bench_common import TABLE1_KEYS, emit_table


@pytest.fixture(scope="module")
def histograms(suite_coo):
    hs = {k: row_length_histogram(suite_coo[k]) for k in TABLE1_KEYS}
    lines = []
    for key in TABLE1_KEYS:
        h = hs[key]
        coo = suite_coo[key]
        lines.append(
            f"{key}: N={coo.nrows} Nnz={coo.nnz} "
            f"range=[{int(coo.row_lengths().min())}, {int(coo.row_lengths().max())}]"
        )
        for start, count, share in h.as_rows():
            lines.append(f"  len={start:4d} count={count:8d} share={share:.3e}")
    emit_table("fig3_histograms", lines)
    return hs


class TestPanelShapes:
    def test_dlr1_axis_extent(self, histograms):
        """DLR1 panel spans 0..200 with mass clustered near the top."""
        h = histograms["DLR1"]
        top = h.bin_edges[h.counts > 0].max()
        assert 150 <= top <= 200
        assert h.share_at_least(int(0.8 * top)) > 0.7

    def test_dlr2_axis_extent(self, histograms):
        """DLR2 panel spans 0..600."""
        h = histograms["DLR2"]
        top = h.bin_edges[h.counts > 0].max()
        assert 500 <= top <= 620

    def test_hmep_axis_extent(self, histograms):
        """HMEp panel spans 0..25-ish."""
        h = histograms["HMEp"]
        top = h.bin_edges[h.counts > 0].max()
        assert 20 <= top <= 30

    def test_samg_axis_extent(self, histograms):
        h = histograms["sAMG"]
        top = h.bin_edges[h.counts > 0].max()
        assert 20 <= top <= 30

    def test_samg_weight_at_short_rows(self, histograms):
        """'short rows account for most of the weight'."""
        h = histograms["sAMG"]
        short = h.counts[h.bin_edges <= 8].sum()
        assert short / h.nrows > 0.5

    def test_samg_longest_over_four_times_smallest(self, suite_coo):
        lengths = suite_coo["sAMG"].row_lengths()
        assert lengths.max() / lengths.min() > 4.0

    def test_log_scale_dynamic_range(self, histograms):
        """Non-empty bins span several decades of relative share."""
        for key in TABLE1_KEYS:
            share = histograms[key].relative_share
            nz = share[share > 0]
            assert nz.max() / nz.min() > 10.0, key

    def test_shares_normalised(self, histograms):
        for key in TABLE1_KEYS:
            assert histograms[key].relative_share.sum() == pytest.approx(1.0)


@pytest.mark.parametrize("key", TABLE1_KEYS)
def test_bench_histogram(benchmark, suite_coo, key):
    """Wall-clock of histogram extraction (a bincount sweep)."""
    h = benchmark(row_length_histogram, suite_coo[key])
    assert h.counts.sum() == suite_coo[key].nrows
