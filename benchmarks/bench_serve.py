"""Closed-loop load benchmark of the repro.serve micro-batcher.

The serving claim is the paper's Eq. (1) argument applied to traffic:
SpMV is bandwidth-bound, so *k* concurrent requests coalesced into one
``spmm`` cost nearly the same memory traffic as a single request.  This
benchmark measures it end to end — a pool of closed-loop clients (each
issues its next request only after the previous one returned) hammers
one :class:`~repro.serve.scheduler.SpMVServer`, once with coalescing
disabled (``max_batch=1``, the per-request baseline) and once with the
micro-batcher on.

Run as a script (``python benchmarks/bench_serve.py``) to produce
``BENCH_serve.json``: one record per configuration with throughput,
latency quantiles (p50/p95/p99), achieved batch sizes and spmm-call
counts, plus a ``summary`` record with the batched-vs-baseline
throughput ratio — the number the CI serve-smoke step asserts on.

Fleet scaling (``--fleet``) drives the same closed loop through the
sharded :class:`~repro.serve.router.FleetRouter` at 1/2/4 shards and
writes ``BENCH_fleet.json``.  Shard kernels run in **modeled-device
mode** (``mode: "modeled-device"`` in the artifact): each shard paces
its spmm to the paper's Eq. (1) time for a device whose bandwidth is
calibrated from ``--service-ms``, exactly like the repo's other
model-driven scaling studies (``bench_fig5_scaling.py``).  The sleeps
release the GIL, so shards overlap the way real devices would, while
the router, pipes, batching, hedging and gather all run for real —
the measured scaling is the *system's*, only the kernel speed is
modeled (mandatory honesty on hosts with fewer cores than shards;
answers are still computed exactly and checked against a
single-server reference before each timed run).
"""

import threading
import time

import numpy as np

from _gates import GateSet, write_artifact


def _closed_loop(server, name, n, *, clients, requests_per_client, seed=0):
    """Run the closed loop; returns (elapsed_s, per-request latencies)."""
    start = threading.Barrier(clients + 1)
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[Exception] = []

    def client(cid: int) -> None:
        rng = np.random.default_rng(seed + cid)
        x = rng.standard_normal(n)
        start.wait()
        try:
            for _ in range(requests_per_client):
                t0 = time.perf_counter()
                server.spmv(name, x, timeout=120)
                latencies[cid].append(time.perf_counter() - t0)
        except Exception as exc:  # noqa: BLE001 - surfaced to the caller
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(c,), daemon=True)
        for c in range(clients)
    ]
    for t in threads:
        t.start()
    start.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    if errors:
        raise errors[0]
    return elapsed, [v for lat in latencies for v in lat]


def _quantiles_ms(latencies) -> dict:
    data = np.sort(np.asarray(latencies))
    if data.size == 0:
        return {"p50": None, "p95": None, "p99": None}
    pick = lambda q: float(data[min(int(np.ceil(q * data.size)) - 1, data.size - 1)])  # noqa: E731
    return {
        "p50": round(pick(0.50) * 1e3, 4),
        "p95": round(pick(0.95) * 1e3, 4),
        "p99": round(pick(0.99) * 1e3, 4),
    }


def run_serve_bench(
    scale=64,
    *,
    matrix="sAMG",
    fmt="pJDS",
    clients=8,
    requests_per_client=50,
    batch_sizes=(1, 16),
    max_delay_ms=2.0,
    workers=2,
    seed=0,
):
    """Benchmark the server at each ``max_batch``; batch 1 is the baseline.

    Every configuration serves the *same* bound matrix (loaded once,
    outside the timed region) so the comparison isolates the scheduler.
    """
    from repro.formats import convert
    from repro.matrices import generate
    from repro.serve import MatrixRegistry, SpMVServer

    mat = convert(generate(matrix, scale=scale, seed=seed), fmt)
    n = mat.ncols
    records = []
    for max_batch in batch_sizes:
        registry = MatrixRegistry(tune=False)
        registry.register("bench", matrix=mat)
        server = SpMVServer(
            registry,
            max_batch=max_batch,
            # batch-1 has nothing to wait for: dispatch immediately
            max_delay_ms=0.0 if max_batch == 1 else max_delay_ms,
            max_queue=max(256, clients * 4),
            workers=workers,
        )
        try:
            # warm up: load + bind the matrix and the worker clones
            server.spmv("bench", np.ones(n), timeout=120)
            elapsed, latencies = _closed_loop(
                server,
                "bench",
                n,
                clients=clients,
                requests_per_client=requests_per_client,
                seed=seed,
            )
            stats = server.stats()
        finally:
            server.close()
        total = clients * requests_per_client
        records.append(
            {
                "matrix": matrix,
                "format": fmt,
                "scale": scale,
                "nrows": mat.nrows,
                "nnz": mat.nnz,
                "max_batch": max_batch,
                "max_delay_ms": 0.0 if max_batch == 1 else max_delay_ms,
                "clients": clients,
                "workers": workers,
                "requests": total,
                "seconds": round(elapsed, 6),
                "throughput_rps": round(total / elapsed, 3),
                "spmm_calls": stats["spmm_calls"],
                "mean_batch_size": stats["mean_batch_size"],
                "latency_ms": _quantiles_ms(latencies),
            }
        )
    base = next(r for r in records if r["max_batch"] == 1)
    batched = [r for r in records if r["max_batch"] > 1] or [base]
    best = max(batched, key=lambda r: r["throughput_rps"])
    summary = {
        "summary": True,
        "baseline_rps": base["throughput_rps"],
        "best_rps": best["throughput_rps"],
        "best_max_batch": best["max_batch"],
        "batched_speedup": round(
            best["throughput_rps"] / base["throughput_rps"], 4
        ),
    }
    return records + [summary]


def run_fleet_bench(
    scale=512,
    *,
    matrix="sAMG",
    shard_counts=(1, 2, 4),
    clients=16,
    requests_per_client=40,
    service_ms=8.0,
    mode="process",
    replicas=1,
    workers=1,
    max_batch=16,
    max_delay_ms=2.0,
    seed=0,
):
    """Closed-loop load through the fleet router at each shard count.

    ``service_ms`` calibrates the modeled device: it is the Eq. (1)
    single-vector sweep time of the *whole* matrix on one shard, and
    the derived bandwidth paces every shard's kernels — so S shards
    each pace their ~1/S-nnz row block proportionally faster, exactly
    the per-device speedup the paper's row-block distribution buys.
    The device streams its matrix block once **per vector**
    (``per_request`` pacing) on every shard count alike, so the
    measurement isolates scatter/gather scaling from batch-formation
    noise.  Before each timed run the sharded answer is checked
    bitwise against a single-server reference (same ``csr_scipy``
    kernel).
    """
    from repro.formats import convert
    from repro.matrices import generate
    from repro.serve import Fleet, FleetRouter, MatrixRegistry
    from repro.serve.fleet import eq1_spmm_seconds

    csr = convert(generate(matrix, scale=scale, seed=seed), "CRS")
    n = csr.ncols
    bandwidth = (
        eq1_spmm_seconds(csr.nnz, csr.nrows, 1, 1.0) / (service_ms / 1e3)
    )
    # bitwise reference: the same pinned kernel, one process, no pacing
    ref_registry = MatrixRegistry(tune=False)
    ref_registry.register("bench", matrix=csr, variant="csr_scipy")
    rng = np.random.default_rng(seed)
    x_check = rng.standard_normal(n)
    with ref_registry.acquire("bench") as lease:
        y_ref = lease.clone_for("ref").spmv(x_check)

    records = []
    for nshards in shard_counts:
        fleet = Fleet(
            nshards,
            mode=mode,
            workers=workers,
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            max_queue=max(256, clients * 4),
            pace={"bandwidth_bytes": bandwidth, "per_request": True},
        )
        router = FleetRouter(fleet, replicas=min(replicas, nshards))
        try:
            router.register("bench", csr, blocks=nshards)
            # warm up (bind every block) + bitwise parity gate
            router.spmv("bench", np.ones(n), timeout=120)
            exact = bool(
                np.array_equal(router.spmv("bench", x_check), y_ref)
            )
            elapsed, latencies = _closed_loop(
                router,
                "bench",
                n,
                clients=clients,
                requests_per_client=requests_per_client,
                seed=seed,
            )
            stats = router.stats()
        finally:
            router.close()
        total = clients * requests_per_client
        records.append(
            {
                "mode": "modeled-device",
                "transport": mode,
                "matrix": matrix,
                "scale": scale,
                "nrows": csr.nrows,
                "nnz": csr.nnz,
                "shards": nshards,
                "replicas": min(replicas, nshards),
                "workers": workers,
                "clients": clients,
                "service_ms": service_ms,
                "model_bandwidth_bytes": round(bandwidth, 1),
                "requests": total,
                "seconds": round(elapsed, 6),
                "throughput_rps": round(total / elapsed, 3),
                "latency_ms": _quantiles_ms(latencies),
                "bitwise_equal": exact,
                "hedges": stats["hedges"],
                "failovers": stats["failovers"],
            }
        )
    base = next(r for r in records if r["shards"] == min(shard_counts))
    summary = {
        "summary": True,
        "mode": "modeled-device",
        "service_ms": service_ms,
        "baseline_shards": base["shards"],
        "baseline_rps": base["throughput_rps"],
        "scaling": {
            str(r["shards"]): round(
                r["throughput_rps"] / base["throughput_rps"], 4
            )
            for r in records
        },
        "bitwise_equal": all(r["bitwise_equal"] for r in records),
    }
    return records + [summary]


# ---------------------------------------------------------------------------
# pytest smoke (collected because pytest python_files includes bench_*.py)
# ---------------------------------------------------------------------------
def test_bench_serve_smoke():
    """Tiny closed loop: records well-formed, batching actually happened."""
    records = run_serve_bench(
        scale=512, clients=4, requests_per_client=10, batch_sizes=(1, 8)
    )
    rows = [r for r in records if not r.get("summary")]
    assert {r["max_batch"] for r in rows} == {1, 8}
    for r in rows:
        assert r["requests"] == 40
        assert r["throughput_rps"] > 0
        assert r["latency_ms"]["p50"] is not None
    base = next(r for r in rows if r["max_batch"] == 1)
    batched = next(r for r in rows if r["max_batch"] == 8)
    # baseline executes one spmm per request; batched coalesces
    assert base["spmm_calls"] >= base["requests"]
    assert batched["spmm_calls"] <= batched["requests"]
    assert records[-1]["summary"] and records[-1]["batched_speedup"] > 0


def test_bench_fleet_smoke():
    """Tiny fleet loop: records well-formed, answers bitwise-exact."""
    records = run_fleet_bench(
        scale=512,
        shard_counts=(1, 2),
        clients=4,
        requests_per_client=5,
        service_ms=2.0,
        mode="inproc",
    )
    rows = [r for r in records if not r.get("summary")]
    assert {r["shards"] for r in rows} == {1, 2}
    for r in rows:
        assert r["mode"] == "modeled-device"
        assert r["requests"] == 20
        assert r["throughput_rps"] > 0
        assert r["bitwise_equal"]
        assert r["latency_ms"]["p50"] is not None
    assert records[-1]["summary"] and records[-1]["bitwise_equal"]
    assert records[-1]["scaling"]["1"] == 1.0


def _main_fleet(args):
    records = run_fleet_bench(
        args.scale,
        matrix=args.matrix,
        shard_counts=tuple(args.fleet_shards),
        clients=args.clients,
        requests_per_client=args.requests,
        service_ms=args.service_ms,
        mode=args.fleet_transport,
        replicas=args.replicas,
        workers=args.workers,
        max_delay_ms=args.max_delay_ms,
    )
    write_artifact(args.out, records)
    print(
        f"{'shards':>6s} {'rps':>10s} {'scaling':>8s} "
        f"{'p50ms':>8s} {'p99ms':>8s} {'exact':>6s}"
    )
    summary = records[-1]
    for r in records:
        if r.get("summary"):
            continue
        lat = r["latency_ms"]
        print(
            f"{r['shards']:6d} {r['throughput_rps']:10.1f} "
            f"{summary['scaling'][str(r['shards'])]:8.2f} "
            f"{lat['p50']:8.3f} {lat['p99']:8.3f} "
            f"{str(r['bitwise_equal']):>6s}"
        )
    print(
        f"modeled-device fleet scaling (service_ms={args.service_ms:g}): "
        + ", ".join(
            f"{s} shards = {v:.2f}x" for s, v in summary["scaling"].items()
        )
    )
    print(f"wrote {args.out} ({len(records)} records)")
    gates = GateSet()
    gates.require(summary["bitwise_equal"], "sharded answers not bitwise")
    top = str(max(int(s) for s in summary["scaling"]))
    gates.at_least(
        summary["scaling"][top], args.min_scaling,
        f"throughput scaling at {top} shards",
    )
    return gates.exit_code()


def main(argv=None):
    import argparse

    from repro.scenarios import axis_values

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=int, default=64)
    ap.add_argument("--matrix", default="sAMG",
                    choices=axis_values("suite-matrix"))
    ap.add_argument("--format", default="pJDS",
                    choices=axis_values("format"))
    ap.add_argument("--clients", type=int, default=8)
    ap.add_argument("--requests", type=int, default=50,
                    help="requests per client")
    ap.add_argument("--batches", type=int, nargs="+", default=[1, 4, 16],
                    help="max_batch values to sweep (include 1 as baseline)")
    ap.add_argument("--max-delay-ms", type=float, default=2.0)
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--out", default=None,
                    help="artifact path (default BENCH_serve.json, or "
                         "BENCH_fleet.json with --fleet)")
    ap.add_argument("--fleet", action="store_true",
                    help="benchmark the sharded fleet router instead "
                         "(modeled-device pacing; writes BENCH_fleet.json)")
    ap.add_argument("--fleet-shards", type=int, nargs="+", default=[1, 2, 4])
    ap.add_argument("--fleet-transport", choices=("process", "inproc"),
                    default="process")
    ap.add_argument("--replicas", type=int, default=1)
    ap.add_argument("--service-ms", type=float, default=8.0,
                    help="modeled Eq. (1) whole-matrix sweep time on one "
                         "shard (calibrates the device bandwidth)")
    ap.add_argument("--min-batched-speedup", type=float, default=None,
                    help="fail (exit 1) when the batched-vs-baseline "
                         "throughput ratio is below this (CI smoke: 1.0)")
    ap.add_argument("--min-scaling", type=float, default=None,
                    help="fail (exit 1) when --fleet throughput scaling at "
                         "the largest shard count is below this")
    args = ap.parse_args(argv)
    if args.fleet:
        args.out = args.out or "BENCH_fleet.json"
        if args.workers == 2:
            args.workers = 1  # one modeled device per shard
        if args.scale == 64:
            args.scale = 512  # small vectors: keep IPC out of the signal
        if args.clients == 8:
            args.clients = 16
        if args.requests == 50:
            args.requests = 40
        return _main_fleet(args)
    args.out = args.out or "BENCH_serve.json"
    if 1 not in args.batches:
        args.batches = [1, *args.batches]
    records = run_serve_bench(
        args.scale,
        matrix=args.matrix,
        fmt=args.format,
        clients=args.clients,
        requests_per_client=args.requests,
        batch_sizes=tuple(args.batches),
        max_delay_ms=args.max_delay_ms,
        workers=args.workers,
    )
    write_artifact(args.out, records)
    hdr = (
        f"{'max_batch':>9s} {'rps':>10s} {'mean_bs':>8s} "
        f"{'spmm':>6s} {'p50ms':>8s} {'p95ms':>8s} {'p99ms':>8s}"
    )
    print(hdr)
    for r in records:
        if r.get("summary"):
            continue
        lat = r["latency_ms"]
        print(
            f"{r['max_batch']:9d} {r['throughput_rps']:10.1f} "
            f"{r['mean_batch_size']:8.2f} {r['spmm_calls']:6d} "
            f"{lat['p50']:8.3f} {lat['p95']:8.3f} {lat['p99']:8.3f}"
        )
    summary = records[-1]
    print(
        f"batched speedup: {summary['batched_speedup']:.2f}x "
        f"(max_batch={summary['best_max_batch']}, "
        f"{summary['best_rps']:.1f} vs {summary['baseline_rps']:.1f} rps)"
    )
    print(f"wrote {args.out} ({len(records)} records)")
    gates = GateSet()
    gates.at_least(
        summary["batched_speedup"], args.min_batched_speedup,
        "batched speedup",
    )
    return gates.exit_code()


if __name__ == "__main__":
    raise SystemExit(main())
