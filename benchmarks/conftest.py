"""Pytest fixtures for the benchmarks (helpers live in _bench_common)."""

from _bench_common import (  # noqa: F401 - re-exported fixtures
    RESULTS_DIR,
    SCALE,
    TABLE1_KEYS,
    emit_table,
    suite_coo,
    suite_formats,
)
