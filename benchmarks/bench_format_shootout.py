"""Format shootout: pJDS vs all related-work formats on the device model.

Sect. II-A positions pJDS against BELLPACK and ELLR-T — formats that
exploit a-priori structure or carry tuning parameters — claiming pJDS
suits "general unstructured matrices" with "no matrix-dependent tuning
parameters".  This bench puts every implemented format on the same
device model across the full suite.
"""

import pytest

from repro.gpu import C2070, simulate_spmv

from _bench_common import SCALE, TABLE1_KEYS, emit_table

FORMATS = {
    "CRS": {},  # scalar-CSR GPU kernel: the Bell & Garland baseline
    "ELLPACK": {},
    "ELLPACK-R": {},
    "ELLR-T": {"threads_per_row": 4},
    "BELLPACK": {"block_rows": 5},
    "JDS": {},
    "pJDS": {"block_rows": 32},
    "SELL-C-sigma": {"chunk_rows": 32, "sigma": 256},
    "CMRS": {"strip_height": 4},
    "ARG-CSR": {},
}

#: the formats the paper itself compares (Sect. II-A); the generality
#: claim below is *their* claim, so newcomers (CMRS, ARG-CSR — both
#: published after the paper) are reported in the table but excluded
#: from the pJDS-near-the-top assertion: them beating pJDS is a
#: finding, not a regression
PAPER_FORMATS = tuple(f for f in FORMATS if f not in ("CMRS", "ARG-CSR"))


@pytest.fixture(scope="module")
def shootout(suite_formats):
    import numpy as np

    from repro.formats import convert

    dev = C2070(ecc=True).scaled(SCALE)
    grid = {}
    for key in TABLE1_KEYS:
        coo = suite_formats(key, "COO", np.float64)
        for fmt, kwargs in FORMATS.items():
            m = convert(coo, fmt, **kwargs)
            try:
                rep = simulate_spmv(m, dev, "DP")
                grid[(key, fmt)] = (m, rep)
            except (TypeError, MemoryError):
                grid[(key, fmt)] = (m, None)
    lines = [f"{'format':13s} " + " ".join(f"{k:>14s}" for k in TABLE1_KEYS)]
    for fmt in FORMATS:
        cells = []
        for key in TABLE1_KEYS:
            m, rep = grid[(key, fmt)]
            mb = m.nbytes / 2**20
            if rep is None:
                cells.append(f"{'n/a':>6s} {mb:6.1f}M")
            else:
                cells.append(f"{rep.gflops:6.1f} {mb:6.1f}M")
        lines.append(f"{fmt:13s} " + " ".join(cells))
    lines.append("(GF/s on the scaled C2070, DP ECC on; storage in MiB)")
    emit_table("format_shootout", lines)
    return grid


class TestShootout:
    def test_pjds_always_near_the_top(self, shootout):
        """pJDS within 90 % of the best format on *every* matrix —
        the generality claim."""
        for key in TABLE1_KEYS:
            best = max(
                rep.gflops
                for (k, f), (m, rep) in shootout.items()
                if k == key and f in PAPER_FORMATS and rep is not None
            )
            pj = shootout[(key, "pJDS")][1].gflops
            assert pj >= 0.88 * best, key

    def test_bellpack_wins_only_on_block_matrices(self, shootout):
        """BELLPACK needs DLR2's dense 5x5 tiling; on sAMG its fill
        explodes the footprint."""
        bell_dlr2 = shootout[("DLR2", "BELLPACK")][0]
        bell_samg = shootout[("sAMG", "BELLPACK")][0]
        assert bell_dlr2.fill_ratio < 3.0
        assert bell_samg.fill_ratio > 3.0

    def test_pjds_smallest_footprint_on_irregular(self, shootout):
        """On sAMG the jagged formats store least; the padded
        rectangle formats store the most."""
        sizes = {f: shootout[("sAMG", f)][0].nbytes for f in FORMATS}
        assert sizes["pJDS"] <= sizes["ELLPACK-R"]
        assert sizes["pJDS"] <= sizes["BELLPACK"]
        assert sizes["JDS"] <= sizes["pJDS"]

    def test_ellr_t_helps_skewed_not_uniform(self, shootout):
        """ELLR-T targets warp imbalance; on the near-uniform DLR1 it
        should sit close to ELLPACK-R."""
        t = shootout[("DLR1", "ELLR-T")][1].gflops
        er = shootout[("DLR1", "ELLPACK-R")][1].gflops
        assert t == pytest.approx(er, rel=0.25)

    def test_scalar_csr_fabric_bound(self, shootout):
        """One thread per row scatters val/idx reads across lanes: the
        transaction-throughput limit binds — why ELLPACK won on GPUs."""
        slow = 0
        for key in TABLE1_KEYS:
            rep = shootout[(key, "CRS")][1]
            er = shootout[(key, "ELLPACK-R")][1]
            if rep.fabric_bound and rep.gflops < er.gflops:
                slow += 1
        assert slow >= 3

    def test_every_format_correct(self, shootout, suite_formats):
        """The whole grid multiplies correctly (one matrix spot-check)."""
        import numpy as np

        coo = suite_formats("sAMG", "COO", np.float64)
        x = np.random.default_rng(0).normal(size=coo.ncols)
        ref = coo.spmv(x)
        for fmt in FORMATS:
            m = shootout[("sAMG", fmt)][0]
            assert np.allclose(m.spmv(x), ref, atol=1e-9), fmt


@pytest.mark.parametrize("fmt", list(FORMATS))
def test_bench_conversion(benchmark, suite_formats, fmt):
    import numpy as np

    from repro.formats import convert

    coo = suite_formats("sAMG", "COO", np.float64)
    m = benchmark.pedantic(
        convert, args=(coo, fmt), kwargs=FORMATS[fmt], rounds=2, iterations=1
    )
    assert m.nnz == coo.nnz
