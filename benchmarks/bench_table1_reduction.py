"""Table I, "data reduction [%]" row: pJDS vs plain ELLPACK storage.

Paper values: DLR1 17.5, DLR2 48.0, HMEp 36.0, sAMG 68.4.
"""

import pytest

from _bench_common import TABLE1_KEYS, emit_table

PAPER_REDUCTION = {"DLR1": 17.5, "DLR2": 48.0, "HMEp": 36.0, "sAMG": 68.4}


@pytest.fixture(scope="module")
def reduction_table(suite_formats):
    rows = {}
    for key in TABLE1_KEYS:
        pjds = suite_formats(key, "pJDS")
        ell = suite_formats(key, "ELLPACK")
        rows[key] = 100.0 * pjds.data_reduction_vs(ell)
    lines = [f"{'matrix':6s} {'measured %':>10s} {'paper %':>8s}"]
    for key in TABLE1_KEYS:
        lines.append(f"{key:6s} {rows[key]:10.1f} {PAPER_REDUCTION[key]:8.1f}")
    emit_table("table1_reduction", lines)
    return rows


def test_reduction_within_band(reduction_table):
    for key, measured in reduction_table.items():
        assert measured == pytest.approx(PAPER_REDUCTION[key], abs=6.0)


def test_reduction_ordering(reduction_table):
    r = reduction_table
    assert r["sAMG"] > r["DLR2"] > r["HMEp"] > r["DLR1"]


@pytest.mark.parametrize("key", TABLE1_KEYS)
def test_bench_pjds_construction(benchmark, suite_coo, key):
    """Wall-clock of the pJDS build (sort + pad + fill)."""
    from repro.core import PJDSMatrix

    coo = suite_coo[key]
    result = benchmark.pedantic(
        PJDSMatrix.from_coo, args=(coo,), kwargs={"block_rows": 32},
        rounds=3, iterations=1,
    )
    assert result.nnz == coo.nnz
