"""Ablation: RCM pre-ordering before partitioning and format conversion.

Production spMVM pipelines bandwidth-reduce the matrix before row-block
partitioning; this sweep quantifies what that buys on a scrambled grid:
halo volume for the distributed layer and RHS cache traffic for the
device model.
"""

import numpy as np
import pytest

from repro.distributed import analyse_plan, build_plan, partition_rows
from repro.formats import CSRMatrix, convert
from repro.gpu import C2070, simulate_spmv
from repro.matrices import (
    matrix_bandwidth,
    permute_symmetric,
    poisson2d,
    rcm_permutation,
)

from _bench_common import emit_table


@pytest.fixture(scope="module")
def variants():
    """Three numberings of the same operator: native, scrambled, RCM."""
    grid = poisson2d(64, 64)
    rng = np.random.default_rng(42)
    scrambled = permute_symmetric(grid, rng.permutation(grid.nrows))
    restored = permute_symmetric(scrambled, rcm_permutation(scrambled))
    return {"native": grid, "scrambled": scrambled, "rcm": restored}


@pytest.fixture(scope="module")
def rcm_table(variants):
    dev = C2070(ecc=True).scaled(64)
    rows = {}
    for name, coo in variants.items():
        csr = CSRMatrix.from_coo(coo)
        plan = build_plan(csr, partition_rows(csr.nrows, 8), with_matrices=False)
        st = analyse_plan(plan)
        rep = simulate_spmv(convert(coo, "pJDS"), dev, "DP")
        rows[name] = (matrix_bandwidth(coo), st, rep)
    lines = [
        f"{'ordering':10s} {'bandwidth':>9s} {'halo':>7s} {'neigh':>6s} "
        f"{'alpha':>6s} {'GF/s':>6s}"
    ]
    for name, (bw, st, rep) in rows.items():
        lines.append(
            f"{name:10s} {bw:9d} {st.total_halo_elements:7d} "
            f"{st.max_neighbors:6d} {rep.effective_alpha:6.2f} {rep.gflops:6.2f}"
        )
    emit_table("ablation_rcm", lines)
    return rows


class TestRCMAblation:
    def test_rcm_restores_bandwidth(self, rcm_table):
        assert rcm_table["rcm"][0] < rcm_table["scrambled"][0] / 3

    def test_rcm_cuts_halo_volume(self, rcm_table):
        assert (
            rcm_table["rcm"][1].total_halo_elements
            < rcm_table["scrambled"][1].total_halo_elements / 2
        )

    def test_rcm_cuts_neighbor_count(self, rcm_table):
        assert rcm_table["rcm"][1].max_neighbors < rcm_table["scrambled"][1].max_neighbors

    def test_rcm_improves_cache_alpha(self, rcm_table):
        """Banded gathers reuse RHS lines; scrambled ones miss."""
        assert (
            rcm_table["rcm"][2].effective_alpha
            <= rcm_table["scrambled"][2].effective_alpha
        )

    def test_rcm_improves_modelled_gflops(self, rcm_table):
        assert rcm_table["rcm"][2].gflops >= rcm_table["scrambled"][2].gflops

    def test_native_ordering_already_good(self, rcm_table):
        """RCM on an already-banded grid gains little (sanity check)."""
        assert rcm_table["rcm"][2].gflops == pytest.approx(
            rcm_table["native"][2].gflops, rel=0.25
        )


def test_bench_rcm(benchmark, variants):
    coo = variants["scrambled"]
    perm = benchmark(rcm_permutation, coo)
    assert perm.shape == (coo.nrows,)
