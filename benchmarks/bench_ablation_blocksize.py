"""Ablation: the pJDS padding block size ``br``.

DESIGN.md calls out ``br = warp size (32)`` as the central design
choice.  The sweep shows the trade-off the paper describes:

* ``br = 1`` (classic JDS): zero padding, but jagged columns break
  warp-granular coalescing -> more memory transactions;
* ``br = 32``: padding stays tiny while every warp reads aligned,
  fully-used transactions;
* large ``br``: padding grows back toward plain ELLPACK.
"""

import pytest

from repro.core import PJDSMatrix
from repro.gpu import C2070, simulate_spmv

from _bench_common import SCALE, emit_table

BLOCK_SIZES = (1, 4, 8, 16, 32, 64, 128, 256)
KEY = "sAMG"  # the strongest-reduction matrix shows the trade-off best


@pytest.fixture(scope="module")
def sweep(suite_coo):
    coo = suite_coo[KEY]
    dev = C2070(ecc=True).scaled(SCALE)
    rows = {}
    for br in BLOCK_SIZES:
        m = PJDSMatrix.from_coo(coo, block_rows=br)
        rep = simulate_spmv(m, dev, "DP")
        rows[br] = (m.overhead_vs_minimum(), rep)
    lines = [f"{'br':>4s} {'padding %':>10s} {'GF/s':>7s} {'bytes/nnz':>10s}"]
    for br, (ovh, rep) in rows.items():
        lines.append(
            f"{br:4d} {100 * ovh:10.3f} {rep.gflops:7.2f} "
            f"{rep.total_bytes / rep.nnz:10.2f}"
        )
    emit_table("ablation_blocksize", lines)
    return rows


class TestBlockSizeAblation:
    def test_padding_monotone_in_block_size(self, sweep):
        overheads = [sweep[br][0] for br in BLOCK_SIZES]
        assert overheads == sorted(overheads)

    def test_br1_zero_padding(self, sweep):
        assert sweep[1][0] == 0.0

    def test_warp_size_padding_still_small(self, sweep):
        """At br = 32 the paper reports < 0.01 % (full scale); tiny here."""
        assert sweep[32][0] < 0.02

    def test_performance_flat_on_fermi(self, sweep):
        """Sect. II-A: 'data alignment became of minor importance with
        the latest nVidia GPGPU generations' — on the L2-equipped
        Fermi model the block size barely moves GF/s, so br = 32 costs
        nothing while guaranteeing warp-aligned storage."""
        rates = [rep.gflops for _, rep in sweep.values()]
        assert max(rates) / min(rates) < 1.05

    def test_br1_pays_in_transactions(self, sweep):
        """Unaligned jagged columns touch more val/idx lines per nnz."""
        b1 = sweep[1][1]
        b32 = sweep[32][1]
        per_nnz_1 = (b1.val_bytes + b1.idx_bytes) / b1.nnz
        per_nnz_32 = (b32.val_bytes + b32.idx_bytes) / b32.nnz
        assert per_nnz_1 >= per_nnz_32 * 0.999


def test_bench_construction_scaling(benchmark, suite_coo):
    """pJDS build cost is dominated by the sort, not the block size."""
    coo = suite_coo[KEY]
    result = benchmark.pedantic(
        PJDSMatrix.from_coo, args=(coo,), kwargs={"block_rows": 32},
        rounds=3, iterations=1,
    )
    assert result.block_rows == 32
