"""Distributed CG iterations: the paper's per-spMVM gains inside a
real solver loop (Sect. IV outlook: "application of our results to a
production-grade eigensolver").

For DLR1 across node counts: full-iteration GF/s, the spMVM share, and
the allreduce floor that steepens the strong-scaling collapse.
"""

import pytest

from repro.distributed import (
    KernelCost,
    build_plan,
    model_cg_iteration,
    partition_rows,
    stats_from_plan,
)
from repro.formats import CSRMatrix
from repro.gpu import C2050
from repro.matrices import generate

from _bench_common import emit_table

NODES = [1, 2, 4, 8, 16, 32]
SCALE = 16


@pytest.fixture(scope="module")
def cg_series():
    coo = generate("DLR1", scale=SCALE)
    csr = CSRMatrix.from_coo(coo)
    cost = KernelCost.from_alpha(0.25)
    dev = C2050(ecc=True)
    rows = {}
    for nodes in NODES:
        plan = build_plan(
            csr,
            partition_rows(csr.nrows, nodes, row_weights=csr.row_lengths()),
            with_matrices=False,
        )
        stats = stats_from_plan(plan, itemsize=8, workload_scale=SCALE)
        rows[nodes] = model_cg_iteration(stats, dev, cost=cost, mode="task")
    lines = [
        f"{'nodes':>5s} {'iter us':>8s} {'GF/s':>6s} {'spMVM %':>8s} "
        f"{'allreduce us':>12s}"
    ]
    for nodes, m in rows.items():
        lines.append(
            f"{nodes:5d} {m.iteration_seconds * 1e6:8.1f} {m.gflops:6.1f} "
            f"{100 * m.spmv_share:8.1f} {m.allreduce_seconds * 1e6:12.1f}"
        )
    emit_table("distributed_cg", lines)
    return rows


class TestDistributedCG:
    def test_spmv_dominates_at_every_count(self, cg_series):
        for nodes, m in cg_series.items():
            assert m.spmv_share > 0.5, nodes

    def test_share_shrinks_with_scaling(self, cg_series):
        """Strong scaling erodes the spMVM share: fixed allreduce and
        launch costs take over — Amdahl inside one iteration."""
        assert cg_series[32].spmv_share <= cg_series[1].spmv_share

    def test_iteration_rate_improves(self, cg_series):
        assert (
            cg_series[32].iterations_per_second
            > 3 * cg_series[1].iterations_per_second
        )

    def test_allreduce_floor(self, cg_series):
        assert cg_series[32].allreduce_seconds > 0
        assert cg_series[1].allreduce_seconds == 0.0


def test_bench_cg_model(benchmark):
    coo = generate("DLR1", scale=64)
    csr = CSRMatrix.from_coo(coo)
    plan = build_plan(
        csr, partition_rows(csr.nrows, 8, row_weights=csr.row_lengths()),
        with_matrices=False,
    )
    stats = stats_from_plan(plan, itemsize=8, workload_scale=64)
    m = benchmark(model_cg_iteration, stats, C2050(ecc=True))
    assert m.nodes == 8
