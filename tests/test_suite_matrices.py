"""Tests pinning the suite matrices to the paper's published statistics."""

import numpy as np
import pytest

from repro.formats import convert
from repro.matrices import SUITE, SUITE_KEYS, generate, paper_statistics

#: smaller-than-default scale keeps this module fast
SCALE = 256


@pytest.fixture(scope="module")
def suite_matrices():
    return {k: generate(k, scale=SCALE) for k in SUITE_KEYS}


class TestSuiteMetadata:
    def test_all_keys_present(self):
        assert set(SUITE_KEYS) == {"HMEp", "sAMG", "DLR1", "DLR2", "UHBR"}

    def test_paper_statistics_complete(self):
        stats = paper_statistics()
        for key in SUITE_KEYS:
            assert stats[key]["dim"] > 0
            assert stats[key]["nnz"] > 0

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown suite matrix"):
            generate("nope")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            generate("DLR1", scale=0)


class TestScaledDimensions:
    @pytest.mark.parametrize("key", SUITE_KEYS)
    def test_dimension_near_scaled_paper_dim(self, suite_matrices, key):
        m = suite_matrices[key]
        target = SUITE[key].paper_dim // SCALE
        assert abs(m.nrows - target) <= 8  # block-size rounding only

    @pytest.mark.parametrize("key", SUITE_KEYS)
    def test_square(self, suite_matrices, key):
        m = suite_matrices[key]
        assert m.nrows == m.ncols


class TestNnzr:
    """Average non-zeros per row must match Sect. I-C within 10 %."""

    @pytest.mark.parametrize("key", SUITE_KEYS)
    def test_nnzr(self, suite_matrices, key):
        m = suite_matrices[key]
        paper = SUITE[key].paper_nnzr
        # boundary truncation bites harder at 1/256 scale
        assert m.avg_row_length == pytest.approx(paper, rel=0.12)


class TestStructure:
    def test_dlr2_all_5x5_blocks(self, suite_matrices):
        m = suite_matrices["DLR2"]
        assert np.all(m.row_lengths() % 5 == 0)
        # 5 consecutive rows share the same length (dense block rows)
        lengths = m.row_lengths().reshape(-1, 5)
        assert np.all(lengths == lengths[:, :1])

    def test_dlr1_6x6_blocks(self, suite_matrices):
        m = suite_matrices["DLR1"]
        assert np.all(m.row_lengths() % 6 == 0)

    def test_dlr1_width_clustered_near_max(self, suite_matrices):
        """80 % of rows >= 0.8 x Nmax (the Fig. 3 discussion)."""
        lengths = suite_matrices["DLR1"].row_lengths()
        nmax = lengths.max()
        share = np.count_nonzero(lengths >= 0.8 * nmax) / lengths.size
        assert share >= 0.7

    def test_dlr1_relative_width_about_two(self, suite_matrices):
        lengths = suite_matrices["DLR1"].row_lengths()
        ratio = lengths.max() / lengths.min()
        assert 1.5 <= ratio <= 2.5

    def test_samg_relative_width_over_four(self, suite_matrices):
        lengths = suite_matrices["sAMG"].row_lengths()
        assert lengths.max() / lengths.min() > 4.0

    def test_samg_short_rows_dominate(self, suite_matrices):
        lengths = suite_matrices["sAMG"].row_lengths()
        assert np.median(lengths) < lengths.mean() + 1
        assert np.count_nonzero(lengths <= 8) / lengths.size > 0.5

    def test_hmep_off_diagonal_structure(self, suite_matrices):
        """Entries live on matrix-wide off-diagonals (offset multiplicity)."""
        coo = suite_matrices["HMEp"].to_coo()
        offsets, counts = np.unique(coo.cols - coo.rows, return_counts=True)
        # a small set of offsets carries all entries
        assert offsets.size < 40
        assert counts.max() > coo.nrows * 0.5

    def test_hmep_length_range(self, suite_matrices):
        lengths = suite_matrices["HMEp"].row_lengths()
        assert lengths.max() <= 23
        assert lengths.min() >= 1


class TestDataReduction:
    """Table I 'data reduction' column within a few points of the paper."""

    @pytest.mark.parametrize(
        "key", [k for k in SUITE_KEYS if SUITE[k].paper_reduction_pct is not None]
    )
    def test_reduction_close_to_paper(self, suite_matrices, key):
        m = suite_matrices[key]
        p = convert(m, "pJDS")
        e = convert(m, "ELLPACK")
        red = 100.0 * p.data_reduction_vs(e)
        assert red == pytest.approx(SUITE[key].paper_reduction_pct, abs=6.0)

    def test_reduction_ordering_matches_paper(self, suite_matrices):
        """sAMG > DLR2 > HMEp > DLR1 (Table I)."""
        reds = {}
        for key in ("sAMG", "DLR2", "HMEp", "DLR1"):
            m = suite_matrices[key]
            reds[key] = convert(m, "pJDS").data_reduction_vs(convert(m, "ELLPACK"))
        assert reds["sAMG"] > reds["DLR2"] > reds["HMEp"] > reds["DLR1"]

    @pytest.mark.parametrize("key", SUITE_KEYS)
    def test_pjds_overhead_below_one_percent(self, suite_matrices, key):
        """Paper: overhead vs storing only non-zeros < 0.01 % (full scale);
        at 1/256 scale blocks are coarser, so we allow < 2 %."""
        p = convert(suite_matrices[key], "pJDS")
        assert p.overhead_vs_minimum() < 0.02


class TestDeterminism:
    def test_same_seed_reproducible(self):
        a = generate("sAMG", scale=512, seed=5)
        b = generate("sAMG", scale=512, seed=5)
        assert np.array_equal(a.todense(), b.todense())

    def test_correctness_of_spmv(self, suite_matrices):
        m = suite_matrices["sAMG"]
        x = np.random.default_rng(0).normal(size=m.ncols)
        p = convert(m, "pJDS")
        assert np.allclose(p.spmv(x), m.spmv(x))
