"""Tests for row-block partitioning."""

import numpy as np
import pytest

from repro.distributed import RowPartition, partition_rows


class TestRowPartition:
    def test_basic(self):
        p = RowPartition(np.array([0, 3, 7, 10]))
        assert p.nparts == 3
        assert p.nrows == 10
        assert p.row_range(1) == (3, 7)
        assert p.rows_of(2) == 3

    def test_iteration(self):
        p = RowPartition(np.array([0, 2, 5]))
        assert list(p) == [(0, 2), (2, 5)]

    def test_owner_of(self):
        p = RowPartition(np.array([0, 3, 7, 10]))
        owners = p.owner_of(np.array([0, 2, 3, 6, 7, 9]))
        assert owners.tolist() == [0, 0, 1, 1, 2, 2]

    def test_owner_of_out_of_range(self):
        p = RowPartition(np.array([0, 5]))
        with pytest.raises(ValueError):
            p.owner_of(np.array([5]))

    def test_rank_out_of_range(self):
        p = RowPartition(np.array([0, 5]))
        with pytest.raises(ValueError):
            p.row_range(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RowPartition(np.array([1, 5]))  # must start at 0
        with pytest.raises(ValueError):
            RowPartition(np.array([0, 5, 3]))  # decreasing
        with pytest.raises(ValueError):
            RowPartition(np.array([0]))  # too short


class TestPartitionRows:
    def test_uniform(self):
        p = partition_rows(100, 4)
        assert p.nparts == 4
        assert p.nrows == 100
        sizes = [p.rows_of(r) for r in range(4)]
        assert max(sizes) - min(sizes) <= 1

    def test_covers_all_rows(self):
        for nparts in (1, 3, 7, 32):
            p = partition_rows(97, nparts)
            assert p.offsets[0] == 0
            assert p.offsets[-1] == 97
            assert all(p.rows_of(r) >= 1 for r in range(nparts))

    def test_weighted_balances_nnz(self):
        rng = np.random.default_rng(0)
        weights = rng.integers(1, 100, size=500).astype(float)
        p = partition_rows(500, 8, row_weights=weights)
        loads = [weights[lo:hi].sum() for lo, hi in p]
        assert max(loads) <= 1.5 * weights.sum() / 8

    def test_skewed_weights(self):
        # all weight in the first rows: blocks still strictly increase
        weights = np.zeros(100)
        weights[:10] = 1000.0
        p = partition_rows(100, 5, row_weights=weights)
        assert all(p.rows_of(r) >= 1 for r in range(5))
        assert p.nrows == 100

    def test_more_parts_than_rows_rejected(self):
        with pytest.raises(ValueError, match="cannot split"):
            partition_rows(3, 4)

    def test_one_part(self):
        p = partition_rows(50, 1)
        assert p.row_range(0) == (0, 50)

    def test_parts_equal_rows(self):
        p = partition_rows(5, 5)
        assert [p.rows_of(r) for r in range(5)] == [1] * 5

    def test_weight_shape_checked(self):
        with pytest.raises(ValueError, match="row_weights"):
            partition_rows(10, 2, row_weights=np.ones(5))

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            partition_rows(10, 2, row_weights=np.full(10, -1.0))
