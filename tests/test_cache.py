"""Tests for the matrix disk cache."""

import numpy as np
import pytest

from repro.matrices import cached_generate, generate, load_coo, save_coo

from _test_common import random_coo


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        coo = random_coo(40, seed=291)
        path = tmp_path / "m.npz"
        save_coo(coo, path)
        back = load_coo(path)
        assert back.shape == coo.shape
        assert np.array_equal(back.todense(), coo.todense())
        assert back.dtype == coo.dtype

    def test_float32_preserved(self, tmp_path):
        coo = random_coo(20, seed=292, dtype=np.float32)
        path = tmp_path / "m.npz"
        save_coo(coo, path)
        assert load_coo(path).dtype == np.float32

    def test_creates_parent_dirs(self, tmp_path):
        coo = random_coo(10, seed=293)
        path = tmp_path / "a" / "b" / "m.npz"
        save_coo(coo, path)
        assert path.exists()

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValueError, match="unreadable"):
            load_coo(tmp_path / "nope.npz")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not a zip at all")
        with pytest.raises(ValueError, match="unreadable"):
            load_coo(path)


class TestCachedGenerate:
    def test_matches_direct_generation(self, tmp_path):
        a = cached_generate("sAMG", scale=512, seed=3, cache_dir=tmp_path)
        b = generate("sAMG", scale=512, seed=3)
        assert np.array_equal(a.todense(), b.todense())

    def test_second_call_hits_cache(self, tmp_path):
        cached_generate("sAMG", scale=512, cache_dir=tmp_path)
        files = list(tmp_path.glob("*.npz"))
        assert len(files) == 1
        mtime = files[0].stat().st_mtime_ns
        cached_generate("sAMG", scale=512, cache_dir=tmp_path)
        assert files[0].stat().st_mtime_ns == mtime  # not rewritten

    def test_keys_distinguish_parameters(self, tmp_path):
        cached_generate("sAMG", scale=512, seed=0, cache_dir=tmp_path)
        cached_generate("sAMG", scale=512, seed=1, cache_dir=tmp_path)
        cached_generate("sAMG", scale=1024, seed=0, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.npz"))) == 3

    def test_corrupt_cache_regenerated(self, tmp_path):
        cached_generate("sAMG", scale=512, cache_dir=tmp_path)
        path = next(tmp_path.glob("*.npz"))
        path.write_bytes(b"garbage")
        m = cached_generate("sAMG", scale=512, cache_dir=tmp_path)
        assert m.nnz > 0  # regenerated, not crashed

    def test_default_cache_dir_env(self, tmp_path, monkeypatch):
        from repro.matrices import default_cache_dir

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_cache_dir() == tmp_path


class TestTunerCacheThreadSafety:
    def test_concurrent_put_get(self, tmp_path):
        import threading

        from repro.matrices.cache import TunerCache

        cache = TunerCache(tmp_path / "tc.json")
        errors = []

        def work(tid):
            try:
                for i in range(50):
                    key = f"fp-{tid}-{i}"
                    cache.put(key, {"variant": f"v{tid}", "i": i})
                    got = cache.get(key)
                    if got is None or got["variant"] != f"v{tid}":
                        errors.append((tid, i, got))
            except Exception as exc:  # noqa: BLE001 - collect for assert
                errors.append((tid, exc))

        threads = [threading.Thread(target=work, args=(t,)) for t in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) == 6 * 50

    def test_default_tuner_cache_is_singleton_across_threads(self):
        import threading

        from repro.engine import tuner

        old = tuner._DEFAULT_CACHE
        tuner._DEFAULT_CACHE = None
        try:
            seen = []
            barrier = threading.Barrier(8)

            def grab():
                barrier.wait()
                seen.append(tuner.default_tuner_cache())

            threads = [threading.Thread(target=grab) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len({id(c) for c in seen}) == 1
        finally:
            tuner._DEFAULT_CACHE = old
