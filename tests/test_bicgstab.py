"""Tests for BiCGSTAB and the Jacobi-preconditioned CG."""

import numpy as np
import pytest

from repro.formats import COOMatrix, convert
from repro.matrices import poisson2d
from repro.solvers import bicgstab, conjugate_gradient

from _test_common import random_coo


def _nonsymmetric_system(n=120, seed=221, diag=30.0):
    """Diagonally dominant nonsymmetric matrix (guaranteed solvable)."""
    coo = random_coo(n, seed=seed, max_row=6, empty_row_fraction=0.0)
    d = np.arange(n)
    return COOMatrix(
        np.concatenate([coo.rows, d]),
        np.concatenate([coo.cols, d]),
        np.concatenate([coo.values, np.full(n, diag)]),
        (n, n),
    )


class TestBiCGSTAB:
    @pytest.mark.parametrize("fmt", ["CRS", "ELLPACK-R", "pJDS"])
    def test_solves_nonsymmetric(self, fmt):
        A = _nonsymmetric_system()
        m = convert(A, fmt)
        b = np.random.default_rng(0).normal(size=A.nrows)
        res = bicgstab(m, b, tol=1e-11)
        assert res.converged
        assert np.allclose(A.todense() @ res.x, b, atol=1e-7)

    def test_not_symmetric_required(self):
        """BiCGSTAB handles what CG cannot."""
        A = _nonsymmetric_system(seed=222)
        dense = A.todense()
        assert not np.allclose(dense, dense.T)

    def test_spd_also_works(self):
        A = poisson2d(9, 10)
        b = np.ones(A.nrows)
        res = bicgstab(convert(A, "pJDS"), b, tol=1e-10)
        assert res.converged
        assert np.allclose(A.todense() @ res.x, b, atol=1e-6)

    def test_zero_rhs(self):
        A = _nonsymmetric_system()
        res = bicgstab(A, np.zeros(A.nrows))
        assert res.converged and res.iterations == 0

    def test_warm_start(self):
        A = _nonsymmetric_system()
        b = np.random.default_rng(1).normal(size=A.nrows)
        exact = np.linalg.solve(A.todense(), b)
        res = bicgstab(A, b, x0=exact, tol=1e-8)
        assert res.converged
        assert res.iterations <= 2

    def test_two_spmv_per_iteration(self):
        A = _nonsymmetric_system()
        b = np.random.default_rng(2).normal(size=A.nrows)
        res = bicgstab(A, b, tol=1e-10)
        assert res.spmv_count <= 2 * res.iterations + 1

    def test_max_iter(self):
        A = _nonsymmetric_system(diag=1.5)  # weakly dominant: slow
        b = np.ones(A.nrows)
        res = bicgstab(A, b, tol=1e-15, max_iter=2)
        assert not res.converged
        assert res.iterations == 2

    def test_validation(self):
        A = _nonsymmetric_system()
        with pytest.raises(ValueError):
            bicgstab(A, np.ones(A.nrows), tol=0.0)
        with pytest.raises(ValueError):
            bicgstab(A, np.ones(A.nrows), max_iter=-1)

    def test_residual_definition(self):
        A = _nonsymmetric_system()
        b = np.random.default_rng(3).normal(size=A.nrows)
        res = bicgstab(A, b, tol=1e-9)
        true_res = np.linalg.norm(A.todense() @ res.x - b)
        assert true_res <= 1e-9 * np.linalg.norm(b) * 10


class TestPreconditionedCG:
    @pytest.fixture(scope="class")
    def badly_scaled(self):
        """SPD with wildly varying diagonal — Jacobi's best case."""
        base = poisson2d(10, 11)
        coo = base.to_coo()
        n = base.nrows
        scale = np.exp(np.linspace(0.0, 6.0, n))  # condition blow-up
        vals = coo.values * scale[coo.rows] * scale[coo.cols]
        return COOMatrix(coo.rows, coo.cols, vals, base.shape)

    def test_jacobi_accelerates(self, badly_scaled):
        m = convert(badly_scaled, "pJDS")
        b = np.random.default_rng(4).normal(size=badly_scaled.nrows)
        plain = conjugate_gradient(m, b, tol=1e-8, max_iter=20_000)
        pre = conjugate_gradient(
            m, b, tol=1e-8, max_iter=20_000, preconditioner="jacobi"
        )
        assert pre.converged
        assert pre.iterations < plain.iterations

    def test_jacobi_solution_correct(self, badly_scaled):
        m = convert(badly_scaled, "pJDS")
        b = np.random.default_rng(5).normal(size=badly_scaled.nrows)
        res = conjugate_gradient(m, b, tol=1e-10, preconditioner="jacobi",
                                 max_iter=20_000)
        assert np.allclose(
            badly_scaled.todense() @ res.x, b, atol=1e-5
        )

    def test_explicit_minv_array(self, badly_scaled):
        m = convert(badly_scaled, "pJDS")
        b = np.ones(badly_scaled.nrows)
        minv = 1.0 / badly_scaled.diagonal()
        res = conjugate_gradient(m, b, tol=1e-8, preconditioner=minv,
                                 max_iter=20_000)
        assert res.converged

    def test_unknown_preconditioner(self, badly_scaled):
        with pytest.raises(ValueError, match="unknown preconditioner"):
            conjugate_gradient(
                badly_scaled, np.ones(badly_scaled.nrows), preconditioner="ilu"
            )

    def test_zero_diagonal_rejected(self):
        coo = COOMatrix([0, 1], [1, 0], [1.0, 1.0], (2, 2))
        with pytest.raises(np.linalg.LinAlgError, match="diagonal"):
            conjugate_gradient(coo, np.ones(2), preconditioner="jacobi")


class TestDiagonal:
    def test_diagonal_extraction(self):
        coo = COOMatrix([0, 1, 1], [0, 1, 0], [4.0, 5.0, 1.0], (2, 2))
        assert coo.diagonal().tolist() == [4.0, 5.0]

    def test_missing_entries_zero(self):
        coo = COOMatrix([0], [1], [3.0], (2, 2))
        assert coo.diagonal().tolist() == [0.0, 0.0]

    def test_all_formats_agree(self):
        coo = random_coo(30, seed=223)
        ref = coo.diagonal()
        for fmt in ("CRS", "ELLPACK-R", "pJDS", "SELL-C-sigma"):
            assert np.array_equal(convert(coo, fmt).diagonal(), ref), fmt

    def test_rectangular_rejected(self):
        coo = random_coo(5, 8, seed=224)
        with pytest.raises(ValueError, match="square"):
            coo.diagonal()
