"""Tests for the BELLPACK blocked format."""

import numpy as np
import pytest

from repro.formats import BELLPACKMatrix, COOMatrix, convert
from repro.matrices import block_sparse, generate

from _test_common import random_coo


@pytest.fixture(scope="module")
def blocky():
    """A matrix made of dense 4x4 blocks (perfect tiling case)."""
    return block_sparse(8, 8, 4, np.array([3, 1, 4, 2, 5, 2, 3, 1]), seed=211)


@pytest.fixture(scope="module")
def scattered():
    return random_coo(50, seed=212, max_row=8)


class TestCorrectness:
    def test_spmv_on_block_matrix(self, blocky):
        m = BELLPACKMatrix.from_coo(blocky, block_rows=4)
        x = np.random.default_rng(0).normal(size=blocky.ncols)
        assert np.allclose(m.spmv(x), blocky.spmv(x))

    def test_spmv_on_scattered_matrix(self, scattered):
        m = BELLPACKMatrix.from_coo(scattered, block_rows=3)
        x = np.random.default_rng(1).normal(size=scattered.ncols)
        assert np.allclose(m.spmv(x), scattered.spmv(x))

    def test_rectangular_blocks(self, scattered):
        m = BELLPACKMatrix.from_coo(scattered, block_rows=2, block_cols=5)
        x = np.random.default_rng(2).normal(size=scattered.ncols)
        assert np.allclose(m.spmv(x), scattered.spmv(x))

    def test_non_dividing_dimensions(self):
        coo = random_coo(17, 23, seed=213, max_row=5)
        m = BELLPACKMatrix.from_coo(coo, block_rows=4)
        x = np.random.default_rng(3).normal(size=23)
        assert np.allclose(m.spmv(x), coo.spmv(x))

    def test_roundtrip_structural(self, blocky):
        """to_coo recovers the structural non-zeros (explicit zeros
        inside blocks are indistinguishable from padding)."""
        m = BELLPACKMatrix.from_coo(blocky, block_rows=4)
        assert np.allclose(m.to_coo().todense(), blocky.todense())

    def test_empty_matrix(self):
        coo = COOMatrix([], [], [], (6, 6))
        m = BELLPACKMatrix.from_coo(coo, block_rows=3)
        assert np.all(m.spmv(np.ones(6)) == 0.0)

    def test_single_block(self):
        coo = COOMatrix([0, 1], [1, 0], [2.0, 3.0], (2, 2))
        m = BELLPACKMatrix.from_coo(coo, block_rows=2)
        assert m.nblockrows == 1
        assert m.width == 1
        assert np.allclose(m.spmv(np.array([1.0, 2.0])), [4.0, 3.0])


class TestFootprint:
    def test_perfect_tiling_low_fill(self, blocky):
        m = BELLPACKMatrix.from_coo(blocky, block_rows=4)
        # fill = padding of block-rows to the max block count only
        assert m.fill_ratio < 3.0

    def test_scattered_matrix_high_fill(self, scattered):
        """The paper's point: blocked formats need real block structure."""
        m = BELLPACKMatrix.from_coo(scattered, block_rows=4)
        assert m.fill_ratio > 3.0

    def test_dlr2_beats_pjds_on_index_bytes(self):
        """On a genuinely 5x5-blocked matrix BELLPACK amortises the
        column index 25x; pJDS still wins on value padding."""
        coo = generate("DLR2", scale=512)
        bell = BELLPACKMatrix.from_coo(coo, block_rows=5)
        pjds = convert(coo, "pJDS")
        assert bell.memory_breakdown()["col_idx"] < pjds.memory_breakdown()["col_idx"]

    def test_memory_breakdown_fields(self, blocky):
        m = BELLPACKMatrix.from_coo(blocky, block_rows=4)
        bd = m.memory_breakdown()
        assert set(bd) == {"val", "col_idx", "blocks_per_row"}
        assert bd["val"] == m.stored_blocks * 16 * 8

    def test_row_lengths(self, blocky):
        m = BELLPACKMatrix.from_coo(blocky, block_rows=4)
        assert np.array_equal(m.row_lengths(), blocky.row_lengths())


class TestValidation:
    def test_unknown_kwarg(self, scattered):
        with pytest.raises(TypeError, match="unexpected"):
            BELLPACKMatrix.from_coo(scattered, sigma=2)

    def test_registered(self, scattered):
        m = convert(scattered, "BELLPACK", block_rows=2)
        assert isinstance(m, BELLPACKMatrix)

    def test_bad_block_size(self, scattered):
        with pytest.raises(ValueError):
            BELLPACKMatrix.from_coo(scattered, block_rows=0)
