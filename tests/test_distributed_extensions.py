"""Tests for the distributed extensions: process backend, weak scaling,
communication analysis."""

import numpy as np
import pytest

from repro.distributed import (
    KernelCost,
    analyse_plan,
    build_plan,
    distributed_spmv,
    partition_rows,
    weak_scaling,
)
from repro.formats import CSRMatrix
from repro.gpu import C2050
from repro.matrices import banded_sparse, generate

from _test_common import random_coo


class TestProcessBackend:
    @pytest.mark.parametrize("nparts", [1, 3, 4])
    def test_matches_serial(self, nparts):
        csr = CSRMatrix.from_coo(random_coo(60, seed=241, max_row=7))
        plan = build_plan(csr, partition_rows(csr.nrows, nparts))
        x = np.random.default_rng(nparts).normal(size=csr.nrows)
        y = distributed_spmv(plan, x, backend="processes")
        assert np.allclose(y, csr.spmv(x), atol=1e-10)

    def test_matches_thread_backend(self):
        csr = CSRMatrix.from_coo(random_coo(50, seed=242))
        plan = build_plan(csr, partition_rows(csr.nrows, 3))
        x = np.random.default_rng(0).normal(size=csr.nrows)
        yt = distributed_spmv(plan, x, backend="threads")
        yp = distributed_spmv(plan, x, backend="processes")
        assert np.array_equal(yt, yp)

    def test_unknown_backend(self):
        csr = CSRMatrix.from_coo(random_coo(20, seed=243))
        plan = build_plan(csr, partition_rows(20, 2))
        with pytest.raises(ValueError, match="backend"):
            distributed_spmv(plan, np.ones(20), backend="mpi")

    def test_x_shape_checked(self):
        csr = CSRMatrix.from_coo(random_coo(20, seed=244))
        plan = build_plan(csr, partition_rows(20, 2))
        with pytest.raises(ValueError, match="shape"):
            distributed_spmv(plan, np.ones(19), backend="processes")


class TestWeakScaling:
    @pytest.fixture(scope="class")
    def series(self):
        def factory(nodes):
            return banded_sparse(
                200 * nodes, 30, np.full(200 * nodes, 12), seed=nodes
            )

        return weak_scaling(
            factory,
            [1, 2, 4],
            device=C2050(ecc=True),
            cost=KernelCost.from_alpha(0.3),
            workload_scale=64,
            matrix_name="weak",
        )

    def test_throughput_grows(self, series):
        task = series.series("task")
        assert task[1].gflops > 1.5 * task[0].gflops
        assert task[2].gflops > 1.5 * task[1].gflops

    def test_iteration_time_roughly_constant(self, series):
        """The weak-scaling signature: constant time per iteration."""
        task = series.series("task")
        times = [p.iteration_seconds for p in task]
        assert max(times) / min(times) < 1.6

    def test_all_modes_present(self, series):
        for mode in ("vector", "naive", "task"):
            assert len(series.series(mode)) == 3


class TestCommAnalysis:
    def test_banded_matrix_not_comm_bound(self):
        coo = banded_sparse(400, 20, np.full(400, 10), seed=251)
        csr = CSRMatrix.from_coo(coo)
        plan = build_plan(csr, partition_rows(400, 4), with_matrices=False)
        st = analyse_plan(plan)
        assert st.nparts == 4
        assert st.total_nnz == coo.nnz
        assert st.max_neighbors <= 2  # banded: only adjacent ranks
        assert not st.communication_bound

    def test_random_matrix_comm_heavy(self):
        coo = random_coo(200, seed=252, max_row=4, empty_row_fraction=0.0)
        csr = CSRMatrix.from_coo(coo)
        plan = build_plan(csr, partition_rows(200, 8), with_matrices=False)
        st = analyse_plan(plan)
        assert st.max_neighbors == 7  # everyone talks to everyone
        assert st.nonlocal_nnz_fraction > 0.5

    def test_single_rank_no_comm(self):
        csr = CSRMatrix.from_coo(random_coo(50, seed=253))
        plan = build_plan(csr, partition_rows(50, 1), with_matrices=False)
        st = analyse_plan(plan)
        assert st.total_halo_elements == 0
        assert st.comm_to_compute_bytes == 0.0
        assert not st.communication_bound

    def test_dlr1_vs_uhbr_scaling_verdict(self):
        """The Fig. 5 dichotomy, predicted from the plan alone."""
        ratios = {}
        for key, scale in (("DLR1", 128), ("UHBR", 256)):
            coo = generate(key, scale=scale)
            csr = CSRMatrix.from_coo(coo)
            plan = build_plan(
                csr,
                partition_rows(csr.nrows, 16, row_weights=csr.row_lengths()),
                with_matrices=False,
            )
            ratios[key] = analyse_plan(plan).mean_halo_ratio
        assert ratios["DLR1"] > 3 * ratios["UHBR"]

    def test_load_balance_with_weights(self):
        coo = generate("DLR2", scale=512)
        csr = CSRMatrix.from_coo(coo)
        plan = build_plan(
            csr,
            partition_rows(csr.nrows, 8, row_weights=csr.row_lengths()),
            with_matrices=False,
        )
        st = analyse_plan(plan)
        assert st.nnz_imbalance < 1.2
