"""Tests for the format registry and conversion routing."""

import numpy as np
import pytest

from repro.formats import FORMATS, available_formats, convert, register_format
from repro.formats.base import SparseMatrixFormat

from _test_common import ALL_FORMATS, random_coo


class TestRegistry:
    def test_all_expected_formats_present(self):
        names = available_formats()
        for expected in ALL_FORMATS:
            assert expected in names

    def test_register_idempotent(self):
        cls = FORMATS["CRS"]
        assert register_format(cls) is cls

    def test_register_conflict_rejected(self):
        class Fake(SparseMatrixFormat):
            name = "CRS"

            def spmv(self, x, out=None):  # pragma: no cover
                raise NotImplementedError

            def to_coo(self):  # pragma: no cover
                raise NotImplementedError

            @classmethod
            def from_coo(cls, coo, **kw):  # pragma: no cover
                raise NotImplementedError

            def memory_breakdown(self):  # pragma: no cover
                return {}

            def row_lengths(self):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValueError, match="already registered"):
            register_format(Fake)


class TestConvert:
    @pytest.mark.parametrize("src", ALL_FORMATS)
    @pytest.mark.parametrize("dst", ALL_FORMATS)
    def test_all_pairs(self, src, dst):
        coo = random_coo(30, seed=71)
        a = convert(coo, src)
        b = convert(a, dst)
        assert np.allclose(b.todense(), coo.todense()), (src, dst)

    def test_same_format_short_circuit(self):
        coo = random_coo(10, seed=72)
        m = convert(coo, "CRS")
        assert convert(m, "CRS") is m

    def test_kwargs_force_rebuild(self):
        coo = random_coo(10, seed=73)
        p = convert(coo, "pJDS", block_rows=4)
        p2 = convert(p, "pJDS", block_rows=2)
        assert p2 is not p
        assert p2.block_rows == 2

    def test_unknown_format(self):
        coo = random_coo(5, seed=74)
        with pytest.raises(ValueError, match="unknown format"):
            convert(coo, "BOGUS")

    def test_class_target(self):
        from repro.core import PJDSMatrix

        coo = random_coo(10, seed=75)
        p = convert(coo, PJDSMatrix, block_rows=4)
        assert isinstance(p, PJDSMatrix)

    def test_dtype_preserved(self):
        coo = random_coo(12, seed=76, dtype=np.float32)
        for dst in ALL_FORMATS:
            assert convert(coo, dst).dtype == np.float32, dst
