"""Tests for the Eq. (1) code-balance model and the CPU baseline."""

import numpy as np
import pytest

from repro.perfmodel import (
    alpha_bounds,
    alpha_from_balance,
    code_balance,
    code_balance_dp,
    code_balance_sp,
    cpu_crs_gflops,
    crs_code_balance_dp,
    estimate_alpha_cpu,
    model_cpu_crs,
    predicted_gflops,
)

from _test_common import random_coo


class TestEq1:
    def test_dp_formula(self):
        """B = 6 + 4 alpha + 8/Nnzr (Eq. 1)."""
        assert code_balance_dp(1.0, 8.0) == pytest.approx(6 + 4 + 1)
        assert code_balance_dp(0.0, 16.0) == pytest.approx(6.5)

    def test_sp_formula(self):
        assert code_balance_sp(1.0, 8.0) == pytest.approx(4 + 2 + 0.5)

    def test_worst_case_limits(self):
        """alpha = 1, huge Nnzr: B -> 10 bytes/flop DP."""
        assert code_balance_dp(1.0, 1e9) == pytest.approx(10.0)

    def test_best_case_limits(self):
        """alpha = 1/Nnzr, huge Nnzr: B -> 6 bytes/flop DP (kappa=0 case)."""
        assert code_balance_dp(1e-9, 1e9) == pytest.approx(6.0)

    def test_dispatch(self):
        assert code_balance(0.5, 10, "DP") == code_balance_dp(0.5, 10)
        assert code_balance(0.5, 10, "SP") == code_balance_sp(0.5, 10)
        with pytest.raises(ValueError):
            code_balance(0.5, 10, "XP")

    def test_validation(self):
        with pytest.raises(ValueError):
            code_balance_dp(-0.1, 10)
        with pytest.raises(ValueError):
            code_balance_dp(0.5, 0)

    def test_alpha_bounds(self):
        lo, hi = alpha_bounds(20.0)
        assert lo == pytest.approx(0.05)
        assert hi == 1.0

    def test_inversion_roundtrip(self):
        for prec in ("SP", "DP"):
            b = code_balance(0.37, 42.0, prec)
            assert alpha_from_balance(b, 42.0, prec) == pytest.approx(0.37)

    def test_predicted_gflops(self):
        """91 GB/s at B = 7 bytes/flop -> 13 GF/s (the DLR1 regime)."""
        assert predicted_gflops(91.0, 0.2, 144.0) == pytest.approx(
            91.0 / code_balance_dp(0.2, 144.0)
        )
        with pytest.raises(ValueError):
            predicted_gflops(0.0, 0.2, 10)


class TestCPUModel:
    def test_crs_balance_includes_row_ptr(self):
        b = crs_code_balance_dp(0.0, 10.0)
        assert b == pytest.approx((12 + 20.0 / 10.0) / 2)

    def test_gflops_at_paper_regime(self):
        """~40 GB/s at DLR-like balance lands in the 5-6 GF/s row of Table I."""
        g = cpu_crs_gflops(0.2, 144.0)
        assert 4.5 <= g <= 7.0

    def test_estimate_alpha_in_range(self):
        coo = random_coo(100, seed=141)
        a = estimate_alpha_cpu(coo)
        assert 0.0 <= a <= 1.0

    def test_banded_matrix_better_alpha_than_random(self):
        from repro.matrices import banded_sparse, random_sparse

        n = 400
        lengths = np.full(n, 6)
        banded = banded_sparse(n, 15, lengths, seed=1)
        scattered = random_sparse(n, n, lengths, seed=1)
        scale = 4096  # shrink the LLC so the working sets differ
        assert estimate_alpha_cpu(banded, scale=scale) <= estimate_alpha_cpu(
            scattered, scale=scale
        )

    def test_empty_matrix_alpha(self):
        from repro.formats import COOMatrix

        assert estimate_alpha_cpu(COOMatrix([], [], [], (3, 3))) == 0.0

    def test_model_cpu_crs_report(self):
        coo = random_coo(80, seed=142)
        rep = model_cpu_crs(coo)
        assert rep.nnz == coo.nnz
        assert rep.gflops == pytest.approx(rep.bandwidth_gbs / rep.code_balance)

    def test_explicit_alpha_respected(self):
        coo = random_coo(80, seed=143)
        rep = model_cpu_crs(coo, alpha=0.5)
        assert rep.alpha == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            crs_code_balance_dp(-1, 10)
        with pytest.raises(ValueError):
            cpu_crs_gflops(0.5, 10, bandwidth_gbs=0)
