"""Unit tests for SELL-C-sigma (sliced ELLPACK)."""

import numpy as np
import pytest

from repro.core import PJDSMatrix, SELLMatrix
from repro.formats import COOMatrix

from _test_common import random_coo


@pytest.fixture(scope="module")
def coo() -> COOMatrix:
    return random_coo(65, seed=61)


class TestConstruction:
    def test_spmv_matches_coo(self, coo):
        x = np.random.default_rng(0).normal(size=coo.ncols)
        for C in (1, 4, 16, 32):
            m = SELLMatrix.from_coo(coo, chunk_rows=C)
            assert np.allclose(m.spmv(x), coo.spmv(x)), C

    def test_chunk_count(self, coo):
        m = SELLMatrix.from_coo(coo, chunk_rows=16)
        assert m.nchunks == -(-coo.nrows // 16)
        assert m.padded_rows == m.nchunks * 16

    def test_chunk_widths_are_chunk_maxima(self, coo):
        C = 8
        m = SELLMatrix.from_coo(coo, chunk_rows=C, sigma=1)
        lengths = coo.row_lengths()
        for c in range(m.nchunks):
            chunk_rows = lengths[c * C : (c + 1) * C]
            expected = int(chunk_rows.max()) if chunk_rows.size else 0
            assert m.chunk_widths[c] == expected

    def test_total_slots(self, coo):
        C = 8
        m = SELLMatrix.from_coo(coo, chunk_rows=C)
        assert m.total_slots == int((m.chunk_widths * C).sum())

    def test_roundtrip(self, coo):
        m = SELLMatrix.from_coo(coo, chunk_rows=8, sigma=16)
        assert np.allclose(m.to_coo().todense(), coo.todense())

    def test_row_lengths(self, coo):
        m = SELLMatrix.from_coo(coo, chunk_rows=8)
        assert np.array_equal(m.row_lengths(), coo.row_lengths())

    def test_unknown_kwarg_rejected(self, coo):
        with pytest.raises(TypeError, match="unexpected"):
            SELLMatrix.from_coo(coo, block_rows=4)


class TestSigma:
    def test_sigma_one_identity_permutation(self, coo):
        m = SELLMatrix.from_coo(coo, chunk_rows=8, sigma=1)
        assert m.permutation.is_identity

    def test_sigma_default_full_sort(self, coo):
        m = SELLMatrix.from_coo(coo, chunk_rows=8)
        assert m.sigma == coo.nrows

    def test_full_sigma_matches_pjds_storage(self, coo):
        """SELL-C-N == pJDS storage volume (same sort, same block pad)."""
        C = 8
        sell = SELLMatrix.from_coo(coo, chunk_rows=C)
        pjds = PJDSMatrix.from_coo(coo, block_rows=C)
        # pJDS's partial last block pads fewer rows; compare padded sums
        assert sell.total_slots >= pjds.total_slots
        # agreement when the row count divides evenly
        if coo.nrows % C == 0:
            assert sell.total_slots == pjds.total_slots

    def test_storage_monotone_in_sigma(self, coo):
        sizes = [
            SELLMatrix.from_coo(coo, chunk_rows=8, sigma=s).total_slots
            for s in (1, 4, 16, 64, coo.nrows)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_all_sigmas_correct(self, coo):
        x = np.random.default_rng(2).normal(size=coo.ncols)
        ref = coo.spmv(x)
        for sigma in (1, 2, 9, 33, coo.nrows):
            m = SELLMatrix.from_coo(coo, chunk_rows=8, sigma=sigma)
            assert np.allclose(m.spmv(x), ref), sigma


class TestEvenDivision:
    def test_exact_multiple_rows(self):
        coo = random_coo(64, seed=62, empty_row_fraction=0.0)
        m = SELLMatrix.from_coo(coo, chunk_rows=8)
        assert m.padded_rows == 64
        x = np.random.default_rng(3).normal(size=64)
        assert np.allclose(m.spmv(x), coo.spmv(x))

    def test_single_chunk(self):
        coo = random_coo(10, seed=63)
        m = SELLMatrix.from_coo(coo, chunk_rows=32)
        assert m.nchunks == 1
        x = np.ones(10)
        assert np.allclose(m.spmv(x), coo.spmv(x))


class TestAccounting:
    def test_memory_breakdown_fields(self, coo):
        m = SELLMatrix.from_coo(coo, chunk_rows=8)
        bd = m.memory_breakdown()
        assert set(bd) == {"val", "col_idx", "chunk_ptr", "rowmax", "perm"}
        assert bd["val"] == m.total_slots * 8
        assert bd["chunk_ptr"] == (m.nchunks + 1) * 4

    def test_views_readonly(self, coo):
        m = SELLMatrix.from_coo(coo, chunk_rows=8)
        for arr in (m.val, m.col_idx, m.chunk_ptr, m.chunk_widths):
            with pytest.raises(ValueError):
                arr[0] = 0
