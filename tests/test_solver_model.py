"""Tests for the distributed CG iteration model."""

import numpy as np
import pytest

from repro.distributed import (
    DIRAC_IB,
    KernelCost,
    NetworkModel,
    allreduce_seconds,
    build_plan,
    model_cg_iteration,
    partition_rows,
    stats_from_plan,
)
from repro.formats import CSRMatrix
from repro.gpu import C2050
from repro.matrices import banded_sparse


def _stats(nodes: int, n: int = 600, workload_scale: int = 64):
    coo = banded_sparse(n, 40, np.full(n, 18), seed=281)
    csr = CSRMatrix.from_coo(coo)
    plan = build_plan(
        csr, partition_rows(n, nodes, row_weights=csr.row_lengths()),
        with_matrices=False,
    )
    return stats_from_plan(plan, itemsize=8, workload_scale=workload_scale)


class TestAllreduce:
    def test_single_node_free(self):
        assert allreduce_seconds(1, 8, DIRAC_IB) == 0.0

    def test_logarithmic_steps(self):
        net = NetworkModel(latency_s=1e-6, bandwidth_gbs=1000.0)
        t2 = allreduce_seconds(2, 8, net)
        t4 = allreduce_seconds(4, 8, net)
        t16 = allreduce_seconds(16, 8, net)
        assert t4 == pytest.approx(2 * t2)
        assert t16 == pytest.approx(4 * t2)

    def test_non_power_of_two_rounds_up(self):
        net = NetworkModel(latency_s=1e-6, bandwidth_gbs=1000.0)
        assert allreduce_seconds(5, 8, net) == allreduce_seconds(8, 8, net)

    def test_validation(self):
        with pytest.raises(ValueError):
            allreduce_seconds(0, 8, DIRAC_IB)


class TestCGIteration:
    def test_decomposition_sums(self):
        m = model_cg_iteration(_stats(4), C2050(ecc=True))
        assert m.iteration_seconds == pytest.approx(
            m.spmv_seconds + m.blas1_seconds + m.allreduce_seconds
        )

    def test_spmv_dominates(self):
        """Sect. I: spMVM is the dominating component of the solver."""
        m = model_cg_iteration(_stats(4), C2050(ecc=True),
                               cost=KernelCost.from_alpha(0.3))
        # at Nnzr = 18 and small per-rank blocks the share is modest;
        # it exceeds 0.9 for the DLR-class (bench_distributed_solver)
        assert m.spmv_share > 0.5

    def test_allreduce_grows_with_nodes(self):
        t4 = model_cg_iteration(_stats(4), C2050(ecc=True)).allreduce_seconds
        t32 = model_cg_iteration(_stats(32), C2050(ecc=True)).allreduce_seconds
        assert t32 > t4

    def test_solver_scales_worse_than_bare_spmv(self):
        """The allreduce/BLAS-1 floor steepens the collapse."""
        from repro.distributed import simulate_mode

        dev = C2050(ecc=True)
        cost = KernelCost.from_alpha(0.3)
        s1, s32 = _stats(1), _stats(32)
        spmv_speedup = (
            simulate_mode("task", s1, dev, DIRAC_IB, cost).iteration_seconds
            / simulate_mode("task", s32, dev, DIRAC_IB, cost).iteration_seconds
        )
        cg_speedup = (
            model_cg_iteration(s1, dev, cost=cost).iteration_seconds
            / model_cg_iteration(s32, dev, cost=cost).iteration_seconds
        )
        assert cg_speedup <= spmv_speedup * 1.0001

    def test_gflops_and_rate(self):
        m = model_cg_iteration(_stats(2), C2050(ecc=True))
        assert m.gflops > 0
        assert m.iterations_per_second == pytest.approx(1 / m.iteration_seconds)

    def test_mode_selection(self):
        task = model_cg_iteration(_stats(8), C2050(ecc=True), mode="task")
        vector = model_cg_iteration(_stats(8), C2050(ecc=True), mode="vector")
        assert task.mode == "task"
        assert task.spmv_seconds <= vector.spmv_seconds * 1.05
