"""Tests for validation and timing utilities."""

import time

import numpy as np
import pytest

from repro.utils import (
    Stopwatch,
    Timer,
    as_1d_array,
    check_dense_vector,
    check_dtype,
    check_index_array,
    check_nonnegative_int,
    check_positive_int,
    check_shape,
    flops_per_spmv,
    gflops,
)


class TestValidation:
    def test_positive_int(self):
        assert check_positive_int(3, "x") == 3
        assert check_positive_int(np.int64(7), "x") == 7

    def test_positive_int_rejects(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")
        with pytest.raises(TypeError):
            check_positive_int(2.5, "x")
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_nonnegative_int(self):
        assert check_nonnegative_int(0, "x") == 0
        with pytest.raises(ValueError):
            check_nonnegative_int(-1, "x")

    def test_check_dtype(self):
        assert check_dtype(np.float32) == np.dtype(np.float32)
        assert check_dtype("float64") == np.dtype(np.float64)
        with pytest.raises(ValueError, match="SP/DP"):
            check_dtype(np.int32)

    def test_as_1d(self):
        arr = as_1d_array([1, 2, 3])
        assert arr.shape == (3,)
        with pytest.raises(ValueError, match="1-D"):
            as_1d_array([[1], [2]])

    def test_index_array_bounds(self):
        arr = check_index_array(np.array([0, 4]), 5)
        assert arr.dtype == np.int64
        with pytest.raises(ValueError, match="range"):
            check_index_array(np.array([5]), 5)
        with pytest.raises(ValueError, match="range"):
            check_index_array(np.array([-1]), 5)

    def test_index_array_type(self):
        with pytest.raises(TypeError, match="integer"):
            check_index_array(np.array([1.5]), 5)

    def test_check_shape(self):
        assert check_shape((3, 4)) == (3, 4)
        with pytest.raises(ValueError):
            check_shape((3,))
        with pytest.raises(ValueError):
            check_shape((0, 4))

    def test_dense_vector(self):
        v = check_dense_vector([1, 2], 2, dtype=np.float64)
        assert v.dtype == np.float64
        with pytest.raises(ValueError, match="length"):
            check_dense_vector([1, 2], 3)


class TestTiming:
    def test_flops(self):
        assert flops_per_spmv(100) == 200
        with pytest.raises(ValueError):
            flops_per_spmv(-1)

    def test_gflops(self):
        assert gflops(500_000_000, 1.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            gflops(10, 0.0)

    def test_timer(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_stopwatch(self):
        sw = Stopwatch()
        sw.start()
        time.sleep(0.005)
        lap = sw.stop()
        assert lap >= 0.004
        assert sw.total == pytest.approx(sum(sw.laps))
        assert sw.mean == pytest.approx(sw.total / len(sw.laps))
        assert sw.best <= sw.mean + 1e-12

    def test_stopwatch_misuse(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError):
            sw.stop()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()
        sw.stop()
        empty = Stopwatch()
        with pytest.raises(RuntimeError):
            _ = empty.mean
        with pytest.raises(RuntimeError):
            _ = empty.best

    def test_stopwatch_lap_context_manager(self):
        sw = Stopwatch()
        with sw.lap():
            time.sleep(0.002)
        with sw.lap():
            pass
        assert len(sw.laps) == 2
        assert sw.laps[0] >= 0.001
        # misuse is still caught inside the context manager
        sw.start()
        with pytest.raises(RuntimeError):
            with sw.lap():
                pass
        sw.stop()

    def test_stopwatch_record_returns_value(self):
        sw = Stopwatch()
        result = sw.record(sum, range(10))
        assert result == 45
        assert len(sw.laps) == 1

    def test_stopwatch_record_propagates_exception_but_laps(self):
        sw = Stopwatch()

        def boom():
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            sw.record(boom)
        assert len(sw.laps) == 1  # the failed lap is still timed
        assert sw._start is None  # and the watch is reusable

    def test_stopwatch_publishes_to_obs_histogram(self):
        from repro import obs

        obs.disable()
        obs.reset_all()
        sw = Stopwatch(histogram="bench_seconds", labels={"bench": "t"})
        sw.record(sum, range(4))  # disabled: nothing recorded
        assert obs.get_registry().get("bench_seconds") is None
        obs.enable()
        try:
            sw.record(sum, range(4))
            fam = obs.get_registry().get("bench_seconds")
            child = fam.labels(bench="t")
            assert child.count == 1
            assert child.sum == pytest.approx(sw.laps[-1])
        finally:
            obs.disable()
            obs.reset_all()
