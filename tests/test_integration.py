"""End-to-end integration tests crossing module boundaries."""

import numpy as np
import pytest

from repro.distributed import (
    DIRAC_IB,
    KernelCost,
    build_plan,
    distributed_spmv,
    partition_rows,
    simulate_mode,
    stats_from_plan,
    strong_scaling,
)
from repro.formats import CSRMatrix, convert
from repro.gpu import C2050, C2070, simulate_spmv, spmv_with_transfers
from repro.matrices import generate, row_length_histogram
from repro.perfmodel import alpha_from_balance, model_cpu_crs
from repro.solvers import conjugate_gradient, lanczos


class TestTableIPipeline:
    """The full Table I flow on one suite matrix at tiny scale."""

    @pytest.fixture(scope="class")
    def samg(self):
        return generate("sAMG", scale=512)

    def test_reduction_and_performance_shape(self, samg):
        dev = C2070(ecc=True).scaled(512)
        er = convert(samg, "ELLPACK-R")
        pj = convert(samg, "pJDS")
        e = convert(samg, "ELLPACK")
        assert pj.data_reduction_vs(e) > 0.5
        r_er = simulate_spmv(er, dev, "DP")
        r_pj = simulate_spmv(pj, dev, "DP")
        # sAMG: pJDS must not lose (Table I shows it winning)
        assert r_pj.gflops >= 0.9 * r_er.gflops

    def test_alpha_bridge_model_vs_simulator(self, samg):
        """The simulator's measured balance inverts to a sane alpha."""
        dev = C2070(ecc=True).scaled(512)
        rep = simulate_spmv(convert(samg, "pJDS"), dev, "DP")
        alpha = alpha_from_balance(rep.code_balance, samg.avg_row_length, "DP")
        assert -0.5 <= alpha <= 16.0

    def test_cpu_row(self, samg):
        rep = model_cpu_crs(samg, scale=512)
        assert 2.0 < rep.gflops < 10.0

    def test_pcie_makes_samg_unattractive(self, samg):
        """Sect. III: sAMG's effective GF/s drops below the CPU level."""
        dev = C2070(ecc=True).scaled(512)
        kernel = simulate_spmv(convert(samg, "ELLPACK-R"), dev, "DP")
        eff = spmv_with_transfers(kernel, dev)
        assert eff.gflops < kernel.gflops
        assert eff.pcie_penalty > 0.3


class TestHistogramPipeline:
    def test_fig3_shapes(self):
        """DLR1 mass near the max, sAMG mass at short rows."""
        dlr1 = generate("DLR1", scale=512)
        samg = generate("sAMG", scale=512)
        h_dlr1 = row_length_histogram(dlr1)
        h_samg = row_length_histogram(samg)
        assert h_dlr1.share_at_least(int(0.8 * dlr1.row_lengths().max())) > 0.7
        assert h_samg.share_at_least(15) < 0.05


class TestDistributedPipeline:
    def test_runtime_and_simulator_share_plan(self):
        """The same CommPlan drives correctness and timing."""
        coo = generate("sAMG", scale=512)
        csr = CSRMatrix.from_coo(coo)
        part = partition_rows(csr.nrows, 4, row_weights=csr.row_lengths())
        plan = build_plan(csr, part)
        # functional execution
        x = np.random.default_rng(0).normal(size=csr.nrows)
        assert np.allclose(distributed_spmv(plan, x), csr.spmv(x), atol=1e-9)
        # timing simulation from the same plan
        stats = stats_from_plan(plan, itemsize=8, workload_scale=512)
        for mode in ("vector", "naive", "task"):
            res = simulate_mode(mode, stats, C2050(ecc=True), DIRAC_IB)
            assert res.gflops > 0

    def test_fig5_shape_uhbr_like(self):
        """Task mode leads and stays reasonably efficient."""
        coo = generate("UHBR", scale=256)
        s = strong_scaling(
            coo,
            [2, 8],
            device=C2050(ecc=True),
            cost=KernelCost.from_alpha(0.25),
            workload_scale=256,
            matrix_name="UHBR",
        )
        t2 = s.gflops_at("task", 2)
        t8 = s.gflops_at("task", 8)
        assert t8 > 2.0 * t2  # still scaling
        assert s.gflops_at("task", 8) >= s.gflops_at("vector", 8)


class TestSolverPipeline:
    def test_cg_on_distributed_verified_matrix(self):
        """CG on pJDS equals dense solve on the same suite matrix."""
        from repro.matrices import poisson2d

        A = poisson2d(14, 9)
        b = np.random.default_rng(1).normal(size=A.nrows)
        res = conjugate_gradient(convert(A, "pJDS", block_rows=16), b, tol=1e-10)
        assert res.converged
        assert np.allclose(A.todense() @ res.x, b, atol=1e-6)

    def test_lanczos_on_symmetrised_hmep(self):
        """The HMEp use case: ground state of a symmetric Hamiltonian."""
        coo = generate("HMEp", scale=2048, seed=1)
        # symmetrise: H = (A + A^T)/2
        t = coo.transpose()
        import numpy as _np

        from repro.formats import COOMatrix

        rows = _np.concatenate([coo.rows, t.rows])
        cols = _np.concatenate([coo.cols, t.cols])
        vals = _np.concatenate([coo.values * 0.5, t.values * 0.5])
        H = COOMatrix(rows, cols, vals, coo.shape)
        res = lanczos(convert(H, "pJDS"), num_eigenvalues=1, tol=1e-8, max_iter=300)
        dense_min = _np.linalg.eigvalsh(H.todense()).min()
        assert res.ground_state_energy == pytest.approx(dense_min, abs=1e-5)


class TestMemoryFeasibility:
    def test_dlr2_fits_only_with_pjds(self):
        """Paper: DLR2 (DP) fits a C2050 only in pJDS — scale-invariant."""
        coo = generate("DLR2", scale=64)
        dev = C2050().scaled(64)
        er_bytes = convert(coo, "ELLPACK-R").nbytes
        pj_bytes = convert(coo, "pJDS").nbytes
        assert er_bytes > dev.memory_bytes
        assert pj_bytes < dev.memory_bytes
