"""Tests for the repro.obs observability layer.

Covers the metrics registry (counters/gauges/log-bucketed histograms),
span parenting across the threaded distributed runtime, the
Timeline->span bridge, the Chrome trace-event schema, the Prometheus
text round-trip and the zero-cost-when-disabled guarantee.
"""

import io
import json
import math
import threading

import numpy as np
import pytest

from repro import obs
from repro.distributed import build_plan, distributed_spmv, partition_rows
from repro.formats import CSRMatrix

from _test_common import random_coo


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts disabled with empty registry/tracer."""
    obs.disable()
    obs.reset_all()
    yield
    obs.disable()
    obs.reset_all()


@pytest.fixture
def enabled():
    obs.enable()
    yield


def _setup_plan(n=80, nparts=4, seed=161):
    csr = CSRMatrix.from_coo(random_coo(n, seed=seed, max_row=9))
    part = partition_rows(csr.nrows, nparts, row_weights=csr.row_lengths())
    return csr, build_plan(csr, part)


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_inc(self, enabled):
        fam = obs.counter("requests_total", "help text")
        fam.inc(2, route="a")
        fam.inc(3, route="a")
        fam.inc(1, route="b")
        assert fam.labels(route="a").value == 5
        assert fam.labels(route="b").value == 1

    def test_counter_rejects_negative(self, enabled):
        with pytest.raises(ValueError):
            obs.counter("c_total").labels().inc(-1)

    def test_gauge_set(self, enabled):
        obs.set_gauge("residual", 0.5, solver="cg")
        obs.set_gauge("residual", 0.25, solver="cg")
        assert obs.get_registry().get("residual").labels(solver="cg").value == 0.25

    def test_kind_conflict(self, enabled):
        obs.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            obs.get_registry().gauge("x_total")

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            obs.counter("bad name")
        with pytest.raises(ValueError):
            obs.counter("1bad")

    def test_module_shortcuts_noop_when_disabled(self):
        obs.inc("nope_total", 5)
        obs.set_gauge("nope", 5)
        obs.observe("nope_hist", 5)
        assert obs.get_registry().families() == []

    def test_thread_safety(self, enabled):
        fam = obs.counter("race_total")

        def work():
            for _ in range(1000):
                fam.inc(1, t="x")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # CPython dict/float += under the GIL; children created once
        assert fam.labels(t="x").value == 4000


class TestHistogram:
    def test_bucket_boundaries(self, enabled):
        h = obs.histogram("lat_seconds").labels()
        # exact powers of two land in their own bucket (le is inclusive)
        h.observe(1.0)
        h.observe(2.0)
        h.observe(2.1)  # -> le=4
        h.observe(0.5)  # -> le=0.5
        buckets = dict(h.buckets())
        assert buckets[1.0] == 2  # cumulative: 0.5 and 1.0
        assert buckets[2.0] == 3
        assert buckets[4.0] == 4
        assert buckets[math.inf] == 4

    def test_exponents_exact_at_boundaries(self):
        h = obs.Histogram()
        for k in range(-10, 11):
            v = 2.0 ** k
            assert h.bucket_exponent(v) == k, v
            assert h.bucket_exponent(v * 1.001) == k + 1

    def test_underflow_bucket(self, enabled):
        h = obs.histogram("h").labels()
        h.observe(0.0)
        h.observe(-3.0)
        h.observe(4.0)
        buckets = h.buckets()
        assert buckets[-1] == (math.inf, 3)
        # the two non-positive observations are cumulative below 4.0
        assert any(b < 4.0 and c == 2 for b, c in buckets)

    def test_sum_count_mean(self, enabled):
        h = obs.histogram("h2").labels()
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(6.0)
        assert h.mean == pytest.approx(2.0)

    def test_custom_growth(self):
        h = obs.Histogram(growth=10.0)
        h.observe(5.0)  # -> le = 10
        h.observe(50.0)  # -> le = 100
        bounds = [b for b, _ in h.buckets()]
        assert 10.0 in bounds and 100.0 in bounds


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------


class TestSpans:
    def test_nesting_same_thread(self, enabled):
        with obs.span("outer") as o:
            with obs.span("inner") as i:
                pass
        spans = {s.name: s for s in obs.get_tracer().finished()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        assert o.span_id == spans["outer"].span_id
        assert i.duration >= 0.0

    def test_null_span_when_disabled(self):
        with obs.span("ghost") as sp:
            sp.set_attr("k", "v")
        assert obs.get_tracer().finished() == []
        assert sp.span_id is None

    def test_cross_thread_parenting(self, enabled):
        got = {}

        def worker(ctx):
            with obs.attach_context(ctx):
                with obs.span("child") as sp:
                    got["parent"] = sp.parent_id

        with obs.span("root") as root:
            ctx = obs.capture_context()
            t = threading.Thread(target=worker, args=(ctx,))
            t.start()
            t.join()
        assert got["parent"] == root.span_id

    def test_concurrent_threads_isolated(self, enabled):
        """Two threads' span stacks must not interleave."""
        barrier = threading.Barrier(2)

        def worker(name):
            with obs.span(name):
                barrier.wait()
                with obs.span(f"{name}.inner"):
                    pass

        ts = [threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        spans = {s.name: s for s in obs.get_tracer().finished()}
        assert spans["t0.inner"].parent_id == spans["t0"].span_id
        assert spans["t1.inner"].parent_id == spans["t1"].span_id


class TestDistributedSpans:
    def test_rank_spans_parent_under_root(self, enabled):
        csr, plan = _setup_plan(nparts=4)
        x = np.random.default_rng(0).normal(size=csr.nrows)
        distributed_spmv(plan, x)
        spans = obs.get_tracer().finished()
        roots = [s for s in spans if s.name == "distributed_spmv"]
        assert len(roots) == 1
        root = roots[0]
        for name in ("rank.gather", "rank.send", "rank.waitall", "rank.spmv"):
            children = [s for s in spans if s.name == name]
            assert len(children) == 4, name
            assert all(c.parent_id == root.span_id for c in children)
            assert sorted(c.attrs["rank"] for c in children) == [0, 1, 2, 3]

    def test_halo_bytes_counter(self, enabled):
        csr, plan = _setup_plan(nparts=3)
        x = np.random.default_rng(1).normal(size=csr.nrows)
        distributed_spmv(plan, x)
        fam = obs.get_registry().get("halo_bytes_sent")
        assert fam is not None
        total = sum(child.value for _, child in fam.samples())
        expected = 8 * sum(
            idx.size for p in plan.ranks for idx in p.send_cols.values()
        )
        assert total == expected

    def test_timeline_bridge(self, enabled):
        from repro.distributed import (
            DIRAC_IB,
            KernelCost,
            simulate_mode,
            stats_from_plan,
        )
        from repro.gpu import C2050

        csr, plan = _setup_plan(nparts=4)
        stats = stats_from_plan(plan, itemsize=8)
        simulate_mode("task", stats, C2050(), DIRAC_IB, KernelCost.from_alpha(0.25))
        spans = obs.get_tracer().finished()
        root = next(s for s in spans if s.name == "distributed_spmv")
        children = [s for s in spans if s.parent_id == root.span_id]
        # every rank contributes spans on gpu, pcie and thread0 tracks
        per_rank = {}
        for s in children:
            per_rank.setdefault(s.attrs["rank"], set()).add(s.attrs["resource"])
        assert set(per_rank) == {0, 1, 2, 3}
        for resources in per_rank.values():
            assert {"gpu", "pcie", "thread0"} <= resources


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------


class TestChromeTrace:
    def test_schema(self, enabled):
        csr, plan = _setup_plan(nparts=2)
        distributed_spmv(plan, np.ones(csr.nrows))
        doc = obs.chrome_trace()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert complete, "no complete events exported"
        for e in doc["traceEvents"]:
            assert e["ph"] in ("X", "M")
            assert "pid" in e and "tid" in e and "name" in e
            if e["ph"] == "X":
                assert isinstance(e["ts"], float) and e["ts"] >= 0.0
                assert isinstance(e["dur"], float) and e["dur"] >= 0.0

    def test_json_serializable_and_writer(self, enabled, tmp_path):
        with obs.span("work", rank=1, resource="gpu"):
            pass
        path = tmp_path / "trace.json"
        n = obs.write_chrome_trace(path)
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == n
        ev = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert ev["pid"] == 1 and ev["tid"] == "gpu"

    def test_rank_tracks(self, enabled):
        with obs.span("a", rank=3, resource="nic"):
            pass
        doc = obs.chrome_trace()
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {"process_name", "thread_name"} <= {e["name"] for e in meta}


class TestPrometheus:
    def test_exposition_contains_types_and_help(self, enabled):
        obs.counter("spmv_bytes_total", "traffic").inc(10, format="pJDS")
        text = obs.prometheus_text()
        assert "# HELP spmv_bytes_total traffic" in text
        assert "# TYPE spmv_bytes_total counter" in text
        assert 'spmv_bytes_total{format="pJDS"} 10' in text

    def test_round_trip(self, enabled):
        obs.counter("bytes_total").inc(1024, src="val", fmt="pJDS")
        obs.gauge("ratio").set(0.8184, kind="l2")
        h = obs.histogram("lat").labels(op="spmv")
        for v in (0.5, 1.0, 3.0):
            h.observe(v)
        text = obs.prometheus_text()
        parsed = obs.parse_prometheus_text(text)
        assert parsed["bytes_total"]["kind"] == "counter"
        key = (("fmt", "pJDS"), ("src", "val"))
        assert parsed["bytes_total"]["samples"][("bytes_total", key)] == 1024
        assert parsed["ratio"]["samples"][
            ("ratio", (("kind", "l2"),))
        ] == pytest.approx(0.8184)
        hist = parsed["lat"]
        assert hist["kind"] == "histogram"
        assert hist["samples"][("lat_count", (("op", "spmv"),))] == 3
        assert hist["samples"][("lat_sum", (("op", "spmv"),))] == pytest.approx(4.5)
        inf_key = (("le", "+Inf"), ("op", "spmv"))
        assert hist["samples"][("lat_bucket", inf_key)] == 3

    def test_label_escaping(self, enabled):
        obs.counter("esc_total").inc(1, path='a"b\\c')
        text = obs.prometheus_text()
        assert r"a\"b\\c" in text


class TestJsonl:
    def test_spans_and_metrics_lines(self, enabled):
        with obs.span("s", rank=0):
            obs.inc("c_total", 1)
        buf = io.StringIO()
        n = obs.write_jsonl(buf)
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert len(lines) == n == 2
        kinds = {rec["type"] for rec in lines}
        assert kinds == {"span", "metric"}


# ---------------------------------------------------------------------------
# zero-cost / bit-identical when disabled
# ---------------------------------------------------------------------------


class TestDisabledIsFree:
    def test_distributed_results_bit_identical(self):
        csr, plan = _setup_plan(nparts=4)
        x = np.random.default_rng(7).normal(size=csr.nrows)
        y_disabled = distributed_spmv(plan, x)
        obs.enable()
        y_enabled = distributed_spmv(plan, x)
        obs.disable()
        assert np.array_equal(y_disabled, y_enabled)
        assert obs.get_tracer().finished()  # enabled run recorded spans

    def test_simulate_spmv_bit_identical(self):
        from repro.formats import convert
        from repro.gpu import C2070, simulate_spmv

        m = convert(random_coo(50, seed=3), "pJDS")
        r1 = simulate_spmv(m, C2070())
        obs.enable()
        r2 = simulate_spmv(m, C2070())
        obs.disable()
        assert r1 == r2
        assert obs.get_registry().get("spmv_bytes_total") is not None

    def test_nothing_recorded_when_disabled(self):
        csr, plan = _setup_plan(nparts=2)
        distributed_spmv(plan, np.ones(csr.nrows))
        assert obs.get_tracer().finished() == []
        assert obs.get_registry().families() == []

    def test_solver_gauges_only_when_enabled(self):
        from repro.matrices import poisson2d
        from repro.solvers import conjugate_gradient

        m = CSRMatrix.from_coo(poisson2d(8, 8))
        b = np.ones(m.nrows)
        conjugate_gradient(m, b)
        assert obs.get_registry().get("solver_residual") is None
        obs.enable()
        res = conjugate_gradient(m, b)
        obs.disable()
        fam = obs.get_registry().get("solver_residual")
        assert fam.labels(solver="cg").value == pytest.approx(res.residual_norm)
        iters = obs.get_registry().get("solver_iterations_total")
        assert iters.labels(solver="cg").value == res.iterations


# ---------------------------------------------------------------------------
# runtime satellites: output shape + timeout
# ---------------------------------------------------------------------------


class TestRuntimeSatellites:
    def test_result_has_row_dimension(self):
        csr, plan = _setup_plan(nparts=3)
        y = distributed_spmv(plan, np.ones(csr.nrows))
        assert y.shape == (plan.partition.nrows,)

    def test_timeout_names_stuck_rank(self, enabled):
        import dataclasses

        csr, plan = _setup_plan(nparts=2)
        # doctor rank 0 to expect a message from a rank that never sends
        doctored = dataclasses.replace(
            plan.ranks[0],
            recv_cols={**plan.ranks[0].recv_cols, 9: np.array([0])},
        )
        bad_plan = dataclasses.replace(plan, ranks=[doctored, plan.ranks[1]])
        from repro.distributed import DistributedTimeout

        with pytest.raises(DistributedTimeout, match=r"stuck ranks: 0"):
            distributed_spmv(bad_plan, np.ones(csr.nrows), timeout=0.2)
        fam = obs.get_registry().get("distributed_timeouts_total")
        assert fam is not None
        assert sum(c.value for _, c in fam.samples()) >= 1

    def test_timeout_validation(self):
        csr, plan = _setup_plan(nparts=2)
        with pytest.raises(ValueError, match="timeout"):
            distributed_spmv(plan, np.ones(csr.nrows), timeout=0.0)

    def test_workers_are_daemon(self):
        seen = []
        orig = threading.Thread.start

        def spy(self):
            if self.name.startswith("rank-"):
                seen.append(self.daemon)
            return orig(self)

        csr, plan = _setup_plan(nparts=2)
        threading.Thread.start = spy
        try:
            distributed_spmv(plan, np.ones(csr.nrows))
        finally:
            threading.Thread.start = orig
        assert seen and all(seen)


# ---------------------------------------------------------------------------
# summary metric (p50/p95/p99 sliding window)
# ---------------------------------------------------------------------------
class TestSummary:
    def test_nearest_rank_quantiles(self, enabled):
        s = obs.summary("req_seconds").labels()
        for v in range(1, 101):  # 1..100
            s.observe(float(v))
        assert s.quantile(0.5) == 50.0
        assert s.quantile(0.95) == 95.0
        assert s.quantile(0.99) == 99.0
        assert s.quantile(1.0) == 100.0

    def test_snapshot_covers_configured_quantiles(self, enabled):
        fam = obs.get_registry().summary("lat", quantiles=(0.5, 0.9))
        child = fam.labels(op="spmv")
        for v in (1.0, 2.0, 3.0, 4.0):
            child.observe(v)
        snap = child.snapshot()
        assert set(snap) == {0.5, 0.9}
        assert snap[0.5] == 2.0
        assert snap[0.9] == 4.0

    def test_empty_summary_is_nan(self, enabled):
        s = obs.summary("empty_seconds").labels()
        assert math.isnan(s.quantile(0.5))
        assert all(math.isnan(v) for v in s.snapshot().values())
        with pytest.raises(RuntimeError, match="no observations"):
            s.mean

    def test_sliding_window_forgets_old_values(self, enabled):
        fam = obs.get_registry().summary("win_seconds", window=10)
        s = fam.labels()
        for _ in range(10):
            s.observe(1000.0)  # ancient outliers
        for _ in range(10):
            s.observe(1.0)  # recent behaviour fills the window
        assert s.quantile(0.99) == 1.0  # outliers aged out
        # but cumulative sum/count keep full history (Prometheus semantics)
        assert s.count == 20
        assert s.sum == pytest.approx(10010.0)
        assert s.mean == pytest.approx(500.5)

    def test_module_shortcut_noop_when_disabled(self):
        obs.observe_summary("off_seconds", 1.0, op="x")
        assert obs.get_registry().get("off_seconds") is None

    def test_kind_conflict_with_histogram(self, enabled):
        obs.histogram("mixed_seconds").labels().observe(1.0)
        with pytest.raises(ValueError, match="already registered"):
            obs.summary("mixed_seconds")

    def test_prometheus_exposition(self, enabled):
        for v in (0.1, 0.2, 0.3):
            obs.observe_summary("sz_seconds", v, op="spmv")
        text = obs.prometheus_text()
        assert "# TYPE sz_seconds summary" in text
        assert 'sz_seconds{op="spmv",quantile="0.5"} 0.2' in text
        assert 'sz_seconds{op="spmv",quantile="0.99"} 0.3' in text
        assert 'sz_seconds_sum{op="spmv"}' in text
        assert 'sz_seconds_count{op="spmv"} 3' in text

    def test_prometheus_empty_summary_is_nan_line(self, enabled):
        obs.summary("idle_seconds").labels()
        text = obs.prometheus_text()
        assert 'idle_seconds{quantile="0.5"} NaN' in text
        assert "idle_seconds_count 0" in text

    def test_prometheus_round_trip(self, enabled):
        for v in (1.0, 2.0, 4.0):
            obs.observe_summary("rt_seconds", v)
        parsed = obs.parse_prometheus_text(obs.prometheus_text())
        fam = parsed["rt_seconds"]
        assert fam["kind"] == "summary"
        assert fam["samples"][("rt_seconds_count", ())] == 3
        assert fam["samples"][("rt_seconds_sum", ())] == pytest.approx(7.0)
        q50 = (("quantile", "0.5"),)
        assert fam["samples"][("rt_seconds", q50)] == 2.0

    def test_jsonl_quantile_record(self, enabled):
        obs.observe_summary("jl_seconds", 0.5, op="x")
        buf = io.StringIO()
        obs.write_jsonl(buf)
        records = [json.loads(line) for line in buf.getvalue().splitlines()]
        summaries = [
            r for r in records
            if r.get("type") == "metric" and r.get("name") == "jl_seconds"
        ]
        assert summaries, records
        rec = summaries[0]
        assert rec["kind"] == "summary"
        assert rec["quantiles"]["0.5"] == 0.5
        assert rec["count"] == 1

    def test_thread_safety(self, enabled):
        fam = obs.get_registry().summary("ts_seconds", window=4096)

        def work():
            child = fam.labels(t="x")
            for _ in range(1000):
                child.observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert fam.labels(t="x").count == 4000
