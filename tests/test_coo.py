"""Unit tests for the COO interchange format."""

import numpy as np
import pytest

from repro.formats import COOMatrix

from _test_common import random_coo


class TestConstruction:
    def test_basic(self):
        m = COOMatrix([0, 1], [1, 0], [2.0, 3.0], (2, 2))
        assert m.shape == (2, 2)
        assert m.nnz == 2
        assert m.dtype == np.float64

    def test_canonical_ordering(self):
        m = COOMatrix([1, 0, 1], [0, 1, 1], [1.0, 2.0, 3.0], (2, 2))
        assert m.rows.tolist() == [0, 1, 1]
        assert m.cols.tolist() == [1, 0, 1]
        assert m.values.tolist() == [2.0, 1.0, 3.0]

    def test_duplicates_summed(self):
        m = COOMatrix([0, 0, 0], [1, 1, 0], [1.0, 2.0, 5.0], (2, 2))
        assert m.nnz == 2
        dense = m.todense()
        assert dense[0, 1] == 3.0
        assert dense[0, 0] == 5.0

    def test_duplicates_kept_when_disabled(self):
        m = COOMatrix([0, 0], [1, 1], [1.0, 2.0], (2, 2), sum_duplicates=False)
        assert m.nnz == 2

    def test_drop_zeros(self):
        m = COOMatrix([0, 1], [0, 1], [0.0, 2.0], (2, 2), drop_zeros=True)
        assert m.nnz == 1

    def test_explicit_zeros_kept_by_default(self):
        m = COOMatrix([0], [0], [0.0], (2, 2))
        assert m.nnz == 1

    def test_duplicate_cancellation_with_drop(self):
        m = COOMatrix([0, 0], [0, 0], [1.0, -1.0], (2, 2), drop_zeros=True)
        assert m.nnz == 0

    def test_float32_preserved(self):
        m = COOMatrix([0], [0], np.asarray([1.0], dtype=np.float32), (1, 1))
        assert m.dtype == np.float32

    def test_int_values_upcast(self):
        m = COOMatrix([0], [0], [3], (1, 1))
        assert m.dtype == np.float64

    def test_out_of_range_row_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            COOMatrix([5], [0], [1.0], (2, 2))

    def test_negative_col_rejected(self):
        with pytest.raises(ValueError, match="cols"):
            COOMatrix([0], [-1], [1.0], (2, 2))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            COOMatrix([0, 1], [0], [1.0], (2, 2))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix([], [], [], (0, 2))

    def test_empty_matrix(self):
        m = COOMatrix([], [], [], (3, 3))
        assert m.nnz == 0
        assert np.all(m.spmv(np.ones(3)) == 0.0)


class TestSpmv:
    def test_against_dense(self):
        m = random_coo(30, seed=7)
        x = np.random.default_rng(0).normal(size=30)
        assert np.allclose(m.spmv(x), m.todense() @ x)

    def test_rectangular(self):
        m = random_coo(20, 35, seed=8)
        x = np.random.default_rng(1).normal(size=35)
        y = m.spmv(x)
        assert y.shape == (20,)
        assert np.allclose(y, m.todense() @ x)

    def test_out_parameter_reused(self):
        m = random_coo(25, seed=9)
        x = np.ones(25)
        out = np.empty(25)
        y = m.spmv(x, out=out)
        assert y is out

    def test_out_wrong_length_rejected(self):
        m = random_coo(25, seed=9)
        with pytest.raises(ValueError):
            m.spmv(np.ones(25), out=np.empty(24))

    def test_wrong_x_length_rejected(self):
        m = random_coo(25, seed=9)
        with pytest.raises(ValueError, match="length"):
            m.spmv(np.ones(26))

    def test_x_2d_rejected(self):
        m = random_coo(25, seed=9)
        with pytest.raises(ValueError, match="1-D"):
            m.spmv(np.ones((25, 1)))

    def test_sp_matches_dp_loosely(self):
        m64 = random_coo(40, seed=10)
        m32 = m64.astype(np.float32)
        x = np.random.default_rng(2).normal(size=40)
        assert np.allclose(m32.spmv(x), m64.spmv(x), atol=1e-4)


class TestConverters:
    def test_from_dense_roundtrip(self):
        rng = np.random.default_rng(11)
        dense = rng.normal(size=(8, 9)) * (rng.random((8, 9)) < 0.4)
        m = COOMatrix.from_dense(dense)
        assert np.allclose(m.todense(), dense)

    def test_from_dense_requires_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            COOMatrix.from_dense(np.ones(4))

    def test_scipy_roundtrip(self):
        m = random_coo(15, seed=12)
        back = COOMatrix.from_scipy(m.to_scipy())
        assert np.allclose(back.todense(), m.todense())

    def test_transpose(self):
        m = random_coo(10, 14, seed=13)
        t = m.transpose()
        assert t.shape == (14, 10)
        assert np.allclose(t.todense(), m.todense().T)

    def test_astype_roundtrip(self):
        m = random_coo(10, seed=14)
        m32 = m.astype(np.float32)
        assert m32.dtype == np.float32
        assert m.astype(np.float64) is m

    def test_to_coo_is_self(self):
        m = random_coo(10, seed=15)
        assert m.to_coo() is m


class TestAccounting:
    def test_memory_breakdown(self):
        m = COOMatrix([0, 1], [1, 0], [1.0, 2.0], (2, 2))
        bd = m.memory_breakdown()
        assert bd["val"] == 2 * 8
        assert bd["row_idx"] == 2 * 4
        assert bd["col_idx"] == 2 * 4
        assert m.nbytes == 32

    def test_row_lengths(self):
        m = COOMatrix([0, 0, 2], [0, 1, 2], [1.0, 1.0, 1.0], (3, 3))
        assert m.row_lengths().tolist() == [2, 0, 1]

    def test_avg_row_length(self):
        m = random_coo(30, seed=16, empty_row_fraction=0.0)
        assert m.avg_row_length == pytest.approx(m.nnz / 30)

    def test_views_are_readonly(self):
        m = random_coo(10, seed=17)
        for arr in (m.rows, m.cols, m.values):
            with pytest.raises(ValueError):
                arr[0] = 0
