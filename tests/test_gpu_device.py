"""Tests for the Fermi device description."""

import numpy as np
import pytest

from repro.gpu import C2050, C2070, DeviceSpec, precision_dtype


class TestSpecs:
    def test_paper_numbers(self):
        dev = C2070()
        assert dev.num_sms == 14
        assert dev.alus_per_sm == 32
        assert dev.warp_size == 32
        assert dev.l2_bytes == 768 * 1024
        assert dev.cache_line_bytes == 128

    def test_memory_sizes(self):
        assert C2050().memory_bytes == 3 * 1024**3
        assert C2070().memory_bytes == 6 * 1024**3

    def test_peak_performance(self):
        """896 flops/cycle SP chip-wide, half at DP (Sect. I-B)."""
        dev = C2070()
        assert dev.peak_gflops("SP") == pytest.approx(896 * dev.clock_ghz)
        assert dev.peak_gflops("DP") == pytest.approx(448 * dev.clock_ghz)

    def test_ecc_bandwidths(self):
        """~91 GB/s with ECC, ~120 GB/s without (ref. [5] of the paper)."""
        assert C2070(ecc=True).bandwidth_gbs == 91.0
        assert C2070(ecc=False).bandwidth_gbs == 120.0

    def test_with_ecc(self):
        dev = C2070(ecc=True)
        assert dev.with_ecc(False).bandwidth_gbs == 120.0
        assert dev.bandwidth_gbs == 91.0  # original untouched

    def test_l2_lines(self):
        assert C2070().l2_lines == 768 * 1024 // 128

    def test_precision_dtype(self):
        assert precision_dtype("SP") == np.float32
        assert precision_dtype("DP") == np.float64
        with pytest.raises(ValueError):
            precision_dtype("HP")

    def test_cycles_per_warp_step(self):
        dev = DeviceSpec(issue_overhead_cycles=0.0)
        assert dev.cycles_per_warp_step("SP") == 1.0
        assert dev.cycles_per_warp_step("DP") == 2.0

    def test_peak_validates_precision(self):
        with pytest.raises(KeyError):
            C2070().peak_gflops("FP16")


class TestScaling:
    def test_scaled_divides_cache_and_residency(self):
        dev = C2070().scaled(64)
        assert dev.l2_bytes == 768 * 1024 // 64
        assert dev.resident_warps == 448 // 64
        assert dev.memory_bytes == 6 * 1024**3 // 64

    def test_scaled_keeps_bandwidths(self):
        dev = C2070(ecc=True).scaled(16)
        assert dev.bandwidth_gbs == 91.0
        assert dev.pcie_bandwidth_gbs == 6.0

    def test_scaled_floors(self):
        dev = C2070().scaled(10**9)
        assert dev.l2_bytes >= dev.cache_line_bytes
        assert dev.resident_warps >= 1

    def test_scale_one_is_identity(self):
        dev = C2070()
        assert dev.scaled(1) is dev

    def test_bad_divisor(self):
        with pytest.raises(ValueError):
            C2070().scaled(0)

    def test_name_records_scale(self):
        assert "64" in C2070().scaled(64).name
