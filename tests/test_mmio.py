"""Tests for Matrix Market I/O."""

import io

import numpy as np
import pytest

from repro.matrices import read_matrix_market, write_matrix_market

from _test_common import random_coo


class TestRoundtrip:
    def test_file_roundtrip(self, tmp_path):
        coo = random_coo(25, 30, seed=101)
        path = tmp_path / "m.mtx"
        write_matrix_market(coo, path)
        back = read_matrix_market(path)
        assert back.shape == coo.shape
        assert np.allclose(back.todense(), coo.todense())

    def test_stream_roundtrip(self):
        coo = random_coo(12, seed=102)
        buf = io.StringIO()
        write_matrix_market(coo, buf, comment="unit test")
        buf.seek(0)
        back = read_matrix_market(buf)
        assert np.allclose(back.todense(), coo.todense())

    def test_any_format_writable(self, tmp_path):
        from repro.formats import convert

        coo = random_coo(15, seed=103)
        p = convert(coo, "pJDS", block_rows=4)
        path = tmp_path / "p.mtx"
        write_matrix_market(p, path)
        assert np.allclose(read_matrix_market(path).todense(), coo.todense())

    def test_empty_matrix(self, tmp_path):
        from repro.formats import COOMatrix

        coo = COOMatrix([], [], [], (4, 4))
        path = tmp_path / "e.mtx"
        write_matrix_market(coo, path)
        back = read_matrix_market(path)
        assert back.nnz == 0
        assert back.shape == (4, 4)

    def test_precision_preserved(self, tmp_path):
        from repro.formats import COOMatrix

        coo = COOMatrix([0], [0], [1.0 / 3.0], (1, 1))
        path = tmp_path / "p.mtx"
        write_matrix_market(coo, path)
        assert read_matrix_market(path).values[0] == pytest.approx(1 / 3, abs=1e-16)


class TestParsing:
    def _read(self, text: str):
        return read_matrix_market(io.StringIO(text))

    def test_pattern_field(self):
        m = self._read(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n"
        )
        assert np.array_equal(m.todense(), np.eye(2))

    def test_integer_field(self):
        m = self._read(
            "%%MatrixMarket matrix coordinate integer general\n2 2 1\n2 1 7\n"
        )
        assert m.todense()[1, 0] == 7.0

    def test_symmetric_mirrored(self):
        m = self._read(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 3\n1 1 1.0\n2 1 5.0\n3 2 2.0\n"
        )
        dense = m.todense()
        assert dense[0, 1] == 5.0 and dense[1, 0] == 5.0
        assert dense[1, 2] == 2.0 and dense[2, 1] == 2.0
        assert m.nnz == 5  # diagonal not duplicated

    def test_skew_symmetric(self):
        m = self._read(
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n2 1 3.0\n"
        )
        dense = m.todense()
        assert dense[1, 0] == 3.0
        assert dense[0, 1] == -3.0

    def test_comments_skipped(self):
        m = self._read(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n% another\n1 1 1\n1 1 4.0\n"
        )
        assert m.todense()[0, 0] == 4.0

    def test_bad_header(self):
        with pytest.raises(ValueError, match="MatrixMarket"):
            self._read("garbage\n1 1 0\n")

    def test_unsupported_field(self):
        with pytest.raises(ValueError, match="field"):
            self._read("%%MatrixMarket matrix coordinate complex general\n1 1 0\n")

    def test_unsupported_format(self):
        with pytest.raises(ValueError, match="coordinate"):
            self._read("%%MatrixMarket matrix array real general\n1 1\n1.0\n")

    def test_unsupported_symmetry(self):
        with pytest.raises(ValueError, match="symmetry"):
            self._read("%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n")

    def test_wrong_entry_count(self):
        with pytest.raises(ValueError, match="expected 2"):
            self._read(
                "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
            )

    def test_missing_size_line(self):
        with pytest.raises(ValueError, match="size"):
            self._read("%%MatrixMarket matrix coordinate real general\n")

    def test_one_based_indexing(self):
        m = self._read(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n2 2 9.0\n"
        )
        assert m.todense()[1, 1] == 9.0
