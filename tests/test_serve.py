"""Tests for the repro.serve concurrent SpMV serving subsystem.

Covers the acceptance criteria of the serving PR:

(a) coalescing — N concurrent requests execute as <= ceil(N/max_batch)
    spmm calls, responses bitwise-identical to serial BoundMatrix.spmv
    (variant pinned to the stored-order scipy delegate);
(b) the reject policy fails fast with ServerOverloaded while in-flight
    work completes;
(c) an expired request never reaches a worker;
(d) LRU eviction never touches an in-use (leased) matrix;

plus registry semantics, all three backpressure policies, lifecycle,
the in-process Client (solve/eigsh), the HTTP front-end, and the obs
integration (span parenting + serving metrics).
"""

import json
import math
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import obs
from repro.engine import bind
from repro.formats import CSRMatrix, convert
from repro.matrices import poisson2d
from repro.serve import (
    Client,
    DeadlineExceeded,
    MatrixNotFound,
    MatrixRegistry,
    ServerClosed,
    ServerOverloaded,
    SpMVServer,
    make_http_server,
)

from _test_common import random_coo

#: stored-order scipy delegate: spmv and spmm-by-columns are bitwise equal
VARIANT = "csr_scipy"


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset_all()
    yield
    obs.disable()
    obs.reset_all()


def make_csr(n=60, seed=3, max_row=7):
    return CSRMatrix.from_coo(random_coo(n, seed=seed, max_row=max_row))


def make_registry(names=("A",), n=60, seed=3, **kw):
    reg = MatrixRegistry(**kw)
    for i, name in enumerate(names):
        reg.register(name, matrix=make_csr(n, seed=seed + i), variant=VARIANT)
    return reg


def vectors(n, k, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(n) for _ in range(k)]


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_register_needs_exactly_one_source(self):
        reg = MatrixRegistry()
        with pytest.raises(ValueError, match="exactly one"):
            reg.register("A")
        with pytest.raises(ValueError, match="exactly one"):
            reg.register("A", lambda: make_csr(), matrix=make_csr())

    def test_lazy_load_and_hit_counting(self):
        calls = []

        def loader():
            calls.append(1)
            return make_csr()

        reg = MatrixRegistry()
        reg.register("A", loader, variant=VARIANT)
        assert reg.resident() == [] and not calls
        with reg.acquire("A") as lease:
            assert lease.name == "A"
            assert lease.nbytes > 0
        with reg.acquire("A"):
            pass
        assert len(calls) == 1  # loaded once, second acquire is a hit
        assert reg.loads == 1 and reg.hits == 1
        assert reg.resident() == ["A"]

    def test_unknown_matrix_raises_with_hint(self):
        reg = make_registry(("A", "B"))
        with pytest.raises(MatrixNotFound, match=r"'Z'.*'A', 'B'"):
            reg.acquire("Z")

    def test_has_and_names(self):
        reg = make_registry(("B", "A"))
        assert reg.names() == ["A", "B"]
        assert reg.has("A") and not reg.has("Z")

    def test_lru_eviction_under_budget(self):
        reg = make_registry(("A", "B", "C"), n=60)
        with reg.acquire("A") as la:
            per = la.nbytes
        budget = int(per * 2.2)  # room for ~2 matrices
        reg.budget_bytes = budget
        with reg.acquire("B"):
            pass
        with reg.acquire("C"):
            pass
        assert reg.evictions >= 1
        assert reg.resident_bytes <= budget
        assert "C" in reg.resident()  # newest survives

    def test_eviction_never_touches_leased_matrix(self):
        """Acceptance (d): an in-use matrix is never evicted."""
        reg = make_registry(("A", "B", "C"), n=60)
        with reg.acquire("A") as la:
            reg.budget_bytes = int(la.nbytes * 2.2)
            with reg.acquire("B"):
                pass
            with reg.acquire("C"):
                pass
            # A is leased: it must survive even though it is LRU-oldest
            assert "A" in reg.resident()
            assert "B" not in reg.resident()  # idle LRU victim
        # after release, a further load may evict A normally
        assert reg.evictions >= 1

    def test_over_budget_when_everything_leased(self):
        reg = make_registry(("A", "B"), n=60)
        with reg.acquire("A") as la:
            reg.budget_bytes = int(la.nbytes * 1.1)  # < 2 matrices
            with reg.acquire("B"):
                # both leased: correctness beats the bound
                assert set(reg.resident()) == {"A", "B"}
                assert reg.resident_bytes > reg.budget_bytes

    def test_clone_for_caches_per_token(self):
        reg = make_registry()
        with reg.acquire("A") as lease:
            c0 = lease.clone_for(0)
            c0b = lease.clone_for(0)
            c1 = lease.clone_for(1)
        assert c0 is c0b
        assert c0 is not c1
        assert c0.matrix is c1.matrix  # matrix data shared
        assert c0.workspace is not c1.workspace  # scratch private

    def test_release_is_idempotent(self):
        reg = make_registry()
        lease = reg.acquire("A")
        lease.release()
        lease.release()  # no refcount underflow
        with reg.acquire("A"):
            pass

    def test_register_suite_lazy(self):
        reg = MatrixRegistry(tune=False)
        reg.register_suite("amg", "sAMG", scale=48, seed=1)
        assert reg.has("amg") and reg.resident() == []
        with reg.acquire("amg") as lease:
            assert lease.matrix.name == "pJDS"
            assert lease.bound.shape[0] > 0

    def test_stats_snapshot(self):
        reg = make_registry(("A",))
        with reg.acquire("A"):
            s = reg.stats()
        assert s["registered"] == ["A"]
        assert s["resident"][0]["name"] == "A"
        assert s["resident"][0]["refcount"] == 1
        assert s["resident_bytes"] == s["resident"][0]["nbytes"]

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError, match="budget_bytes"):
            MatrixRegistry(budget_bytes=0)


# ---------------------------------------------------------------------------
# coalescing (acceptance a)
# ---------------------------------------------------------------------------
class TestCoalescing:
    def test_batches_coalesce_and_match_serial_bitwise(self):
        """24 queued requests, max_batch=8 -> <= 3 spmm calls, bitwise-equal."""
        csr = make_csr(n=80, seed=11)
        reg = MatrixRegistry()
        reg.register("A", matrix=csr, variant=VARIANT)
        xs = vectors(csr.ncols, 24, seed=2)
        serial = bind(csr, tune=False, variant=VARIANT)
        refs = [serial.spmv(x) for x in xs]

        server = SpMVServer(
            reg, max_batch=8, max_delay_ms=50.0, workers=1, autostart=False
        )
        futures = [server.submit("A", x) for x in xs]
        assert server.queue_depth == 24
        server.start()
        results = [f.result(timeout=10) for f in futures]
        server.close()

        assert server.spmm_calls <= math.ceil(24 / 8)
        assert server.batches_executed == server.spmm_calls
        for got, ref in zip(results, refs):
            assert got.dtype == ref.dtype
            np.testing.assert_array_equal(got, ref)  # bitwise

    def test_partial_batch_dispatches_on_delay_window(self):
        reg = make_registry()
        with SpMVServer(reg, max_batch=64, max_delay_ms=5.0, workers=1) as server:
            y = server.spmv("A", np.ones(60), timeout=10)
        assert y.shape == (60,)
        assert server.spmm_calls == 1  # single under-full batch

    def test_batches_are_per_matrix(self):
        reg = make_registry(("A", "B"), n=50, seed=9)
        server = SpMVServer(
            reg, max_batch=16, max_delay_ms=50.0, workers=1, autostart=False
        )
        fa = [server.submit("A", x) for x in vectors(50, 3, seed=1)]
        fb = [server.submit("B", x) for x in vectors(50, 3, seed=2)]
        server.start()
        for f in fa + fb:
            assert f.result(timeout=10).shape == (50,)
        server.close()
        assert server.spmm_calls == 2  # one batch per matrix
        stats = server.stats()
        assert stats["per_matrix"]["A"]["vectors"] == 3
        assert stats["per_matrix"]["B"]["vectors"] == 3

    def test_stats_counts_and_mean_batch_size(self):
        reg = make_registry()
        server = SpMVServer(
            reg, max_batch=4, max_delay_ms=50.0, workers=1, autostart=False
        )
        futures = [server.submit("A", x) for x in vectors(60, 8)]
        server.start()
        for f in futures:
            f.result(timeout=10)
        server.close()
        s = server.stats()
        assert s["requests"]["ok"] == 8
        assert s["batched_vectors"] == 8
        assert s["spmm_calls"] == 2
        assert s["mean_batch_size"] == pytest.approx(4.0)
        assert s["latency_ms"]["count"] == 8
        assert s["latency_ms"]["p50"] is not None

    def test_bad_vector_fails_alone_batch_survives(self):
        reg = make_registry()
        server = SpMVServer(
            reg, max_batch=8, max_delay_ms=50.0, workers=1, autostart=False
        )
        good = [server.submit("A", x) for x in vectors(60, 3)]
        bad = server.submit("A", np.ones(61))  # wrong length
        server.start()
        for f in good:
            assert f.result(timeout=10).shape == (60,)
        with pytest.raises(ValueError):
            bad.result(timeout=10)
        server.close()
        assert server.stats()["requests"]["error"] == 1

    def test_submit_validates_inputs(self):
        reg = make_registry()
        with SpMVServer(reg, autostart=False) as server:
            with pytest.raises(MatrixNotFound):
                server.submit("Z", np.ones(60))
            with pytest.raises(ValueError, match="1-D"):
                server.submit("A", np.ones((60, 2)))
            with pytest.raises(ValueError, match="deadline_ms"):
                server.submit("A", np.ones(60), deadline_ms=0)


# ---------------------------------------------------------------------------
# backpressure (acceptance b)
# ---------------------------------------------------------------------------
class TestBackpressure:
    def test_reject_fails_fast_inflight_completes(self):
        """Acceptance (b): reject raises; already-admitted work finishes."""
        csr = make_csr()
        reg = MatrixRegistry()
        reg.register("A", matrix=csr, variant=VARIANT)
        server = SpMVServer(
            reg,
            max_queue=2,
            policy="reject",
            max_batch=4,
            max_delay_ms=50.0,
            workers=1,
            autostart=False,
        )
        xs = vectors(60, 2)
        inflight = [server.submit("A", x) for x in xs]
        with pytest.raises(ServerOverloaded, match="queue full"):
            server.submit("A", np.ones(60))
        server.start()
        serial = bind(csr, tune=False, variant=VARIANT)
        for f, x in zip(inflight, xs):
            np.testing.assert_array_equal(f.result(timeout=10), serial.spmv(x))
        server.close()
        s = server.stats()
        assert s["requests"] == {**s["requests"], "ok": 2, "rejected": 1}

    def test_shed_oldest_drops_head_admits_newcomer(self):
        reg = make_registry()
        server = SpMVServer(
            reg,
            max_queue=2,
            policy="shed-oldest",
            max_delay_ms=50.0,
            workers=1,
            autostart=False,
        )
        f1 = server.submit("A", np.ones(60))
        f2 = server.submit("A", np.ones(60))
        f3 = server.submit("A", np.ones(60))  # sheds f1
        with pytest.raises(ServerOverloaded, match="shed"):
            f1.result(timeout=1)
        assert server.queue_depth == 2
        server.start()
        assert f2.result(timeout=10).shape == (60,)
        assert f3.result(timeout=10).shape == (60,)
        server.close()
        assert server.stats()["requests"]["shed"] == 1

    def test_block_waits_for_space(self):
        reg = make_registry()
        server = SpMVServer(
            reg,
            max_queue=2,
            policy="block",
            max_delay_ms=1.0,
            workers=1,
            autostart=False,
        )
        server.submit("A", np.ones(60))
        server.submit("A", np.ones(60))
        admitted = []

        def blocked_submit():
            admitted.append(server.spmv("A", np.ones(60), timeout=10))

        t = threading.Thread(target=blocked_submit, daemon=True)
        t.start()
        time.sleep(0.05)
        assert not admitted  # still blocked at admission
        server.start()  # draining the queue unblocks the submitter
        t.join(timeout=10)
        assert len(admitted) == 1 and admitted[0].shape == (60,)
        server.close()

    def test_block_admission_timeout(self):
        reg = make_registry()
        server = SpMVServer(
            reg, max_queue=1, policy="block", autostart=False
        )
        server.submit("A", np.ones(60))
        t0 = time.perf_counter()
        with pytest.raises(ServerOverloaded, match="block timeout"):
            server.submit("A", np.ones(60), admission_timeout_s=0.05)
        assert time.perf_counter() - t0 < 5.0
        server.close(drain=False)

    def test_invalid_policy_rejected(self):
        reg = make_registry()
        with pytest.raises(ValueError, match="policy"):
            SpMVServer(reg, policy="drop-newest")


# ---------------------------------------------------------------------------
# deadlines (acceptance c)
# ---------------------------------------------------------------------------
class TestDeadline:
    def test_expired_request_never_executes(self):
        """Acceptance (c): a request whose deadline passed is never run."""
        reg = make_registry()
        server = SpMVServer(
            reg, max_batch=4, max_delay_ms=1.0, workers=1, autostart=False
        )
        doomed = server.submit("A", np.ones(60), deadline_ms=10)
        time.sleep(0.05)  # let the deadline lapse while workers are off
        server.start()
        with pytest.raises(DeadlineExceeded, match="deadline exceeded"):
            doomed.result(timeout=10)
        server.close()
        assert server.spmm_calls == 0  # never reached a worker
        assert server.stats()["requests"]["expired"] == 1

    def test_expiry_is_per_request(self):
        reg = make_registry()
        server = SpMVServer(
            reg, max_batch=8, max_delay_ms=1.0, workers=1, autostart=False
        )
        doomed = server.submit("A", np.ones(60), deadline_ms=10)
        alive = server.submit("A", np.ones(60))
        time.sleep(0.05)
        server.start()
        assert alive.result(timeout=10).shape == (60,)
        with pytest.raises(DeadlineExceeded):
            doomed.result(timeout=10)
        server.close()
        assert server.stats()["requests"]["ok"] == 1
        assert server.stats()["requests"]["expired"] == 1

    def test_generous_deadline_is_met(self):
        reg = make_registry()
        with SpMVServer(reg, max_delay_ms=1.0, workers=1) as server:
            y = server.spmv("A", np.ones(60), deadline_ms=30_000, timeout=10)
        assert y.shape == (60,)

    def test_degraded_fallback_maps_expiry_to_deadline_exceeded(self):
        """Regression: a request that expires while queued for the
        degraded (all-workers-dead) fallback path must fail with
        :class:`DeadlineExceeded` (504), not a generic ``ServeError``.
        """
        from repro.faults import FaultEvent, FaultPlan

        inj = FaultPlan(
            (FaultEvent("worker_crash", 0.1, layer="serve",
                        target={"worker": 0}),)
        ).injector()
        reg = make_registry()
        server = SpMVServer(
            reg, max_batch=4, max_delay_ms=1.0, workers=1, faults=inj,
            autostart=False,
        )
        try:
            # enqueue, let the deadline lapse with the pool still off,
            # then start: the lone worker dies to the injected crash and
            # the degraded loop inherits an already-expired request
            doomed = server.submit("A", np.ones(60), deadline_ms=10)
            time.sleep(0.05)
            server.start()
            with pytest.raises(DeadlineExceeded, match="deadline exceeded"):
                doomed.result(timeout=10)
            deadline = time.monotonic() + 5.0
            while not server.degraded and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.degraded and server.live_workers == 0
            assert isinstance(doomed.exception(), DeadlineExceeded)
            assert doomed.exception().http_status == 504
            # a live request still completes through the fallback
            y = server.spmv("A", np.ones(60), deadline_ms=30_000, timeout=10)
            assert y.shape == (60,)
            assert server.stats()["requests"]["expired"] >= 1
        finally:
            server.close()


# ---------------------------------------------------------------------------
# lifecycle + concurrency
# ---------------------------------------------------------------------------
class TestLifecycle:
    def test_close_drains_pending(self):
        csr = make_csr()
        reg = MatrixRegistry()
        reg.register("A", matrix=csr, variant=VARIANT)
        server = SpMVServer(
            reg, max_batch=4, max_delay_ms=10_000.0, workers=1, autostart=False
        )
        xs = vectors(60, 3)
        futures = [server.submit("A", x) for x in xs]
        server.start()
        server.close(drain=True)  # forces under-full batch out
        serial = bind(csr, tune=False, variant=VARIANT)
        for f, x in zip(futures, xs):
            np.testing.assert_array_equal(f.result(timeout=1), serial.spmv(x))

    def test_close_without_drain_fails_pending(self):
        reg = make_registry()
        server = SpMVServer(reg, autostart=False)
        f = server.submit("A", np.ones(60))
        server.close(drain=False)
        with pytest.raises(ServerClosed):
            f.result(timeout=1)

    def test_submit_after_close_raises(self):
        reg = make_registry()
        server = SpMVServer(reg, workers=1)
        server.close()
        with pytest.raises(ServerClosed):
            server.submit("A", np.ones(60))
        with pytest.raises(ServerClosed):
            server.start()

    def test_context_manager_closes(self):
        reg = make_registry()
        with SpMVServer(reg, workers=1) as server:
            assert server.spmv("A", np.ones(60), timeout=10).shape == (60,)
        with pytest.raises(ServerClosed):
            server.submit("A", np.ones(60))

    def test_concurrent_clients_all_correct(self):
        """6 threads x 10 requests across 2 workers, all bitwise-correct."""
        csr = make_csr(n=70, seed=21)
        reg = MatrixRegistry()
        reg.register("A", matrix=csr, variant=VARIANT)
        serial = bind(csr, tune=False, variant=VARIANT)
        errors = []

        with SpMVServer(reg, max_batch=8, max_delay_ms=2.0, workers=2) as server:

            def hammer(seed):
                rng = np.random.default_rng(seed)
                for _ in range(10):
                    x = rng.standard_normal(70)
                    y = server.spmv("A", x, timeout=30)
                    if not np.array_equal(y, serial.spmv(x)):
                        errors.append(seed)

            threads = [
                threading.Thread(target=hammer, args=(s,), daemon=True)
                for s in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        assert not errors
        s = server.stats()
        assert s["requests"]["ok"] == 60
        assert s["batches"] <= 60  # at least some coalescing headroom


# ---------------------------------------------------------------------------
# client (solve / eigsh)
# ---------------------------------------------------------------------------
class TestClient:
    @pytest.fixture()
    def client(self):
        reg = MatrixRegistry(tune=False)
        reg.register("poisson", matrix=convert(poisson2d(7), "CRS"))
        server = SpMVServer(reg, max_delay_ms=1.0, workers=1)
        yield Client(server)
        server.close()

    def test_spmv_roundtrip(self, client):
        y = client.spmv("poisson", np.ones(49))
        np.testing.assert_allclose(y, poisson2d(7).spmv(np.ones(49)))

    def test_spmv_async(self, client):
        f = client.spmv_async("poisson", np.ones(49))
        assert f.result(timeout=10).shape == (49,)

    def test_solve_cg(self, client):
        rng = np.random.default_rng(5)
        b = rng.standard_normal(49)
        res = client.solve("poisson", b, tol=1e-10)
        assert res["converged"]
        dense = poisson2d(7).todense()
        np.testing.assert_allclose(res["x"], np.linalg.solve(dense, b), atol=1e-6)
        assert res["iterations"] > 0 and res["seconds"] >= 0

    def test_solve_unknown_method(self, client):
        with pytest.raises(ValueError, match="unknown solve method"):
            client.solve("poisson", np.ones(49), method="qr")

    def test_eigsh_smallest(self, client):
        res = client.eigsh("poisson", num_eigenvalues=2, tol=1e-8)
        dense = poisson2d(7).todense()
        expect = np.sort(np.linalg.eigvalsh(dense))[:2]
        np.testing.assert_allclose(res["eigenvalues"], expect, atol=1e-6)

    def test_health_and_stats(self, client):
        h = client.health()
        assert h["status"] == "ok"
        assert "poisson" in h["resident"] or h["resident"] == []
        assert client.stats()["policy"] == "block"

    def test_solve_pins_matrix_against_eviction(self):
        reg = MatrixRegistry(tune=False)
        reg.register("poisson", matrix=convert(poisson2d(7), "CRS"))
        server = SpMVServer(reg, workers=1)
        client = Client(server)
        res = client.solve("poisson", np.ones(49))
        assert res["spmv_count"] > 0
        # the lease was released: registry sees no dangling refcount
        assert reg.stats()["resident"][0]["refcount"] == 0
        server.close()


# ---------------------------------------------------------------------------
# HTTP front-end
# ---------------------------------------------------------------------------
class TestHTTP:
    @pytest.fixture()
    def endpoint(self):
        reg = MatrixRegistry(tune=False)
        reg.register("A", matrix=make_csr(), variant=VARIANT)
        reg.register("poisson", matrix=convert(poisson2d(6), "CRS"))
        server = SpMVServer(reg, max_delay_ms=1.0, workers=1)
        httpd = make_http_server(Client(server), port=0)
        t = threading.Thread(target=httpd.serve_forever, daemon=True)
        t.start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        yield base
        httpd.shutdown()
        server.close()

    @staticmethod
    def _post(base, path, payload):
        req = urllib.request.Request(
            base + path,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())

    @staticmethod
    def _get(base, path):
        with urllib.request.urlopen(base + path, timeout=30) as resp:
            return resp.status, resp.read()

    def test_spmv_roundtrip(self, endpoint):
        csr = make_csr()
        x = np.arange(60, dtype=np.float64)
        status, body = self._post(endpoint, "/v1/spmv", {"matrix": "A", "x": x.tolist()})
        assert status == 200
        assert body["matrix"] == "A" and body["n"] == 60
        serial = bind(csr, tune=False, variant=VARIANT)
        np.testing.assert_array_equal(np.asarray(body["y"]), serial.spmv(x))

    def test_unknown_matrix_is_404(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as exc:
            self._post(endpoint, "/v1/spmv", {"matrix": "Z", "x": [1.0]})
        assert exc.value.code == 404
        body = json.loads(exc.value.read())
        assert body["type"] == "MatrixNotFound"

    def test_bad_request_is_400(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as exc:
            self._post(endpoint, "/v1/spmv", {"matrix": "A"})  # no x
        assert exc.value.code == 400

    def test_solve_cg(self, endpoint):
        status, body = self._post(
            endpoint,
            "/v1/solve",
            {"matrix": "poisson", "b": [1.0] * 36, "tol": 1e-10},
        )
        assert status == 200
        assert body["converged"] and body["method"] == "cg"
        dense = poisson2d(6).todense()
        np.testing.assert_allclose(
            np.asarray(body["x"]), np.linalg.solve(dense, np.ones(36)), atol=1e-6
        )

    def test_solve_lanczos(self, endpoint):
        status, body = self._post(
            endpoint,
            "/v1/solve",
            {"matrix": "poisson", "method": "lanczos", "num_eigenvalues": 1},
        )
        assert status == 200
        smallest = np.sort(np.linalg.eigvalsh(poisson2d(6).todense()))[0]
        np.testing.assert_allclose(body["eigenvalues"][0], smallest, atol=1e-6)

    def test_healthz(self, endpoint):
        status, raw = self._get(endpoint, "/healthz")
        body = json.loads(raw)
        assert status == 200 and body["status"] == "ok"
        assert body["uptime_s"] >= 0

    def test_statz(self, endpoint):
        self._post(endpoint, "/v1/spmv", {"matrix": "A", "x": [0.0] * 60})
        status, raw = self._get(endpoint, "/statz")
        body = json.loads(raw)
        assert status == 200
        assert body["requests"]["ok"] >= 1
        assert "A" in body["registry"]["registered"]

    def test_statz_prometheus(self, endpoint):
        obs.enable()
        self._post(endpoint, "/v1/spmv", {"matrix": "A", "x": [0.0] * 60})
        status, raw = self._get(endpoint, "/statz?format=prometheus")
        text = raw.decode()
        assert status == 200
        assert "serve_requests_total" in text
        assert 'quantile="0.5"' in text  # the Summary exposition

    def test_unknown_endpoint_404(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as exc:
            self._get(endpoint, "/v2/nothing")
        assert exc.value.code == 404


# ---------------------------------------------------------------------------
# obs integration
# ---------------------------------------------------------------------------
class TestObsIntegration:
    def test_metrics_and_span_parenting(self):
        obs.enable()
        reg = make_registry()
        server = SpMVServer(
            reg, max_batch=4, max_delay_ms=50.0, workers=1, autostart=False
        )
        futures = [server.submit("A", x) for x in vectors(60, 4)]
        server.start()
        for f in futures:
            f.result(timeout=10)
        server.close()

        reg_metrics = obs.get_registry()
        ok = reg_metrics.get("serve_requests_total").labels(matrix="A", status="ok")
        assert ok.value == 4
        assert reg_metrics.get("serve_batches_total").labels(matrix="A").value == 1
        assert reg_metrics.get("serve_queue_depth").labels().value == 0

        from repro.obs.spans import get_tracer

        tracer = get_tracer()
        batches = [s for s in tracer.finished() if s.name == "serve.batch"]
        requests = [s for s in tracer.finished() if s.name == "serve.request"]
        assert len(batches) == 1 and len(requests) == 4
        # one batch span *linking* the 4 request spans, each request
        # span in its own trace (bare submits mint one trace each)
        batch = batches[0]
        linked = {sid for _, sid in batch.links}
        traces = set()
        for s in requests:
            assert s.span_id in linked  # the batch links back to it
            assert s.trace_id
            traces.add(s.trace_id)
            assert s.start <= s.end
            assert s.attrs["matrix"] == "A"
        assert len(traces) == 4
        assert {t for t, _ in batch.links} == traces
        # each request's causal tree reaches the shared batch + kernel
        for s in requests:
            tree = obs.render_trace(s.trace_id)
            assert "serve.batch" in tree and "engine.spmm" in tree

    def test_latency_summary_in_prometheus_text(self):
        obs.enable()
        reg = make_registry()
        with SpMVServer(reg, max_delay_ms=1.0, workers=1) as server:
            server.spmv("A", np.ones(60), timeout=10)
        text = obs.prometheus_text()
        assert "serve_request_seconds" in text
        assert "serve_request_seconds_count" in text
        assert 'quantile="0.99"' in text

    def test_server_stats_work_with_obs_disabled(self):
        reg = make_registry()
        with SpMVServer(reg, max_delay_ms=1.0, workers=1) as server:
            server.spmv("A", np.ones(60), timeout=10)
        s = server.stats()
        assert s["requests"]["ok"] == 1
        assert s["latency_ms"]["p95"] is not None
