"""Tests for the roofline helpers and the Chrome trace export."""

import json

import numpy as np
import pytest

from repro.gpu import C1060, C2070
from repro.perfmodel import (
    RooflinePoint,
    attainable_gflops,
    ridge_intensity,
    roofline_series,
    spmv_intensity,
)


class TestRoofline:
    def test_attainable_min(self):
        assert attainable_gflops(0.1, 1000.0, 100.0) == pytest.approx(10.0)
        assert attainable_gflops(100.0, 1000.0, 100.0) == pytest.approx(1000.0)

    def test_ridge(self):
        assert ridge_intensity(1000.0, 100.0) == pytest.approx(10.0)

    def test_spmv_far_left_of_ridge(self):
        """Eq. (1) balances put spMVM deep in the memory-bound region."""
        dev = C2070(ecc=True)
        ridge = ridge_intensity(dev.peak_gflops("DP"), dev.bandwidth_gbs)
        for balance in (6.0, 10.0, 20.0):
            assert spmv_intensity(balance) < ridge / 10

    def test_point_classification(self):
        dev = C2070(ecc=True)
        p = RooflinePoint(
            "spMVM",
            spmv_intensity(7.0),
            attainable_gflops(
                spmv_intensity(7.0), dev.peak_gflops("DP"), dev.bandwidth_gbs
            ),
            dev.peak_gflops("DP"),
            dev.bandwidth_gbs,
        )
        assert p.memory_bound
        assert p.peak_fraction < 0.1

    def test_table1_attainable_matches_bandwidth_model(self):
        """On the roofline, spMVM attains BW / B — Eq. (1)'s prediction."""
        dev = C2070(ecc=True)
        for balance in (7.0, 9.0, 12.0):
            att = attainable_gflops(
                spmv_intensity(balance), dev.peak_gflops("DP"), dev.bandwidth_gbs
            )
            assert att == pytest.approx(dev.bandwidth_gbs / balance)

    def test_series_monotone_then_flat(self):
        x, y = roofline_series(C2070(ecc=False), "SP")
        assert np.all(np.diff(y) >= -1e-9)
        assert y[-1] == pytest.approx(C2070().peak_gflops("SP"))

    def test_c1060_lower_roof(self):
        _, y_fermi = roofline_series(C2070(ecc=False), "DP")
        _, y_gt200 = roofline_series(C1060(), "DP")
        assert y_gt200[-1] < y_fermi[-1]

    def test_validation(self):
        with pytest.raises(ValueError):
            attainable_gflops(-1.0, 10.0, 10.0)
        with pytest.raises(ValueError):
            ridge_intensity(0.0, 10.0)
        with pytest.raises(ValueError):
            spmv_intensity(0.0)


class TestChromeTrace:
    def test_export_structure(self):
        from repro.distributed import Timeline, to_chrome_trace

        tl = Timeline()
        tl.add(0, "gpu", "local spMVM", 0.0, 1e-4)
        tl.add(1, "nic", "MPI", 2e-5, 5e-5)
        events = to_chrome_trace(tl)
        assert len(events) == 2
        ev = events[0]
        assert ev["ph"] == "X"
        assert ev["name"] == "local spMVM"
        assert ev["pid"] == 0
        assert ev["dur"] == pytest.approx(100.0)  # microseconds
        # must be JSON-serialisable
        json.dumps({"traceEvents": events})

    def test_full_mode_timeline_exports(self):
        from repro.distributed import (
            DIRAC_IB,
            NodeStats,
            simulate_mode,
            to_chrome_trace,
        )
        from repro.gpu import C2050

        s = NodeStats(
            rank=0, rows=1000, nnz_local=10_000, nnz_nonlocal=1000,
            send_elements=100, halo_elements=100,
            send_bytes={1: 800}, recv_bytes={1: 800},
        )
        res = simulate_mode("task", [s], C2050(), DIRAC_IB)
        events = to_chrome_trace(res.timeline)
        assert len(events) == len(res.timeline.intervals)
        json.dumps(events)
