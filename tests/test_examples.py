"""Smoke tests: every shipped example runs to completion.

Examples are part of the public contract (deliverable b); each one
ends with its own assertions, so a zero exit code means the walkthrough
verified itself.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST = [
    "quickstart.py",
    "format_tour.py",
    "performance_model.py",
    "custom_format.py",
]
SLOW = [
    "eigensolver_hmep.py",
    "multi_gpu_scaling.py",
    "spectral_density.py",
]


def _run(name: str, timeout: int) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize("name", FAST)
def test_fast_example(name):
    proc = _run(name, timeout=180)
    assert proc.returncode == 0, proc.stderr[-2000:]


@pytest.mark.parametrize("name", SLOW)
def test_slow_example(name):
    proc = _run(name, timeout=600)
    assert proc.returncode == 0, proc.stderr[-2000:]


def test_all_examples_enumerated():
    """No example file exists without a smoke test."""
    shipped = {p.name for p in EXAMPLES.glob("*.py")}
    assert shipped == set(FAST) | set(SLOW)
