"""Tests for the reference (paper listing) and vectorised kernels."""

import numpy as np
import pytest

from repro.formats import convert
from repro.kernels import (
    csr_spmv_reference,
    ellpack_r_spmv_reference,
    ellpack_spmv_reference,
    make_spmv_operator,
    pjds_spmv_reference,
    power_apply,
    spmv,
)

from _test_common import random_coo


@pytest.fixture(scope="module")
def coo():
    return random_coo(40, seed=81)


@pytest.fixture(scope="module")
def x(coo):
    return np.random.default_rng(0).normal(size=coo.ncols)


class TestListingTranscriptions:
    def test_listing1_ellpack_r(self, coo, x):
        """Listing 1 agrees with the vectorised ELLPACK-R kernel."""
        m = convert(coo, "ELLPACK-R", row_pad=1)
        ref = ellpack_r_spmv_reference(
            m.val.ravel(), m.col.ravel(), m.rowmax, coo.nrows, m.width, x
        )
        assert np.allclose(ref, coo.spmv(x))

    def test_listing1_with_row_padding(self, coo, x):
        m = convert(coo, "ELLPACK-R", row_pad=32)
        ref = ellpack_r_spmv_reference(
            m.val.ravel(), m.col.ravel(), m.rowmax, coo.nrows, m.width, x
        )
        assert np.allclose(ref, coo.spmv(x))

    def test_plain_ellpack_computes_padding_safely(self, coo, x):
        """The plain kernel streams the zero fill; result is unchanged."""
        m = convert(coo, "ELLPACK", row_pad=1)
        ref = ellpack_spmv_reference(
            m.val.ravel(), m.col.ravel(), coo.nrows, m.width, x
        )
        assert np.allclose(ref, coo.spmv(x))

    def test_listing2_pjds(self, coo, x):
        """Listing 2 agrees with the vectorised pJDS kernel (stored order)."""
        p = convert(coo, "pJDS", block_rows=8)
        acc = pjds_spmv_reference(
            p.val, p.col_idx, p.col_start, p.rowmax, coo.nrows, x
        )
        y = np.empty(coo.nrows)
        y[p.permutation.perm] = acc
        assert np.allclose(y, coo.spmv(x))

    def test_listing2_jds(self, coo, x):
        j = convert(coo, "JDS")
        acc = pjds_spmv_reference(
            j.val, j.col_idx, j.col_start, j.rowmax, coo.nrows, x
        )
        y = np.empty(coo.nrows)
        y[j.permutation.perm] = acc
        assert np.allclose(y, coo.spmv(x))

    def test_csr_reference(self, coo, x):
        m = convert(coo, "CRS")
        ref = csr_spmv_reference(m.indptr, m.indices, m.data, x)
        assert np.allclose(ref, coo.spmv(x))


class TestDispatch:
    def test_spmv_helper(self, coo, x):
        m = convert(coo, "CRS")
        assert np.allclose(spmv(m, x), m.spmv(x))

    def test_operator_plain(self, coo, x):
        p = convert(coo, "pJDS", block_rows=8)
        op = make_spmv_operator(p)
        assert np.allclose(op(x), coo.spmv(x))

    def test_operator_permuted(self, coo, x):
        p = convert(coo, "pJDS", block_rows=8)
        op = make_spmv_operator(p, permuted=True)
        xp = p.permutation.to_permuted(x)
        assert np.allclose(p.permutation.to_original(op(xp)), coo.spmv(x))

    def test_operator_permuted_unsupported(self, coo):
        m = convert(coo, "CRS")
        with pytest.raises(TypeError, match="permuted"):
            make_spmv_operator(m, permuted=True)

    def test_power_apply(self, coo, x):
        m = convert(coo, "CRS")
        y = power_apply(m, x, 3)
        assert np.allclose(y, m.spmv(m.spmv(m.spmv(x))))

    def test_power_apply_one(self, coo, x):
        m = convert(coo, "CRS")
        assert np.allclose(power_apply(m, x, 1), m.spmv(x))

    def test_power_apply_bad_reps(self, coo, x):
        m = convert(coo, "CRS")
        with pytest.raises(ValueError):
            power_apply(m, x, 0)
