"""Tests for the kernel execution model (bytes, time, GF/s)."""

import numpy as np
import pytest

from repro.formats import convert
from repro.gpu import C2070, extract_trace, run_kernel, simulate_spmv
from repro.perfmodel import code_balance_dp

from _test_common import GPU_FORMATS, random_coo


@pytest.fixture(scope="module")
def coo():
    return random_coo(256, seed=121, max_row=24)


@pytest.fixture(scope="module")
def device():
    return C2070(ecc=True)


class TestReports:
    @pytest.mark.parametrize("fmt", GPU_FORMATS)
    def test_report_consistency(self, coo, device, fmt):
        rep = simulate_spmv(convert(coo, fmt), device, "DP")
        assert rep.nnz == coo.nnz
        assert rep.flops == 2 * coo.nnz
        assert rep.total_bytes == (
            rep.val_bytes + rep.idx_bytes + rep.rhs_bytes + rep.lhs_bytes + rep.aux_bytes
        )
        assert rep.kernel_seconds > 0
        assert rep.gflops > 0

    def test_kernel_time_is_max_plus_launch(self, coo, device):
        rep = simulate_spmv(convert(coo, "pJDS"), device, "DP")
        expected = max(rep.memory_seconds, rep.issue_seconds) + device.launch_latency_s
        assert rep.kernel_seconds == pytest.approx(expected)

    def test_memory_bound_regime(self, coo, device):
        """spMVM on Fermi is bandwidth-bound (the paper's premise)."""
        rep = simulate_spmv(convert(coo, "pJDS"), device, "DP")
        assert rep.memory_bound

    def test_gflops_below_peak(self, coo, device):
        for fmt in GPU_FORMATS:
            rep = simulate_spmv(convert(coo, fmt), device, "DP")
            assert rep.gflops < device.peak_gflops("DP"), fmt

    def test_row_dict(self, coo, device):
        rep = simulate_spmv(convert(coo, "pJDS"), device, "SP")
        row = rep.row()
        assert row["format"] == "pJDS"
        assert row["precision"] == "SP"
        assert row["gflops"] == pytest.approx(rep.gflops)


class TestPhysicalOrderings:
    def test_ecc_slower_than_no_ecc(self, coo):
        p = convert(coo, "pJDS")
        on = simulate_spmv(p, C2070(ecc=True), "DP")
        off = simulate_spmv(p, C2070(ecc=False), "DP")
        assert off.gflops > on.gflops
        # bandwidth-bound: pure memory time tracks the bandwidth ratio
        # (kernel launch latency dilutes the GF/s ratio on tiny matrices)
        assert off.memory_seconds > 0
        assert on.memory_seconds / off.memory_seconds == pytest.approx(
            120 / 91, rel=0.02
        )

    def test_sp_faster_than_dp(self, coo, device):
        p = convert(coo, "pJDS")
        sp = simulate_spmv(p, device, "SP")
        dp = simulate_spmv(p, device, "DP")
        assert sp.gflops > dp.gflops

    def test_ellpack_r_never_slower_than_plain(self, coo, device):
        """Skipping the zero fill can only reduce traffic (Fig. 2a vs 2b)."""
        e = simulate_spmv(convert(coo, "ELLPACK"), device, "DP")
        er = simulate_spmv(convert(coo, "ELLPACK-R"), device, "DP")
        assert er.total_bytes <= e.total_bytes
        assert er.gflops >= e.gflops * 0.999

    def test_pjds_moves_fewer_matrix_bytes(self, coo, device):
        """Sorting compacts warps: val+idx traffic below ELLPACK-R's."""
        er = simulate_spmv(convert(coo, "ELLPACK-R"), device, "DP")
        pj = simulate_spmv(convert(coo, "pJDS"), device, "DP")
        assert pj.val_bytes + pj.idx_bytes <= er.val_bytes + er.idx_bytes

    def test_code_balance_in_model_range(self, coo, device):
        """Measured balance within the Eq. (1) envelope (alpha in [0, 16])."""
        rep = simulate_spmv(convert(coo, "pJDS"), device, "DP")
        nnzr = coo.nnz / coo.nrows
        lower = code_balance_dp(0.0, nnzr) * 0.9
        upper = code_balance_dp(16.0, nnzr) * 1.5
        assert lower <= rep.code_balance <= upper

    def test_effective_alpha_at_least_compulsory(self, coo, device):
        rep = simulate_spmv(convert(coo, "pJDS"), device, "DP")
        compulsory = coo.ncols * 8 / (8 * coo.nnz)  # each element once
        assert rep.effective_alpha >= compulsory * 0.5

    def test_cache_window_override(self, coo, device):
        p = convert(coo, "pJDS")
        cold = simulate_spmv(p, device, "DP", cache_window=0)
        warm = simulate_spmv(p, device, "DP", cache_window=10**9)
        assert cold.rhs_bytes >= warm.rhs_bytes
        assert cold.gflops <= warm.gflops

    def test_run_kernel_on_trace(self, coo, device):
        tr = extract_trace(convert(coo, "pJDS"), device, "DP")
        rep = run_kernel(tr, device)
        rep2 = simulate_spmv(convert(coo, "pJDS"), device, "DP")
        assert rep.gflops == pytest.approx(rep2.gflops)


class TestFabricLimit:
    def test_coalesced_formats_not_fabric_bound(self, coo, device):
        for fmt in ("ELLPACK", "ELLPACK-R", "pJDS"):
            rep = simulate_spmv(convert(coo, fmt), device, "DP")
            assert not rep.fabric_bound, fmt

    def test_scalar_csr_issues_more_transactions(self, coo, device):
        crs = simulate_spmv(convert(coo, "CRS"), device, "DP")
        pj = simulate_spmv(convert(coo, "pJDS"), device, "DP")
        assert crs.transactions > pj.transactions

    def test_fabric_seconds_reported(self, coo, device):
        rep = simulate_spmv(convert(coo, "pJDS"), device, "DP")
        assert rep.fabric_seconds > 0
        assert rep.kernel_seconds >= max(
            rep.memory_seconds, rep.fabric_seconds, rep.issue_seconds
        )

    def test_c1060_charges_transactions_to_dram(self, coo):
        from repro.gpu import C1060

        rep = simulate_spmv(convert(coo, "pJDS"), C1060(), "DP")
        # with no L2, fabric time is at least the DRAM stream time
        assert rep.fabric_seconds >= rep.memory_seconds


class TestDenseRowBoundary:
    def test_constant_row_matrix_formats_agree(self, device):
        """With equal row lengths the formats move identical val bytes."""
        n = 128
        rows = np.repeat(np.arange(n), 4)
        cols = (rows * 7 + np.tile(np.arange(4), n) * 13) % n
        from repro.formats import COOMatrix

        coo = COOMatrix(rows, cols, np.ones(4 * n), (n, n), sum_duplicates=False)
        e = simulate_spmv(convert(coo, "ELLPACK", row_pad=32), device, "DP")
        p = simulate_spmv(convert(coo, "pJDS"), device, "DP")
        assert e.val_bytes == p.val_bytes
