"""Serve-layer observability: HTTP trace propagation, /sloz, degraded mode.

Exercises the request-scoped tracing contract at the serving boundary
(X-Trace-Id honored and echoed, ``trace_id`` stamped into every JSON
payload including errors, front-end → request → linked batch tree),
the SLO monitor's HTTP surface (``/sloz`` and the ``slo`` section of
``/statz``), and the degraded-mode instrumentation satellite (counter,
``degraded`` label on the latency summary, span attribution).
"""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import obs
from repro.faults import FaultPlan
from repro.faults.plan import FaultEvent
from repro.formats import CSRMatrix
from repro.obs.slo import SLOMonitor, default_serve_slos
from repro.serve import Client, MatrixRegistry, SpMVServer, make_http_server

from _test_common import random_coo

VARIANT = "csr_scipy"


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset_all()
    yield
    obs.disable()
    obs.reset_all()


def make_csr(n=60, seed=3, max_row=7):
    return CSRMatrix.from_coo(random_coo(n, seed=seed, max_row=max_row))


def _post(base, path, payload, headers=None):
    req = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, dict(resp.headers), json.loads(resp.read())


def _get_json(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


@pytest.fixture()
def traced_endpoint():
    """HTTP endpoint with obs enabled and an (unticked) SLO monitor."""
    obs.enable()
    reg = MatrixRegistry(tune=False)
    reg.register("A", matrix=make_csr(), variant=VARIANT)
    server = SpMVServer(reg, max_delay_ms=1.0, workers=1)
    mon = SLOMonitor(default_serve_slos())
    httpd = make_http_server(Client(server), port=0, slo=mon)
    t = threading.Thread(target=httpd.serve_forever, daemon=True)
    t.start()
    base = f"http://127.0.0.1:{httpd.server_address[1]}"
    yield base
    httpd.shutdown()
    server.close()


@pytest.fixture()
def bare_endpoint():
    """No SLO monitor attached, obs off — the pre-tracing behavior."""
    reg = MatrixRegistry(tune=False)
    reg.register("A", matrix=make_csr(), variant=VARIANT)
    server = SpMVServer(reg, max_delay_ms=1.0, workers=1)
    httpd = make_http_server(Client(server), port=0)
    t = threading.Thread(target=httpd.serve_forever, daemon=True)
    t.start()
    base = f"http://127.0.0.1:{httpd.server_address[1]}"
    yield base
    httpd.shutdown()
    server.close()


class TestHTTPTracing:
    def test_response_carries_trace_id(self, traced_endpoint):
        status, headers, body = _post(
            traced_endpoint, "/v1/spmv", {"matrix": "A", "x": [1.0] * 60}
        )
        assert status == 200
        tid = body["trace_id"]
        assert len(tid) == 16 and int(tid, 16) >= 0
        assert headers["X-Trace-Id"] == tid

    def test_incoming_trace_id_is_honored(self, traced_endpoint):
        given = "beef" * 4
        _, headers, body = _post(
            traced_endpoint,
            "/v1/spmv",
            {"matrix": "A", "x": [1.0] * 60},
            headers={"X-Trace-Id": given},
        )
        assert body["trace_id"] == given
        assert headers["X-Trace-Id"] == given
        names = {
            s.name for s in obs.get_tracer().finished()
            if s.trace_id == given
        }
        assert "http.spmv" in names and "serve.request" in names

    def test_error_payload_carries_trace_id(self, traced_endpoint):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _post(traced_endpoint, "/v1/spmv", {"matrix": "Z", "x": [1.0]})
        assert exc.value.code == 404
        body = json.loads(exc.value.read())
        assert body["type"] == "MatrixNotFound"
        assert len(body["trace_id"]) == 16
        assert exc.value.headers["X-Trace-Id"] == body["trace_id"]

    def test_trace_tree_front_end_to_batch(self, traced_endpoint):
        _, _, body = _post(
            traced_endpoint, "/v1/spmv", {"matrix": "A", "x": [1.0] * 60}
        )
        tid = body["trace_id"]
        roots = obs.build_trace(tid)
        assert len(roots) == 1 and roots[0].span.name == "http.spmv"
        text = obs.render_trace(tid)
        # request parents under the front-end; the executing batch span
        # lives in its own trace and is grafted in via link (~ marker)
        assert "serve.request" in text
        assert "serve.batch" in text and "~" in text


class TestSLOEndpoint:
    def test_sloz_reports_monitor_state(self, traced_endpoint):
        status, body = _get_json(traced_endpoint, "/sloz")
        assert status == 200
        assert {s["name"] for s in body["slos"]} == {
            "latency-p99", "error-rate", "queue-depth",
        }
        assert body["firing"] == []

    def test_statz_gains_slo_section(self, traced_endpoint):
        status, body = _get_json(traced_endpoint, "/statz")
        assert status == 200
        assert "slo" in body and "slos" in body["slo"]

    def test_sloz_404_without_monitor(self, bare_endpoint):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get_json(bare_endpoint, "/sloz")
        assert exc.value.code == 404
        body = json.loads(exc.value.read())
        assert "--slo" in body["error"]
        status, statz = _get_json(bare_endpoint, "/statz")
        assert status == 200 and "slo" not in statz


class TestDegradedInstrumentation:
    def test_degraded_requests_are_counted_and_labeled(self):
        obs.enable()
        inj = FaultPlan(
            (FaultEvent("worker_crash", 0.1, layer="serve",
                        target={"worker": 0}),)
        ).injector()
        reg = MatrixRegistry(tune=False)
        reg.register("A", matrix=make_csr(), variant=VARIANT)
        server = SpMVServer(
            reg, max_delay_ms=1.0, workers=1, faults=inj,
        )
        try:
            # first request takes the crash; retry until the fallback
            # loop owns the queue
            deadline = time.monotonic() + 10.0
            while not server.degraded and time.monotonic() < deadline:
                try:
                    server.spmv("A", np.ones(60), timeout=10)
                except Exception:
                    pass
            assert server.degraded
            with obs.trace_root("test.request") as root:
                y = server.spmv("A", np.ones(60), timeout=10)
            assert y.shape == (60,)

            stats = server.stats()
            assert stats["degraded"] is True
            assert stats["degraded_requests"] >= 1
            assert stats["per_matrix"]["A"]["degraded"] >= 1
            assert stats["latency_degraded_ms"]["count"] >= 1

            text = obs.prometheus_text()
            assert "serve_degraded_entries_total 1" in text
            assert 'serve_degraded_requests_total{matrix="A"}' in text
            # latency summary carries the degraded label on both paths
            assert 'degraded="true",matrix="A"' in text

            spans = obs.get_tracer().finished()
            dspans = [
                s for s in spans
                if s.name == "serve.degraded"
                and s.trace_id == root.trace_id
            ]
            assert dspans, "degraded execution span missing from the trace"
            reqs = [
                s for s in spans
                if s.name == "serve.request"
                and s.trace_id == root.trace_id
            ]
            assert reqs and reqs[0].attrs.get("degraded") is True
        finally:
            server.close()


class TestSLOAgainstLiveServer:
    def test_monitor_sees_served_traffic(self):
        obs.enable()
        reg = MatrixRegistry(tune=False)
        reg.register("A", matrix=make_csr(), variant=VARIANT)
        server = SpMVServer(reg, max_delay_ms=1.0, workers=1)
        t = [0.0]
        mon = SLOMonitor(default_serve_slos(), clock=lambda: t[0])
        try:
            for _ in range(8):
                server.spmv("A", np.ones(60), timeout=10)
            mon.tick()
            t[0] += 1.0
            state = mon.tick()
            lat = [s for s in state["slos"] if s["kind"] == "latency_p99"][0]
            assert lat["value"] is not None and lat["value"] > 0
            assert state["firing"] == []  # healthy traffic
        finally:
            server.close()
