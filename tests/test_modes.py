"""Tests for the execution-mode simulator (vector / naive / task)."""

import pytest

from repro.distributed import (
    DIRAC_IB,
    KernelCost,
    NetworkModel,
    NodeStats,
    build_plan,
    partition_rows,
    simulate_mode,
    stats_from_plan,
)
from repro.formats import CSRMatrix
from repro.gpu import C2050

from _test_common import random_coo


@pytest.fixture(scope="module")
def stats():
    csr = CSRMatrix.from_coo(random_coo(200, seed=171, max_row=14))
    part = partition_rows(csr.nrows, 4, row_weights=csr.row_lengths())
    plan = build_plan(csr, part, with_matrices=False)
    # inflate the workload so kernels are long enough to overlap MPI
    return stats_from_plan(plan, itemsize=8, workload_scale=64)


@pytest.fixture(scope="module")
def device():
    return C2050(ecc=True)


class TestNetworkModel:
    def test_message_seconds(self):
        net = NetworkModel(latency_s=1e-6, bandwidth_gbs=1.0)
        assert net.message_seconds(1_000_000) == pytest.approx(1e-6 + 1e-3)
        assert net.message_seconds(0) == 0.0

    def test_exchange_serialises(self):
        net = NetworkModel(latency_s=1e-6, bandwidth_gbs=1.0)
        msgs = {0: 1000, 1: 2000}
        assert net.exchange_seconds(msgs) == pytest.approx(
            net.message_seconds(1000) + net.message_seconds(2000)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(latency_s=-1.0)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_gbs=0.0)
        with pytest.raises(ValueError):
            DIRAC_IB.message_seconds(-5)


class TestKernelCost:
    def test_from_alpha_dp(self):
        c = KernelCost.from_alpha(0.5, "DP")
        assert c.bytes_per_nnz == pytest.approx(16.0)
        assert c.itemsize == 8

    def test_from_alpha_sp(self):
        c = KernelCost.from_alpha(1.0, "SP")
        assert c.bytes_per_nnz == pytest.approx(12.0)
        assert c.itemsize == 4

    def test_bad_precision(self):
        with pytest.raises(ValueError):
            KernelCost.from_alpha(0.5, "HP")

    def test_kernel_seconds_linear(self, device):
        c = KernelCost()
        t1 = c.kernel_seconds(1000, 100, device)
        t2 = c.kernel_seconds(2000, 200, device)
        launch = device.launch_latency_s
        assert (t2 - launch) == pytest.approx(2 * (t1 - launch))

    def test_gather_free_when_empty(self, device):
        assert KernelCost().gather_seconds(0, device) == 0.0


class TestNodeStats:
    def test_from_plan_scaling(self):
        csr = CSRMatrix.from_coo(random_coo(60, seed=172))
        plan = build_plan(csr, partition_rows(60, 3), with_matrices=False)
        s1 = NodeStats.from_plan(plan.ranks[0], 8, workload_scale=1)
        s4 = NodeStats.from_plan(plan.ranks[0], 8, workload_scale=4)
        assert s4.rows == 4 * s1.rows
        assert s4.nnz == 4 * s1.nnz
        assert s4.halo_elements == 4 * s1.halo_elements
        for dst in s1.send_bytes:
            assert s4.send_bytes[dst] == 4 * s1.send_bytes[dst]


class TestModes:
    @pytest.mark.parametrize("mode", ["vector", "naive", "task"])
    def test_result_consistency(self, stats, device, mode):
        res = simulate_mode(mode, stats, device, DIRAC_IB)
        assert res.mode == mode
        assert res.nparts == len(stats)
        assert res.iteration_seconds == max(res.per_rank_seconds)
        assert res.total_nnz == sum(s.nnz for s in stats)
        assert res.gflops > 0
        assert res.timeline.makespan <= res.iteration_seconds * 1.0001

    def test_task_never_slower_than_naive(self, stats, device):
        """True asynchronous progress can only help."""
        naive = simulate_mode("naive", stats, device, DIRAC_IB)
        task = simulate_mode("task", stats, device, DIRAC_IB)
        assert task.iteration_seconds <= naive.iteration_seconds * 1.0001

    def test_task_bounded_by_two_x(self, stats, device):
        """Overlap gains at most a factor of two (Sect. III-A)."""
        vector = simulate_mode("vector", stats, device, DIRAC_IB)
        task = simulate_mode("task", stats, device, DIRAC_IB)
        assert vector.iteration_seconds <= 2.05 * task.iteration_seconds

    def test_async_fraction_bounds(self, stats, device):
        with pytest.raises(ValueError):
            simulate_mode("naive", stats, device, DIRAC_IB, async_progress_fraction=1.5)

    def test_full_async_naive_equals_task_shape(self, stats, device):
        """With 100 % progress the naive mode approaches task mode."""
        naive = simulate_mode(
            "naive", stats, device, DIRAC_IB, async_progress_fraction=1.0
        )
        task = simulate_mode("task", stats, device, DIRAC_IB)
        assert naive.iteration_seconds <= task.iteration_seconds * 1.5

    def test_unknown_mode(self, stats, device):
        with pytest.raises(ValueError, match="mode"):
            simulate_mode("magic", stats, device, DIRAC_IB)

    def test_empty_stats(self, device):
        with pytest.raises(ValueError, match="stats"):
            simulate_mode("task", [], device, DIRAC_IB)

    def test_slowest_rank(self, stats, device):
        res = simulate_mode("task", stats, device, DIRAC_IB)
        r = res.slowest_rank
        assert res.per_rank_seconds[r] == res.iteration_seconds

    def test_single_rank_no_comm(self, device):
        s = NodeStats(
            rank=0,
            rows=1000,
            nnz_local=50_000,
            nnz_nonlocal=0,
            send_elements=0,
            halo_elements=0,
            send_bytes={},
            recv_bytes={},
        )
        for mode in ("vector", "naive", "task"):
            res = simulate_mode(mode, [s], device, DIRAC_IB)
            assert res.timeline.busy_seconds("nic") == 0.0 or mode != "task"

    def test_comm_dominated_modes_converge(self, device):
        """When communication dwarfs compute, the modes converge
        (the paper's strong-scaling limit)."""
        s = NodeStats(
            rank=0,
            rows=100,
            nnz_local=1000,
            nnz_nonlocal=1000,
            send_elements=500_000,
            halo_elements=500_000,
            send_bytes={1: 4_000_000},
            recv_bytes={1: 4_000_000},
        )
        times = {
            m: simulate_mode(m, [s], device, DIRAC_IB).iteration_seconds
            for m in ("vector", "naive", "task")
        }
        assert times["task"] <= times["naive"] <= times["vector"] * 1.1
        assert times["vector"] / times["task"] < 1.35


class TestTimelines:
    def test_task_mode_timeline_structure(self, device):
        """Fig. 4: local spMVM overlaps the MPI wait on thread 0."""
        # compute-heavy rank: the local kernel spans the whole exchange
        s = NodeStats(
            rank=0,
            rows=50_000,
            nnz_local=5_000_000,
            nnz_nonlocal=500_000,
            send_elements=20_000,
            halo_elements=20_000,
            send_bytes={1: 160_000},
            recv_bytes={1: 160_000},
        )
        res = simulate_mode("task", [s], device, DIRAC_IB)
        tl = res.timeline
        labels = {iv.label for iv in tl.for_rank(0)}
        assert {"local spMVM", "nonlocal spMVM", "MPI_Waitall"} <= labels
        local = next(iv for iv in tl.for_rank(0) if iv.label == "local spMVM")
        wait = next(iv for iv in tl.for_rank(0) if iv.label == "MPI_Waitall")
        # overlap: the two intervals intersect
        assert local.start < wait.end and wait.start < local.end
        # and the nonlocal kernel starts only after both complete
        nl = next(iv for iv in tl.for_rank(0) if iv.label == "nonlocal spMVM")
        assert nl.start >= max(local.end, wait.end) - 1e-12

    def test_vector_mode_is_sequential(self, stats, device):
        res = simulate_mode("vector", stats, device, DIRAC_IB)
        ivs = res.timeline.for_rank(0)
        mpi = next(iv for iv in ivs if iv.label == "MPI exchange")
        kern = next(iv for iv in ivs if iv.label == "spMVM")
        assert kern.start >= mpi.end - 1e-12

    def test_render_timeline(self, stats, device):
        from repro.distributed import render_timeline

        res = simulate_mode("task", stats, device, DIRAC_IB)
        art = render_timeline(res.timeline, rank=0)
        assert "gpu" in art
        assert "|" in art

    def test_render_empty(self):
        from repro.distributed import Timeline, render_timeline

        assert "no events" in render_timeline(Timeline(), rank=3)
