"""Tests for the Kernel Polynomial Method spectral-density solver."""

import numpy as np
import pytest

from repro.formats import COOMatrix, convert
from repro.matrices import poisson2d
from repro.solvers import jackson_kernel, kpm_spectral_density


@pytest.fixture(scope="module")
def spd():
    return poisson2d(16, 17)


@pytest.fixture(scope="module")
def kpm_result(spd):
    return kpm_spectral_density(
        convert(spd, "pJDS"), num_moments=96, num_vectors=12, seed=1
    )


class TestJacksonKernel:
    def test_starts_at_one(self):
        g = jackson_kernel(64)
        assert g[0] == pytest.approx(1.0)

    def test_decreasing_and_positive(self):
        g = jackson_kernel(64)
        assert np.all(np.diff(g) < 0)
        assert np.all(g > 0)

    def test_tail_small(self):
        g = jackson_kernel(128)
        assert g[-1] < 1e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            jackson_kernel(0)


class TestSpectralDensity:
    def test_density_normalised(self, kpm_result):
        w = np.trapezoid(kpm_result.density, kpm_result.energies)
        assert w == pytest.approx(1.0, abs=0.05)

    def test_bounds_bracket_true_spectrum(self, spd, kpm_result):
        true = np.linalg.eigvalsh(spd.todense())
        lo, hi = kpm_result.spectrum_bounds
        assert lo <= true.min() + 0.15
        assert hi >= true.max() - 0.15

    def test_mean_energy(self, spd, kpm_result):
        true_mean = np.linalg.eigvalsh(spd.todense()).mean()
        assert kpm_result.mean_energy() == pytest.approx(true_mean, abs=0.2)

    def test_density_nonnegative_mostly(self, kpm_result):
        """Jackson damping keeps the estimate essentially nonnegative."""
        assert kpm_result.density.min() > -0.01 * kpm_result.density.max()

    def test_mass_concentrated_on_support(self, spd, kpm_result):
        true = np.linalg.eigvalsh(spd.todense())
        inside = (kpm_result.energies >= true.min() - 0.5) & (
            kpm_result.energies <= true.max() + 0.5
        )
        w_in = np.trapezoid(kpm_result.density[inside], kpm_result.energies[inside])
        assert w_in > 0.9

    def test_explicit_bounds_skip_estimation(self, spd):
        res = kpm_spectral_density(
            convert(spd, "pJDS"),
            num_moments=32,
            num_vectors=2,
            bounds=(0.0, 8.0),
            seed=2,
        )
        # only the moment recursion's spMVMs are counted
        assert res.spmv_count == 2 * 31
        assert res.spectrum_bounds == (0.0, 8.0)

    def test_diagonal_matrix_peaks(self):
        """A two-level diagonal matrix yields two density peaks."""
        n = 200
        vals = np.where(np.arange(n) < n // 2, -2.0, 3.0)
        coo = COOMatrix(np.arange(n), np.arange(n), vals, (n, n))
        res = kpm_spectral_density(
            coo, num_moments=128, num_vectors=16, bounds=(-2.5, 3.5), seed=3
        )
        peak_lo = res.density[np.abs(res.energies + 2.0) < 0.3].max()
        peak_hi = res.density[np.abs(res.energies - 3.0) < 0.3].max()
        valley = res.density[np.abs(res.energies - 0.5) < 0.5].max()
        assert peak_lo > 5 * valley
        assert peak_hi > 5 * valley

    def test_invalid_bounds(self, spd):
        with pytest.raises(ValueError, match="bounds"):
            kpm_spectral_density(spd, bounds=(1.0, 1.0))

    def test_validation(self, spd):
        with pytest.raises(ValueError):
            kpm_spectral_density(spd, num_moments=0)
        with pytest.raises(ValueError):
            kpm_spectral_density(spd, num_vectors=0)

    def test_deterministic(self, spd):
        a = kpm_spectral_density(spd, num_moments=16, num_vectors=2, seed=5,
                                 bounds=(0.0, 8.0))
        b = kpm_spectral_density(spd, num_moments=16, num_vectors=2, seed=5,
                                 bounds=(0.0, 8.0))
        assert np.array_equal(a.density, b.density)


class TestSpmm:
    def test_matches_column_loop(self, spd):
        p = convert(spd, "pJDS")
        X = np.random.default_rng(0).normal(size=(spd.ncols, 4))
        Y = p.spmm(X)
        for j in range(4):
            assert np.allclose(Y[:, j], p.spmv(X[:, j].copy()))

    def test_out_parameter(self, spd):
        p = convert(spd, "CRS")
        X = np.ones((spd.ncols, 2))
        out = np.empty((spd.nrows, 2))
        Y = p.spmm(X, out=out)
        assert Y is out

    def test_shape_validation(self, spd):
        p = convert(spd, "CRS")
        with pytest.raises(ValueError, match="shape"):
            p.spmm(np.ones(spd.ncols))
        with pytest.raises(ValueError, match="shape"):
            p.spmm(np.ones((spd.ncols + 1, 2)))
        with pytest.raises(ValueError, match="out"):
            p.spmm(np.ones((spd.ncols, 2)), out=np.empty((1, 2)))
