"""Unit tests for ELLPACK and ELLPACK-R."""

import numpy as np
import pytest

from repro.formats import COOMatrix, ELLPACKMatrix, ELLPACKRMatrix

from _test_common import random_coo


@pytest.fixture(scope="module")
def coo() -> COOMatrix:
    return random_coo(45, seed=31)


class TestELLPACK:
    def test_spmv_matches_coo(self, coo):
        m = ELLPACKMatrix.from_coo(coo)
        x = np.random.default_rng(0).normal(size=coo.ncols)
        assert np.allclose(m.spmv(x), coo.spmv(x))

    def test_row_padding_to_warp(self, coo):
        m = ELLPACKMatrix.from_coo(coo, row_pad=32)
        assert m.padded_rows % 32 == 0
        assert m.padded_rows >= coo.nrows

    def test_row_pad_one(self, coo):
        m = ELLPACKMatrix.from_coo(coo, row_pad=1)
        assert m.padded_rows == coo.nrows

    def test_width_is_max_row_length(self, coo):
        m = ELLPACKMatrix.from_coo(coo)
        assert m.width == int(coo.row_lengths().max())

    def test_padding_entries_are_zero_and_col0(self, coo):
        m = ELLPACKMatrix.from_coo(coo, row_pad=1)
        lengths = coo.row_lengths()
        for i in (0, coo.nrows - 1):
            for j in range(int(lengths[i]), m.width):
                assert m.val[j, i] == 0.0
                assert m.col[j, i] == 0

    def test_column_major_contiguity(self, coo):
        m = ELLPACKMatrix.from_coo(coo)
        assert m.val.flags.c_contiguous
        # jagged column j is row j of the 2-D array => contiguous
        assert m.val[0].flags.c_contiguous

    def test_memory_footprint_is_rectangle(self, coo):
        m = ELLPACKMatrix.from_coo(coo)
        slots = m.padded_rows * m.width
        assert m.memory_breakdown()["val"] == slots * 8
        assert m.memory_breakdown()["col_idx"] == slots * 4
        assert m.stored_elements == slots

    def test_padding_overhead_positive_for_irregular(self, coo):
        m = ELLPACKMatrix.from_coo(coo)
        assert m.padding_overhead > 0.0

    def test_constant_rows_no_overhead(self):
        n = 16
        rows = np.repeat(np.arange(n), 3)
        cols = np.tile(np.array([0, 5, 9]), n)
        m = ELLPACKMatrix.from_coo(
            COOMatrix(rows, cols, np.ones(3 * n), (n, 16)), row_pad=1
        )
        assert m.padding_overhead == 0.0

    def test_roundtrip(self, coo):
        m = ELLPACKMatrix.from_coo(coo)
        assert np.allclose(m.to_coo().todense(), coo.todense())

    def test_unknown_kwarg_rejected(self, coo):
        with pytest.raises(TypeError, match="unexpected"):
            ELLPACKMatrix.from_coo(coo, sigma=2)

    def test_val_col_shape_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            ELLPACKMatrix(
                np.zeros((2, 4)), np.zeros((2, 5), np.int64), np.zeros(4, np.int64), (4, 4)
            )

    def test_row_lengths_match_source(self, coo):
        m = ELLPACKMatrix.from_coo(coo)
        assert np.array_equal(m.row_lengths(), coo.row_lengths())


class TestELLPACKR:
    def test_spmv_matches_coo(self, coo):
        m = ELLPACKRMatrix.from_coo(coo)
        x = np.random.default_rng(1).normal(size=coo.ncols)
        assert np.allclose(m.spmv(x), coo.spmv(x))

    def test_rowmax_matches_lengths(self, coo):
        m = ELLPACKRMatrix.from_coo(coo, row_pad=32)
        lengths = coo.row_lengths()
        assert np.array_equal(m.rowmax[: coo.nrows], lengths)
        assert np.all(m.rowmax[coo.nrows :] == 0)

    def test_storage_same_as_ellpack_plus_rowmax(self, coo):
        e = ELLPACKMatrix.from_coo(coo)
        r = ELLPACKRMatrix.from_coo(coo)
        be, br = e.memory_breakdown(), r.memory_breakdown()
        assert br["val"] == be["val"]
        assert br["col_idx"] == be["col_idx"]
        assert br["rowmax"] == r.padded_rows * 4

    def test_executed_column_rows(self, coo):
        m = ELLPACKRMatrix.from_coo(coo)
        lengths = coo.row_lengths()
        for j in (0, m.width // 2, m.width - 1):
            assert m.executed_column_rows(j) == int(np.count_nonzero(lengths > j))

    def test_executed_column_rows_bounds(self, coo):
        m = ELLPACKRMatrix.from_coo(coo)
        with pytest.raises(ValueError):
            m.executed_column_rows(m.width)
        with pytest.raises(ValueError):
            m.executed_column_rows(-1)

    def test_roundtrip(self, coo):
        m = ELLPACKRMatrix.from_coo(coo)
        assert np.allclose(m.to_coo().todense(), coo.todense())

    def test_name(self):
        assert ELLPACKRMatrix.name == "ELLPACK-R"
        assert ELLPACKMatrix.name == "ELLPACK"
