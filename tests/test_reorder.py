"""Tests for RCM reordering and symmetric permutation."""

import numpy as np
import pytest

from repro.formats import CSRMatrix, convert
from repro.matrices import (
    banded_sparse,
    matrix_bandwidth,
    permute_symmetric,
    poisson2d,
    rcm_permutation,
)

from _test_common import random_coo


class TestBandwidth:
    def test_diagonal_zero(self):
        from repro.formats import COOMatrix

        n = 8
        coo = COOMatrix(range(n), range(n), np.ones(n), (n, n))
        assert matrix_bandwidth(coo) == 0

    def test_banded(self):
        coo = banded_sparse(100, 9, np.full(100, 4), seed=261)
        assert matrix_bandwidth(coo) <= 9

    def test_empty(self):
        from repro.formats import COOMatrix

        assert matrix_bandwidth(COOMatrix([], [], [], (4, 4))) == 0


class TestRCM:
    def test_reduces_bandwidth_on_shuffled_grid(self):
        """A randomly-renumbered 2-D grid regains a narrow band."""
        grid = poisson2d(15, 15)
        rng = np.random.default_rng(262)
        shuffle = rng.permutation(grid.nrows)
        shuffled = permute_symmetric(grid, shuffle)
        assert matrix_bandwidth(shuffled) > 100

        perm = rcm_permutation(shuffled)
        restored = permute_symmetric(shuffled, perm)
        assert matrix_bandwidth(restored) < matrix_bandwidth(shuffled) / 3

    def test_returns_valid_permutation(self):
        coo = random_coo(60, seed=263)
        perm = rcm_permutation(coo)
        assert np.array_equal(np.sort(perm), np.arange(60))

    def test_rectangular_rejected(self):
        coo = random_coo(10, 20, seed=264)
        with pytest.raises(ValueError, match="square"):
            rcm_permutation(coo)


class TestPermuteSymmetric:
    def test_spmv_identity(self):
        coo = random_coo(80, seed=265)
        perm = np.random.default_rng(1).permutation(80)
        re = permute_symmetric(coo, perm)
        x = np.random.default_rng(2).normal(size=80)
        assert np.allclose(re.spmv(x[perm]), coo.spmv(x)[perm], atol=1e-12)

    def test_identity_permutation(self):
        coo = random_coo(30, seed=266)
        re = permute_symmetric(coo, np.arange(30))
        assert np.array_equal(re.todense(), coo.todense())

    def test_involution(self):
        coo = random_coo(30, seed=267)
        perm = np.random.default_rng(3).permutation(30)
        back = np.empty(30, dtype=np.int64)
        back[np.arange(30)] = perm  # apply then invert
        re = permute_symmetric(coo, perm)
        inverse = np.argsort(perm)
        again = permute_symmetric(re, inverse)
        assert np.allclose(again.todense(), coo.todense())

    def test_nnz_preserved(self):
        coo = random_coo(40, seed=268)
        perm = np.random.default_rng(4).permutation(40)
        assert permute_symmetric(coo, perm).nnz == coo.nnz

    def test_invalid_permutation(self):
        coo = random_coo(10, seed=269)
        with pytest.raises(ValueError, match="permutation"):
            permute_symmetric(coo, np.zeros(10, dtype=int))

    def test_works_on_any_format(self):
        coo = random_coo(25, seed=270)
        perm = np.random.default_rng(5).permutation(25)
        a = permute_symmetric(coo, perm)
        b = permute_symmetric(convert(coo, "pJDS"), perm)
        assert np.array_equal(a.todense(), b.todense())


class TestPipelineIntegration:
    def test_rcm_reduces_halo_volume(self):
        """The reason a distributed spMVM applies RCM first."""
        from repro.distributed import analyse_plan, build_plan, partition_rows

        coo = permute_symmetric(
            poisson2d(20, 20), np.random.default_rng(6).permutation(400)
        )
        csr = CSRMatrix.from_coo(coo)
        plan0 = build_plan(csr, partition_rows(400, 8), with_matrices=False)

        reordered = permute_symmetric(coo, rcm_permutation(coo))
        csr1 = CSRMatrix.from_coo(reordered)
        plan1 = build_plan(csr1, partition_rows(400, 8), with_matrices=False)

        assert (
            analyse_plan(plan1).total_halo_elements
            < analyse_plan(plan0).total_halo_elements / 2
        )

    def test_rcm_then_pjds_still_correct(self):
        coo = random_coo(70, seed=271)
        re = permute_symmetric(coo, rcm_permutation(coo))
        p = convert(re, "pJDS")
        x = np.random.default_rng(7).normal(size=70)
        assert np.allclose(p.spmv(x), re.spmv(x))
