"""Tests for the L2 gather-traffic model, validated against exact LRU."""

import numpy as np
import pytest

from repro.gpu import (
    CacheModel,
    dedupe_units,
    gather_traffic,
    lru_misses,
    stack_distance_misses,
)


class TestDedupe:
    def test_removes_within_unit_repeats(self):
        unit = np.array([0, 0, 0, 1, 1])
        lines = np.array([5, 5, 6, 5, 5])
        u, ln = dedupe_units(unit, lines)
        assert u.tolist() == [0, 0, 1]
        assert ln.tolist() == [5, 6, 5]

    def test_empty(self):
        u, ln = dedupe_units(np.empty(0, np.int64), np.empty(0, np.int64))
        assert u.size == 0 and ln.size == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            dedupe_units(np.array([0]), np.array([1, 2]))

    def test_unsorted_input_handled(self):
        unit = np.array([1, 0, 1, 0])
        lines = np.array([9, 9, 9, 8])
        u, ln = dedupe_units(unit, lines)
        assert u.tolist() == [0, 0, 1]
        assert sorted(ln[:2].tolist()) == [8, 9]


class TestStackDistance:
    def test_first_touch_misses(self):
        u = np.array([0, 1, 2])
        ln = np.array([1, 2, 3])
        assert stack_distance_misses(u, ln, capacity=100) == 3

    def test_immediate_reuse_hits(self):
        u = np.array([0, 1])
        ln = np.array([7, 7])
        assert stack_distance_misses(u, ln, capacity=1) == 1

    def test_capacity_eviction(self):
        # line 0 reused after 2 units touching 4 distinct lines total
        u = np.array([0, 1, 1, 2, 2, 3])
        ln = np.array([0, 1, 2, 3, 4, 0])
        # intervening distinct = 4 (units 1 and 2); LRU needs capacity 5
        # to keep line 0 alive (itself + the four interlopers)
        assert stack_distance_misses(u, ln, capacity=5) == 5
        assert stack_distance_misses(u, ln, capacity=4) == 6

    def test_adjacent_unit_reuse_hits(self):
        u = np.array([0, 1, 2])
        ln = np.array([5, 5, 5])
        # consecutive units with nothing in between: intervening = 0 < 1
        assert stack_distance_misses(u, ln, capacity=1) == 1
        # zero capacity: everything misses
        assert stack_distance_misses(u, ln, capacity=0) == 3

    def test_empty_stream(self):
        assert stack_distance_misses(np.empty(0, np.int64), np.empty(0, np.int64), 4) == 0

    def test_negative_capacity(self):
        with pytest.raises(ValueError):
            stack_distance_misses(np.array([0]), np.array([0]), -1)


class TestAgainstLRU:
    """The unit filter must track exact LRU closely on streaming patterns."""

    def test_streaming_pattern(self):
        # pure streaming: everything misses in both models
        lines = np.arange(1000, dtype=np.int64)
        unit = np.arange(1000, dtype=np.int64)
        assert stack_distance_misses(unit, lines, 64) == lru_misses(lines, 64)

    def test_small_working_set_mostly_hits(self):
        rng = np.random.default_rng(0)
        lines = rng.integers(0, 8, size=500)
        unit = np.arange(500, dtype=np.int64)
        exact = lru_misses(lines, 16)
        assert exact == 8  # working set < capacity: only cold misses
        # the unit filter double-counts distinct lines across units, so
        # it may overestimate, but stays within a small factor here
        approx = stack_distance_misses(unit, lines, 16)
        assert exact <= approx <= 80

    def test_conservative_on_random_streams(self):
        """The filter may only overestimate misses (distance overcount)."""
        rng = np.random.default_rng(1)
        for cap in (4, 16, 64):
            lines = rng.integers(0, 100, size=800)
            unit = np.arange(800, dtype=np.int64)
            approx = stack_distance_misses(unit, lines, cap)
            exact = lru_misses(lines, cap)
            assert approx >= exact
            assert approx <= exact * 2 + 8  # and not wildly off

    def test_lru_basic(self):
        lines = np.array([1, 2, 1, 3, 4, 1])
        assert lru_misses(lines, 2) == 5
        assert lru_misses(lines, 10) == 4

    def test_lru_capacity_validation(self):
        with pytest.raises(ValueError):
            lru_misses(np.array([1]), 0)


class TestGatherTraffic:
    def test_bytes_are_misses_times_line(self):
        unit = np.array([0, 1, 2])
        lines = np.array([0, 1, 0])
        tr, miss, bytes_ = gather_traffic(unit, lines, capacity=100, line_bytes=128)
        assert tr == 3
        assert miss == 2
        assert bytes_ == 2 * 128

    def test_cache_model_wrapper(self):
        cm = CacheModel(capacity_lines=100, line_bytes=128)
        unit = np.array([0, 0, 1])
        lines = np.array([0, 0, 0])
        tr, miss, bytes_ = cm.gather_traffic(unit, lines)
        assert tr == 2  # deduped within unit 0
        assert miss == 1

    def test_effective_alpha(self):
        cm = CacheModel(capacity_lines=0, line_bytes=128)
        unit = np.arange(16, dtype=np.int64)
        lines = np.arange(16, dtype=np.int64)  # all distinct: all miss
        alpha = cm.effective_alpha(unit, lines, nnz=16, itemsize=8)
        assert alpha == pytest.approx(128 / 8)

    def test_alpha_perfect_reuse_lower_bound(self):
        """alpha ~ 16 accesses served by one line load = 128/(16*8) = 1."""
        cm = CacheModel(capacity_lines=10, line_bytes=128)
        unit = np.arange(16, dtype=np.int64)
        lines = np.zeros(16, dtype=np.int64)
        alpha = cm.effective_alpha(unit, lines, nnz=16, itemsize=8)
        assert alpha == pytest.approx(1.0)

    def test_alpha_validates_nnz(self):
        cm = CacheModel(10, 128)
        with pytest.raises(ValueError):
            cm.effective_alpha(np.array([0]), np.array([0]), nnz=0, itemsize=8)

    def test_model_validation(self):
        with pytest.raises(ValueError):
            CacheModel(-1, 128)
        with pytest.raises(ValueError):
            CacheModel(4, 0)
