"""Tests for :mod:`repro.ops` — the central kernel registry, the
LinearOperator protocol, the cross-backend adapters and the
deprecation shims (the ISSUE-4 refactor).

The parity matrix sweeps every registered format x kernel variant x
operation {spmv, spmm, permuted} against a dense reference, on random
inputs *and* the pathological shapes (empty rows, a single dense row,
0x0, non-contiguous RHS).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from _test_common import (
    ALL_FORMATS,
    empty_coo,
    random_coo,
    single_dense_row_coo,
)
from repro.engine import Workspace, bind
from repro.formats import (
    COOMatrix,
    CSRMatrix,
    available_formats,
    convert,
    register_format,
)
from repro.formats.conversions import FORMATS
from repro.ops import (
    CountingOperator,
    FormatOperator,
    KernelSpec,
    LinearOperator,
    PermutedOperator,
    apply_repeated,
    as_linear_operator,
    get_variant,
    kernels_for,
    register_kernel,
    registry_rows,
    solver_operator,
    spmm_dispatch,
    variant_names_for,
    variants_for,
)
from repro.utils.deprecation import reset_warned


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def dense_of(coo: COOMatrix) -> np.ndarray:
    return coo.todense()


# ---------------------------------------------------------------------------
# satellite: format registry behaviour
# ---------------------------------------------------------------------------

class TestFormatRegistry:
    def test_available_formats_sorted(self):
        names = available_formats()
        assert names == sorted(names)
        for expected in ALL_FORMATS:
            assert expected in names

    def test_collision_raises(self):
        class Impostor:
            name = "CRS"

        # the error must name the existing registrant so the collision
        # is debuggable from the message alone (satellite fix)
        with pytest.raises(
            ValueError,
            match="already registered by repro.formats.csr.CSRMatrix",
        ):
            register_format(Impostor)
        # the real class is untouched
        assert FORMATS["CRS"] is CSRMatrix

    def test_reregistration_is_idempotent(self):
        assert register_format(CSRMatrix) is CSRMatrix

    def test_new_format_registers_and_sorts(self):
        class ZZZFormat:
            name = "zzz-test-only"

        try:
            register_format(ZZZFormat)
            names = available_formats()
            assert "zzz-test-only" in names
            assert names == sorted(names)
        finally:
            FORMATS.pop("zzz-test-only", None)


# ---------------------------------------------------------------------------
# tentpole: kernel registry behaviour
# ---------------------------------------------------------------------------

class TestKernelRegistry:
    def test_every_format_has_spmv_candidates(self):
        for name in ALL_FORMATS + ["BELLPACK", "ELLR-T"]:
            m = convert(random_coo(20, seed=1), name)
            roster = variant_names_for(m)
            assert roster, f"{name} has no spmv candidates"
            assert len(roster) == len(set(roster))

    def test_duplicate_kernel_name_raises(self):
        def clash(m, ws, x, y, permuted=False):  # pragma: no cover
            raise AssertionError("never called")

        with pytest.raises(ValueError, match="already registered"):
            register_kernel(CSRMatrix, "spmv", name="csr_reduceat")(clash)
        # registry unchanged by the failed attempt
        roster = variant_names_for(CSRMatrix)
        assert roster.count("csr_reduceat") == 1

    def test_reregistering_same_function_is_idempotent(self):
        spec = get_variant(CSRMatrix, "csr_reduceat")
        out = register_kernel(CSRMatrix, "spmv", name="csr_reduceat")(spec.run)
        assert out is spec.run
        assert variant_names_for(CSRMatrix).count("csr_reduceat") == 1

    def test_subclass_inherits_and_can_override(self):
        class _Base:
            pass

        class _Sub(_Base):
            pass

        @register_kernel(_Base, "spmv", name="base_kernel")
        def _base(m, ws, x, y, permuted=False):
            pass

        assert variant_names_for(_Sub) == ["base_kernel"]

        @register_kernel(_Sub, "spmv", name="sub_kernel")
        def _sub(m, ws, x, y, permuted=False):
            pass

        # own table shadows the inherited one entirely
        assert variant_names_for(_Sub) == ["sub_kernel"]
        assert variant_names_for(_Base) == ["base_kernel"]

    def test_first_flag_prepends(self):
        class _Fmt:
            pass

        @register_kernel(_Fmt, "spmv", name="second")
        def _a(m, ws, x, y, permuted=False):
            pass

        @register_kernel(_Fmt, "spmv", name="now_first", first=True)
        def _b(m, ws, x, y, permuted=False):
            pass

        assert variant_names_for(_Fmt) == ["now_first", "second"]

    def test_unknown_format_falls_back(self):
        class _Nothing:
            pass

        spmv = kernels_for(_Nothing, "spmv")
        assert [k.name for k in spmv] == ["generic"]
        assert kernels_for(_Nothing, "spmm") == []

    def test_get_variant_keyerror_lists_candidates(self):
        m = convert(random_coo(10, seed=2), "CRS")
        with pytest.raises(KeyError, match="no variant 'nope' for CSRMatrix"):
            get_variant(m, "nope")

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError, match="op must be one of"):
            kernels_for(CSRMatrix, "transpose")
        with pytest.raises(ValueError, match="op must be one of"):
            register_kernel(CSRMatrix, "transpose", name="x")

    def test_registry_rows_snapshot(self):
        rows = registry_rows()
        assert rows, "registry snapshot is empty"
        keys = {"format", "op", "variant", "supports_permuted", "tags", "rank"}
        for r in rows:
            assert keys <= set(r)
        # deterministic: sorted by (format, op), ranks contiguous from 0
        fmt_op = [(r["format"], r["op"]) for r in rows]
        assert fmt_op == sorted(fmt_op)
        spmv_crs = [r for r in rows if r["format"] == "CRS" and r["op"] == "spmv"]
        assert [r["rank"] for r in spmv_crs] == list(range(len(spmv_crs)))
        assert any(r["op"] == "spmm" for r in rows)


# ---------------------------------------------------------------------------
# satellite: the parity matrix (format x variant x {spmv, spmm, permuted})
# ---------------------------------------------------------------------------

from repro.scenarios import expand_suite, run_cell  # noqa: E402

#: the declarative parity matrix: matrix-class x format x kernel-tier,
#: expanded once at collection from the shared scenario specs (the same
#: cells `repro matrix run --suite parity` executes in CI)
PARITY_CELLS = expand_suite("parity", wave="full")


class TestParityMatrix:
    @pytest.mark.parametrize(
        "cell", [pytest.param(c, id=c.label()) for c in PARITY_CELLS]
    )
    def test_cell(self, cell):
        row = run_cell(cell)
        if row["status"] == "skip":
            pytest.skip(row["reason"])
        assert row["status"] == "ok", row.get("error")

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_spmv_noncontiguous_rhs(self, fmt):
        coo = random_coo(30, seed=9)
        m = convert(coo, fmt)
        A = dense_of(coo)
        rng = np.random.default_rng(8)
        wide = rng.standard_normal(2 * m.ncols)
        x = wide[::2]
        assert not x.flags.c_contiguous
        ref = A @ x
        for name in variant_names_for(m):
            got = bind(m, tune=False, variant=name).spmv(x)
            np.testing.assert_allclose(
                got, ref, rtol=1e-12, atol=1e-12, err_msg=f"{fmt}/{name}"
            )

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_spmv_empty_matrix(self, fmt):
        m = convert(empty_coo(), fmt)
        assert m.shape == (0, 0)
        for name in variant_names_for(m):
            got = bind(m, tune=False, variant=name).spmv(np.empty(0))
            assert got.shape == (0,)

    @pytest.mark.parametrize("order", ["C", "F", "sliced"])
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_spmm_parity(self, fmt, order):
        coo = random_coo(35, seed=13)
        m = convert(coo, fmt)
        A = dense_of(coo)
        rng = np.random.default_rng(14)
        if order == "sliced":
            X = rng.standard_normal((m.ncols, 8))[:, ::2]
            assert not X.flags.c_contiguous and not X.flags.f_contiguous
        else:
            X = np.asarray(
                rng.standard_normal((m.ncols, 4)), order=order
            )
        ref = A @ X
        got = m.spmm(X)
        np.testing.assert_allclose(
            got, ref, rtol=1e-12, atol=1e-12, err_msg=f"{fmt}/{order}"
        )
        # direct dispatch entry point (validated inputs)
        out = np.zeros((m.nrows, X.shape[1]), dtype=m.dtype)
        got2 = spmm_dispatch(m, np.asarray(X, dtype=m.dtype), out, Workspace())
        np.testing.assert_allclose(got2, ref, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("fmt", ["JDS", "pJDS"])
    def test_permuted_basis_every_variant(self, fmt):
        coo = random_coo(48, seed=21)
        m = convert(coo, fmt)
        A = dense_of(coo)
        rng = np.random.default_rng(22)
        x = rng.standard_normal(m.ncols)
        ref = A @ x
        perm = m.permutation
        x_perm = perm.to_permuted(x)
        permuting = [v for v in variants_for(m) if v.supports_permuted]
        assert permuting, f"{fmt} roster has no permuted-capable kernels"
        for v in permuting:
            bound = bind(m, tune=False, variant=v.name)
            y_stored = bound.spmv_permuted(x_perm)
            np.testing.assert_allclose(
                perm.to_original(y_stored), ref, rtol=1e-12, atol=1e-12,
                err_msg=f"{fmt}/{v.name}",
            )

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_solver_operator_roundtrip(self, fmt):
        coo = random_coo(32, seed=17, min_row=1, empty_row_fraction=0.0)
        m = convert(coo, fmt)
        A = dense_of(coo)
        rng = np.random.default_rng(18)
        x = rng.standard_normal(m.ncols)
        op = solver_operator(m)
        got = op.leave(op.apply(op.enter(x)))
        np.testing.assert_allclose(got, A @ x, rtol=1e-12, atol=1e-12)
        # block analogue
        X = rng.standard_normal((m.ncols, 3))
        Xp = np.ascontiguousarray(
            np.stack([op.enter(X[:, j]) for j in range(3)], axis=1)
        )
        Yp = op.apply_block(Xp)
        Y = np.stack([op.leave(Yp[:, j]) for j in range(3)], axis=1)
        np.testing.assert_allclose(Y, A @ X, rtol=1e-12, atol=1e-12)
        # diagonal comes back in original order
        np.testing.assert_allclose(op.diagonal(), np.diag(A))


# ---------------------------------------------------------------------------
# satellite: the optional compiled kernel tier (cnative / numba)
# ---------------------------------------------------------------------------

import pathlib  # noqa: E402

from repro.kernels import compiled as compiled_mod  # noqa: E402

_REPO_ROOT = str(pathlib.Path(__file__).resolve().parent.parent)
_CNATIVE_OK = compiled_mod.backend_status()["cnative"]["available"]
_NUMBA_OK = compiled_mod.backend_status()["numba"]["available"]

#: compiled variant -> the NumPy variant whose accumulation order it
#: reproduces exactly (sequential ascending per-row sums from zero), so
#: float64 agreement is *bitwise*, not just allclose
_BITWISE_PAIRS = {
    "CRS": ("csr_cc", "csr_numba", "csr_bincount"),
    "ELLPACK-R": ("ell_cc", "ell_numba", "ell_sweep"),
    "pJDS": ("jds_cc", "jds_numba", "jds_sweep"),
    "SELL-C-sigma": ("sell_cc", "sell_numba", "sell_chunks"),
    "CMRS": ("cmrs_cc", "cmrs_numba", "cmrs_bincount"),
    "ARG-CSR": ("argcsr_cc", "argcsr_numba", "argcsr_sweep"),
}

_SPMM_PAIRS = {
    "CRS": ("spmm_csr_cc", "spmm_csr_scipy"),
    "ELLPACK-R": ("spmm_ell_cc", None),
    "pJDS": ("spmm_jds_cc", None),
    "SELL-C-sigma": ("spmm_sell_cc", None),
    "CMRS": ("spmm_cmrs_cc", "spmm_cmrs"),
    "ARG-CSR": ("spmm_argcsr_cc", "spmm_argcsr"),
}


def _compiled_case_matrices():
    return {
        "random-square": random_coo(60, seed=3),
        # empty rows stress the row-pointer walk / zero-length jagged tail
        "empty-rows": random_coo(50, seed=31, empty_row_fraction=0.4),
        "single-dense-row": single_dense_row_coo(),
    }


class TestCompiledTier:
    def test_module_imports_and_reports_status(self):
        status = compiled_mod.backend_status()
        assert set(status) == {"cnative", "numba"}
        for rec in status.values():
            assert "available" in rec
        tiers = compiled_mod.kernel_tiers()
        assert tiers[0] == "numpy"

    def test_guarded_import_registers_nothing_when_disabled(self):
        """With every backend disabled the module must import cleanly,
        register nothing, and leave the CLI working (satellite 2)."""
        import json
        import os
        import subprocess
        import sys

        code = (
            "import json\n"
            "from repro.ops import variant_names_for, kernel_tiers\n"
            "from repro.formats.csr import CSRMatrix\n"
            "from repro.kernels import compiled\n"
            "print(json.dumps({'roster': variant_names_for(CSRMatrix),"
            " 'tiers': list(kernel_tiers()),"
            " 'status': compiled.backend_status()}))\n"
        )
        env = dict(os.environ, REPRO_COMPILED_DISABLE="numba,cnative")
        env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src")
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, cwd=_REPO_ROOT,
            capture_output=True, text=True, check=True,
        )
        got = json.loads(out.stdout)
        # this module's own registrations (the scipy delegates also
        # carry the "compiled" tag but are not guarded by the env knob)
        compiled_names = {
            r["variant"] for r in registry_rows()
            if {"cnative", "numba"} & set(r["tags"])
        }
        assert compiled_names or not _CNATIVE_OK
        assert not (set(got["roster"]) & compiled_names)
        assert got["tiers"][0] == "numpy"
        assert all(t.startswith(("numpy", "scipy")) for t in got["tiers"])
        assert not got["status"]["cnative"]["available"]
        # ... and the registry CLI still answers
        cli = subprocess.run(
            [sys.executable, "-m", "repro", "ops", "list"], env=env,
            cwd=_REPO_ROOT, capture_output=True, text=True, check=True,
        )
        assert "kernels registered" in cli.stdout
        for name in compiled_names:
            assert name not in cli.stdout

    @pytest.mark.parametrize("backend", ["cnative", "numba"])
    @pytest.mark.parametrize("fmt", sorted(_BITWISE_PAIRS))
    def test_spmv_bitwise_vs_numpy(self, fmt, backend):
        if backend == "cnative" and not _CNATIVE_OK:
            pytest.skip("no C compiler / cnative backend")
        if backend == "numba" and not _NUMBA_OK:
            pytest.skip("numba not installed")
        cc_name, nb_name, ref_name = _BITWISE_PAIRS[fmt]
        name = cc_name if backend == "cnative" else nb_name
        for case, coo in _compiled_case_matrices().items():
            m = convert(coo, fmt)
            assert name in variant_names_for(m), f"{name} not in roster"
            rng = np.random.default_rng(7)
            x = rng.standard_normal(m.ncols)
            got = bind(m, tune=False, variant=name).spmv(x)
            ref = bind(m, tune=False, variant=ref_name).spmv(x)
            np.testing.assert_array_equal(
                got, ref, err_msg=f"{fmt}/{name}/{case} not bitwise"
            )

    @pytest.mark.skipif(not _CNATIVE_OK, reason="no cnative backend")
    @pytest.mark.parametrize("fmt", sorted(_BITWISE_PAIRS))
    def test_spmv_compiled_noncontiguous_and_empty(self, fmt):
        name = _BITWISE_PAIRS[fmt][0]
        # non-contiguous RHS: the glue must densify without changing bits
        coo = random_coo(30, seed=9)
        m = convert(coo, fmt)
        rng = np.random.default_rng(8)
        wide = rng.standard_normal(2 * m.ncols)
        x = wide[::2]
        assert not x.flags.c_contiguous
        got = bind(m, tune=False, variant=name).spmv(x)
        ref = bind(m, tune=False, variant=name).spmv(np.ascontiguousarray(x))
        np.testing.assert_array_equal(got, ref)
        # 0x0 degenerate
        z = convert(empty_coo(), fmt)
        out = bind(z, tune=False, variant=name).spmv(np.empty(0))
        assert out.shape == (0,)

    @pytest.mark.skipif(not _CNATIVE_OK, reason="no cnative backend")
    @pytest.mark.parametrize("fmt", ["JDS", "pJDS"])
    def test_spmv_compiled_permuted_bitwise(self, fmt):
        coo = random_coo(48, seed=21)
        m = convert(coo, fmt)
        rng = np.random.default_rng(22)
        x_perm = m.permutation.to_permuted(rng.standard_normal(m.ncols))
        spec = get_variant(m, "jds_cc")
        assert spec.supports_permuted
        got = bind(m, tune=False, variant="jds_cc").spmv_permuted(x_perm).copy()
        ref = bind(m, tune=False, variant="jds_sweep").spmv_permuted(x_perm)
        np.testing.assert_array_equal(got, ref)

    @pytest.mark.skipif(not _CNATIVE_OK, reason="no cnative backend")
    @pytest.mark.parametrize("order", ["C", "F", "sliced"])
    @pytest.mark.parametrize("fmt", sorted(_SPMM_PAIRS))
    def test_spmm_compiled_parity(self, fmt, order):
        name = _SPMM_PAIRS[fmt][0]
        coo = random_coo(35, seed=13)
        m = convert(coo, fmt)
        A = dense_of(coo)
        rng = np.random.default_rng(14)
        if order == "sliced":
            X = rng.standard_normal((m.ncols, 8))[:, ::2]
        else:
            X = np.asarray(rng.standard_normal((m.ncols, 4)), order=order)
        spec = next(
            k for k in kernels_for(m, "spmm") if k.name == name
        )
        Xc = np.ascontiguousarray(X, dtype=m.dtype)
        out = np.zeros((m.nrows, Xc.shape[1]), dtype=m.dtype)
        got = spec.run(m, Xc, out, Workspace())
        np.testing.assert_allclose(
            got, A @ X, rtol=1e-12, atol=1e-12, err_msg=f"{fmt}/{name}/{order}"
        )

    @pytest.mark.skipif(not _CNATIVE_OK, reason="no cnative backend")
    def test_spmm_noncontiguous_falls_back(self):
        """The cnative spmm glue refuses non-C-contiguous X; the
        registered wrapper must silently delegate to the NumPy path."""
        coo = random_coo(25, seed=19)
        m = convert(coo, "CRS")
        A = dense_of(coo)
        spec = next(
            k for k in kernels_for(m, "spmm") if k.name == "spmm_csr_cc"
        )
        X = np.asfortranarray(
            np.random.default_rng(20).standard_normal((m.ncols, 4))
        )
        out = np.zeros((m.nrows, 4), dtype=m.dtype)
        got = spec.run(m, X, out, Workspace())
        np.testing.assert_allclose(got, A @ X, rtol=1e-12, atol=1e-12)

    def test_new_format_rosters_fall_back_when_disabled(self):
        """With ``REPRO_COMPILED_DISABLE=all`` the CMRS / ARG-CSR
        rosters must hold no compiled variants and the remaining
        vectorised kernels must still match the dense oracle."""
        import json
        import os
        import subprocess
        import sys

        code = (
            "import json\n"
            "import numpy as np\n"
            "from repro.engine import bind\n"
            "from repro.formats import convert, COOMatrix\n"
            "from repro.ops import variant_names_for\n"
            "rng = np.random.default_rng(5)\n"
            "d = (rng.random((40, 33)) < 0.2) * rng.standard_normal((40, 33))\n"
            "coo = COOMatrix.from_dense(d)\n"
            "out = {}\n"
            "for fmt in ('CMRS', 'ARG-CSR'):\n"
            "    m = convert(coo, fmt)\n"
            "    x = rng.standard_normal(m.ncols)\n"
            "    y = bind(m, tune=False).spmv(x)\n"
            "    out[fmt] = {'roster': variant_names_for(m),\n"
            "                'ok': bool(np.allclose(y, d @ x, atol=1e-9))}\n"
            "print(json.dumps(out))\n"
        )
        env = dict(os.environ, REPRO_COMPILED_DISABLE="all")
        env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src")
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, cwd=_REPO_ROOT,
            capture_output=True, text=True, check=True,
        )
        got = json.loads(proc.stdout)
        for fmt in ("CMRS", "ARG-CSR"):
            roster = got[fmt]["roster"]
            assert roster, fmt
            assert not any(
                n.endswith("_cc") or n.endswith("_numba") for n in roster
            ), roster
            assert got[fmt]["ok"], fmt

    def test_compiled_variants_carry_tier_tags(self):
        rows = registry_rows()
        for r in rows:
            if r["variant"].endswith("_cc") or "_cc" in r["variant"]:
                assert "compiled" in r["tags"] and "cnative" in r["tags"], r
            if r["variant"].endswith("_numba"):
                assert "compiled" in r["tags"] and "numba" in r["tags"], r


# ---------------------------------------------------------------------------
# tentpole: the LinearOperator protocol
# ---------------------------------------------------------------------------

class TestLinearOperatorProtocol:
    def test_as_linear_operator_passthrough_and_adapt(self):
        m = convert(random_coo(20, seed=4), "CRS")
        op = as_linear_operator(m)
        assert isinstance(op, FormatOperator)
        assert as_linear_operator(op) is op
        bound = bind(m, tune=False)
        bop = as_linear_operator(bound)
        assert bop.shape == m.shape and bop.dtype == m.dtype
        with pytest.raises(TypeError, match="cannot adapt"):
            as_linear_operator(object())

    def test_engine_flag_binds(self):
        m = convert(random_coo(20, seed=4), "CRS")
        op = as_linear_operator(m, engine=True, tune=False)
        x = np.ones(20)
        np.testing.assert_allclose(op.apply(x), m.spmv(x))

    def test_apply_permuted_raises_for_flat_formats(self):
        m = convert(random_coo(16, seed=5), "CRS")
        with pytest.raises(TypeError, match="no permuted-basis kernel"):
            as_linear_operator(m).apply_permuted(np.ones(16))

    def test_solver_operator_requires_square(self):
        m = convert(random_coo(20, 30, seed=6), "CRS")
        with pytest.raises(ValueError, match="square"):
            solver_operator(m)

    def test_solver_operator_identity_for_flat_formats(self):
        m = convert(random_coo(24, seed=7), "ELLPACK")
        op = solver_operator(m)
        assert op.permutation.is_identity
        x = np.arange(24, dtype=float)
        np.testing.assert_array_equal(op.enter(x), x)

    def test_counting_operator_accounting(self):
        m = convert(random_coo(20, seed=8), "pJDS")
        op = CountingOperator(solver_operator(m))
        x = np.ones(20)
        op.apply(op.enter(x))
        assert op.count == 1
        op.apply_block(np.ones((20, 5)))
        assert op.count == 6
        op.apply_permuted(np.ones(20))
        assert op.count == 7
        op.reset()
        assert op.count == 0
        # extras delegate to the wrapped PermutedOperator
        assert op.permutation is not None
        assert op.size == 20
        np.testing.assert_allclose(
            op.leave(op.enter(x)), x
        )

    def test_counting_operator_publishes_to_obs(self):
        from repro import obs

        m = convert(random_coo(12, seed=9), "CRS")
        op = CountingOperator(as_linear_operator(m))
        op.apply(np.ones(12))
        obs.reset()
        obs.enable()
        try:
            total = op.publish("test-solver")
            assert total == 1
            fam = obs.counter("solver_spmv_total")
            assert fam.labels(solver="test-solver").value == 1
        finally:
            obs.disable()
            obs.reset()

    def test_apply_repeated(self):
        coo = random_coo(18, seed=10)
        m = convert(coo, "CRS")
        A = dense_of(coo)
        x = np.random.default_rng(1).standard_normal(18)
        np.testing.assert_allclose(apply_repeated(m, x, 1), A @ x)
        np.testing.assert_allclose(
            apply_repeated(m, x, 3), A @ (A @ (A @ x)), rtol=1e-10
        )
        with pytest.raises(ValueError, match="repetitions must be >= 1"):
            apply_repeated(m, x, 0)

    def test_permuted_operator_without_diagonal(self):
        from repro.core.sorting import Permutation

        op = PermutedOperator(
            lambda x: 2.0 * x, Permutation.identity(4), np.float64
        )
        with pytest.raises(NotImplementedError, match="without a diagonal"):
            op.diagonal()
        np.testing.assert_allclose(op.apply(np.ones(4)), 2.0 * np.ones(4))

    def test_kernel_spec_is_frozen(self):
        spec = KernelSpec("x", lambda *a: None)
        with pytest.raises(Exception):
            spec.name = "y"

    def test_protocol_base_defaults(self):
        class _Two(LinearOperator):
            @property
            def shape(self):
                return (3, 3)

            @property
            def dtype(self):
                return np.dtype(np.float64)

            def apply(self, x, out=None):
                y = 2.0 * np.asarray(x)
                if out is not None:
                    out[:] = y
                    return out
                return y

        op = _Two()
        assert op.nrows == 3 and op.ncols == 3
        X = np.eye(3)
        np.testing.assert_allclose(op.apply_block(X), 2.0 * X)
        with pytest.raises(TypeError):
            op.apply_permuted(np.ones(3))
        with pytest.raises(NotImplementedError):
            op.diagonal()


# ---------------------------------------------------------------------------
# cross-backend adapters (parallel / distributed / serve)
# ---------------------------------------------------------------------------

class TestBackendAdapters:
    def test_parallel_operator(self):
        from repro.ops import ParallelOperator

        coo = random_coo(64, seed=31)
        m = convert(coo, "CRS")
        A = dense_of(coo)
        x = np.random.default_rng(2).standard_normal(64)
        with ParallelOperator(m, nworkers=2) as op:
            # vector mode is bitwise-identical to the serial kernel
            np.testing.assert_array_equal(op.apply(x), m.spmv(x))
            np.testing.assert_allclose(op.apply(x), A @ x)
            assert op.shape == (64, 64)
            out = np.empty(64)
            assert op.apply(x, out=out) is out
        # solvers accept it through the uniform entry point
        sop = solver_operator_from_backend(m, A, x)
        np.testing.assert_allclose(sop, A @ x)

    def test_distributed_operator(self):
        from repro.distributed import build_plan, partition_rows
        from repro.ops import DistributedOperator

        coo = random_coo(60, seed=32)
        m = convert(coo, "CRS")
        A = dense_of(coo)
        x = np.random.default_rng(3).standard_normal(60)
        plan = build_plan(m, partition_rows(60, 3))
        op = DistributedOperator(plan)
        assert op.shape == (60, 60)
        y1 = op.apply(x)
        np.testing.assert_allclose(y1, A @ x)
        # deterministic: repeated applies are bitwise-identical
        np.testing.assert_array_equal(y1, op.apply(x))

    def test_serve_operator(self):
        from repro.serve import Client, MatrixRegistry, SpMVServer

        coo = random_coo(40, seed=33)
        m = convert(coo, "CRS")
        A = dense_of(coo)
        x = np.random.default_rng(4).standard_normal(40)
        reg = MatrixRegistry()
        reg.register("A", matrix=m, tune=False)
        serial = bind(m, tune=False)
        with SpMVServer(reg, max_batch=4, max_delay_ms=2.0, workers=1) as srv:
            op = Client(srv).operator("A")
            assert op.shape == (40, 40) and op.dtype == m.dtype
            # batched execution is bitwise-identical to the pinned
            # serial variant
            np.testing.assert_array_equal(op.apply(x), serial.spmv(x))
            np.testing.assert_allclose(op.apply(x), A @ x)
            sop = solver_operator(op)
            np.testing.assert_allclose(sop.apply(x), A @ x)


def solver_operator_from_backend(m, A, x):
    """solver_operator over a generic backend adapter (identity basis)."""
    from repro.ops import ParallelOperator

    with ParallelOperator(m, nworkers=2) as pop:
        op = solver_operator(pop)
        assert op.permutation.is_identity
        return op.leave(op.apply(op.enter(x)))


# ---------------------------------------------------------------------------
# satellite: deprecation shims warn once and stay correct
# ---------------------------------------------------------------------------

class TestDeprecationShims:
    def setup_method(self):
        reset_warned()

    def teardown_method(self):
        reset_warned()

    def _one_warning(self, fn, *args, **kwargs):
        with warnings.catch_warnings(record=True) as w:
            warnings.simplefilter("always")
            out = fn(*args, **kwargs)
            dep = [x for x in w if issubclass(x.category, DeprecationWarning)]
            assert len(dep) == 1, f"expected 1 DeprecationWarning, got {len(dep)}"
        # second call: silent
        with warnings.catch_warnings(record=True) as w:
            warnings.simplefilter("always")
            fn(*args, **kwargs)
            dep = [x for x in w if issubclass(x.category, DeprecationWarning)]
            assert not dep, "warn-once shim warned twice"
        return out

    def test_engine_variants_shim(self):
        from repro.engine import variants as shim

        m = convert(random_coo(12, seed=41), "CRS")
        names = self._one_warning(shim.variant_names_for, m)
        assert names == variant_names_for(m)
        assert shim.KernelVariant is KernelSpec

    def test_engine_spmm_shim(self):
        from repro.engine import spmm as shim

        coo = random_coo(14, seed=42)
        m = convert(coo, "CRS")
        X = np.random.default_rng(5).standard_normal((14, 3))
        out = np.zeros((14, 3))
        got = self._one_warning(shim.spmm_dispatch, m, X, out, Workspace())
        np.testing.assert_allclose(got, dense_of(coo) @ X)

    def test_kernels_vectorized_shim(self):
        from repro.kernels.vectorized import spmv as old_spmv

        coo = random_coo(16, seed=43)
        m = convert(coo, "CRS")
        x = np.ones(16)
        got = self._one_warning(old_spmv, m, x)
        np.testing.assert_allclose(got, dense_of(coo) @ x)

    def test_warn_once_keys_are_independent(self):
        from repro.utils.deprecation import warn_once

        with warnings.catch_warnings(record=True) as w:
            warnings.simplefilter("always")
            warn_once("msg a", key="test.key.a")
            warn_once("msg b", key="test.key.b")
            warn_once("msg a", key="test.key.a")
            dep = [x for x in w if issubclass(x.category, DeprecationWarning)]
        assert len(dep) == 2
