"""Tests for the strong-scaling driver (Fig. 5)."""

import pytest

from repro.distributed import (
    KernelCost,
    ScalingPoint,
    single_gpu_effective_gflops,
    strong_scaling,
)
from repro.gpu import C2050


@pytest.fixture(scope="module")
def series():
    # banded matrix: halos stay local, so the sweep actually scales
    from repro.matrices import banded_sparse
    import numpy as np

    coo = banded_sparse(600, 40, np.full(600, 18), seed=181)
    return strong_scaling(
        coo,
        [1, 2, 4, 8],
        device=C2050(ecc=True),
        workload_scale=64,
        matrix_name="toy",
    )


class TestSeries:
    def test_all_modes_and_counts_present(self, series):
        assert series.node_counts() == [1, 2, 4, 8]
        for mode in ("vector", "naive", "task"):
            assert len(series.series(mode)) == 4

    def test_gflops_at(self, series):
        p = series.series("task")[0]
        assert series.gflops_at("task", p.nodes) == p.gflops
        with pytest.raises(KeyError):
            series.gflops_at("task", 99)

    def test_more_nodes_more_gflops_initially(self, series):
        task = series.series("task")
        assert task[1].gflops > task[0].gflops

    def test_efficiency_definition(self, series):
        task = series.series("task")
        base = task[0]
        eff = task[-1].efficiency(base)
        ideal = base.gflops * task[-1].nodes
        assert eff == pytest.approx(task[-1].gflops / ideal)
        assert 0 < eff <= 1.05

    def test_task_dominates_under_communication(self, series):
        # at one node vector's single unsplit kernel wins (no comm to
        # hide); with communication in play task mode must lead
        for nodes in series.node_counts()[1:]:
            task = series.gflops_at("task", nodes)
            vector = series.gflops_at("vector", nodes)
            assert task >= vector * 0.999


class TestSingleGPU:
    def test_pcie_reduces_effective(self):
        dev = C2050(ecc=True)
        cost = KernelCost()
        nnz, n = 10**7, 10**5
        eff = single_gpu_effective_gflops(nnz, n, dev, cost)
        kernel_only = 2 * nnz / cost.kernel_seconds(nnz, n, dev) * 1e-9
        assert eff < kernel_only

    def test_dlr1_reference_value(self):
        """Paper Fig. 5a reference line: 10.9 GF/s."""
        dev = C2050(ecc=True)
        eff = single_gpu_effective_gflops(
            40_025_628, 278_502, dev, KernelCost.from_alpha(0.25)
        )
        assert eff == pytest.approx(10.9, rel=0.15)

    def test_high_nnzr_insensitive_to_pcie(self):
        """Eq. (4): large Nnzr makes the PCIe penalty negligible."""
        dev = C2050(ecc=True)
        cost = KernelCost()
        n = 10**5
        small = single_gpu_effective_gflops(20 * n, n, dev, cost)
        large = single_gpu_effective_gflops(500 * n, n, dev, cost)
        kernel_small = 2 * 20 * n / cost.kernel_seconds(20 * n, n, dev) * 1e-9
        kernel_large = 2 * 500 * n / cost.kernel_seconds(500 * n, n, dev) * 1e-9
        assert large / kernel_large > small / kernel_small


class TestScalingPoint:
    def test_fields(self):
        p = ScalingPoint(nodes=4, mode="task", gflops=40.0, iteration_seconds=1e-3)
        base = ScalingPoint(nodes=1, mode="task", gflops=11.0, iteration_seconds=4e-3)
        assert p.efficiency(base) == pytest.approx(40.0 / 44.0)


class TestRender:
    def test_ascii_chart(self, series):
        art = series.render()
        assert "GF/s vs nodes" in art
        assert "legend" in art
        for sym in ("v", "n", "t"):
            assert sym in art

    def test_empty_series(self):
        from repro.distributed import ScalingSeries

        assert "empty" in ScalingSeries("x", []).render()
