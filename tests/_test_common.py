"""Shared test helpers (uniquely named to avoid conftest shadowing).

The matrix generators and format rosters live in
:mod:`repro.scenarios.fixtures` — the same module the scenario specs
and bench scripts draw from — so there is exactly one definition of
"a random test matrix" in the repo.  This module only adds the pytest
fixture wrappers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import COOMatrix, convert
from repro.scenarios.fixtures import (
    empty_coo,
    random_coo,
    single_dense_row_coo,
)
from repro.scenarios.fixtures import ALL_FORMATS as _ALL
from repro.scenarios.fixtures import GPU_FORMATS as _GPU
from repro.scenarios.fixtures import PERMUTING_FORMATS as _PERM

__all__ = [
    "ALL_FORMATS",
    "GPU_FORMATS",
    "PERMUTING_FORMATS",
    "empty_coo",
    "random_coo",
    "single_dense_row_coo",
]

#: every registered format that implements spmv (COO included)
ALL_FORMATS = list(_ALL)
#: formats with a GPU kernel trace
GPU_FORMATS = list(_GPU)
#: formats that permute rows
PERMUTING_FORMATS = list(_PERM)


@pytest.fixture(scope="session")
def small_coo() -> COOMatrix:
    """60x60 random square matrix with empty rows and skewed lengths."""
    return random_coo(60, seed=3)


@pytest.fixture(scope="session")
def rect_coo() -> COOMatrix:
    """Rectangular 40x70 matrix."""
    return random_coo(40, 70, seed=5)


@pytest.fixture(scope="session")
def spd_coo() -> COOMatrix:
    """Small symmetric positive-definite matrix (for CG)."""
    from repro.matrices import poisson2d

    return poisson2d(12, 13)


@pytest.fixture(params=ALL_FORMATS)
def any_format(request, small_coo):
    """One instance of every format built from the same matrix."""
    return convert(small_coo, request.param)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
