"""Shared test helpers (uniquely named to avoid conftest shadowing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import COOMatrix, convert

#: every registered format that implements spmv (COO included)
ALL_FORMATS = ["COO", "CRS", "ELLPACK", "ELLPACK-R", "JDS", "pJDS", "SELL-C-sigma"]
#: formats with a GPU kernel trace
GPU_FORMATS = ["ELLPACK", "ELLPACK-R", "JDS", "pJDS", "SELL-C-sigma"]
#: formats that permute rows
PERMUTING_FORMATS = ["JDS", "pJDS", "SELL-C-sigma"]


def random_coo(
    n: int = 60,
    m: int | None = None,
    *,
    seed: int = 0,
    max_row: int = 12,
    min_row: int = 0,
    dtype=np.float64,
    empty_row_fraction: float = 0.1,
) -> COOMatrix:
    """Random rectangular COO with a skewed row-length distribution."""
    m = n if m is None else m
    rng = np.random.default_rng(seed)
    rows, cols, vals = [], [], []
    for i in range(n):
        if rng.random() < empty_row_fraction and min_row == 0:
            continue
        k = int(rng.integers(max(min_row, 1), max_row + 1))
        k = min(k, m)
        c = rng.choice(m, size=k, replace=False)
        rows.extend([i] * k)
        cols.extend(c.tolist())
        vals.extend(rng.normal(size=k).tolist())
    return COOMatrix(
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(vals, dtype=dtype),
        (n, m),
        sum_duplicates=False,
    )


@pytest.fixture(scope="session")
def small_coo() -> COOMatrix:
    """60x60 random square matrix with empty rows and skewed lengths."""
    return random_coo(60, seed=3)


@pytest.fixture(scope="session")
def rect_coo() -> COOMatrix:
    """Rectangular 40x70 matrix."""
    return random_coo(40, 70, seed=5)


@pytest.fixture(scope="session")
def spd_coo() -> COOMatrix:
    """Small symmetric positive-definite matrix (for CG)."""
    from repro.matrices import poisson2d

    return poisson2d(12, 13)


@pytest.fixture(params=ALL_FORMATS)
def any_format(request, small_coo):
    """One instance of every format built from the same matrix."""
    return convert(small_coo, request.param)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
