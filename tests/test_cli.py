"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv: str) -> str:
    out = io.StringIO()
    code = main(list(argv), out=out)
    assert code == 0
    return out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_defaults(self):
        args = build_parser().parse_args(["suite"])
        assert args.scale == 64
        assert args.seed == 0

    def test_fig5_matrix_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--matrix", "HMEp"])


class TestCommands:
    def test_suite(self):
        text = run_cli("suite", "--scale", "512")
        for key in ("HMEp", "sAMG", "DLR1", "DLR2", "UHBR"):
            assert key in text
        assert "reduction" in text

    def test_table1(self):
        text = run_cli("table1", "--scale", "512")
        assert "SP ECC=0" in text
        assert "pJDS" in text
        assert "ELLPACK-R" in text

    def test_fig3(self):
        text = run_cli("fig3", "--scale", "1024")
        assert "DLR1" in text
        assert "#" in text  # histogram bars

    def test_pcie(self):
        text = run_cli("pcie")
        assert "worthwhile" in text
        assert "sAMG" in text
        # sAMG must be ruled out
        samg_line = next(l for l in text.splitlines() if l.startswith("sAMG"))
        assert "False" in samg_line

    def test_fig5(self):
        text = run_cli("fig5", "--scale", "128", "--matrix", "DLR1")
        assert "task" in text
        assert "vector" in text

    def test_timeline(self):
        text = run_cli("timeline", "--scale", "128", "--nodes", "3")
        assert "GF/s" in text
        assert "|" in text

    def test_timeline_modes(self):
        for mode in ("vector", "naive", "task"):
            text = run_cli(
                "timeline", "--scale", "256", "--nodes", "2", "--mode", mode
            )
            assert "GF/s" in text

    def test_shootout(self):
        text = run_cli("shootout", "--scale", "512", "--matrix", "sAMG")
        assert "pJDS" in text
        assert "SELL-C-sigma" in text
        assert "GF/s" in text

    def test_fig5_renders_chart(self):
        text = run_cli("fig5", "--scale", "256", "--matrix", "DLR1")
        assert "legend" in text

    def test_spmv_roundtrip(self, tmp_path):
        from repro.matrices import poisson2d, write_matrix_market

        path = tmp_path / "m.mtx"
        write_matrix_market(poisson2d(12, 12), path)
        text = run_cli("spmv", str(path), "--format", "pJDS")
        assert "144 x 144" in text
        assert "GF/s" in text

    def test_spmv_coo_no_gpu_model(self, tmp_path):
        from repro.matrices import poisson2d, write_matrix_market

        path = tmp_path / "m.mtx"
        write_matrix_market(poisson2d(8, 8), path)
        text = run_cli("spmv", str(path), "--format", "COO")
        assert "no GPU model" in text

    def test_spmv_crs_scalar_model(self, tmp_path):
        from repro.matrices import poisson2d, write_matrix_market

        path = tmp_path / "m.mtx"
        write_matrix_market(poisson2d(8, 8), path)
        text = run_cli("spmv", str(path), "--format", "CRS")
        assert "GF/s" in text
