"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv: str) -> str:
    out = io.StringIO()
    code = main(list(argv), out=out)
    assert code == 0
    return out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_defaults(self):
        args = build_parser().parse_args(["suite"])
        assert args.scale == 64
        assert args.seed == 0

    def test_fig5_matrix_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--matrix", "HMEp"])


class TestCommands:
    def test_suite(self):
        text = run_cli("suite", "--scale", "512")
        for key in ("HMEp", "sAMG", "DLR1", "DLR2", "UHBR"):
            assert key in text
        assert "reduction" in text

    def test_table1(self):
        text = run_cli("table1", "--scale", "512")
        assert "SP ECC=0" in text
        assert "pJDS" in text
        assert "ELLPACK-R" in text

    def test_fig3(self):
        text = run_cli("fig3", "--scale", "1024")
        assert "DLR1" in text
        assert "#" in text  # histogram bars

    def test_pcie(self):
        text = run_cli("pcie")
        assert "worthwhile" in text
        assert "sAMG" in text
        # sAMG must be ruled out
        samg_line = next(
            line for line in text.splitlines() if line.startswith("sAMG")
        )
        assert "False" in samg_line

    def test_fig5(self):
        text = run_cli("fig5", "--scale", "128", "--matrix", "DLR1")
        assert "task" in text
        assert "vector" in text

    def test_timeline(self):
        text = run_cli("timeline", "--scale", "128", "--nodes", "3")
        assert "GF/s" in text
        assert "|" in text

    def test_timeline_modes(self):
        for mode in ("vector", "naive", "task"):
            text = run_cli(
                "timeline", "--scale", "256", "--nodes", "2", "--mode", mode
            )
            assert "GF/s" in text

    def test_shootout(self):
        text = run_cli("shootout", "--scale", "512", "--matrix", "sAMG")
        assert "pJDS" in text
        assert "SELL-C-sigma" in text
        assert "GF/s" in text

    def test_fig5_renders_chart(self):
        text = run_cli("fig5", "--scale", "256", "--matrix", "DLR1")
        assert "legend" in text

    def test_spmv_roundtrip(self, tmp_path):
        from repro.matrices import poisson2d, write_matrix_market

        path = tmp_path / "m.mtx"
        write_matrix_market(poisson2d(12, 12), path)
        text = run_cli("spmv", str(path), "--format", "pJDS")
        assert "144 x 144" in text
        assert "GF/s" in text

    def test_spmv_coo_no_gpu_model(self, tmp_path):
        from repro.matrices import poisson2d, write_matrix_market

        path = tmp_path / "m.mtx"
        write_matrix_market(poisson2d(8, 8), path)
        text = run_cli("spmv", str(path), "--format", "COO")
        assert "no GPU model" in text

    def test_spmv_crs_scalar_model(self, tmp_path):
        from repro.matrices import poisson2d, write_matrix_market

        path = tmp_path / "m.mtx"
        write_matrix_market(poisson2d(8, 8), path)
        text = run_cli("spmv", str(path), "--format", "CRS")
        assert "GF/s" in text

    def test_spmv_parallel_backend(self, tmp_path):
        from repro.matrices import poisson2d, write_matrix_market

        path = tmp_path / "m.mtx"
        write_matrix_market(poisson2d(12, 12), path)
        serial = run_cli("spmv", str(path), "--format", "CRS")
        par = run_cli("spmv", str(path), "--format", "CRS", "--parallel", "2")
        assert "2 row-block workers" in par
        assert "vector mode" in par
        # vector mode bit-matches serial, so the printed norms agree
        norm = [ln for ln in serial.splitlines() if "||y||" in ln]
        assert norm and norm[0] in par

    def test_spmv_format_case_insensitive(self, tmp_path):
        from repro.matrices import poisson2d, write_matrix_market

        path = tmp_path / "m.mtx"
        write_matrix_market(poisson2d(8, 8), path)
        text = run_cli("spmv", str(path), "--format", "pjds")
        assert "pJDS" in text


class TestEngineTune:
    def test_prints_decision_and_timings(self):
        text = run_cli(
            "engine", "tune", "sAMG", "--format", "pjds",
            "--scale", "512", "--no-cache",
        )
        assert "fingerprint : pJDS:" in text
        assert "cache       : miss" in text
        assert "<- chosen" in text
        assert "chosen      : jds_" in text

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["engine"])


class TestObsCommand:
    def _run(self, tmp_path, *extra):
        trace = tmp_path / "trace.json"
        prom = tmp_path / "metrics.prom"
        text = run_cli(
            "obs",
            "--format",
            "pjds",
            "--scale",
            "512",
            "--out",
            str(trace),
            "--metrics-out",
            str(prom),
            *extra,
        )
        return text, trace, prom

    def test_writes_both_artifacts(self, tmp_path):
        text, trace, prom = self._run(tmp_path)
        assert trace.exists() and prom.exists()
        assert "trace events" in text
        assert "metric lines" in text

    def test_chrome_trace_schema_and_rank_coverage(self, tmp_path):
        import json

        _, trace, _ = self._run(tmp_path, "--nodes", "4", "--mode", "task")
        doc = json.loads(trace.read_text())
        events = doc["traceEvents"]
        assert events
        for e in events:
            assert e["ph"] in ("X", "M")
            assert "pid" in e and "tid" in e and "name" in e
            if e["ph"] == "X":
                assert e["ts"] >= 0.0 and e["dur"] >= 0.0
        # >= 1 span per rank per resource for the 4-rank task-mode run
        tracks = {}
        for e in events:
            if e["ph"] == "X" and e.get("args", {}).get("simulated"):
                tracks.setdefault(e["pid"], set()).add(e["tid"])
        for rank in range(4):
            assert {"gpu", "pcie", "thread0"} <= tracks[rank], rank

    def test_prometheus_contains_required_series(self, tmp_path):
        _, _, prom = self._run(tmp_path)
        text = prom.read_text()
        for name in ("spmv_bytes_total", "cache_hit_ratio", "halo_bytes_sent"):
            assert name in text, name
        from repro.obs import parse_prometheus_text

        parsed = parse_prometheus_text(text)
        assert parsed["spmv_bytes_total"]["kind"] == "counter"
        assert parsed["cache_hit_ratio"]["kind"] == "gauge"

    def test_obs_flag_restored_and_summary_printed(self, tmp_path):
        from repro import obs

        assert not obs.enabled()
        text, _, _ = self._run(tmp_path)
        assert not obs.enabled()
        assert "recorded" in text and "spans" in text

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            run_cli("obs", "--format", "nonsense", "--scale", "512")

    def test_jsonl_output(self, tmp_path):
        import json

        jl = tmp_path / "obs.jsonl"
        run_cli(
            "obs", "--format", "pjds", "--scale", "512",
            "--jsonl-out", str(jl),
        )
        lines = [json.loads(line) for line in jl.read_text().splitlines()]
        assert {"span", "metric"} <= {rec["type"] for rec in lines}


class TestServe:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1" and args.port == 8000
        assert args.policy == "block" and args.max_batch == 16
        assert args.max_delay_ms == 1.0 and args.max_queue == 256
        assert args.workers == 2 and args.budget_mb is None
        assert args.matrix is None and args.mtx == []
        assert not args.obs

    def test_policy_is_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--policy", "drop-newest"])

    def test_matrix_flag_repeatable(self):
        args = build_parser().parse_args(
            ["serve", "--matrix", "amg=sAMG", "--matrix", "DLR1"]
        )
        assert args.matrix == ["amg=sAMG", "DLR1"]

    def test_boots_and_serves_http(self):
        import json
        import re
        import threading
        import time
        import urllib.request

        out = io.StringIO()
        t = threading.Thread(
            target=main,
            args=(["serve", "--port", "0", "--scale", "512", "--workers", "1"],),
            kwargs={"out": out},
            daemon=True,
        )
        t.start()
        port = None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and port is None:
            m = re.search(r"listening on http://127\.0\.0\.1:(\d+)", out.getvalue())
            if m:
                port = int(m.group(1))
            else:
                time.sleep(0.05)
        assert port, f"server never announced a port: {out.getvalue()!r}"
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/healthz", timeout=30
        ) as resp:
            health = json.loads(resp.read())
        assert health["status"] == "ok"
        # default registration: the sAMG suite matrix, lazily assembled
        from repro.matrices import generate

        n = generate("sAMG", scale=512, seed=0).nrows
        body = json.dumps({"matrix": "sAMG", "x": [1.0] * n}).encode()
        req = urllib.request.Request(
            f"http://127.0.0.1:{port}/v1/spmv", data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=60) as resp:
            payload = json.loads(resp.read())
        assert payload["n"] == n
        assert len(payload["y"]) == n


class TestOpsList:
    def test_full_registry_listing(self):
        text = run_cli("ops", "list")
        assert "kernels registered" in text
        for expected in ("csr_reduceat", "spmm_csr", "jds_scipy", "sell_fused"):
            assert expected in text, expected
        # header + the generic-fallback note
        assert "variant" in text and "generic" in text

    def test_matrix_roster_and_tuning(self, tmp_path):
        from repro.matrices import poisson2d, write_matrix_market

        path = tmp_path / "m.mtx"
        write_matrix_market(poisson2d(10, 10), path)
        text = run_cli("ops", "list", "--matrix", str(path), "--format", "pjds")
        assert "100 x 100" in text
        assert "spmv candidates" in text and "spmm candidates" in text
        assert "tuned variant" in text

    def test_list_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ops"])


class TestObsTraceAndTop:
    def _seed_jsonl(self, tmp_path):
        from repro import obs

        obs.enable()
        obs.reset_all()
        try:
            with obs.trace_root("http.spmv", trace_id="a" * 16):
                with obs.span("serve.request", matrix="A"):
                    pass
        finally:
            path = tmp_path / "spans.jsonl"
            obs.write_jsonl(str(path))
            obs.disable()
            obs.reset_all()
        return path

    def test_trace_requires_input_file(self):
        out = io.StringIO()
        assert main(["obs", "trace", "a" * 16], out=out) == 2
        assert "--in" in out.getvalue()

    def test_trace_list(self, tmp_path):
        path = self._seed_jsonl(tmp_path)
        text = run_cli("obs", "trace", "--list", "--in", str(path))
        assert "a" * 16 in text
        assert "http.spmv" in text

    def test_trace_render_by_prefix(self, tmp_path):
        path = self._seed_jsonl(tmp_path)
        text = run_cli("obs", "trace", "aaaa", "--in", str(path))
        assert "http.spmv" in text and "serve.request" in text
        assert "matrix=A" in text

    def test_trace_unknown_id_exits_2(self, tmp_path):
        path = self._seed_jsonl(tmp_path)
        out = io.StringIO()
        assert main(["obs", "trace", "dead", "--in", str(path)], out=out) == 2
        assert "no trace" in out.getvalue()

    def test_top_prints_attribution_table(self):
        from repro import obs

        assert not obs.enabled()
        text = run_cli(
            "obs", "--scale", "300", "top",
            "--matrices", "sAMG", "--formats", "CRS",
            "--reps", "3", "--bandwidth", "10", "--no-tune",
        )
        assert not obs.enabled()  # prior state restored
        assert "sAMG" in text and "CRS" in text
        assert "GF/s" in text
        assert "model bandwidth: 10.0 GB/s" in text

    def test_serve_slo_flags(self):
        args = build_parser().parse_args(["serve", "--slo", "--slo-p99-ms", "250"])
        assert args.slo and args.slo_p99_ms == 250.0

    def test_chaos_trace_out(self, tmp_path):
        import json as _json

        path = tmp_path / "chaos.jsonl"
        text = run_cli(
            "chaos", "--plan", "smoke", "--scale", "512",
            "--trace-out", str(path),
        )
        assert path.exists()
        recs = [_json.loads(ln) for ln in path.read_text().splitlines()]
        assert recs
        assert "faulted trace(s):" in text
        assert "repro obs trace" in text


class TestFleetCLI:
    def test_serve_fleet_flags(self):
        args = build_parser().parse_args(
            ["serve", "--fleet", "4", "--replicas", "2", "--hedge-ms", "5"]
        )
        assert args.fleet == 4 and args.replicas == 2
        assert args.fleet_mode == "process"
        assert args.hedge_ms == 5.0

    def test_fleet_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet"])

    def test_fleet_status_defaults(self):
        args = build_parser().parse_args(["fleet", "status"])
        assert args.url == "http://127.0.0.1:8000"
        assert args.timeout == 5.0 and not args.json

    def test_fleet_status_unreachable_exits_1(self):
        out = io.StringIO()
        code = main(
            ["fleet", "status", "--url", "http://127.0.0.1:1", "--timeout", "1"],
            out=out,
        )
        assert code == 1
        assert "fleet status failed" in out.getvalue()

    def test_fleet_status_on_non_fleet_server_exits_1(self):
        # a plain (unsharded) serve process answers /fleetz with 404
        import re
        import threading
        import time

        out = io.StringIO()
        t = threading.Thread(
            target=main,
            args=(["serve", "--port", "0", "--scale", "512", "--workers", "1"],),
            kwargs={"out": out},
            daemon=True,
        )
        t.start()
        port = None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and port is None:
            m = re.search(r"listening on http://127\.0\.0\.1:(\d+)", out.getvalue())
            if m:
                port = int(m.group(1))
            else:
                time.sleep(0.05)
        assert port, f"server never announced a port: {out.getvalue()!r}"
        status_out = io.StringIO()
        code = main(
            ["fleet", "status", "--url", f"http://127.0.0.1:{port}"],
            out=status_out,
        )
        assert code == 1
        assert "not a fleet" in status_out.getvalue()

    def test_serve_fleet_boots_and_fleet_status_renders(self):
        import json
        import re
        import threading
        import time
        import urllib.request

        out = io.StringIO()
        t = threading.Thread(
            target=main,
            args=(
                [
                    "serve", "--port", "0", "--scale", "512", "--workers", "1",
                    "--fleet", "2", "--fleet-mode", "inproc", "--replicas", "2",
                ],
            ),
            kwargs={"out": out},
            daemon=True,
        )
        t.start()
        port = None
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and port is None:
            m = re.search(r"listening on http://127\.0\.0\.1:(\d+)", out.getvalue())
            if m:
                port = int(m.group(1))
            else:
                time.sleep(0.05)
        assert port, f"fleet server never announced a port: {out.getvalue()!r}"
        assert re.search(r"fleet: 2 inproc shard\(s\)", out.getvalue())

        # a sharded spmv through the HTTP front-end answers like a
        # single server would
        from repro.formats import convert
        from repro.matrices import generate

        mat = convert(generate("sAMG", scale=512, seed=0), "CRS")
        body = json.dumps({"matrix": "sAMG", "x": [1.0] * mat.ncols}).encode()
        req = urllib.request.Request(
            f"http://127.0.0.1:{port}/v1/spmv", data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=60) as resp:
            payload = json.loads(resp.read())
        assert payload["n"] == mat.nrows
        import numpy as np

        # bitwise parity holds against the same pinned kernel variant
        # the shards run, not the raw aggregate-kernel spmv
        from repro.serve import MatrixRegistry

        reg = MatrixRegistry(tune=False)
        reg.register("ref", matrix=mat, variant="csr_scipy")
        with reg.acquire("ref") as lease:
            y_ref = lease.clone_for("t").spmv(np.ones(mat.ncols))
        assert np.array_equal(payload["y"], y_ref)

        status_out = io.StringIO()
        code = main(
            ["fleet", "status", "--url", f"http://127.0.0.1:{port}"],
            out=status_out,
        )
        assert code == 0
        text = status_out.getvalue()
        assert "fleet: 2 inproc shard(s), replicas=2" in text
        assert "shard 0" in text and "shard 1" in text
        assert "sAMG" in text

        raw = io.StringIO()
        assert main(
            ["fleet", "status", "--url", f"http://127.0.0.1:{port}", "--json"],
            out=raw,
        ) == 0
        fleetz = json.loads(raw.getvalue())
        assert fleetz["fleet"] is True and fleetz["nshards"] == 2
