"""Tests for the sharded serve fleet: placement, parity, chaos, scaling.

Parity discipline: the fleet pins every shard to the same
``csr_scipy`` kernel variant the single-server reference uses, and
row-block results are concatenated in plan order — so the sharded
answer must be *bitwise* identical to the unsharded one, not merely
close.
"""

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro import obs
from repro.faults import FaultEvent, FaultPlan
from repro.formats import convert
from repro.matrices import generate, poisson2d
from repro.obs.slo import SLOMonitor, default_fleet_slos
from repro.serve import (
    AutoscalePolicy,
    Autoscaler,
    Client,
    Fleet,
    FleetDegraded,
    FleetRouter,
    HashRing,
    MatrixRegistry,
    ShardDown,
    SpMVServer,
)
from repro.serve.fleet import (
    ShardConfig,
    block_name,
    eq1_spmm_seconds,
    plan_for_shard,
)
from repro.serve.router import place_blocks

VARIANT = "csr_scipy"


def small_csr():
    return convert(poisson2d(24), "CRS")


def suite_csr():
    return convert(generate("sAMG", scale=2048, seed=0), "CRS")


import contextlib


@contextlib.contextmanager
def reference_client(csr, name="ref"):
    reg = MatrixRegistry(tune=False)
    reg.register(name, matrix=csr, variant=VARIANT)
    client = Client(SpMVServer(reg, workers=1, max_delay_ms=0.0))
    try:
        yield client
    finally:
        client.close()


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset_all()
    yield
    obs.reset_all()


# ---------------------------------------------------------------------------
# consistent-hash placement
# ---------------------------------------------------------------------------
class TestHashRing:
    KEYS = [f"key-{i}" for i in range(300)]

    def test_deterministic_given_seed(self):
        a = HashRing([0, 1, 2, 3], seed=7)
        b = HashRing([0, 1, 2, 3], seed=7)
        assert [a.preference(k) for k in self.KEYS] == [
            b.preference(k) for k in self.KEYS
        ]

    def test_seed_changes_layout(self):
        a = HashRing([0, 1, 2, 3], seed=0)
        b = HashRing([0, 1, 2, 3], seed=1)
        assert [a.owner(k) for k in self.KEYS] != [b.owner(k) for k in self.KEYS]

    def test_preference_covers_all_shards_distinctly(self):
        ring = HashRing([0, 1, 2, 3])
        for key in self.KEYS[:50]:
            pref = ring.preference(key)
            assert sorted(pref) == [0, 1, 2, 3]

    def test_add_moves_only_keys_to_new_shard(self):
        ring = HashRing([0, 1, 2, 3])
        before = {k: ring.owner(k) for k in self.KEYS}
        ring.add(4)
        moved = 0
        for k in self.KEYS:
            after = ring.owner(k)
            if after != before[k]:
                moved += 1
                # stability: a key only ever moves to the new shard
                assert after == 4, (k, before[k], after)
        # expected movement is ~1/5 of keys; assert a generous bound
        assert 0 < moved <= len(self.KEYS) * 0.45

    def test_remove_moves_only_keys_of_removed_shard(self):
        ring = HashRing([0, 1, 2, 3])
        before = {k: ring.owner(k) for k in self.KEYS}
        ring.remove(2)
        for k in self.KEYS:
            if before[k] != 2:
                assert ring.owner(k) == before[k]
            else:
                assert ring.owner(k) != 2

    def test_place_blocks_honors_replication_factor(self):
        ring = HashRing([0, 1, 2, 3])
        assignment = place_blocks(ring, "A", nblocks=6, replicas=2)
        assert len(assignment) == 6
        for replicas in assignment:
            assert len(replicas) == 2
            assert len(set(replicas)) == 2

    def test_replicas_use_chained_declustering(self):
        # consecutive blocks should not all pile onto one replica pair
        ring = HashRing([0, 1, 2, 3])
        assignment = place_blocks(ring, "A", nblocks=4, replicas=2)
        primaries = {r[0] for r in assignment}
        assert len(primaries) > 1


# ---------------------------------------------------------------------------
# scatter/gather parity against the single-server reference
# ---------------------------------------------------------------------------
class TestShardedParity:
    @pytest.mark.parametrize("blocks", [2, 3])
    @pytest.mark.parametrize("replicas", [1, 2])
    def test_spmv_bitwise_equal(self, blocks, replicas):
        csr = small_csr()
        rng = np.random.default_rng(blocks * 10 + replicas)
        x = rng.standard_normal(csr.ncols)
        with reference_client(csr) as ref:
            y_ref = ref.spmv("ref", x)
        with Fleet(3, mode="inproc", workers=1) as fleet:
            router = FleetRouter(fleet, replicas=replicas)
            router.register("A", csr, blocks=blocks)
            y = router.spmv("A", x)
        assert np.array_equal(y, y_ref)

    @pytest.mark.parametrize("blocks", [2, 3])
    def test_spmm_bitwise_equal(self, blocks):
        csr = small_csr()
        rng = np.random.default_rng(blocks)
        X = rng.standard_normal((csr.ncols, 3))
        reg = MatrixRegistry(tune=False)
        reg.register("ref", matrix=csr, variant=VARIANT)
        with reg.acquire("ref") as lease:
            Y_ref = lease.clone_for("t").spmm(X)
        with Fleet(3, mode="inproc", workers=1) as fleet:
            router = FleetRouter(fleet)
            router.register("A", csr, blocks=blocks)
            Y = router.spmm("A", X)
        assert np.array_equal(Y, Y_ref)

    def test_suite_matrix_parity(self):
        csr = suite_csr()
        rng = np.random.default_rng(3)
        x = rng.standard_normal(csr.ncols)
        with reference_client(csr) as ref:
            y_ref = ref.spmv("ref", x)
        with Fleet(4, mode="inproc", workers=1) as fleet:
            router = FleetRouter(fleet, replicas=2)
            router.register("A", csr)
            assert np.array_equal(router.spmv("A", x), y_ref)

    def test_cg_solve_identical_iterates(self):
        # CG over the routed operator must walk the exact same iterate
        # sequence as the single-server solve: bitwise x, same count
        csr = small_csr()
        b = np.ones(csr.ncols)
        with reference_client(csr) as ref:
            res_ref = ref.solve("ref", b, tol=1e-8)
        with Fleet(2, mode="inproc", workers=1) as fleet:
            router = FleetRouter(fleet)
            router.register("A", csr)
            res = router.solve("A", b, tol=1e-8)
        assert res["converged"] and res_ref["converged"]
        assert res["iterations"] == res_ref["iterations"]
        assert np.array_equal(res["x"], res_ref["x"])

    def test_rejects_bad_shapes(self):
        csr = small_csr()
        with Fleet(2, mode="inproc", workers=1) as fleet:
            router = FleetRouter(fleet)
            router.register("A", csr)
            with pytest.raises(ValueError):
                router.spmv("A", np.ones(csr.ncols + 1))
            with pytest.raises(ValueError):
                router.spmm("A", np.ones((3, csr.ncols)))

    def test_placement_partitions_by_nnz(self):
        csr = small_csr()
        with Fleet(2, mode="inproc", workers=1) as fleet:
            router = FleetRouter(fleet)
            pl = router.register("A", csr, blocks=2)
            assert pl.nblocks == 2
            (lo0, hi0), (lo1, hi1) = pl.partition
            assert lo0 == 0 and hi1 == csr.nrows and hi0 == lo1
            desc = pl.describe()
            assert len(desc["blocks"]) == 2


# ---------------------------------------------------------------------------
# process transport
# ---------------------------------------------------------------------------
class TestProcessShards:
    def test_spmv_parity_across_processes(self):
        csr = small_csr()
        rng = np.random.default_rng(0)
        x = rng.standard_normal(csr.ncols)
        with reference_client(csr) as ref:
            y_ref = ref.spmv("ref", x)
        with Fleet(2, mode="process", workers=1) as fleet:
            router = FleetRouter(fleet)
            router.register("A", csr)
            assert np.array_equal(router.spmv("A", x, timeout=60), y_ref)

    def test_killed_process_fails_over_to_replica(self):
        csr = small_csr()
        rng = np.random.default_rng(1)
        x = rng.standard_normal(csr.ncols)
        with reference_client(csr) as ref:
            y_ref = ref.spmv("ref", x)
        with Fleet(2, mode="process", workers=1) as fleet:
            router = FleetRouter(fleet, replicas=2)
            router.register("A", csr)
            assert np.array_equal(router.spmv("A", x, timeout=60), y_ref)
            fleet.kill(1)
            assert np.array_equal(router.spmv("A", x, timeout=60), y_ref)
            assert router.health()["status"] == "degraded"


# ---------------------------------------------------------------------------
# degradation: partial answers and hard failures
# ---------------------------------------------------------------------------
class TestDegradedAnswers:
    def test_partial_answer_zero_fills_missing_blocks(self):
        csr = small_csr()
        x = np.ones(csr.ncols)
        with reference_client(csr) as ref:
            y_ref = ref.spmv("ref", x)
        with Fleet(2, mode="inproc", workers=1) as fleet:
            router = FleetRouter(fleet, replicas=1, allow_partial=True)
            pl = router.register("A", csr, blocks=2)
            victim = pl.replicas[1][0]
            fleet.kill(victim)
            y, report = router.spmv_detail("A", x)
        assert report["status"] == "partial"
        assert report["missing_blocks"] == [1]
        lo, hi = pl.block_range(1)
        assert np.all(y[lo:hi] == 0.0)
        ok_lo, ok_hi = pl.block_range(0)
        assert np.array_equal(y[ok_lo:ok_hi], y_ref[ok_lo:ok_hi])

    def test_strict_mode_raises_fleet_degraded(self):
        csr = small_csr()
        with Fleet(2, mode="inproc", workers=1) as fleet:
            router = FleetRouter(fleet, replicas=1, allow_partial=False)
            pl = router.register("A", csr, blocks=2)
            fleet.kill(pl.replicas[0][0])
            with pytest.raises(FleetDegraded):
                router.spmv("A", np.ones(csr.ncols))

    def test_submitting_to_killed_shard_raises_shard_down(self):
        csr = small_csr()
        with Fleet(2, mode="inproc", workers=1) as fleet:
            fleet.shard(0).register_block("A", 0, csr, VARIANT)
            fleet.kill(0)
            with pytest.raises(ShardDown):
                fleet.shard(0).submit("A", 0, np.ones(csr.ncols))
            assert fleet.alive_ids() == [1]


# ---------------------------------------------------------------------------
# hedging
# ---------------------------------------------------------------------------
class TestHedging:
    def _paced_fleet(self, csr, nshards, service_s):
        bw = eq1_spmm_seconds(csr.nnz, csr.nrows, 1, 1.0) / service_s
        return Fleet(
            nshards,
            mode="inproc",
            workers=1,
            max_batch=1,
            max_delay_ms=0.0,
            pace={"bandwidth_bytes": bw, "per_request": True},
        )

    def test_router_hedges_slow_primary_and_stays_exact(self):
        csr = small_csr()
        rng = np.random.default_rng(5)
        x = rng.standard_normal(csr.ncols)
        with reference_client(csr) as ref:
            y_ref = ref.spmv("ref", x)
        with self._paced_fleet(csr, 2, service_s=0.12) as fleet:
            router = FleetRouter(fleet, replicas=2, hedge_delay_ms=5.0)
            router.register("A", csr, blocks=2)
            y, report = router.spmv_detail("A", x, timeout=30)
            assert np.array_equal(y, y_ref)
            # every block is paced well past the hedge delay, so the
            # router must have raced the replica of each block
            assert report["hedges"] >= 1
            assert router.stats()["hedges"] >= 1
            # losers were discarded, not leaked: a second request on a
            # clean fleet still answers exactly
            assert np.array_equal(router.spmv("A", x, timeout=30), y_ref)

    def test_client_hedge_cancels_queued_loser(self):
        # fault-injected slow replica: the worker consumes a slow_worker
        # event at startup, so the primary sits queued long enough for
        # the hedge to launch; the winner returns and the loser must be
        # cancelled, never surfacing a late result or error
        csr = small_csr()
        plan = FaultPlan(
            (FaultEvent("slow_worker", 0.1, layer="serve", delay_s=0.3),),
            name="slow-replica",
        )
        reg = MatrixRegistry(tune=False)
        reg.register("A", matrix=csr, variant=VARIANT)
        server = SpMVServer(
            reg, workers=1, max_batch=1, max_delay_ms=0.0,
            faults=plan.injector(),
        )
        client = Client(server)
        try:
            y_ref = csr.spmv(np.ones(csr.ncols))
            y = client.spmv_hedged(
                "A", np.ones(csr.ncols), hedges=1, hedge_delay_ms=10.0,
                timeout=30.0,
            )
            assert np.allclose(y, y_ref)
            # the loser is either cancelled while queued or absorbed if
            # a worker claimed it first — but always exactly one loser,
            # always accounted, and never a surfaced late error
            deadline = time.monotonic() + 5
            while (
                sum(client.hedge_outcomes.values()) == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            outcomes = dict(client.hedge_outcomes)
            assert sum(outcomes.values()) == 1, outcomes
            assert outcomes["cancelled"] + outcomes["late_ok"] == 1, outcomes
            assert outcomes["late_error"] == 0, outcomes
            # the server stays healthy for ordinary traffic afterwards
            assert np.allclose(client.spmv("A", np.ones(csr.ncols)), y_ref)
        finally:
            client.close()

    def test_client_absorbs_late_loser_error(self):
        # regression: a losing hedge whose error lands *after* the win
        # must be swallowed by the discard callback, not raised at the
        # next interaction with the client
        csr = small_csr()
        reg = MatrixRegistry(tune=False)
        reg.register("A", matrix=csr, variant=VARIANT)
        server = SpMVServer(reg, workers=1, max_batch=1, max_delay_ms=0.0)
        stuck: list[Future] = []
        real_submit = server.submit

        def submit(name, x, **kwargs):
            if not stuck:
                fut = Future()
                fut.set_running_or_notify_cancel()  # uncancellable
                stuck.append(fut)
                return fut
            return real_submit(name, x, **kwargs)

        server.submit = submit
        client = Client(server)
        try:
            y = client.spmv_hedged(
                "A", np.ones(csr.ncols), hedges=1, hedge_delay_ms=1.0,
                timeout=30.0,
            )
            assert np.allclose(y, csr.spmv(np.ones(csr.ncols)))
            assert client.hedge_outcomes["late_error"] == 0
            stuck[0].set_exception(RuntimeError("late replica failure"))
            deadline = time.monotonic() + 5
            while (
                client.hedge_outcomes["late_error"] == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert client.hedge_outcomes["late_error"] == 1
        finally:
            server.submit = real_submit
            client.close()


# ---------------------------------------------------------------------------
# fault-plan routing to shards
# ---------------------------------------------------------------------------
class TestPlanForShard:
    def test_filters_by_shard_and_strips_label(self):
        plan = FaultPlan.named("fleet", nranks=2, workers=1, delay_s=0.01)
        for_zero = plan_for_shard(plan, 0)
        # shard_kill is router-consumed, never shipped to a shard
        assert all(ev.kind != "shard_kill" for ev in for_zero)
        slow = [ev for ev in for_zero if ev.kind == "slow_worker"]
        assert len(slow) == 1
        assert "shard" not in slow[0].labels
        # shard 1 owns nothing after filtering: collapses to no plan
        assert plan_for_shard(plan, 1) is None

    def test_untargeted_events_reach_every_shard(self):
        plan = FaultPlan(
            (FaultEvent("kernel_exception", 0.1, layer="serve"),),
            name="wild",
        )
        for sid in (0, 1, 2):
            kinds = [ev.kind for ev in plan_for_shard(plan, sid)]
            assert kinds == ["kernel_exception"]

    def test_shard_config_is_frozen(self):
        cfg = ShardConfig(shard_id=0)
        with pytest.raises(Exception):
            cfg.shard_id = 1
        assert block_name("A", 2) == "A@2"


# ---------------------------------------------------------------------------
# the chaos drill: shard killed mid-load, SLO fires exactly once
# ---------------------------------------------------------------------------
class TestChaosDrill:
    def test_shard_kill_mid_load_keeps_answers_and_fires_slo_once(self):
        obs.enable()
        csr = small_csr()
        x = np.ones(csr.ncols)
        with reference_client(csr) as ref:
            y_ref = ref.spmv("ref", x)
        service_s = 0.15
        bw = eq1_spmm_seconds(csr.nnz // 2, csr.nrows // 2, 1, 1.0) / service_s
        monitor = SLOMonitor(
            default_fleet_slos(
                p99_latency_s=30.0,  # only the error-rate SLO may fire
                error_budget=0.001,
                window_s=10.0,
                fast_window_s=2.0,
            )
        )
        fleet = Fleet(
            2, mode="inproc", workers=1, max_batch=1, max_delay_ms=0.0,
            pace={"bandwidth_bytes": bw, "per_request": True},
        )
        router = FleetRouter(fleet, replicas=2)
        try:
            pl = router.register("A", csr, blocks=2)
            victim = pl.replicas[0][0]

            monitor.tick(now=0.0)  # baseline for the error-rate deltas
            for _ in range(3):  # healthy phase
                assert np.array_equal(router.spmv("A", x, timeout=30), y_ref)
            monitor.tick(now=1.0)

            # occupy the victim's only worker, then start a request that
            # queues behind it — guaranteed in flight when the kill lands
            plug = fleet.shard(victim).submit("A", 0, x)
            caught = {}

            def in_flight():
                caught["result"] = router.spmv_detail("A", x, timeout=30)

            t = threading.Thread(target=in_flight)
            t.start()
            time.sleep(0.05)
            plan = FaultPlan(
                (
                    FaultEvent(
                        "shard_kill", 0.1, layer="serve",
                        target={"shard": victim},
                    ),
                ),
                name="drill",
            )
            router.faults = plan.injector()
            # this request consumes the kill; it sees the victim down
            # before launching, so it routes cleanly to the survivor
            assert np.array_equal(router.spmv("A", x, timeout=30), y_ref)
            t.join(timeout=30)
            assert not t.is_alive()
            y_deg, report = caught["result"]
            assert np.array_equal(y_deg, y_ref)
            assert report["status"] == "degraded"
            assert report["failovers"] >= 1
            try:  # the plug died with its shard (or just beat the kill)
                plug.result(timeout=5)
            except Exception:
                pass

            monitor.tick(now=2.0)  # degraded traffic lands in this delta
            for _ in range(3):  # recovery phase: replica serves cleanly
                assert np.array_equal(router.spmv("A", x, timeout=30), y_ref)
            for now in (3.0, 4.0, 5.0, 6.0, 7.0):
                monitor.tick(now=now)

            alerts = [
                ev for ev in monitor.events()
                if ev["slo"] == "fleet-error-rate"
            ]
            assert [a["state"] for a in alerts] == ["firing", "resolved"]
            assert router.stats()["failovers"] >= 1
            assert router.health()["status"] == "degraded"
        finally:
            router.close()
            monitor.stop()


# ---------------------------------------------------------------------------
# autoscaler
# ---------------------------------------------------------------------------
class TestAutoscaler:
    POLICY = AutoscalePolicy(
        min_workers=1, max_workers=3, step=1, cooldown_s=5.0,
        queue_high=8.0, queue_low=1.0, scale_down_after=3,
    )

    def _rig(self, depths):
        fleet = Fleet(2, mode="inproc", workers=1)
        router = FleetRouter(fleet)
        router.shard_queue_depths = lambda: dict(depths)
        return fleet, router

    def test_queue_pressure_scales_up_until_bounded(self):
        depths = {0: 20.0, 1: 0.0}
        fleet, router = self._rig(depths)
        try:
            scaler = Autoscaler(router, policy=self.POLICY)
            made = scaler.evaluate(now=0.0)
            assert [d["shard"] for d in made] == [0]
            assert made[0]["direction"] == "up" and made[0]["to"] == 2
            # cooldown: pressure persists but no new decision yet
            assert scaler.evaluate(now=1.0) == []
            made = scaler.evaluate(now=10.0)
            assert made and made[0]["to"] == 3
            # bounded by max_workers
            assert scaler.evaluate(now=20.0) == []
            assert router.stats()["shards"][0]["workers"] == 3
        finally:
            router.close()

    def test_scale_down_needs_consecutive_calm(self):
        depths = {0: 20.0, 1: 0.0}
        fleet, router = self._rig(depths)
        try:
            scaler = Autoscaler(router, policy=self.POLICY)
            scaler.evaluate(now=0.0)  # shard 0 -> 2 workers
            depths[0] = 0.0
            assert scaler.evaluate(now=10.0) == []  # calm x1
            assert scaler.evaluate(now=11.0) == []  # calm x2
            made = scaler.evaluate(now=12.0)  # calm x3: shrink
            assert [d["direction"] for d in made] == ["down"]
            assert made[0]["to"] == 1
            # at min_workers already: stays put
            assert scaler.evaluate(now=30.0) == []
            assert scaler.evaluate(now=31.0) == []
            assert scaler.evaluate(now=32.0) == []
        finally:
            router.close()

    def test_firing_slo_forces_scale_up(self):
        class Monitor:
            def firing(self):
                return ["fleet-latency-p99"]

            def stop(self):
                pass

        fleet, router = self._rig({0: 0.0, 1: 0.0})
        try:
            scaler = Autoscaler(router, policy=self.POLICY, monitor=Monitor())
            made = scaler.evaluate(now=0.0)
            assert {d["shard"] for d in made} == {0, 1}
            assert all(d["reason"].startswith("slo:") for d in made)
        finally:
            router.close()

    def test_decisions_surface_in_stats_and_metrics(self):
        obs.enable()
        fleet, router = self._rig({0: 50.0, 1: 0.0})
        try:
            scaler = Autoscaler(router, policy=self.POLICY)
            router.attach_autoscaler(scaler)
            scaler.evaluate(now=0.0)
            stats = router.stats()
            assert stats["autoscaler"]["evaluations"] == 1
            assert stats["autoscaler"]["decisions"][-1]["direction"] == "up"
            fam = obs.get_registry().get("fleet_autoscale_decisions_total")
            assert fam is not None
            assert sum(c.value for _, c in fam.samples()) == 1
        finally:
            router.close()


# ---------------------------------------------------------------------------
# router stats / health surface
# ---------------------------------------------------------------------------
class TestFleetStats:
    def test_stats_shape(self):
        csr = small_csr()
        with Fleet(2, mode="inproc", workers=1) as fleet:
            router = FleetRouter(fleet, replicas=2)
            router.register("A", csr)
            router.spmv("A", np.ones(csr.ncols))
            stats = router.stats()
        assert stats["fleet"] is True
        assert stats["nshards"] == 2 and stats["replicas"] == 2
        assert stats["requests"]["ok"] == 1
        assert len(stats["shards"]) == 2
        assert "A" in stats["placements"]
        assert stats["latency_ms"] and all(
            v >= 0 for v in stats["latency_ms"].values()
        )

    def test_health_transitions(self):
        with Fleet(2, mode="inproc", workers=1) as fleet:
            router = FleetRouter(fleet)
            assert router.health()["status"] == "ok"
            fleet.kill(0)
            health = router.health()
            assert health["status"] == "degraded"
            assert health["shards_alive"] == [1]
            fleet.kill(1)
            assert router.health()["status"] == "down"
