"""Tests for the attribution profiler and the SLO burn-rate monitor.

Profiler: Eq.-1 model arithmetic, sample aggregation, the engine
integration (BoundMatrix feeds samples through the generation-keyed
hot-path cache), table rendering and metric publication.

SLO: spec validation, the three observation kinds (latency p99 over
Summary children, error-rate from counter deltas, queue-depth gauges),
the dual-window firing rule with a fake clock, the silence-is-health
NaN contract, and the alert event stream.

Prometheus: label-value and HELP escaping plus the Summary
``_sum``/``_count`` exposition the exporter must emit.
"""

import math

import numpy as np
import pytest

from repro import obs
from repro.obs.profile import (
    KernelSample,
    KernelStats,
    Profiler,
    model_bytes_per_flop,
    render_table,
)
from repro.obs.slo import SLOMonitor, SLOSpec, default_serve_slos
from repro.perfmodel.balance import code_balance_dp

from _test_common import random_coo


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset_all()
    yield
    obs.disable()
    obs.reset_all()


@pytest.fixture
def enabled():
    obs.enable()
    yield


# ---------------------------------------------------------------------------
# profiler model arithmetic + aggregation
# ---------------------------------------------------------------------------


class TestProfilerMath:
    def test_model_bytes_per_flop_is_eq1_lower_bound(self):
        # alpha = 1/Nnzr: B = 6 + 4/Nnzr + 8/Nnzr
        for nnzr in (1.0, 7.0, 50.0):
            assert model_bytes_per_flop(nnzr) == pytest.approx(
                6.0 + 12.0 / nnzr
            )
        assert model_bytes_per_flop(10.0, alpha=1.0) == pytest.approx(
            code_balance_dp(1.0, 10.0)
        )

    def test_kernel_stats_aggregation(self):
        st = KernelStats("m", "CRS", "v", "spmv")
        for sec in (2e-3, 1e-3, 3e-3):
            st.calls += 1
            st.add(KernelSample("m", "CRS", "v", "spmv", sec, nnz=500_000,
                                nnzr=10.0))
        assert st.samples == 3 and st.calls == 3
        assert st.best_s == 1e-3
        assert st.total_s == pytest.approx(6e-3)
        want_gflops = 2 * 500_000 / 1e-3 / 1e9
        assert st.achieved_gflops == pytest.approx(want_gflops)
        assert st.achieved_gbs == pytest.approx(want_gflops * st.balance)
        assert st.model_gflops(10.0) == pytest.approx(10.0 / st.balance)
        assert st.efficiency(10.0) == pytest.approx(
            want_gflops / (10.0 / st.balance)
        )
        row = st.row(10.0)
        assert row["matrix"] == "m" and row["best_ms"] == pytest.approx(1.0)

    def test_spmm_flops_scale_with_block(self):
        st = KernelStats("m", "CRS", "v", "spmm")
        st.add(KernelSample("m", "CRS", "v", "spmm", 1e-3, nnz=1000,
                            nnzr=5.0, block=8))
        assert st.flops == 2.0 * 1000 * 8

    def test_table_sorted_by_total_time(self):
        p = Profiler()
        p.set_reference_bandwidth(10.0)
        p.record(KernelSample("light", "CRS", "v", "spmv", 1e-4, 100, 5.0))
        for _ in range(5):
            p.record(KernelSample("heavy", "CRS", "v", "spmv", 1e-3, 100, 5.0))
        rows = p.table()
        assert [r["matrix"] for r in rows] == ["heavy", "light"]
        assert rows[0]["model_bw_gbs"] == 10.0

    def test_reset_bumps_generation(self):
        p = Profiler()
        g = p.generation
        p.reset()
        assert p.generation == g + 1

    def test_set_sample_every_rejects_negative(self):
        with pytest.raises(ValueError):
            obs.profile.set_sample_every(-1)

    def test_render_table(self):
        p = Profiler()
        p.set_reference_bandwidth(10.0)
        p.record(KernelSample("sAMG", "pJDS", "jds_scipy", "spmv",
                              1e-3, 120_000, 7.3))
        text = render_table(p.table())
        assert "GF/s" in text and "eff" in text
        assert "sAMG" in text and "jds_scipy" in text
        assert "model bandwidth: 10.0 GB/s" in text
        assert "(no kernel samples recorded)" in render_table([])


class TestEngineIntegration:
    def _bound(self, label="tiny"):
        from repro.engine import bind
        from repro.formats import CSRMatrix

        csr = CSRMatrix.from_coo(random_coo(50, seed=11, max_row=6))
        return bind(csr, tune=False, label=label), csr

    def test_spmv_feeds_attribution_table(self, enabled):
        b, csr = self._bound()
        x = np.ones(csr.ncols)
        for _ in range(4):
            b.spmv(x)
        rows = obs.profile.attribution_table(bandwidth_gbs=10.0)
        assert len(rows) == 1
        r = rows[0]
        assert r["matrix"] == "tiny" and r["op"] == "spmv"
        assert r["calls"] == 4 and r["samples"] == 4
        assert r["nnz"] == csr.nnz
        assert r["achieved_gflops"] > 0

    def test_sample_every_thins_but_counts_all_calls(self, enabled):
        obs.profile.set_sample_every(4)
        try:
            b, csr = self._bound()
            x = np.ones(csr.ncols)
            for _ in range(8):
                b.spmv(x)
            rows = obs.profile.attribution_table(bandwidth_gbs=10.0)
            assert rows[0]["calls"] == 8
            assert rows[0]["samples"] == 2  # calls 1 and 5
        finally:
            obs.profile.set_sample_every(1)

    def test_disabled_records_nothing(self):
        b, csr = self._bound()
        b.spmv(np.ones(csr.ncols))
        obs.enable()
        assert obs.profile.attribution_table(bandwidth_gbs=10.0) == []

    def test_profile_reset_invalidates_handle_cache(self, enabled):
        b, csr = self._bound()
        x = np.ones(csr.ncols)
        b.spmv(x)
        obs.profile.reset_profile()
        b.spmv(x)
        rows = obs.profile.attribution_table(bandwidth_gbs=10.0)
        assert rows[0]["calls"] == 1  # stale slot dropped with the cache

    def test_publish_exports_gauges(self, enabled):
        b, csr = self._bound()
        b.spmv(np.ones(csr.ncols))
        n = obs.profile.publish_metrics(bandwidth_gbs=10.0)
        assert n == 1
        text = obs.prometheus_text()
        assert 'profile_achieved_gbs{format="CRS"' in text
        assert "profile_kernel_calls" in text


# ---------------------------------------------------------------------------
# SLO monitor
# ---------------------------------------------------------------------------


class TestSLOSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            SLOSpec("x", "latency_p50", 0.1, "m")
        with pytest.raises(ValueError, match="budget"):
            SLOSpec("x", "latency_p99", 0.1, "m", budget=0.0)
        with pytest.raises(ValueError, match="window"):
            SLOSpec("x", "latency_p99", 0.1, "m", window_s=1.0,
                    fast_window_s=2.0)

    def test_default_serve_slos(self):
        specs = default_serve_slos(p99_latency_s=0.25)
        assert [s.kind for s in specs] == [
            "latency_p99", "error_rate", "queue_depth",
        ]
        assert specs[0].objective == 0.25
        assert specs[0].metric == "serve_request_seconds"


def _clock(t):
    return lambda: t[0]


class TestSLOMonitor:
    def test_latency_p99_fires_and_resolves(self, enabled):
        t = [0.0]
        spec = SLOSpec("lat", "latency_p99", 0.1, "serve_request_seconds",
                       budget=0.5, window_s=8.0, fast_window_s=2.0)
        mon = SLOMonitor([spec], clock=_clock(t))
        for _ in range(50):
            obs.observe_summary("serve_request_seconds", 0.01, matrix="A")
        for _ in range(3):
            t[0] += 1.0
            state = mon.tick()
        assert state["firing"] == [] and mon.firing() == []

        for _ in range(2000):
            obs.observe_summary("serve_request_seconds", 0.5, matrix="A")
        for _ in range(4):
            t[0] += 1.0
            state = mon.tick()
        assert state["firing"] == ["lat"]
        events = mon.events()
        assert events and events[-1]["state"] == "firing"
        assert events[-1]["slo"] == "lat"
        # alert transitions are themselves metrics
        assert 'slo_alerts_total{slo="lat",state="firing"}' in (
            obs.prometheus_text()
        )

        # flood healthy and let the violating samples age out
        for _ in range(5000):
            obs.observe_summary("serve_request_seconds", 0.01, matrix="A")
        for _ in range(12):
            t[0] += 1.0
            mon.tick()
        assert mon.firing() == []
        assert mon.events()[-1]["state"] == "resolved"

    def test_error_rate_uses_deltas_not_lifetime(self, enabled):
        t = [0.0]
        spec = SLOSpec("err", "error_rate", 0.2, "serve_requests_total",
                       budget=0.4, window_s=8.0, fast_window_s=1.0)
        mon = SLOMonitor([spec], clock=_clock(t))
        obs.inc("serve_requests_total", 98, status="ok")
        obs.inc("serve_requests_total", 2, status="error")
        mon.tick()  # first tick only establishes the baseline
        assert math.isnan(mon.state()["slos"][0]["value"] or math.nan) or \
            mon.state()["slos"][0]["value"] is None

        obs.inc("serve_requests_total", 1, status="ok")
        obs.inc("serve_requests_total", 9, status="error")
        t[0] += 1.0
        state = mon.tick()
        # lifetime error rate is ~10%; the delta is 90% — deltas win
        assert state["slos"][0]["value"] == pytest.approx(0.9)
        assert state["firing"] == ["err"]

    def test_idle_is_healthy(self, enabled):
        t = [0.0]
        spec = SLOSpec("err", "error_rate", 0.2, "serve_requests_total",
                       budget=0.1, window_s=8.0, fast_window_s=1.0)
        mon = SLOMonitor([spec], clock=_clock(t))
        for _ in range(10):
            t[0] += 1.0
            state = mon.tick()
        # metric never published: every sample NaN, nothing fires
        assert state["firing"] == []
        assert state["slos"][0]["value"] is None
        assert state["slos"][0]["samples"] > 0

    def test_queue_depth_worst_gauge(self, enabled):
        t = [0.0]
        spec = SLOSpec("q", "queue_depth", 64, "serve_queue_depth",
                       budget=0.5, window_s=4.0, fast_window_s=1.0)
        mon = SLOMonitor([spec], clock=_clock(t))
        obs.set_gauge("serve_queue_depth", 100)
        for _ in range(3):
            t[0] += 1.0
            state = mon.tick()
        assert state["slos"][0]["value"] == 100.0
        assert state["firing"] == ["q"]

    def test_add_rejects_duplicates(self):
        mon = SLOMonitor(default_serve_slos())
        with pytest.raises(ValueError, match="already registered"):
            mon.add(default_serve_slos()[0])

    def test_background_thread_ticks(self, enabled):
        mon = SLOMonitor(default_serve_slos())
        mon.start(interval_s=0.01)
        try:
            import time as _time

            deadline = _time.monotonic() + 5.0
            while mon.ticks < 3 and _time.monotonic() < deadline:
                _time.sleep(0.01)
        finally:
            mon.stop()
        assert mon.ticks >= 3
        assert mon.state()["ticks"] >= 3


# ---------------------------------------------------------------------------
# prometheus exposition details
# ---------------------------------------------------------------------------


class TestPrometheusEscaping:
    def test_label_values_escaped(self, enabled):
        obs.inc("weird_total", 1, path='a\\b"c\nd')
        text = obs.prometheus_text()
        line = [ln for ln in text.splitlines() if ln.startswith("weird_total{")]
        assert line == ['weird_total{path="a\\\\b\\"c\\nd"} 1']
        # and the parser reads the original value back
        parsed = obs.parse_prometheus_text(text)
        samples = parsed["weird_total"]["samples"]
        assert samples[("weird_total", (("path", 'a\\b"c\nd'),))] == 1

    def test_help_text_escaped(self, enabled):
        obs.counter("multi_total", "line one\nline two \\ done").inc(1)
        text = obs.prometheus_text()
        help_line = [
            ln for ln in text.splitlines()
            if ln.startswith("# HELP multi_total")
        ][0]
        assert "\n" not in help_line[1:]  # single physical line
        assert help_line == "# HELP multi_total line one\\nline two \\\\ done"

    def test_summary_emits_quantiles_sum_and_count(self, enabled):
        for v in (0.1, 0.2, 0.3, 0.4):
            obs.observe_summary("lat_seconds", v, matrix="A")
        text = obs.prometheus_text()
        assert 'lat_seconds{matrix="A",quantile="0.99"}' in text
        assert 'lat_seconds_count{matrix="A"} 4' in text
        sum_line = [
            ln for ln in text.splitlines()
            if ln.startswith('lat_seconds_sum{matrix="A"}')
        ][0]
        assert float(sum_line.split()[-1]) == pytest.approx(1.0)
