"""Property-based tests (hypothesis) on the core format invariants.

Strategy: generate arbitrary small sparse matrices as COO triplets and
assert that every format agrees with the dense oracle, that round
trips are lossless and that the storage accounting invariants hold.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    JDSMatrix,
    Permutation,
    PJDSMatrix,
    SELLMatrix,
    block_padded_lengths,
    descending_row_sort,
    windowed_row_sort,
)
from repro.formats import COOMatrix, convert

from _test_common import ALL_FORMATS


@st.composite
def coo_matrices(draw, max_n: int = 24, square: bool = True):
    n = draw(st.integers(1, max_n))
    m = n if square else draw(st.integers(1, max_n))
    nnz = draw(st.integers(0, n * m))
    if nnz:
        # distinct flat positions guarantee no duplicates
        flat = draw(
            st.lists(
                st.integers(0, n * m - 1), min_size=nnz, max_size=nnz, unique=True
            )
        )
        flat = np.asarray(flat, dtype=np.int64)
        rows, cols = flat // m, flat % m
        vals = np.asarray(
            draw(
                st.lists(
                    st.floats(-100, 100, allow_nan=False, width=64),
                    min_size=nnz,
                    max_size=nnz,
                )
            )
        )
    else:
        rows = np.empty(0, np.int64)
        cols = np.empty(0, np.int64)
        vals = np.empty(0, np.float64)
    return COOMatrix(rows, cols, vals, (n, m), sum_duplicates=False)


@st.composite
def length_arrays(draw):
    return np.asarray(
        draw(st.lists(st.integers(0, 40), min_size=1, max_size=60)), dtype=np.int64
    )


class TestSpmvOracle:
    @settings(max_examples=40, deadline=None)
    @given(coo=coo_matrices(), seed=st.integers(0, 10))
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_matches_dense(self, coo, seed, fmt):
        m = convert(coo, fmt)
        x = np.random.default_rng(seed).normal(size=coo.ncols)
        assert np.allclose(m.spmv(x), coo.todense() @ x, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(coo=coo_matrices())
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_roundtrip_lossless(self, coo, fmt):
        m = convert(coo, fmt)
        assert np.array_equal(m.to_coo().todense(), coo.todense())

    @settings(max_examples=40, deadline=None)
    @given(coo=coo_matrices())
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_nnz_preserved(self, coo, fmt):
        assert convert(coo, fmt).nnz == coo.nnz

    @settings(max_examples=40, deadline=None)
    @given(coo=coo_matrices())
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_row_lengths_preserved(self, coo, fmt):
        m = convert(coo, fmt)
        assert np.array_equal(m.row_lengths(), coo.row_lengths())


class TestLinearity:
    @settings(max_examples=30, deadline=None)
    @given(coo=coo_matrices(), a=st.floats(-5, 5, allow_nan=False))
    def test_pjds_linear(self, coo, a):
        p = convert(coo, "pJDS", block_rows=4)
        rng = np.random.default_rng(0)
        x = rng.normal(size=coo.ncols)
        y = rng.normal(size=coo.ncols)
        lhs = p.spmv(a * x + y)
        rhs = a * p.spmv(x) + p.spmv(y)
        assert np.allclose(lhs, rhs, atol=1e-8)


class TestStorageInvariants:
    @settings(max_examples=50, deadline=None)
    @given(coo=coo_matrices(), br=st.integers(1, 16))
    def test_pjds_between_jds_and_ellpack(self, coo, br):
        """nnz <= JDS = nnz <= pJDS <= ELLPACK rectangle."""
        p = PJDSMatrix.from_coo(coo, block_rows=br)
        j = JDSMatrix.from_coo(coo)
        width = int(coo.row_lengths().max()) if coo.nnz else 0
        assert j.total_slots == coo.nnz
        assert coo.nnz <= p.total_slots <= coo.nrows * max(width, 0) or coo.nnz == 0

    @settings(max_examples=50, deadline=None)
    @given(coo=coo_matrices(), br=st.integers(1, 16))
    def test_pjds_padded_dominates_true(self, coo, br):
        p = PJDSMatrix.from_coo(coo, block_rows=br)
        assert np.all(p.padded_lengths >= p.rowmax)
        assert np.all(np.diff(p.padded_lengths) <= 0)

    @settings(max_examples=50, deadline=None)
    @given(coo=coo_matrices(), c=st.integers(1, 16), sigma=st.integers(1, 40))
    def test_sell_slots_cover_nnz(self, coo, c, sigma):
        s = SELLMatrix.from_coo(coo, chunk_rows=c, sigma=sigma)
        assert s.total_slots >= coo.nnz

    @settings(max_examples=50, deadline=None)
    @given(lengths=length_arrays(), br=st.integers(1, 12))
    def test_block_padding_properties(self, lengths, br):
        sorted_l = np.sort(lengths)[::-1]
        padded = block_padded_lengths(sorted_l, br)
        assert np.all(padded >= sorted_l)
        assert np.all(np.diff(padded) <= 0)
        # padding never exceeds the block maximum rule
        nblocks = -(-len(sorted_l) // br)
        for b in range(nblocks):
            blk = slice(b * br, (b + 1) * br)
            assert np.all(padded[blk] == sorted_l[blk].max())


class TestSortingProperties:
    @settings(max_examples=60, deadline=None)
    @given(lengths=length_arrays())
    def test_descending_sort_is_permutation(self, lengths):
        perm = descending_row_sort(lengths)
        assert np.array_equal(np.sort(perm), np.arange(len(lengths)))
        assert np.all(np.diff(lengths[perm]) <= 0)

    @settings(max_examples=60, deadline=None)
    @given(lengths=length_arrays(), sigma=st.integers(1, 70))
    def test_windowed_sort_is_permutation(self, lengths, sigma):
        perm = windowed_row_sort(lengths, sigma)
        assert np.array_equal(np.sort(perm), np.arange(len(lengths)))

    @settings(max_examples=60, deadline=None)
    @given(lengths=length_arrays())
    def test_permutation_involution(self, lengths):
        p = Permutation(descending_row_sort(lengths))
        x = np.arange(len(lengths), dtype=float)
        assert np.allclose(p.to_original(p.to_permuted(x)), x)


class TestVerifierProperty:
    """Every instance any format builds from any matrix passes the
    structural invariant checker — the strongest cross-cutting property."""

    @settings(max_examples=30, deadline=None)
    @given(coo=coo_matrices())
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_all_instances_verify(self, coo, fmt):
        from repro.formats import verify_format

        verify_format(convert(coo, fmt))

    @settings(max_examples=20, deadline=None)
    @given(coo=coo_matrices(), br=st.integers(1, 8), sigma=st.integers(1, 30))
    def test_pjds_sigma_instances_verify(self, coo, br, sigma):
        from repro.formats import verify_format

        verify_format(convert(coo, "pJDS", block_rows=br, sigma=sigma))

    @settings(max_examples=20, deadline=None)
    @given(coo=coo_matrices(), t=st.sampled_from([1, 2, 4, 8]))
    def test_ellr_t_instances_verify(self, coo, t):
        from repro.formats import verify_format

        verify_format(convert(coo, "ELLR-T", threads_per_row=t))


@st.composite
def dense_arrays(draw, max_n: int = 10):
    """Dense float64 arrays biased toward the format edge cases:
    empty rows, fully dense rows, 0x0 and single-column shapes."""
    n = draw(st.integers(0, max_n))
    m = draw(st.sampled_from([0, 1, draw(st.integers(1, max_n))]))
    if n == 0 or m == 0:
        # the shape contract only admits the fully degenerate matrix
        return np.zeros((0, 0))
    seed = draw(st.integers(0, 2**16))
    density = draw(st.floats(0.0, 1.0))
    rng = np.random.default_rng(seed)
    d = np.where(
        rng.random((n, m)) < density, rng.standard_normal((n, m)), 0.0
    )
    kind = draw(st.sampled_from(["as-is", "empty-rows", "dense-row"]))
    if kind == "empty-rows" and n > 1:
        d[:: draw(st.integers(2, 3))] = 0.0
    elif kind == "dense-row":
        r = draw(st.integers(0, n - 1))
        d[r] = rng.standard_normal(m)
        d[r][d[r] == 0] = 1.0  # keep the row genuinely dense
    return d


class TestDenseRoundTripNewFormats:
    """Satellite: ``dense -> {CMRS, ARG-CSR} -> dense`` is *bitwise*
    exact (``from_dense`` drops explicit zeros; every surviving value
    must come back with identical float bits), and converting through
    any other registered format commutes with ``to_dense``."""

    @settings(max_examples=60, deadline=None)
    @given(d=dense_arrays(), hs=st.integers(1, 9))
    def test_cmrs_dense_roundtrip_bitwise(self, d, hs):
        from repro.formats import CMRSMatrix

        m = CMRSMatrix.from_dense(d, strip_height=hs)
        back = m.to_dense()
        assert np.array_equal(back, d)
        mask = d != 0
        assert back[mask].tobytes() == d[mask].tobytes()

    @settings(max_examples=60, deadline=None)
    @given(d=dense_arrays())
    def test_argcsr_dense_roundtrip_bitwise(self, d):
        from repro.formats import ARGCSRMatrix

        m = ARGCSRMatrix.from_dense(d)
        back = m.to_dense()
        assert np.array_equal(back, d)
        mask = d != 0
        assert back[mask].tobytes() == d[mask].tobytes()

    @pytest.mark.parametrize("fmt", ["CMRS", "ARG-CSR"])
    def test_edge_shapes(self, fmt):
        from repro.formats import ARGCSRMatrix, CMRSMatrix

        cls = {"CMRS": CMRSMatrix, "ARG-CSR": ARGCSRMatrix}[fmt]
        cases = [
            np.zeros((0, 0)),  # degenerate
            np.zeros((7, 4)),  # every row empty
            np.ones((5, 1)),  # single column, fully dense
            np.arange(1.0, 37.0).reshape(6, 6),  # fully dense rows
        ]
        for d in cases:
            m = cls.from_dense(d)
            assert np.array_equal(m.to_dense(), d)
            assert m.nnz == int(np.count_nonzero(d))

    @settings(max_examples=40, deadline=None)
    @given(coo=coo_matrices(max_n=14), src=st.sampled_from(ALL_FORMATS))
    @pytest.mark.parametrize("dst", ["CMRS", "ARG-CSR"])
    def test_cross_format_conversion_commutes(self, coo, src, dst):
        """to_dense after src -> dst conversion == to_dense after src
        alone (values travel, never recomputed: bitwise equal)."""
        m_src = convert(coo, src)
        m_dst = convert(m_src, dst)
        a, b = m_src.to_dense(), m_dst.to_dense()
        assert np.array_equal(a, b)
        assert a.tobytes() == b.tobytes()


class TestDuplicateSemantics:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(1, 10),
        entries=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9), st.floats(-10, 10, allow_nan=False)),
            max_size=40,
        ),
    )
    def test_duplicate_summing_matches_dense(self, n, entries):
        dense = np.zeros((n, n))
        rows, cols, vals = [], [], []
        for r, c, v in entries:
            if r < n and c < n:
                rows.append(r)
                cols.append(c)
                vals.append(v)
                dense[r, c] += v
        coo = COOMatrix(rows, cols, vals, (n, n))
        assert np.allclose(coo.todense(), dense, atol=1e-12)


class TestIOProperties:
    @settings(max_examples=25, deadline=None)
    @given(coo=coo_matrices(square=False))
    def test_matrix_market_roundtrip(self, coo, tmp_path_factory):
        import io

        from repro.matrices import read_matrix_market, write_matrix_market

        buf = io.StringIO()
        write_matrix_market(coo, buf)
        buf.seek(0)
        back = read_matrix_market(buf)
        assert back.shape == coo.shape
        assert np.allclose(back.todense(), coo.todense(), atol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(coo=coo_matrices())
    def test_npz_cache_roundtrip(self, coo, tmp_path_factory):
        from repro.matrices import load_coo, save_coo

        path = tmp_path_factory.mktemp("cache") / "m.npz"
        save_coo(coo, path)
        back = load_coo(path)
        assert np.array_equal(back.todense(), coo.todense())


class TestOperatorProperties:
    @settings(max_examples=25, deadline=None)
    @given(coo=coo_matrices(max_n=16), k=st.integers(1, 4))
    def test_spmm_is_columnwise_spmv(self, coo, k):
        m = convert(coo, "pJDS", block_rows=4)
        X = np.random.default_rng(0).normal(size=(coo.ncols, k))
        Y = m.spmm(X)
        for j in range(k):
            assert np.allclose(Y[:, j], coo.spmv(X[:, j].copy()), atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(coo=coo_matrices(max_n=16), br=st.integers(1, 8))
    def test_permuted_basis_identity(self, coo, br):
        """P^T (A~ (P x)) == A x for every matrix and block size."""
        p = convert(coo, "pJDS", block_rows=br)
        x = np.random.default_rng(1).normal(size=coo.ncols)
        direct = p.spmv(x)
        perm = p.permutation
        via_permuted = perm.to_original(p.spmv_permuted(perm.to_permuted(x)))
        assert np.allclose(direct, via_permuted, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(coo=coo_matrices(max_n=16))
    def test_diagonal_matches_dense(self, coo):
        assert np.allclose(coo.diagonal(), np.diag(coo.todense()))


# ---------------------------------------------------------------------------
# Sect. III halo-exchange invariants (distributed communication plan)
# ---------------------------------------------------------------------------


def _plan_for(coo, nparts):
    from repro.distributed import build_plan, partition_rows
    from repro.formats import CSRMatrix

    csr = CSRMatrix.from_coo(coo)
    nparts = max(1, min(nparts, csr.nrows))
    part = partition_rows(csr.nrows, nparts, row_weights=csr.row_lengths())
    return csr, build_plan(csr, part)


class TestHaloExchangeProperties:
    """The communication plan's exchange invariants, for arbitrary
    matrices and partition counts:

    * every nonlocal column a rank touches is covered by **exactly one**
      incoming message (no gaps, no duplicate coverage),
    * messages are symmetric (``src`` sends exactly what ``dst``
      expects) and never self-directed,
    * the per-source halo segments concatenate to the rank's sorted
      halo layout,
    * reassembling the per-rank products reproduces the serial result.
    """

    @settings(max_examples=30, deadline=None)
    @given(coo=coo_matrices(max_n=24), nparts=st.integers(2, 4))
    def test_every_nonlocal_column_covered_exactly_once(self, coo, nparts):
        csr, plan = _plan_for(coo, nparts)
        for p in plan.ranks:
            lo, hi = p.row_range
            # the columns this rank's rows reference remotely — taken
            # from the *structure* (explicitly stored zeros still need
            # their halo slot)
            mine = (coo.rows >= lo) & (coo.rows < hi)
            cols_touched = set(
                int(c)
                for c in coo.cols[mine]
                if not (lo <= c < hi)
            )
            covered: list[int] = []
            for src, cols in p.recv_cols.items():
                assert src != p.rank, "self-directed halo message"
                s_lo, s_hi = plan.ranks[src].row_range
                assert np.all((cols >= s_lo) & (cols < s_hi)), (
                    "halo columns outside the source rank's row range"
                )
                assert np.all(np.diff(cols) > 0), "per-source cols not sorted-unique"
                covered.extend(int(c) for c in cols)
            # exactly once: no duplicates across sources, no gaps
            assert len(covered) == len(set(covered))
            assert set(covered) == cols_touched

    @settings(max_examples=30, deadline=None)
    @given(coo=coo_matrices(max_n=24), nparts=st.integers(2, 4))
    def test_send_recv_symmetry(self, coo, nparts):
        _, plan = _plan_for(coo, nparts)
        for p in plan.ranks:
            for src, cols in p.recv_cols.items():
                s_lo, _ = plan.ranks[src].row_range
                sent = plan.ranks[src].send_cols.get(p.rank)
                assert sent is not None, "source has no matching send"
                # send_cols are local to the source's row offset
                assert np.array_equal(sent + s_lo, cols)

    @settings(max_examples=30, deadline=None)
    @given(coo=coo_matrices(max_n=24), nparts=st.integers(2, 4))
    def test_halo_layout_is_sorted_concatenation(self, coo, nparts):
        _, plan = _plan_for(coo, nparts)
        for p in plan.ranks:
            if p.halo_cols is None:
                assert p.halo_size == 0
                continue
            segments = [p.recv_cols[src] for src in sorted(p.recv_cols)]
            concat = (
                np.concatenate(segments)
                if segments
                else np.empty(0, dtype=np.int64)
            )
            assert np.array_equal(p.halo_cols, concat)
            if p.halo_cols.size:
                assert np.all(np.diff(p.halo_cols) > 0)

    @settings(max_examples=25, deadline=None)
    @given(coo=coo_matrices(max_n=24), nparts=st.integers(2, 4), seed=st.integers(0, 5))
    def test_reassembled_result_matches_serial(self, coo, nparts, seed):
        from repro.distributed import rank_spmv

        csr, plan = _plan_for(coo, nparts)
        x = np.random.default_rng(seed).normal(size=csr.ncols)
        parts = []
        for p in plan.ranks:
            lo, hi = p.row_range
            if p.halo_cols is not None and p.halo_cols.size:
                halo = np.ascontiguousarray(x[p.halo_cols])
            else:
                width = p.nonlocal_matrix.ncols if p.nonlocal_matrix else 1
                halo = np.zeros(width, dtype=x.dtype)
            parts.append(rank_spmv(p, x[lo:hi], halo))
        assert np.allclose(np.concatenate(parts), csr.spmv(x), atol=1e-9)


# ---------------------------------------------------------------------------
# fault-plan schedule invariants (chaos harness input)
# ---------------------------------------------------------------------------


class TestFaultPlanProperties:
    """Generated chaos schedules obey the plan contract for every seed:
    sorted by schedule time, inside the horizon, targets within the
    topology, and bit-for-bit stable under replay."""

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        nranks=st.integers(1, 8),
        horizon=st.floats(0.05, 10.0, allow_nan=False),
        mepk=st.integers(1, 4),
        workers=st.integers(1, 4),
    )
    def test_generated_schedule_invariants(self, seed, nranks, horizon, mepk, workers):
        from repro.faults import DISTRIBUTED_KINDS, FAULT_KINDS, FaultPlan

        plan = FaultPlan.generate(
            seed,
            nranks=nranks,
            kinds=FAULT_KINDS,
            horizon=horizon,
            max_events_per_kind=mepk,
            workers=workers,
        )
        plan.validate()  # sorted + within horizon + replay-stable
        whens = [ev.when for ev in plan]
        assert whens == sorted(whens)
        for ev in plan:
            assert 0 <= ev.when < horizon
            labels = ev.labels
            if "rank" in labels:
                assert 0 <= labels["rank"] < nranks
            if "dst" in labels:
                assert 0 <= labels["dst"] < nranks
                assert labels["dst"] != labels["rank"]
            if "worker" in labels:
                assert 0 <= labels["worker"] < max(1, workers)
            if ev.kind in DISTRIBUTED_KINDS:
                assert ev.layer == "distributed"

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), nranks=st.integers(1, 6))
    def test_same_seed_replays_identically(self, seed, nranks):
        from repro.faults import FaultPlan

        a = FaultPlan.generate(seed, nranks=nranks)
        b = FaultPlan.generate(seed, nranks=nranks)
        assert a.events == b.events
        assert a.describe() == b.describe()

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_reconstruction_from_own_events_is_stable(self, seed):
        from repro.faults import FaultPlan

        plan = FaultPlan.generate(seed)
        again = FaultPlan(plan.events, name=plan.name, seed=plan.seed,
                          horizon=plan.horizon)
        assert again.events == plan.events
