"""Tests for timeline records and the Fig. 4 ASCII rendering."""

import pytest

from repro.distributed import Interval, Timeline, render_timeline


class TestInterval:
    def test_duration(self):
        iv = Interval(0, "gpu", "kernel", 1.0, 3.5)
        assert iv.duration == 2.5

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="ends before"):
            Interval(0, "gpu", "kernel", 2.0, 1.0)

    def test_zero_duration_allowed(self):
        iv = Interval(0, "thread0", "Irecv", 1.0, 1.0)
        assert iv.duration == 0.0


class TestTimeline:
    def test_add_returns_end(self):
        tl = Timeline()
        end = tl.add(0, "gpu", "a", 0.0, 2.0)
        assert end == 2.0
        assert len(tl.intervals) == 1

    def test_makespan(self):
        tl = Timeline()
        tl.add(0, "gpu", "a", 0.0, 2.0)
        tl.add(1, "gpu", "b", 1.0, 5.0)
        assert tl.makespan == 6.0

    def test_makespan_empty(self):
        assert Timeline().makespan == 0.0

    def test_resources_ordered_first_seen(self):
        tl = Timeline()
        tl.add(0, "thread0", "x", 0, 1)
        tl.add(0, "gpu", "y", 0, 1)
        tl.add(0, "thread0", "z", 1, 1)
        assert tl.resources(0) == ["thread0", "gpu"]

    def test_for_rank_filters(self):
        tl = Timeline()
        tl.add(0, "gpu", "a", 0, 1)
        tl.add(1, "gpu", "b", 0, 1)
        assert [iv.label for iv in tl.for_rank(1)] == ["b"]

    def test_busy_seconds(self):
        tl = Timeline()
        tl.add(0, "pcie", "ul", 0, 2)
        tl.add(0, "pcie", "dl", 5, 3)
        tl.add(1, "pcie", "ul", 0, 7)
        assert tl.busy_seconds("pcie") == 12
        assert tl.busy_seconds("pcie", rank=0) == 5
        assert tl.busy_seconds("gpu") == 0


class TestRender:
    def test_renders_all_lanes(self):
        tl = Timeline()
        tl.add(0, "thread0", "MPI_Waitall", 0.0, 5e-6)
        tl.add(0, "gpu", "local spMVM", 0.0, 1e-5)
        tl.add(0, "gpu", "nonlocal", 1e-5, 5e-6)
        art = render_timeline(tl, rank=0)
        lines = art.splitlines()
        assert len(lines) == 3  # header + two lanes
        assert "thread0" in art and "gpu" in art

    def test_labels_embedded(self):
        tl = Timeline()
        tl.add(0, "gpu", "spMVM", 0.0, 1.0)
        art = render_timeline(tl, rank=0, width=60)
        assert "spMVM" in art

    def test_proportional_layout(self):
        tl = Timeline()
        tl.add(0, "gpu", "a", 0.0, 1.0)
        tl.add(0, "gpu", "b", 9.0, 1.0)
        art = render_timeline(tl, rank=0, width=60)
        lane = art.splitlines()[1]
        bar = lane.split("|")[1]
        # early block at the left edge, late block at the right edge
        assert bar[:1] != " "
        assert bar.rstrip()[-1] != " "
        assert "  " in bar  # gap in between

    def test_missing_rank(self):
        tl = Timeline()
        tl.add(0, "gpu", "a", 0, 1)
        assert "no events" in render_timeline(tl, rank=5)

    def test_header_reports_duration(self):
        tl = Timeline()
        tl.add(2, "gpu", "a", 0.0, 123e-6)
        art = render_timeline(tl, rank=2)
        assert "123.0 us" in art
