"""Tests for the threaded distributed spMVM runtime."""

import numpy as np
import pytest

from repro.distributed import build_plan, distributed_spmv, partition_rows, rank_spmv
from repro.formats import CSRMatrix

from _test_common import random_coo


def _setup(n=80, nparts=4, seed=161, max_row=9):
    csr = CSRMatrix.from_coo(random_coo(n, seed=seed, max_row=max_row))
    part = partition_rows(csr.nrows, nparts, row_weights=csr.row_lengths())
    return csr, build_plan(csr, part)


class TestDistributedSpmv:
    @pytest.mark.parametrize("nparts", [1, 2, 3, 5, 8])
    def test_matches_serial(self, nparts):
        csr, plan = _setup(nparts=nparts)
        x = np.random.default_rng(nparts).normal(size=csr.nrows)
        assert np.allclose(distributed_spmv(plan, x), csr.spmv(x), atol=1e-10)

    def test_repeated_calls_stable(self):
        csr, plan = _setup(nparts=4)
        x = np.random.default_rng(0).normal(size=csr.nrows)
        y1 = distributed_spmv(plan, x)
        y2 = distributed_spmv(plan, x)
        assert np.array_equal(y1, y2)

    def test_float32(self):
        csr = CSRMatrix.from_coo(random_coo(40, seed=162, dtype=np.float32))
        plan = build_plan(csr, partition_rows(40, 3))
        x = np.random.default_rng(1).normal(size=40).astype(np.float32)
        assert np.allclose(distributed_spmv(plan, x), csr.spmv(x), atol=1e-4)

    def test_suite_matrix(self):
        from repro.matrices import generate

        coo = generate("sAMG", scale=512)
        csr = CSRMatrix.from_coo(coo)
        plan = build_plan(csr, partition_rows(csr.nrows, 6, row_weights=csr.row_lengths()))
        x = np.random.default_rng(2).normal(size=csr.nrows)
        assert np.allclose(distributed_spmv(plan, x), csr.spmv(x), atol=1e-9)

    def test_wrong_x_shape(self):
        _, plan = _setup()
        with pytest.raises(ValueError, match="shape"):
            distributed_spmv(plan, np.ones(7))

    def test_requires_matrices(self):
        csr = CSRMatrix.from_coo(random_coo(30, seed=163))
        plan = build_plan(csr, partition_rows(30, 2), with_matrices=False)
        with pytest.raises((ValueError, RuntimeError), match="with_matrices|failed"):
            distributed_spmv(plan, np.ones(30))

    def test_block_diagonal_no_messages(self):
        from repro.formats import COOMatrix

        n = 40
        rows = np.arange(n)
        cols = (rows // 10) * 10 + (rows + 1) % 10
        coo = COOMatrix(rows, cols, np.arange(1.0, n + 1), (n, n))
        csr = CSRMatrix.from_coo(coo)
        plan = build_plan(csr, partition_rows(n, 4))
        x = np.random.default_rng(3).normal(size=n)
        assert np.allclose(distributed_spmv(plan, x), csr.spmv(x))


class TestRankSpmv:
    def test_single_rank_equivalence(self):
        csr, plan = _setup(nparts=1)
        x = np.random.default_rng(4).normal(size=csr.nrows)
        rp = plan.ranks[0]
        halo = np.zeros(rp.nonlocal_matrix.ncols, dtype=x.dtype)
        assert np.allclose(rank_spmv(rp, x, halo), csr.spmv(x))

    def test_rank_rows_with_manual_halo(self):
        csr, plan = _setup(nparts=3)
        x = np.random.default_rng(5).normal(size=csr.nrows)
        ref = csr.spmv(x)
        for rp in plan.ranks:
            lo, hi = rp.row_range
            if rp.halo_cols is not None and rp.halo_cols.size:
                halo = x[rp.halo_cols]
            else:
                halo = np.zeros(rp.nonlocal_matrix.ncols, dtype=x.dtype)
            y = rank_spmv(rp, x[lo:hi], halo)
            assert np.allclose(y, ref[lo:hi], atol=1e-10)

    def test_stats_only_plan_rejected(self):
        csr = CSRMatrix.from_coo(random_coo(20, seed=164))
        plan = build_plan(csr, partition_rows(20, 2), with_matrices=False)
        with pytest.raises(ValueError, match="with_matrices"):
            rank_spmv(plan.ranks[0], np.ones(plan.ranks[0].local_rows), np.ones(1))
