"""Tests for the threaded distributed spMVM runtime."""

import numpy as np
import pytest

from repro.distributed import build_plan, distributed_spmv, partition_rows, rank_spmv
from repro.formats import CSRMatrix

from _test_common import random_coo


def _setup(n=80, nparts=4, seed=161, max_row=9):
    csr = CSRMatrix.from_coo(random_coo(n, seed=seed, max_row=max_row))
    part = partition_rows(csr.nrows, nparts, row_weights=csr.row_lengths())
    return csr, build_plan(csr, part)


class TestDistributedSpmv:
    @pytest.mark.parametrize("nparts", [1, 2, 3, 5, 8])
    def test_matches_serial(self, nparts):
        csr, plan = _setup(nparts=nparts)
        x = np.random.default_rng(nparts).normal(size=csr.nrows)
        assert np.allclose(distributed_spmv(plan, x), csr.spmv(x), atol=1e-10)

    def test_repeated_calls_stable(self):
        csr, plan = _setup(nparts=4)
        x = np.random.default_rng(0).normal(size=csr.nrows)
        y1 = distributed_spmv(plan, x)
        y2 = distributed_spmv(plan, x)
        assert np.array_equal(y1, y2)

    def test_float32(self):
        csr = CSRMatrix.from_coo(random_coo(40, seed=162, dtype=np.float32))
        plan = build_plan(csr, partition_rows(40, 3))
        x = np.random.default_rng(1).normal(size=40).astype(np.float32)
        assert np.allclose(distributed_spmv(plan, x), csr.spmv(x), atol=1e-4)

    def test_suite_matrix(self):
        from repro.matrices import generate

        coo = generate("sAMG", scale=512)
        csr = CSRMatrix.from_coo(coo)
        plan = build_plan(csr, partition_rows(csr.nrows, 6, row_weights=csr.row_lengths()))
        x = np.random.default_rng(2).normal(size=csr.nrows)
        assert np.allclose(distributed_spmv(plan, x), csr.spmv(x), atol=1e-9)

    def test_wrong_x_shape(self):
        _, plan = _setup()
        with pytest.raises(ValueError, match="shape"):
            distributed_spmv(plan, np.ones(7))

    def test_requires_matrices(self):
        csr = CSRMatrix.from_coo(random_coo(30, seed=163))
        plan = build_plan(csr, partition_rows(30, 2), with_matrices=False)
        with pytest.raises((ValueError, RuntimeError), match="with_matrices|failed"):
            distributed_spmv(plan, np.ones(30))

    def test_block_diagonal_no_messages(self):
        from repro.formats import COOMatrix

        n = 40
        rows = np.arange(n)
        cols = (rows // 10) * 10 + (rows + 1) % 10
        coo = COOMatrix(rows, cols, np.arange(1.0, n + 1), (n, n))
        csr = CSRMatrix.from_coo(coo)
        plan = build_plan(csr, partition_rows(n, 4))
        x = np.random.default_rng(3).normal(size=n)
        assert np.allclose(distributed_spmv(plan, x), csr.spmv(x))


class TestRankSpmv:
    def test_single_rank_equivalence(self):
        csr, plan = _setup(nparts=1)
        x = np.random.default_rng(4).normal(size=csr.nrows)
        rp = plan.ranks[0]
        halo = np.zeros(rp.nonlocal_matrix.ncols, dtype=x.dtype)
        assert np.allclose(rank_spmv(rp, x, halo), csr.spmv(x))

    def test_rank_rows_with_manual_halo(self):
        csr, plan = _setup(nparts=3)
        x = np.random.default_rng(5).normal(size=csr.nrows)
        ref = csr.spmv(x)
        for rp in plan.ranks:
            lo, hi = rp.row_range
            if rp.halo_cols is not None and rp.halo_cols.size:
                halo = x[rp.halo_cols]
            else:
                halo = np.zeros(rp.nonlocal_matrix.ncols, dtype=x.dtype)
            y = rank_spmv(rp, x[lo:hi], halo)
            assert np.allclose(y, ref[lo:hi], atol=1e-10)

    def test_stats_only_plan_rejected(self):
        csr = CSRMatrix.from_coo(random_coo(20, seed=164))
        plan = build_plan(csr, partition_rows(20, 2), with_matrices=False)
        with pytest.raises(ValueError, match="with_matrices"):
            rank_spmv(plan.ranks[0], np.ones(plan.ranks[0].local_rows), np.ones(1))


class TestDistributedTimeout:
    """Satellite coverage for the DistributedTimeout taxonomy."""

    @staticmethod
    def _doctored_plan(nparts=2):
        """A plan whose rank 0 expects a halo message nobody will send."""
        import dataclasses

        csr, plan = _setup(nparts=nparts)
        phantom = max(r.rank for r in plan.ranks) + 7
        doctored = dataclasses.replace(
            plan.ranks[0],
            recv_cols={**plan.ranks[0].recv_cols, phantom: np.array([0])},
        )
        return csr, dataclasses.replace(
            plan, ranks=[doctored, *plan.ranks[1:]]
        )

    def test_message_carries_structured_fields(self):
        from repro.distributed import DistributedTimeout

        exc = DistributedTimeout([2, 0], 1.5, "waitall (still expecting [9])")
        assert exc.stuck_ranks == [2, 0]
        assert exc.timeout == 1.5
        assert exc.where == "waitall (still expecting [9])"
        msg = str(exc)
        assert "timed out after 1.5s" in msg
        assert "during waitall (still expecting [9])" in msg
        assert "stuck ranks: 2, 0" in msg

    def test_message_unknown_ranks_placeholder(self):
        from repro.distributed import DistributedTimeout

        assert "stuck ranks: <unknown>" in str(DistributedTimeout([], 2.0, "join"))

    def test_identifies_stuck_rank_and_phase(self):
        from repro.distributed import DistributedTimeout

        csr, bad_plan = self._doctored_plan()
        with pytest.raises(DistributedTimeout) as exc:
            distributed_spmv(bad_plan, np.ones(csr.nrows), timeout=0.2)
        # rank 0 is the one waiting on the phantom sender; depending on
        # who notices first the failure surfaces from the rank's waitall
        # or the driver's join -- both must name rank 0 and the phase.
        assert exc.value.stuck_ranks == [0]
        assert exc.value.where == "join" or exc.value.where.startswith("waitall")
        assert "during" in str(exc.value)
        assert "stuck ranks: 0" in str(exc.value)

    def test_daemon_workers_do_not_leak(self):
        import threading
        import time

        from repro.distributed import DistributedTimeout

        csr, bad_plan = self._doctored_plan()
        with pytest.raises(DistributedTimeout):
            distributed_spmv(bad_plan, np.ones(csr.nrows), timeout=0.2)
        # stuck rank threads are daemons blocked on inbox.get(timeout=...);
        # they drain within one extra timeout period instead of leaking.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            alive = [
                t
                for t in threading.enumerate()
                if t.name.startswith("rank-") and t.is_alive()
            ]
            if not alive:
                break
            assert all(t.daemon for t in alive)  # never non-daemon
            time.sleep(0.05)
        assert not alive
