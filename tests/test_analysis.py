"""Tests for row-length histograms (Fig. 3) and structure statistics."""

import numpy as np
import pytest

from repro.formats import COOMatrix, convert
from repro.matrices import row_length_histogram, structure_stats

from _test_common import random_coo


class TestHistogram:
    def test_counts_sum_to_rows(self):
        coo = random_coo(80, seed=91)
        h = row_length_histogram(coo)
        assert h.counts.sum() == coo.nrows
        assert h.nrows == coo.nrows

    def test_bin_size_one_exact(self):
        coo = COOMatrix([0, 0, 1, 2], [0, 1, 0, 0], np.ones(4), (4, 4))
        h = row_length_histogram(coo)
        # lengths: 2,1,1,0
        assert h.counts.tolist() == [1, 2, 1]
        assert h.bin_edges.tolist() == [0, 1, 2]

    def test_relative_share_normalised(self):
        coo = random_coo(60, seed=92)
        h = row_length_histogram(coo)
        assert h.relative_share.sum() == pytest.approx(1.0)

    def test_share_at_least(self):
        coo = random_coo(60, seed=93)
        h = row_length_histogram(coo)
        lengths = coo.row_lengths()
        for L in (0, 3, int(lengths.max())):
            expected = np.count_nonzero(lengths >= L) / coo.nrows
            assert h.share_at_least(L) == pytest.approx(expected)

    def test_binned(self):
        coo = random_coo(60, seed=94)
        h1 = row_length_histogram(coo, bin_size=1)
        h3 = row_length_histogram(coo, bin_size=3)
        assert h3.counts.sum() == h1.counts.sum()
        assert h3.bin_edges[1] - h3.bin_edges[0] == 3

    def test_from_raw_lengths(self):
        h = row_length_histogram(np.array([2, 2, 5]))
        assert h.counts.tolist() == [0, 0, 2, 0, 0, 1]

    def test_as_rows_skips_empty_bins(self):
        h = row_length_histogram(np.array([0, 4]))
        rows = h.as_rows()
        assert [r[0] for r in rows] == [0, 4]
        assert all(r[1] > 0 for r in rows)

    def test_bad_bin_size(self):
        with pytest.raises(ValueError):
            row_length_histogram(np.array([1]), bin_size=0)

    def test_works_for_all_formats(self):
        coo = random_coo(30, seed=95)
        ref = row_length_histogram(coo).counts
        for fmt in ("CRS", "ELLPACK-R", "pJDS"):
            h = row_length_histogram(convert(coo, fmt))
            assert np.array_equal(h.counts, ref), fmt


class TestStructureStats:
    def test_basic_fields(self):
        coo = random_coo(50, seed=96)
        st = structure_stats(coo)
        assert st.nrows == 50
        assert st.nnz == coo.nnz
        assert st.nnzr == pytest.approx(coo.nnz / 50)
        lengths = coo.row_lengths()
        assert st.min_row_length == lengths.min()
        assert st.max_row_length == lengths.max()

    def test_relative_width(self):
        coo = COOMatrix([0, 0, 1], [0, 1, 0], np.ones(3), (2, 2))
        st = structure_stats(coo)
        assert st.relative_width == 2.0

    def test_relative_width_with_empty_rows(self):
        coo = COOMatrix([0, 0], [0, 1], np.ones(2), (2, 2))
        st = structure_stats(coo)
        assert st.relative_width == 2.0  # min clamped to 1

    def test_density(self):
        coo = random_coo(40, seed=97)
        st = structure_stats(coo)
        assert st.density == pytest.approx(coo.nnz / 1600)

    def test_as_dict(self):
        st = structure_stats(random_coo(10, seed=98))
        d = st.as_dict()
        assert d["nrows"] == 10
        assert set(d) >= {"nnz", "nnzr", "density"}

    def test_diagonal_matrix_zero_distance(self):
        n = 10
        coo = COOMatrix(range(n), range(n), np.ones(n), (n, n))
        st = structure_stats(coo)
        assert st.mean_abs_col_distance == 0.0
