"""Unit tests for row sorting and Permutation."""

import numpy as np
import pytest

from repro.core import Permutation, descending_row_sort, windowed_row_sort


class TestDescendingSort:
    def test_sorts_descending(self):
        lengths = np.array([3, 9, 1, 9, 4])
        perm = descending_row_sort(lengths)
        assert np.all(np.diff(lengths[perm]) <= 0)

    def test_stability(self):
        lengths = np.array([5, 2, 5, 2, 5])
        perm = descending_row_sort(lengths)
        # equal-length rows keep original relative order
        assert perm.tolist() == [0, 2, 4, 1, 3]

    def test_already_sorted_is_identity(self):
        lengths = np.array([9, 7, 5, 3])
        assert descending_row_sort(lengths).tolist() == [0, 1, 2, 3]

    def test_empty(self):
        assert descending_row_sort(np.empty(0, np.int64)).size == 0


class TestWindowedSort:
    def test_sigma_one_is_identity(self):
        lengths = np.array([1, 5, 2, 9])
        assert windowed_row_sort(lengths, 1).tolist() == [0, 1, 2, 3]

    def test_sigma_full_equals_global(self):
        lengths = np.array([1, 5, 2, 9, 4, 4])
        assert np.array_equal(
            windowed_row_sort(lengths, 6), descending_row_sort(lengths)
        )
        assert np.array_equal(
            windowed_row_sort(lengths, 100), descending_row_sort(lengths)
        )

    def test_window_locality(self):
        lengths = np.array([1, 9, 2, 8, 3, 7])
        perm = windowed_row_sort(lengths, 2)
        # each window of two sorted internally
        assert perm.tolist() == [1, 0, 3, 2, 5, 4]

    def test_rows_stay_in_window(self):
        rng = np.random.default_rng(0)
        lengths = rng.integers(0, 50, size=100)
        sigma = 10
        perm = windowed_row_sort(lengths, sigma)
        assert np.all(perm // sigma == np.arange(100) // sigma)

    def test_bad_sigma(self):
        with pytest.raises(ValueError):
            windowed_row_sort(np.array([1, 2]), 0)


class TestPermutation:
    def test_inverse(self):
        p = Permutation(np.array([2, 0, 1]))
        assert p.inverse.tolist() == [1, 2, 0]
        assert np.array_equal(p.perm[p.inverse], np.arange(3))

    def test_identity(self):
        p = Permutation.identity(5)
        assert p.is_identity
        x = np.arange(5.0)
        assert np.array_equal(p.to_permuted(x), x)
        assert np.array_equal(p.to_original(x), x)

    def test_roundtrip_vectors(self):
        rng = np.random.default_rng(1)
        p = Permutation(rng.permutation(40))
        x = rng.normal(size=40)
        assert np.allclose(p.to_original(p.to_permuted(x)), x)
        assert np.allclose(p.to_permuted(p.to_original(x)), x)

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError, match="duplicate|range"):
            Permutation(np.array([0, 0, 1]))
        with pytest.raises(ValueError, match="range"):
            Permutation(np.array([0, 5]))

    def test_compose(self):
        rng = np.random.default_rng(2)
        a = Permutation(rng.permutation(20))
        b = Permutation(rng.permutation(20))
        x = rng.normal(size=20)
        composed = a.compose(b)
        assert np.allclose(
            composed.to_permuted(x), a.to_permuted(b.to_permuted(x))
        )

    def test_compose_size_mismatch(self):
        with pytest.raises(ValueError, match="size"):
            Permutation.identity(3).compose(Permutation.identity(4))

    def test_equality(self):
        a = Permutation(np.array([1, 0]))
        b = Permutation(np.array([1, 0]))
        assert a == b
        assert a != Permutation.identity(2)

    def test_vector_length_checked(self):
        p = Permutation.identity(4)
        with pytest.raises(ValueError, match="length"):
            p.to_permuted(np.ones(3))
        with pytest.raises(ValueError, match="length"):
            p.to_original(np.ones(5))

    def test_views_readonly(self):
        p = Permutation(np.array([1, 0]))
        with pytest.raises(ValueError):
            p.perm[0] = 0
        with pytest.raises(ValueError):
            p.inverse[0] = 0
