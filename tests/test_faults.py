"""Chaos matrix for repro.faults: deterministic injection + recovery.

The core acceptance grid: (threads, processes) x (vector, task) x fault
kind.  With a retry policy every run recovers to a **bitwise identical**
result; without one every run fails with a *typed* error naming the
faulting rank or edge.  Same seed => same schedule => same injections.
"""

import multiprocessing as mp
import time

import numpy as np
import pytest

from repro.distributed import (
    HaloExchangeTimeout,
    build_plan,
    distributed_spmv,
    partition_rows,
)
from repro.faults import (
    FAULT_KINDS,
    NAMED_PLANS,
    FaultEvent,
    FaultPlan,
    InjectedFault,
    RetryExhausted,
    RetryPolicy,
    call_with_retry,
)
from repro.formats import CSRMatrix

from _test_common import random_coo

BACKENDS = ("threads", "processes")
MODES = ("vector", "task")
RETRY = RetryPolicy(max_attempts=3)


def _setup(n=72, nparts=3, seed=161, max_row=9):
    csr = CSRMatrix.from_coo(random_coo(n, seed=seed, max_row=max_row))
    part = partition_rows(csr.nrows, nparts, row_weights=csr.row_lengths())
    return csr, build_plan(csr, part)


def _one_event_plan(kind, **target):
    delay = 0.01 if kind in ("halo_delay", "slow_worker") else 0.0
    return FaultPlan(
        (FaultEvent(kind, 0.1, target=target, delay_s=delay),), name=f"one:{kind}"
    )


# ---------------------------------------------------------------------------
# fault plans: seeded determinism + schedule semantics
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        a = FaultPlan.generate(42, nranks=4)
        b = FaultPlan.generate(42, nranks=4)
        assert a.events == b.events
        assert a.validate() is a

    def test_different_seeds_differ(self):
        assert FaultPlan.generate(1, nranks=4).events != FaultPlan.generate(
            2, nranks=4
        ).events

    @pytest.mark.parametrize("name", sorted(NAMED_PLANS))
    def test_named_plans_validate(self, name):
        plan = FaultPlan.named(name, nranks=4, workers=2)
        plan.validate()
        assert len(plan) > 0
        assert all(ev.kind in FAULT_KINDS for ev in plan)

    def test_unknown_plan_raises(self):
        with pytest.raises(ValueError, match="unknown fault plan"):
            FaultPlan.named("nope")

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("meteor_strike", 0.1)

    def test_events_sorted_by_when(self):
        plan = FaultPlan(
            (
                FaultEvent("rank_crash", 0.9, target={"rank": 0}),
                FaultEvent("rank_crash", 0.1, target={"rank": 1}),
            )
        )
        assert [ev.when for ev in plan] == [0.1, 0.9]

    def test_target_matching_is_subset(self):
        ev = FaultEvent("halo_drop", 0.1, target={"rank": 0, "dst": 1})
        assert ev.matches("distributed", rank=0, dst=1)
        assert not ev.matches("distributed", rank=0, dst=2)
        assert not ev.matches("distributed", rank=0)  # dst missing
        assert not ev.matches("serve", rank=0, dst=1)
        wild = FaultEvent("kernel_exception", 0.1, layer="serve")
        assert wild.matches("serve", matrix="A", worker=3)


class TestInjector:
    def test_budget_consumed(self):
        inj = _one_event_plan("rank_crash", rank=0).injector()
        assert inj.take_one("rank_crash", "distributed", "t", rank=0) is not None
        assert inj.take_one("rank_crash", "distributed", "t", rank=0) is None
        assert inj.injected == 1

    def test_unlimited_budget(self):
        plan = FaultPlan((FaultEvent("rank_crash", 0.1, target={"rank": 0}, times=0),))
        inj = plan.injector()
        for _ in range(5):
            assert inj.take_one("rank_crash", "distributed", "t", rank=0) is not None
        assert inj.injected == 5

    def test_unfired_reporting(self):
        plan = FaultPlan.named("smoke", nranks=4)
        inj = plan.injector()
        assert len(inj.unfired()) == len(plan)
        inj.rank_directives(0)
        assert len(inj.unfired()) < len(plan)

    def test_rank_directives_are_plain_data(self):
        inj = FaultPlan.named("smoke", nranks=2).injector()
        for r in range(2):
            for d in inj.rank_directives(r):
                assert isinstance(d, dict) and "kind" in d

    def test_report_shape(self):
        inj = FaultPlan.named("smoke", nranks=4).injector()
        inj.rank_directives(0)
        inj.note_retry("distributed")
        inj.note_recovered("distributed")
        rep = inj.report()
        assert rep["plan"] == "smoke"
        assert rep["retried"] == 1 and rep["recovered"] == 1
        assert sum(rep["injected_by_kind"].values()) == rep["injected"]


# ---------------------------------------------------------------------------
# retry policies
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_capped_exponential(self):
        p = RetryPolicy(max_attempts=5, base_delay_s=0.1, max_delay_s=0.25)
        assert p.delay(1) == pytest.approx(0.1)
        assert p.delay(2) == pytest.approx(0.2)
        assert p.delay(3) == pytest.approx(0.25)  # capped
        assert p.delay(4) == pytest.approx(0.25)

    def test_jitter_is_deterministic(self):
        p = RetryPolicy(base_delay_s=0.1, jitter_s=0.05, seed=7)
        q = RetryPolicy(base_delay_s=0.1, jitter_s=0.05, seed=7)
        assert [p.delay(i) for i in range(1, 4)] == [q.delay(i) for i in range(1, 4)]
        r = RetryPolicy(base_delay_s=0.1, jitter_s=0.05, seed=8)
        assert [p.delay(i) for i in range(1, 4)] != [r.delay(i) for i in range(1, 4)]

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="budget"):
            RetryPolicy(budget=-1)

    def test_call_with_retry_recovers(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise InjectedFault("kernel_exception", "test")
            return "ok"

        assert (
            call_with_retry(flaky, RetryPolicy(max_attempts=3), site="t") == "ok"
        )
        assert calls["n"] == 3

    def test_call_with_retry_exhausts_with_history(self):
        def always():
            raise InjectedFault("kernel_exception", "test")

        with pytest.raises(RetryExhausted) as e:
            call_with_retry(always, RetryPolicy(max_attempts=2), site="t")
        assert e.value.attempts == 2
        assert len(e.value.history) == 2
        assert all(isinstance(h, InjectedFault) for h in e.value.history)

    def test_non_retryable_propagates_immediately(self):
        calls = {"n": 0}

        def bad():
            calls["n"] += 1
            raise KeyError("not a fault")

        with pytest.raises(KeyError):
            call_with_retry(bad, RetryPolicy(max_attempts=5), site="t")
        assert calls["n"] == 1


# ---------------------------------------------------------------------------
# the chaos matrix: backend x mode x fault plan, from the scenario specs
# ---------------------------------------------------------------------------

from repro.scenarios import expand_suite, run_cell  # noqa: E402

#: the declarative chaos matrix — named composite plans (smoke,
#: exchange, crashes, stubborn) plus the ``one:<kind>`` single-event
#: drills of the old hand-rolled grid, expanded from the same specs
#: `repro matrix run --suite chaos` executes in CI
CHAOS_CELLS = expand_suite("chaos", wave="full")


class TestChaosMatrix:
    @pytest.mark.parametrize(
        "cell", [pytest.param(c, id=c.label()) for c in CHAOS_CELLS]
    )
    def test_cell(self, cell):
        """Every cell recovers bitwise — or exhausts, if that is the
        plan's documented expectation (``stubborn``)."""
        row = run_cell(cell)
        assert row["status"] == "ok", row.get("error")

    def test_modes_bitwise_equal(self):
        _, plan = _setup(nparts=4)
        x = np.random.default_rng(6).normal(size=plan.ncols)
        ys = [distributed_spmv(plan, x, mode=m) for m in MODES]
        assert np.array_equal(ys[0], ys[1])

    def test_same_seed_same_injections(self):
        _, plan = _setup()
        x = np.random.default_rng(7).normal(size=plan.ncols)
        fp = FaultPlan.generate(99, nranks=3, delay_s=0.005)
        runs = []
        for _ in range(2):
            inj = fp.injector()
            y = distributed_spmv(
                plan, x, faults=inj, retry=RetryPolicy(max_attempts=4),
                timeout=0.5,
            )
            runs.append((y, inj.injected_by_kind()))
        assert np.array_equal(runs[0][0], runs[1][0])
        assert runs[0][1] == runs[1][1]

    # -- typed failures without retry -----------------------------------
    def test_crash_without_retry_is_typed(self):
        _, plan = _setup()
        x = np.random.default_rng(8).normal(size=plan.ncols)
        inj = _one_event_plan("rank_crash", rank=1).injector()
        with pytest.raises(InjectedFault, match="rank_crash"):
            distributed_spmv(plan, x, faults=inj, timeout=0.5)

    def test_halo_drop_without_retry_names_missing_edge(self):
        _, plan = _setup()
        x = np.random.default_rng(8).normal(size=plan.ncols)
        # pick a real edge of this plan so the drop actually starves
        edges = [
            (p.rank, dst) for p in plan.ranks for dst in p.send_cols
        ]
        assert edges, "test matrix must have at least one halo edge"
        src, dst = edges[0]
        inj = _one_event_plan("halo_drop", rank=src, dst=dst).injector()
        with pytest.raises(HaloExchangeTimeout) as e:
            distributed_spmv(plan, x, faults=inj, timeout=0.3)
        assert e.value.rank == dst
        assert src in e.value.neighbors
        assert e.value.direction == "recv"
        assert e.value.where.startswith("waitall")

    def test_processes_crash_without_retry_is_typed(self):
        _, plan = _setup()
        x = np.random.default_rng(8).normal(size=plan.ncols)
        inj = _one_event_plan("rank_crash", rank=0).injector()
        with pytest.raises(InjectedFault, match="rank_crash"):
            distributed_spmv(
                plan, x, backend="processes", faults=inj, timeout=2.0
            )

    def test_stubborn_crash_exhausts_retries(self):
        _, plan = _setup()
        x = np.random.default_rng(9).normal(size=plan.ncols)
        inj = FaultPlan.named("stubborn", nranks=3).injector()
        with pytest.raises(RetryExhausted) as e:
            distributed_spmv(plan, x, faults=inj, retry=RETRY, timeout=0.5)
        assert e.value.attempts == RETRY.max_attempts
        assert len(e.value.history) == RETRY.max_attempts

    def test_shared_budget_exhausts(self):
        _, plan = _setup(nparts=4)
        x = np.random.default_rng(10).normal(size=plan.ncols)
        inj = FaultPlan.named("crashes", nranks=4).injector()
        with pytest.raises(RetryExhausted, match="budget"):
            distributed_spmv(
                plan, x, faults=inj,
                retry=RetryPolicy(max_attempts=3, budget=1), timeout=0.5,
            )


# ---------------------------------------------------------------------------
# process backend hygiene (the leak regression)
# ---------------------------------------------------------------------------


class TestProcessHygiene:
    def _assert_no_children(self):
        deadline = time.monotonic() + 5.0
        while mp.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not mp.active_children(), (
            f"leaked children: {mp.active_children()}"
        )

    def test_no_leak_after_success(self):
        _, plan = _setup()
        x = np.random.default_rng(1).normal(size=plan.ncols)
        distributed_spmv(plan, x, backend="processes", timeout=5.0)
        self._assert_no_children()

    def test_no_leak_after_crash_failure(self):
        _, plan = _setup()
        x = np.random.default_rng(1).normal(size=plan.ncols)
        inj = _one_event_plan("rank_crash", rank=0).injector()
        with pytest.raises(InjectedFault):
            distributed_spmv(
                plan, x, backend="processes", faults=inj, timeout=2.0
            )
        self._assert_no_children()

    def test_no_leak_after_halo_starvation(self):
        """Dropped halo => stuck children; the driver must reap them."""
        _, plan = _setup()
        x = np.random.default_rng(1).normal(size=plan.ncols)
        edges = [(p.rank, dst) for p in plan.ranks for dst in p.send_cols]
        src, dst = edges[0]
        inj = _one_event_plan("halo_drop", rank=src, dst=dst).injector()
        with pytest.raises(Exception):
            distributed_spmv(
                plan, x, backend="processes", faults=inj, timeout=0.5
            )
        self._assert_no_children()


# ---------------------------------------------------------------------------
# engine + simulator layers
# ---------------------------------------------------------------------------


class TestEngineFaults:
    def test_bound_spmv_fault_and_clone_share_budget(self):
        from repro.engine import bind

        csr, _ = _setup()
        fp = FaultPlan(
            (FaultEvent("kernel_exception", 0.1, layer="engine"),)
        )
        inj = fp.injector()
        bound = bind(csr, variant="csr_scipy", faults=inj)
        clone = bound.clone()
        assert clone.faults is inj
        x = np.random.default_rng(2).normal(size=csr.ncols)
        with pytest.raises(InjectedFault, match="kernel_exception"):
            bound.spmv(x)
        # budget (times=1) is global across clones: the clone now works
        y = clone.spmv(x)
        assert np.array_equal(y, bound.spmv(x))

    def test_retrying_around_engine_fault(self):
        from repro.engine import bind

        csr, _ = _setup()
        inj = FaultPlan(
            (FaultEvent("kernel_exception", 0.1, layer="engine"),)
        ).injector()
        bound = bind(csr, variant="csr_scipy", faults=inj)
        x = np.random.default_rng(2).normal(size=csr.ncols)
        y = call_with_retry(lambda: bound.spmv(x).copy(), RETRY, site="engine")
        ref = bind(csr, variant="csr_scipy").spmv(x)
        assert np.array_equal(y, ref)


class TestSimulatorPerturbation:
    def test_perturbation_slows_simulated_iteration(self):
        from repro.distributed import DIRAC_IB, simulate_mode, stats_from_plan
        from repro.gpu.device import C2050

        _, plan = _setup(nparts=4)
        stats = stats_from_plan(plan)
        base = simulate_mode("task", stats, C2050(), DIRAC_IB)
        fp = FaultPlan(
            (
                FaultEvent("slow_worker", 0.1, layer="sim",
                           target={"rank": 1}, delay_s=1.0),
                FaultEvent("halo_delay", 0.2, layer="sim",
                           target={"rank": 2}, delay_s=2.0),
            )
        )
        inj = fp.injector()
        pert = simulate_mode("task", stats, C2050(), DIRAC_IB, faults=inj)
        assert pert.iteration_seconds > base.iteration_seconds
        markers = [
            iv.label for iv in pert.timeline.intervals if iv.resource == "fault"
        ]
        assert "fault:slow_worker" in markers
        assert "fault:halo_delay" in markers
        assert inj.injected == 2
        # events consumed: a replay with the same injector is clean
        again = simulate_mode("task", stats, C2050(), DIRAC_IB, faults=inj)
        assert again.iteration_seconds == base.iteration_seconds


# ---------------------------------------------------------------------------
# serve layer: degraded mode + client retry (scheduler details in test_serve)
# ---------------------------------------------------------------------------


class TestServeChaos:
    def _server(self, faults=None, workers=2, registry_faults=None):
        from repro.serve import MatrixRegistry, SpMVServer

        csr, _ = _setup()
        reg = MatrixRegistry(faults=registry_faults)
        reg.register("A", matrix=csr, variant="csr_scipy")
        srv = SpMVServer(
            reg, workers=workers, max_delay_ms=0.2, faults=faults
        )
        return csr, srv

    def test_client_retries_registry_load_failure(self):
        from repro.serve import Client, RegistryLoadFailed

        inj = FaultPlan(
            (FaultEvent("registry_load_failure", 0.1, layer="serve"),)
        ).injector()
        csr, srv = self._server(registry_faults=inj)
        try:
            x = np.random.default_rng(0).normal(size=csr.ncols)
            with pytest.raises(RegistryLoadFailed):
                Client(srv).spmv("A", x, timeout=5.0)
            # spec stays registered: a retrying client succeeds
            y = Client(srv, retry=RETRY).spmv("A", x, timeout=5.0)
            assert y.shape == (csr.nrows,)
        finally:
            srv.close()

    def test_all_workers_dead_sheds_to_degraded(self):
        fp = FaultPlan(
            tuple(
                FaultEvent("worker_crash", 0.1 + 0.1 * w, layer="serve",
                           target={"worker": w})
                for w in range(2)
            )
        )
        inj = fp.injector()
        csr, srv = self._server(faults=inj, workers=2)
        try:
            deadline = time.monotonic() + 5.0
            while srv.live_workers > 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert srv.live_workers == 0
            assert srv.degraded
            from repro.engine import bind

            x = np.random.default_rng(0).normal(size=csr.ncols)
            y = srv.spmv("A", x, timeout=5.0)
            # bitwise vs the same kernel variant the server runs
            ref = bind(csr, variant="csr_scipy").spmv(x)
            assert np.array_equal(y, ref)
            stats = srv.stats()
            assert stats["degraded"] is True
            assert stats["degraded_requests"] >= 1
            assert len(stats["worker_deaths"]) == 2
        finally:
            srv.close()

    def test_hedged_request_survives_kernel_fault(self):
        from repro.serve import Client

        inj = FaultPlan(
            (FaultEvent("kernel_exception", 0.1, layer="serve"),)
        ).injector()
        csr, srv = self._server(faults=inj, workers=1)
        try:
            x = np.random.default_rng(0).normal(size=csr.ncols)
            y = Client(srv).spmv_hedged(
                "A", x, hedges=2, hedge_delay_ms=1.0, timeout=5.0
            )
            np.testing.assert_allclose(y, csr.spmv(x), rtol=1e-12)
        finally:
            srv.close()


# ---------------------------------------------------------------------------
# CLI + soak
# ---------------------------------------------------------------------------


class TestChaosCLI:
    def test_smoke_plan_exits_zero(self, capsys):
        import io

        from repro.cli import main

        out = io.StringIO()
        rc = main(
            [
                "chaos", "--plan", "smoke", "--backend", "threads",
                "--scale", "512", "--timeout", "2",
            ],
            out=out,
        )
        text = out.getvalue()
        assert rc == 0
        assert "verdict: all faults recovered" in text
        assert "faults_injected_total" in text

    def test_unknown_plan_exits_nonzero(self):
        import io

        from repro.cli import main

        out = io.StringIO()
        assert main(["chaos", "--plan", "no-such-plan"], out=out) == 2
        assert "unknown plan" in out.getvalue()


@pytest.mark.soak
class TestSoak:
    """Long generated schedules; excluded from tier-1 (run with -m soak)."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_soak_plan_recovers(self, backend):
        _, plan = _setup(n=120, nparts=4)
        x = np.random.default_rng(11).normal(size=plan.ncols)
        y_ref = distributed_spmv(plan, x)
        inj = FaultPlan.named("soak", nranks=4, delay_s=0.005).injector()
        y = distributed_spmv(
            plan, x, backend=backend, faults=inj,
            retry=RetryPolicy(max_attempts=6), timeout=2.0,
        )
        assert np.array_equal(y, y_ref)
