"""Unit tests for the CRS format and its partitioning helpers."""

import numpy as np
import pytest

from repro.formats import CSRMatrix, COOMatrix

from _test_common import random_coo


@pytest.fixture(scope="module")
def csr() -> CSRMatrix:
    return CSRMatrix.from_coo(random_coo(50, seed=21))


class TestConstruction:
    def test_from_coo_roundtrip(self, csr):
        coo = csr.to_coo()
        assert np.allclose(coo.todense(), csr.todense())

    def test_empty_rows_preserved(self):
        coo = COOMatrix([2], [1], [5.0], (4, 4))
        m = CSRMatrix.from_coo(coo)
        assert m.row_lengths().tolist() == [0, 0, 1, 0]

    def test_indptr_validation(self):
        with pytest.raises(ValueError, match="indptr"):
            CSRMatrix(np.array([0, 1]), np.array([0]), np.array([1.0]), (2, 2))

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(ValueError, match="indptr\\[0\\]"):
            CSRMatrix(np.array([1, 1, 1]), np.empty(0, np.int64), np.empty(0), (2, 2))

    def test_indptr_monotone(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRMatrix(
                np.array([0, 2, 1]),
                np.array([0, 1]),
                np.array([1.0, 2.0]),
                (2, 2),
            )

    def test_data_length_checked(self):
        with pytest.raises(ValueError, match="indices/data"):
            CSRMatrix(np.array([0, 1, 2]), np.array([0, 1]), np.array([1.0]), (2, 2))

    def test_column_bounds_checked(self):
        with pytest.raises(ValueError, match="indices"):
            CSRMatrix(np.array([0, 1]), np.array([9]), np.array([1.0]), (1, 2))


class TestSpmv:
    def test_against_coo(self, csr):
        x = np.random.default_rng(0).normal(size=csr.ncols)
        assert np.allclose(csr.spmv(x), csr.to_coo().spmv(x))

    def test_empty_matrix(self):
        m = CSRMatrix(np.zeros(4, np.int64), np.empty(0, np.int64), np.empty(0), (3, 5))
        assert np.all(m.spmv(np.ones(5)) == 0.0)

    def test_single_row(self):
        m = CSRMatrix(
            np.array([0, 3]), np.array([0, 2, 4]), np.array([1.0, 2.0, 3.0]), (1, 5)
        )
        assert m.spmv(np.arange(5.0))[0] == pytest.approx(0 + 4 + 12)


class TestRowBlock:
    def test_block_extracts_rows(self, csr):
        blk = csr.row_block(10, 25)
        assert blk.shape == (15, csr.ncols)
        assert np.allclose(blk.todense(), csr.todense()[10:25])

    def test_full_block_is_copy(self, csr):
        blk = csr.row_block(0, csr.nrows)
        assert np.allclose(blk.todense(), csr.todense())

    def test_empty_block_rejected(self, csr):
        # zero-row matrices are rejected by shape validation
        with pytest.raises(ValueError):
            csr.row_block(5, 5)

    def test_bad_range_rejected(self, csr):
        with pytest.raises(ValueError):
            csr.row_block(10, csr.nrows + 1)
        with pytest.raises(ValueError):
            csr.row_block(-1, 3)


class TestSplitColumns:
    def test_split_partitions_entries(self, csr):
        mask = np.zeros(csr.ncols, dtype=bool)
        mask[: csr.ncols // 2] = True
        a, b = csr.split_columns(mask)
        assert a.nnz + b.nnz == csr.nnz
        assert np.allclose(a.todense() + b.todense(), csr.todense())

    def test_split_respects_mask(self, csr):
        mask = np.zeros(csr.ncols, dtype=bool)
        mask[::2] = True
        a, b = csr.split_columns(mask)
        assert np.all(mask[a.indices])
        assert not np.any(mask[b.indices])

    def test_wrong_mask_shape(self, csr):
        with pytest.raises(ValueError, match="mask"):
            csr.split_columns(np.ones(3, dtype=bool))

    def test_all_true_mask(self, csr):
        a, b = csr.split_columns(np.ones(csr.ncols, dtype=bool))
        assert a.nnz == csr.nnz
        assert b.nnz == 0


class TestPermuteRows:
    def test_permuted_dense_matches(self, csr):
        rng = np.random.default_rng(5)
        perm = rng.permutation(csr.nrows)
        p = csr.permute_rows(perm)
        assert np.allclose(p.todense(), csr.todense()[perm])

    def test_identity_permutation(self, csr):
        p = csr.permute_rows(np.arange(csr.nrows))
        assert np.allclose(p.todense(), csr.todense())

    def test_invalid_permutation_rejected(self, csr):
        bad = np.zeros(csr.nrows, dtype=np.int64)  # duplicates
        with pytest.raises(ValueError, match="permutation"):
            csr.permute_rows(bad)


class TestAccounting:
    def test_memory_breakdown(self, csr):
        bd = csr.memory_breakdown()
        assert bd["val"] == csr.nnz * 8
        assert bd["col_idx"] == csr.nnz * 4
        assert bd["row_ptr"] == (csr.nrows + 1) * 4

    def test_column_set(self):
        coo = COOMatrix([0, 1], [3, 3], [1.0, 1.0], (2, 5))
        m = CSRMatrix.from_coo(coo)
        assert m.column_set().tolist() == [3]

    def test_views_readonly(self, csr):
        for arr in (csr.indptr, csr.indices, csr.data):
            with pytest.raises(ValueError):
                arr[0] = 0
