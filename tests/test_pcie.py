"""Tests for the PCIe transfer model (gpu.pcie) and Eqs. (2)-(4)."""

import pytest

from repro.gpu import C2070, simulate_spmv, spmv_with_transfers, transfer_seconds
from repro.formats import convert
from repro.perfmodel import (
    analyse,
    nnzr_lower_bound_10pct,
    nnzr_upper_bound_50pct,
    t_mvm,
    t_pci,
)

from _test_common import random_coo


class TestTransferSeconds:
    def test_latency_plus_bandwidth(self):
        dev = C2070()
        t = transfer_seconds(6_000_000, dev)
        assert t == pytest.approx(dev.pcie_latency_s + 6e6 / 6e9)

    def test_zero_bytes_free(self):
        assert transfer_seconds(0, C2070()) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            transfer_seconds(-1, C2070())


class TestTransferReport:
    @pytest.fixture(scope="class")
    def report(self):
        coo = random_coo(200, seed=131, max_row=12)
        dev = C2070()
        kernel = simulate_spmv(convert(coo, "pJDS"), dev, "DP")
        return spmv_with_transfers(kernel, dev)

    def test_totals(self, report):
        assert report.total_seconds == pytest.approx(
            report.kernel.kernel_seconds
            + report.upload_seconds
            + report.download_seconds
        )

    def test_effective_below_kernel_gflops(self, report):
        assert report.gflops < report.kernel.gflops

    def test_penalty_positive(self, report):
        assert report.pcie_penalty > 0

    def test_dp_vector_bytes(self, report):
        dev = C2070()
        nbytes = 8 * report.kernel.nrows
        assert report.upload_seconds == pytest.approx(transfer_seconds(nbytes, dev))


class TestEq2:
    def test_t_pci_formula(self):
        """TPCI = 16 N / BPCI at double precision."""
        assert t_pci(1000, 6e9) == pytest.approx(16_000 / 6e9)

    def test_t_mvm_formula(self):
        """TMVM = 8N/BGPU * (Nnzr (alpha + 3/2) + 2)."""
        n, nnzr, alpha, bw = 1000, 20.0, 0.5, 91e9
        expected = 8 * n / bw * (nnzr * 2.0 + 2)
        assert t_mvm(n, nnzr, alpha, bw) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            t_mvm(0, 10, 0.5, 1e9)
        with pytest.raises(ValueError):
            t_mvm(10, 0, 0.5, 1e9)
        with pytest.raises(ValueError):
            t_pci(-1, 1e9)


class TestEq3Eq4:
    def test_paper_worst_case_bound(self):
        """alpha = 1/Nnzr, BGPU ~ 20 BPCI  =>  Nnzr <= ~25 (paper text)."""
        # self-consistent at Nnzr = 25: alpha = 1/25
        bound = nnzr_upper_bound_50pct(20.0, 1.0 / 25.0)
        assert bound == pytest.approx(25, abs=1.0)

    def test_paper_best_case_bound(self):
        """alpha = 1, BGPU ~ 10 BPCI  =>  Nnzr <= ~7 (paper text)."""
        assert nnzr_upper_bound_50pct(10.0, 1.0) == pytest.approx(7.2, abs=0.1)

    def test_paper_10pct_bound_alpha1(self):
        """alpha = 1, BGPU ~ 10 BPCI  =>  Nnzr >= ~79 (paper: ~80)."""
        assert nnzr_lower_bound_10pct(10.0, 1.0) == pytest.approx(79.2, abs=0.1)

    def test_paper_10pct_worst_case(self):
        """BGPU ~ 20 BPCI, alpha = 1/Nnzr  =>  Nnzr >= ~265 (paper: ~266)."""
        bound = nnzr_lower_bound_10pct(20.0, 1.0 / 266.0)
        assert bound == pytest.approx(265, abs=2.0)

    def test_bounds_validate(self):
        with pytest.raises(ValueError):
            nnzr_upper_bound_50pct(0.0, 0.5)
        with pytest.raises(ValueError):
            nnzr_lower_bound_10pct(-1.0, 0.5)


class TestAnalyse:
    def test_dlr1_effective_near_paper(self):
        """Paper: 10.9 GF/s effective vs 12.9 kernel-only for DLR1."""
        a = analyse(278_502, 143.7, 0.25, bw_gpu_gbs=91.0, bw_pci_gbs=6.0)
        assert a.kernel_gflops == pytest.approx(12.9, rel=0.05)
        assert a.effective_gflops == pytest.approx(10.9, rel=0.12)

    def test_hmep_not_gpu_friendly(self):
        """HMEp's Nnzr ~ 15 sits below the worst-case Eq. (3) bound."""
        a = analyse(6_201_600, 14.9, 1.0 / 14.9, bw_gpu_gbs=120.0, bw_pci_gbs=6.0)
        assert not a.gpu_worthwhile

    def test_samg_not_gpu_friendly(self):
        a = analyse(3_405_035, 7.06, 1.0, bw_gpu_gbs=91.0, bw_pci_gbs=6.0)
        assert not a.gpu_worthwhile

    def test_dlr_class_gpu_friendly(self):
        for nnzr in (143.7, 314.8, 123.0):
            a = analyse(500_000, nnzr, 0.3)
            assert a.gpu_worthwhile
            assert a.pcie_penalty < 0.5

    def test_penalty_monotone_in_nnzr(self):
        penalties = [analyse(10**6, nnzr, 0.5).pcie_penalty for nnzr in (5, 20, 100, 400)]
        assert penalties == sorted(penalties, reverse=True)

    def test_bw_ratio(self):
        a = analyse(100, 10, 0.5, bw_gpu_gbs=90.0, bw_pci_gbs=6.0)
        assert a.bw_ratio == pytest.approx(15.0)
