"""Tests for the ELLR-T format (T threads per row)."""

import numpy as np
import pytest

from repro.formats import ELLRTMatrix, convert
from repro.gpu import C2070, extract_trace

from _test_common import random_coo


@pytest.fixture(scope="module")
def coo():
    return random_coo(90, seed=201, max_row=30)


class TestConstruction:
    @pytest.mark.parametrize("T", [1, 2, 4, 8, 16, 32])
    def test_spmv_correct(self, coo, T):
        m = ELLRTMatrix.from_coo(coo, threads_per_row=T)
        x = np.random.default_rng(T).normal(size=coo.ncols)
        assert np.allclose(m.spmv(x), coo.spmv(x))

    def test_width_padded_to_t(self, coo):
        for T in (2, 4, 8):
            m = ELLRTMatrix.from_coo(coo, threads_per_row=T)
            assert m.width % T == 0

    def test_t_must_divide_warp(self, coo):
        with pytest.raises(ValueError, match="divide"):
            ELLRTMatrix.from_coo(coo, threads_per_row=3)

    def test_roundtrip(self, coo):
        m = ELLRTMatrix.from_coo(coo, threads_per_row=4)
        assert np.allclose(m.to_coo().todense(), coo.todense())

    def test_row_iterations(self, coo):
        m = ELLRTMatrix.from_coo(coo, threads_per_row=4)
        lengths = m.rowmax
        assert np.array_equal(m.row_iterations(), -(-lengths // 4))

    def test_storage_same_family_as_ellpack_r(self, coo):
        t1 = ELLRTMatrix.from_coo(coo, threads_per_row=1)
        er = convert(coo, "ELLPACK-R")
        # T=1: same width, same arrays
        assert t1.width == er.width
        assert t1.memory_breakdown().keys() == er.memory_breakdown().keys()

    def test_registered_in_conversions(self, coo):
        m = convert(coo, "ELLR-T", threads_per_row=2)
        assert isinstance(m, ELLRTMatrix)
        assert m.threads_per_row == 2

    def test_unknown_kwarg(self, coo):
        with pytest.raises(TypeError, match="unexpected"):
            ELLRTMatrix.from_coo(coo, sigma=1)


class TestSchedulingModel:
    def test_reserved_steps_shrink_with_t_on_skewed_rows(self):
        """T threads per row absorb row-length imbalance: with one very
        long row, a T=1 warp idles 31 lanes for the whole row while
        T=16 finishes it in len/16 iterations."""
        from repro.formats import COOMatrix

        n, long_len = 64, 512
        rows = [0] * long_len + list(range(1, n))
        cols = list(range(long_len)) + [0] * (n - 1)
        coo = COOMatrix(rows, cols, np.ones(len(rows)), (n, max(long_len, n)))
        dev = C2070()
        reserved = {}
        for T in (1, 4, 16):
            m = ELLRTMatrix.from_coo(coo, threads_per_row=T)
            reserved[T] = extract_trace(m, dev, "DP").reserved_steps
        assert reserved[4] < reserved[1]
        assert reserved[16] < reserved[4]

    def test_executed_slots_unchanged(self, coo):
        dev = C2070()
        for T in (1, 4):
            m = ELLRTMatrix.from_coo(coo, threads_per_row=T)
            assert extract_trace(m, dev, "DP").executed_slots == coo.nnz

    def test_t1_matches_ellpack_r_schedule(self, coo):
        dev = C2070()
        t1 = extract_trace(ELLRTMatrix.from_coo(coo, threads_per_row=1), dev, "DP")
        er = extract_trace(convert(coo, "ELLPACK-R"), dev, "DP")
        assert t1.reserved_steps == er.reserved_steps

    def test_simulation_runs(self, coo):
        from repro.gpu import simulate_spmv

        m = ELLRTMatrix.from_coo(coo, threads_per_row=4)
        rep = simulate_spmv(m, C2070(), "DP")
        assert rep.gflops > 0
        assert rep.format_name == "ELLR-T"
