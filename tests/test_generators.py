"""Tests for the synthetic matrix generators."""

import numpy as np
import pytest

from repro.matrices import (
    banded_sparse,
    block_sparse,
    from_networkx,
    off_diagonal_sparse,
    poisson2d,
    random_sparse,
    sample_columns,
)


class TestSampleColumns:
    def test_exact_lengths(self):
        rng = np.random.default_rng(0)
        lengths = np.array([3, 0, 7, 1])
        rows, cols = sample_columns(lengths, 20, rng)
        assert np.array_equal(np.bincount(rows, minlength=4), lengths)

    def test_no_duplicates(self):
        rng = np.random.default_rng(1)
        lengths = np.full(50, 18)
        rows, cols = sample_columns(lengths, 20, rng)
        pairs = set(zip(rows.tolist(), cols.tolist()))
        assert len(pairs) == rows.shape[0]

    def test_bandwidth_respected(self):
        rng = np.random.default_rng(2)
        n = 200
        lengths = np.full(n, 5)
        rows, cols = sample_columns(lengths, n, rng, bandwidth=21)
        centre = (rows * n) // n
        lo = np.clip(centre - 10, 0, n - 21)
        assert np.all(cols >= lo)
        assert np.all(cols < lo + 21)

    def test_row_longer_than_window_rejected(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError, match="distinct columns"):
            sample_columns(np.array([10]), 5, rng)
        with pytest.raises(ValueError, match="distinct columns"):
            sample_columns(np.array([10]), 100, rng, bandwidth=5)

    def test_dense_rows_converge(self):
        rng = np.random.default_rng(4)
        lengths = np.full(10, 10)  # fully dense rows
        rows, cols = sample_columns(lengths, 10, rng)
        assert rows.shape[0] == 100

    def test_negative_length_rejected(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError, match="non-negative"):
            sample_columns(np.array([-1]), 5, rng)


class TestRandomSparse:
    def test_shape_and_lengths(self):
        lengths = np.random.default_rng(6).integers(0, 10, size=30)
        m = random_sparse(30, 40, lengths, seed=7)
        assert m.shape == (30, 40)
        assert np.array_equal(m.row_lengths(), lengths)

    def test_deterministic(self):
        lengths = np.full(20, 4)
        a = random_sparse(20, 20, lengths, seed=8)
        b = random_sparse(20, 20, lengths, seed=8)
        assert np.array_equal(a.todense(), b.todense())

    def test_seed_changes_matrix(self):
        lengths = np.full(20, 4)
        a = random_sparse(20, 20, lengths, seed=8)
        b = random_sparse(20, 20, lengths, seed=9)
        assert not np.array_equal(a.todense(), b.todense())

    def test_float32(self):
        m = random_sparse(10, 10, np.full(10, 2), dtype=np.float32)
        assert m.dtype == np.float32

    def test_no_zero_values(self):
        m = random_sparse(50, 50, np.full(50, 5), seed=10)
        assert np.all(m.values != 0.0)


class TestBanded:
    def test_band_structure(self):
        m = banded_sparse(100, 11, np.full(100, 4), seed=11)
        coo = m.to_coo()
        assert np.all(np.abs(coo.cols - coo.rows) <= 11)


class TestOffDiagonal:
    def test_diagonals_present(self):
        m = off_diagonal_sparse(20, np.array([0, 2, -3]))
        dense = m.todense()
        assert np.all(np.diag(dense) != 0)
        assert np.all(np.diag(dense, 2) != 0)
        assert np.all(np.diag(dense, -3) != 0)

    def test_row_lengths_at_boundaries(self):
        m = off_diagonal_sparse(10, np.array([0, 5]))
        lengths = m.row_lengths()
        assert lengths[0] == 2  # diagonal + offset 5
        assert lengths[-1] == 1  # offset 5 out of range

    def test_offset_out_of_range(self):
        with pytest.raises(ValueError, match="offset"):
            off_diagonal_sparse(5, np.array([7]))

    def test_extras_added(self):
        m = off_diagonal_sparse(
            30, np.array([0]), extra_lengths=np.full(30, 3), seed=12
        )
        # duplicates with the diagonal may collapse: at least the extras
        assert m.nnz >= 30 + 30 * 3 - 30


class TestBlockSparse:
    def test_dense_blocks(self):
        blocks = np.array([2, 1, 3])
        m = block_sparse(3, 3, 4, blocks, seed=13)
        assert m.shape == (12, 12)
        assert m.nnz == int(blocks.sum()) * 16
        # row lengths are multiples of the block size
        assert np.all(m.row_lengths() % 4 == 0)

    def test_rows_in_block_share_length(self):
        blocks = np.array([2, 5, 1, 3])
        m = block_sparse(4, 6, 5, blocks, seed=14)
        lengths = m.row_lengths().reshape(4, 5)
        assert np.all(lengths == lengths[:, :1])

    def test_blocks_shape_checked(self):
        with pytest.raises(ValueError, match="blocks_per_row"):
            block_sparse(3, 3, 4, np.array([1, 2]), seed=15)


class TestPoisson2D:
    def test_shape(self):
        m = poisson2d(5, 7)
        assert m.shape == (35, 35)

    def test_symmetric(self):
        m = poisson2d(6)
        dense = m.todense()
        assert np.allclose(dense, dense.T)

    def test_row_sums_nonnegative(self):
        """Diagonal dominance of the 5-point stencil."""
        dense = poisson2d(5, 5).todense()
        assert np.all(dense.sum(axis=1) >= 0)

    def test_interior_rows_have_five_entries(self):
        m = poisson2d(5, 5)
        lengths = m.row_lengths().reshape(5, 5)
        assert np.all(lengths[1:-1, 1:-1][1:-1] == 5)

    def test_spd(self):
        dense = poisson2d(4, 4).todense()
        assert np.all(np.linalg.eigvalsh(dense) > 0)


class TestNetworkx:
    def test_undirected_symmetric(self):
        import networkx as nx

        g = nx.path_graph(6)
        m = from_networkx(g)
        dense = m.todense()
        assert np.allclose(dense, dense.T)
        assert m.nnz == 2 * g.number_of_edges()

    def test_weighted(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge(0, 1, w=2.5)
        m = from_networkx(g, weight="w")
        assert m.todense()[0, 1] == 2.5

    def test_directed(self):
        import networkx as nx

        g = nx.DiGraph()
        g.add_edge(0, 1)
        m = from_networkx(g)
        dense = m.todense()
        assert dense[0, 1] == 1.0
        assert dense[1, 0] == 0.0
