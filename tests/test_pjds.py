"""Unit tests for the pJDS format — the paper's contribution (Sect. II-A)."""

import numpy as np
import pytest

from repro.core import PJDSMatrix, block_padded_lengths
from repro.formats import COOMatrix, ELLPACKMatrix

from _test_common import random_coo


@pytest.fixture(scope="module")
def coo() -> COOMatrix:
    return random_coo(70, seed=41)


class TestBlockPaddedLengths:
    def test_pads_to_block_max(self):
        lengths = np.array([9, 7, 5, 5, 3, 1])
        padded = block_padded_lengths(lengths, 2)
        assert padded.tolist() == [9, 9, 5, 5, 3, 3]

    def test_block_one_is_identity(self):
        lengths = np.array([4, 3, 2])
        assert block_padded_lengths(lengths, 1).tolist() == [4, 3, 2]

    def test_block_larger_than_n(self):
        lengths = np.array([4, 3, 2])
        assert block_padded_lengths(lengths, 8).tolist() == [4, 4, 4]

    def test_partial_last_block(self):
        lengths = np.array([5, 5, 4, 2, 1])
        assert block_padded_lengths(lengths, 2).tolist() == [5, 5, 4, 4, 1]

    def test_empty(self):
        assert block_padded_lengths(np.empty(0, np.int64), 4).size == 0

    def test_bad_block_rejected(self):
        with pytest.raises(ValueError):
            block_padded_lengths(np.array([1]), 0)


class TestFig1Example:
    """The derivation of Fig. 1: an 8x8 matrix, blocking size br = 4."""

    @pytest.fixture()
    def fig1(self):
        # row lengths 2,4,3,1,2,3,2,1 (a small irregular matrix)
        rows = [0, 0, 1, 1, 1, 1, 2, 2, 2, 3, 4, 4, 5, 5, 5, 6, 6, 7]
        cols = [0, 3, 1, 2, 4, 7, 0, 2, 5, 6, 1, 3, 2, 4, 6, 0, 5, 7]
        vals = np.arange(1.0, len(rows) + 1.0)
        return COOMatrix(rows, cols, vals, (8, 8))

    def test_sort_step(self, fig1):
        p = PJDSMatrix.from_coo(fig1, block_rows=4)
        # stable descending: longest row (1: len 4) first
        assert p.permutation.perm[0] == 1
        assert np.all(np.diff(p.rowmax) <= 0)

    def test_pad_step(self, fig1):
        p = PJDSMatrix.from_coo(fig1, block_rows=4)
        # first block padded to 4 (the longest), second block to its max (2)
        assert p.padded_lengths[:4].tolist() == [4, 4, 4, 4]
        assert np.all(p.padded_lengths[4:] <= 2)

    def test_storage_below_ellpack(self, fig1):
        p = PJDSMatrix.from_coo(fig1, block_rows=4)
        e = ELLPACKMatrix.from_coo(fig1, row_pad=4)
        assert p.stored_elements < e.stored_elements

    def test_spmv(self, fig1):
        p = PJDSMatrix.from_coo(fig1, block_rows=4)
        x = np.arange(1.0, 9.0)
        assert np.allclose(p.spmv(x), fig1.spmv(x))


class TestConstruction:
    def test_spmv_matches_coo(self, coo):
        for br in (1, 4, 32, 200):
            p = PJDSMatrix.from_coo(coo, block_rows=br)
            x = np.random.default_rng(br).normal(size=coo.ncols)
            assert np.allclose(p.spmv(x), coo.spmv(x)), br

    def test_column_lengths_are_block_multiples_inside(self, coo):
        br = 8
        p = PJDSMatrix.from_coo(coo, block_rows=br)
        # every column length is a multiple of br, except where the
        # partial last block participates
        cl = p.column_lengths
        full_rows = (coo.nrows // br) * br
        inner = cl[cl < full_rows]
        assert np.all(inner % br == 0)

    def test_padded_lengths_non_increasing(self, coo):
        p = PJDSMatrix.from_coo(coo, block_rows=8)
        assert np.all(np.diff(p.padded_lengths) <= 0)

    def test_rowmax_true_lengths(self, coo):
        p = PJDSMatrix.from_coo(coo, block_rows=8)
        lengths = coo.row_lengths()
        assert np.array_equal(p.rowmax, lengths[p.permutation.perm])

    def test_padding_points_to_column_zero(self, coo):
        p = PJDSMatrix.from_coo(coo, block_rows=16)
        # padded slots: those where k >= true length in that column
        for j in range(p.width):
            s, e = int(p.col_start[j]), int(p.col_start[j + 1])
            k = np.arange(e - s)
            pad = k[p.rowmax[: e - s] <= j]
            assert np.all(p.val[s + pad] == 0.0)
            assert np.all(p.col_idx[s + pad] == 0)

    def test_roundtrip(self, coo):
        p = PJDSMatrix.from_coo(coo, block_rows=8)
        assert np.allclose(p.to_coo().todense(), coo.todense())

    def test_total_slots_equals_padded_sum(self, coo):
        p = PJDSMatrix.from_coo(coo, block_rows=8)
        assert p.total_slots == int(p.padded_lengths.sum())

    def test_block_rows_recorded(self, coo):
        assert PJDSMatrix.from_coo(coo, block_rows=8).block_rows == 8

    def test_unknown_kwarg_rejected(self, coo):
        with pytest.raises(TypeError, match="unexpected"):
            PJDSMatrix.from_coo(coo, row_pad=2)


class TestSigmaWindow:
    def test_sigma_one_keeps_order(self, coo):
        p = PJDSMatrix.from_coo(coo, block_rows=8, sigma=1)
        assert p.permutation.is_identity

    def test_sigma_full_equals_global_sort(self, coo):
        full = PJDSMatrix.from_coo(coo, block_rows=8)
        sig = PJDSMatrix.from_coo(coo, block_rows=8, sigma=coo.nrows)
        assert np.array_equal(full.permutation.perm, sig.permutation.perm)

    def test_sigma_variants_correct(self, coo):
        x = np.random.default_rng(3).normal(size=coo.ncols)
        ref = coo.spmv(x)
        for sigma in (1, 3, 16, 50):
            p = PJDSMatrix.from_coo(coo, block_rows=8, sigma=sigma)
            assert np.allclose(p.spmv(x), ref), sigma

    def test_smaller_sigma_never_reduces_storage(self, coo):
        sizes = [
            PJDSMatrix.from_coo(coo, block_rows=8, sigma=s).total_slots
            for s in (1, 8, 64, coo.nrows)
        ]
        assert sizes == sorted(sizes, reverse=True)


class TestPaperMetrics:
    def test_adversarial_bound(self):
        """One full row + single-entry rows: pJDS <= (br+1)*N - br slots."""
        n, br = 64, 8
        rows = [0] * n + list(range(1, n))
        cols = list(range(n)) + [0] * (n - 1)
        coo = COOMatrix(rows, cols, np.ones(len(rows)), (n, n))
        p = PJDSMatrix.from_coo(coo, block_rows=br)
        e = ELLPACKMatrix.from_coo(coo, row_pad=1)
        assert p.total_slots <= (br + 1) * n - br
        assert e.stored_elements == n * n

    def test_data_reduction_vs_ellpack(self, coo):
        p = PJDSMatrix.from_coo(coo, block_rows=8)
        e = ELLPACKMatrix.from_coo(coo, row_pad=8)
        red = p.data_reduction_vs(e)
        assert 0.0 < red < 1.0
        expected = 1.0 - p.stored_elements / e.stored_elements
        assert red == pytest.approx(expected)

    def test_overhead_vs_minimum_small(self, coo):
        p = PJDSMatrix.from_coo(coo, block_rows=4)
        assert 0.0 <= p.overhead_vs_minimum() < 0.5

    def test_constant_rows_zero_overhead(self):
        n = 32
        rows = np.repeat(np.arange(n), 3)
        cols = np.tile(np.array([0, 5, 9]), n)
        coo = COOMatrix(rows, cols, np.ones(3 * n), (n, 16))
        p = PJDSMatrix.from_coo(coo, block_rows=8)
        assert p.overhead_vs_minimum() == 0.0


class TestPermutedBasis:
    def test_spmv_permuted_consistent(self, coo):
        p = PJDSMatrix.from_coo(coo, block_rows=8)
        x = np.random.default_rng(4).normal(size=coo.ncols)
        y_direct = p.spmv(x)
        y_perm = p.spmv_permuted(p.permutation.to_permuted(x))
        assert np.allclose(p.permutation.to_original(y_perm), y_direct)

    def test_spmv_permuted_requires_square(self):
        rect = random_coo(10, 20, seed=42)
        p = PJDSMatrix.from_coo(rect, block_rows=4)
        with pytest.raises(ValueError, match="square"):
            p.spmv_permuted(np.ones(20))
