"""Tests for the format-invariant checker."""

import numpy as np
import pytest

from repro.formats import (
    COOMatrix,
    CSRMatrix,
    FormatInvariantError,
    convert,
    verify_format,
)

from _test_common import ALL_FORMATS, random_coo


class TestHealthyFormats:
    @pytest.mark.parametrize("fmt", ALL_FORMATS + ["ELLR-T", "BELLPACK"])
    def test_all_formats_pass(self, fmt):
        coo = random_coo(45, seed=231)
        verify_format(convert(coo, fmt))

    @pytest.mark.parametrize("fmt", ["pJDS", "SELL-C-sigma"])
    def test_sigma_variants_pass(self, fmt):
        coo = random_coo(45, seed=232)
        verify_format(convert(coo, fmt, sigma=7))

    def test_float32_tolerance(self):
        coo = random_coo(40, seed=233, dtype=np.float32)
        verify_format(convert(coo, "pJDS"))

    def test_empty_matrix(self):
        verify_format(COOMatrix([], [], [], (3, 3)))

    def test_skip_spmv(self):
        coo = random_coo(30, seed=234)
        verify_format(convert(coo, "pJDS"), check_spmv=False)


class TestViolations:
    def test_corrupted_rowmax_detected(self):
        """Inflating a true row length breaks the nnz bookkeeping."""
        coo = random_coo(30, seed=235)
        m = convert(coo, "pJDS")
        m._true_lengths.flags.writeable = True
        m._true_lengths[0] += 1  # inflate the longest row
        with pytest.raises(
            FormatInvariantError, match="padded|nnz|row_lengths"
        ):
            verify_format(m)

    def test_corrupted_col_start_detected(self):
        coo = random_coo(30, seed=236)
        m = convert(coo, "pJDS")
        m._col_start.flags.writeable = True
        m._col_start[1] = -1  # non-monotone vs col_start[0] = 0
        with pytest.raises(FormatInvariantError, match="monotone|col_start"):
            verify_format(m)

    def test_inconsistent_nnz_detected(self):
        coo = random_coo(30, seed=237)
        m = convert(coo, "CRS")
        m._nnz += 1  # bookkeeping lie
        with pytest.raises(FormatInvariantError, match="nnz|row_lengths"):
            verify_format(m)

    def test_broken_custom_format_detected(self):
        """A user format whose breakdown omits 'val' is rejected."""

        class Broken(CSRMatrix):
            name = "broken"

            def memory_breakdown(self):
                return {"data": 8}

        coo = random_coo(10, seed=238)
        src = CSRMatrix.from_coo(coo)
        m = Broken(src.indptr.copy(), src.indices.copy(), src.data.copy(), src.shape)
        with pytest.raises(FormatInvariantError, match="val"):
            verify_format(m)

    def test_negative_breakdown_detected(self):
        class Negative(CSRMatrix):
            name = "negative"

            def memory_breakdown(self):
                return {"val": -1}

        coo = random_coo(10, seed=239)
        src = CSRMatrix.from_coo(coo)
        m = Negative(src.indptr.copy(), src.indices.copy(), src.data.copy(), src.shape)
        with pytest.raises(FormatInvariantError, match="negative"):
            verify_format(m)
