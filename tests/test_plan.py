"""Tests for the communication plan (halo lists, local/nonlocal split)."""

import numpy as np
import pytest

from repro.distributed import build_plan, partition_rows
from repro.formats import CSRMatrix

from _test_common import random_coo


@pytest.fixture(scope="module")
def csr():
    return CSRMatrix.from_coo(random_coo(90, seed=151, max_row=10))


@pytest.fixture(scope="module")
def plan(csr):
    part = partition_rows(csr.nrows, 5, row_weights=csr.row_lengths())
    return build_plan(csr, part)


class TestPlanInvariants:
    def test_nnz_split_covers_matrix(self, csr, plan):
        assert plan.total_nnz == csr.nnz
        for rp in plan.ranks:
            lo, hi = rp.row_range
            block_nnz = int(csr.row_lengths()[lo:hi].sum())
            assert rp.nnz_local + rp.nnz_nonlocal == block_nnz

    def test_recv_cols_are_remote_and_sorted(self, plan):
        for rp in plan.ranks:
            lo, hi = rp.row_range
            for src, cols in rp.recv_cols.items():
                assert src != rp.rank
                assert np.all((cols < lo) | (cols >= hi))
                assert np.all(np.diff(cols) > 0)  # sorted, duplicate-free

    def test_recv_cols_owned_by_source(self, plan):
        part = plan.partition
        for rp in plan.ranks:
            for src, cols in rp.recv_cols.items():
                assert np.all(part.owner_of(cols) == src)

    def test_send_matches_recv(self, plan):
        part = plan.partition
        for rp in plan.ranks:
            for src, cols in rp.recv_cols.items():
                sender = plan.ranks[src]
                local = sender.send_cols[rp.rank]
                lo = part.offsets[src]
                assert np.array_equal(local + lo, cols)

    def test_halo_size_accounting(self, plan):
        for rp in plan.ranks:
            assert rp.halo_size == sum(len(c) for c in rp.recv_cols.values())
        assert plan.total_comm_elements == sum(r.halo_size for r in plan.ranks)

    def test_neighbors_symmetric_with_lists(self, plan):
        for rp in plan.ranks:
            for n in rp.neighbors:
                assert n in rp.recv_cols or n in rp.send_cols

    def test_bytes_scale_with_itemsize(self, plan):
        for rp in plan.ranks:
            b8 = rp.recv_bytes(8)
            b4 = rp.recv_bytes(4)
            for src in b8:
                assert b8[src] == 2 * b4[src]


class TestMatrices:
    def test_local_matrix_columns_in_range(self, plan):
        for rp in plan.ranks:
            lm = rp.local_matrix
            assert lm is not None
            if lm.nnz:
                assert lm.indices.max() < rp.local_rows

    def test_nonlocal_matrix_columns_in_halo(self, plan):
        for rp in plan.ranks:
            nm = rp.nonlocal_matrix
            assert nm is not None
            if nm.nnz:
                assert nm.indices.max() < rp.halo_size

    def test_halo_cols_concatenate_sources(self, plan):
        for rp in plan.ranks:
            if rp.halo_cols is None or rp.halo_cols.size == 0:
                continue
            expected = np.concatenate(
                [rp.recv_cols[s] for s in sorted(rp.recv_cols)]
            )
            assert np.array_equal(rp.halo_cols, expected)
            assert np.all(np.diff(rp.halo_cols) > 0)

    def test_reconstruction(self, csr, plan):
        """local + nonlocal sub-matrices reproduce each row block."""
        for rp in plan.ranks:
            lo, hi = rp.row_range
            dense = np.zeros((rp.local_rows, csr.ncols))
            ld = rp.local_matrix.todense()
            dense[:, lo:hi] += ld[:, : rp.local_rows]
            if rp.halo_cols is not None and rp.halo_cols.size:
                nd = rp.nonlocal_matrix.todense()
                dense[:, rp.halo_cols] += nd[:, : rp.halo_cols.size]
            assert np.allclose(dense, csr.todense()[lo:hi])

    def test_stats_only_plan(self, csr):
        part = partition_rows(csr.nrows, 4)
        p = build_plan(csr, part, with_matrices=False)
        for rp in p.ranks:
            assert rp.local_matrix is None
            assert rp.nonlocal_matrix is None
            assert rp.halo_size >= 0


class TestEdgeCases:
    def test_single_rank_no_comm(self, csr):
        p = build_plan(csr, partition_rows(csr.nrows, 1))
        assert p.total_comm_elements == 0
        assert p.ranks[0].nnz_nonlocal == 0

    def test_block_diagonal_no_comm(self):
        """A block-diagonal matrix partitioned on block boundaries."""
        from repro.formats import COOMatrix

        n = 40
        rows = np.arange(n)
        cols = (rows // 10) * 10 + (rows + 3) % 10  # stay within own block
        coo = COOMatrix(rows, cols, np.ones(n), (n, n))
        csr = CSRMatrix.from_coo(coo)
        p = build_plan(csr, partition_rows(n, 4))
        assert p.total_comm_elements == 0

    def test_rectangular_rejected(self):
        csr = CSRMatrix.from_coo(random_coo(10, 20, seed=152))
        with pytest.raises(ValueError, match="square"):
            build_plan(csr, partition_rows(10, 2))

    def test_partition_size_mismatch(self, csr):
        with pytest.raises(ValueError, match="partition"):
            build_plan(csr, partition_rows(csr.nrows + 1, 2))
