"""End-to-end request tracing: ids, links, adoption, fork propagation.

The tentpole contract under test: every span carries a ``trace_id``
minted at the front-end and inherited down the stack; a
:class:`~repro.obs.spans.SpanContext` survives pickling, so the
multiprocessing distributed backend ships a request's identity across
the address-space boundary; worker spans travel home over the result
queue and are *adopted* — remapped onto the driver's span-id space
with the cross-process parent link intact; and injected faults
annotate the victim span so ``repro obs trace`` shows them in situ.
"""

import pickle
import threading

import numpy as np
import pytest

from repro import obs
from repro.distributed import build_plan, distributed_spmv, partition_rows
from repro.faults import FaultPlan, RetryPolicy
from repro.faults.plan import FaultEvent
from repro.formats import CSRMatrix
from repro.obs.spans import Span

from _test_common import random_coo


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset_all()
    yield
    obs.disable()
    obs.reset_all()


@pytest.fixture
def enabled():
    obs.enable()
    yield


def _setup_plan(n=60, nparts=3, seed=13):
    csr = CSRMatrix.from_coo(random_coo(n, seed=seed, max_row=7))
    part = partition_rows(csr.nrows, nparts, row_weights=csr.row_lengths())
    return csr, build_plan(csr, part)


# ---------------------------------------------------------------------------
# trace ids
# ---------------------------------------------------------------------------


class TestTraceIds:
    def test_root_span_mints_trace(self, enabled):
        with obs.span("root") as sp:
            assert len(sp.trace_id) == 16
            int(sp.trace_id, 16)  # hex

    def test_children_inherit_the_trace(self, enabled):
        with obs.span("a") as a:
            with obs.span("b") as b:
                with obs.span("c") as c:
                    pass
        assert a.trace_id == b.trace_id == c.trace_id
        assert b.parent_id == a.span_id and c.parent_id == b.span_id

    def test_sibling_roots_get_distinct_traces(self, enabled):
        with obs.span("first") as a:
            pass
        with obs.span("second") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_trace_root_honors_caller_id(self, enabled):
        given = "cafe" * 4
        with obs.trace_root("http.spmv", trace_id=given) as sp:
            assert sp.trace_id == given
            with obs.span("inner") as inner:
                pass
        assert inner.trace_id == given

    def test_trace_root_detaches_from_enclosing_span(self, enabled):
        with obs.span("outer") as outer:
            with obs.trace_root("fresh") as fresh:
                pass
        assert fresh.trace_id != outer.trace_id
        assert fresh.parent_id is None

    def test_disabled_records_nothing(self):
        with obs.span("root") as sp:
            pass
        assert obs.current_trace() is None
        assert obs.get_tracer().finished() == []
        assert getattr(sp, "span_id", None) is None


# ---------------------------------------------------------------------------
# context capture / pickling / cross-thread attach
# ---------------------------------------------------------------------------


class TestSpanContext:
    def test_capture_and_pickle_round_trip(self, enabled):
        with obs.span("parent") as sp:
            ctx = obs.capture_context()
        assert ctx.span_id == sp.span_id
        assert ctx.trace_id == sp.trace_id
        rt = pickle.loads(pickle.dumps(ctx))
        assert rt == ctx

    def test_attach_context_across_thread(self, enabled):
        with obs.span("driver") as driver:
            ctx = obs.capture_context()

            def worker():
                with obs.attach_context(ctx):
                    with obs.span("worker.task"):
                        pass

            t = threading.Thread(target=worker)
            t.start()
            t.join()
        task = obs.get_tracer().find("worker.task")[0]
        assert task.parent_id == driver.span_id
        assert task.trace_id == driver.trace_id


# ---------------------------------------------------------------------------
# adoption (the cross-process ingest path)
# ---------------------------------------------------------------------------


class TestAdopt:
    # worker ids live in the pid-salted range isolate_forked() sets up,
    # so they are disjoint from driver ids by construction
    _W = 7 << 32

    def test_remaps_internal_ids_keeps_external_parent(self, enabled):
        with obs.span("driver") as driver:
            pass
        tid = driver.trace_id
        shipped = [
            Span("w.root", self._W + 1, driver.span_id, 0.0, 1.0,
                 trace_id=tid),
            Span("w.child", self._W + 2, driver.span_id, 0.0, 0.5,
                 trace_id=tid),
        ]
        assert obs.adopt_spans(shipped) == 2
        w_root = obs.get_tracer().find("w.root")[0]
        w_child = obs.get_tracer().find("w.child")[0]
        assert w_root.span_id != self._W + 1
        assert w_child.span_id != w_root.span_id
        # external parent (the driver span) kept verbatim on both
        assert w_root.parent_id == driver.span_id
        assert w_child.parent_id == driver.span_id

    def test_rewrites_parents_within_the_batch(self, enabled):
        with obs.span("driver") as driver:
            pass
        shipped = [
            Span("w.a", self._W + 1, driver.span_id, 0.0, 1.0,
                 trace_id=driver.trace_id),
            Span("w.b", self._W + 2, self._W + 1, 0.2, 0.8,
                 trace_id=driver.trace_id),
        ]
        obs.adopt_spans(shipped)
        a = obs.get_tracer().find("w.a")[0]
        b = obs.get_tracer().find("w.b")[0]
        assert b.parent_id == a.span_id

    def test_forked_isolation_moves_id_range(self, enabled):
        tr = obs.Tracer()
        with tr.span("x"):
            pass
        tr.isolate_forked()
        assert tr.finished() == []
        assert tr.next_id() >= 1 << 32


# ---------------------------------------------------------------------------
# tree reconstruction + link grafting
# ---------------------------------------------------------------------------


class TestTraceTree:
    def _seed_linked_traces(self):
        """Two request traces sharing one linked batch span."""
        tr = obs.get_tracer()
        req_a = Span("serve.request", tr.next_id(), None, 0.0, 3.0,
                     trace_id="a" * 16, attrs={"matrix": "m"})
        req_b = Span("serve.request", tr.next_id(), None, 0.1, 3.0,
                     trace_id="b" * 16)
        batch = Span("serve.batch", tr.next_id(), None, 1.0, 2.0,
                     trace_id="c" * 16,
                     links=(("a" * 16, req_a.span_id), ("b" * 16, req_b.span_id)))
        kernel = Span("engine.spmm", tr.next_id(), batch.span_id, 1.2, 1.8,
                      trace_id="c" * 16)
        for s in (req_a, req_b, batch, kernel):
            tr.add_finished(s)
        return req_a, req_b, batch, kernel

    def test_linked_batch_grafts_with_descendants(self, enabled):
        req_a, _, batch, kernel = self._seed_linked_traces()
        roots = obs.build_trace("a" * 16)
        assert len(roots) == 1 and roots[0].span.span_id == req_a.span_id
        grafted = roots[0].children[0]
        assert grafted.span.span_id == batch.span_id and grafted.via_link
        assert grafted.children[0].span.span_id == kernel.span_id

    def test_both_request_traces_see_the_shared_batch(self, enabled):
        self._seed_linked_traces()
        for tid in ("a" * 16, "b" * 16):
            text = obs.render_trace(tid)
            assert "serve.batch" in text and "engine.spmm" in text
            assert "~" in text  # via-link marker

    def test_list_traces_and_prefix_resolution(self, enabled):
        self._seed_linked_traces()
        rows = obs.list_traces()
        assert {r["trace_id"] for r in rows} == {"a" * 16, "b" * 16, "c" * 16}
        assert obs.find_trace_id("a" * 4) == "a" * 16
        with pytest.raises(KeyError):
            obs.find_trace_id("dead")
        tr = obs.get_tracer()
        tr.add_finished(Span("x", tr.next_id(), None, 0.0, 1.0,
                             trace_id="ab" + "c" * 14))
        with pytest.raises(ValueError):
            obs.find_trace_id("a")

    def test_jsonl_round_trip_preserves_traces(self, enabled, tmp_path):
        self._seed_linked_traces()
        path = tmp_path / "spans.jsonl"
        obs.write_jsonl(str(path))
        spans = obs.read_spans_jsonl(str(path))
        assert len(spans) == 4
        batch = [s for s in spans if s.name == "serve.batch"][0]
        assert len(batch.links) == 2
        text = obs.render_trace("a" * 16, spans)
        assert "engine.spmm" in text


# ---------------------------------------------------------------------------
# multiprocessing backend propagation (satellite: fork survival)
# ---------------------------------------------------------------------------


class TestProcessBackendPropagation:
    def test_trace_id_survives_fork_and_parent_links_hold(self, enabled):
        csr, plan = _setup_plan()
        x = np.random.default_rng(3).normal(size=csr.ncols)
        with obs.trace_root("test.request") as root:
            y = distributed_spmv(plan, x, backend="processes", timeout=30.0)
        np.testing.assert_allclose(y, csr.spmv(x), rtol=1e-12)

        spans = obs.get_tracer().finished()
        drv = [s for s in spans if s.name == "distributed_spmv"]
        assert len(drv) == 1 and drv[0].trace_id == root.trace_id
        rank_spans = [s for s in spans if s.name == "rank.spmv"]
        assert len(rank_spans) == 3
        by_id = {s.span_id: s for s in spans}
        for s in rank_spans:
            assert s.trace_id == root.trace_id
            # walk to the top: must terminate at the request root
            cur = s
            for _ in range(10):
                if cur.parent_id is None or cur.parent_id not in by_id:
                    break
                cur = by_id[cur.parent_id]
            assert cur.name == "test.request"
        # adopted ids are unique in the driver space
        ids = [s.span_id for s in spans]
        assert len(ids) == len(set(ids))
        text = obs.render_trace(root.trace_id)
        assert "distributed_spmv" in text and "rank.spmv" in text

    def test_injected_fault_annotates_victim_across_fork(self, enabled):
        csr, plan = _setup_plan()
        x = np.random.default_rng(4).normal(size=csr.ncols)
        faults = FaultPlan(
            events=(
                FaultEvent(kind="kernel_exception", when=0.1,
                           layer="distributed", target={"rank": 1}),
            ),
            name="test-fork-fault",
        ).injector()
        retry = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        with obs.trace_root("test.request") as root:
            y = distributed_spmv(
                plan, x, backend="processes", timeout=30.0,
                faults=faults, retry=retry,
            )
        np.testing.assert_allclose(y, csr.spmv(x), rtol=1e-12)
        assert faults.injected == 1

        spans = obs.get_tracer().finished()
        applied = [s for s in spans if s.name == "fault.applied"]
        assert len(applied) == 1
        assert applied[0].attrs["kind"] == "kernel_exception"
        assert applied[0].attrs["rank"] == 1
        assert applied[0].trace_id == root.trace_id
        # the victim's recovery also lands in the same trace
        recover = [s for s in spans if s.name == "rank.recover"]
        assert recover and all(s.trace_id == root.trace_id for s in recover)
        text = obs.render_trace(root.trace_id)
        assert "fault.applied" in text and "rank.recover" in text

    def test_threads_and_processes_spans_agree(self, enabled):
        csr, plan = _setup_plan()
        x = np.random.default_rng(5).normal(size=csr.ncols)

        def names_for(backend):
            obs.reset_spans()
            with obs.trace_root("r"):
                distributed_spmv(plan, x, backend=backend, timeout=30.0)
            return sorted(
                s.name for s in obs.get_tracer().finished()
                if s.name.startswith("rank.")
            )

        assert names_for("threads") == names_for("processes")
