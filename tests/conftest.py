"""Pytest fixtures for the test suite (helpers live in _test_common)."""

from _test_common import (  # noqa: F401 - re-exported fixtures
    ALL_FORMATS,
    GPU_FORMATS,
    PERMUTING_FORMATS,
    any_format,
    random_coo,
    rect_coo,
    rng,
    small_coo,
    spd_coo,
)
