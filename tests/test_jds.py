"""Unit tests for classic JDS and the shared jagged machinery."""

import numpy as np
import pytest

from repro.core import JDSMatrix, PJDSMatrix, Permutation, jagged_fill
from repro.formats import COOMatrix

from _test_common import random_coo


@pytest.fixture(scope="module")
def coo() -> COOMatrix:
    return random_coo(55, seed=51)


class TestJaggedFill:
    def test_prefix_property(self, coo):
        lengths = coo.row_lengths()
        perm = Permutation(np.argsort(-lengths, kind="stable"))
        sorted_lengths = lengths[perm.perm]
        val, col, cs, true_l = jagged_fill(coo, perm, sorted_lengths)
        assert cs[-1] == coo.nnz  # no padding when padded == true
        assert np.array_equal(true_l, sorted_lengths)
        # column lengths are the counts of rows longer than j
        for j in range(len(cs) - 1):
            assert cs[j + 1] - cs[j] == int(np.count_nonzero(sorted_lengths > j))

    def test_rejects_increasing_padded_lengths(self, coo):
        perm = Permutation.identity(coo.nrows)
        bad = np.arange(coo.nrows)  # increasing
        with pytest.raises(ValueError, match="non-increasing"):
            jagged_fill(coo, perm, bad)

    def test_rejects_too_small_padding(self, coo):
        lengths = coo.row_lengths()
        perm = Permutation(np.argsort(-lengths, kind="stable"))
        with pytest.raises(ValueError, match="smaller"):
            jagged_fill(coo, perm, np.zeros(coo.nrows, dtype=np.int64))

    def test_wrong_shape_rejected(self, coo):
        perm = Permutation.identity(coo.nrows)
        with pytest.raises(ValueError, match="shape"):
            jagged_fill(coo, perm, np.zeros(3, dtype=np.int64))


class TestJDS:
    def test_spmv_matches_coo(self, coo):
        m = JDSMatrix.from_coo(coo)
        x = np.random.default_rng(0).normal(size=coo.ncols)
        assert np.allclose(m.spmv(x), coo.spmv(x))

    def test_zero_storage_overhead(self, coo):
        m = JDSMatrix.from_coo(coo)
        assert m.total_slots == coo.nnz
        assert m.padding_overhead == 0.0

    def test_equals_pjds_block_one(self, coo):
        j = JDSMatrix.from_coo(coo)
        p = PJDSMatrix.from_coo(coo, block_rows=1)
        assert j.total_slots == p.total_slots
        assert np.array_equal(j.col_start, p.col_start)
        assert np.array_equal(j.permutation.perm, p.permutation.perm)

    def test_roundtrip(self, coo):
        m = JDSMatrix.from_coo(coo)
        assert np.allclose(m.to_coo().todense(), coo.todense())

    def test_row_lengths_original_order(self, coo):
        m = JDSMatrix.from_coo(coo)
        assert np.array_equal(m.row_lengths(), coo.row_lengths())

    def test_memory_breakdown_fields(self, coo):
        m = JDSMatrix.from_coo(coo)
        bd = m.memory_breakdown()
        assert set(bd) == {"val", "col_idx", "col_start", "perm"}
        assert bd["val"] == coo.nnz * 8

    def test_sigma_windowed(self, coo):
        x = np.random.default_rng(1).normal(size=coo.ncols)
        for sigma in (1, 7, 1000):
            m = JDSMatrix.from_coo(coo, sigma=sigma)
            assert np.allclose(m.spmv(x), coo.spmv(x)), sigma

    def test_sigma_windowed_padding_appears(self, coo):
        """Windowed sorting forces the running-max lift => padding."""
        m = JDSMatrix.from_coo(coo, sigma=5)
        assert m.total_slots >= coo.nnz

    def test_width(self, coo):
        m = JDSMatrix.from_coo(coo)
        assert m.width == int(coo.row_lengths().max())

    def test_empty_rows_supported(self):
        coo = COOMatrix([0], [0], [1.0], (5, 5))
        m = JDSMatrix.from_coo(coo)
        x = np.ones(5)
        y = m.spmv(x)
        assert y[0] == 1.0
        assert np.all(y[1:] == 0.0)

    def test_unknown_kwarg_rejected(self, coo):
        with pytest.raises(TypeError, match="unexpected"):
            JDSMatrix.from_coo(coo, block_rows=4)

    def test_views_readonly(self, coo):
        m = JDSMatrix.from_coo(coo)
        for arr in (m.val, m.col_idx, m.col_start, m.rowmax, m.padded_lengths):
            with pytest.raises(ValueError):
                arr[0] = 0
