"""The scenario-matrix engine: combinator invariants and suite wiring.

Property tests (hypothesis) pin the expansion guarantees documented in
:mod:`repro.scenarios.matrix` — deduplication, seed determinism,
axis-order independence, subset monotonicity — on arbitrary combinator
trees; the suite-level tests pin the migration contract (the declarative
parity/chaos matrices cover at least the hand-rolled grids they
replaced) and the CLI's byte-identical JSON expansion.
"""

import io
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main as cli_main
from repro.scenarios import (
    Base,
    Filter,
    Product,
    ScenarioCell,
    Subset,
    Sum,
    axis_values,
    canonical_key,
    expand_suite,
    run_cell,
    suite_names,
)

# ---------------------------------------------------------------------------
# hypothesis strategies: arbitrary small combinator trees
# ---------------------------------------------------------------------------

_AXIS_NAMES = ("alpha", "beta", "gamma", "delta", "epsilon")


@st.composite
def base_specs(draw, name=None):
    name = name or draw(st.sampled_from(_AXIS_NAMES))
    values = tuple(
        draw(st.lists(st.integers(0, 6), min_size=1, max_size=4, unique=True))
    )
    return Base(name, values)


@st.composite
def product_specs(draw):
    """A Product over distinct axes (Products must not rebind an axis)."""
    names = draw(
        st.lists(
            st.sampled_from(_AXIS_NAMES), min_size=1, max_size=3, unique=True
        )
    )
    bases = [draw(base_specs(name=n)) for n in names]
    return bases[0] if len(bases) == 1 else Product(*bases)


@st.composite
def specs(draw):
    """Sum-of-products, optionally filtered and/or subset-sampled."""
    parts = draw(st.lists(product_specs(), min_size=1, max_size=3))
    spec = parts[0] if len(parts) == 1 else Sum(*parts)
    if draw(st.booleans()):
        spec = Filter(lambda c: sum(c.values()) % 3 != 0, spec)
    if draw(st.booleans()):
        spec = Subset(spec, draw(st.integers(0, 8)))
    return spec


# ---------------------------------------------------------------------------
# combinator properties
# ---------------------------------------------------------------------------

class TestExpansionProperties:
    @settings(max_examples=60, deadline=None)
    @given(spec=specs(), seed=st.integers(0, 2**31))
    def test_seed_deterministic(self, spec, seed):
        """Same (spec, seed) -> the same tuple, every time."""
        assert spec.expand(seed) == spec.expand(seed)

    @settings(max_examples=60, deadline=None)
    @given(spec=specs(), seed=st.integers(0, 2**31))
    def test_duplicate_free(self, spec, seed):
        """The frozenset property: no combo appears twice."""
        combos = spec.expand(seed)
        keys = [canonical_key(c) for c in combos]
        assert len(keys) == len(frozenset(keys))

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_axis_order_irrelevant(self, data):
        """Reordering Product children never changes the expansion."""
        names = data.draw(
            st.lists(
                st.sampled_from(_AXIS_NAMES),
                min_size=2,
                max_size=4,
                unique=True,
            )
        )
        bases = [data.draw(base_specs(name=n)) for n in names]
        perm = data.draw(st.permutations(bases))
        assert Product(*bases).expand(0) == Product(*perm).expand(0)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_sum_order_irrelevant(self, data):
        parts = data.draw(st.lists(product_specs(), min_size=2, max_size=3))
        perm = data.draw(st.permutations(parts))
        assert Sum(*parts).expand(0) == Sum(*perm).expand(0)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_subset_monotone(self, data):
        """Subset output is a subset of the child's; strict when k < n."""
        child = data.draw(product_specs())
        seed = data.draw(st.integers(0, 2**31))
        full = child.expand(seed)
        k = data.draw(st.integers(0, len(full) + 2))
        sample = Subset(child, k).expand(seed)
        full_keys = {canonical_key(c) for c in full}
        assert {canonical_key(c) for c in sample} <= full_keys
        assert len(sample) == min(k, len(full))

    def test_product_rebind_raises(self):
        spec = Product(Base("a", (1,)), Base("a", (2,)))
        with pytest.raises(ValueError, match="rebinds"):
            spec.expand(0)

    def test_empty_axis_raises(self):
        with pytest.raises(ValueError, match="no values"):
            Base("a", ())


# ---------------------------------------------------------------------------
# suite wiring: waves, migration floors, cell identity
# ---------------------------------------------------------------------------

class TestSuites:
    @pytest.mark.parametrize("name", suite_names())
    def test_smoke_strict_subset_of_full(self, name):
        full = expand_suite(name, wave="full")
        smoke = expand_suite(name, wave="smoke")
        full_axes = {c.axes for c in full}
        assert 0 < len(smoke) < len(full)
        assert {c.axes for c in smoke} < full_axes

    @pytest.mark.parametrize("name", suite_names())
    def test_expansion_deterministic(self, name):
        for wave in ("full", "smoke"):
            a = expand_suite(name, wave=wave, seed=7)
            b = expand_suite(name, wave=wave, seed=7)
            assert a == b

    @pytest.mark.parametrize("name", suite_names())
    def test_cell_ids_unique(self, name):
        cells = expand_suite(name, wave="full")
        ids = [c.cell_id for c in cells]
        assert len(ids) == len(set(ids))

    def test_migration_parity_covers_old_grid(self):
        """The old hand-rolled parity matrix parametrised 21 cases."""
        assert len(expand_suite("parity", wave="full")) >= 21

    def test_migration_parity_floor_with_new_formats(self):
        """The CMRS / ARG-CSR registrations grew the parity matrix to
        11 formats x 5 matrix classes x 3 kernel tiers = 165 cells;
        the floor pins it so a format can never silently fall out."""
        assert len(expand_suite("parity", wave="full")) >= 165

    def test_parity_covers_new_formats_across_all_tiers(self):
        """Satellite audit: every (new format, kernel tier) pair gets a
        parity cell for every matrix class the suite expands."""
        cells = expand_suite("parity", wave="full")
        seen = {}
        classes = set()
        for c in cells:
            axes = c.axes_dict
            classes.add(axes["matrix-class"])
            seen.setdefault(
                (axes["format"], axes["kernel-tier"]), set()
            ).add(axes["matrix-class"])
        for fmt in ("CMRS", "ARG-CSR"):
            for tier in ("numpy", "scipy", "compiled"):
                assert seen.get((fmt, tier)) == classes, (fmt, tier)

    def test_migration_chaos_covers_old_grid(self):
        """The old chaos grids parametrised 14 fault drills."""
        assert len(expand_suite("chaos", wave="full")) >= 14

    def test_unknown_suite_and_axis_raise(self):
        with pytest.raises(KeyError, match="unknown scenario suite"):
            expand_suite("nope")
        with pytest.raises(KeyError, match="unknown scenario axis"):
            axis_values("nope")
        with pytest.raises(ValueError, match="unknown wave"):
            expand_suite("parity", wave="nope")

    def test_cell_id_is_process_stable(self):
        """Ids hash canonical axes, not Python's salted hash()."""
        cell = ScenarioCell.build(
            "parity", "parity-check", {"format": "CRS", "kernel-tier": "numpy"}
        )
        flipped = ScenarioCell.build(
            "parity", "parity-check", {"kernel-tier": "numpy", "format": "CRS"}
        )
        assert cell.cell_id == flipped.cell_id
        assert cell.cell_id.startswith("parity-")

    def test_run_cell_unknown_executor(self):
        cell = ScenarioCell.build("x", "no-such-executor", {"a": 1})
        with pytest.raises(KeyError, match="unknown executor"):
            run_cell(cell)


# ---------------------------------------------------------------------------
# CLI: byte-identical JSON expansion
# ---------------------------------------------------------------------------

class TestMatrixCLI:
    def _expand(self, *argv):
        out = io.StringIO()
        rc = cli_main(["matrix", "expand", *argv], out)
        assert rc == 0
        return out.getvalue()

    def test_expand_json_byte_identical(self):
        a = self._expand("--wave", "full", "--json", "--seed", "3")
        b = self._expand("--wave", "full", "--json", "--seed", "3")
        assert a == b

    def test_expand_json_rows_well_formed(self):
        rows = json.loads(self._expand("--suite", "fleet", "--json"))
        assert rows
        for row in rows:
            assert row["suite"] == "fleet"
            assert row["executor"] == "fleet-drill"
            assert row["wave"] == "smoke"
            assert row["cell_id"].startswith("fleet-")
            assert set(row) >= {"axes", "env", "config"}
