"""Tests for the zero-allocation autotuned execution engine."""

import numpy as np
import pytest

from repro.engine import (
    BoundMatrix,
    ParallelSpMV,
    Workspace,
    autotune,
    bind,
    fingerprint,
    get_variant,
    make_spmv_operator,
    parallel_spmv,
    spmm_permuted,
    variants_for,
)
from repro.ops.spmv_kernels import _HAVE_CSR_MATVEC
from repro.ops import stored_csr_triplet
from repro.formats import convert
from repro.formats.csr import CSRMatrix
from repro.matrices.cache import TunerCache

from _test_common import ALL_FORMATS, PERMUTING_FORMATS, random_coo


@pytest.fixture(scope="module")
def coo():
    return random_coo(90, seed=11, max_row=16)


@pytest.fixture(scope="module")
def x(coo):
    return np.random.default_rng(7).standard_normal(coo.ncols)


@pytest.fixture(scope="module")
def y_ref(coo, x):
    return coo.spmv(x)


# ---------------------------------------------------------------------------
class TestWorkspace:
    def test_buffers_are_persistent(self):
        ws = Workspace()
        a = ws.buf("a", 16, np.float64)
        b = ws.buf("a", 16, np.float64)
        assert a is b
        assert ws.allocations == 1

    def test_shape_mismatch_raises(self):
        ws = Workspace()
        ws.buf("a", 16, np.float64)
        with pytest.raises(ValueError, match="requested"):
            ws.buf("a", 17, np.float64)

    def test_const_factory_called_once(self):
        ws = Workspace()
        calls = []
        ws.const("c", lambda: calls.append(1) or np.arange(3))
        ws.const("c", lambda: calls.append(1) or np.arange(3))
        assert len(calls) == 1


# ---------------------------------------------------------------------------
class TestVariants:
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_every_variant_matches_reference(self, fmt, coo, x, y_ref):
        m = convert(coo, fmt)
        for v in variants_for(m):
            b = bind(m, variant=v.name)
            assert np.allclose(b.spmv(x), y_ref, atol=1e-12), v.name

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_warm_calls_match_cold(self, fmt, coo, x, y_ref):
        """Workspace reuse must not change results (satellite check)."""
        m = convert(coo, fmt)
        for v in variants_for(m):
            cold = bind(m, variant=v.name).spmv(x)
            b = bind(m, variant=v.name)
            for _ in range(3):
                warm = b.spmv(x)
            assert np.array_equal(cold, warm), v.name
            assert b.calls == 3

    @pytest.mark.parametrize("fmt", PERMUTING_FORMATS)
    def test_permuted_variants(self, fmt, coo, x, y_ref):
        m = convert(coo, fmt)
        for v in variants_for(m):
            if not v.supports_permuted:
                continue
            b = bind(m, variant=v.name)
            xp = m.permutation.to_permuted(x)
            yp = b.spmv_permuted(xp)
            assert np.allclose(
                m.permutation.to_original(yp.copy()), y_ref, atol=1e-12
            ), v.name

    def test_unknown_variant_raises(self, coo):
        m = convert(coo, "CRS")
        with pytest.raises(KeyError):
            get_variant(m, "nonexistent")

    def test_out_parameter_zero_alloc(self, coo, x, y_ref):
        m = convert(coo, "CRS")
        b = bind(m, tune=False)
        out = np.empty(m.nrows)
        y = b.spmv(x, out=out)
        assert y is out
        assert np.allclose(y, y_ref, atol=1e-12)


# ---------------------------------------------------------------------------
class TestTuner:
    def test_fingerprint_structure_sensitive(self, coo):
        a = convert(coo, "CRS")
        b = convert(random_coo(90, seed=12, max_row=16), "CRS")
        same = convert(coo, "CRS")
        assert fingerprint(a) == fingerprint(same)
        assert fingerprint(a) != fingerprint(b)

    def test_autotune_deterministic(self, coo):
        """Same seed + no cache -> timings may differ but the decision
        must be a valid variant; with a cache the decision replays."""
        m = convert(coo, "pJDS")
        cache = TunerCache(persist=False)
        r1 = autotune(m, reps=1, seed=0, cache=cache)
        r2 = autotune(m, reps=1, seed=0, cache=cache)
        assert not r1.cache_hit
        assert r2.cache_hit
        assert r1.variant == r2.variant
        assert r1.variant in {v.name for v in variants_for(m)}
        assert r1.timings  # measured candidates recorded

    def test_cache_round_trip(self, coo, tmp_path):
        m = convert(coo, "CRS")
        path = tmp_path / "tuner.json"
        c1 = TunerCache(path)
        r1 = autotune(m, reps=1, cache=c1)
        c2 = TunerCache(path)  # fresh instance, same file
        r2 = autotune(m, reps=1, cache=c2)
        assert r2.cache_hit
        assert r2.variant == r1.variant
        assert len(c2) == 1

    def test_stale_cache_entry_retunes(self, coo, tmp_path):
        m = convert(coo, "CRS")
        cache = TunerCache(tmp_path / "tuner.json")
        cache.put(fingerprint(m), {"variant": "deleted_kernel"})
        r = autotune(m, reps=1, cache=cache)
        assert not r.cache_hit
        assert r.variant in {v.name for v in variants_for(m)}

    def test_bind_uses_tuned_variant(self, coo):
        m = convert(coo, "pJDS")
        cache = TunerCache(persist=False)
        b = bind(m, reps=1, cache=cache)
        assert isinstance(b, BoundMatrix)
        assert b.tune_result is not None
        assert b.variant_name == b.tune_result.variant


# ---------------------------------------------------------------------------
class TestModelGuidedTuning:
    """Eq.-1 pruning + the kernel-tier component of the fingerprint."""

    def test_fingerprint_includes_kernel_tier_set(self, coo, monkeypatch):
        """A cache warmed under one tier set must not replay under
        another (e.g. numba installed after the cache was written)."""
        from repro.kernels import compiled

        m = convert(coo, "CRS")
        fp_before = fingerprint(m)
        monkeypatch.setattr(
            compiled, "kernel_tiers",
            lambda: ("numpy", "scipy-x", "numba-0.60.0"),
        )
        fp_after = fingerprint(m)
        assert fp_before != fp_after
        # and the structural prefix is unchanged — only the tier digest
        assert fp_before.rsplit(":kt", 1)[0] == fp_after.rsplit(":kt", 1)[0]

    def test_tier_change_invalidates_cached_decision(self, coo, monkeypatch):
        from repro.kernels import compiled

        m = convert(coo, "CRS")
        cache = TunerCache(persist=False)
        r1 = autotune(m, reps=1, cache=cache)
        assert autotune(m, reps=1, cache=cache).cache_hit
        monkeypatch.setattr(
            compiled, "kernel_tiers", lambda: ("numpy", "numba-0.60.0")
        )
        r2 = autotune(m, reps=1, cache=cache)
        assert not r2.cache_hit  # new tier set -> retune, not replay
        assert r2.fingerprint != r1.fingerprint

    def test_prune_times_at_most_top_k(self, coo):
        m = convert(coo, "pJDS")
        roster = {v.name for v in variants_for(m)}
        assert len(roster) > 3  # the prune must actually drop something
        r = autotune(m, reps=1, cache=TunerCache(persist=False),
                     prune=True, top_k=3)
        assert r.pruned
        assert len(r.timings) <= 3
        assert set(r.timings) | set(r.dropped) == roster
        # predictions cover the whole roster, not just the survivors
        assert set(r.predicted) == roster
        assert r.variant in r.timings

    def test_prune_provenance_survives_cache_replay(self, coo, tmp_path):
        m = convert(coo, "pJDS")
        path = tmp_path / "tuner.json"
        r1 = autotune(m, reps=1, cache=TunerCache(path), prune=True, top_k=2)
        r2 = autotune(m, reps=1, cache=TunerCache(path), prune=True, top_k=2)
        assert r2.cache_hit
        assert r2.pruned
        assert r2.dropped == r1.dropped
        assert r2.tier == r1.tier
        assert r2.measured_gbs == r1.measured_gbs
        assert r2.predicted_gbs == r1.predicted_gbs

    def test_prune_keeps_winner_reasonable(self, coo):
        """The pruned pick must be a real roster member and, on this
        matrix, within 5% of the exhaustive winner's best time."""
        m = convert(coo, "pJDS")
        exhaustive = autotune(m, reps=3, cache=TunerCache(persist=False))
        pruned = autotune(m, reps=3, cache=TunerCache(persist=False),
                          prune=True, top_k=3)
        best = exhaustive.timings[exhaustive.variant]
        picked = exhaustive.timings.get(pruned.variant)
        assert picked is not None, "pruned pick missing from roster"
        assert picked <= best * 1.05

    def test_prune_top_k_one_and_bad_k(self, coo):
        from repro.perfmodel.predict import prune_roster

        m = convert(coo, "CRS")
        r = autotune(m, reps=1, cache=TunerCache(persist=False),
                     prune=True, top_k=1)
        assert len(r.timings) == 1 and r.variant in r.timings
        with pytest.raises(ValueError, match="top_k"):
            prune_roster(m, top_k=0)

    def test_predictions_are_positive_and_ordered(self, coo):
        from repro.perfmodel.predict import predict_spmv

        m = convert(coo, "SELL-C-sigma")
        preds = predict_spmv(m, bandwidth_gbs=20.0)
        assert preds, "empty prediction list"
        secs = [p.predicted_seconds for p in preds]
        assert all(s > 0 for s in secs)
        assert secs == sorted(secs)
        names = {p.name for p in preds}
        assert names == {v.name for v in variants_for(m)}


# ---------------------------------------------------------------------------
class TestOperator:
    def test_ping_pong_buffers(self, coo, x, y_ref):
        m = convert(coo, "CRS")
        op = make_spmv_operator(m, tune=False, num_buffers=2)
        y1 = op(x)
        y2 = op(x)
        y3 = op(x)
        assert y1 is y3  # cycled back
        assert y1 is not y2
        assert np.allclose(y1, y_ref, atol=1e-12)

    def test_permuted_operator(self, coo, x, y_ref):
        m = convert(coo, "pJDS")
        op = make_spmv_operator(m, permuted=True, tune=False)
        xp = m.permutation.to_permuted(x)
        yp = op(xp)
        assert np.allclose(m.permutation.to_original(yp.copy()), y_ref, atol=1e-12)


# ---------------------------------------------------------------------------
class TestSpMM:
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    @pytest.mark.parametrize("order", ["C", "F"])
    def test_matches_percolumn(self, fmt, order, coo):
        """Batched kernels must agree with the per-column reference."""
        m = convert(coo, fmt)
        X = np.asarray(
            np.random.default_rng(3).standard_normal((coo.ncols, 6)), order=order
        )
        ref = np.column_stack(
            [coo.spmv(np.ascontiguousarray(X[:, j])) for j in range(6)]
        )
        assert np.allclose(m.spmm(X), ref, atol=1e-12)
        assert np.allclose(m.spmm_percolumn(X), ref, atol=1e-12)

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_bound_spmm_with_workspace(self, fmt, coo):
        m = convert(coo, fmt)
        b = bind(m, tune=False)
        X = np.random.default_rng(4).standard_normal((coo.ncols, 4))
        ref = m.spmm_percolumn(X)
        Y1 = b.spmm(X)
        Y2 = b.spmm(X)  # workspace-warm call
        assert np.allclose(Y1, ref, atol=1e-12)
        assert np.array_equal(Y1, Y2)

    @pytest.mark.parametrize("fmt", PERMUTING_FORMATS)
    def test_spmm_permuted(self, fmt, coo):
        m = convert(coo, fmt)
        if not hasattr(m, "spmv_permuted"):
            pytest.skip("no stored-basis kernel")
        P = m.permutation
        X = np.random.default_rng(5).standard_normal((coo.ncols, 3))
        Xp = np.column_stack([P.to_permuted(X[:, j].copy()) for j in range(3)])
        Yp = spmm_permuted(m, np.ascontiguousarray(Xp))
        Y = np.column_stack([P.to_original(Yp[:, j].copy()) for j in range(3)])
        assert np.allclose(Y, m.spmm_percolumn(X), atol=1e-12)

    def test_float32_native(self, coo):
        m = convert(coo.astype(np.float32), "CRS")
        X = np.random.default_rng(6).standard_normal((coo.ncols, 3)).astype(
            np.float32
        )
        Y = m.spmm(X)
        assert Y.dtype == np.float32
        assert np.allclose(Y, m.spmm_percolumn(X), atol=1e-4)


# ---------------------------------------------------------------------------
_scipy_only = pytest.mark.skipif(
    not _HAVE_CSR_MATVEC, reason="scipy sparsetools unavailable"
)


class TestCompiledDelegates:
    """The optional scipy-backed stored-CSR delegate kernels."""

    @_scipy_only
    @pytest.mark.parametrize(
        "fmt", ["CRS", "ELLPACK", "ELLPACK-R", "JDS", "pJDS", "SELL-C-sigma"]
    )
    def test_scipy_variant_registered(self, fmt, coo):
        m = convert(coo, fmt)
        names = {v.name for v in variants_for(m)}
        assert any(n.endswith("_scipy") for n in names), names

    @_scipy_only
    @pytest.mark.parametrize("fmt", ["CRS", "pJDS", "SELL-C-sigma"])
    def test_stored_csr_triplet_cached(self, fmt, coo):
        m = convert(coo, fmt)
        t1 = stored_csr_triplet(m)
        t2 = stored_csr_triplet(m)
        assert all(a is b for a, b in zip(t1, t2))
        # indices stay inside the column space (padding points at col 0)
        indptr, indices, _ = t1
        assert indptr[0] == 0 and np.all(np.diff(indptr) >= 0)
        if indices.size:
            assert 0 <= indices.min() and indices.max() < m.ncols

    @_scipy_only
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_numpy_fallback_matches_delegate(self, fmt, coo, monkeypatch):
        """The pure-NumPy spmm path must agree with the compiled one."""
        m = convert(coo, fmt)
        X = np.ascontiguousarray(
            np.random.default_rng(8).standard_normal((coo.ncols, 5))
        )
        Y_sp = m.spmm(X)
        monkeypatch.setattr("repro.ops.spmm_kernels._HAVE_CSR_MATVEC", False)
        Y_np = m.spmm(X)
        assert np.allclose(Y_np, Y_sp, atol=1e-12)


# ---------------------------------------------------------------------------
class TestAliasing:
    def test_spmv_out_aliases_input_raises(self, coo):
        m = convert(coo, "CRS")
        x = np.random.default_rng(0).standard_normal(coo.ncols)
        with pytest.raises(ValueError, match="alias"):
            m.spmv(x, out=x)

    def test_spmm_out_aliases_input_raises(self, coo):
        m = convert(coo, "CRS")
        X = np.random.default_rng(0).standard_normal((coo.ncols, 2))
        with pytest.raises(ValueError, match="alias"):
            m.spmm(X, out=X)


# ---------------------------------------------------------------------------
class TestParallel:
    @pytest.mark.parametrize("nworkers", [1, 3])
    def test_vector_mode_bitwise_matches_serial(self, coo, x, nworkers):
        csr = CSRMatrix.from_coo(coo)
        y_serial = csr.spmv(x)
        with ParallelSpMV(csr, nworkers, mode="vector") as pool:
            y1 = pool.spmv(x)
            y2 = pool.spmv(x)
        assert np.array_equal(y1, y_serial)  # bitwise, any worker count
        assert np.array_equal(y2, y_serial)

    def test_task_mode_matches_to_rounding(self, coo, x):
        csr = CSRMatrix.from_coo(coo)
        y_serial = csr.spmv(x)
        with ParallelSpMV(csr, 3, mode="task") as pool:
            y = pool.spmv(x)
        assert np.allclose(y, y_serial, atol=1e-12)

    def test_accepts_any_format(self, coo, x):
        y = parallel_spmv(convert(coo, "pJDS"), x, nworkers=2)
        assert np.array_equal(y, CSRMatrix.from_coo(coo).spmv(x))

    def test_out_parameter_and_validation(self, coo, x):
        with ParallelSpMV(CSRMatrix.from_coo(coo), 2) as pool:
            out = np.empty(coo.nrows)
            y = pool.spmv(x, out=out)
            assert y is out
            with pytest.raises(ValueError, match="shape"):
                pool.spmv(x[:-1])
        with pytest.raises(RuntimeError, match="closed"):
            pool.spmv(x)

    def test_invalid_mode(self, coo):
        with pytest.raises(ValueError, match="mode"):
            ParallelSpMV(CSRMatrix.from_coo(coo), 2, mode="warp")


# ---------------------------------------------------------------------------
class TestSolverIntegration:
    def test_engine_cg_matches_plain(self, spd_coo):
        from repro.solvers import conjugate_gradient

        p = convert(spd_coo, "pJDS")
        b = np.random.default_rng(0).standard_normal(spd_coo.nrows)
        r_plain = conjugate_gradient(p, b)
        r_engine = conjugate_gradient(p, b, engine=True)
        assert r_engine.converged
        assert np.allclose(r_plain.x, r_engine.x, atol=1e-6)

    def test_engine_kpm_preserves_spmv_count(self, spd_coo):
        from repro.solvers import kpm_spectral_density

        p = convert(spd_coo, "pJDS")
        r = kpm_spectral_density(
            p, num_moments=16, num_vectors=3, bounds=(0.0, 8.0), engine=True
        )
        assert r.spmv_count == 3 * 15


class TestClone:
    """BoundMatrix.clone(): shared data + decision, private scratch."""

    def test_clone_shares_matrix_and_decision(self, coo):
        b = bind(convert(coo, "CRS"), tune=False)
        c = b.clone()
        assert c is not b
        assert c.matrix is b.matrix  # zero-copy matrix data
        assert c.variant is b.variant
        assert c.tune_result is b.tune_result
        assert c.workspace is not b.workspace  # fresh scratch

    def test_clone_matches_original_bitwise(self, coo, x):
        b = bind(convert(coo, "CRS"), tune=False, variant="csr_scipy")
        c = b.clone()
        np.testing.assert_array_equal(c.spmv(x), b.spmv(x))

    def test_clone_call_counters_independent(self, coo, x):
        b = bind(convert(coo, "CRS"), tune=False)
        c = b.clone()
        b.spmv(x)
        b.spmv(x)
        c.spmv(x)
        assert b.calls == 2
        assert c.calls == 1

    def test_clones_safe_across_threads(self, coo, x, y_ref):
        """Concurrent spmv on per-thread clones never corrupts results."""
        import threading

        proto = bind(convert(coo, "pJDS"), tune=False)
        errors = []

        def work():
            mine = proto.clone()
            for _ in range(50):
                if not np.allclose(mine.spmv(x), y_ref):
                    errors.append(threading.current_thread().name)
                    return

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
