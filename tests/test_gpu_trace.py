"""Tests for kernel trace extraction: slots, addresses, scheduling."""

import numpy as np
import pytest

from repro.formats import convert
from repro.gpu import C2070, extract_trace
from repro.gpu.trace import MAX_TRACE_SLOTS

from _test_common import GPU_FORMATS, random_coo


@pytest.fixture(scope="module")
def coo():
    return random_coo(120, seed=111, max_row=20)


@pytest.fixture(scope="module")
def device():
    return C2070()


class TestSlotCounts:
    def test_plain_ellpack_executes_padding(self, coo, device):
        e = convert(coo, "ELLPACK")
        tr = extract_trace(e, device)
        assert tr.executed_slots == e.padded_rows * e.width
        assert tr.nnz == coo.nnz

    def test_ellpack_r_executes_only_nonzeros(self, coo, device):
        er = convert(coo, "ELLPACK-R")
        tr = extract_trace(er, device)
        assert tr.executed_slots == coo.nnz

    @pytest.mark.parametrize("fmt", ["JDS", "pJDS", "SELL-C-sigma"])
    def test_jagged_execute_only_nonzeros(self, coo, device, fmt):
        """rowmax guards skip the padding (Listing 2 semantics)."""
        m = convert(coo, fmt)
        tr = extract_trace(m, device)
        assert tr.executed_slots == coo.nnz

    def test_unsupported_format(self, coo, device):
        with pytest.raises(TypeError, match="no GPU kernel trace"):
            extract_trace(coo, device)  # COO has no device kernel

    def test_csr_scalar_trace(self, coo, device):
        """The Bell & Garland scalar-CSR baseline has a trace too."""
        tr = extract_trace(convert(coo, "CRS"), device)
        assert tr.executed_slots == coo.nnz
        # one thread per row: val reads are scattered across lanes, so
        # transactions far exceed the coalesced formats'
        er = extract_trace(convert(coo, "ELLPACK-R"), device)
        assert tr.val_transactions > er.val_transactions

    def test_guard_against_huge_traces(self, device, monkeypatch):
        import repro.gpu.trace as trace_mod

        monkeypatch.setattr(trace_mod, "MAX_TRACE_SLOTS", 10)
        e = convert(random_coo(40, seed=112), "ELLPACK")
        with pytest.raises(MemoryError, match="slots"):
            trace_mod.extract_trace(e, device)


class TestScheduling:
    def test_reserved_is_warp_max_sum_ellpack_r(self, coo, device):
        er = convert(coo, "ELLPACK-R")
        tr = extract_trace(er, device)
        ws = device.warp_size
        lengths = er.rowmax
        expected = sum(
            int(lengths[w * ws : (w + 1) * ws].max())
            for w in range(-(-len(lengths) // ws))
        )
        assert tr.reserved_steps == expected

    def test_pjds_reserved_not_above_ellpack_r(self, coo, device):
        """Sorting minimises the per-warp maxima (Fig. 2c vs 2b)."""
        er = extract_trace(convert(coo, "ELLPACK-R"), device)
        pj = extract_trace(convert(coo, "pJDS"), device)
        assert pj.reserved_steps <= er.reserved_steps

    def test_plain_ellpack_reserved_is_full_rectangle(self, coo, device):
        e = convert(coo, "ELLPACK")
        tr = extract_trace(e, device)
        nwarps = -(-e.padded_rows // device.warp_size)
        assert tr.reserved_steps == nwarps * e.width

    def test_active_steps_bounded_by_reserved(self, coo, device):
        for fmt in GPU_FORMATS:
            tr = extract_trace(convert(coo, fmt), device)
            assert 0 < tr.active_steps <= tr.reserved_steps, fmt

    def test_units_sorted(self, coo, device):
        for fmt in GPU_FORMATS:
            tr = extract_trace(convert(coo, fmt), device)
            assert np.all(np.diff(tr.unit) >= 0), fmt


class TestAddresses:
    def test_precision_changes_val_lines(self, coo, device):
        p = convert(coo, "pJDS")
        sp = extract_trace(p, device, "SP")
        dp = extract_trace(p, device, "DP")
        # DP elements are twice as large: at least as many lines touched
        assert np.unique(dp.val_line).size >= np.unique(sp.val_line).size

    def test_precision_defaults_to_dtype(self, coo, device):
        p32 = convert(coo.astype(np.float32), "pJDS")
        assert extract_trace(p32, device).precision == "SP"
        p64 = convert(coo, "pJDS")
        assert extract_trace(p64, device).precision == "DP"

    def test_rhs_lines_cover_columns(self, coo, device):
        p = convert(coo, "pJDS")
        tr = extract_trace(p, device, "DP")
        max_line = (coo.ncols - 1) * 8 // device.cache_line_bytes
        assert tr.rhs_line.max() <= max_line
        assert tr.rhs_line.min() >= 0

    def test_val_lines_compact_for_pjds(self, coo, device):
        """pJDS touches exactly ceil(slots*8/128) val lines at DP."""
        p = convert(coo, "pJDS", block_rows=32)
        tr = extract_trace(p, device, "DP")
        # executed slots exclude padding, but padding shares lines with
        # the dense prefix, so the line count matches total storage
        expected_max = -(-p.total_slots * 8 // 128)
        assert np.unique(tr.val_line).size <= expected_max

    def test_lhs_bytes(self, coo, device):
        p = convert(coo, "pJDS")
        tr = extract_trace(p, device, "DP")
        assert tr.lhs_bytes == 2 * 8 * coo.nrows

    def test_aux_bytes_rowmax_formats(self, coo, device):
        assert extract_trace(convert(coo, "pJDS"), device).aux_bytes == 4 * coo.nrows
        assert extract_trace(convert(coo, "ELLPACK"), device).aux_bytes == 0
        assert (
            extract_trace(convert(coo, "ELLPACK-R"), device).aux_bytes
            == 4 * coo.nrows
        )
