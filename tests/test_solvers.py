"""Tests for the permuted-basis solver layer (CG, Lanczos, power)."""

import numpy as np
import pytest

from repro.formats import COOMatrix, convert
from repro.matrices import poisson2d
from repro.solvers import (
    as_operator,
    conjugate_gradient,
    lanczos,
    power_iteration,
)

from _test_common import random_coo


@pytest.fixture(scope="module")
def spd():
    """Small SPD matrix with a non-trivial pJDS permutation."""
    return poisson2d(11, 13)


@pytest.fixture(scope="module")
def spd_dense(spd):
    return spd.todense()


class TestOperator:
    def test_pjds_operator_zero_copy_basis(self, spd):
        p = convert(spd, "pJDS", block_rows=8)
        op = as_operator(p)
        assert op.size == spd.nrows
        x = np.random.default_rng(0).normal(size=spd.nrows)
        xp = op.enter(x)
        assert np.allclose(op.leave(op.apply(xp)), spd.spmv(x))

    def test_csr_operator_identity_permutation(self, spd):
        m = convert(spd, "CRS")
        op = as_operator(m)
        assert op.permutation.is_identity
        x = np.random.default_rng(1).normal(size=spd.nrows)
        assert np.allclose(op.apply(x), m.spmv(x))

    def test_rectangular_rejected(self):
        m = convert(random_coo(8, 12, seed=191), "CRS")
        with pytest.raises(ValueError, match="square"):
            as_operator(m)

    def test_callable(self, spd):
        op = as_operator(convert(spd, "pJDS"))
        x = np.ones(spd.nrows)
        assert np.array_equal(op(op.enter(x)), op.apply(op.enter(x)))


class TestCG:
    @pytest.mark.parametrize("fmt", ["CRS", "ELLPACK-R", "pJDS", "SELL-C-sigma"])
    def test_solves_poisson(self, spd, spd_dense, fmt):
        m = convert(spd, fmt)
        rng = np.random.default_rng(2)
        b = rng.normal(size=spd.nrows)
        res = conjugate_gradient(m, b, tol=1e-10)
        assert res.converged
        assert np.allclose(res.x, np.linalg.solve(spd_dense, b), atol=1e-6)

    def test_residual_below_tolerance(self, spd):
        b = np.ones(spd.nrows)
        res = conjugate_gradient(convert(spd, "pJDS"), b, tol=1e-8)
        assert res.residual_norm <= 1e-8 * np.linalg.norm(b)

    def test_zero_rhs(self, spd):
        res = conjugate_gradient(convert(spd, "pJDS"), np.zeros(spd.nrows))
        assert res.converged
        assert res.iterations == 0
        assert np.all(res.x == 0.0)

    def test_warm_start(self, spd, spd_dense):
        b = np.random.default_rng(3).normal(size=spd.nrows)
        exact = np.linalg.solve(spd_dense, b)
        res = conjugate_gradient(
            convert(spd, "pJDS"), b, x0=exact + 1e-6, tol=1e-10
        )
        assert res.converged
        assert res.iterations < 30

    def test_max_iter_respected(self, spd):
        b = np.ones(spd.nrows)
        res = conjugate_gradient(convert(spd, "pJDS"), b, tol=1e-14, max_iter=3)
        assert not res.converged
        assert res.iterations == 3

    def test_spmv_count_tracks_iterations(self, spd):
        b = np.ones(spd.nrows)
        res = conjugate_gradient(convert(spd, "pJDS"), b, tol=1e-8)
        assert res.spmv_count == res.iterations

    def test_indefinite_detected(self):
        coo = COOMatrix([0, 1], [0, 1], [1.0, -1.0], (2, 2))
        with pytest.raises(np.linalg.LinAlgError, match="positive definite"):
            conjugate_gradient(coo, np.ones(2))

    def test_validation(self, spd):
        m = convert(spd, "pJDS")
        with pytest.raises(ValueError):
            conjugate_gradient(m, np.ones(spd.nrows), tol=0.0)
        with pytest.raises(ValueError):
            conjugate_gradient(m, np.ones(spd.nrows), max_iter=-1)
        with pytest.raises(ValueError):
            conjugate_gradient(m, np.ones(3))


class TestLanczos:
    def test_smallest_eigenvalues(self, spd, spd_dense):
        ref = np.linalg.eigvalsh(spd_dense)[:3]
        res = lanczos(convert(spd, "pJDS"), num_eigenvalues=3, tol=1e-10)
        assert np.allclose(res.eigenvalues, ref, atol=1e-7)

    def test_residuals_small(self, spd):
        res = lanczos(convert(spd, "pJDS"), num_eigenvalues=2, tol=1e-10)
        assert np.all(res.residual_norms < 1e-6)

    def test_eigenvectors_in_original_basis(self, spd, spd_dense):
        res = lanczos(convert(spd, "pJDS"), num_eigenvalues=1, tol=1e-10)
        v = res.eigenvectors[:, 0]
        assert np.allclose(
            spd_dense @ v, res.eigenvalues[0] * v, atol=1e-6
        )

    def test_ground_state_energy_property(self, spd):
        res = lanczos(convert(spd, "pJDS"), num_eigenvalues=2, tol=1e-9)
        assert res.ground_state_energy == res.eigenvalues[0]

    def test_deterministic_seed(self, spd):
        a = lanczos(convert(spd, "pJDS"), num_eigenvalues=1, seed=7)
        b = lanczos(convert(spd, "pJDS"), num_eigenvalues=1, seed=7)
        assert np.allclose(a.eigenvalues, b.eigenvalues, atol=1e-12)

    def test_explicit_start_vector(self, spd, spd_dense):
        v0 = np.linalg.eigh(spd_dense)[1][:, 0]
        res = lanczos(convert(spd, "pJDS"), num_eigenvalues=1, v0=v0, tol=1e-10)
        assert res.iterations <= 3

    def test_small_matrix_full_subspace(self):
        coo = COOMatrix([0, 1, 2], [0, 1, 2], [3.0, 1.0, 2.0], (3, 3))
        res = lanczos(coo, num_eigenvalues=3, max_iter=3, tol=1e-12)
        assert np.allclose(np.sort(res.eigenvalues), [1.0, 2.0, 3.0], atol=1e-10)

    def test_validation(self, spd):
        m = convert(spd, "pJDS")
        with pytest.raises(ValueError):
            lanczos(m, num_eigenvalues=0)
        with pytest.raises(ValueError):
            lanczos(m, num_eigenvalues=10, max_iter=5)
        with pytest.raises(ValueError):
            lanczos(m, tol=-1.0)


class TestPower:
    def test_dominant_eigenvalue(self, spd, spd_dense):
        res = power_iteration(convert(spd, "pJDS"), tol=1e-13, max_iter=50_000)
        ref = np.abs(np.linalg.eigvalsh(spd_dense)).max()
        assert res.eigenvalue == pytest.approx(ref, abs=1e-4)

    def test_eigenvector_residual(self, spd, spd_dense):
        res = power_iteration(convert(spd, "pJDS"), tol=1e-13, max_iter=50_000)
        v = res.eigenvector
        assert np.linalg.norm(spd_dense @ v - res.eigenvalue * v) < 1e-3

    def test_diagonal_matrix_exact(self):
        coo = COOMatrix([0, 1, 2], [0, 1, 2], [5.0, 2.0, 1.0], (3, 3))
        res = power_iteration(coo, tol=1e-14)
        assert res.eigenvalue == pytest.approx(5.0, abs=1e-10)
        assert res.converged

    def test_spmv_count(self, spd):
        res = power_iteration(convert(spd, "pJDS"), tol=1e-6, max_iter=1000)
        assert res.spmv_count == res.iterations

    def test_zero_start_rejected(self, spd):
        with pytest.raises(ValueError, match="non-zero"):
            power_iteration(convert(spd, "pJDS"), v0=np.zeros(spd.nrows))

    def test_validation(self, spd):
        with pytest.raises(ValueError):
            power_iteration(convert(spd, "pJDS"), tol=0.0)
        with pytest.raises(ValueError):
            power_iteration(convert(spd, "pJDS"), max_iter=0)
