"""The unified ``LinearOperator`` protocol and its core adapters.

Every consumer of spMVM in this package — the five Krylov/Chebyshev
solvers, the benchmarks, the serving layer, and the distributed
runtime — ultimately needs the same tiny surface: *apply the matrix to
a vector (or a block of vectors), tell me your shape and dtype*.
Historically each consumer grew its own wrapper (``as_operator`` in
``repro.solvers.permuted``, ``make_spmv_operator`` closures in two
modules, hand-rolled ``spmv_count += 1`` accounting in every solver).
This module is the single replacement:

:class:`LinearOperator`
    The protocol base class: ``apply(x, out=None)``,
    ``apply_block(X, out=None)``, ``apply_permuted(x_perm)``,
    ``shape``/``dtype``/``diagonal()``.
:class:`FormatOperator` / :class:`BoundOperator`
    Adapters over a raw :class:`~repro.formats.base.SparseMatrixFormat`
    and an engine-bound :class:`~repro.engine.bound.BoundMatrix`.
:class:`PermutedOperator`
    The Sect. II-A stored-basis workflow operator the solvers iterate
    on (permute once in, iterate, permute once out).
:class:`CountingOperator`
    Composable wrapper that counts spmv-equivalents (one per ``apply``,
    ``k`` per ``(n, k)`` ``apply_block``) and publishes the total to
    :mod:`repro.obs` — the one implementation of the accounting every
    solver used to hand-roll.

Cross-backend adapters (shared-memory pool, distributed runtime,
serving client) live in :mod:`repro.ops.adapters`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro import obs
from repro.core.sorting import Permutation

__all__ = [
    "LinearOperator",
    "FormatOperator",
    "BoundOperator",
    "PermutedOperator",
    "CountingOperator",
    "as_linear_operator",
    "solver_operator",
    "apply_repeated",
]


class LinearOperator:
    """Minimal protocol every spMVM consumer in the package codes against.

    Subclasses must implement :meth:`apply` and the ``shape``/``dtype``
    properties; ``apply_block`` has a per-column default and
    ``apply_permuted``/``diagonal`` raise until an adapter provides
    them.  The operator may be rectangular: ``apply`` maps a length-
    ``ncols`` vector to a length-``nrows`` one.
    """

    @property
    def shape(self) -> tuple[int, int]:
        raise NotImplementedError

    @property
    def dtype(self) -> np.dtype:
        raise NotImplementedError

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    def apply(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``y = A @ x``; with ``out`` the call is allocation-free."""
        raise NotImplementedError

    def apply_block(
        self, X: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """``Y = A @ X`` for an ``(ncols, k)`` block (default: per column)."""
        X = np.asarray(X)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if out is None:
            out = np.empty((self.nrows, X.shape[1]), dtype=self.dtype)
        for j in range(X.shape[1]):
            out[:, j] = self.apply(np.ascontiguousarray(X[:, j]))
        return out

    def apply_permuted(self, x_perm: np.ndarray) -> np.ndarray:
        """Stored-basis product (jagged formats only)."""
        raise TypeError(
            f"{type(self).__name__} has no permuted-basis kernel"
        )

    def diagonal(self) -> np.ndarray:
        """Main diagonal in the original row order (preconditioners)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not expose a diagonal"
        )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.apply(x)


class FormatOperator(LinearOperator):
    """Adapter over a raw sparse format instance (untuned kernels)."""

    def __init__(self, matrix):
        self.matrix = matrix

    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape

    @property
    def dtype(self) -> np.dtype:
        return self.matrix.dtype

    def apply(self, x, out=None):
        return self.matrix.spmv(x, out=out)

    def apply_block(self, X, out=None):
        return self.matrix.spmm(X, out=out)

    def apply_permuted(self, x_perm):
        fn = getattr(self.matrix, "spmv_permuted", None)
        if fn is None:
            raise TypeError(
                f"{type(self.matrix).__name__} has no permuted-basis kernel"
            )
        return fn(x_perm)

    def diagonal(self):
        return self.matrix.diagonal()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        m = self.matrix
        return f"<FormatOperator {m.name} {m.nrows}x{m.ncols}>"


class BoundOperator(LinearOperator):
    """Adapter over an engine-bound matrix (tuned kernel + workspace)."""

    def __init__(self, bound):
        self.bound = bound

    @property
    def shape(self) -> tuple[int, int]:
        return self.bound.shape

    @property
    def dtype(self) -> np.dtype:
        return self.bound.dtype

    def apply(self, x, out=None):
        return self.bound.spmv(x, out=out)

    def apply_block(self, X, out=None):
        return self.bound.spmm(X, out=out)

    def apply_permuted(self, x_perm):
        return self.bound.spmv_permuted(x_perm)

    def diagonal(self):
        return self.bound.matrix.diagonal()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        b = self.bound
        return (
            f"<BoundOperator {b.matrix.name} {b.nrows}x{b.ncols} "
            f"variant={b.variant.name}>"
        )


class PermutedOperator(LinearOperator):
    """Square linear operator working in a format's stored basis.

    For jagged formats the ``apply`` closure is the zero-copy
    ``spmv_permuted`` kernel; for permutation-free formats it is plain
    ``spmv`` and the basis maps are identities.  ``apply_block`` is
    the multi-vector analogue (stored-basis SpMM); when no batched
    closure is supplied it degrades to a per-column loop.

    The historical ``repro.solvers.permuted.PermutedOperator``
    constructor signature is preserved; the ``diagonal``/``base``
    keywords are new (the original-order diagonal feeds the Jacobi
    preconditioner, ``base`` keeps the underlying adapter reachable).
    """

    def __init__(
        self,
        apply_: Callable[[np.ndarray], np.ndarray],
        permutation: Permutation,
        dtype: np.dtype,
        apply_block: Callable[[np.ndarray], np.ndarray] | None = None,
        *,
        diagonal: Callable[[], np.ndarray] | None = None,
        base: LinearOperator | None = None,
    ):
        self._apply = apply_
        self._apply_block = apply_block
        self._perm = permutation
        self._dtype = np.dtype(dtype)
        self._diagonal = diagonal
        self.base = base

    @property
    def size(self) -> int:
        return self._perm.size

    @property
    def shape(self) -> tuple[int, int]:
        n = self._perm.size
        return (n, n)

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def permutation(self) -> Permutation:
        return self._perm

    def apply(self, x_perm: np.ndarray, out: np.ndarray | None = None):
        """One operator application in the stored basis."""
        y = self._apply(x_perm)
        if out is not None:
            out[:] = y
            return out
        return y

    __call__ = apply

    def apply_permuted(self, x_perm: np.ndarray) -> np.ndarray:
        # the operator *is* the stored-basis application
        return self._apply(x_perm)

    def apply_block(
        self, X_perm: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Batched stored-basis application, ``Y~ = (P A P^T) X~``.

        Always returns a freshly owned ``(n, k)`` array (safe to keep
        across subsequent applications).
        """
        if self._apply_block is not None:
            Y = np.array(self._apply_block(X_perm), copy=True)
            if out is not None:
                out[:] = Y
                return out
            return Y
        if out is None:
            out = np.empty_like(X_perm)
        for j in range(X_perm.shape[1]):
            out[:, j] = self._apply(np.ascontiguousarray(X_perm[:, j]))
        return out

    def diagonal(self) -> np.ndarray:
        """Main diagonal in the *original* row ordering."""
        if self._diagonal is None:
            raise NotImplementedError(
                "this PermutedOperator was built without a diagonal accessor"
            )
        return self._diagonal()

    def enter(self, x: np.ndarray) -> np.ndarray:
        """Map a vector from the original into the stored basis."""
        return np.ascontiguousarray(self._perm.to_permuted(x), dtype=self._dtype)

    def leave(self, x_perm: np.ndarray) -> np.ndarray:
        """Map a stored-basis vector back to the original ordering."""
        return self._perm.to_original(x_perm)


class CountingOperator(LinearOperator):
    """Wrapper counting spmv-equivalents through any operator.

    ``apply``/``apply_permuted`` add one, an ``(n, k)`` ``apply_block``
    adds ``k`` — the paper's dominant-cost accounting.  Unknown
    attributes (``enter``/``leave``/``permutation``/``size``/...)
    delegate to the wrapped operator, so a counted
    :class:`PermutedOperator` still drives the full Sect. II-A solver
    workflow.  :meth:`publish` emits the running total to the
    ``solver_spmv_total`` counter of :mod:`repro.obs`.
    """

    def __init__(self, base: LinearOperator):
        self._base = base
        self.count = 0

    @property
    def shape(self) -> tuple[int, int]:
        return self._base.shape

    @property
    def dtype(self) -> np.dtype:
        return self._base.dtype

    def apply(self, x, out=None):
        self.count += 1
        return self._base.apply(x, out=out)

    def apply_block(self, X, out=None):
        self.count += int(np.asarray(X).shape[1])
        return self._base.apply_block(X, out=out)

    def apply_permuted(self, x_perm):
        self.count += 1
        return self._base.apply_permuted(x_perm)

    def diagonal(self):
        return self._base.diagonal()

    def __call__(self, x):
        return self.apply(x)

    def __getattr__(self, name):
        # delegation for the PermutedOperator extras (enter/leave/...)
        return getattr(self._base, name)

    def reset(self) -> None:
        self.count = 0

    def publish(self, solver: str) -> int:
        """Emit the running total as ``solver_spmv_total{solver=...}``."""
        if obs.enabled():
            obs.inc("solver_spmv_total", self.count, solver=solver)
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CountingOperator count={self.count} base={self._base!r}>"


# ---------------------------------------------------------------------------


def as_linear_operator(
    obj, *, engine: bool = False, tune: bool = True
) -> LinearOperator:
    """Coerce anything spMVM-shaped to a :class:`LinearOperator`.

    Accepts an existing operator (returned unchanged), an engine
    :class:`~repro.engine.bound.BoundMatrix`, or a raw format instance
    (bound through the autotuner first when ``engine=True``).
    """
    if isinstance(obj, LinearOperator):
        return obj
    from repro.engine.bound import BoundMatrix, bind
    from repro.formats.base import SparseMatrixFormat

    if isinstance(obj, BoundMatrix):
        return BoundOperator(obj)
    if isinstance(obj, SparseMatrixFormat):
        if engine:
            return BoundOperator(bind(obj, tune=tune))
        return FormatOperator(obj)
    raise TypeError(
        f"cannot adapt {type(obj).__name__} to a LinearOperator"
    )


def solver_operator(
    matrix, *, engine: bool = False, tune: bool = True
) -> PermutedOperator:
    """Wrap any square operator source for the permuted-basis workflow.

    This is the one entry point all five solvers use: raw formats,
    engine-bound matrices, and arbitrary :class:`LinearOperator`
    instances (parallel pool, distributed runtime, serving client) all
    come out as a :class:`PermutedOperator` — jagged formats iterate in
    their stored basis, everything else behind an identity permutation.
    """
    base = as_linear_operator(matrix, engine=engine, tune=tune)
    if base.nrows != base.ncols:
        raise ValueError("solvers require a square matrix")
    if isinstance(base, PermutedOperator):
        return base
    from repro.core.jds import JaggedDiagonalsBase
    from repro.ops.spmm_kernels import spmm_permuted

    if isinstance(base, BoundOperator):
        bound = base.bound
        m = bound.matrix
        if bound.variant.supports_permuted and isinstance(m, JaggedDiagonalsBase):
            return PermutedOperator(
                bound.spmv_permuted,
                m.permutation,
                m.dtype,
                apply_block=lambda X: spmm_permuted(m, X, ws=bound.workspace),
                diagonal=m.diagonal,
                base=base,
            )
        return PermutedOperator(
            lambda x: bound.spmv(x),
            Permutation.identity(m.nrows),
            m.dtype,
            apply_block=lambda X: bound.spmm(X),
            diagonal=m.diagonal,
            base=base,
        )
    if isinstance(base, FormatOperator):
        m = base.matrix
        if isinstance(m, JaggedDiagonalsBase):
            return PermutedOperator(
                m.spmv_permuted,
                m.permutation,
                m.dtype,
                apply_block=lambda X: spmm_permuted(m, X),
                diagonal=m.diagonal,
                base=base,
            )
        return PermutedOperator(
            lambda x: m.spmv(x),
            Permutation.identity(m.nrows),
            m.dtype,
            apply_block=lambda X: m.spmm(X),
            diagonal=m.diagonal,
            base=base,
        )
    # generic operator (parallel / distributed / serve adapters):
    # identity basis, diagonal only if the adapter overrides it
    diag = (
        base.diagonal
        if type(base).diagonal is not LinearOperator.diagonal
        else None
    )
    return PermutedOperator(
        lambda x: base.apply(x),
        Permutation.identity(base.nrows),
        base.dtype,
        apply_block=lambda X: base.apply_block(X),
        diagonal=diag,
        base=base,
    )


def apply_repeated(matrix, x: np.ndarray, repetitions: int) -> np.ndarray:
    """Apply the operator ``repetitions`` times with ping-pong buffers.

    The allocation pattern matches the historical
    ``repro.kernels.vectorized.power_apply``: one result and one
    scratch buffer regardless of the repetition count.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    op = as_linear_operator(matrix)
    y = op.apply(x)
    if repetitions == 1:
        return y
    buf = np.empty_like(y)
    for _ in range(repetitions - 1):
        buf = op.apply(y, out=buf)
        y, buf = buf, y
    return y
