"""Per-format spMVM kernels, registered with the central registry.

The paper's Table I shows the winning format is matrix-dependent; Koza
et al. (CMRS) show the winning *kernel variant within a format* is
matrix-dependent too.  This module declares 2-5 interchangeable NumPy
kernels per storage format, all writing into caller-provided buffers
through a :class:`~repro.engine.workspace.Workspace` so the steady
state allocates nothing:

========  =====================================================
format    variants
========  =====================================================
CRS       ``csr_reduceat`` (row-local segment sums),
          ``csr_grouped`` (cache-blocked length-grouped einsum),
          ``csr_cumsum`` (global prefix sums, float64 scratch),
          ``csr_bincount`` (scatter via bincount),
          ``csr_scipy`` (compiled csr_matvec delegate)
COO       ``coo_reduceat`` (row-run segments), ``coo_bincount``
ELLPACK*  ``ell_sweep`` (per jagged column),
          ``ell_fused`` (one gather over the padded rectangle),
          ``ell_scipy`` (unpadded-rows CSR view, compiled sweep)
JDS/pJDS  ``jds_grouped`` (cache-blocked grouped einsum),
          ``jds_sweep`` (Listing-2 column sweep),
          ``jds_fused_runs`` (equal-length column runs fused into
          rectangles — pJDS's block padding makes runs long),
          ``jds_scipy`` (stored-order CSR view, compiled sweep)
SELL      ``sell_fused`` (width-grouped chunk rectangles),
          ``sell_chunks`` (per-chunk loop),
          ``sell_scipy`` (padded-rows CSR view, compiled sweep)
CMRS      ``cmrs_reduceat`` (row-run segment sums),
          ``cmrs_bincount`` (scatter via bincount),
          ``cmrs_scipy`` (strip stream is row-major CSR, compiled)
ARG-CSR   ``argcsr_groups`` (cache-blocked per-group einsum),
          ``argcsr_sweep`` (per-group column sweep incl. padding),
          ``argcsr_scipy`` (unpadded CSR view, compiled sweep)
========  =====================================================

The ``*_scipy`` delegates only register when :mod:`scipy` is
importable (the same optional dependency that gates RCM reordering);
the autotuner decides per matrix whether they beat the NumPy kernels.

Kernel contract: ``run(matrix, ws, x, y_stored, permuted=False)``
fully writes ``y_stored`` (length ``nrows``) with the result in the
format's *stored* row order; ``x`` is already coerced to the matrix
dtype.  Formats without a registered kernel fall back to the
``generic`` wrapper around their own ``spmv``.
"""

from __future__ import annotations

import weakref

import numpy as np

from typing import TYPE_CHECKING

from repro.core.jds import JaggedDiagonalsBase
from repro.core.sell import SELLMatrix
from repro.formats.argcsr import ARGCSRMatrix
from repro.formats.base import SparseMatrixFormat
from repro.formats.cmrs import CMRSMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.ellpack import ELLPACKMatrix
from repro.ops.registry import register_kernel

try:  # optional compiled CSR matvec (scipy already gates RCM reordering)
    from scipy.sparse import _sparsetools as _scipy_sparsetools
except ImportError:  # pragma: no cover - scipy-less environment
    _scipy_sparsetools = None

#: scipy's C ``csr_matvec`` fuses gather + FMA + row reduction in one
#: compiled pass — no NumPy kernel can avoid materialising the gathered
#: product, so when it is importable it joins the candidate list and the
#: autotuner decides per matrix whether it wins.
_HAVE_CSR_MATVEC = _scipy_sparsetools is not None and hasattr(
    _scipy_sparsetools, "csr_matvec"
)

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.engine.workspace import Workspace

__all__ = ["stored_csr_triplet"]


#: gathered elements per cache-blocked chunk of the grouped kernels
#: (~256 KB at float64): the gather rectangle is reduced while still
#: cache-resident instead of round-tripping through main memory.
_SPMV_BLOCK = 32768


def _take_mul(x, idx, val, gbuf):
    """``gbuf[:] = x[idx] * val`` without temporaries.

    ``mode="clip"`` skips NumPy's bounds-check pass (indices were
    validated at construction); with an ``out=`` buffer the default
    ``"raise"`` mode falls into a ~3x slower buffered path.
    """
    np.take(x, idx, out=gbuf, mode="clip")
    np.multiply(gbuf, val, out=gbuf)
    return gbuf


# ---------------------------------------------------------------------------
# CSR
# ---------------------------------------------------------------------------

@register_kernel(CSRMatrix, "spmv", name="csr_reduceat", tags=("numpy",))
def _csr_reduceat(m: CSRMatrix, ws: Workspace, x, y, permuted=False):
    if m.nnz == 0:
        y.fill(0.0)
        return
    data = ws.const("data", lambda: m.data)
    idx = ws.const("indices", lambda: m.indices)
    g = _take_mul(x, idx, data, ws.buf("csr_g", m.nnz, m.dtype))
    ne = ws.const("csr_nonempty", lambda: np.flatnonzero(np.diff(m.indptr) > 0))
    starts = ws.const(
        "csr_starts", lambda: np.ascontiguousarray(m.indptr[:-1][ne])
    )
    if ne.shape[0] == m.nrows:  # no empty rows: reduce straight into y
        np.add.reduceat(g, starts, out=y)
    else:
        r = ws.buf("csr_r", ne.shape[0], m.dtype)
        np.add.reduceat(g, starts, out=r)
        y.fill(0.0)
        y[ne] = r


@register_kernel(CSRMatrix, "spmv", name="csr_grouped", tags=("numpy", "blocked"))
def _csr_grouped(m: CSRMatrix, ws: Workspace, x, y, permuted=False):
    """Row-length-grouped fused dot products (quasi-ELLPACK rectangles).

    Replaces one reduceat segment per row with one fused
    multiply-reduce (``einsum('il,il->i')``) per distinct length —
    the gathered RHS block never round-trips through memory a second
    time, and the per-segment dispatch overhead of ``reduceat``
    disappears.  Wins when rows are short and lengths cluster, which
    is exactly the structure pJDS exploits.
    """
    if m.nnz == 0:
        y.fill(0.0)
        return
    idx_g, data_g, groups = ws.const(
        "csr_groups", lambda: m._length_groups()  # noqa: SLF001
    )
    # longest row bounds a chunk when a single row exceeds the block
    gmax = groups[-1][0] if groups else 1  # unique() sorts ascending
    g = ws.buf("csr_gg", min(m.nnz, max(_SPMV_BLOCK, gmax)), m.dtype)
    y.fill(0.0)
    r = ws.buf("csr_gr", m.nrows, m.dtype)
    off = 0
    for length, rows_l in groups:
        nl = rows_l.shape[0]
        step = max(1, _SPMV_BLOCK // length)
        for c0 in range(0, nl, step):
            c1 = min(c0 + step, nl)
            cnt = (c1 - c0) * length
            sl = slice(off + c0 * length, off + c1 * length)
            gv = g[:cnt]
            np.take(x, idx_g[sl], out=gv, mode="clip")
            np.einsum(
                "il,il->i",
                gv.reshape(c1 - c0, length),
                data_g[sl].reshape(c1 - c0, length),
                out=r[: c1 - c0],
            )
            y[rows_l[c0:c1]] = r[: c1 - c0]
        off += nl * length


@register_kernel(CSRMatrix, "spmv", name="csr_cumsum", tags=("numpy",))
def _csr_cumsum(m: CSRMatrix, ws: Workspace, x, y, permuted=False):
    if m.nnz == 0:
        y.fill(0.0)
        return
    data = ws.const("data", lambda: m.data)
    idx = ws.const("indices", lambda: m.indices)
    indptr = ws.const("indptr", lambda: m.indptr)
    # global prefix sums want a wide accumulator: float64 scratch,
    # allocated once, regardless of the matrix dtype
    g64 = ws.buf("csr_g64", m.nnz, np.float64)
    if m.dtype == np.float64:
        np.take(x, idx, out=g64, mode="clip")
        np.multiply(g64, data, out=g64)
    else:
        g32 = _take_mul(x, idx, data, ws.buf("csr_g", m.nnz, m.dtype))
        g64[:] = g32
    cs = ws.buf("csr_cs", m.nnz + 1, np.float64)
    cs[0] = 0.0
    np.cumsum(g64, out=cs[1:])
    e = ws.buf("csr_end", m.nrows, np.float64)
    s = ws.buf("csr_beg", m.nrows, np.float64)
    np.take(cs, indptr[1:], out=e, mode="clip")
    np.take(cs, indptr[:-1], out=s, mode="clip")
    np.subtract(e, s, out=y, casting="same_kind")


@register_kernel(CSRMatrix, "spmv", name="csr_bincount", tags=("numpy",))
def _csr_bincount(m: CSRMatrix, ws: Workspace, x, y, permuted=False):
    if m.nnz == 0:
        y.fill(0.0)
        return
    data = ws.const("data", lambda: m.data)
    idx = ws.const("indices", lambda: m.indices)
    row_of = ws.const(
        "csr_row_of",
        lambda: np.repeat(
            np.arange(m.nrows, dtype=np.int64), np.diff(m.indptr)
        ),
    )
    g = _take_mul(x, idx, data, ws.buf("csr_g", m.nnz, m.dtype))
    acc = np.bincount(row_of, weights=g, minlength=m.nrows)
    np.copyto(y, acc, casting="same_kind")


# ---------------------------------------------------------------------------
# COO
# ---------------------------------------------------------------------------

@register_kernel(COOMatrix, "spmv", name="coo_reduceat", tags=("numpy",))
def _coo_reduceat(m: COOMatrix, ws: Workspace, x, y, permuted=False):
    if m.nnz == 0:
        y.fill(0.0)
        return
    vals = ws.const("values", lambda: m.values)
    cols = ws.const("cols", lambda: m.cols)
    starts, urows = ws.const("coo_runs", lambda: m._row_runs())  # noqa: SLF001
    g = _take_mul(x, cols, vals, ws.buf("coo_g", m.nnz, m.dtype))
    r = ws.buf("coo_r", starts.shape[0], m.dtype)
    np.add.reduceat(g, starts, out=r)
    y.fill(0.0)
    y[urows] = r


@register_kernel(COOMatrix, "spmv", name="coo_bincount", tags=("numpy",))
def _coo_bincount(m: COOMatrix, ws: Workspace, x, y, permuted=False):
    if m.nnz == 0:
        y.fill(0.0)
        return
    vals = ws.const("values", lambda: m.values)
    cols = ws.const("cols", lambda: m.cols)
    rows = ws.const("rows", lambda: m.rows)
    g = _take_mul(x, cols, vals, ws.buf("coo_g", m.nnz, m.dtype))
    acc = np.bincount(rows, weights=g, minlength=m.nrows)
    np.copyto(y, acc, casting="same_kind")


# ---------------------------------------------------------------------------
# ELLPACK family (plain, -R, ELLR-T share the padded rectangle)
# ---------------------------------------------------------------------------

@register_kernel(ELLPACKMatrix, "spmv", name="ell_sweep", tags=("numpy",))
def _ell_sweep(m: ELLPACKMatrix, ws: Workspace, x, y, permuted=False):
    if m.width == 0:
        y.fill(0.0)
        return
    val = ws.const("val", lambda: m.val)
    col = ws.const("col", lambda: m.col)
    acc = ws.buf("ell_acc", m.padded_rows, m.dtype)
    acc.fill(0.0)
    g = ws.buf("ell_g", m.padded_rows, m.dtype)
    for j in range(m.width):
        np.take(x, col[j], out=g, mode="clip")
        np.multiply(g, val[j], out=g)
        acc += g
    y[:] = acc[: m.nrows]


@register_kernel(ELLPACKMatrix, "spmv", name="ell_fused", tags=("numpy", "fused"))
def _ell_fused(m: ELLPACKMatrix, ws: Workspace, x, y, permuted=False):
    if m.width == 0:
        y.fill(0.0)
        return
    val = ws.const("val", lambda: m.val)
    colflat = ws.const("ell_colflat", lambda: np.ascontiguousarray(m.col).ravel())
    G = ws.buf("ell_G", (m.width, m.padded_rows), m.dtype)
    np.take(x, colflat, out=G.reshape(-1), mode="clip")
    np.multiply(G, val, out=G)
    acc = ws.buf("ell_acc", m.padded_rows, m.dtype)
    np.add.reduce(G, axis=0, out=acc)
    y[:] = acc[: m.nrows]


# ---------------------------------------------------------------------------
# JDS / pJDS
# ---------------------------------------------------------------------------

def _jds_cols(m: JaggedDiagonalsBase, ws: Workspace, permuted: bool):
    if permuted:
        return ws.const("jds_colperm", lambda: m._permuted_col_idx())  # noqa: SLF001
    return ws.const("col_idx", lambda: m.col_idx)


@register_kernel(
    JaggedDiagonalsBase, "spmv", name="jds_grouped",
    supports_permuted=True, tags=("numpy", "blocked"),
)
def _jds_grouped(m: JaggedDiagonalsBase, ws: Workspace, x, y, permuted=False):
    """Padded-length-grouped fused dot products on the jagged arrays.

    Stored rows are sorted by padded length, so rows of equal padded
    length occupy a contiguous stored range; re-permuting the flat
    column-major slots once (cached) turns each range into a dense
    row-major rectangle that a single ``einsum('il,il->i')`` reduces
    straight into the stored-order accumulator — each output row is
    written exactly once, with no per-column accumulator re-reads.
    """
    if m.total_slots == 0:
        y.fill(0.0)
        return
    idx_g, data_g, groups = m._grouped_entries(permuted)  # noqa: SLF001
    # padded lengths are non-increasing: the first group is the widest
    gmax = groups[0][0] if groups else 1
    G = ws.buf(
        "jds_Gg", min(idx_g.shape[0], max(_SPMV_BLOCK, gmax)), m.dtype
    )
    # groups tile the stored rows [0, tail); only zero the empty tail
    tail = groups[-1][2] if groups else 0
    if tail < y.shape[0]:
        y[tail:] = 0.0
    off = 0
    for L, r0, r1 in groups:
        nL = r1 - r0
        step = max(1, _SPMV_BLOCK // L)
        for c0 in range(0, nL, step):
            c1 = min(c0 + step, nL)
            cnt = (c1 - c0) * L
            sl = slice(off + c0 * L, off + c1 * L)
            gv = G[:cnt]
            np.take(x, idx_g[sl], out=gv, mode="clip")
            np.einsum(
                "il,il->i",
                gv.reshape(c1 - c0, L),
                data_g[sl].reshape(c1 - c0, L),
                out=y[r0 + c0 : r0 + c1],
            )
        off += nL * L


def _jds_runs(m: JaggedDiagonalsBase):
    """Runs of consecutive jagged columns of equal length.

    Returns a list of ``(flat_start, column_length, n_columns)``.  With
    pJDS's block-granular padding, long stretches of columns share a
    length, so the per-call Python loop collapses from ``width`` to a
    handful of fused rectangles.
    """
    col_len = np.diff(m.col_start)
    runs = []
    j = 0
    width = col_len.shape[0]
    while j < width:
        L = int(col_len[j])
        j2 = j
        while j2 + 1 < width and col_len[j2 + 1] == L:
            j2 += 1
        if L > 0:
            runs.append((int(m.col_start[j]), L, j2 - j + 1))
        j = j2 + 1
    return runs


@register_kernel(
    JaggedDiagonalsBase, "spmv", name="jds_fused_runs",
    supports_permuted=True, tags=("numpy", "fused"),
)
def _jds_fused_runs(m: JaggedDiagonalsBase, ws: Workspace, x, y, permuted=False):
    y.fill(0.0)
    if m.total_slots == 0:
        return
    col_idx = _jds_cols(m, ws, permuted)
    val = ws.const("val", lambda: m.val)
    runs = ws.const("jds_runs", lambda: _jds_runs(m))
    G = ws.buf("jds_G", m.total_slots, m.dtype)
    np.take(x, col_idx, out=G, mode="clip")
    np.multiply(G, val, out=G)
    r = ws.buf("jds_r", m.nrows, m.dtype)
    for s, L, k in runs:
        if k == 1:
            y[:L] += G[s : s + L]
        else:
            block = G[s : s + L * k].reshape(k, L)
            np.add.reduce(block, axis=0, out=r[:L])
            y[:L] += r[:L]


@register_kernel(
    JaggedDiagonalsBase, "spmv", name="jds_sweep",
    supports_permuted=True, tags=("numpy",),
)
def _jds_sweep(m: JaggedDiagonalsBase, ws: Workspace, x, y, permuted=False):
    y.fill(0.0)
    if m.total_slots == 0:
        return
    col_idx = _jds_cols(m, ws, permuted)
    val = ws.const("val", lambda: m.val)
    cs = ws.const("col_start", lambda: m.col_start)
    g = ws.buf("jds_g", m.nrows, m.dtype)
    for j in range(m.width):
        s = cs[j]
        e = cs[j + 1]
        gv = g[: e - s]
        np.take(x, col_idx[s:e], out=gv, mode="clip")
        np.multiply(gv, val[s:e], out=gv)
        y[: e - s] += gv


# ---------------------------------------------------------------------------
# SELL-C-sigma
# ---------------------------------------------------------------------------

def _sell_gather(m: SELLMatrix, ws: Workspace, x):
    col_idx = ws.const("col_idx", lambda: m.col_idx)
    val = ws.const("val", lambda: m.val)
    G = ws.buf("sell_G", m.total_slots, m.dtype)
    np.take(x, col_idx, out=G, mode="clip")
    np.multiply(G, val, out=G)
    return G


def _sell_width_groups(m: SELLMatrix):
    """Per distinct chunk width: (width, slot positions, target rows)."""
    widths = np.asarray(m.chunk_widths)
    C = m.chunk_rows
    ptr = np.asarray(m.chunk_ptr)
    groups = []
    for w in np.unique(widths):
        w = int(w)
        if w == 0:
            continue
        chunks = np.flatnonzero(widths == w)
        # all slots of each chunk are contiguous: ptr[c] .. ptr[c] + w*C
        pos = (ptr[chunks][:, None] + np.arange(w * C)).ravel()
        rows = (chunks[:, None] * C + np.arange(C)).ravel()
        groups.append((w, chunks.shape[0], pos, rows))
    return groups


@register_kernel(SELLMatrix, "spmv", name="sell_fused", tags=("numpy", "fused"))
def _sell_fused(m: SELLMatrix, ws: Workspace, x, y, permuted=False):
    if m.total_slots == 0:
        y.fill(0.0)
        return
    G = _sell_gather(m, ws, x)
    groups = ws.const("sell_groups", lambda: _sell_width_groups(m))
    acc = ws.buf("sell_acc", m.padded_rows, m.dtype)
    acc.fill(0.0)
    C = m.chunk_rows
    for i, (w, nc, pos, rows) in enumerate(groups):
        B = ws.buf(f"sell_B{i}", nc * w * C, m.dtype)
        np.take(G, pos, out=B, mode="clip")
        R = ws.buf(f"sell_R{i}", (nc, C), m.dtype)
        np.add.reduce(B.reshape(nc, w, C), axis=1, out=R)
        acc[rows] = R.reshape(-1)
    y[:] = acc[: m.nrows]


@register_kernel(SELLMatrix, "spmv", name="sell_chunks", tags=("numpy",))
def _sell_chunks(m: SELLMatrix, ws: Workspace, x, y, permuted=False):
    if m.total_slots == 0:
        y.fill(0.0)
        return
    G = _sell_gather(m, ws, x)
    ptr = ws.const("chunk_ptr", lambda: m.chunk_ptr)
    widths = ws.const("chunk_widths", lambda: m.chunk_widths)
    C = m.chunk_rows
    acc = ws.buf("sell_acc", m.padded_rows, m.dtype)
    acc.fill(0.0)
    for c in range(m.nchunks):
        w = int(widths[c])
        if w == 0:
            continue
        seg = G[ptr[c] : ptr[c + 1]].reshape(w, C)
        np.add.reduce(seg, axis=0, out=acc[c * C : (c + 1) * C])
    y[:] = acc[: m.nrows]


# ---------------------------------------------------------------------------
# CMRS (strip-based compressed multi-row storage)
# ---------------------------------------------------------------------------

@register_kernel(CMRSMatrix, "spmv", name="cmrs_reduceat", tags=("numpy",))
def _cmrs_reduceat(m: CMRSMatrix, ws: Workspace, x, y, permuted=False):
    """Row-run segment sums over the flat strip stream.

    CMRS keeps the entries in CRS order, so the per-row reduction is
    the same ``reduceat`` over row runs COO uses — the strip structure
    only changes how the row index is *stored*, not where entries live.
    """
    if m.nnz == 0:
        y.fill(0.0)
        return
    val = ws.const("val", lambda: m.val)
    col = ws.const("col_idx", lambda: m.col_idx)
    starts, urows = ws.const("cmrs_runs", lambda: m._row_runs())  # noqa: SLF001
    g = _take_mul(x, col, val, ws.buf("cmrs_g", m.nnz, m.dtype))
    r = ws.buf("cmrs_r", starts.shape[0], m.dtype)
    np.add.reduceat(g, starts, out=r)
    y.fill(0.0)
    y[urows] = r


@register_kernel(CMRSMatrix, "spmv", name="cmrs_bincount", tags=("numpy",))
def _cmrs_bincount(m: CMRSMatrix, ws: Workspace, x, y, permuted=False):
    """Scatter-add via ``bincount`` over the reconstructed entry rows.

    Accumulates each row ascending through its entries from a zero
    start — the same order the compiled per-strip scalar loop uses, so
    at float64 this is its bitwise reference.
    """
    if m.nnz == 0:
        y.fill(0.0)
        return
    val = ws.const("val", lambda: m.val)
    col = ws.const("col_idx", lambda: m.col_idx)
    rows = ws.const("cmrs_rows", lambda: m.entry_rows)
    g = _take_mul(x, col, val, ws.buf("cmrs_g", m.nnz, m.dtype))
    acc = np.bincount(rows, weights=g, minlength=m.nrows)
    np.copyto(y, acc, casting="same_kind")


# ---------------------------------------------------------------------------
# ARG-CSR (adaptive row-grouped CSR)
# ---------------------------------------------------------------------------

@register_kernel(
    ARGCSRMatrix, "spmv", name="argcsr_groups", tags=("numpy", "blocked")
)
def _argcsr_groups(m: ARGCSRMatrix, ws: Workspace, x, y, permuted=False):
    """Cache-blocked fused dot products, one einsum per group rectangle.

    The format has already done the length grouping CSR's grouped
    kernel computes on the fly: each group is a dense row-major
    ``(n_g, width)`` rectangle (padding multiplies ``x[0]`` by 0), so
    the kernel is a straight blocked gather + ``einsum('il,il->i')``
    scattered to the group's original rows.
    """
    y.fill(0.0)
    if m.total_slots == 0:
        return
    val = ws.const("val", lambda: m.val)
    col = ws.const("col_idx", lambda: m.col_idx)
    rids = ws.const("argcsr_rows", lambda: m.row_ids)
    gptr, widths, rptr = m.group_ptr, m.group_width, m.group_rows_ptr
    wmax = int(widths.max())
    G = ws.buf(
        "argcsr_G", min(m.total_slots, max(_SPMV_BLOCK, wmax)), m.dtype
    )
    r = ws.buf("argcsr_r", rids.shape[0], m.dtype)
    for g in range(m.ngroups):
        lo, L = int(gptr[g]), int(widths[g])
        r0, r1 = int(rptr[g]), int(rptr[g + 1])
        nL = r1 - r0
        step = max(1, _SPMV_BLOCK // L)
        for c0 in range(0, nL, step):
            c1 = min(c0 + step, nL)
            cnt = (c1 - c0) * L
            sl = slice(lo + c0 * L, lo + c1 * L)
            gv = G[:cnt]
            np.take(x, col[sl], out=gv, mode="clip")
            np.einsum(
                "il,il->i",
                gv.reshape(c1 - c0, L),
                val[sl].reshape(c1 - c0, L),
                out=r[: c1 - c0],
            )
            y[rids[r0 + c0 : r0 + c1]] = r[: c1 - c0]


@register_kernel(ARGCSRMatrix, "spmv", name="argcsr_sweep", tags=("numpy",))
def _argcsr_sweep(m: ARGCSRMatrix, ws: Workspace, x, y, permuted=False):
    """Per-group column sweep over the padded rectangles.

    Each group's accumulator adds one rectangle column per step,
    ascending ``j`` from a zero start and *including* the padding
    slots (``0 * x[0]``) — exactly the compiled per-row loop's
    order, so this is its bitwise reference.
    """
    y.fill(0.0)
    if m.total_slots == 0:
        return
    val = ws.const("val", lambda: m.val)
    col = ws.const("col_idx", lambda: m.col_idx)
    rids = ws.const("argcsr_rows", lambda: m.row_ids)
    gptr, widths, rptr = m.group_ptr, m.group_width, m.group_rows_ptr
    nmax = int(np.diff(rptr).max())
    acc = ws.buf("argcsr_acc", nmax, m.dtype)
    g = ws.buf("argcsr_gv", nmax, m.dtype)
    for gi in range(m.ngroups):
        lo, hi = int(gptr[gi]), int(gptr[gi + 1])
        L = int(widths[gi])
        r0, r1 = int(rptr[gi]), int(rptr[gi + 1])
        nL = r1 - r0
        cols2 = col[lo:hi].reshape(nL, L)
        vals2 = val[lo:hi].reshape(nL, L)
        a = acc[:nL]
        a.fill(0.0)
        gv = g[:nL]
        for j in range(L):
            np.take(x, cols2[:, j], out=gv, mode="clip")
            np.multiply(gv, vals2[:, j], out=gv)
            a += gv
        y[rids[r0:r1]] = a


# ---------------------------------------------------------------------------
# compiled csr_matvec delegates (optional; only registered when scipy's
# private sparsetools module is importable)
# ---------------------------------------------------------------------------

def _sp_index_dtype(count: int):
    """Narrowest index dtype scipy's sparsetools accepts for ``count``."""
    return np.int32 if count < np.iinfo(np.int32).max else np.int64


def _sp_matvec(nrows, ncols, indptr, indices, data, x, y):
    """``y = A x`` via scipy's C kernel (it *accumulates*, so zero first)."""
    y.fill(0.0)
    _scipy_sparsetools.csr_matvec(nrows, ncols, indptr, indices, data, x, y)


def _jds_stored_csr(m: JaggedDiagonalsBase, permuted: bool):
    """CSR triplet of the stored-order (row-permuted) matrix.

    The grouped row-major entry order of :meth:`_grouped_entries` *is*
    a CSR layout whose rows are the stored rows and whose row lengths
    are the padded lengths — padding slots carry a 0.0 value and an
    in-bounds column index, so the compiled kernel may sweep them.
    """
    idx_g, data_g, groups = m._grouped_entries(permuted)  # noqa: SLF001
    it = _sp_index_dtype(max(idx_g.shape[0], m.ncols))
    indptr = np.zeros(m.nrows + 1, dtype=np.int64)
    for length, r0, r1 in groups:
        indptr[r0 + 1 : r1 + 1] = length
    np.cumsum(indptr, out=indptr)
    return indptr.astype(it), idx_g.astype(it), data_g


def _ell_true_csr(m: ELLPACKMatrix):
    """CSR triplet of the unpadded entries of the ELLPACK rectangle.

    Uses the true row lengths (the ELLPACK-R descriptor), so the
    compiled sweep skips the padding arithmetic entirely.
    """
    col_rm, val_rm = m._row_major_entries()  # noqa: SLF001
    w = m.width
    lens = np.asarray(m.row_lengths(), dtype=np.int64)
    keep = (np.arange(w, dtype=np.int64)[None, :] < lens[:, None]).ravel()
    it = _sp_index_dtype(max(int(lens.sum()), m.ncols))
    indices = col_rm[: m.nrows * w][keep].astype(it)
    data = np.ascontiguousarray(val_rm[: m.nrows].reshape(-1)[keep])
    indptr = np.zeros(m.nrows + 1, dtype=np.int64)
    np.cumsum(lens, out=indptr[1:])
    return indptr.astype(it), indices, data


def _sell_stored_csr(m: SELLMatrix):
    """CSR triplet over the *padded* stored rows of a SELL-C-sigma matrix.

    Chunk slots are column-major within each chunk; one transpose per
    chunk at build time converts them to row-major runs.  Row ``i`` of
    the triplet is padded stored row ``i`` (chunk ``i // C``), so the
    matvec result needs the same ``acc[:nrows]`` trim + scatter as the
    NumPy SELL kernels.  Padding slots are 0.0-valued with in-bounds
    column indices.
    """
    C = m.chunk_rows
    it = _sp_index_dtype(max(m.total_slots, m.ncols))
    lens = np.repeat(m.chunk_widths, C)
    indptr = np.zeros(m.padded_rows + 1, dtype=np.int64)
    np.cumsum(lens, out=indptr[1:])
    indices = np.empty(m.total_slots, dtype=it)
    data = np.empty(m.total_slots, dtype=m.dtype)
    ptr = m.chunk_ptr
    for c in range(m.nchunks):
        s, e = int(ptr[c]), int(ptr[c + 1])
        w = int(m.chunk_widths[c])
        if w == 0:
            continue
        indices[s:e] = m.col_idx[s:e].reshape(w, C).T.reshape(-1)
        data[s:e] = m.val[s:e].reshape(w, C).T.reshape(-1)
    return indptr.astype(it), indices, data


def _cmrs_csr(m: CMRSMatrix):
    """CSR triplet of a CMRS matrix — a relabelling, not a copy.

    The CMRS entry stream *is* row-major CSR order; only the row
    pointer needs recovering from the strip structure (cached on the
    matrix).  Values alias the matrix array.
    """
    it = _sp_index_dtype(max(m.nnz, m.ncols))
    return (
        np.asarray(m.row_ptr).astype(it, copy=False),
        np.asarray(m.col_idx).astype(it, copy=False),
        m.val,
    )


def _argcsr_true_csr(m: ARGCSRMatrix):
    """CSR triplet of the unpadded entries of the group rectangles.

    Original row order; the per-group padding tails are dropped, so
    the compiled sweep touches only true non-zeros.
    """
    lens = np.asarray(m.row_lengths(), dtype=np.int64)
    nnz = int(lens.sum())
    it = _sp_index_dtype(max(nnz, m.ncols))
    indptr = np.zeros(m.nrows + 1, dtype=np.int64)
    np.cumsum(lens, out=indptr[1:])
    indices = np.empty(nnz, dtype=it)
    data = np.empty(nnz, dtype=m.dtype)
    for g in range(m.ngroups):
        vals, cols, rows = m.group_rect(g)
        w = vals.shape[1]
        tl = lens[rows]
        j = np.arange(w, dtype=np.int64)[None, :]
        keep = j < tl[:, None]
        dst = (indptr[rows][:, None] + j)[keep]
        indices[dst] = cols[keep].astype(it)
        data[dst] = vals[keep]
    return indptr.astype(it), indices, data


#: per-matrix cache of stored-order CSR triplets, shared by the spmv
#: kernels and the batched SpMM delegates (weak keys: the triplet dies
#: with its matrix)
_STORED_CSR: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def stored_csr_triplet(m: SparseMatrixFormat, permuted: bool = False):
    """Cached ``(indptr, indices, data)`` stored-order CSR view of ``m``.

    For :class:`CSRMatrix` the triplet aliases the matrix arrays (no
    copy); the other formats build and cache one.  Raises ``TypeError``
    for formats without a CSR view.
    """
    key = "perm" if permuted else "orig"
    per_m = _STORED_CSR.get(m)
    if per_m is None:
        per_m = _STORED_CSR[m] = {}
    if key not in per_m:
        if isinstance(m, CSRMatrix):
            it = _sp_index_dtype(max(m.nnz, m.ncols))
            per_m[key] = (
                m.indptr.astype(it, copy=False),
                m.indices.astype(it, copy=False),
                m.data,
            )
        elif isinstance(m, JaggedDiagonalsBase):
            per_m[key] = _jds_stored_csr(m, permuted)
        elif isinstance(m, SELLMatrix):
            per_m[key] = _sell_stored_csr(m)
        elif isinstance(m, ELLPACKMatrix):
            per_m[key] = _ell_true_csr(m)
        elif isinstance(m, CMRSMatrix):
            per_m[key] = _cmrs_csr(m)
        elif isinstance(m, ARGCSRMatrix):
            per_m[key] = _argcsr_true_csr(m)
        else:
            raise TypeError(f"no stored-CSR view for {type(m).__name__}")
    return per_m[key]


def _csr_scipy(m: CSRMatrix, ws: Workspace, x, y, permuted=False):
    """Delegate to the compiled fused gather-FMA-reduce CSR matvec.

    Every pure-NumPy kernel must materialise the gathered product
    (one extra write+read pass per stored entry); the C kernel fuses
    the whole row reduction, so on latency-bound gathers (small
    ``Nnzr``) it is the variant to beat.
    """
    indptr, indices, data = stored_csr_triplet(m)
    _sp_matvec(m.nrows, m.ncols, indptr, indices, data, x, y)


def _jds_scipy(m: JaggedDiagonalsBase, ws: Workspace, x, y, permuted=False):
    """Stored-order grouped layout viewed as CSR, swept by the C kernel."""
    indptr, indices, data = stored_csr_triplet(m, permuted)
    _sp_matvec(m.nrows, m.ncols, indptr, indices, data, x, y)


def _ell_scipy(m: ELLPACKMatrix, ws: Workspace, x, y, permuted=False):
    """Unpadded-rows CSR view of the rectangle, swept by the C kernel."""
    if m.width == 0:
        y.fill(0.0)
        return
    indptr, indices, data = stored_csr_triplet(m)
    _sp_matvec(m.nrows, m.ncols, indptr, indices, data, x, y)


def _cmrs_scipy(m: CMRSMatrix, ws: Workspace, x, y, permuted=False):
    """Strip stream relabelled as CSR, swept by the C kernel."""
    indptr, indices, data = stored_csr_triplet(m)
    _sp_matvec(m.nrows, m.ncols, indptr, indices, data, x, y)


def _argcsr_scipy(m: ARGCSRMatrix, ws: Workspace, x, y, permuted=False):
    """Unpadded original-order CSR view of the groups, compiled sweep."""
    indptr, indices, data = stored_csr_triplet(m)
    _sp_matvec(m.nrows, m.ncols, indptr, indices, data, x, y)


def _sell_scipy(m: SELLMatrix, ws: Workspace, x, y, permuted=False):
    """Padded-stored-rows CSR view of the chunks, swept by the C kernel."""
    if m.total_slots == 0:
        y.fill(0.0)
        return
    indptr, indices, data = stored_csr_triplet(m)
    acc = ws.buf("sell_sp_acc", m.padded_rows, m.dtype)
    _sp_matvec(m.padded_rows, m.ncols, indptr, indices, data, x, acc)
    y[:] = acc[: m.nrows]


if _HAVE_CSR_MATVEC:
    # compiled delegates lead their candidate lists (``first=True``):
    # they are the best guess when tuning is off, and the autotuner
    # re-ranks them against the NumPy kernels per matrix anyway.
    _sp_tags = ("scipy", "compiled")
    register_kernel(
        CSRMatrix, "spmv", name="csr_scipy", tags=_sp_tags, first=True
    )(_csr_scipy)
    register_kernel(
        ELLPACKMatrix, "spmv", name="ell_scipy", tags=_sp_tags, first=True
    )(_ell_scipy)
    register_kernel(
        JaggedDiagonalsBase, "spmv", name="jds_scipy",
        supports_permuted=True, tags=_sp_tags, first=True,
    )(_jds_scipy)
    register_kernel(
        SELLMatrix, "spmv", name="sell_scipy", tags=_sp_tags, first=True
    )(_sell_scipy)
    register_kernel(
        CMRSMatrix, "spmv", name="cmrs_scipy", tags=_sp_tags, first=True
    )(_cmrs_scipy)
    register_kernel(
        ARGCSRMatrix, "spmv", name="argcsr_scipy", tags=_sp_tags, first=True
    )(_argcsr_scipy)
