"""Batched SpMM (block-of-vectors) kernels, ``Y = A @ X``.

The generic :meth:`SparseMatrixFormat.spmm` used to loop Python-level
per column with an ``ascontiguousarray`` copy each — O(k) kernel
launches and O(k) copies.  The kernels here process all ``k`` RHS
vectors in one fused sweep over the stored entries: the gathered RHS
block ``X[col]`` is a ``(slots, k)`` rectangle, so each stored element
is read once and the k-wide FMA amortises the index traffic — exactly
the code-balance improvement (Eq. 1) block Krylov methods and the KPM
exploit on real hardware.

Layout notes: C-ordered ``X`` (rows contiguous) is the fast path for
the row-gather kernels; Fortran-ordered ``X`` gets a zero-copy
per-column fallback (its column views are already contiguous) instead
of a silent full copy.

Dispatch is registry-driven: each kernel is declared with
``@register_kernel(<FormatClass>, "spmm", name="spmm_<fmt>")`` and
:func:`spmm_dispatch` resolves through
:func:`repro.ops.registry.kernels_for`, so format subclasses inherit
their base format's batched kernel and unknown formats degrade to the
per-column loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.jds import JaggedDiagonalsBase
from repro.core.sell import SELLMatrix
from repro.formats.argcsr import ARGCSRMatrix
from repro.formats.base import SparseMatrixFormat
from repro.formats.cmrs import CMRSMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.ellpack import ELLPACKMatrix
from repro.ops.registry import kernels_for, register_kernel
from repro.ops.spmv_kernels import (
    _HAVE_CSR_MATVEC,
    _scipy_sparsetools,
    stored_csr_triplet,
)

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.engine.workspace import Workspace

__all__ = ["spmm_dispatch", "spmm_permuted"]


def _block(ws: Workspace | None, name: str, shape, dtype) -> np.ndarray:
    """Workspace buffer when bound, plain allocation otherwise."""
    if ws is None:
        return np.empty(shape, dtype=dtype)
    return ws.buf(name, shape, dtype)


# ---------------------------------------------------------------------------

#: gathered elements per cache-blocked chunk (~512 KB at float64): the
#: RHS rectangle is written and immediately reduced while still
#: cache-resident, so the only main-memory traffic per stored entry is
#: one index + one value read — the code-balance point of batching.
_SPMM_BLOCK = 65536


def _rows_per_chunk(L: int, k: int) -> int:
    return max(1, _SPMM_BLOCK // (max(k, 1) * max(L, 1)))


def _sp_matvecs(nrows, ncols, indptr, indices, data, X, out):
    """``out = A X`` via scipy's compiled block kernel (accumulating)."""
    out[:] = 0.0
    _scipy_sparsetools.csr_matvecs(
        nrows, ncols, X.shape[1], indptr, indices, data, X, out
    )


def _try_spmm_scipy(m, X, out, permuted=False) -> bool:
    """Compiled batched sweep over the stored-CSR view, when possible.

    Requires the optional scipy delegate plus C-contiguous operands
    (the compiled kernel walks raw row-major buffers).  Returns False
    to let the caller fall back to the NumPy kernel.
    """
    if not (
        _HAVE_CSR_MATVEC
        and out.flags.c_contiguous
        and X.flags.c_contiguous
        and out.shape[0] == m.nrows
    ):
        return False
    indptr, indices, data = stored_csr_triplet(m, permuted)
    _sp_matvecs(m.nrows, m.ncols, indptr, indices, data, X, out)
    return True


@register_kernel(CSRMatrix, "spmm", name="spmm_csr", tags=("numpy", "blocked"))
def _spmm_csr(m: CSRMatrix, X, out, ws):
    """Cache-blocked length-grouped batched GEMV (quasi-ELLPACK view).

    Rows are bucketed by length ``L`` so each bucket is a dense
    ``(nL, L)`` rectangle of entries; per row chunk, the gathered RHS
    block is reduced with one strided ``(nr, k, L) @ (nr, L, 1)``
    batched matmul while still cache-resident.  This sidesteps both
    the per-segment overhead of a 2-D ``np.add.reduceat`` (one dispatch
    per row) and the memory round-trip of materialising the full
    ``(nnz, k)`` gather.
    """
    if m.nnz == 0:
        out[:] = 0.0
        return out
    if _try_spmm_scipy(m, X, out):
        return out
    k = X.shape[1]
    idx_g, data_g, groups = m._length_groups()  # noqa: SLF001
    out[:] = 0.0
    gsz = rsz = 1
    for L, rows_l in groups:
        rc = min(_rows_per_chunk(L, k), rows_l.shape[0])
        gsz = max(gsz, rc * L * k)
        rsz = max(rsz, rc * k)
    G = _block(ws, f"spmm_G:{k}", gsz, m.dtype)
    R = _block(ws, f"spmm_R:{k}", rsz, m.dtype)
    off = 0
    for L, rows_l in groups:
        nL = rows_l.shape[0]
        step = _rows_per_chunk(L, k)
        for c0 in range(0, nL, step):
            c1 = min(c0 + step, nL)
            nr = c1 - c0
            sl = slice(off + c0 * L, off + c1 * L)
            Gv = G[: nr * L * k].reshape(nr * L, k)
            np.take(X, idx_g[sl], axis=0, out=Gv, mode="clip")
            Rv = R[: nr * k].reshape(nr, k, 1)
            np.matmul(
                Gv.reshape(nr, L, k).transpose(0, 2, 1),
                data_g[sl].reshape(nr, L, 1),
                out=Rv,
            )
            out[rows_l[c0:c1]] = Rv[:, :, 0]
        off += nL * L
    return out


@register_kernel(COOMatrix, "spmm", name="spmm_coo", tags=("numpy",))
def _spmm_coo(m: COOMatrix, X, out, ws):
    if m.nnz == 0:
        out[:] = 0.0
        return out
    k = X.shape[1]
    prod = _block(ws, "spmm_prod", (m.nnz, k), m.dtype)
    np.take(X, m.cols, axis=0, out=prod, mode="clip")
    prod *= m.values[:, None]
    starts, urows = m._row_runs()  # noqa: SLF001
    out[:] = 0.0
    out[urows] = np.add.reduceat(prod, starts, axis=0)
    return out


@register_kernel(ELLPACKMatrix, "spmm", name="spmm_ell", tags=("numpy", "blocked"))
def _spmm_ell(m: ELLPACKMatrix, X, out, ws):
    """Cache-blocked batched GEMV over the row-major padded rectangle."""
    if m.width == 0:
        out[:] = 0.0
        return out
    if _try_spmm_scipy(m, X, out):
        return out
    k = X.shape[1]
    col_rm, val_rm = m._row_major_entries()  # noqa: SLF001
    L = m.width
    step = _rows_per_chunk(L, k)
    rc = min(step, m.nrows)
    G = _block(ws, f"spmm_G:{k}", rc * L * k, m.dtype)
    R = _block(ws, f"spmm_R:{k}", rc * k, m.dtype)
    for c0 in range(0, m.nrows, step):
        c1 = min(c0 + step, m.nrows)
        nr = c1 - c0
        Gv = G[: nr * L * k].reshape(nr * L, k)
        np.take(X, col_rm[c0 * L : c1 * L], axis=0, out=Gv, mode="clip")
        Rv = R[: nr * k].reshape(nr, k, 1)
        np.matmul(
            Gv.reshape(nr, L, k).transpose(0, 2, 1),
            val_rm[c0:c1].reshape(nr, L, 1),
            out=Rv,
        )
        out[c0:c1] = Rv[:, :, 0]
    return out


def _spmm_jds_stored(m: JaggedDiagonalsBase, X, acc, permuted, ws):
    """Blocked grouped GEMV writing the stored-order block ``acc``.

    Padded lengths are non-increasing, so each length group is a
    contiguous stored-row range and the batched matmul writes its
    ``(nr, k)`` result slice directly — every output row is produced
    exactly once, with no per-column accumulator re-reads.  ``acc``
    must be C-contiguous.
    """
    if _try_spmm_scipy(m, X, acc, permuted):
        return acc
    idx_g, data_g, groups = m._grouped_entries(permuted)  # noqa: SLF001
    k = X.shape[1]
    # groups tile the stored rows [0, tail); only zero the empty tail
    tail = groups[-1][2] if groups else 0
    if tail < acc.shape[0]:
        acc[tail:] = 0.0
    gsz = 1
    for L, r0, r1 in groups:
        rc = min(_rows_per_chunk(L, k), r1 - r0)
        gsz = max(gsz, rc * L * k)
    G = _block(ws, f"spmm_G:{k}", gsz, m.dtype)
    off = 0
    for L, r0, r1 in groups:
        nL = r1 - r0
        step = _rows_per_chunk(L, k)
        for c0 in range(0, nL, step):
            c1 = min(c0 + step, nL)
            nr = c1 - c0
            sl = slice(off + c0 * L, off + c1 * L)
            Gv = G[: nr * L * k].reshape(nr * L, k)
            np.take(X, idx_g[sl], axis=0, out=Gv, mode="clip")
            np.matmul(
                Gv.reshape(nr, L, k).transpose(0, 2, 1),
                data_g[sl].reshape(nr, L, 1),
                out=acc[r0 + c0 : r0 + c1].reshape(nr, k, 1),
            )
        off += nL * L
    return acc


@register_kernel(JaggedDiagonalsBase, "spmm", name="spmm_jds", tags=("numpy", "blocked"))
def _spmm_jds(m: JaggedDiagonalsBase, X, out, ws):
    if m.total_slots == 0:
        out[:] = 0.0
        return out
    k = X.shape[1]
    acc = _block(ws, f"spmm_acc:{k}", (m.nrows, k), m.dtype)
    _spmm_jds_stored(m, X, acc, False, ws)
    # gather through the inverse permutation (fast contiguous writes)
    np.take(acc, m.permutation.inverse, axis=0, out=out, mode="clip")
    return out


@register_kernel(SELLMatrix, "spmm", name="spmm_sell", tags=("numpy",))
def _spmm_sell(m: SELLMatrix, X, out, ws):
    if m.total_slots == 0:
        out[:] = 0.0
        return out
    k = X.shape[1]
    C = m.chunk_rows
    acc = _block(ws, "spmm_acc", (m.padded_rows, k), m.dtype)
    if _HAVE_CSR_MATVEC and X.flags.c_contiguous:
        # compiled sweep over the padded-stored-rows CSR view
        indptr, indices, data = stored_csr_triplet(m)
        _sp_matvecs(m.padded_rows, m.ncols, indptr, indices, data, X, acc)
        out[m.permutation.perm] = acc[: m.nrows]
        return out
    acc[:] = 0.0
    ptr = m.chunk_ptr
    widths = m.chunk_widths
    val = m.val
    col_idx = m.col_idx
    for c in range(m.nchunks):
        w = int(widths[c])
        if w == 0:
            continue
        s = int(ptr[c])
        e = int(ptr[c + 1])
        # chunk slots are column-major within the chunk: (w, C)
        gv = X[col_idx[s:e]] * val[s:e, None]
        acc[c * C : (c + 1) * C] += gv.reshape(w, C, k).sum(axis=0)
    out[m.permutation.perm] = acc[: m.nrows]
    return out


def _spmm_csrview(m, X, out, ws, *, name: str):
    """Batched sweep over a format's stored-CSR view (original order).

    Compiled scipy path when available; otherwise one ``(nnz, k)``
    gather reduced per row run via 2-D ``reduceat`` — the COO batched
    kernel on the triplet view.
    """
    if m.nnz == 0:
        out[:] = 0.0
        return out
    if _try_spmm_scipy(m, X, out):
        return out
    indptr, indices, data = stored_csr_triplet(m)
    k = X.shape[1]
    prod = _block(ws, f"{name}_prod", (data.shape[0], k), m.dtype)
    np.take(X, indices, axis=0, out=prod, mode="clip")
    prod *= data[:, None]
    lens = np.diff(indptr)
    ne = np.flatnonzero(lens > 0)
    starts = np.ascontiguousarray(indptr[:-1][ne])
    out[:] = 0.0
    out[ne] = np.add.reduceat(prod, starts, axis=0)
    return out


@register_kernel(CMRSMatrix, "spmm", name="spmm_cmrs", tags=("numpy",))
def _spmm_cmrs(m: CMRSMatrix, X, out, ws):
    """CMRS entries are row-major already: sweep the CSR relabelling."""
    return _spmm_csrview(m, X, out, ws, name="spmm_cmrs")


@register_kernel(ARGCSRMatrix, "spmm", name="spmm_argcsr", tags=("numpy",))
def _spmm_argcsr(m: ARGCSRMatrix, X, out, ws):
    """Sweep the unpadded original-order CSR view of the groups."""
    return _spmm_csrview(m, X, out, ws, name="spmm_argcsr")


# ---------------------------------------------------------------------------

def spmm_dispatch(
    m: SparseMatrixFormat,
    X: np.ndarray,
    out: np.ndarray,
    ws: Workspace | None = None,
) -> np.ndarray:
    """Route a validated (X, out) pair to the fused kernel of ``m``.

    ``X`` must already have the matrix dtype and ``out`` the right
    shape (callers go through ``check_rhs_block``).  Fortran-ordered
    ``X`` takes the zero-copy per-column path; everything else is made
    C-contiguous once and processed by the batched kernel resolved
    from the central registry (rank-0 candidate for the format).
    """
    if X.ndim != 2:  # defensive: dispatch is also called directly
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    candidates = kernels_for(m, "spmm")
    if not candidates:
        return m.spmm_percolumn(X, out)
    if not X.flags.c_contiguous:
        if X.flags.f_contiguous:
            # Fortran fast path: column views are contiguous, no copies
            return m.spmm_percolumn(X, out)
        X = np.ascontiguousarray(X)
    return candidates[0].run(m, X, out, ws)


def spmm_permuted(
    m: JaggedDiagonalsBase,
    X_perm: np.ndarray,
    out: np.ndarray | None = None,
    ws: Workspace | None = None,
) -> np.ndarray:
    """Stored-basis block product ``Y~ = P A P^T X~`` (square jagged only).

    The block analogue of ``spmv_permuted``: the batched KPM path runs
    its whole Chebyshev recurrence on (n, R) blocks in the stored basis
    and never gathers/scatters inside the iteration.
    """
    if not isinstance(m, JaggedDiagonalsBase):
        raise TypeError(
            f"{type(m).__name__} has no permuted-basis block kernel"
        )
    if m.nrows != m.ncols:
        raise ValueError("permuted-basis spmm requires a square matrix")
    X_perm, out = m.check_rhs_block(X_perm, out)
    if not X_perm.flags.c_contiguous:
        X_perm = np.ascontiguousarray(X_perm)
    if m.total_slots == 0:
        out[:] = 0.0
        return out
    if out.flags.c_contiguous:
        _spmm_jds_stored(m, X_perm, out, True, ws)
    else:  # matmul needs a contiguous destination: stage and copy
        acc = _block(ws, f"spmm_acc:{X_perm.shape[1]}", out.shape, m.dtype)
        out[:] = _spmm_jds_stored(m, X_perm, acc, True, ws)
    return out
