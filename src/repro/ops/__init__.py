"""repro.ops — unified operator protocol and central kernel registry.

One import point for the two cross-cutting abstractions of the
package (the ISSUE-4 refactor):

* the **kernel registry** — every (format, op) kernel table lives in
  :mod:`repro.ops.registry`; formats register implementations with
  :func:`register_kernel` and every consumer (autotuner, engine,
  solvers, parallel/distributed backends, serving) resolves through
  :func:`kernels_for` / :func:`get_kernel`;
* the **LinearOperator protocol** — :mod:`repro.ops.protocol` defines
  the minimal ``apply``/``apply_block``/``shape``/``dtype`` surface
  the solvers code against, with adapters for raw formats, the tuned
  engine, and (in :mod:`repro.ops.adapters`) the parallel, distributed
  and serving backends.
"""

from repro.ops.adapters import (
    DistributedOperator,
    ParallelOperator,
    ServeOperator,
)
from repro.ops.protocol import (
    BoundOperator,
    CountingOperator,
    FormatOperator,
    LinearOperator,
    PermutedOperator,
    apply_repeated,
    as_linear_operator,
    solver_operator,
)
from repro.ops.registry import (
    OPS,
    KernelSpec,
    KernelVariant,
    get_kernel,
    get_variant,
    kernel_names_for,
    kernels_for,
    register_kernel,
    registry_rows,
    variant_names_for,
    variants_for,
)
from repro.ops.spmv_kernels import stored_csr_triplet

__all__ = [
    # registry
    "OPS",
    "KernelSpec",
    "KernelVariant",
    "register_kernel",
    "kernels_for",
    "kernel_names_for",
    "get_kernel",
    "registry_rows",
    "variants_for",
    "variant_names_for",
    "get_variant",
    "stored_csr_triplet",
    "spmm_dispatch",
    "spmm_permuted",
    # compiled tier introspection
    "kernel_tiers",
    "backend_status",
    # protocol
    "LinearOperator",
    "FormatOperator",
    "BoundOperator",
    "PermutedOperator",
    "CountingOperator",
    "as_linear_operator",
    "solver_operator",
    "apply_repeated",
    # backend adapters
    "ParallelOperator",
    "DistributedOperator",
    "ServeOperator",
]


def __getattr__(name):
    # spmm_dispatch/spmm_permuted import the format classes (and thus
    # most of the package); resolve them lazily to keep ``import
    # repro.ops`` cheap and cycle-free.
    if name in ("spmm_dispatch", "spmm_permuted"):
        from repro.ops import spmm_kernels

        return getattr(spmm_kernels, name)
    # the compiled tier builds/loads its shared library on first touch;
    # resolve lazily so ``import repro.ops`` stays cheap
    if name in ("kernel_tiers", "backend_status"):
        from repro.kernels import compiled

        return getattr(compiled, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
