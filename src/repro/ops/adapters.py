"""Cross-backend :class:`~repro.ops.protocol.LinearOperator` adapters.

The protocol module covers the single-process format/engine paths;
this module adapts the three "big iron" execution backends so the
solvers (and anything else coded against the protocol) can run
unchanged on top of them:

:class:`ParallelOperator`
    Shared-memory multiprocessing row-block pool
    (:class:`repro.engine.parallel.ParallelSpMV`).
:class:`DistributedOperator`
    The per-rank halo-exchange runtime
    (:func:`repro.distributed.runtime.distributed_spmv`).
:class:`ServeOperator`
    A registered matrix behind a serving
    :class:`~repro.serve.client.Client` — every ``apply`` goes through
    the micro-batching scheduler, so concurrent solver instances
    coalesce like HTTP traffic.

All three present the identity permutation to the solver layer: the
backends consume and produce original-order vectors, any storage
permutation is an implementation detail behind the wire.
"""

from __future__ import annotations

import numpy as np

from repro.ops.protocol import LinearOperator

__all__ = [
    "ParallelOperator",
    "DistributedOperator",
    "ServeOperator",
]


class ParallelOperator(LinearOperator):
    """Operator over a persistent shared-memory SpMV worker pool.

    Owns-or-borrows: pass an existing
    :class:`~repro.engine.parallel.ParallelSpMV` to borrow it, or a
    format instance plus ``nworkers`` to own a freshly spawned pool
    (closed by :meth:`close` / the context manager).
    """

    def __init__(
        self,
        pool_or_matrix,
        nworkers: int | None = None,
        *,
        mode: str = "vector",
    ):
        from repro.engine.parallel import ParallelSpMV

        if isinstance(pool_or_matrix, ParallelSpMV):
            self.pool = pool_or_matrix
            self._owned = False
        else:
            if nworkers is None:
                raise ValueError(
                    "nworkers is required when constructing from a matrix"
                )
            self.pool = ParallelSpMV(pool_or_matrix, nworkers, mode=mode)
            self._owned = True

    @property
    def shape(self) -> tuple[int, int]:
        return self.pool.shape

    @property
    def dtype(self) -> np.dtype:
        return self.pool.dtype

    def apply(self, x, out=None):
        return self.pool.spmv(x, out=out)

    def close(self) -> None:
        """Release the pool (only when this adapter created it)."""
        if self._owned:
            self.pool.close()

    def __enter__(self) -> "ParallelOperator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        p = self.pool
        return (
            f"<ParallelOperator {p.nrows}x{p.ncols} workers={p.nworkers} "
            f"mode={p.mode}>"
        )


class DistributedOperator(LinearOperator):
    """Operator over the halo-exchange distributed runtime.

    Each ``apply`` scatters the global RHS across the plan's ranks,
    runs the exchange + compute round, and gathers the global result —
    i.e. one full distributed spMVM per solver iteration, exactly the
    execution the paper's strong-scaling experiments time.
    """

    def __init__(self, comm_plan, *, backend: str = "threads", timeout: float = 60.0):
        self.comm_plan = comm_plan
        self.backend = backend
        self.timeout = timeout
        local = comm_plan.ranks[0].local_matrix if comm_plan.ranks else None
        self._dtype = np.dtype(local.dtype) if local is not None else np.dtype(
            np.float64
        )

    @property
    def shape(self) -> tuple[int, int]:
        # build_plan enforces square matrices (nrows == ncols)
        return (self.comm_plan.partition.nrows, self.comm_plan.ncols)

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    def apply(self, x, out=None):
        from repro.distributed.runtime import distributed_spmv

        y = distributed_spmv(
            self.comm_plan, x, backend=self.backend, timeout=self.timeout
        )
        if out is not None:
            out[:] = y
            return out
        return y

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DistributedOperator {self.shape[0]}x{self.shape[1]} "
            f"ranks={self.comm_plan.nparts} backend={self.backend}>"
        )


class ServeOperator(LinearOperator):
    """A matrix registered with a serving client, viewed as an operator.

    The shape/dtype are pinned once at construction (via a short
    registry lease); every subsequent ``apply`` is an ordinary client
    ``spmv`` call through the admission-controlled, micro-batching
    scheduler.
    """

    def __init__(
        self,
        client,
        name: str,
        *,
        deadline_ms: float | None = None,
        timeout: float | None = None,
    ):
        self.client = client
        self.name = name
        self.deadline_ms = deadline_ms
        self.timeout = timeout
        with client.server.registry.acquire(name) as lease:
            self._shape = lease.bound.shape
            self._dtype = np.dtype(lease.bound.dtype)

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    def apply(self, x, out=None):
        y = self.client.spmv(
            self.name, x, deadline_ms=self.deadline_ms, timeout=self.timeout
        )
        if out is not None:
            out[:] = y
            return out
        return y

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ServeOperator {self.name!r} {self._shape[0]}x{self._shape[1]}>"
