"""Central kernel registry: (format class, op) -> ordered kernel specs.

The paper's core claim (Sect. II) is that spMVM performance is a
property of the *kernel chosen for a format*, not of the caller.
Related GPU-format work (Kreutzer et al. 2012; Koza et al., CMRS)
treats format<->kernel binding as a pluggable registry decision; this
module is that registry.  Every kernel table that used to be
hard-coded in ``repro.engine.variants`` (spmv) and
``repro.engine.spmm`` (batched spmm) now lives here, and every
consumer — the autotuner roster, :class:`~repro.engine.bound.BoundMatrix`,
the solvers' operator layer, the parallel/distributed backends, and
the serving registry — resolves kernels through the same tables, so
one tuned decision flows everywhere.

Kernels are declared with the :func:`register_kernel` decorator::

    @register_kernel(CSRMatrix, "spmv", name="csr_reduceat", tags=("numpy",))
    def _csr_reduceat(m, ws, x, y, permuted=False): ...

Resolution walks the matrix class's MRO, so subclasses (ELLPACK-R,
ELLR-T, pJDS, ...) inherit their base format's kernels unless they
register their own.  Formats with no registered spmv kernel fall back
to the ``generic`` wrapper around their own ``spmv`` method.

Kernel contracts (per ``op``):

``spmv``
    ``run(matrix, ws, x, y_stored, permuted=False)`` fully writes
    ``y_stored`` (length ``nrows``) in the format's *stored* row
    order; ``x`` is already coerced to the matrix dtype.
``spmm``
    ``run(matrix, X, out, ws)`` with C-contiguous ``(ncols, k)`` X,
    writing the *original*-order ``(nrows, k)`` result into ``out``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterable

__all__ = [
    "KernelSpec",
    "KernelVariant",
    "OPS",
    "register_kernel",
    "kernels_for",
    "kernel_names_for",
    "get_kernel",
    "registry_rows",
    "variants_for",
    "variant_names_for",
    "get_variant",
]

#: operations the registry understands
OPS = ("spmv", "spmm")


@dataclass(frozen=True)
class KernelSpec:
    """One interchangeable kernel implementation for a (format, op) pair."""

    name: str
    run: Callable[..., None]
    #: supports the permuted-basis (stored-order in, stored-order out)
    #: solver path of jagged formats
    supports_permuted: bool = False
    #: free-form labels ("numpy", "compiled", "blocked", ...) surfaced
    #: by ``repro ops list`` and usable for roster filtering
    tags: tuple[str, ...] = ()


#: historical name (``repro.engine.variants.KernelVariant``); the class
#: is identical, only the module moved.
KernelVariant = KernelSpec

_REGISTRY: dict[tuple[type, str], list[KernelSpec]] = {}
_LOCK = threading.RLock()
_LOADED = False


def register_kernel(
    fmt_cls: type,
    op: str = "spmv",
    *,
    name: str,
    supports_permuted: bool = False,
    tags: Iterable[str] = (),
    first: bool = False,
):
    """Decorator registering a kernel for ``fmt_cls`` (and subclasses).

    ``first=True`` prepends the kernel to the candidate list — it
    becomes the best-guess default taken when tuning is off (the
    compiled scipy delegates use this).  Registering the same name
    twice for one (format, op) pair raises unless it is the identical
    function (idempotent re-registration, e.g. module reloads).
    """
    if op not in OPS:
        raise ValueError(f"op must be one of {OPS}, got {op!r}")
    if not isinstance(fmt_cls, type):
        raise TypeError(
            f"register_kernel expects a format class, got {type(fmt_cls).__name__}"
        )

    def decorate(fn: Callable[..., None]) -> Callable[..., None]:
        spec = KernelSpec(
            name=name,
            run=fn,
            supports_permuted=supports_permuted,
            tags=tuple(tags),
        )
        with _LOCK:
            lst = _REGISTRY.setdefault((fmt_cls, op), [])
            for existing in lst:
                if existing.name == name:
                    if existing.run is fn:
                        return fn  # idempotent
                    raise ValueError(
                        f"kernel {name!r} already registered for "
                        f"{fmt_cls.__name__}/{op} with a different function"
                    )
            if first:
                lst.insert(0, spec)
            else:
                lst.append(spec)
        return fn

    return decorate


# ---------------------------------------------------------------------------
# generic fallback (spmv only): wraps the format's own vectorised method
# ---------------------------------------------------------------------------

def _generic_spmv(m, ws, x, y, permuted=False):
    if permuted:
        y[:] = m.spmv_permuted(x)
    else:
        m.spmv(x, out=y)


GENERIC_SPMV = KernelSpec("generic", _generic_spmv, tags=("fallback",))


def _ensure_loaded() -> None:
    """Import the kernel modules once so their decorators have run."""
    global _LOADED
    if _LOADED:
        return
    with _LOCK:
        if _LOADED:
            return
        from repro.ops import spmm_kernels, spmv_kernels  # noqa: F401

        # optional compiled tier (cnative / numba); the module imports
        # cleanly and registers nothing when no backend is available
        from repro.kernels import compiled  # noqa: F401

        _LOADED = True


def _resolve(cls: type, op: str) -> list[KernelSpec] | None:
    for c in cls.__mro__:
        lst = _REGISTRY.get((c, op))
        if lst:
            return lst
    return None


def kernels_for(matrix, op: str = "spmv") -> list[KernelSpec]:
    """Candidate kernels for a matrix (or format class), best-guess first.

    For ``op="spmv"`` an unknown format gets the ``generic`` fallback;
    for ``op="spmm"`` the list may be empty (callers then degrade to a
    per-column loop over spmv).
    """
    if op not in OPS:
        raise ValueError(f"op must be one of {OPS}, got {op!r}")
    _ensure_loaded()
    cls = matrix if isinstance(matrix, type) else type(matrix)
    lst = _resolve(cls, op)
    if lst is not None:
        return list(lst)
    return [GENERIC_SPMV] if op == "spmv" else []


def kernel_names_for(matrix, op: str = "spmv") -> list[str]:
    return [k.name for k in kernels_for(matrix, op)]


def get_kernel(matrix, name: str, op: str = "spmv") -> KernelSpec:
    """Look up one kernel by name (raises ``KeyError`` when unknown)."""
    for k in kernels_for(matrix, op):
        if k.name == name:
            return k
    cls = matrix if isinstance(matrix, type) else type(matrix)
    raise KeyError(
        f"no variant {name!r} for {cls.__name__}; "
        f"candidates: {kernel_names_for(matrix, op)}"
    )


def registry_rows() -> list[dict]:
    """Flat, deterministic snapshot of the registry for introspection.

    One dict per registered kernel:
    ``{"format", "op", "variant", "supports_permuted", "tags", "rank"}``
    where ``rank`` is the kernel's position in its candidate list
    (rank 0 is the untuned default).
    """
    _ensure_loaded()

    def _fmt_name(cls: type) -> str:
        # abstract bases (JaggedDiagonalsBase.name == "abstract") read
        # better under their class name
        n = getattr(cls, "name", cls.__name__)
        return cls.__name__ if n == "abstract" else n

    rows = []
    with _LOCK:
        items = sorted(
            _REGISTRY.items(),
            key=lambda kv: (_fmt_name(kv[0][0]), kv[0][1]),
        )
        for (cls, op), specs in items:
            fmt = _fmt_name(cls)
            for rank, s in enumerate(specs):
                rows.append(
                    {
                        "format": fmt,
                        "op": op,
                        "variant": s.name,
                        "supports_permuted": s.supports_permuted,
                        "tags": list(s.tags),
                        "rank": rank,
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# canonical spellings of the historical engine.variants API
# ---------------------------------------------------------------------------

def variants_for(matrix) -> list[KernelSpec]:
    """Candidate spmv kernels for a matrix, best-guess first."""
    return kernels_for(matrix, "spmv")


def variant_names_for(matrix) -> list[str]:
    return kernel_names_for(matrix, "spmv")


def get_variant(matrix, name: str) -> KernelSpec:
    """Look up one spmv kernel by name (``KeyError`` when unknown)."""
    return get_kernel(matrix, name, "spmv")
