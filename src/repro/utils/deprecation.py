"""Warn-once deprecation helpers for the legacy import shims.

The ISSUE-4 refactor moved the kernel tables into :mod:`repro.ops`;
the historical entry points remain importable but emit one
:class:`DeprecationWarning` per process for each distinct call site
key, so long-running services are not flooded while test suites still
see the warning.
"""

from __future__ import annotations

import functools
import threading
import warnings
from typing import Callable

__all__ = ["warn_once", "deprecated_alias", "reset_warned"]

_WARNED: set[str] = set()
_LOCK = threading.Lock()


def warn_once(message: str, *, key: str | None = None, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` once per process for ``key``."""
    k = key if key is not None else message
    with _LOCK:
        if k in _WARNED:
            return
        _WARNED.add(k)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_warned() -> None:
    """Forget which warnings fired (test helper)."""
    with _LOCK:
        _WARNED.clear()


def deprecated_alias(
    fn: Callable, *, old: str, new: str
) -> Callable:
    """Wrap ``fn`` so calls warn (once) that ``old`` moved to ``new``."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        warn_once(
            f"{old} is deprecated; use {new} instead",
            key=old,
        )
        return fn(*args, **kwargs)

    wrapper.__wrapped_target__ = fn  # introspection hook for tests
    return wrapper
