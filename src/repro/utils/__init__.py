"""Shared utilities: validation and timing helpers."""

from repro.utils.timing import Stopwatch, Timer, flops_per_spmv, gflops
from repro.utils.validation import (
    as_1d_array,
    check_dense_vector,
    check_dtype,
    check_index_array,
    check_nonnegative_int,
    check_positive_int,
    check_shape,
)

__all__ = [
    "Stopwatch",
    "Timer",
    "flops_per_spmv",
    "gflops",
    "as_1d_array",
    "check_dense_vector",
    "check_dtype",
    "check_index_array",
    "check_nonnegative_int",
    "check_positive_int",
    "check_shape",
]
