"""Timing and floating-point-rate accounting helpers.

The paper reports spMVM performance in GF/s with ``2 * Nnz`` flops per
multiply (one multiplication plus one addition per stored non-zero).
These helpers keep that accounting in one place for the wall-clock
benchmarks and the simulator alike.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["flops_per_spmv", "gflops", "Timer", "Stopwatch"]


def flops_per_spmv(nnz: int) -> int:
    """Floating point operations of one spMVM: one FMA (2 flops) per non-zero."""
    if nnz < 0:
        raise ValueError(f"nnz must be >= 0, got {nnz}")
    return 2 * nnz


def gflops(nnz: int, seconds: float) -> float:
    """Performance in GF/s of one spMVM over ``nnz`` non-zeros in ``seconds``."""
    if seconds <= 0.0:
        raise ValueError(f"seconds must be > 0, got {seconds}")
    return flops_per_spmv(nnz) / seconds * 1e-9


class Timer:
    """Context-manager wall-clock timer.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None


@dataclass
class Stopwatch:
    """Accumulating stopwatch for repeated measurement sections."""

    total: float = 0.0
    laps: list[float] = field(default_factory=list)
    _start: float | None = None

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("Stopwatch already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Stopwatch not running")
        lap = time.perf_counter() - self._start
        self._start = None
        self.laps.append(lap)
        self.total += lap
        return lap

    @property
    def mean(self) -> float:
        if not self.laps:
            raise RuntimeError("no laps recorded")
        return self.total / len(self.laps)

    @property
    def best(self) -> float:
        if not self.laps:
            raise RuntimeError("no laps recorded")
        return min(self.laps)
