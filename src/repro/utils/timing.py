"""Timing and floating-point-rate accounting helpers.

The paper reports spMVM performance in GF/s with ``2 * Nnz`` flops per
multiply (one multiplication plus one addition per stored non-zero).
These helpers keep that accounting in one place for the wall-clock
benchmarks and the simulator alike.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["flops_per_spmv", "gflops", "Timer", "Stopwatch"]


def flops_per_spmv(nnz: int) -> int:
    """Floating point operations of one spMVM: one FMA (2 flops) per non-zero."""
    if nnz < 0:
        raise ValueError(f"nnz must be >= 0, got {nnz}")
    return 2 * nnz


def gflops(nnz: int, seconds: float) -> float:
    """Performance in GF/s of one spMVM over ``nnz`` non-zeros in ``seconds``."""
    if seconds <= 0.0:
        raise ValueError(f"seconds must be > 0, got {seconds}")
    return flops_per_spmv(nnz) / seconds * 1e-9


class Timer:
    """Context-manager wall-clock timer.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None


@dataclass
class Stopwatch:
    """Accumulating stopwatch for repeated measurement sections.

    Besides explicit ``start()``/``stop()``, laps can be taken with the
    :meth:`lap` context manager or by timing a callable via
    :meth:`record` — so benchmarks stop hand-rolling timing loops::

        sw = Stopwatch(histogram="spmv_seconds")
        for _ in range(reps):
            y = sw.record(matrix.spmv, x)
        print(sw.best, sw.mean)

    When ``histogram`` is set and :mod:`repro.obs` instrumentation is
    enabled, every lap is additionally published into that obs
    histogram (with the optional ``labels``); while obs is disabled
    this costs one flag check per lap.
    """

    total: float = 0.0
    laps: list[float] = field(default_factory=list)
    _start: float | None = None
    #: optional obs histogram name laps are published to
    histogram: str | None = None
    #: labels attached to published laps
    labels: dict[str, str] = field(default_factory=dict)

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("Stopwatch already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Stopwatch not running")
        lap = time.perf_counter() - self._start
        self._start = None
        self.laps.append(lap)
        self.total += lap
        if self.histogram is not None:
            from repro import obs

            if obs.enabled():
                obs.observe(self.histogram, lap, **self.labels)
        return lap

    @contextmanager
    def lap(self):
        """``with sw.lap(): ...`` — one timed lap around the block."""
        self.start()
        try:
            yield self
        finally:
            self.stop()

    def record(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Call ``fn(*args, **kwargs)`` inside one lap; return its result."""
        with self.lap():
            return fn(*args, **kwargs)

    @property
    def mean(self) -> float:
        if not self.laps:
            raise RuntimeError("no laps recorded")
        return self.total / len(self.laps)

    @property
    def best(self) -> float:
        if not self.laps:
            raise RuntimeError("no laps recorded")
        return min(self.laps)
