"""Argument and array validation helpers shared across the package.

These helpers centralise the defensive checks that every public
constructor performs, so error messages are uniform and the hot paths
(kernels) can assume validated inputs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "check_dense_vector",
    "check_dtype",
    "check_index_array",
    "check_nonnegative_int",
    "check_positive_int",
    "check_shape",
    "as_1d_array",
]

#: dtypes accepted for matrix values (paper uses SP and DP floats).
SUPPORTED_VALUE_DTYPES = (np.float32, np.float64)


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``.

    Raises
    ------
    TypeError
        If ``value`` is not an integral type.
    ValueError
        If ``value`` is not strictly positive.
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return int(value)


def check_nonnegative_int(value: int, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_dtype(dtype: np.dtype | type, name: str = "dtype") -> np.dtype:
    """Validate a floating value dtype (float32/float64) and return it."""
    dt = np.dtype(dtype)
    if dt not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(
            f"{name} must be float32 or float64 (paper: SP/DP), got {dt}"
        )
    return dt


def as_1d_array(
    data: Iterable, dtype: np.dtype | type | None = None, name: str = "array"
) -> np.ndarray:
    """Convert ``data`` to a contiguous 1-D ndarray, validating rank."""
    arr = np.ascontiguousarray(data, dtype=dtype)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr


def check_index_array(
    indices: np.ndarray, upper: int, name: str = "indices"
) -> np.ndarray:
    """Validate an integer index array with entries in ``[0, upper)``.

    Returns the array converted to ``int64`` (the package-wide index type;
    int64 avoids overflow for the large synthetic matrices).
    """
    arr = np.ascontiguousarray(indices)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"{name} must be integer-typed, got {arr.dtype}")
    arr = arr.astype(np.int64, copy=False)
    if arr.size:
        lo = int(arr.min())
        hi = int(arr.max())
        if lo < 0 or hi >= upper:
            raise ValueError(
                f"{name} entries must lie in [0, {upper}), got range [{lo}, {hi}]"
            )
    return arr


def check_shape(
    shape: Sequence[int], *, allow_empty: bool = False
) -> tuple[int, int]:
    """Validate a 2-tuple matrix shape of positive integers.

    ``allow_empty=True`` additionally admits the fully degenerate
    ``(0, 0)`` matrix (a pathological input the format kernels must
    handle gracefully); half-empty shapes like ``(0, 2)`` stay
    rejected, and the default keeps the strict contract.
    """
    if len(shape) != 2:
        raise ValueError(f"shape must be (nrows, ncols), got {tuple(shape)}")
    if allow_empty and shape[0] == 0 and shape[1] == 0:
        return (0, 0)
    nrows = check_positive_int(shape[0], "nrows")
    ncols = check_positive_int(shape[1], "ncols")
    return (nrows, ncols)


def check_dense_vector(
    x: np.ndarray, length: int, dtype: np.dtype | None = None, name: str = "x"
) -> np.ndarray:
    """Validate a dense RHS/LHS vector of the given length.

    The returned array is contiguous; it is converted to ``dtype`` when one
    is given (matching the matrix value dtype keeps kernels allocation-free).
    """
    arr = np.ascontiguousarray(x, dtype=dtype)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.shape[0] != length:
        raise ValueError(f"{name} must have length {length}, got {arr.shape[0]}")
    return arr
