"""Optional compiled kernel tier, registered behind the central registry.

The paper's Sect. III point is that an spMVM kernel should run at the
memory-bandwidth limit; every pure-NumPy kernel falls short of that
because it must materialise the gathered product (``x[col] * val``)
through main memory at least once.  This module adds *fused*
single-pass kernels for the CSR, ELLPACK/-R, JDS/pJDS, SELL-C-sigma,
CMRS and ARG-CSR hot loops (spmv and batched spmm) from two optional
backends, registered through :func:`repro.ops.registry.register_kernel`
as ordinary variants — so :class:`~repro.engine.bound.BoundMatrix`,
every backend (parallel / distributed / serve) and all five solvers
pick them up with zero call-site changes, and the autotuner simply
ranks them against the NumPy kernels per matrix:

``cnative``
    C kernels compiled once per machine with the system C compiler
    (``cc``/``gcc``/``clang``), cached as a shared library under the
    repro cache dir and loaded through :mod:`ctypes`.  OpenMP
    (``-fopenmp``) is used when the compiler supports it; the row /
    chunk partitioning keeps per-row accumulation order identical to
    the serial sweep, so results are reproducible at any thread count.
``numba``
    ``@njit(parallel=True)`` kernels (guarded import — the module
    imports cleanly and registers nothing when :mod:`numba` is
    absent).  First call per (kernel, signature) JIT-compiles; the
    autotuner's warm-up call absorbs that, so timed reps never include
    compilation (see docs/performance.md, "JIT warm-up semantics").

Both backends preserve the NumPy kernels' per-row accumulation order
(ascending entry order, zero-initialised accumulator), so at float64
they agree *bitwise* with their order-matched NumPy counterparts
(``csr_reduceat``, ``ell_sweep``, ``jds_sweep``, ``sell_chunks``,
``cmrs_bincount``, ``argcsr_sweep``) — ``tests/test_ops.py`` pins
that.

Environment knobs:

``REPRO_COMPILED_DISABLE``
    comma-separated backend names (``numba``, ``cnative``, or ``all``)
    to suppress; used by the guarded-import tests and as an escape
    hatch on machines with a broken toolchain.
``REPRO_CC``
    C compiler to use for the ``cnative`` build (default: first of
    ``cc``/``gcc``/``clang`` on PATH).
``REPRO_CACHE_DIR``
    cache root for the compiled shared library (default
    ``~/.cache/repro-pjds``), shared with the matrix/tuner caches.

:func:`kernel_tiers` reports the loaded tier set (with versions); the
autotuner folds it into the matrix fingerprint so a tuning decision
cached without a backend never pins a slow variant after the backend
appears (see :func:`repro.engine.tuner.fingerprint`).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.jds import JaggedDiagonalsBase
from repro.core.sell import SELLMatrix
from repro.formats.argcsr import ARGCSRMatrix
from repro.formats.cmrs import CMRSMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.ellpack import ELLPACKMatrix
from repro.ops.registry import register_kernel
from repro.ops.spmv_kernels import _HAVE_CSR_MATVEC, stored_csr_triplet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.workspace import Workspace

__all__ = [
    "kernel_tiers",
    "backend_status",
    "compiled_variant_names",
    "CNATIVE_TAG",
    "NUMBA_TAG",
]

#: registry tag shared by every kernel of this module
COMPILED_TAG = "compiled"
#: backend-specific registry tags
CNATIVE_TAG = "cnative"
NUMBA_TAG = "numba"


def _disabled() -> set[str]:
    raw = os.environ.get("REPRO_COMPILED_DISABLE", "")
    names = {t.strip().lower() for t in raw.split(",") if t.strip()}
    if "all" in names:
        names |= {CNATIVE_TAG, NUMBA_TAG}
    return names


# ---------------------------------------------------------------------------
# cnative backend: one C translation unit, compiled once per machine
# ---------------------------------------------------------------------------

# Kernel bodies are generated for float64/float32 values and (for the
# stored-CSR-view spmm delegates) int64/int32 indices.  Accumulation is
# a zero-initialised scalar walked in ascending entry order — the same
# order as the NumPy sweep kernels, which is what makes the float64
# parity bitwise.  OpenMP partitions rows (CSR/ELL/JDS), chunks (SELL)
# or row blocks; partitioning never changes any per-row order.
_C_PRELUDE = r"""
#include <stddef.h>
#ifdef _OPENMP
#include <omp.h>
#else
static int omp_get_num_threads(void) { return 1; }
static int omp_get_thread_num(void) { return 0; }
#endif
typedef long long i64;
typedef int i32;
"""

_C_CSR_TEMPLATE = r"""
void csr_spmv_{I}_{F}(i64 nrows, const {IT} *indptr, const {IT} *col,
                      const {FT} *val, const {FT} *x, {FT} *y) {{
    i64 i;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (i = 0; i < nrows; i++) {{
        {FT} t = 0;
        i64 e;
        for (e = (i64)indptr[i]; e < (i64)indptr[i + 1]; e++)
            t += val[e] * x[col[e]];
        y[i] = t;
    }}
}}

void csr_spmm_{I}_{F}(i64 nrows, i64 k, const {IT} *indptr, const {IT} *col,
                      const {FT} *val, const {FT} *X, {FT} *Y) {{
    i64 i;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (i = 0; i < nrows; i++) {{
        {FT} *yi = Y + i * k;
        i64 e, c;
        for (c = 0; c < k; c++)
            yi[c] = 0;
        for (e = (i64)indptr[i]; e < (i64)indptr[i + 1]; e++) {{
            const {FT} v = val[e];
            const {FT} *xr = X + (i64)col[e] * k;
            for (c = 0; c < k; c++)
                yi[c] += v * xr[c];
        }}
    }}
}}
"""

_C_FMT_TEMPLATE = r"""
/* ELLPACK rectangle, (width, padded_rows) column-major slabs; the
   jagged-column sweep keeps val/col reads fully sequential and the
   row-block accumulator cache-resident. */
void ell_spmv_{F}(i64 nrows, i64 prows, i64 width, const i64 *col,
                  const {FT} *val, const {FT} *x, {FT} *y) {{
#ifdef _OPENMP
#pragma omp parallel
#endif
    {{
        const i64 nt = omp_get_num_threads();
        const i64 tid = omp_get_thread_num();
        const i64 lo = nrows * tid / nt;
        const i64 hi = nrows * (tid + 1) / nt;
        i64 i, j;
        for (i = lo; i < hi; i++)
            y[i] = 0;
        for (j = 0; j < width; j++) {{
            const {FT} *vj = val + j * prows;
            const i64 *cj = col + j * prows;
            for (i = lo; i < hi; i++)
                y[i] += vj[i] * x[cj[i]];
        }}
    }}
}}

/* JDS/pJDS jagged diagonals: column lengths are non-increasing, so a
   row block can stop at the first too-short column. */
void jds_spmv_{F}(i64 nrows, i64 width, const i64 *col_start,
                  const i64 *col, const {FT} *val, const {FT} *x, {FT} *y) {{
#ifdef _OPENMP
#pragma omp parallel
#endif
    {{
        const i64 nt = omp_get_num_threads();
        const i64 tid = omp_get_thread_num();
        const i64 lo = nrows * tid / nt;
        const i64 hi = nrows * (tid + 1) / nt;
        i64 r, j;
        for (r = lo; r < hi; r++)
            y[r] = 0;
        for (j = 0; j < width; j++) {{
            const i64 s = col_start[j];
            const i64 len = col_start[j + 1] - s;
            const i64 h = len < hi ? len : hi;
            if (len <= lo)
                break;
            for (r = lo; r < h; r++)
                y[r] += val[s + r] * x[col[s + r]];
        }}
    }}
}}

/* CMRS strips: the entry stream is row-major CRS order; strip s owns
   rows [s*hs, (s+1)*hs) exclusively, so strips parallelise safely
   while each row accumulates ascending through its entries (bitwise
   vs cmrs_bincount at float64). */
void cmrs_spmv_{F}(i64 nrows, i64 nstrips, i64 hs, const i64 *sptr,
                   const i64 *ris, const i64 *col, const {FT} *val,
                   const {FT} *x, {FT} *y) {{
    i64 i, s;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (i = 0; i < nrows; i++)
        y[i] = 0;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (s = 0; s < nstrips; s++) {{
        i64 e = sptr[s];
        const i64 hi = sptr[s + 1];
        while (e < hi) {{
            const i64 rr = ris[e];
            {FT} t = 0;
            while (e < hi && ris[e] == rr) {{
                t += val[e] * x[col[e]];
                e++;
            }}
            y[s * hs + rr] = t;
        }}
    }}
}}

/* ARG-CSR: one row-major (n_g, width) rectangle per length group; each
   row sweeps its full padded width (padding is 0 * x[0]), the same
   column order as argcsr_sweep — bitwise at float64. */
void argcsr_spmv_{F}(i64 nrows, i64 ngroups, const i64 *gptr,
                     const i64 *gwidth, const i64 *rptr,
                     const i64 *row_ids, const i64 *col, const {FT} *val,
                     const {FT} *x, {FT} *y) {{
    i64 i, g;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (i = 0; i < nrows; i++)
        y[i] = 0;
    for (g = 0; g < ngroups; g++) {{
        const i64 L = gwidth[g];
        const i64 r0 = rptr[g];
        const i64 r1 = rptr[g + 1];
        const i64 base = gptr[g];
        i64 r;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
        for (r = r0; r < r1; r++) {{
            const {FT} *vr = val + base + (r - r0) * L;
            const i64 *cr = col + base + (r - r0) * L;
            {FT} t = 0;
            i64 j;
            for (j = 0; j < L; j++)
                t += vr[j] * x[cr[j]];
            y[row_ids[r]] = t;
        }}
    }}
}}

/* SELL-C-sigma: chunk slots are column-major (width, C) rectangles. */
void sell_spmv_{F}(i64 nchunks, i64 C, const i64 *ptr, const i64 *widths,
                   const i64 *col, const {FT} *val, const {FT} *x, {FT} *y) {{
    i64 c;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (c = 0; c < nchunks; c++) {{
        const i64 w = widths[c];
        const i64 base = ptr[c];
        {FT} *yy = y + c * C;
        i64 r, j;
        for (r = 0; r < C; r++)
            yy[r] = 0;
        for (j = 0; j < w; j++) {{
            const {FT} *vj = val + base + j * C;
            const i64 *cj = col + base + j * C;
            for (r = 0; r < C; r++)
                yy[r] += vj[r] * x[cj[r]];
        }}
    }}
}}
"""


def _c_source() -> str:
    parts = [_C_PRELUDE]
    for fsuf, ftype in (("f64", "double"), ("f32", "float")):
        for isuf, itype in (("i64", "i64"), ("i32", "i32")):
            parts.append(
                _C_CSR_TEMPLATE.format(I=isuf, IT=itype, F=fsuf, FT=ftype)
            )
        parts.append(_C_FMT_TEMPLATE.format(F=fsuf, FT=ftype))
    return "".join(parts)


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    base = Path(env) if env else Path.home() / ".cache" / "repro-pjds"
    return base / "compiled"


class _CNative:
    """The loaded cnative shared library plus its provenance tag."""

    def __init__(self, lib: ctypes.CDLL, tag: str, openmp: bool, path: Path):
        self.lib = lib
        self.tag = tag
        self.openmp = openmp
        self.path = path

    def fn(self, name: str):
        f = getattr(self.lib, name)
        f.restype = None
        return f


def _find_cc() -> str | None:
    env = os.environ.get("REPRO_CC")
    if env:
        return env if shutil.which(env) else None
    for cand in ("cc", "gcc", "clang"):
        if shutil.which(cand):
            return cand
    return None


def _build_cnative() -> _CNative | None:
    """Compile (or reuse) the shared library; ``None`` on any failure.

    The library is keyed by a digest of the source + compiler, so a
    kernel change recompiles and two repro versions never collide.
    Compilation happens at most once per machine; every later import
    is a plain ``dlopen`` of the cached ``.so``.
    """
    cc = _find_cc()
    if cc is None:
        return None
    source = _c_source()
    digest = hashlib.sha1(f"{cc}\n{source}".encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"spmv_{digest}.so"
    openmp_marker = cache / f"spmv_{digest}.omp"
    try:
        if not so_path.exists():
            cache.mkdir(parents=True, exist_ok=True)
            src_path = cache / f"spmv_{digest}.c"
            src_path.write_text(source, encoding="utf-8")
            base_cmd = [cc, "-O3", "-fPIC", "-shared", "-std=c99"]
            openmp = True
            with tempfile.NamedTemporaryFile(
                dir=cache, suffix=".so", delete=False
            ) as tmp:
                tmp_path = Path(tmp.name)
            for flags in (["-fopenmp"], []):
                proc = subprocess.run(
                    base_cmd + flags + [str(src_path), "-o", str(tmp_path)],
                    capture_output=True,
                    timeout=120,
                )
                if proc.returncode == 0:
                    openmp = bool(flags)
                    break
            else:
                tmp_path.unlink(missing_ok=True)
                return None
            # atomic publish so concurrent builders never load a torn file
            os.replace(tmp_path, so_path)
            if openmp:
                openmp_marker.touch()
        lib = ctypes.CDLL(str(so_path))
        return _CNative(
            lib, f"{cc}-{digest[:8]}", openmp_marker.exists(), so_path
        )
    except (OSError, subprocess.SubprocessError):
        return None


_CNATIVE: _CNative | None = (
    None if CNATIVE_TAG in _disabled() else _build_cnative()
)


# ---------------------------------------------------------------------------
# numba backend (guarded import: absence must be completely silent)
# ---------------------------------------------------------------------------

_NUMBA_VERSION: str | None = None
if NUMBA_TAG not in _disabled():
    try:  # pragma: no cover - exercised only where numba is installed
        import numba as _numba
        from numba import njit as _njit
        from numba import prange as _prange

        _NUMBA_VERSION = _numba.__version__
    except Exception:  # noqa: BLE001 - any import failure means "absent"
        _NUMBA_VERSION = None


# ---------------------------------------------------------------------------
# shared python-side glue
# ---------------------------------------------------------------------------

def _contig_vec(ws: Workspace, name: str, x: np.ndarray, dtype) -> np.ndarray:
    """``x`` itself when already compiled-callable, else a scratch copy."""
    if x.flags.c_contiguous and x.dtype == dtype:
        return x
    buf = ws.buf(name, x.shape[0], dtype)
    buf[:] = x
    return buf


def _out_vec(ws: Workspace, name: str, y: np.ndarray):
    """(callable target, finish) pair tolerating non-contiguous ``y``."""
    if y.flags.c_contiguous:
        return y, None
    buf = ws.buf(name, y.shape[0], y.dtype)
    return buf, buf


_F_SUFFIX = {np.dtype(np.float64): "f64", np.dtype(np.float32): "f32"}
_I_SUFFIX = {np.dtype(np.int64): "i64", np.dtype(np.int32): "i32"}


def _ptr(a: np.ndarray):
    return ctypes.c_void_p(a.ctypes.data)


def _jds_col_idx(m: JaggedDiagonalsBase, ws: Workspace, permuted: bool):
    if permuted:
        return ws.const("jds_colperm", lambda: m._permuted_col_idx())  # noqa: SLF001
    return ws.const("col_idx", lambda: m.col_idx)


# ---------------------------------------------------------------------------
# cnative kernels
# ---------------------------------------------------------------------------

if _CNATIVE is not None:
    _i64 = ctypes.c_longlong

    def _cc_csr_call(op, nrows, indptr, col, val, x, y, k=None):
        fs = _F_SUFFIX[val.dtype]
        isuf = _I_SUFFIX[indptr.dtype]
        fn = _CNATIVE.fn(f"csr_{op}_{isuf}_{fs}")
        if op == "spmv":
            fn(_i64(nrows), _ptr(indptr), _ptr(col), _ptr(val), _ptr(x), _ptr(y))
        else:
            fn(
                _i64(nrows), _i64(k), _ptr(indptr), _ptr(col), _ptr(val),
                _ptr(x), _ptr(y),
            )

    def _cc_csr_spmv(m: CSRMatrix, ws, x, y, permuted=False):
        if m.nrows == 0:
            return
        xb = _contig_vec(ws, "cc_x", x, m.dtype)
        yb, fin = _out_vec(ws, "cc_y", y)
        _cc_csr_call("spmv", m.nrows, m.indptr, m.indices, m.data, xb, yb)
        if fin is not None:
            y[:] = fin

    def _cc_ell_spmv(m: ELLPACKMatrix, ws, x, y, permuted=False):
        if m.nrows == 0:
            return
        if m.width == 0:
            y.fill(0.0)
            return
        val = ws.const("val", lambda: m.val)
        col = ws.const("col", lambda: m.col)
        xb = _contig_vec(ws, "cc_x", x, m.dtype)
        yb, fin = _out_vec(ws, "cc_y", y)
        fn = _CNATIVE.fn(f"ell_spmv_{_F_SUFFIX[m.dtype]}")
        fn(
            _i64(m.nrows), _i64(m.padded_rows), _i64(m.width),
            _ptr(col), _ptr(val), _ptr(xb), _ptr(yb),
        )
        if fin is not None:
            y[:] = fin

    def _cc_jds_spmv(m: JaggedDiagonalsBase, ws, x, y, permuted=False):
        if m.nrows == 0:
            return
        if m.total_slots == 0:
            y.fill(0.0)
            return
        col_idx = _jds_col_idx(m, ws, permuted)
        val = ws.const("val", lambda: m.val)
        cs = ws.const("col_start", lambda: m.col_start)
        xb = _contig_vec(ws, "cc_x", x, m.dtype)
        yb, fin = _out_vec(ws, "cc_y", y)
        fn = _CNATIVE.fn(f"jds_spmv_{_F_SUFFIX[m.dtype]}")
        fn(
            _i64(m.nrows), _i64(m.width), _ptr(cs),
            _ptr(col_idx), _ptr(val), _ptr(xb), _ptr(yb),
        )
        if fin is not None:
            y[:] = fin

    def _cc_sell_spmv(m: SELLMatrix, ws, x, y, permuted=False):
        if m.nrows == 0:
            return
        if m.total_slots == 0:
            y.fill(0.0)
            return
        ptr = ws.const("chunk_ptr", lambda: m.chunk_ptr)
        widths = ws.const("chunk_widths", lambda: m.chunk_widths)
        col = ws.const("col_idx", lambda: m.col_idx)
        val = ws.const("val", lambda: m.val)
        xb = _contig_vec(ws, "cc_x", x, m.dtype)
        acc = ws.buf("cc_sell_acc", m.padded_rows, m.dtype)
        fn = _CNATIVE.fn(f"sell_spmv_{_F_SUFFIX[m.dtype]}")
        fn(
            _i64(m.nchunks), _i64(m.chunk_rows), _ptr(ptr), _ptr(widths),
            _ptr(col), _ptr(val), _ptr(xb), _ptr(acc),
        )
        y[:] = acc[: m.nrows]

    def _cc_cmrs_spmv(m: CMRSMatrix, ws, x, y, permuted=False):
        if m.nrows == 0:
            return
        if m.nnz == 0:
            y.fill(0.0)
            return
        sptr = ws.const("strip_ptr", lambda: m.strip_ptr)
        ris = ws.const("row_in_strip", lambda: m.row_in_strip)
        col = ws.const("col_idx", lambda: m.col_idx)
        val = ws.const("val", lambda: m.val)
        xb = _contig_vec(ws, "cc_x", x, m.dtype)
        yb, fin = _out_vec(ws, "cc_y", y)
        fn = _CNATIVE.fn(f"cmrs_spmv_{_F_SUFFIX[m.dtype]}")
        fn(
            _i64(m.nrows), _i64(m.nstrips), _i64(m.strip_height),
            _ptr(sptr), _ptr(ris), _ptr(col), _ptr(val), _ptr(xb), _ptr(yb),
        )
        if fin is not None:
            y[:] = fin

    def _cc_argcsr_spmv(m: ARGCSRMatrix, ws, x, y, permuted=False):
        if m.nrows == 0:
            return
        if m.total_slots == 0:
            y.fill(0.0)
            return
        gptr = ws.const("group_ptr", lambda: m.group_ptr)
        gw = ws.const("group_width", lambda: m.group_width)
        rptr = ws.const("group_rows_ptr", lambda: m.group_rows_ptr)
        rids = ws.const("argcsr_rows", lambda: m.row_ids)
        col = ws.const("col_idx", lambda: m.col_idx)
        val = ws.const("val", lambda: m.val)
        xb = _contig_vec(ws, "cc_x", x, m.dtype)
        yb, fin = _out_vec(ws, "cc_y", y)
        fn = _CNATIVE.fn(f"argcsr_spmv_{_F_SUFFIX[m.dtype]}")
        fn(
            _i64(m.nrows), _i64(m.ngroups), _ptr(gptr), _ptr(gw),
            _ptr(rptr), _ptr(rids), _ptr(col), _ptr(val), _ptr(xb), _ptr(yb),
        )
        if fin is not None:
            y[:] = fin

    # -- batched spmm over the (cached) stored-order CSR views ----------

    def _cc_spmm_stored(m, X, out, ws, permuted=False):
        """Fused k-wide sweep; returns the stored-order block."""
        indptr, indices, data = stored_csr_triplet(m, permuted)
        nrows = indptr.shape[0] - 1
        k = X.shape[1]
        _cc_csr_call("spmm", nrows, indptr, indices, data, X, out, k=k)
        return out

    def _cc_csr_spmm(m: CSRMatrix, X, out, ws):
        if m.nnz == 0 or not (X.flags.c_contiguous and out.flags.c_contiguous):
            return None
        _cc_csr_call(
            "spmm", m.nrows, m.indptr, m.indices, m.data, X, out,
            k=X.shape[1],
        )
        return out

    def _cc_ell_spmm(m: ELLPACKMatrix, X, out, ws):
        if m.nnz == 0 or not (X.flags.c_contiguous and out.flags.c_contiguous):
            return None
        return _cc_spmm_stored(m, X, out, ws)

    def _cc_jds_spmm(m: JaggedDiagonalsBase, X, out, ws):
        if m.total_slots == 0 or not X.flags.c_contiguous:
            return None
        k = X.shape[1]
        acc = ws.buf("cc_spmm_acc", (m.nrows, k), m.dtype)
        _cc_spmm_stored(m, X, acc, ws)
        np.take(acc, m.permutation.inverse, axis=0, out=out, mode="clip")
        return out

    def _cc_sell_spmm(m: SELLMatrix, X, out, ws):
        if m.total_slots == 0 or not X.flags.c_contiguous:
            return None
        k = X.shape[1]
        acc = ws.buf("cc_spmm_acc", (m.padded_rows, k), m.dtype)
        _cc_spmm_stored(m, X, acc, ws)
        out[m.permutation.perm] = acc[: m.nrows]
        return out

    def _cc_plaincsr_spmm(m, X, out, ws):
        """CMRS / ARG-CSR: their stored-CSR view is already original
        row order and unpadded, so the fused sweep writes ``out``
        directly with no permutation or trim step."""
        if m.nnz == 0 or not (X.flags.c_contiguous and out.flags.c_contiguous):
            return None
        return _cc_spmm_stored(m, X, out, ws)


# ---------------------------------------------------------------------------
# numba kernels
# ---------------------------------------------------------------------------

if _NUMBA_VERSION is not None:  # pragma: no cover - needs numba installed

    @_njit(parallel=True, cache=False)
    def _nb_csr_spmv_impl(nrows, indptr, col, val, x, y):
        for i in _prange(nrows):
            t = 0.0
            for e in range(indptr[i], indptr[i + 1]):
                t += val[e] * x[col[e]]
            y[i] = t

    @_njit(parallel=True, cache=False)
    def _nb_csr_spmm_impl(nrows, indptr, col, val, X, Y):
        k = X.shape[1]
        for i in _prange(nrows):
            for c in range(k):
                Y[i, c] = 0.0
            for e in range(indptr[i], indptr[i + 1]):
                v = val[e]
                ci = col[e]
                for c in range(k):
                    Y[i, c] += v * X[ci, c]

    @_njit(parallel=True, cache=False)
    def _nb_ell_spmv_impl(nrows, width, col, val, x, y):
        for i in _prange(nrows):
            t = 0.0
            for j in range(width):
                t += val[j, i] * x[col[j, i]]
            y[i] = t

    @_njit(parallel=True, cache=False)
    def _nb_jds_spmv_impl(nrows, width, col_start, col, val, x, y):
        for r in _prange(nrows):
            t = 0.0
            for j in range(width):
                s = col_start[j]
                if col_start[j + 1] - s <= r:
                    break
                t += val[s + r] * x[col[s + r]]
            y[r] = t

    @_njit(parallel=True, cache=False)
    def _nb_sell_spmv_impl(nchunks, C, ptr, widths, col, val, x, y):
        for c in _prange(nchunks):
            w = widths[c]
            base = ptr[c]
            for r in range(C):
                t = 0.0
                for j in range(w):
                    s = base + j * C + r
                    t += val[s] * x[col[s]]
                y[c * C + r] = t

    @_njit(parallel=True, cache=False)
    def _nb_cmrs_spmv_impl(nrows, nstrips, hs, sptr, ris, col, val, x, y):
        for i in _prange(nrows):
            y[i] = 0.0
        for s in _prange(nstrips):
            e = sptr[s]
            hi = sptr[s + 1]
            while e < hi:
                rr = ris[e]
                t = 0.0
                while e < hi and ris[e] == rr:
                    t += val[e] * x[col[e]]
                    e += 1
                y[s * hs + rr] = t

    @_njit(parallel=True, cache=False)
    def _nb_argcsr_spmv_impl(
        nrows, ngroups, gptr, gwidth, rptr, row_ids, col, val, x, y
    ):
        for i in _prange(nrows):
            y[i] = 0.0
        for g in range(ngroups):
            L = gwidth[g]
            r0 = rptr[g]
            base = gptr[g]
            for r in _prange(rptr[g + 1] - r0):
                b = base + r * L
                t = 0.0
                for j in range(L):
                    t += val[b + j] * x[col[b + j]]
                y[row_ids[r0 + r]] = t

    def _nb_csr_spmv(m: CSRMatrix, ws, x, y, permuted=False):
        if m.nrows == 0:
            return
        xb = _contig_vec(ws, "nb_x", x, m.dtype)
        yb, fin = _out_vec(ws, "nb_y", y)
        _nb_csr_spmv_impl(m.nrows, m.indptr, m.indices, m.data, xb, yb)
        if fin is not None:
            y[:] = fin

    def _nb_ell_spmv(m: ELLPACKMatrix, ws, x, y, permuted=False):
        if m.nrows == 0:
            return
        if m.width == 0:
            y.fill(0.0)
            return
        val = ws.const("val", lambda: m.val)
        col = ws.const("col", lambda: m.col)
        xb = _contig_vec(ws, "nb_x", x, m.dtype)
        yb, fin = _out_vec(ws, "nb_y", y)
        _nb_ell_spmv_impl(m.nrows, m.width, col, val, xb, yb)
        if fin is not None:
            y[:] = fin

    def _nb_jds_spmv(m: JaggedDiagonalsBase, ws, x, y, permuted=False):
        if m.nrows == 0:
            return
        if m.total_slots == 0:
            y.fill(0.0)
            return
        col_idx = _jds_col_idx(m, ws, permuted)
        val = ws.const("val", lambda: m.val)
        cs = ws.const("col_start", lambda: m.col_start)
        xb = _contig_vec(ws, "nb_x", x, m.dtype)
        yb, fin = _out_vec(ws, "nb_y", y)
        _nb_jds_spmv_impl(m.nrows, m.width, cs, col_idx, val, xb, yb)
        if fin is not None:
            y[:] = fin

    def _nb_sell_spmv(m: SELLMatrix, ws, x, y, permuted=False):
        if m.nrows == 0:
            return
        if m.total_slots == 0:
            y.fill(0.0)
            return
        ptr = ws.const("chunk_ptr", lambda: m.chunk_ptr)
        widths = ws.const("chunk_widths", lambda: m.chunk_widths)
        col = ws.const("col_idx", lambda: m.col_idx)
        val = ws.const("val", lambda: m.val)
        xb = _contig_vec(ws, "nb_x", x, m.dtype)
        acc = ws.buf("nb_sell_acc", m.padded_rows, m.dtype)
        _nb_sell_spmv_impl(
            m.nchunks, m.chunk_rows, ptr, widths, col, val, xb, acc
        )
        y[:] = acc[: m.nrows]

    def _nb_cmrs_spmv(m: CMRSMatrix, ws, x, y, permuted=False):
        if m.nrows == 0:
            return
        if m.nnz == 0:
            y.fill(0.0)
            return
        sptr = ws.const("strip_ptr", lambda: m.strip_ptr)
        ris = ws.const("row_in_strip", lambda: m.row_in_strip)
        col = ws.const("col_idx", lambda: m.col_idx)
        val = ws.const("val", lambda: m.val)
        xb = _contig_vec(ws, "nb_x", x, m.dtype)
        yb, fin = _out_vec(ws, "nb_y", y)
        _nb_cmrs_spmv_impl(
            m.nrows, m.nstrips, m.strip_height, sptr, ris, col, val, xb, yb
        )
        if fin is not None:
            y[:] = fin

    def _nb_argcsr_spmv(m: ARGCSRMatrix, ws, x, y, permuted=False):
        if m.nrows == 0:
            return
        if m.total_slots == 0:
            y.fill(0.0)
            return
        gptr = ws.const("group_ptr", lambda: m.group_ptr)
        gw = ws.const("group_width", lambda: m.group_width)
        rptr = ws.const("group_rows_ptr", lambda: m.group_rows_ptr)
        rids = ws.const("argcsr_rows", lambda: m.row_ids)
        col = ws.const("col_idx", lambda: m.col_idx)
        val = ws.const("val", lambda: m.val)
        xb = _contig_vec(ws, "nb_x", x, m.dtype)
        yb, fin = _out_vec(ws, "nb_y", y)
        _nb_argcsr_spmv_impl(
            m.nrows, m.ngroups, gptr, gw, rptr, rids, col, val, xb, yb
        )
        if fin is not None:
            y[:] = fin

    def _nb_csr_spmm(m: CSRMatrix, X, out, ws):
        if m.nnz == 0 or not (X.flags.c_contiguous and out.flags.c_contiguous):
            return None
        _nb_csr_spmm_impl(m.nrows, m.indptr, m.indices, m.data, X, out)
        return out


# ---------------------------------------------------------------------------
# registration: ordinary variants, ranked by the autotuner per matrix
# ---------------------------------------------------------------------------

# Fall back to the vectorised kernel path when the compiled spmm
# preconditions (contiguity) do not hold: the wrappers above return
# None in that case and these shims delegate.

def _spmm_with_fallback(fast, slow_name):
    def run(m, X, out, ws):
        got = fast(m, X, out, ws)
        if got is not None:
            return got
        from repro.ops.registry import get_kernel

        return get_kernel(m, slow_name, "spmm").run(m, X, out, ws)

    return run


def _register_all() -> None:
    if _CNATIVE is not None:
        tags = (COMPILED_TAG, CNATIVE_TAG)
        register_kernel(CSRMatrix, "spmv", name="csr_cc", tags=tags)(
            _cc_csr_spmv
        )
        register_kernel(ELLPACKMatrix, "spmv", name="ell_cc", tags=tags)(
            _cc_ell_spmv
        )
        register_kernel(
            JaggedDiagonalsBase, "spmv", name="jds_cc",
            supports_permuted=True, tags=tags,
        )(_cc_jds_spmv)
        register_kernel(SELLMatrix, "spmv", name="sell_cc", tags=tags)(
            _cc_sell_spmv
        )
        register_kernel(CSRMatrix, "spmm", name="spmm_csr_cc", tags=tags)(
            _spmm_with_fallback(_cc_csr_spmm, "spmm_csr")
        )
        register_kernel(ELLPACKMatrix, "spmm", name="spmm_ell_cc", tags=tags)(
            _spmm_with_fallback(_cc_ell_spmm, "spmm_ell")
        )
        register_kernel(
            JaggedDiagonalsBase, "spmm", name="spmm_jds_cc", tags=tags
        )(_spmm_with_fallback(_cc_jds_spmm, "spmm_jds"))
        register_kernel(SELLMatrix, "spmm", name="spmm_sell_cc", tags=tags)(
            _spmm_with_fallback(_cc_sell_spmm, "spmm_sell")
        )
        register_kernel(CMRSMatrix, "spmv", name="cmrs_cc", tags=tags)(
            _cc_cmrs_spmv
        )
        register_kernel(ARGCSRMatrix, "spmv", name="argcsr_cc", tags=tags)(
            _cc_argcsr_spmv
        )
        register_kernel(CMRSMatrix, "spmm", name="spmm_cmrs_cc", tags=tags)(
            _spmm_with_fallback(_cc_plaincsr_spmm, "spmm_cmrs")
        )
        register_kernel(ARGCSRMatrix, "spmm", name="spmm_argcsr_cc", tags=tags)(
            _spmm_with_fallback(_cc_plaincsr_spmm, "spmm_argcsr")
        )
    if _NUMBA_VERSION is not None:  # pragma: no cover - needs numba
        tags = (COMPILED_TAG, NUMBA_TAG)
        register_kernel(CSRMatrix, "spmv", name="csr_numba", tags=tags)(
            _nb_csr_spmv
        )
        register_kernel(ELLPACKMatrix, "spmv", name="ell_numba", tags=tags)(
            _nb_ell_spmv
        )
        register_kernel(
            JaggedDiagonalsBase, "spmv", name="jds_numba",
            supports_permuted=True, tags=tags,
        )(_nb_jds_spmv)
        register_kernel(SELLMatrix, "spmv", name="sell_numba", tags=tags)(
            _nb_sell_spmv
        )
        register_kernel(CSRMatrix, "spmm", name="spmm_csr_numba", tags=tags)(
            _spmm_with_fallback(_nb_csr_spmm, "spmm_csr")
        )
        register_kernel(CMRSMatrix, "spmv", name="cmrs_numba", tags=tags)(
            _nb_cmrs_spmv
        )
        register_kernel(ARGCSRMatrix, "spmv", name="argcsr_numba", tags=tags)(
            _nb_argcsr_spmv
        )


_register_all()


# ---------------------------------------------------------------------------
# introspection
# ---------------------------------------------------------------------------

def kernel_tiers() -> tuple[str, ...]:
    """The kernel-tier set available in this process, with versions.

    Folded into the autotuner's matrix fingerprint: a decision cached
    when a tier was absent (say, before Numba was installed) must not
    survive the tier appearing — the roster it was ranked against is
    no longer the roster that exists.
    """
    tiers = ["numpy"]
    if _HAVE_CSR_MATVEC:
        try:
            import scipy

            tiers.append(f"scipy-{scipy.__version__}")
        except ImportError:  # pragma: no cover - _HAVE implies scipy
            tiers.append("scipy")
    if _CNATIVE is not None:
        tiers.append(f"cnative-{_CNATIVE.tag}")
    if _NUMBA_VERSION is not None:  # pragma: no cover - needs numba
        tiers.append(f"numba-{_NUMBA_VERSION}")
    return tuple(tiers)


def backend_status() -> dict[str, dict]:
    """Human-readable availability report (``repro ops list`` footer)."""
    disabled = _disabled()
    status = {
        CNATIVE_TAG: {
            "available": _CNATIVE is not None,
            "disabled": CNATIVE_TAG in disabled,
        },
        NUMBA_TAG: {
            "available": _NUMBA_VERSION is not None,
            "disabled": NUMBA_TAG in disabled,
        },
    }
    if _CNATIVE is not None:
        status[CNATIVE_TAG].update(
            compiler=_CNATIVE.tag, openmp=_CNATIVE.openmp,
            library=str(_CNATIVE.path),
        )
    if _NUMBA_VERSION is not None:  # pragma: no cover - needs numba
        status[NUMBA_TAG]["version"] = _NUMBA_VERSION
    return status


def compiled_variant_names() -> dict[str, list[str]]:
    """Registered compiled-tier variant names per op (for tests/bench)."""
    from repro.ops.registry import registry_rows

    out: dict[str, list[str]] = {"spmv": [], "spmm": []}
    for row in registry_rows():
        if COMPILED_TAG in row["tags"]:
            out[row["op"]].append(row["variant"])
    return out
