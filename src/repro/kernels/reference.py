"""Reference spMVM kernels — literal transcriptions of the paper's listings.

These are plain Python loops mirroring the CUDA kernels of Listing 1
(ELLPACK-R) and Listing 2 (pJDS) statement by statement, including the
column-major flat addressing (``val[j*N + i]`` and
``val[col_start[j] + i]``).  They are the oracles the vectorised and
simulated kernels are tested against; never use them on large matrices.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ellpack_spmv_reference",
    "ellpack_r_spmv_reference",
    "pjds_spmv_reference",
    "csr_spmv_reference",
]


def ellpack_spmv_reference(
    val: np.ndarray,
    col_idx: np.ndarray,
    n: int,
    width: int,
    x: np.ndarray,
) -> np.ndarray:
    """Plain ELLPACK kernel: every thread streams the full padded width.

    ``val``/``col_idx`` are the flat column-major arrays of the padded
    ``n_pad x width`` rectangle (``val[j * n_pad + i]`` addressing).
    Only the first ``n`` rows are returned.
    """
    n_pad = val.shape[0] // max(width, 1) if width else n
    c = np.zeros(n, dtype=np.float64)
    for i in range(n):
        for j in range(width):
            c[i] += float(val[j * n_pad + i]) * float(x[col_idx[j * n_pad + i]])
    return c


def ellpack_r_spmv_reference(
    val: np.ndarray,
    col_idx: np.ndarray,
    rowmax: np.ndarray,
    n: int,
    width: int,
    x: np.ndarray,
) -> np.ndarray:
    """Listing 1: the standard ELLPACK-R spMVM kernel.

    .. code-block:: c

        for(i=0; i < N; ++i)
          for(j=0; j < rowmax[i]; ++j)
            c[i] += val[j*N + i] * rhs[col_idx[j*N + i]];

    (``N`` in the listing is the padded row count.)
    """
    n_pad = val.shape[0] // max(width, 1) if width else n
    c = np.zeros(n, dtype=np.float64)
    for i in range(n):
        for j in range(int(rowmax[i])):
            c[i] += float(val[j * n_pad + i]) * float(x[col_idx[j * n_pad + i]])
    return c


def pjds_spmv_reference(
    val: np.ndarray,
    col_idx: np.ndarray,
    col_start: np.ndarray,
    rowmax: np.ndarray,
    n: int,
    x: np.ndarray,
) -> np.ndarray:
    """Listing 2: the spMVM kernel of the pJDS format.

    .. code-block:: c

        for(i=0; i < N; ++i)
          for(j=0; j < rowmax[i]; ++j){
            col_offset = col_start[j];
            c[i] += val[col_offset + i] * rhs[col_idx[col_offset + i]];
          }

    Result is in *stored* (permuted) row order; the caller scatters it
    back through the permutation, exactly as a device kernel would leave
    that to the host.
    """
    c = np.zeros(n, dtype=np.float64)
    for i in range(n):
        for j in range(int(rowmax[i])):
            col_offset = int(col_start[j])
            c[i] += float(val[col_offset + i]) * float(x[col_idx[col_offset + i]])
    return c


def csr_spmv_reference(
    indptr: np.ndarray, indices: np.ndarray, data: np.ndarray, x: np.ndarray
) -> np.ndarray:
    """Row-loop CRS kernel (the CPU baseline's inner structure)."""
    n = indptr.shape[0] - 1
    c = np.zeros(n, dtype=np.float64)
    for i in range(n):
        for p in range(int(indptr[i]), int(indptr[i + 1])):
            c[i] += float(data[p]) * float(x[indices[p]])
    return c
