"""spMVM kernels: loop oracles (paper listings) and vectorised dispatch."""

from repro.kernels.reference import (
    csr_spmv_reference,
    ellpack_r_spmv_reference,
    ellpack_spmv_reference,
    pjds_spmv_reference,
)
from repro.kernels.vectorized import make_spmv_operator, power_apply, spmv

__all__ = [
    "csr_spmv_reference",
    "ellpack_r_spmv_reference",
    "ellpack_spmv_reference",
    "pjds_spmv_reference",
    "make_spmv_operator",
    "power_apply",
    "spmv",
]
