"""Deprecated shim — vectorised dispatch moved to :mod:`repro.ops`.

The uniform ``spmv``/operator-closure/``power_apply`` helpers this
module used to implement are now thin views over the
:class:`~repro.ops.protocol.LinearOperator` protocol:

* ``spmv(matrix, x)``  → ``as_linear_operator(matrix).apply(x)``
* ``make_spmv_operator`` → operator ``apply`` closures
* ``power_apply``      → :func:`repro.ops.apply_repeated`

All three still work from here but emit one
:class:`DeprecationWarning` per process; new code should use
:mod:`repro.ops` directly.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.formats.base import SparseMatrixFormat
from repro.ops.protocol import apply_repeated
from repro.utils.deprecation import deprecated_alias, warn_once

__all__ = ["spmv", "make_spmv_operator", "power_apply"]


def _spmv(
    matrix: SparseMatrixFormat, x: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """``y = A @ x`` through the matrix's vectorised kernel."""
    return matrix.spmv(x, out=out)


def make_spmv_operator(
    matrix: SparseMatrixFormat, *, permuted: bool = False, engine: bool = False
) -> Callable[[np.ndarray], np.ndarray]:
    """Return a closure computing ``A @ x`` (deprecated).

    With ``permuted=True`` (jagged formats only) the operator works in
    the stored basis; with ``engine=True`` it goes through the
    autotuned zero-allocation :func:`repro.engine.make_spmv_operator`.
    New code should use :func:`repro.ops.as_linear_operator` (or
    :func:`repro.ops.solver_operator` for the stored-basis workflow).
    """
    warn_once(
        "repro.kernels.vectorized.make_spmv_operator is deprecated; "
        "use repro.ops.as_linear_operator instead",
        key="repro.kernels.vectorized.make_spmv_operator",
    )
    if engine:
        from repro.engine import make_spmv_operator as _engine_operator

        return _engine_operator(matrix, permuted=permuted)
    if permuted:
        op = getattr(matrix, "spmv_permuted", None)
        if op is None:
            raise TypeError(
                f"{type(matrix).__name__} has no permuted-basis kernel"
            )
        return op
    return lambda x: matrix.spmv(x)


spmv = deprecated_alias(
    _spmv,
    old="repro.kernels.vectorized.spmv",
    new="repro.ops.as_linear_operator(matrix).apply",
)
power_apply = deprecated_alias(
    apply_repeated,
    old="repro.kernels.vectorized.power_apply",
    new="repro.ops.apply_repeated",
)
