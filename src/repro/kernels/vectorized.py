"""Vectorised spMVM entry points and repetition helpers.

The per-format vectorised kernels live on the format classes
(``spmv``); this module provides the uniform dispatch the benchmarks
and solvers use, plus an allocation-free repeated-application helper
for iterative algorithms.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.formats.base import SparseMatrixFormat

__all__ = ["spmv", "make_spmv_operator", "power_apply"]


def spmv(
    matrix: SparseMatrixFormat, x: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """``y = A @ x`` through the matrix's vectorised kernel."""
    return matrix.spmv(x, out=out)


def make_spmv_operator(
    matrix: SparseMatrixFormat, *, permuted: bool = False, engine: bool = False
) -> Callable[[np.ndarray], np.ndarray]:
    """Return a closure computing ``A @ x``.

    With ``permuted=True`` (jagged formats only) the operator works in
    the stored basis — the Sect. II-A Krylov workflow: permute the
    start vector once with ``matrix.permutation.to_permuted``, iterate,
    and map the final result back with ``to_original``.

    With ``engine=True`` the closure goes through the autotuned
    zero-allocation :func:`repro.engine.make_spmv_operator` (ping-pong
    output buffers; results are only valid until the buffer cycles).
    """
    if engine:
        from repro.engine import make_spmv_operator as _engine_operator

        return _engine_operator(matrix, permuted=permuted)
    if permuted:
        op = getattr(matrix, "spmv_permuted", None)
        if op is None:
            raise TypeError(
                f"{type(matrix).__name__} has no permuted-basis kernel"
            )
        return op
    return lambda x: matrix.spmv(x)


def power_apply(
    matrix: SparseMatrixFormat, x: np.ndarray, repetitions: int
) -> np.ndarray:
    """Apply ``A`` repeatedly (un-normalised); benchmark inner loop."""
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    y = matrix.spmv(x)
    buf = np.empty_like(y)
    for _ in range(repetitions - 1):
        buf = matrix.spmv(y, out=buf)
        y, buf = buf, y
    return y
