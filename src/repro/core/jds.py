"""Jagged Diagonals Storage (JDS) and the shared jagged-column machinery.

Classic JDS (used on vector computers) sorts rows by descending length
and stores the "jagged diagonals" — the j-th stored entry of every row
that has one — contiguously.  pJDS (:mod:`repro.core.pjds`) is JDS with
block-granular padding; both share the layout logic implemented in
:class:`JaggedDiagonalsBase`.

Layout invariant: stored row ``k`` (sorted order) owns one slot in each
jagged column ``j < padded_length[k]``; because padded lengths are
non-increasing in ``k``, the active rows of column ``j`` are exactly the
prefix ``0..col_len[j)`` and the slot of row ``k`` in column ``j`` sits
at flat position ``col_start[j] + k`` — precisely the address
arithmetic of Listing 2.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.sorting import Permutation, descending_row_sort, windowed_row_sort
from repro.formats.base import INDEX_DTYPE, SparseMatrixFormat, index_nbytes
from repro.formats.coo import COOMatrix

__all__ = ["JDSMatrix", "JaggedDiagonalsBase", "jagged_fill"]


def jagged_fill(
    coo: COOMatrix, perm: Permutation, padded_lengths: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Build flat jagged-column arrays for a given row order and padding.

    Parameters
    ----------
    coo : COOMatrix
        Canonical source matrix.
    perm : Permutation
        Row order; ``perm.perm[k]`` = original row at stored position k.
    padded_lengths : ndarray
        Padded length of each stored position; must be non-increasing and
        >= the true row length.

    Returns
    -------
    val, col_idx : flat ndarrays of ``sum(padded_lengths)`` slots
        (column-by-column).  Padding slots hold 0.0 / column 0.
    col_start : ndarray of ``width + 1`` offsets into the flat arrays.
    true_lengths : ndarray, true non-zero count per stored position.
    """
    n = coo.nrows
    padded_lengths = np.asarray(padded_lengths, dtype=INDEX_DTYPE)
    if padded_lengths.shape != (n,):
        raise ValueError(
            f"padded_lengths must have shape ({n},), got {padded_lengths.shape}"
        )
    if n > 1 and np.any(np.diff(padded_lengths) > 0):
        raise ValueError("padded_lengths must be non-increasing")

    orig_lengths = np.bincount(coo.rows, minlength=n).astype(INDEX_DTYPE)
    true_lengths = orig_lengths[perm.perm]
    if np.any(true_lengths > padded_lengths):
        raise ValueError("padded_lengths smaller than actual row lengths")

    width = int(padded_lengths[0]) if n else 0
    # col_len[j] = #stored rows with padded length > j; lengths are sorted
    # non-increasingly, so a cumulative histogram from the top suffices.
    hist = np.bincount(padded_lengths, minlength=width + 1)
    col_len = n - np.cumsum(hist)[:width] if width else np.empty(0, dtype=np.int64)
    col_start = np.zeros(width + 1, dtype=INDEX_DTYPE)
    np.cumsum(col_len, out=col_start[1:])

    total = int(col_start[-1])
    val = np.zeros(total, dtype=coo.dtype)
    col_idx = np.zeros(total, dtype=INDEX_DTYPE)
    if coo.nnz:
        row_start = np.zeros(n + 1, dtype=INDEX_DTYPE)
        np.cumsum(orig_lengths, out=row_start[1:])
        j = np.arange(coo.nnz, dtype=INDEX_DTYPE) - row_start[coo.rows]
        k = perm.inverse[coo.rows]
        pos = col_start[j] + k
        val[pos] = coo.values
        col_idx[pos] = coo.cols
    return val, col_idx, col_start, true_lengths


class JaggedDiagonalsBase(SparseMatrixFormat):
    """Shared state and kernels of JDS-family formats."""

    def __init__(
        self,
        val: np.ndarray,
        col_idx: np.ndarray,
        col_start: np.ndarray,
        true_lengths: np.ndarray,
        padded_lengths: np.ndarray,
        permutation: Permutation,
        shape: tuple[int, int],
    ):
        nnz = int(true_lengths.sum())
        super().__init__(shape, nnz=nnz, dtype=val.dtype)
        if permutation.size != shape[0]:
            raise ValueError("permutation size must equal nrows")
        if val.shape != col_idx.shape or val.ndim != 1:
            raise ValueError("val/col_idx must be flat arrays of equal length")
        if col_start[-1] != val.shape[0]:
            raise ValueError("col_start[-1] must equal the flat array length")
        self._val = np.ascontiguousarray(val)
        self._col_idx = np.ascontiguousarray(col_idx, dtype=INDEX_DTYPE)
        self._col_start = np.ascontiguousarray(col_start, dtype=INDEX_DTYPE)
        self._true_lengths = np.ascontiguousarray(true_lengths, dtype=INDEX_DTYPE)
        self._padded_lengths = np.ascontiguousarray(padded_lengths, dtype=INDEX_DTYPE)
        self._perm = permutation

    # ------------------------------------------------------------------
    @property
    def val(self) -> np.ndarray:
        v = self._val.view()
        v.flags.writeable = False
        return v

    @property
    def col_idx(self) -> np.ndarray:
        v = self._col_idx.view()
        v.flags.writeable = False
        return v

    @property
    def col_start(self) -> np.ndarray:
        """Offsets of each jagged column (the ``col_start[]`` of Listing 2)."""
        v = self._col_start.view()
        v.flags.writeable = False
        return v

    @property
    def rowmax(self) -> np.ndarray:
        """True row lengths in *stored* order (``rowmax[]`` of Listing 2)."""
        v = self._true_lengths.view()
        v.flags.writeable = False
        return v

    @property
    def padded_lengths(self) -> np.ndarray:
        v = self._padded_lengths.view()
        v.flags.writeable = False
        return v

    @property
    def permutation(self) -> Permutation:
        return self._perm

    @property
    def width(self) -> int:
        """Number of jagged columns (= padded length of the longest row)."""
        return self._col_start.shape[0] - 1

    @property
    def column_lengths(self) -> np.ndarray:
        return np.diff(self._col_start)

    @property
    def total_slots(self) -> int:
        """Stored value slots including padding."""
        return int(self._col_start[-1])

    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``y = A @ x`` in the *original* basis (permutation undone)."""
        x = self.check_rhs(x)
        y = self.alloc_result(out, x)
        # stored col_idx refer to original column numbers: gather from x
        # directly, then scatter the stored-order result back.
        acc = self._column_sweep(x, self._col_idx)
        y[self._perm.perm] = acc
        return y

    def spmv_permuted(self, x_perm: np.ndarray) -> np.ndarray:
        """``y~ = P A P^T x~`` entirely in the permuted basis.

        For a square matrix the Krylov-solver workflow of Sect. II-A
        permutes both row and column space once up front; pass a vector
        already in stored order and receive the result in stored order —
        no scatter/gather happens inside the iteration.
        """
        if self.nrows != self.ncols:
            raise ValueError("permuted-basis spmv requires a square matrix")
        x_perm = self.check_rhs(x_perm)
        return self._column_sweep(x_perm, self._permuted_col_idx())

    def _permuted_col_idx(self) -> np.ndarray:
        """Column indices rewritten into the permuted basis (cached)."""
        cached = getattr(self, "_col_idx_perm", None)
        if cached is None:
            if self._perm.is_identity:
                cached = self._col_idx
            else:
                cached = self._perm.inverse[self._col_idx]
            self._col_idx_perm = cached
        return cached

    def _column_sweep(self, x: np.ndarray, col_idx: np.ndarray) -> np.ndarray:
        """Listing-2 kernel, one vectorised pass per jagged column.

        Returns the accumulator in *stored* row order, in the matrix's
        native dtype (no per-column float64 upcast copies).
        """
        acc = np.zeros(self.nrows, dtype=self._dtype)
        cs = self._col_start
        val = self._val
        for j in range(self.width):
            s = cs[j]
            e = cs[j + 1]
            acc[: e - s] += val[s:e] * x[col_idx[s:e]]
        return acc

    def _row_groups(self):
        """Stored rows grouped by padded length, entries re-permuted row-major.

        Returns ``(entry_perm, groups)``: ``groups`` is a list of
        ``(L, r0, r1)`` — padded lengths are non-increasing, so stored
        rows of padded length ``L`` form the contiguous range
        ``[r0, r1)`` — and ``entry_perm`` re-permutes the flat
        column-major jagged arrays so each group's slots become a dense
        row-major ``(r1 - r0, L)`` rectangle.  This is the dual of the
        jagged layout the engine's grouped kernels reduce with one
        fused pass per distinct length.  Cached per matrix.
        """
        cached = getattr(self, "_row_groups_cache", None)
        if cached is None:
            pl = self._padded_lengths
            n = self.nrows
            cs = self._col_start
            if n == 0:
                cached = (np.empty(0, dtype=INDEX_DTYPE), [])
                self._row_groups_cache = cached
                return cached
            bnd = np.flatnonzero(np.diff(pl)) + 1
            starts = np.concatenate(([0], bnd))
            ends = np.concatenate((bnd, [n]))
            parts = []
            groups = []
            for r0, r1 in zip(starts, ends):
                L = int(pl[r0])
                if L == 0:
                    continue
                ks = np.arange(r0, r1, dtype=INDEX_DTYPE)
                parts.append((cs[:L][None, :] + ks[:, None]).ravel())
                groups.append((L, int(r0), int(r1)))
            entry_perm = (
                np.concatenate(parts) if parts else np.empty(0, dtype=INDEX_DTYPE)
            )
            cached = (entry_perm, groups)
            self._row_groups_cache = cached
        return cached

    def _grouped_entries(self, permuted: bool = False):
        """``(idx_g, data_g, groups)`` of the row-grouped view (cached).

        ``idx_g`` holds column indices in the requested basis
        (original, or permuted for the stored-basis solver path);
        ``data_g`` the matching values.  Padding slots carry value 0 /
        column 0, so they contribute nothing to the fused reductions.
        """
        key = "_grouped_perm_cache" if permuted else "_grouped_orig_cache"
        cached = getattr(self, key, None)
        if cached is None:
            entry_perm, groups = self._row_groups()
            data_g = getattr(self, "_grouped_data_cache", None)
            if data_g is None:
                data_g = np.ascontiguousarray(self._val[entry_perm])
                self._grouped_data_cache = data_g
            src = self._permuted_col_idx() if permuted else self._col_idx
            idx_g = np.ascontiguousarray(src[entry_perm])
            cached = (idx_g, data_g, groups)
            setattr(self, key, cached)
        return cached

    # ------------------------------------------------------------------
    def to_coo(self) -> COOMatrix:
        rows_, cols_, vals_ = [], [], []
        perm = self._perm.perm
        for j in range(self.width):
            s = int(self._col_start[j])
            e = int(self._col_start[j + 1])
            k = np.arange(e - s, dtype=INDEX_DTYPE)
            active = self._true_lengths[: e - s] > j
            k = k[active]
            rows_.append(perm[k])
            cols_.append(self._col_idx[s + k])
            vals_.append(self._val[s + k])
        if rows_:
            rows = np.concatenate(rows_)
            cols = np.concatenate(cols_)
            vals = np.concatenate(vals_)
        else:
            rows = np.empty(0, dtype=INDEX_DTYPE)
            cols = np.empty(0, dtype=INDEX_DTYPE)
            vals = np.empty(0, dtype=self._dtype)
        return COOMatrix(rows, cols, vals, self.shape, sum_duplicates=False)

    def row_lengths(self) -> np.ndarray:
        out = np.empty(self.nrows, dtype=INDEX_DTYPE)
        out[self._perm.perm] = self._true_lengths
        return out


class JDSMatrix(JaggedDiagonalsBase):
    """Classic (unpadded) Jagged Diagonals Storage.

    Equivalent to pJDS with block size 1: zero storage overhead, but the
    per-column lengths are arbitrary, which breaks warp-granular
    coalescing on a GPU (the motivation for the "pad" step of Fig. 1).
    """

    name = "JDS"

    @classmethod
    def from_coo(cls, coo: COOMatrix, *, sigma: int | None = None, **kwargs) -> "JDSMatrix":
        if kwargs:
            raise TypeError(f"unexpected kwargs for JDS: {sorted(kwargs)}")
        lengths = np.bincount(coo.rows, minlength=coo.nrows)
        if sigma is None:
            perm = Permutation(descending_row_sort(lengths))
        else:
            perm = Permutation(windowed_row_sort(lengths, sigma))
        sorted_lengths = lengths[perm.perm].astype(INDEX_DTYPE)
        if sigma is not None and coo.nrows > 1:
            # windowed sort may violate global monotonicity; JDS requires
            # the prefix property, so lift to the running maximum.
            sorted_lengths = np.maximum.accumulate(sorted_lengths[::-1])[::-1]
        val, col_idx, col_start, true_lengths = jagged_fill(coo, perm, sorted_lengths)
        return cls(
            val, col_idx, col_start, true_lengths, sorted_lengths, perm, coo.shape
        )

    def memory_breakdown(self) -> Mapping[str, int]:
        return {
            "val": self.total_slots * self.value_itemsize,
            "col_idx": index_nbytes(self.total_slots),
            "col_start": index_nbytes(self.width + 1),
            "perm": index_nbytes(self.nrows),
        }
