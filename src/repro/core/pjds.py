"""pJDS — padded Jagged Diagonals Storage (Sect. II-A, Fig. 1).

Construction (the three steps of Fig. 1):

1. **compress** — shift the non-zeros of each row to the left
   (implicit: we work from the canonical COO row lists);
2. **sort** — stable descending sort of the rows by non-zero count
   (optionally restricted to windows of ``sigma`` rows);
3. **pad** — group ``block_rows`` (= warp size, default 32) consecutive
   sorted rows and pad each to the longest row *of its block*.

The padded rectangle of each block keeps warp-granular load coalescing
while eliminating almost all of ELLPACK's global zero fill: the paper
measures 17.5 %–68.4 % data reduction on its matrix suite, at 91 %–130 %
of ELLPACK-R performance.

Storage bound (paper, Sect. II-A): for the adversarial matrix with one
full row and single-entry rows elsewhere, pJDS stores at most
``(br + 1) * N - br`` elements versus ELLPACK's ``N * N``.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.jds import JaggedDiagonalsBase, jagged_fill
from repro.core.sorting import Permutation, descending_row_sort, windowed_row_sort
from repro.formats.base import INDEX_DTYPE, index_nbytes
from repro.formats.coo import COOMatrix
from repro.utils.validation import check_positive_int

__all__ = ["PJDSMatrix", "block_padded_lengths"]


def block_padded_lengths(sorted_lengths: np.ndarray, block_rows: int) -> np.ndarray:
    """Pad each block of ``block_rows`` rows to the block's maximum length.

    ``sorted_lengths`` must already be sorted for the result to satisfy
    the jagged prefix property; with a *windowed* sort the caller must
    lift the result to a non-increasing sequence afterwards.
    """
    lengths = np.asarray(sorted_lengths, dtype=INDEX_DTYPE)
    block_rows = check_positive_int(block_rows, "block_rows")
    n = lengths.shape[0]
    if n == 0:
        return lengths.copy()
    nblocks = -(-n // block_rows)
    padded = np.zeros(nblocks * block_rows, dtype=INDEX_DTYPE)
    padded[:n] = lengths
    block_max = padded.reshape(nblocks, block_rows).max(axis=1)
    return np.repeat(block_max, block_rows)[:n]


class PJDSMatrix(JaggedDiagonalsBase):
    """Padded Jagged Diagonals Storage.

    Parameters of :meth:`from_coo`
    ------------------------------
    block_rows : int
        The padding granularity ``br`` (warp size on Fermi = 32).
    sigma : int or None
        Sorting window.  ``None`` (default) sorts globally, the paper's
        construction; a finite value gives the SELL-C-sigma-style
        locality/padding trade-off named in the outlook (Sect. IV).
    """

    name = "pJDS"

    def __init__(self, *args, block_rows: int = 32, **kwargs):
        super().__init__(*args, **kwargs)
        self._block_rows = check_positive_int(block_rows, "block_rows")

    @property
    def block_rows(self) -> int:
        """Padding block size ``br``."""
        return self._block_rows

    @classmethod
    def from_coo(
        cls,
        coo: COOMatrix,
        *,
        block_rows: int = 32,
        sigma: int | None = None,
        **kwargs,
    ) -> "PJDSMatrix":
        if kwargs:
            raise TypeError(f"unexpected kwargs for pJDS: {sorted(kwargs)}")
        block_rows = check_positive_int(block_rows, "block_rows")
        lengths = np.bincount(coo.rows, minlength=coo.nrows)
        if sigma is None:
            perm = Permutation(descending_row_sort(lengths))
        else:
            perm = Permutation(windowed_row_sort(lengths, sigma))
        sorted_lengths = lengths[perm.perm].astype(INDEX_DTYPE)
        padded = block_padded_lengths(sorted_lengths, block_rows)
        if sigma is not None and coo.nrows > 1:
            # windowed sorting can break global monotonicity; restore the
            # jagged prefix property by lifting to the running maximum.
            padded = np.maximum.accumulate(padded[::-1])[::-1]
        val, col_idx, col_start, true_lengths = jagged_fill(coo, perm, padded)
        return cls(
            val,
            col_idx,
            col_start,
            true_lengths,
            padded,
            perm,
            coo.shape,
            block_rows=block_rows,
        )

    def memory_breakdown(self) -> Mapping[str, int]:
        return {
            "val": self.total_slots * self.value_itemsize,
            "col_idx": index_nbytes(self.total_slots),
            # the paper: "a (small) array col_start[] of size Nmax x 4 byte"
            "col_start": index_nbytes(self.width + 1),
            # rowmax[] of Listing 2 (true lengths, stored order)
            "rowmax": index_nbytes(self.nrows),
            "perm": index_nbytes(self.nrows),
        }

    # ------------------------------------------------------------------
    # paper-facing metrics
    # ------------------------------------------------------------------
    def data_reduction_vs(self, other) -> float:
        """Fractional reduction of stored value slots vs. another format.

        ``1 - slots(pJDS) / slots(other)`` — the "data reduction [%]"
        row of Table I uses the plain ELLPACK matrix as ``other``.
        """
        theirs = other.stored_elements
        if theirs == 0:
            raise ValueError("reference format stores no elements")
        return 1.0 - self.stored_elements / theirs

    def overhead_vs_minimum(self) -> float:
        """Padding slots relative to storing the non-zeros only.

        The paper reports < 0.01 % for its suite at ``br = 32``.
        """
        if self.nnz == 0:
            return 0.0
        return self.total_slots / self.nnz - 1.0
