"""Row sorting and permutation handling for the jagged-diagonal formats.

The pJDS construction ("sort" step of Fig. 1) orders rows by descending
non-zero count.  The sort is *stable* so that rows of equal length keep
their original relative order — this preserves whatever RHS-access
locality survives the permutation, which the paper identifies as the
format's main caveat (destroyed off-diagonals / dense blocks).

The paper's outlook names SELL-C-sigma-style *windowed* sorting as
follow-up work: sorting only within windows of ``sigma`` consecutive
rows trades padding reduction against locality preservation.  Both
strategies live here.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import INDEX_DTYPE
from repro.utils.validation import as_1d_array, check_positive_int

__all__ = ["Permutation", "descending_row_sort", "windowed_row_sort"]


def descending_row_sort(row_lengths: np.ndarray) -> np.ndarray:
    """Stable permutation sorting rows by descending length.

    Returns ``perm`` with ``perm[k]`` = original index of the row placed
    at sorted position ``k``.
    """
    lengths = as_1d_array(row_lengths, name="row_lengths")
    # argsort is stable for kind="stable"; negate for descending order
    return np.argsort(-lengths.astype(np.int64), kind="stable").astype(INDEX_DTYPE)


def windowed_row_sort(row_lengths: np.ndarray, sigma: int) -> np.ndarray:
    """Stable descending sort restricted to windows of ``sigma`` rows.

    ``sigma = 1`` is the identity permutation (no reordering);
    ``sigma >= nrows`` equals :func:`descending_row_sort`.  Intermediate
    values are the SELL-C-sigma compromise the paper's Sect. IV points to.
    """
    lengths = as_1d_array(row_lengths, name="row_lengths")
    sigma = check_positive_int(sigma, "sigma")
    n = lengths.shape[0]
    if sigma >= n:
        return descending_row_sort(lengths)
    perm = np.empty(n, dtype=INDEX_DTYPE)
    for start in range(0, n, sigma):
        stop = min(start + sigma, n)
        window = lengths[start:stop]
        order = np.argsort(-window.astype(np.int64), kind="stable")
        perm[start:stop] = start + order
    return perm


class Permutation:
    """A row permutation with its inverse, as used by JDS/pJDS/SELL.

    ``perm[k]`` is the *original* index of the row stored at position
    ``k``; ``inverse[i]`` is the stored position of original row ``i``.

    The permuted-basis workflow of Sect. II-A ("permutation of the
    indices needs to be done only before the start and after the end of
    the algorithm") maps onto :meth:`to_permuted` / :meth:`to_original`.
    """

    def __init__(self, perm: np.ndarray):
        perm = as_1d_array(perm, dtype=INDEX_DTYPE, name="perm")
        n = perm.shape[0]
        seen = np.zeros(n, dtype=bool)
        if n and (perm.min() < 0 or perm.max() >= n):
            raise ValueError("perm entries out of range")
        seen[perm] = True
        if not seen.all():
            raise ValueError("perm is not a permutation (duplicate entries)")
        self._perm = perm
        self._inv = np.empty(n, dtype=INDEX_DTYPE)
        self._inv[perm] = np.arange(n, dtype=INDEX_DTYPE)

    @classmethod
    def identity(cls, n: int) -> "Permutation":
        return cls(np.arange(n, dtype=INDEX_DTYPE))

    @property
    def size(self) -> int:
        return self._perm.shape[0]

    @property
    def perm(self) -> np.ndarray:
        v = self._perm.view()
        v.flags.writeable = False
        return v

    @property
    def inverse(self) -> np.ndarray:
        v = self._inv.view()
        v.flags.writeable = False
        return v

    @property
    def is_identity(self) -> bool:
        return bool(np.array_equal(self._perm, np.arange(self.size)))

    # ------------------------------------------------------------------
    def to_permuted(self, x: np.ndarray) -> np.ndarray:
        """Reorder a vector from original into permuted (stored) basis."""
        x = np.asarray(x)
        if x.shape[0] != self.size:
            raise ValueError(f"vector length {x.shape[0]} != {self.size}")
        return x[self._perm]

    def to_original(self, x_perm: np.ndarray) -> np.ndarray:
        """Reorder a vector from permuted (stored) back to original basis."""
        x_perm = np.asarray(x_perm)
        if x_perm.shape[0] != self.size:
            raise ValueError(f"vector length {x_perm.shape[0]} != {self.size}")
        return x_perm[self._inv]

    def compose(self, other: "Permutation") -> "Permutation":
        """Permutation equivalent to applying ``other`` first, then ``self``."""
        if other.size != self.size:
            raise ValueError("size mismatch in composition")
        return Permutation(other._perm[self._perm])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Permutation) and np.array_equal(
            self._perm, other._perm
        )

    def __hash__(self):  # pragma: no cover - mutability guard
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Permutation n={self.size} identity={self.is_identity}>"
