"""The paper's contribution: pJDS and its jagged-diagonal relatives."""

from repro.core.jds import JDSMatrix, JaggedDiagonalsBase, jagged_fill
from repro.core.pjds import PJDSMatrix, block_padded_lengths
from repro.core.sell import SELLMatrix
from repro.core.sorting import Permutation, descending_row_sort, windowed_row_sort

__all__ = [
    "JDSMatrix",
    "JaggedDiagonalsBase",
    "jagged_fill",
    "PJDSMatrix",
    "block_padded_lengths",
    "SELLMatrix",
    "Permutation",
    "descending_row_sort",
    "windowed_row_sort",
]
