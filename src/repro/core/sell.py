"""Sliced ELLPACK / SELL-C-sigma (Monakov et al.; the paper's outlook).

The paper's Sect. IV names "sliced ELLPACK" and "sliced ELLR-T" as the
closely related formats a follow-up comparison targets (pJDS itself is
the direct precursor of SELL-C-sigma).  We implement the general
SELL-C-sigma scheme:

* rows are sorted by descending length within windows of ``sigma`` rows
  (``sigma = 1``: no reordering; ``sigma >= N``: global sort = pJDS
  ordering);
* the (row-padded) matrix is cut into *chunks* of ``C`` consecutive
  rows; each chunk is padded to its own maximum length and stored
  column-major within the chunk.

Unlike pJDS, chunks are independent — no global prefix property is
needed, so any ``sigma`` works without padding inflation, at the price
of one extra indirection (``chunk_ptr``) in the kernel.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.sorting import Permutation, windowed_row_sort
from repro.formats.base import INDEX_DTYPE, SparseMatrixFormat, index_nbytes
from repro.formats.coo import COOMatrix
from repro.utils.validation import check_positive_int

__all__ = ["SELLMatrix"]


class SELLMatrix(SparseMatrixFormat):
    """SELL-C-sigma sparse matrix."""

    name = "SELL-C-sigma"

    def __init__(
        self,
        val: np.ndarray,
        col_idx: np.ndarray,
        chunk_ptr: np.ndarray,
        chunk_width: np.ndarray,
        true_lengths: np.ndarray,
        permutation: Permutation,
        shape: tuple[int, int],
        *,
        chunk_rows: int,
        sigma: int,
    ):
        nnz = int(true_lengths.sum())
        super().__init__(shape, nnz=nnz, dtype=val.dtype)
        self._chunk_rows = check_positive_int(chunk_rows, "chunk_rows")
        self._sigma = check_positive_int(sigma, "sigma")
        nchunks = chunk_width.shape[0]
        if chunk_ptr.shape != (nchunks + 1,):
            raise ValueError("chunk_ptr must have length nchunks + 1")
        if permutation.size != shape[0]:
            raise ValueError("permutation size must equal nrows")
        if int(chunk_ptr[-1]) != val.shape[0]:
            raise ValueError("chunk_ptr[-1] must equal the flat array length")
        self._val = np.ascontiguousarray(val)
        self._col_idx = np.ascontiguousarray(col_idx, dtype=INDEX_DTYPE)
        self._chunk_ptr = np.ascontiguousarray(chunk_ptr, dtype=INDEX_DTYPE)
        self._chunk_width = np.ascontiguousarray(chunk_width, dtype=INDEX_DTYPE)
        self._true_lengths = np.ascontiguousarray(true_lengths, dtype=INDEX_DTYPE)
        self._perm = permutation

    # ------------------------------------------------------------------
    @property
    def chunk_rows(self) -> int:
        """Chunk height ``C`` (warp size on the paper's hardware)."""
        return self._chunk_rows

    @property
    def sigma(self) -> int:
        """Sorting window."""
        return self._sigma

    @property
    def nchunks(self) -> int:
        return self._chunk_width.shape[0]

    @property
    def chunk_widths(self) -> np.ndarray:
        v = self._chunk_width.view()
        v.flags.writeable = False
        return v

    @property
    def permutation(self) -> Permutation:
        return self._perm

    @property
    def total_slots(self) -> int:
        return int(self._chunk_ptr[-1])

    @property
    def padded_rows(self) -> int:
        return self.nchunks * self._chunk_rows

    @property
    def val(self) -> np.ndarray:
        v = self._val.view()
        v.flags.writeable = False
        return v

    @property
    def col_idx(self) -> np.ndarray:
        v = self._col_idx.view()
        v.flags.writeable = False
        return v

    @property
    def chunk_ptr(self) -> np.ndarray:
        v = self._chunk_ptr.view()
        v.flags.writeable = False
        return v

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        coo: COOMatrix,
        *,
        chunk_rows: int = 32,
        sigma: int | None = None,
        **kwargs,
    ) -> "SELLMatrix":
        if kwargs:
            raise TypeError(f"unexpected kwargs for SELL: {sorted(kwargs)}")
        chunk_rows = check_positive_int(chunk_rows, "chunk_rows")
        n = coo.nrows
        if sigma is None:
            sigma = max(n, 1)
        sigma = check_positive_int(sigma, "sigma")
        lengths = np.bincount(coo.rows, minlength=n)
        perm = Permutation(windowed_row_sort(lengths, sigma))
        sorted_lengths = lengths[perm.perm].astype(INDEX_DTYPE)

        nchunks = -(-n // chunk_rows)
        padded_len = np.zeros(nchunks * chunk_rows, dtype=INDEX_DTYPE)
        padded_len[:n] = sorted_lengths
        chunk_width = padded_len.reshape(nchunks, chunk_rows).max(axis=1)
        chunk_ptr = np.zeros(nchunks + 1, dtype=INDEX_DTYPE)
        np.cumsum(chunk_width * chunk_rows, out=chunk_ptr[1:])

        total = int(chunk_ptr[-1])
        val = np.zeros(total, dtype=coo.dtype)
        col_idx = np.zeros(total, dtype=INDEX_DTYPE)
        if coo.nnz:
            row_start = np.zeros(n + 1, dtype=INDEX_DTYPE)
            np.cumsum(np.bincount(coo.rows, minlength=n), out=row_start[1:])
            j = np.arange(coo.nnz, dtype=INDEX_DTYPE) - row_start[coo.rows]
            k = perm.inverse[coo.rows]  # stored position
            c = k // chunk_rows
            r = k - c * chunk_rows
            pos = chunk_ptr[c] + j * chunk_rows + r
            val[pos] = coo.values
            col_idx[pos] = coo.cols
        return cls(
            val,
            col_idx,
            chunk_ptr,
            chunk_width,
            sorted_lengths,
            perm,
            coo.shape,
            chunk_rows=chunk_rows,
            sigma=sigma,
        )

    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x = self.check_rhs(x)
        y = self.alloc_result(out, x)
        if self.total_slots == 0:
            return y
        C = self._chunk_rows
        acc = np.zeros(self.padded_rows, dtype=self._dtype)
        widths = self._chunk_width
        max_width = int(widths.max())
        lane = np.arange(C, dtype=INDEX_DTYPE)
        chunk_ids = np.arange(self.nchunks, dtype=INDEX_DTYPE)
        for j in range(max_width):
            active = chunk_ids[widths > j]
            base = self._chunk_ptr[active] + j * C
            pos = (base[:, None] + lane).ravel()
            rows = (active[:, None] * C + lane).ravel()
            acc[rows] += self._val[pos] * x[self._col_idx[pos]]
        y[self._perm.perm] = acc[: self.nrows]
        return y

    def to_coo(self) -> COOMatrix:
        C = self._chunk_rows
        rows_, cols_, vals_ = [], [], []
        perm = self._perm.perm
        lane = np.arange(C, dtype=INDEX_DTYPE)
        for c in range(self.nchunks):
            width = int(self._chunk_width[c])
            if width == 0:
                continue
            k = c * C + lane
            k = k[k < self.nrows]
            tl = self._true_lengths[k]
            for j in range(width):
                sel = k[tl > j]
                if sel.size == 0:
                    continue
                pos = self._chunk_ptr[c] + j * C + (sel - c * C)
                rows_.append(perm[sel])
                cols_.append(self._col_idx[pos])
                vals_.append(self._val[pos])
        if rows_:
            rows = np.concatenate(rows_)
            cols = np.concatenate(cols_)
            vals = np.concatenate(vals_)
        else:
            rows = np.empty(0, dtype=INDEX_DTYPE)
            cols = np.empty(0, dtype=INDEX_DTYPE)
            vals = np.empty(0, dtype=self._dtype)
        return COOMatrix(rows, cols, vals, self.shape, sum_duplicates=False)

    def memory_breakdown(self) -> Mapping[str, int]:
        return {
            "val": self.total_slots * self.value_itemsize,
            "col_idx": index_nbytes(self.total_slots),
            "chunk_ptr": index_nbytes(self.nchunks + 1),
            "rowmax": index_nbytes(self.nrows),
            "perm": index_nbytes(self.nrows),
        }

    def row_lengths(self) -> np.ndarray:
        out = np.empty(self.nrows, dtype=INDEX_DTYPE)
        out[self._perm.perm] = self._true_lengths
        return out
