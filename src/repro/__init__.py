"""repro — pJDS spMVM on (simulated) GPGPU clusters.

Reproduction of M. Kreutzer et al., "Sparse matrix-vector
multiplication on GPGPU clusters: A new storage format and a scalable
implementation" (IPDPS Workshops, 2012).

Public API layers:

* :mod:`repro.formats` — COO/CRS/ELLPACK/ELLPACK-R substrate formats
* :mod:`repro.core` — pJDS, JDS, SELL-C-sigma (the contribution)
* :mod:`repro.kernels` — reference + vectorised spMVM kernels
* :mod:`repro.gpu` — mechanistic Fermi-class device model
* :mod:`repro.perfmodel` — Eqs. (1)-(4) + the Westmere CPU baseline
* :mod:`repro.matrices` — the (synthetic) paper matrix suite
* :mod:`repro.distributed` — multi-GPGPU layer (Sect. III)
* :mod:`repro.solvers` — CG / Lanczos / power iteration
"""

from repro.core import JDSMatrix, Permutation, PJDSMatrix, SELLMatrix
from repro.formats import (
    COOMatrix,
    CSRMatrix,
    ELLPACKMatrix,
    ELLPACKRMatrix,
    available_formats,
    convert,
)

__version__ = "1.0.0"

__all__ = [
    "JDSMatrix",
    "Permutation",
    "PJDSMatrix",
    "SELLMatrix",
    "COOMatrix",
    "CSRMatrix",
    "ELLPACKMatrix",
    "ELLPACKRMatrix",
    "available_formats",
    "convert",
    "__version__",
]
