"""Kernel access-trace extraction from the actual storage arrays.

The executor's byte accounting is *mechanistic*: for every format we
enumerate the (warp, iteration) slots its CUDA kernel would execute and
the device-memory addresses each slot touches, straight from the same
``val``/``col_idx`` arrays the kernels read.  Nothing is fitted.

A trace lists one record per *executed slot* (an active lane in one
warp-iteration):

* ``unit`` — execution-order id: warps are processed in resident
  groups of ``device.resident_warps``; within a group all warps advance
  through their iterations ``j`` together, group after group.  One unit
  is one (group, j) pair; the cache model deduplicates transactions
  per unit and measures reuse distance in units.
* ``val_line`` / ``idx_line`` — 128-byte device-memory line holding the
  matrix entry / its column index;
* ``rhs_line`` — line of the gathered RHS element.

Plain ELLPACK executes (and therefore loads) its zero fill; ELLPACK-R
skips it but leaves warp slots reserved; pJDS's sorted prefix keeps
active lanes contiguous.  All three behaviours emerge from the slot
enumeration below.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.jds import JaggedDiagonalsBase
from repro.core.sell import SELLMatrix
from repro.formats.base import SparseMatrixFormat
from repro.formats.ellpack import ELLPACKMatrix
from repro.formats.ellpack_r import ELLPACKRMatrix
from repro.gpu.device import DeviceSpec, Precision, precision_dtype

__all__ = ["KernelTrace", "extract_trace"]

#: guard against accidentally materialising a gigantic plain-ELLPACK trace
MAX_TRACE_SLOTS = 80_000_000


@dataclass
class KernelTrace:
    """Addresses and scheduling of one spMVM kernel invocation."""

    format_name: str
    precision: Precision
    nrows: int
    nnz: int
    #: executed slots in execution order (sorted by unit)
    unit: np.ndarray
    val_line: np.ndarray
    idx_line: np.ndarray
    rhs_line: np.ndarray
    #: total warp-iterations *reserved* (a warp holds its slot until its
    #: longest lane finishes — the light boxes of Fig. 2)
    reserved_steps: int
    #: distinct (warp, j) pairs actually issued
    active_steps: int
    #: bytes of result-vector traffic (read + write of c[])
    lhs_bytes: int
    #: bytes of auxiliary array traffic charged to memory (rowmax etc.)
    aux_bytes: int
    #: per-(warp, iteration) deduplicated val/col_idx transactions —
    #: what the L2 interconnect serves (coalesced formats: ~1-2 per
    #: warp-step; scalar CSR: up to one per lane)
    val_transactions: int = 0
    idx_transactions: int = 0

    @property
    def executed_slots(self) -> int:
        return int(self.unit.shape[0])


def extract_trace(
    matrix: SparseMatrixFormat,
    device: DeviceSpec,
    precision: Precision | None = None,
) -> KernelTrace:
    """Build the :class:`KernelTrace` of ``matrix``'s kernel on ``device``.

    ``precision`` defaults to the matrix dtype ("SP" for float32).
    """
    if precision is None:
        precision = "SP" if matrix.dtype == np.float32 else "DP"
    itemsize = precision_dtype(precision).itemsize
    from repro.formats.argcsr import ARGCSRMatrix
    from repro.formats.bellpack import BELLPACKMatrix
    from repro.formats.cmrs import CMRSMatrix
    from repro.formats.csr import CSRMatrix
    from repro.formats.ellr_t import ELLRTMatrix

    if isinstance(matrix, JaggedDiagonalsBase):
        return _trace_jagged(matrix, device, precision, itemsize)
    if isinstance(matrix, SELLMatrix):
        return _trace_sell(matrix, device, precision, itemsize)
    if isinstance(matrix, BELLPACKMatrix):
        return _trace_bellpack(matrix, device, precision, itemsize)
    if isinstance(matrix, ELLRTMatrix):
        return _trace_ellr_t(matrix, device, precision, itemsize)
    if isinstance(matrix, ELLPACKRMatrix):
        return _trace_ellpack(matrix, device, precision, itemsize, skip_padding=True)
    if isinstance(matrix, ELLPACKMatrix):
        return _trace_ellpack(matrix, device, precision, itemsize, skip_padding=False)
    if isinstance(matrix, CMRSMatrix):
        return _trace_cmrs(matrix, device, precision, itemsize)
    if isinstance(matrix, ARGCSRMatrix):
        return _trace_argcsr(matrix, device, precision, itemsize)
    if isinstance(matrix, CSRMatrix):
        return _trace_csr_scalar(matrix, device, precision, itemsize)
    raise TypeError(
        f"no GPU kernel trace for format {type(matrix).__name__}; "
        "supported: ELLPACK, ELLPACK-R, ELLR-T, BELLPACK, JDS, pJDS, "
        "SELL-C-sigma, CMRS, ARG-CSR, CRS"
    )


def _finalize(
    matrix: SparseMatrixFormat,
    device: DeviceSpec,
    precision: Precision,
    itemsize: int,
    *,
    pos: np.ndarray,
    col: np.ndarray,
    j: np.ndarray,
    stored_row: np.ndarray,
    stored_lengths: np.ndarray,
    rowmax_array: bool,
    rows_per_warp: int | None = None,
) -> KernelTrace:
    """Assemble a trace from slot positions / columns / schedule indices.

    ``rows_per_warp`` defaults to the warp size; ELLR-T passes
    ``warp_size / T`` because T threads cooperate on each row.
    ``stored_lengths`` must already be in *warp-iteration* units
    (i.e. divided by T for ELLR-T).
    """
    ws = rows_per_warp if rows_per_warp is not None else device.warp_size
    warp = stored_row // ws
    group = warp // max(device.resident_warps, 1)
    width = int(j.max()) + 1 if j.size else 1
    unit = group * width + j
    step = j * (int(warp.max()) + 1 if warp.size else 1) + warp

    line = device.cache_line_bytes
    val_line = (pos * itemsize) // line
    idx_line = (pos * 4) // line
    rhs_line = (col * itemsize) // line

    order = np.argsort(unit, kind="stable")
    unit = unit[order]
    val_line = val_line[order]
    idx_line = idx_line[order]
    rhs_line = rhs_line[order]
    active_steps = int(np.unique(step).shape[0]) if step.size else 0

    step_sorted = step[order]

    def _transactions(lines: np.ndarray) -> int:
        """Distinct (warp-step, line) pairs: one 128-byte transaction
        serves every lane of a warp touching the same line in the same
        iteration; different warps or iterations issue their own."""
        if lines.size == 0:
            return 0
        key = np.lexsort((lines, step_sorted))
        ls, ss = lines[key], step_sorted[key]
        first = np.empty(ls.shape[0], dtype=bool)
        first[0] = True
        first[1:] = (ss[1:] != ss[:-1]) | (ls[1:] != ls[:-1])
        return int(np.count_nonzero(first))

    val_tr = _transactions(val_line)
    idx_tr = _transactions(idx_line)

    nwarps = -(-stored_lengths.shape[0] // ws)
    per_warp = np.zeros(nwarps, dtype=np.int64)
    np.maximum.at(
        per_warp, np.arange(stored_lengths.shape[0]) // ws, stored_lengths
    )
    reserved = int(per_warp.sum())

    lhs = 2 * itemsize * matrix.nrows
    aux = 4 * matrix.nrows if rowmax_array else 0
    return KernelTrace(
        matrix.name,
        precision,
        matrix.nrows,
        matrix.nnz,
        unit,
        val_line,
        idx_line,
        rhs_line,
        reserved,
        active_steps,
        lhs,
        aux,
        val_transactions=val_tr,
        idx_transactions=idx_tr,
    )


def _trace_ellpack(
    matrix: ELLPACKMatrix,
    device: DeviceSpec,
    precision: Precision,
    itemsize: int,
    *,
    skip_padding: bool,
) -> KernelTrace:
    width = matrix.width
    npad = matrix.padded_rows
    total = width * npad
    if total > MAX_TRACE_SLOTS:
        raise MemoryError(
            f"ELLPACK trace would hold {total} slots (> {MAX_TRACE_SLOTS}); "
            "use a smaller matrix scale"
        )
    # slot (j, i): flat storage offset j*npad + i (column-major rectangle)
    j = np.repeat(np.arange(width, dtype=np.int64), npad)
    i = np.tile(np.arange(npad, dtype=np.int64), width)
    row_lengths = matrix._row_lengths  # noqa: SLF001 - padded-row lengths
    if skip_padding:
        active = row_lengths[i] > j
        j = j[active]
        i = i[active]
    pos = j * npad + i
    col = matrix.col.reshape(-1)[pos]
    stored_lengths = row_lengths if skip_padding else np.full(npad, width, np.int64)
    return _finalize(
        matrix,
        device,
        precision,
        itemsize,
        pos=pos,
        col=col,
        j=j,
        stored_row=i,
        stored_lengths=stored_lengths,
        rowmax_array=skip_padding,
    )


def _trace_csr_scalar(
    matrix,
    device: DeviceSpec,
    precision: Precision,
    itemsize: int,
) -> KernelTrace:
    """Scalar CSR kernel (Bell & Garland's baseline): one thread per row.

    Thread ``i`` streams ``val[indptr[i] + j]`` — at iteration ``j`` a
    warp's 32 lanes sit at 32 *unrelated* flat positions, so almost
    every load is its own transaction.  This is the uncoalesced access
    pattern whose cost made ELLPACK the GPU standard (ref. [1] of the
    paper); tracing it quantifies the motivation.
    """
    indptr = np.asarray(matrix.indptr, dtype=np.int64)
    lengths = np.diff(indptr)
    n = matrix.nrows
    total = matrix.nnz
    if total > MAX_TRACE_SLOTS:
        raise MemoryError("CSR trace too large; use a smaller scale")
    row = np.repeat(np.arange(n, dtype=np.int64), lengths)
    j = np.arange(total, dtype=np.int64) - indptr[row]
    pos = np.arange(total, dtype=np.int64)  # flat CSR position
    col = np.asarray(matrix.indices, dtype=np.int64)
    return _finalize(
        matrix,
        device,
        precision,
        itemsize,
        pos=pos,
        col=col,
        j=j,
        stored_row=row,
        stored_lengths=lengths,
        rowmax_array=True,  # row pointer plays the rowmax role
    )


def _trace_bellpack(
    matrix,
    device: DeviceSpec,
    precision: Precision,
    itemsize: int,
) -> KernelTrace:
    """BELLPACK: one thread per scalar row; each thread streams the
    ``bc`` values of every non-empty block in its block-row.

    Like plain ELLPACK, the kernel computes the explicit zeros inside
    partially-filled blocks — the fill ratio is paid in both transfers
    and flops, which is exactly why the format needs true block
    structure to win.
    """
    br, bc = matrix.block_shape
    nbr = matrix.nblockrows
    blocks = np.asarray(matrix.blocks_per_row, dtype=np.int64)
    total_blocks = int(blocks.sum())
    if total_blocks * br * bc > MAX_TRACE_SLOTS:
        raise MemoryError("BELLPACK trace too large; use a smaller scale")

    # enumerate active (slot j, block-row B) pairs
    block_row = np.repeat(np.arange(nbr, dtype=np.int64), blocks)
    starts = np.zeros(nbr + 1, dtype=np.int64)
    np.cumsum(blocks, out=starts[1:])
    j_of_block = np.arange(total_blocks, dtype=np.int64) - starts[block_row]
    bcol = matrix._col[j_of_block, block_row]  # noqa: SLF001

    # expand every block into its br x bc scalar slots
    per = br * bc
    eb = np.repeat(np.arange(total_blocks, dtype=np.int64), per)
    local = np.tile(np.arange(per, dtype=np.int64), total_blocks)
    r_in = local // bc
    c_in = local - r_in * bc
    B = block_row[eb]
    jj = j_of_block[eb]

    row = B * br + r_in
    pos = ((jj * nbr + B) * br + r_in) * bc + c_in  # flat val index
    col = bcol[eb] * bc + c_in
    # scalar iteration index: thread sweeps its block-row's values
    step_j = jj * bc + c_in

    stored_lengths = np.repeat(blocks * bc, br)  # iterations per scalar row
    return _finalize(
        matrix,
        device,
        precision,
        itemsize,
        pos=pos,
        col=col,
        j=step_j,
        stored_row=row,
        stored_lengths=stored_lengths,
        rowmax_array=True,
    )


def _trace_ellr_t(
    matrix,
    device: DeviceSpec,
    precision: Precision,
    itemsize: int,
) -> KernelTrace:
    """ELLR-T: T threads per row; element j runs in warp-iteration j//T.

    Storage and addresses equal ELLPACK-R's; only the schedule changes:
    a warp covers ``warp_size / T`` rows and is reserved for
    ``max(ceil(rowmax / T))`` iterations — long rows block the warp for
    a factor T less (the format's point), at the price of the padded
    width and the (un-modelled, cheap) in-warp reduction.
    """
    width = matrix.width
    npad = matrix.padded_rows
    T = matrix.threads_per_row
    total = width * npad
    if total > MAX_TRACE_SLOTS:
        raise MemoryError(
            f"ELLR-T trace would hold {total} slots (> {MAX_TRACE_SLOTS})"
        )
    j = np.repeat(np.arange(width, dtype=np.int64), npad)
    i = np.tile(np.arange(npad, dtype=np.int64), width)
    active = matrix.rowmax[i] > j
    j = j[active]
    i = i[active]
    pos = j * npad + i
    col = matrix.col.reshape(-1)[pos]
    rows_per_warp = max(device.warp_size // T, 1)
    return _finalize(
        matrix,
        device,
        precision,
        itemsize,
        pos=pos,
        col=col,
        j=j // T,
        stored_row=i,
        stored_lengths=-(-matrix.rowmax // T),
        rowmax_array=True,
        rows_per_warp=rows_per_warp,
    )


def _trace_jagged(
    matrix: JaggedDiagonalsBase,
    device: DeviceSpec,
    precision: Precision,
    itemsize: int,
) -> KernelTrace:
    cs = matrix.col_start
    col_len = np.diff(cs)
    width = matrix.width

    # slot enumeration: column j owns flat positions cs[j] .. cs[j+1]
    pos = np.arange(matrix.total_slots, dtype=np.int64)
    j = np.repeat(np.arange(width, dtype=np.int64), col_len)
    k = pos - cs[j]  # stored row of each slot
    active = matrix.rowmax[k] > j  # rowmax guard of Listing 2 skips padding
    pos, j, k = pos[active], j[active], k[active]
    col = matrix.col_idx[pos]
    return _finalize(
        matrix,
        device,
        precision,
        itemsize,
        pos=pos,
        col=col,
        j=j,
        stored_row=k,
        stored_lengths=np.asarray(matrix.rowmax),
        rowmax_array=True,
    )


def _trace_cmrs(
    matrix,
    device: DeviceSpec,
    precision: Precision,
    itemsize: int,
) -> KernelTrace:
    """CMRS: one warp per strip sweeping the strip's flat entry stream.

    Lane ``l`` of the warp handles entries ``sptr[s] + j*ws + l`` — the
    val/col loads are perfectly coalesced (consecutive flat positions)
    no matter how ragged the rows are, which is the format's selling
    point (Koza et al.); the per-lane partial products are then routed
    to ``y[s*HS + row_in_strip]`` through shared memory (un-modelled,
    on-chip).  A strip is reserved for ``ceil(count / warp_size)``
    iterations.  The rowmax-style aux charge stands in for the strip
    pointer + row-counter streams.
    """
    if matrix.nnz > MAX_TRACE_SLOTS:
        raise MemoryError("CMRS trace too large; use a smaller scale")
    sptr = np.asarray(matrix.strip_ptr, dtype=np.int64)
    counts = np.diff(sptr)
    strip = np.repeat(np.arange(matrix.nstrips, dtype=np.int64), counts)
    pos = np.arange(matrix.nnz, dtype=np.int64)
    j = (pos - sptr[strip]) // device.warp_size
    col = np.asarray(matrix.col_idx, dtype=np.int64)
    return _finalize(
        matrix,
        device,
        precision,
        itemsize,
        pos=pos,
        col=col,
        j=j,
        stored_row=strip,
        stored_lengths=-(-counts // device.warp_size),
        rowmax_array=True,
        rows_per_warp=1,  # stored_row is already the warp (strip) id
    )


def _trace_argcsr(
    matrix,
    device: DeviceSpec,
    precision: Precision,
    itemsize: int,
) -> KernelTrace:
    """ARG-CSR: one thread per stored row; device rectangles are
    column-major per group (Heller & Oberhuber), so iteration ``j``
    reads ``gptr[g] + j*n_g + r`` — consecutive addresses across the
    group's rows, i.e. coalesced like ELLPACK but at the group's width
    instead of the global maximum.  The per-row true-length guard
    skips the power-of-two padding (the host arrays stay row-major;
    only the modelled device addresses transpose).
    """
    if matrix.total_slots > MAX_TRACE_SLOTS:
        raise MemoryError("ARG-CSR trace too large; use a smaller scale")
    gp = np.asarray(matrix.group_ptr, dtype=np.int64)
    gw = np.asarray(matrix.group_width, dtype=np.int64)
    rp = np.asarray(matrix.group_rows_ptr, dtype=np.int64)
    tl_all = np.asarray(matrix.true_lengths, dtype=np.int64)
    col_host = np.asarray(matrix.col_idx, dtype=np.int64)

    pos_parts, col_parts, j_parts, row_parts = [], [], [], []
    for g in range(matrix.ngroups):
        lo, L = int(gp[g]), int(gw[g])
        r0, r1 = int(rp[g]), int(rp[g + 1])
        ng = r1 - r0
        tl = tl_all[r0:r1]
        J = np.broadcast_to(np.arange(L, dtype=np.int64), (ng, L))
        R = np.broadcast_to(np.arange(ng, dtype=np.int64)[:, None], (ng, L))
        active = J < tl[:, None]
        j_g = J[active]
        r_g = R[active]
        pos_parts.append(lo + j_g * ng + r_g)  # column-major device slot
        col_parts.append(col_host[lo + r_g * L + j_g])  # host row-major
        j_parts.append(j_g)
        row_parts.append(r0 + r_g)
    cat = (
        lambda parts: np.concatenate(parts)
        if parts
        else np.empty(0, dtype=np.int64)
    )
    return _finalize(
        matrix,
        device,
        precision,
        itemsize,
        pos=cat(pos_parts),
        col=cat(col_parts),
        j=cat(j_parts),
        stored_row=cat(row_parts),
        stored_lengths=tl_all,
        rowmax_array=True,
    )


def _trace_sell(
    matrix: SELLMatrix,
    device: DeviceSpec,
    precision: Precision,
    itemsize: int,
) -> KernelTrace:
    C = matrix.chunk_rows
    n = matrix.nrows
    nchunks = matrix.nchunks
    widths = matrix.chunk_widths
    ptr = matrix.chunk_ptr

    pos = np.arange(matrix.total_slots, dtype=np.int64)
    chunk = np.repeat(np.arange(nchunks, dtype=np.int64), widths * C)
    off = pos - ptr[chunk]
    j = off // C
    r = off - j * C
    k = chunk * C + r
    rowmax = np.zeros(nchunks * C, dtype=np.int64)
    rowmax[:n] = np.asarray(matrix.row_lengths())[matrix.permutation.perm]
    active = rowmax[k] > j
    pos, j, k = pos[active], j[active], k[active]
    col = matrix.col_idx[pos]
    return _finalize(
        matrix,
        device,
        precision,
        itemsize,
        pos=pos,
        col=col,
        j=j,
        stored_row=k,
        stored_lengths=rowmax,
        rowmax_array=True,
    )
