"""Fermi-class GPGPU execution model (mechanistic, trace-driven)."""

from repro.gpu.cache import CacheModel, dedupe_units, gather_traffic, lru_misses, stack_distance_misses
from repro.gpu.device import C1060, C2050, C2070, DeviceSpec, precision_dtype
from repro.gpu.executor import KernelReport, run_kernel, simulate_spmv
from repro.gpu.pcie import TransferReport, spmv_with_transfers, transfer_seconds
from repro.gpu.trace import KernelTrace, extract_trace

__all__ = [
    "CacheModel",
    "dedupe_units",
    "gather_traffic",
    "lru_misses",
    "stack_distance_misses",
    "C1060",
    "C2050",
    "C2070",
    "DeviceSpec",
    "precision_dtype",
    "KernelReport",
    "run_kernel",
    "simulate_spmv",
    "TransferReport",
    "spmv_with_transfers",
    "transfer_seconds",
    "KernelTrace",
    "extract_trace",
]
