"""PCIe transfer model and host-inclusive spMVM timing (Eq. 2).

The paper's Sect. II-B extends the kernel model with the host<->device
transfers an isolated spMVM needs: upload the RHS vector, download the
LHS vector — ``TPCI = 16 N / BPCI`` at double precision.  The functions
here provide that model plus the combined "effective" performance used
to justify which matrices are worth GPU acceleration at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import DeviceSpec, Precision
from repro.gpu.executor import KernelReport

__all__ = ["transfer_seconds", "TransferReport", "spmv_with_transfers"]


def transfer_seconds(nbytes: int, device: DeviceSpec) -> float:
    """One host<->device copy of ``nbytes`` over PCIe."""
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if nbytes == 0:
        return 0.0
    return device.pcie_latency_s + nbytes / device.pcie_bytes_per_s


@dataclass(frozen=True)
class TransferReport:
    """Kernel + PCIe timing of one full spMVM round trip."""

    kernel: KernelReport
    upload_seconds: float
    download_seconds: float

    @property
    def pcie_seconds(self) -> float:
        return self.upload_seconds + self.download_seconds

    @property
    def total_seconds(self) -> float:
        return self.kernel.kernel_seconds + self.pcie_seconds

    @property
    def gflops(self) -> float:
        """Effective performance including the PCIe penalty."""
        return self.kernel.flops / self.total_seconds * 1e-9

    @property
    def pcie_penalty(self) -> float:
        """TPCI / TMVM — the ratio Eqs. (3)/(4) put bounds on."""
        return self.pcie_seconds / self.kernel.kernel_seconds


def spmv_with_transfers(
    kernel: KernelReport,
    device: DeviceSpec,
    *,
    precision: Precision | None = None,
) -> TransferReport:
    """Wrap a kernel report with RHS-upload and LHS-download times.

    Both vectors have the matrix dimension; at DP this reproduces the
    paper's ``TPCI = 16 N / BPCI``.
    """
    prec = precision or kernel.precision
    itemsize = 4 if prec == "SP" else 8
    vec_bytes = itemsize * kernel.nrows
    return TransferReport(
        kernel=kernel,
        upload_seconds=transfer_seconds(vec_bytes, device),
        download_seconds=transfer_seconds(vec_bytes, device),
    )
