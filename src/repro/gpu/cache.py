"""L2 cache model for the RHS gather stream (the alpha of Eq. 1).

The paper parameterises RHS reuse with ``1/Nnzr <= alpha <= 1``:
``alpha = 1`` means every gathered RHS element is loaded from device
memory, ``alpha = 1/Nnzr`` means perfect caching.  Instead of guessing
alpha we *derive* the gather traffic from the kernel trace:

1. Execution is modelled at the granularity of *units*: one unit is
   one iteration ``j`` of one resident warp group (the chip runs
   ``resident_warps`` warps concurrently; they advance through their
   columns together, group after group).  Trace extraction assigns the
   unit ids; accesses inside a unit are deduplicated per cache line —
   one 128-byte transaction serves every lane and warp of the unit
   touching that line.
2. The deduplicated stream is run through a *stack-distance* filter:
   a line access hits if fewer than ``capacity`` distinct-line
   touches happened in the units strictly between this access and the
   line's previous one.  (Distinct lines are counted per intervening
   unit and summed, which double-counts lines recurring across units —
   a conservative, fully vectorisable stand-in for true LRU stack
   distance.)

:func:`lru_misses` provides an exact fully-associative LRU simulation
used by the unit tests to sanity-check the filter on small streams.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "dedupe_units",
    "stack_distance_misses",
    "gather_traffic",
    "lru_misses",
    "CacheModel",
]


def dedupe_units(unit: np.ndarray, lines: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """One access per (unit, line) pair, sorted by unit then line."""
    if unit.shape != lines.shape:
        raise ValueError("unit and lines must have equal shape")
    if unit.size == 0:
        return unit[:0], lines[:0]
    order = np.lexsort((lines, unit))
    u = unit[order]
    ln = lines[order]
    first = np.empty(u.shape[0], dtype=bool)
    first[0] = True
    first[1:] = (u[1:] != u[:-1]) | (ln[1:] != ln[:-1])
    return u[first], ln[first]


def stack_distance_misses(
    unit: np.ndarray, lines: np.ndarray, capacity: int
) -> int:
    """Miss count of the unit-granular stack-distance filter.

    ``unit``/``lines`` must already be deduplicated and sorted by unit
    (:func:`dedupe_units` output).  ``capacity`` is in cache lines.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    m = lines.shape[0]
    if m == 0:
        return 0
    # compress unit ids to ranks and count distinct lines per unit
    _, rank = np.unique(unit, return_inverse=True)
    per_unit = np.bincount(rank)
    prefix = np.concatenate(([0], np.cumsum(per_unit)))  # prefix[r] = touches in units < r

    # previous occurrence of each line: group accesses by line, keep unit order
    order = np.lexsort((rank, lines))
    l2 = lines[order]
    r2 = rank[order]
    same = l2[1:] == l2[:-1]
    # distinct lines touched in units strictly between prev and current;
    # strict comparison because the line itself occupies one way
    intervening = prefix[r2[1:]] - prefix[r2[:-1] + 1]
    hits = same & (intervening < capacity)
    return int(m - np.count_nonzero(hits))


def gather_traffic(
    unit: np.ndarray, lines: np.ndarray, capacity: int, line_bytes: int
) -> tuple[int, int, int]:
    """(transactions, misses, bytes) of a gather stream.

    ``transactions`` counts the per-unit deduplicated accesses (what the
    memory system sees), ``misses`` those the L2 cannot serve, and
    ``bytes`` the resulting device-memory traffic.
    """
    u, ln = dedupe_units(unit, lines)
    transactions = int(ln.shape[0])
    misses = stack_distance_misses(u, ln, capacity)
    return transactions, misses, misses * line_bytes


def lru_misses(lines: np.ndarray, capacity: int) -> int:
    """Exact fully-associative LRU miss count (validation oracle).

    Pure-Python; use on small streams only.
    """
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    from collections import OrderedDict

    cache: OrderedDict[int, None] = OrderedDict()
    misses = 0
    for line in lines.tolist():
        if line in cache:
            cache.move_to_end(line)
        else:
            misses += 1
            cache[line] = None
            if len(cache) > capacity:
                cache.popitem(last=False)
    return misses


class CacheModel:
    """RHS gather traffic estimator bound to one device configuration."""

    def __init__(self, capacity_lines: int, line_bytes: int):
        if capacity_lines < 0:
            raise ValueError("capacity_lines must be >= 0")
        if line_bytes < 1:
            raise ValueError("line_bytes must be >= 1")
        self.capacity_lines = int(capacity_lines)
        self.line_bytes = int(line_bytes)

    def gather_traffic(
        self, unit: np.ndarray, rhs_lines: np.ndarray
    ) -> tuple[int, int, int]:
        """(transactions, misses, bytes) of the RHS gather stream."""
        return gather_traffic(unit, rhs_lines, self.capacity_lines, self.line_bytes)

    def effective_alpha(
        self,
        unit: np.ndarray,
        rhs_lines: np.ndarray,
        nnz: int,
        itemsize: int,
    ) -> float:
        """The alpha of Eq. (1) implied by the modelled traffic.

        alpha = (RHS bytes from memory) / (itemsize * nnz): 1.0 when
        each of the ``nnz`` gathers pays one element load from memory.
        Values above 1 mean partially-used cache lines (scattered
        gathers); below 1/Nnzr is impossible by construction.
        """
        if nnz <= 0:
            raise ValueError("nnz must be > 0")
        _, _, bytes_ = self.gather_traffic(unit, rhs_lines)
        return bytes_ / (itemsize * nnz)
