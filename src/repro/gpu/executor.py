"""Kernel execution model: turns a trace into bytes, cycles and GF/s.

The model follows the paper's own analysis (Sect. II-B): spMVM on Fermi
is memory-bandwidth bound, so kernel time is

    T = max(T_mem, T_issue) + launch latency

with ``T_mem`` = (all 128-byte transactions the kernel causes) /
(sustained bandwidth at the current ECC setting) and ``T_issue`` the
warp-scheduling floor (reserved warp-iterations x cycles per
iteration / SM count) — the "light boxes" of Fig. 2 that make
imbalanced warps waste hardware even when they skip loads.

Byte accounting per source:

* ``val`` / ``col_idx``: distinct 128-byte lines touched by executed
  slots.  ELLPACK's zero fill, ELLPACK-R's partially-used transactions
  (scattered active lanes) and pJDS's dense prefixes all fall out of
  the line count.
* RHS gather: transactions deduplicated per warp-iteration, then run
  through the L2 reuse model (:mod:`repro.gpu.cache`).
* LHS and ``rowmax``: streamed once (Eq. 1's ``16/Nnzr`` DP term).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.base import SparseMatrixFormat
from repro.gpu.cache import CacheModel
from repro.gpu.device import DeviceSpec, Precision
from repro.gpu.trace import KernelTrace, extract_trace

__all__ = ["KernelReport", "run_kernel", "simulate_spmv"]


def _distinct_lines(lines: np.ndarray) -> int:
    if lines.size == 0:
        return 0
    return int(np.unique(lines).shape[0])


@dataclass(frozen=True)
class KernelReport:
    """Modelled execution of one spMVM kernel on one device."""

    format_name: str
    precision: Precision
    device_name: str
    ecc: bool
    nrows: int
    nnz: int
    # --- traffic (bytes) ---
    val_bytes: int
    idx_bytes: int
    rhs_bytes: int
    lhs_bytes: int
    aux_bytes: int
    # --- scheduling ---
    reserved_steps: int
    active_steps: int
    # --- derived ---
    kernel_seconds: float
    memory_seconds: float
    fabric_seconds: float
    issue_seconds: float
    effective_alpha: float
    transactions: int

    @property
    def total_bytes(self) -> int:
        return (
            self.val_bytes
            + self.idx_bytes
            + self.rhs_bytes
            + self.lhs_bytes
            + self.aux_bytes
        )

    @property
    def flops(self) -> int:
        return 2 * self.nnz

    @property
    def gflops(self) -> float:
        return self.flops / self.kernel_seconds * 1e-9

    @property
    def code_balance(self) -> float:
        """Measured bytes per flop — comparable to Eq. (1)."""
        return self.total_bytes / self.flops

    @property
    def memory_bound(self) -> bool:
        return self.memory_seconds >= self.issue_seconds

    @property
    def fabric_bound(self) -> bool:
        """Limited by transaction throughput, not DRAM bytes (the
        scalar-CSR signature)."""
        return self.fabric_seconds > self.memory_seconds

    def row(self) -> dict[str, float | str | bool]:
        """Flat dict for tabular output in the benchmarks."""
        return {
            "format": self.format_name,
            "precision": self.precision,
            "ecc": self.ecc,
            "gflops": self.gflops,
            "balance_bytes_per_flop": self.code_balance,
            "alpha": self.effective_alpha,
            "kernel_ms": self.kernel_seconds * 1e3,
        }


def run_kernel(
    trace: KernelTrace, device: DeviceSpec, *, cache_window: int | None = None
) -> KernelReport:
    """Evaluate the execution model on an extracted trace."""
    line = device.cache_line_bytes
    val_bytes = _distinct_lines(trace.val_line) * line
    idx_bytes = _distinct_lines(trace.idx_line) * line

    cache = CacheModel(
        device.l2_lines if cache_window is None else cache_window, line
    )
    rhs_transactions, _, rhs_bytes = cache.gather_traffic(
        trace.unit, trace.rhs_line
    )
    itemsize = 4 if trace.precision == "SP" else 8
    alpha = rhs_bytes / (itemsize * trace.nnz) if trace.nnz else 0.0

    total_bytes = val_bytes + idx_bytes + rhs_bytes + trace.lhs_bytes + trace.aux_bytes
    # every load is a line-sized transaction through the cache fabric;
    # coalesced kernels issue ~bytes/line of them, scalar-CSR-style
    # scatter issues up to one per lane and hits this limit instead
    streamed = -(-(trace.lhs_bytes + trace.aux_bytes) // line)
    transactions = (
        trace.val_transactions
        + trace.idx_transactions
        + rhs_transactions
        + streamed
    )
    t_mem = total_bytes / device.bandwidth_bytes_per_s
    if device.l2_bytes > 0:
        t_fabric = transactions * line / device.l2_bytes_per_s
    else:
        # no L2 (C1060): partially-used transactions burn DRAM bandwidth
        t_fabric = max(total_bytes, transactions * line) / device.bandwidth_bytes_per_s
    cycles = trace.reserved_steps * device.cycles_per_warp_step(trace.precision)
    t_issue = cycles / (device.num_sms * device.clock_ghz * 1e9)
    kernel = max(t_mem, t_fabric, t_issue) + device.launch_latency_s

    return KernelReport(
        format_name=trace.format_name,
        precision=trace.precision,
        device_name=device.name,
        ecc=device.ecc,
        nrows=trace.nrows,
        nnz=trace.nnz,
        val_bytes=val_bytes,
        idx_bytes=idx_bytes,
        rhs_bytes=rhs_bytes,
        lhs_bytes=trace.lhs_bytes,
        aux_bytes=trace.aux_bytes,
        reserved_steps=trace.reserved_steps,
        active_steps=trace.active_steps,
        kernel_seconds=kernel,
        memory_seconds=t_mem,
        fabric_seconds=t_fabric,
        issue_seconds=t_issue,
        effective_alpha=alpha,
        transactions=transactions,
    )


def simulate_spmv(
    matrix: SparseMatrixFormat,
    device: DeviceSpec,
    precision: Precision | None = None,
    *,
    cache_window: int | None = None,
) -> KernelReport:
    """Extract the trace of ``matrix`` and run the execution model."""
    trace = extract_trace(matrix, device, precision)
    return run_kernel(trace, device, cache_window=cache_window)
