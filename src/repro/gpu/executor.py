"""Kernel execution model: turns a trace into bytes, cycles and GF/s.

The model follows the paper's own analysis (Sect. II-B): spMVM on Fermi
is memory-bandwidth bound, so kernel time is

    T = max(T_mem, T_issue) + launch latency

with ``T_mem`` = (all 128-byte transactions the kernel causes) /
(sustained bandwidth at the current ECC setting) and ``T_issue`` the
warp-scheduling floor (reserved warp-iterations x cycles per
iteration / SM count) — the "light boxes" of Fig. 2 that make
imbalanced warps waste hardware even when they skip loads.

Byte accounting per source:

* ``val`` / ``col_idx``: distinct 128-byte lines touched by executed
  slots.  ELLPACK's zero fill, ELLPACK-R's partially-used transactions
  (scattered active lanes) and pJDS's dense prefixes all fall out of
  the line count.
* RHS gather: transactions deduplicated per warp-iteration, then run
  through the L2 reuse model (:mod:`repro.gpu.cache`).
* LHS and ``rowmax``: streamed once (Eq. 1's ``16/Nnzr`` DP term).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.base import SparseMatrixFormat
from repro.gpu.cache import CacheModel
from repro.gpu.device import DeviceSpec, Precision
from repro.gpu.trace import KernelTrace, extract_trace
from repro.obs import metrics as _obs

__all__ = ["KernelReport", "run_kernel", "simulate_spmv", "publish_report"]


def _distinct_lines(lines: np.ndarray) -> int:
    if lines.size == 0:
        return 0
    return int(np.unique(lines).shape[0])


@dataclass(frozen=True)
class KernelReport:
    """Modelled execution of one spMVM kernel on one device."""

    format_name: str
    precision: Precision
    device_name: str
    ecc: bool
    nrows: int
    nnz: int
    # --- traffic (bytes) ---
    val_bytes: int
    idx_bytes: int
    rhs_bytes: int
    lhs_bytes: int
    aux_bytes: int
    # --- scheduling ---
    reserved_steps: int
    active_steps: int
    # --- derived ---
    kernel_seconds: float
    memory_seconds: float
    fabric_seconds: float
    issue_seconds: float
    effective_alpha: float
    transactions: int
    # --- RHS gather cache behaviour (L2 reuse model) ---
    rhs_transactions: int = 0
    rhs_misses: int = 0

    @property
    def total_bytes(self) -> int:
        return (
            self.val_bytes
            + self.idx_bytes
            + self.rhs_bytes
            + self.lhs_bytes
            + self.aux_bytes
        )

    @property
    def flops(self) -> int:
        return 2 * self.nnz

    @property
    def gflops(self) -> float:
        return self.flops / self.kernel_seconds * 1e-9

    @property
    def code_balance(self) -> float:
        """Measured bytes per flop — comparable to Eq. (1)."""
        return self.total_bytes / self.flops

    @property
    def memory_bound(self) -> bool:
        return self.memory_seconds >= self.issue_seconds

    @property
    def fabric_bound(self) -> bool:
        """Limited by transaction throughput, not DRAM bytes (the
        scalar-CSR signature)."""
        return self.fabric_seconds > self.memory_seconds

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of RHS gather transactions served by the L2."""
        if self.rhs_transactions == 0:
            return 0.0
        return 1.0 - self.rhs_misses / self.rhs_transactions

    def row(self) -> dict[str, float | str | bool]:
        """Flat dict for tabular output in the benchmarks."""
        return {
            "format": self.format_name,
            "precision": self.precision,
            "ecc": self.ecc,
            "gflops": self.gflops,
            "balance_bytes_per_flop": self.code_balance,
            "alpha": self.effective_alpha,
            "kernel_ms": self.kernel_seconds * 1e3,
        }


def run_kernel(
    trace: KernelTrace, device: DeviceSpec, *, cache_window: int | None = None
) -> KernelReport:
    """Evaluate the execution model on an extracted trace."""
    line = device.cache_line_bytes
    val_bytes = _distinct_lines(trace.val_line) * line
    idx_bytes = _distinct_lines(trace.idx_line) * line

    cache = CacheModel(
        device.l2_lines if cache_window is None else cache_window, line
    )
    rhs_transactions, rhs_misses, rhs_bytes = cache.gather_traffic(
        trace.unit, trace.rhs_line
    )
    itemsize = 4 if trace.precision == "SP" else 8
    alpha = rhs_bytes / (itemsize * trace.nnz) if trace.nnz else 0.0

    total_bytes = val_bytes + idx_bytes + rhs_bytes + trace.lhs_bytes + trace.aux_bytes
    # every load is a line-sized transaction through the cache fabric;
    # coalesced kernels issue ~bytes/line of them, scalar-CSR-style
    # scatter issues up to one per lane and hits this limit instead
    streamed = -(-(trace.lhs_bytes + trace.aux_bytes) // line)
    transactions = (
        trace.val_transactions
        + trace.idx_transactions
        + rhs_transactions
        + streamed
    )
    t_mem = total_bytes / device.bandwidth_bytes_per_s
    if device.l2_bytes > 0:
        t_fabric = transactions * line / device.l2_bytes_per_s
    else:
        # no L2 (C1060): partially-used transactions burn DRAM bandwidth
        t_fabric = max(total_bytes, transactions * line) / device.bandwidth_bytes_per_s
    cycles = trace.reserved_steps * device.cycles_per_warp_step(trace.precision)
    t_issue = cycles / (device.num_sms * device.clock_ghz * 1e9)
    kernel = max(t_mem, t_fabric, t_issue) + device.launch_latency_s

    report = KernelReport(
        format_name=trace.format_name,
        precision=trace.precision,
        device_name=device.name,
        ecc=device.ecc,
        nrows=trace.nrows,
        nnz=trace.nnz,
        val_bytes=val_bytes,
        idx_bytes=idx_bytes,
        rhs_bytes=rhs_bytes,
        lhs_bytes=trace.lhs_bytes,
        aux_bytes=trace.aux_bytes,
        reserved_steps=trace.reserved_steps,
        active_steps=trace.active_steps,
        kernel_seconds=kernel,
        memory_seconds=t_mem,
        fabric_seconds=t_fabric,
        issue_seconds=t_issue,
        effective_alpha=alpha,
        transactions=transactions,
        rhs_transactions=rhs_transactions,
        rhs_misses=rhs_misses,
    )
    if _obs.enabled():
        publish_report(report)
    return report


def publish_report(report: KernelReport) -> None:
    """Publish every :class:`KernelReport` field into the obs registry.

    Byte counters are labeled per source so a dashboard can recover
    the Eq. (1) split (``val``/``idx``/``rhs``/``lhs``/``aux``);
    derived figures (GF/s, code balance, cache hit ratio, effective
    alpha) become gauges, and kernel time feeds a log-bucketed
    histogram per format.
    """
    fmt = report.format_name
    labels = {"format": fmt, "precision": str(report.precision)}
    _obs.counter(
        "spmv_total", "Modelled spMVM kernel executions"
    ).inc(1, **labels)
    bytes_fam = _obs.counter(
        "spmv_bytes_total", "Modelled device-memory traffic per source"
    )
    for source in ("val", "idx", "rhs", "lhs", "aux"):
        bytes_fam.inc(getattr(report, f"{source}_bytes"), source=source, **labels)
    _obs.counter(
        "spmv_flops_total", "Floating-point operations (2 per stored nnz)"
    ).inc(report.flops, **labels)
    _obs.counter(
        "spmv_transactions_total", "128-byte cache-fabric transactions"
    ).inc(report.transactions, **labels)
    _obs.counter(
        "spmv_reserved_steps_total", "Reserved warp-iterations (Fig. 2 boxes)"
    ).inc(report.reserved_steps, **labels)
    _obs.counter(
        "spmv_active_steps_total", "Warp-iterations with at least one active lane"
    ).inc(report.active_steps, **labels)

    gauges = {
        "spmv_gflops": report.gflops,
        "spmv_code_balance_bytes_per_flop": report.code_balance,
        "spmv_effective_alpha": report.effective_alpha,
        "cache_hit_ratio": report.cache_hit_ratio,
        "spmv_rows": report.nrows,
        "spmv_nnz": report.nnz,
        "spmv_memory_seconds": report.memory_seconds,
        "spmv_fabric_seconds": report.fabric_seconds,
        "spmv_issue_seconds": report.issue_seconds,
        "spmv_memory_bound": float(report.memory_bound),
        "spmv_fabric_bound": float(report.fabric_bound),
    }
    dev_labels = {**labels, "device": report.device_name, "ecc": str(report.ecc)}
    for name, value in gauges.items():
        _obs.gauge(name).set(value, **dev_labels)
    _obs.histogram(
        "spmv_kernel_seconds", "Modelled kernel wall-clock per execution"
    ).observe(report.kernel_seconds, **labels)


def simulate_spmv(
    matrix: SparseMatrixFormat,
    device: DeviceSpec,
    precision: Precision | None = None,
    *,
    cache_window: int | None = None,
) -> KernelReport:
    """Extract the trace of ``matrix`` and run the execution model."""
    trace = extract_trace(matrix, device, precision)
    return run_kernel(trace, device, cache_window=cache_window)
