"""Fermi-class GPGPU device description (Sect. I-B of the paper).

The Tesla C2050/C2070 ("GF100") parameters the paper publishes:

* 14 streaming multiprocessors (SMs) x 32 in-order ALUs,
* one SP FMA per ALU per cycle -> 896 flops/cycle chip-wide, half at DP,
* clock above 1 GHz (1.15 GHz on the Tesla parts),
* 768 kB shared L2 cache, 128-byte cache lines / memory transactions,
* sustained device-memory bandwidth ~91 GB/s with ECC, ~120 GB/s
  without (streaming measurement, ref. [5] of the paper),
* 3 GB (C2050) or 6 GB (C2070) device memory,
* PCIe 2.0 x16 host link, ~6 GB/s effective.

The executor consumes these numbers; nothing here is fitted to the
paper's results.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = ["DeviceSpec", "Precision", "C2050", "C2070", "precision_dtype"]


#: Precision labels used throughout the benchmarks ("SP"/"DP").
Precision = str

_PRECISION_SIZES = {"SP": 4, "DP": 8}


def precision_dtype(precision: Precision) -> np.dtype:
    """Map "SP"/"DP" to float32/float64."""
    if precision == "SP":
        return np.dtype(np.float32)
    if precision == "DP":
        return np.dtype(np.float64)
    raise ValueError(f"precision must be 'SP' or 'DP', got {precision!r}")


@dataclass(frozen=True)
class DeviceSpec:
    """Mechanistic description of one GPGPU board."""

    name: str = "C2070"
    num_sms: int = 14
    alus_per_sm: int = 32
    warp_size: int = 32
    clock_ghz: float = 1.15
    memory_bytes: int = 6 * 1024**3
    l2_bytes: int = 768 * 1024
    cache_line_bytes: int = 128
    #: sustained streaming bandwidth (GB/s) with ECC protection enabled
    bandwidth_ecc_gbs: float = 91.0
    #: sustained streaming bandwidth (GB/s) with ECC disabled
    bandwidth_noecc_gbs: float = 120.0
    #: aggregate L2 transaction bandwidth (GB/s); the throughput limit
    #: uncoalesced access patterns hit (GF100: ~384 B/clk ~ 440 GB/s)
    l2_bandwidth_gbs: float = 440.0
    #: effective host<->device bandwidth over PCIe (GB/s)
    pcie_bandwidth_gbs: float = 6.0
    #: PCIe transfer launch latency (s) — cudaMemcpy overhead scale
    pcie_latency_s: float = 10e-6
    #: kernel launch latency (s)
    launch_latency_s: float = 7e-6
    #: warps resident on the whole chip at typical spMVM occupancy
    #: (14 SMs x 32 warps/SM on Fermi); sets the granularity at which
    #: the cache model interleaves warp execution
    resident_warps: int = 448
    #: extra issue cycles per warp-iteration beyond the FMA itself
    #: (address arithmetic, loads); only matters far from the
    #: bandwidth-bound regime the paper operates in
    issue_overhead_cycles: float = 4.0
    ecc: bool = True

    # ------------------------------------------------------------------
    def with_ecc(self, ecc: bool) -> "DeviceSpec":
        """Copy of this spec with ECC switched on/off."""
        return replace(self, ecc=ecc)

    def scaled(self, divisor: int) -> "DeviceSpec":
        """Device for matrices shrunk by ``divisor`` from paper scale.

        Cache behaviour depends on the *ratio* of working-set to cache
        size, and execution interleaving on the ratio of resident to
        total warps — neither is scale-invariant, so simulating a
        1/64-scale matrix against a full-size L2 would flatter it.
        This shrinks L2 capacity, resident-warp count and device memory
        by the same factor while bandwidths (bytes per second, which
        divide scale-invariant per-nnz byte counts) stay untouched.
        """
        if divisor < 1:
            raise ValueError(f"divisor must be >= 1, got {divisor}")
        if divisor == 1:
            return self
        l2 = (
            max(self.l2_bytes // divisor, self.cache_line_bytes)
            if self.l2_bytes
            else 0
        )
        return replace(
            self,
            name=f"{self.name}/{divisor}",
            l2_bytes=l2,
            resident_warps=max(self.resident_warps // divisor, 1),
            memory_bytes=max(self.memory_bytes // divisor, 1),
        )

    @property
    def bandwidth_gbs(self) -> float:
        """Effective device-memory bandwidth for the current ECC setting."""
        return self.bandwidth_ecc_gbs if self.ecc else self.bandwidth_noecc_gbs

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.bandwidth_gbs * 1e9

    @property
    def pcie_bytes_per_s(self) -> float:
        return self.pcie_bandwidth_gbs * 1e9

    @property
    def l2_bytes_per_s(self) -> float:
        return self.l2_bandwidth_gbs * 1e9

    @property
    def l2_lines(self) -> int:
        """L2 capacity in cache lines (the reuse-window of the cache model)."""
        return self.l2_bytes // self.cache_line_bytes

    def peak_gflops(self, precision: Precision) -> float:
        """Theoretical peak (896 flops/cycle SP chip-wide; half at DP)."""
        itemsize = _PRECISION_SIZES[precision]  # validates the label
        flops_per_cycle = self.num_sms * self.alus_per_sm * 2  # FMA = 2 flops
        if itemsize == 8:
            flops_per_cycle //= 2
        return flops_per_cycle * self.clock_ghz

    def cycles_per_warp_step(self, precision: Precision) -> float:
        """Issue cycles one warp-iteration costs an SM."""
        base = 1.0 if precision == "SP" else 2.0
        return base + self.issue_overhead_cycles

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ecc = "on" if self.ecc else "off"
        return f"{self.name} (ECC {ecc}, {self.bandwidth_gbs:.0f} GB/s)"


def C2050(*, ecc: bool = True) -> DeviceSpec:
    """Tesla C2050: 3 GB device memory (the Dirac cluster's boards)."""
    return DeviceSpec(name="C2050", memory_bytes=3 * 1024**3, ecc=ecc)


def C2070(*, ecc: bool = True) -> DeviceSpec:
    """Tesla C2070: 6 GB device memory (the Table I board)."""
    return DeviceSpec(name="C2070", memory_bytes=6 * 1024**3, ecc=ecc)


def C1060() -> DeviceSpec:
    """Tesla C1060 ("GT200"), the pre-Fermi generation of Sect. II-A.

    No L2 cache (every RHS gather that misses the tiny texture path
    goes to memory) and 64-byte transaction granularity — the paper
    notes the pJDS locality penalty "is more severe on older GPGPU
    generations without L2 cache".  30 SMs x 8 ALUs, ~78 GB/s
    sustained, no ECC option.
    """
    return DeviceSpec(
        name="C1060",
        num_sms=30,
        alus_per_sm=8,
        warp_size=32,
        clock_ghz=1.296,
        memory_bytes=4 * 1024**3,
        l2_bytes=0,
        cache_line_bytes=64,
        bandwidth_ecc_gbs=78.0,
        bandwidth_noecc_gbs=78.0,
        resident_warps=480,
        ecc=False,
    )
