"""Command-line interface: run the paper's experiments from a shell.

Examples
--------
::

    python -m repro suite                 # matrix statistics + reduction
    python -m repro table1 --scale 128    # the Table I performance grid
    python -m repro pcie                  # Eqs. (2)-(4) analysis
    python -m repro fig5 --matrix UHBR    # strong-scaling series
    python -m repro timeline --nodes 8    # Fig. 4 ASCII timeline
    python -m repro spmv matrix.mtx --format pJDS
    python -m repro spmv matrix.mtx --parallel 4   # shared-memory backend
    python -m repro engine tune sAMG --format pjds # autotuner decision
    python -m repro obs --format pjds --out trace.json \
        --metrics-out metrics.prom        # instrumented run + artifacts
    python -m repro serve --port 8080 --matrix sAMG --max-batch 32
                                          # micro-batching HTTP server
    python -m repro serve --fleet 4 --replicas 2 --slo
                                          # sharded fleet + autoscaler
    python -m repro fleet status --url http://127.0.0.1:8000

Heavy experiments accept ``--scale`` (matrix shrink factor relative to
the paper dimensions; larger = faster).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


# ---------------------------------------------------------------------------
# subcommand implementations (print to a writable stream for testability)
# ---------------------------------------------------------------------------

def cmd_suite(args, out) -> int:
    from repro.formats import convert
    from repro.matrices import SUITE_KEYS, generate, structure_stats

    print(
        f"{'matrix':6s} {'rows':>8s} {'nnz':>10s} {'Nnzr':>7s} "
        f"{'min':>4s} {'max':>4s} {'reduction %':>11s}",
        file=out,
    )
    for key in SUITE_KEYS:
        coo = generate(key, scale=args.scale, seed=args.seed)
        st = structure_stats(coo)
        red = 100.0 * convert(coo, "pJDS").data_reduction_vs(
            convert(coo, "ELLPACK")
        )
        print(
            f"{key:6s} {st.nrows:8d} {st.nnz:10d} {st.nnzr:7.1f} "
            f"{st.min_row_length:4d} {st.max_row_length:4d} {red:11.1f}",
            file=out,
        )
    return 0


def cmd_table1(args, out) -> int:
    from repro.formats import convert
    from repro.gpu import C2070, extract_trace, run_kernel
    from repro.matrices import generate

    keys = ("DLR1", "DLR2", "HMEp", "sAMG")
    mats = {k: generate(k, scale=args.scale, seed=args.seed) for k in keys}
    print(
        f"{'config':10s} {'format':10s} " + " ".join(f"{k:>7s}" for k in keys),
        file=out,
    )
    for prec, dtype in (("SP", np.float32), ("DP", np.float64)):
        traces = {}
        base = C2070().scaled(args.scale)
        for key in keys:
            coo = mats[key].astype(dtype)
            for fmt in ("ELLPACK-R", "pJDS"):
                traces[(key, fmt)] = extract_trace(convert(coo, fmt), base, prec)
        for ecc in (0, 1):
            dev = C2070(ecc=bool(ecc)).scaled(args.scale)
            for fmt in ("ELLPACK-R", "pJDS"):
                cells = " ".join(
                    f"{run_kernel(traces[(k, fmt)], dev).gflops:7.1f}" for k in keys
                )
                print(f"{prec} ECC={ecc}   {fmt:10s} {cells}", file=out)
    return 0


def cmd_fig3(args, out) -> int:
    from repro.matrices import generate, row_length_histogram

    for key in ("DLR1", "DLR2", "HMEp", "sAMG"):
        coo = generate(key, scale=args.scale, seed=args.seed)
        h = row_length_histogram(coo)
        print(f"{key}: N={coo.nrows} Nnz={coo.nnz}", file=out)
        for start, count, share in h.as_rows():
            bar = "#" * max(int(44 * count / h.counts.max()), 1)
            print(f"  {start:4d} {share:9.2e} {bar}", file=out)
    return 0


def cmd_pcie(args, out) -> int:
    from repro.matrices import SUITE
    from repro.perfmodel import analyse

    alphas = {"HMEp": 0.73, "sAMG": 1.0, "DLR1": 0.25, "DLR2": 0.25, "UHBR": 0.25}
    print(
        f"{'matrix':6s} {'Nnzr':>6s} {'kernel':>7s} {'effective':>9s} "
        f"{'penalty':>8s} {'worthwhile':>10s}",
        file=out,
    )
    for key, spec in SUITE.items():
        a = analyse(spec.paper_dim, spec.paper_nnzr, alphas[key])
        print(
            f"{key:6s} {a.nnzr:6.1f} {a.kernel_gflops:7.1f} "
            f"{a.effective_gflops:9.1f} {a.pcie_penalty:8.2f} "
            f"{str(a.gpu_worthwhile):>10s}",
            file=out,
        )
    return 0


def cmd_fig5(args, out) -> int:
    from repro.distributed import KernelCost, strong_scaling
    from repro.gpu import C2050
    from repro.matrices import generate

    nodes = [1, 2, 4, 8, 16, 24, 32] if args.matrix == "DLR1" else [5, 8, 16, 24, 32]
    coo = generate(args.matrix, scale=args.scale, seed=args.seed)
    series = strong_scaling(
        coo,
        nodes,
        device=C2050(ecc=True),
        cost=KernelCost.from_alpha(0.25),
        workload_scale=args.scale,
        matrix_name=args.matrix,
    )
    print(f"{args.matrix} strong scaling (GF/s):", file=out)
    print("nodes   " + " ".join(f"{n:7d}" for n in nodes), file=out)
    for mode in ("vector", "naive", "task"):
        row = " ".join(f"{p.gflops:7.1f}" for p in series.series(mode))
        print(f"{mode:7s} {row}", file=out)
    print(file=out)
    print(series.render(), file=out)
    return 0


def cmd_timeline(args, out) -> int:
    from repro.distributed import (
        DIRAC_IB,
        KernelCost,
        build_plan,
        partition_rows,
        render_timeline,
        simulate_mode,
        stats_from_plan,
    )
    from repro.formats import CSRMatrix
    from repro.gpu import C2050
    from repro.matrices import generate

    coo = generate("DLR1", scale=args.scale, seed=args.seed)
    csr = CSRMatrix.from_coo(coo)
    part = partition_rows(csr.nrows, args.nodes, row_weights=csr.row_lengths())
    plan = build_plan(csr, part, with_matrices=False)
    stats = stats_from_plan(plan, itemsize=8, workload_scale=args.scale)
    res = simulate_mode(
        args.mode, stats, C2050(ecc=True), DIRAC_IB, KernelCost.from_alpha(0.25)
    )
    print(
        f"{args.mode} mode, {args.nodes} nodes: {res.gflops:.1f} GF/s",
        file=out,
    )
    print(render_timeline(res.timeline, rank=res.slowest_rank), file=out)
    return 0


def cmd_shootout(args, out) -> int:
    from repro.formats import convert
    from repro.gpu import C2070, simulate_spmv
    from repro.matrices import generate

    formats = {
        "CRS": {},
        "ELLPACK": {},
        "ELLPACK-R": {},
        "ELLR-T": {"threads_per_row": 4},
        "JDS": {},
        "pJDS": {"block_rows": 32},
        "SELL-C-sigma": {"chunk_rows": 32, "sigma": 256},
    }
    coo = generate(args.matrix, scale=args.scale, seed=args.seed)
    dev = C2070(ecc=True).scaled(args.scale)
    print(f"{args.matrix} (1/{args.scale} scale), DP, ECC on:", file=out)
    print(f"{'format':13s} {'GF/s':>7s} {'MiB':>8s} {'alpha':>6s}", file=out)
    for fmt, kwargs in formats.items():
        m = convert(coo, fmt, **kwargs)
        rep = simulate_spmv(m, dev, "DP")
        print(
            f"{fmt:13s} {rep.gflops:7.2f} {m.nbytes / 2**20:8.1f} "
            f"{rep.effective_alpha:6.2f}",
            file=out,
        )
    return 0


def cmd_spmv(args, out) -> int:
    from repro.formats import convert
    from repro.gpu import C2070, simulate_spmv
    from repro.matrices import read_matrix_market, structure_stats

    coo = read_matrix_market(args.matrix_file)
    st = structure_stats(coo)
    print(
        f"{args.matrix_file}: {st.nrows} x {st.ncols}, {st.nnz} non-zeros, "
        f"Nnzr = {st.nnzr:.1f}",
        file=out,
    )
    m = convert(coo, _resolve_format(args.format))
    print(f"{m.name}: {m.nbytes} bytes device storage", file=out)
    x = np.random.default_rng(args.seed).normal(size=coo.ncols).astype(m.dtype)
    if args.parallel:
        from repro.engine import parallel_spmv

        y = parallel_spmv(m, x, nworkers=args.parallel, mode=args.parallel_mode)
        print(
            f"parallel backend: {args.parallel} row-block workers "
            f"({args.parallel_mode} mode)",
            file=out,
        )
    else:
        y = m.spmv(x)
    print(f"spMVM done; ||y|| = {float(np.linalg.norm(y)):.6g}", file=out)
    if st.nrows == st.ncols:
        try:
            rep = simulate_spmv(m, C2070(ecc=True))
            print(
                f"modelled C2070 (ECC on): {rep.gflops:.1f} GF/s "
                f"(balance {rep.code_balance:.2f} B/F)",
                file=out,
            )
        except TypeError:
            print("(no GPU model for this format)", file=out)
    return 0


def cmd_engine(args, out) -> int:
    """``repro engine tune <matrix>``: run (or replay) the autotuner."""
    from repro import obs
    from repro.engine import autotune, fingerprint, variants_for
    from repro.engine.workspace import Workspace
    from repro.formats import convert
    from repro.matrices import generate
    from repro.matrices.cache import TunerCache

    fmt = _resolve_format(args.format)
    coo = generate(args.matrix, scale=args.scale, seed=args.seed)
    m = convert(coo, fmt)
    cache = TunerCache(persist=False) if args.no_cache else None
    with obs.span("cli.engine_tune", format=fmt, matrix=args.matrix):
        tr = autotune(
            m,
            Workspace(),
            reps=args.reps,
            seed=args.seed,
            cache=cache,
            use_cache=not args.no_cache,
            prune=args.prune,
            top_k=args.top_k,
        )
    print(
        f"{args.matrix} (1/{args.scale} scale) as {m.name}: "
        f"{m.nrows} x {m.ncols}, nnz = {m.nnz}",
        file=out,
    )
    print(f"fingerprint : {fingerprint(m)}", file=out)
    print(f"cache       : {'hit' if tr.cache_hit else 'miss'}", file=out)
    print(f"candidates  : {[v.name for v in variants_for(m)]}", file=out)
    if tr.pruned:
        print(
            f"pruned      : timed {len(tr.timings) or len(variants_for(m)) - len(tr.dropped)}"
            f"/{len(variants_for(m))} (model dropped {list(tr.dropped)})",
            file=out,
        )
    if tr.timings:
        best = min(tr.timings.values())
        for name, secs in sorted(tr.timings.items(), key=lambda kv: kv[1]):
            mark = "  <- chosen" if name == tr.variant else ""
            print(
                f"  {name:16s} {secs * 1e6:10.1f} us "
                f"({secs / best:5.2f}x){mark}",
                file=out,
            )
    print(f"chosen      : {tr.variant}", file=out)
    if tr.tier:
        print(f"tier        : {','.join(tr.tier)}", file=out)
    if tr.measured_gbs is not None:
        print(
            f"bandwidth   : measured {tr.measured_gbs:.2f} GB/s vs "
            f"model {tr.predicted_gbs:.2f} GB/s sustainable",
            file=out,
        )
    if args.explain:
        _print_explain(m, tr, out)
    return 0


def _print_explain(m, tr, out) -> None:
    """Eq.-1 prediction table for ``engine tune --explain``."""
    from repro.ops import kernel_tiers
    from repro.perfmodel.predict import explain_rows, predict_spmv

    preds = predict_spmv(m)
    keep = None
    if tr.pruned:
        dropped = set(tr.dropped)
        keep = [p.name for p in preds if p.name not in dropped]
    rows = explain_rows(preds, keep=keep, timings=tr.timings or None)
    print("", file=out)
    print(f"model explain (tiers: {', '.join(kernel_tiers())})", file=out)
    print(
        f"  {'variant':16s} {'tier':13s} {'B [B/F]':>8s} {'pred us':>9s} "
        f"{'meas us':>9s} {'meas GB/s':>9s} kept",
        file=out,
    )
    for r in rows:
        meas = f"{r['measured_us']:9.1f}" if "measured_us" in r else f"{'-':>9s}"
        gbs = (
            f"{r['measured_gbs']:9.2f}"
            if r.get("measured_gbs") is not None
            else f"{'-':>9s}"
        )
        print(
            f"  {r['variant']:16s} {r['tier']:13s} "
            f"{r['balance_bytes_per_flop']:8.2f} {r['predicted_us']:9.1f} "
            f"{meas} {gbs} {'yes' if r['kept'] else 'dropped'}",
            file=out,
        )


def cmd_ops(args, out) -> int:
    """``repro ops list``: the central kernel registry, live.

    Without ``--matrix`` the full registry snapshot is printed — one
    row per registered ``(format, op, variant)``, rank 0 being the
    untuned default.  With ``--matrix PATH`` (MatrixMarket) the file is
    converted to ``--format`` and the rosters that resolve for *that
    instance* are shown, followed by the autotuner's pick and timings.
    """
    from repro.ops import kernels_for, registry_rows

    if args.ops_command != "list":  # pragma: no cover - argparse enforces
        raise SystemExit(f"unknown ops command {args.ops_command!r}")

    if args.matrix is None:
        rows = registry_rows()
        print(f"{'format':14s} {'op':5s} {'variant':18s} "
              f"{'rank':>4s} {'perm':>5s} tags", file=out)
        for r in rows:
            print(
                f"{r['format']:14s} {r['op']:5s} {r['variant']:18s} "
                f"{r['rank']:4d} {'yes' if r['supports_permuted'] else '-':>5s} "
                f"{','.join(r['tags']) or '-'}",
                file=out,
            )
        print(f"{len(rows)} kernels registered "
              f"(+ the 'generic' spmv fallback for unlisted formats)", file=out)
        from repro.ops import kernel_tiers
        from repro.scenarios.specs import axis_values

        print(f"kernel tiers: {', '.join(kernel_tiers())}", file=out)
        # the same axes the scenario matrix expands — one roster,
        # no drift between `repro ops list`, the specs, and CI
        print(
            f"scenario axes: format={','.join(axis_values('format'))}; "
            f"kernel-tier={','.join(axis_values('kernel-tier'))}",
            file=out,
        )
        return 0

    from repro.engine import autotune
    from repro.engine.workspace import Workspace
    from repro.formats import convert
    from repro.matrices import read_matrix_market

    coo = read_matrix_market(args.matrix)
    m = convert(coo, _resolve_format(args.format))
    print(
        f"{args.matrix} as {m.name}: {m.nrows} x {m.ncols}, nnz = {m.nnz}",
        file=out,
    )
    for op in ("spmv", "spmm"):
        specs = kernels_for(m, op)
        names = [s.name for s in specs] or ["(per-column spmv loop)"]
        print(f"{op} candidates : {names}", file=out)
    tr = autotune(m, Workspace(), use_cache=False)
    if tr.timings:
        best = tr.best_seconds
        for name, secs in sorted(tr.timings.items(), key=lambda kv: kv[1]):
            mark = "  <- chosen" if name == tr.variant else ""
            print(
                f"  {name:16s} {secs * 1e6:10.1f} us "
                f"({secs / best:5.2f}x){mark}",
                file=out,
            )
    print(f"tuned variant  : {tr.variant}", file=out)
    return 0


def _resolve_format(name: str) -> str:
    """Case/punctuation-insensitive format lookup (``pjds`` -> ``pJDS``)."""
    from repro.formats import available_formats

    canon = {n.lower().replace("-", "").replace("_", ""): n for n in available_formats()}
    key = name.lower().replace("-", "").replace("_", "")
    if key not in canon:
        raise SystemExit(
            f"unknown format {name!r}; available: {available_formats()}"
        )
    return canon[key]


def _serve_fleet(args, out) -> int:
    """Fleet branch of ``repro serve``: N shards behind the router.

    Matrices are materialised up front (row blocks have to be cut and
    shipped to shards), served as CRS with the deterministic
    ``csr_scipy`` kernel so sharded answers stay bitwise-equal to a
    single server's.  ``--slo`` additionally wires the fleet SLO
    monitor and the worker-pool autoscaler.
    """
    from repro.formats import convert
    from repro.matrices import generate
    from repro.serve import (
        AutoscalePolicy,
        Autoscaler,
        Fleet,
        FleetRouter,
        run_http_server,
    )

    fleet = Fleet(
        args.fleet,
        mode=args.fleet_mode,
        workers=args.workers,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        max_queue=args.max_queue,
        policy=args.policy,
    )
    hedge_ms = args.hedge_ms if args.replicas > 1 else None
    router = FleetRouter(
        fleet,
        replicas=args.replicas,
        blocks=args.blocks,
        seed=args.seed,
        hedge_delay_ms=hedge_ms,
    )
    for spec in args.matrix or ["sAMG"]:
        name, _, key = spec.partition("=")
        router.register(
            name, convert(generate(key or name, scale=args.scale,
                                   seed=args.seed), "CRS")
        )
    for path in args.mtx:
        from pathlib import Path

        from repro.matrices import read_matrix_market

        router.register(
            Path(path).stem, convert(read_matrix_market(path), "CRS")
        )
    monitor = None
    if args.slo:
        from repro.obs.slo import SLOMonitor, default_fleet_slos

        monitor = SLOMonitor(
            default_fleet_slos(p99_latency_s=args.slo_p99_ms / 1e3)
        )
        monitor.start()
        scaler = Autoscaler(
            router,
            monitor=monitor,
            policy=AutoscalePolicy(
                min_workers=max(1, args.workers),
                max_workers=max(args.workers, 4 * args.workers),
            ),
        )
        scaler.start()
        router.attach_autoscaler(scaler, monitor)
        print(
            f"fleet SLO monitor + autoscaler on "
            f"(p99 < {args.slo_p99_ms:g} ms): GET /sloz",
            file=out,
        )
    print(
        f"fleet: {args.fleet} {args.fleet_mode} shard(s), "
        f"replicas={args.replicas}, "
        f"blocks={args.blocks or args.fleet}/matrix, "
        f"hedge={'off' if hedge_ms is None else f'{hedge_ms:g}ms'} "
        f"— GET /fleetz",
        file=out,
    )
    return run_http_server(router, args.host, args.port, out=out, slo=monitor)


def cmd_serve(args, out) -> int:
    """``repro serve --port N``: boot the HTTP serving front-end.

    Registers the requested suite matrices (lazy: assembled + autotuned
    on first request), builds the micro-batching scheduler with the
    given admission-control policy, and serves ``/v1/spmv``,
    ``/v1/solve``, ``/healthz`` and ``/statz`` until interrupted.
    With ``--fleet N`` the backend is N sharded servers behind the
    scatter/gather :class:`~repro.serve.router.FleetRouter` instead
    (adds ``/fleetz``; see ``repro fleet status``).
    """
    from repro import obs
    from repro.serve import Client, MatrixRegistry, SpMVServer, run_http_server

    if args.obs or args.slo:
        obs.enable()
    if args.fleet:
        return _serve_fleet(args, out)
    budget = None if args.budget_mb is None else int(args.budget_mb * 2**20)
    registry = MatrixRegistry(budget_bytes=budget)
    for spec in args.matrix or ["sAMG"]:
        name, _, key = spec.partition("=")
        registry.register_suite(
            name, key or name, fmt=_resolve_format(args.format),
            scale=args.scale, seed=args.seed,
        )
    for path in args.mtx:
        from pathlib import Path

        from repro.formats import convert
        from repro.matrices import read_matrix_market

        coo = read_matrix_market(path)
        registry.register(
            Path(path).stem, matrix=convert(coo, _resolve_format(args.format))
        )
    server = SpMVServer(
        registry,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        max_queue=args.max_queue,
        policy=args.policy,
        workers=args.workers,
    )
    slo = None
    if args.slo:
        from repro.obs.slo import SLOMonitor, default_serve_slos

        slo = SLOMonitor(
            default_serve_slos(p99_latency_s=args.slo_p99_ms / 1e3)
        )
        slo.start()
        print(
            f"SLO monitor on (p99 < {args.slo_p99_ms:g} ms): GET /sloz",
            file=out,
        )
    print(
        f"serving {registry.names()} as {args.format} "
        f"(max_batch={args.max_batch}, window={args.max_delay_ms}ms, "
        f"policy={args.policy}, {args.workers} workers)",
        file=out,
    )
    return run_http_server(Client(server), args.host, args.port, out=out, slo=slo)


def cmd_fleet(args, out) -> int:
    """``repro fleet status --url ...``: render a running fleet's /fleetz.

    Prints per-shard liveness / queue depth / worker counts, the block
    placement of every registered matrix, and the autoscaler's recent
    decisions.  ``--json`` dumps the raw payload instead.
    """
    import json as _json
    import urllib.error
    import urllib.request

    url = args.url.rstrip("/") + "/fleetz"
    try:
        with urllib.request.urlopen(url, timeout=args.timeout) as resp:
            payload = _json.load(resp)
    except urllib.error.HTTPError as exc:
        detail = ""
        try:
            detail = _json.load(exc).get("error", "")
        except Exception:  # noqa: BLE001 - body is best-effort
            pass
        print(f"fleet status failed: HTTP {exc.code} {detail}".rstrip(),
              file=out)
        return 1
    except OSError as exc:
        print(f"fleet status failed: cannot reach {url}: {exc}", file=out)
        return 1
    if args.json:
        print(_json.dumps(payload, indent=2, sort_keys=True), file=out)
        return 0

    req = payload.get("requests", {})
    print(
        f"fleet: {payload.get('nshards')} {payload.get('mode')} shard(s), "
        f"replicas={payload.get('replicas')}, "
        f"requests ok={req.get('ok', 0)} degraded={req.get('degraded', 0)} "
        f"partial={req.get('partial', 0)} error={req.get('error', 0)}, "
        f"hedges={payload.get('hedges', 0)} "
        f"failovers={payload.get('failovers', 0)}",
        file=out,
    )
    print("shards:", file=out)
    for row in payload.get("shards", []):
        if row.get("alive"):
            print(
                f"  shard {row['shard']}: up, "
                f"queue={row.get('queue_depth', 0)}, "
                f"workers={row.get('live_workers', row.get('workers', '?'))}",
                file=out,
            )
        else:
            print(
                f"  shard {row['shard']}: DOWN ({row.get('reason', '?')})",
                file=out,
            )
    placements = payload.get("placements", {})
    if placements:
        print("placement:", file=out)
        for name in sorted(placements):
            pl = placements[name]
            blocks = " ".join(
                f"[{b['rows'][0]}:{b['rows'][1]})->"
                + ",".join(str(s) for s in b["replicas"])
                for b in pl.get("blocks", [])
            )
            print(f"  {name}: {blocks}", file=out)
    scaler = payload.get("autoscaler")
    if scaler:
        print(
            f"autoscaler: {scaler.get('evaluations', 0)} evaluations, "
            f"workers={scaler.get('workers', {})}",
            file=out,
        )
        for d in scaler.get("decisions", []):
            print(
                f"  shard {d['shard']}: {d['from']}->{d['to']} "
                f"({d['direction']}, {d['reason']})",
                file=out,
            )
    return 0


def _obs_trace(args, out) -> int:
    """``repro obs trace [<id>] --in FILE``: reconstruct a causal tree.

    Reads a span dump (the JSONL written by ``--jsonl-out``,
    ``repro chaos --trace-out`` or an instrumented server) and renders
    the requested trace; ``--list`` (or omitting the id) indexes every
    trace in the dump instead.  Trace ids may be abbreviated to any
    unique prefix.
    """
    from repro import obs

    if not args.infile:
        print(
            "obs trace needs a span dump: pass --in FILE "
            "(write one with 'repro obs --jsonl-out FILE' or "
            "'repro chaos --trace-out FILE')",
            file=out,
        )
        return 2
    try:
        spans = obs.read_spans_jsonl(args.infile)
    except OSError as exc:
        print(f"cannot read span dump {args.infile}: {exc.strerror or exc}", file=out)
        return 2
    if not spans:
        print(f"no spans found in {args.infile}", file=out)
        return 2
    if args.list or not args.trace_id:
        rows = obs.list_traces(spans)
        print(f"{'trace':<18} {'root':<24} {'spans':>5} {'ms':>10} faults", file=out)
        for r in rows:
            print(
                f"{r['trace_id']:<18} {r['root']:<24} {r['spans']:>5} "
                f"{r['duration_s'] * 1e3:>10.3f} {r['faults'] or ''}",
                file=out,
            )
        print(f"{len(rows)} trace(s), {len(spans)} span(s)", file=out)
        return 0
    try:
        tid = obs.find_trace_id(args.trace_id, spans)
    except (KeyError, ValueError) as exc:
        print(str(exc.args[0] if exc.args else exc), file=out)
        return 2
    obs.render_trace(tid, spans, out=out)
    return 0


def _obs_top(args, out) -> int:
    """``repro obs top``: roofline attribution table for the suite.

    Runs instrumented SpMV over the requested generator matrices and
    formats, then prints the per-(matrix, format, variant) attribution
    table: achieved GF/s and GB/s against the Eq. (1) code-balance
    prediction at the measured host bandwidth.
    """
    from repro import obs
    from repro.engine import bind
    from repro.formats import convert
    from repro.matrices import generate

    matrices = [m.strip() for m in args.matrices.split(",") if m.strip()]
    formats = [f.strip() for f in args.formats.split(",") if f.strip()]
    was_enabled = obs.enabled()
    obs.enable()
    obs.profile.reset_profile()
    obs.profile.set_sample_every(1)
    try:
        rng = np.random.default_rng(args.seed)
        for key in matrices:
            coo = generate(key, scale=args.scale, seed=args.seed)
            x = rng.normal(size=coo.ncols)
            for fname in formats:
                m = convert(coo, _resolve_format(fname))
                b = bind(m, label=key, tune=not args.no_tune)
                for _ in range(args.reps):
                    b.spmv(x)
        print(
            obs.profile.render_table(
                bandwidth_gbs=args.bandwidth, limit=args.limit
            ),
            file=out,
        )
    finally:
        if not was_enabled:
            obs.disable()
    return 0


def cmd_obs(args, out) -> int:
    """Run an instrumented workload; dump trace + metrics artifacts.

    Exercises every instrumented layer once — the GPU execution model
    (``spmv_bytes_total``, ``cache_hit_ratio``), the real threaded
    ``distributed_spmv`` (``rank.*`` spans, ``halo_bytes_sent``), the
    simulated Fig. 4 task-mode timeline (one span per rank/resource)
    and a CG solve (residual gauges) — then writes the Chrome
    trace-event JSON and Prometheus text artifacts.

    ``repro obs trace`` and ``repro obs top`` dispatch to the trace
    reconstructor and the attribution profiler instead.
    """
    sub = getattr(args, "obs_command", None)
    if sub == "trace":
        return _obs_trace(args, out)
    if sub == "top":
        return _obs_top(args, out)

    from repro import obs
    from repro.distributed import (
        DIRAC_IB,
        KernelCost,
        build_plan,
        distributed_spmv,
        partition_rows,
        simulate_mode,
        stats_from_plan,
    )
    from repro.formats import CSRMatrix, convert
    from repro.gpu import C2050, C2070, simulate_spmv
    from repro.matrices import generate, poisson2d
    from repro.solvers import conjugate_gradient

    fmt = _resolve_format(args.format)
    was_enabled = obs.enabled()
    obs.enable()
    obs.reset_all()
    try:
        coo = generate(args.matrix, scale=args.scale, seed=args.seed)

        # 1. GPU execution model -> spmv_* metrics incl. cache_hit_ratio
        with obs.span("simulate_spmv", format=fmt, matrix=args.matrix):
            rep = simulate_spmv(
                convert(coo, fmt), C2070(ecc=True).scaled(args.scale)
            )
        print(
            f"kernel model [{fmt}]: {rep.gflops:.1f} GF/s, "
            f"balance {rep.code_balance:.2f} B/F, "
            f"cache hit ratio {rep.cache_hit_ratio:.2f}",
            file=out,
        )

        # 2. real threaded exchange -> rank.* spans + halo_bytes_sent
        csr = CSRMatrix.from_coo(coo)
        part = partition_rows(
            csr.nrows, args.nodes, row_weights=csr.row_lengths()
        )
        plan = build_plan(csr, part)
        x = np.random.default_rng(args.seed).normal(size=csr.nrows)
        y = distributed_spmv(plan, x)
        print(
            f"distributed spMVM on {args.nodes} ranks: "
            f"||y|| = {float(np.linalg.norm(y)):.6g}",
            file=out,
        )

        # 3. simulated Fig. 4 timeline -> one span per rank per resource
        stats = stats_from_plan(plan, itemsize=8, workload_scale=args.scale)
        res = simulate_mode(
            args.mode, stats, C2050(ecc=True), DIRAC_IB, KernelCost.from_alpha(0.25)
        )
        print(
            f"{args.mode} mode simulation: {res.gflops:.1f} GF/s "
            f"({res.iteration_seconds * 1e6:.1f} us/iteration)",
            file=out,
        )

        # 4. solver convergence gauges
        pois = convert(poisson2d(24, 24), fmt)
        cg = conjugate_gradient(pois, np.ones(pois.nrows, dtype=pois.dtype))
        print(
            f"CG on poisson2d(24,24): {cg.iterations} iterations, "
            f"residual {cg.residual_norm:.3e}",
            file=out,
        )

        spans = obs.get_tracer().finished()
        families = obs.get_registry().families()
        print(
            f"recorded {len(spans)} spans, {len(families)} metric families",
            file=out,
        )
        if args.out:
            n_events = obs.write_chrome_trace(args.out)
            print(
                f"wrote {n_events} trace events to {args.out} "
                "(open in chrome://tracing or ui.perfetto.dev)",
                file=out,
            )
        if args.metrics_out:
            text = obs.prometheus_text()
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(
                f"wrote {len(text.splitlines())} metric lines to "
                f"{args.metrics_out}",
                file=out,
            )
        if args.jsonl_out:
            n_lines = obs.write_jsonl(args.jsonl_out)
            print(f"wrote {n_lines} JSONL records to {args.jsonl_out}", file=out)
    finally:
        if not was_enabled:
            obs.disable()
    return 0


def cmd_chaos(args, out) -> int:
    """Replay a named fault plan against the real runtime; report recovery.

    Two drill phases, selected by the layers present in the plan:

    * **distributed** — run ``distributed_spmv`` under injection with a
      retry policy and assert the recovered result is bitwise identical
      to a fault-free run of the same plan;
    * **serve** — run an :class:`~repro.serve.scheduler.SpMVServer`
      under worker/registry faults with a retrying client and assert
      every request still gets the right answer (degraded mode counts
      as success — that is its job).

    Exit code 0 means every injected fault was recovered from.
    """
    import json as _json

    from repro import obs
    from repro.distributed import build_plan, distributed_spmv, partition_rows
    from repro.faults import FaultPlan, RetryPolicy
    from repro.formats import CSRMatrix
    from repro.matrices import generate

    try:
        plan = FaultPlan.named(
            args.plan, nranks=args.nodes, workers=args.workers,
            delay_s=args.delay_ms / 1e3,
        )
    except ValueError:
        try:
            seed = int(args.plan)
        except ValueError:
            from repro.scenarios.specs import axis_values

            print(
                f"unknown plan {args.plan!r}; known: "
                f"{sorted(axis_values('fault-plan'))} or an integer seed",
                file=out,
            )
            return 2
        plan = FaultPlan.generate(
            seed, nranks=args.nodes, workers=args.workers,
            delay_s=args.delay_ms / 1e3,
        )
    plan.validate()
    print(plan.describe(), file=out)

    was_enabled = obs.enabled()
    obs.enable()
    obs.reset_all()
    injector = plan.injector()
    retry = RetryPolicy(max_attempts=args.attempts, base_delay_s=0.0)
    ok = True
    try:
        layers = {ev.layer for ev in plan.events}
        coo = generate(args.matrix, scale=args.scale, seed=args.seed)
        csr = CSRMatrix.from_coo(coo)

        if layers & {"distributed", "sim", "engine"} or not layers:
            part = partition_rows(
                csr.nrows, args.nodes, row_weights=csr.row_lengths()
            )
            comm_plan = build_plan(csr, part)
            x = np.random.default_rng(args.seed).normal(size=csr.nrows)
            y_ref = distributed_spmv(
                comm_plan, x, backend=args.backend, mode=args.mode,
                timeout=args.timeout,
            )
            try:
                y = distributed_spmv(
                    comm_plan, x, backend=args.backend, mode=args.mode,
                    timeout=args.timeout, faults=injector, retry=retry,
                )
                identical = bool(np.array_equal(y, y_ref))
                print(
                    f"distributed drill [{args.backend}/{args.mode}]: "
                    + ("recovered, bitwise-identical result"
                       if identical else "RESULT DIVERGED"),
                    file=out,
                )
                ok &= identical
            except Exception as exc:
                print(
                    f"distributed drill [{args.backend}/{args.mode}]: "
                    f"UNRECOVERED {type(exc).__name__}: {exc}",
                    file=out,
                )
                ok = False

        if "serve" in layers:
            from repro.serve import Client, MatrixRegistry, SpMVServer

            registry = MatrixRegistry(faults=injector)
            registry.register("chaos", matrix=csr, variant="csr_scipy")
            server = SpMVServer(
                registry, workers=args.workers, max_delay_ms=0.2,
                faults=injector,
            )
            client = Client(server, retry=retry)
            rng = np.random.default_rng(args.seed)
            ref_reg = MatrixRegistry()
            ref_reg.register("chaos", matrix=csr, variant="csr_scipy")
            with ref_reg.acquire("chaos") as lease:
                bound = lease.clone_for("cli")
                served_ok = 0
                for _ in range(args.requests):
                    xs = rng.normal(size=csr.ncols)
                    try:
                        ys = client.spmv("chaos", xs, timeout=args.timeout)
                        if np.array_equal(ys, bound.spmv(xs).copy()):
                            served_ok += 1
                    except Exception as exc:
                        print(
                            f"serve drill: request failed "
                            f"{type(exc).__name__}: {exc}",
                            file=out,
                        )
            stats = server.stats()
            server.close()
            degraded = " (degraded mode)" if stats["degraded"] else ""
            print(
                f"serve drill: {served_ok}/{args.requests} requests "
                f"correct{degraded}, worker deaths: "
                f"{len(stats['worker_deaths'])}",
                file=out,
            )
            ok &= served_ok == args.requests

        if args.trace_out:
            n_lines = obs.write_jsonl(args.trace_out)
            print(
                f"wrote {n_lines} span/metric records to {args.trace_out}",
                file=out,
            )
        faulted = sorted(
            {
                s.trace_id
                for s in obs.get_tracer().finished()
                if s.trace_id
                and (s.name.startswith("fault.") or "fault" in s.attrs)
            }
        )
        if faulted:
            shown = ", ".join(faulted[:4])
            more = f" (+{len(faulted) - 4} more)" if len(faulted) > 4 else ""
            print(f"faulted trace(s): {shown}{more}", file=out)
            if args.trace_out:
                print(
                    f"inspect: repro obs trace {faulted[0]} "
                    f"--in {args.trace_out}",
                    file=out,
                )

        report = injector.report()
        report["unfired"] = [ev.describe() for ev in injector.unfired()]
        def _counter_total(name: str) -> float:
            fam = obs.get_registry().get(name)
            if fam is None:
                return 0.0
            return sum(child.value for _, child in fam.samples())

        counters = {
            name: _counter_total(name)
            for name in (
                "faults_injected_total",
                "faults_retries_total",
                "faults_recovered_total",
            )
        }
        report["obs_counters"] = counters
        report["recovered_all"] = ok
        if args.json:
            print(_json.dumps(report, indent=2), file=out)
        else:
            print(
                f"injected {report['injected']} fault(s) "
                f"({', '.join(f'{k} x{v}' for k, v in sorted(report['injected_by_kind'].items()))}); "
                f"retried {report['retried']}, recovered {report['recovered']}",
                file=out,
            )
            if report["unfired"]:
                print(
                    f"unfired events ({len(report['unfired'])}):", file=out
                )
                for line in report["unfired"]:
                    print(f"  {line}", file=out)
            print(f"obs counters: {counters}", file=out)
            print(
                "verdict: "
                + ("all faults recovered" if ok else "UNRECOVERED FAULTS"),
                file=out,
            )
    finally:
        if not was_enabled:
            obs.disable()
    return 0 if ok else 1


def cmd_matrix(args, out) -> int:
    """``repro matrix expand|run``: the declarative scenario matrix.

    ``expand`` prints the deduplicated, seed-deterministic cell rows a
    suite/wave expands to (``--json`` output is byte-identical across
    runs with the same seed — CI diffs it).  ``run`` executes each
    cell through its executor binding and gates on the per-cell
    status: exit 0 when nothing failed (skips are fine — they mean
    the cell is not runnable on this host), 1 when any cell failed.
    """
    import json as _json

    from repro.scenarios import expand_suite, run_cell, suite_names

    suites = [args.suite] if args.suite else list(suite_names())
    cells = []
    for s in suites:
        cells.extend(expand_suite(s, wave=args.wave, seed=args.seed))

    if args.matrix_command == "expand":
        rows = [c.to_row() for c in cells]
        if args.json:
            text = _json.dumps(rows, sort_keys=True, indent=2)
            if args.out:
                with open(args.out, "w") as fh:
                    fh.write(text + "\n")
                print(f"wrote {len(rows)} cells to {args.out}", file=out)
            else:
                print(text, file=out)
        else:
            print(f"{'cell_id':26s} {'executor':16s} axes", file=out)
            for c in cells:
                print(f"{c.cell_id:26s} {c.executor:16s} {c.label()}", file=out)
            print(
                f"{len(rows)} cells ({args.wave} wave, "
                f"suites: {', '.join(suites)}, seed {args.seed})",
                file=out,
            )
        return 0

    rows = []
    counts = {"ok": 0, "skip": 0, "fail": 0}
    for c in cells:
        row = run_cell(c, scale=args.scale, seed=args.seed)
        rows.append(row)
        counts[row["status"]] = counts.get(row["status"], 0) + 1
        detail = row.get("error") or row.get("reason") or row.get("verdict", "")
        print(
            f"[{row['status']:4s}] {c.cell_id:26s} {c.label()}"
            + (f"  ({detail})" if detail else ""),
            file=out,
        )
    if args.out:
        artifact = {
            "wave": args.wave,
            "seed": args.seed,
            "scale": args.scale,
            "suites": suites,
            "counts": counts,
            "cells": rows,
        }
        with open(args.out, "w") as fh:
            fh.write(_json.dumps(artifact, sort_keys=True, indent=2) + "\n")
        print(f"wrote per-cell report to {args.out}", file=out)
    print(
        f"{len(rows)} cells: {counts['ok']} ok, "
        f"{counts['skip']} skipped, {counts['fail']} failed",
        file=out,
    )
    return 1 if counts["fail"] else 0


# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="pJDS spMVM reproduction: run the paper's experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, scale_default=64):
        p.add_argument("--scale", type=int, default=scale_default,
                       help="matrix shrink factor vs paper size")
        p.add_argument("--seed", type=int, default=0)

    common(sub.add_parser("suite", help="suite matrix statistics"))
    common(sub.add_parser("table1", help="Table I performance grid"))
    common(sub.add_parser("fig3", help="row-length histograms"), 256)
    sub.add_parser("pcie", help="Eqs. (2)-(4) PCIe analysis")

    p5 = sub.add_parser("fig5", help="strong scaling series")
    common(p5, 32)
    p5.add_argument("--matrix", choices=("DLR1", "UHBR"), default="DLR1")

    psh = sub.add_parser("shootout", help="all formats on one matrix")
    common(psh, 128)
    psh.add_argument(
        "--matrix", choices=("DLR1", "DLR2", "HMEp", "sAMG", "UHBR"),
        default="sAMG",
    )

    pt = sub.add_parser("timeline", help="Fig. 4 event timeline")
    common(pt, 32)
    pt.add_argument("--nodes", type=int, default=4)
    pt.add_argument("--mode", choices=("vector", "naive", "task"), default="task")

    ps = sub.add_parser("spmv", help="run spMVM on a MatrixMarket file")
    ps.add_argument("matrix_file")
    ps.add_argument("--format", default="pJDS")
    ps.add_argument("--seed", type=int, default=0)
    ps.add_argument(
        "--parallel", type=int, default=0, metavar="N",
        help="run through the shared-memory backend with N row-block workers",
    )
    ps.add_argument(
        "--parallel-mode", choices=("vector", "task"), default="vector",
        help="worker kernel split (vector = bitwise-matches serial)",
    )

    pe = sub.add_parser("engine", help="execution-engine utilities")
    esub = pe.add_subparsers(dest="engine_command", required=True)
    pet = esub.add_parser(
        "tune", help="autotune kernel variants for a generator matrix"
    )
    common(pet)
    pet.add_argument(
        "matrix", choices=("DLR1", "DLR2", "HMEp", "sAMG", "UHBR"),
        help="generator matrix to tune on",
    )
    pet.add_argument("--format", default="pJDS",
                     help="storage format (case-insensitive, e.g. pjds)")
    pet.add_argument("--reps", type=int, default=5,
                     help="timing repetitions per candidate")
    pet.add_argument("--no-cache", action="store_true",
                     help="ignore and do not write the tuner cache")
    pet.add_argument(
        "--prune", action=argparse.BooleanOptionalAction, default=False,
        help="Eq.-1 model pruning: time only the --top-k "
             "fastest-predicted candidates",
    )
    pet.add_argument("--top-k", type=int, default=2,
                     help="candidates kept by --prune (default 2)")
    pet.add_argument(
        "--explain", action="store_true",
        help="print the model's prediction table next to the timings",
    )

    pop = sub.add_parser(
        "ops", help="central kernel registry introspection"
    )
    osub = pop.add_subparsers(dest="ops_command", required=True)
    pol = osub.add_parser(
        "list", help="list registered (format, op, variant) kernels"
    )
    pol.add_argument(
        "--matrix", default=None, metavar="PATH",
        help="MatrixMarket file: show the rosters resolving for this "
             "instance plus the autotuned pick",
    )
    pol.add_argument("--format", default="pJDS",
                     help="storage format for --matrix (case-insensitive)")

    pv = sub.add_parser(
        "serve", help="HTTP SpMV/solver server with micro-batching"
    )
    common(pv)
    pv.add_argument("--host", default="127.0.0.1")
    pv.add_argument("--port", type=int, default=8000,
                    help="listen port (0 picks a free one)")
    pv.add_argument(
        "--matrix", action="append", default=None, metavar="NAME[=KEY]",
        help="suite matrix to serve (repeatable; default: sAMG). "
             "NAME=KEY serves generator KEY under the name NAME",
    )
    pv.add_argument("--mtx", action="append", default=[], metavar="PATH",
                    help="MatrixMarket file to serve under its stem name")
    pv.add_argument("--format", default="pJDS",
                    help="storage format (case-insensitive, e.g. pjds)")
    pv.add_argument("--max-batch", type=int, default=16,
                    help="most vectors coalesced into one spmm call")
    pv.add_argument("--max-delay-ms", type=float, default=1.0,
                    help="batching window: longest wait for batch-mates")
    pv.add_argument("--max-queue", type=int, default=256,
                    help="admission bound on queued requests")
    pv.add_argument("--policy", choices=("block", "reject", "shed-oldest"),
                    default="block", help="backpressure policy at the bound")
    pv.add_argument("--workers", type=int, default=2,
                    help="batch-executing worker threads")
    pv.add_argument("--budget-mb", type=float, default=None,
                    help="registry byte budget (LRU-evicts idle matrices)")
    pv.add_argument("--obs", action="store_true",
                    help="enable repro.obs (spans + /statz?format=prometheus)")
    pv.add_argument("--slo", action="store_true",
                    help="run the SLO burn-rate monitor (implies --obs; "
                         "adds GET /sloz and the slo section of /statz)")
    pv.add_argument("--slo-p99-ms", type=float, default=500.0,
                    help="p99 latency objective for the default serve SLOs")
    pv.add_argument("--fleet", type=int, default=0, metavar="N",
                    help="run N server shards behind the scatter/gather "
                         "router instead of one in-process server")
    pv.add_argument("--replicas", type=int, default=1, metavar="R",
                    help="copies of each row block across shards "
                         "(fleet mode; R <= N)")
    pv.add_argument("--fleet-mode", choices=("process", "inproc"),
                    default="process",
                    help="shard transport: separate OS processes or "
                         "threads in this process")
    pv.add_argument("--blocks", type=int, default=None,
                    help="row blocks per matrix (fleet mode; default: "
                         "one per shard)")
    pv.add_argument("--hedge-ms", type=float, default=20.0,
                    help="router hedge delay before racing a second "
                         "replica (fleet mode with --replicas >= 2)")

    pf = sub.add_parser(
        "fleet", help="inspect a running serve fleet over HTTP"
    )
    fsub = pf.add_subparsers(dest="fleet_command", required=True)
    pfs = fsub.add_parser(
        "status", help="per-shard placement, queue depth, autoscaler log"
    )
    pfs.add_argument("--url", default="http://127.0.0.1:8000",
                     help="base URL of the serve front-end")
    pfs.add_argument("--timeout", type=float, default=5.0)
    pfs.add_argument("--json", action="store_true",
                     help="print the raw /fleetz payload")

    from repro.scenarios.specs import axis_values, suite_names

    pm = sub.add_parser(
        "matrix", help="declarative scenario matrix: expand or run cells"
    )
    msub = pm.add_subparsers(dest="matrix_command", required=True)
    for name, hlp in (
        ("expand", "print the deduplicated cell rows a wave expands to"),
        ("run", "execute every cell through its executor; gate per cell"),
    ):
        pmx = msub.add_parser(name, help=hlp)
        pmx.add_argument("--suite", choices=suite_names(), default=None,
                         help="one suite (default: all)")
        pmx.add_argument("--wave", choices=("smoke", "full"), default="smoke",
                         help="smoke = seed-deterministic subset of full")
        pmx.add_argument("--seed", type=int, default=0,
                         help="expansion seed (wave sampling)")
        pmx.add_argument("--out", default=None, metavar="PATH",
                         help="write the JSON rows/report to PATH")
        if name == "expand":
            pmx.add_argument("--json", action="store_true",
                             help="emit cells as JSON (byte-stable)")
        else:
            pmx.add_argument("--scale", type=int, default=64,
                             help="suite-matrix generator scale")

    pc = sub.add_parser(
        "chaos", help="replay a fault plan against the runtime; report recovery"
    )
    common(pc)
    pc.add_argument(
        "--plan", default="smoke",
        help="named fault plan "
             f"({'/'.join(axis_values('fault-plan'))}) "
             "or an integer seed for a generated plan",
    )
    pc.add_argument("--backend", choices=axis_values("backend"),
                    default="threads", help="distributed runtime backend")
    pc.add_argument("--mode", choices=axis_values("mode"), default="vector",
                    help="runtime schedule (task overlaps local kernel)")
    pc.add_argument(
        "--matrix", choices=axis_values("suite-matrix"),
        default="sAMG",
    )
    pc.add_argument("--nodes", type=int, default=4, help="ranks in the drill")
    pc.add_argument("--workers", type=int, default=2,
                    help="serve workers (serve-layer plans)")
    pc.add_argument("--requests", type=int, default=8,
                    help="client requests in the serve drill")
    pc.add_argument("--attempts", type=int, default=3,
                    help="retry policy: attempts per failed unit")
    pc.add_argument("--timeout", type=float, default=5.0,
                    help="halo-exchange / request timeout (s)")
    pc.add_argument("--delay-ms", type=float, default=20.0,
                    help="injected delay for slow/late faults")
    pc.add_argument("--json", action="store_true",
                    help="print the recovery report as JSON")
    pc.add_argument("--trace-out", default=None, metavar="PATH",
                    help="write the drill's spans as JSONL for "
                         "'repro obs trace --in PATH'")

    po = sub.add_parser(
        "obs", help="instrumented run: dump Chrome trace + Prometheus metrics"
    )
    common(po, 256)
    po.add_argument("--format", default="pJDS",
                    help="storage format (case-insensitive, e.g. pjds)")
    po.add_argument(
        "--matrix", choices=axis_values("suite-matrix"),
        default="sAMG",
    )
    po.add_argument("--nodes", type=int, default=4)
    po.add_argument("--mode", choices=("vector", "naive", "task"), default="task")
    po.add_argument("--out", default=None,
                    help="Chrome trace-event JSON output path")
    po.add_argument("--metrics-out", default=None,
                    help="Prometheus text exposition output path")
    po.add_argument("--jsonl-out", default=None,
                    help="JSONL (spans + metrics) output path")
    # subcommands ride alongside the legacy flat flags: a bare
    # ``repro obs --out ...`` still runs the instrumented workload
    obsub = po.add_subparsers(dest="obs_command", required=False)
    pot = obsub.add_parser(
        "trace", help="reconstruct one request's causal tree from a span dump"
    )
    pot.add_argument("trace_id", nargs="?", default=None,
                     help="trace id (any unique prefix); omit to list")
    pot.add_argument("--in", dest="infile", default=None, metavar="FILE",
                     help="JSONL span dump to read (required)")
    pot.add_argument("--list", action="store_true",
                     help="index every trace in the dump")
    ptop = obsub.add_parser(
        "top", help="roofline attribution table (achieved vs Eq. 1 model)"
    )
    ptop.add_argument("--matrices", default="DLR1,DLR2,HMEp,sAMG,UHBR",
                      help="comma-separated generator matrices")
    ptop.add_argument("--formats", default="CRS,pJDS",
                      help="comma-separated storage formats")
    ptop.add_argument("--reps", type=int, default=20,
                      help="spmv repetitions per (matrix, format)")
    ptop.add_argument("--limit", type=int, default=None,
                      help="show only the top N rows by total time")
    ptop.add_argument("--bandwidth", type=float, default=None,
                      help="model bandwidth GB/s (default: measure host)")
    ptop.add_argument("--no-tune", action="store_true",
                      help="skip autotuning; use each format's default kernel")
    return parser


_COMMANDS = {
    "shootout": cmd_shootout,
    "suite": cmd_suite,
    "table1": cmd_table1,
    "fig3": cmd_fig3,
    "pcie": cmd_pcie,
    "fig5": cmd_fig5,
    "timeline": cmd_timeline,
    "spmv": cmd_spmv,
    "engine": cmd_engine,
    "ops": cmd_ops,
    "obs": cmd_obs,
    "serve": cmd_serve,
    "fleet": cmd_fleet,
    "chaos": cmd_chaos,
    "matrix": cmd_matrix,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out or sys.stdout)
