"""Declarative scenario matrices: one combinator engine behind
tests, chaos drills, benches, and CI.

* :mod:`repro.scenarios.matrix` — the ``Base``/``Sum``/``Product``/
  ``Filter``/``Subset`` algebra and the :class:`ScenarioCell` row type;
* :mod:`repro.scenarios.fixtures` — named matrix classes the specs
  reference (shared with the test and bench fixtures);
* :mod:`repro.scenarios.specs` — the axes and suites (the single
  source of truth for what exists);
* :mod:`repro.scenarios.executors` — how a cell runs.

See ``docs/scenarios.md`` for the axis/wave semantics and
``repro matrix expand|run`` for the CLI surface.
"""

from repro.scenarios.executors import (
    EXECUTORS,
    apply_env,
    executor_names,
    register_executor,
    run_cell,
)
from repro.scenarios.matrix import (
    Base,
    Filter,
    Product,
    ScenarioCell,
    Subset,
    Sum,
    canonical_key,
    combo_digest,
    expand,
)
from repro.scenarios.specs import (
    AXES,
    BENCH_FORMATS,
    PLAN_EXPECTATIONS,
    SMOKE_SIZES,
    SUITES,
    WAVES,
    axis_values,
    expand_suite,
    suite_names,
)

__all__ = [
    "AXES",
    "BENCH_FORMATS",
    "Base",
    "EXECUTORS",
    "Filter",
    "PLAN_EXPECTATIONS",
    "Product",
    "SMOKE_SIZES",
    "SUITES",
    "ScenarioCell",
    "Subset",
    "Sum",
    "WAVES",
    "apply_env",
    "axis_values",
    "canonical_key",
    "combo_digest",
    "executor_names",
    "expand",
    "expand_suite",
    "run_cell",
    "suite_names",
]
