"""Executor bindings: how one :class:`ScenarioCell` actually runs.

Each executor takes a cell's axes and returns a plain result dict —
``{"status": "ok" | "skip" | "fail", ...}`` — so the CLI, pytest
wrappers, and CI gates all consume the same rows.  ``ok`` means the
cell's invariant held (parity bitwise/allclose, chaos recovered or
exhausted as planned, serve/fleet round-trip bitwise); ``skip`` means
the cell is not runnable on this host (e.g. the compiled tier has no
kernels for that format); anything else is a failure.

Executors deliberately reuse the *same* entry points the hand-written
tests exercised — ``bind`` for parity, ``distributed_spmv`` for chaos,
``SpMVServer``/``Client`` for serve, ``Fleet``/``FleetRouter`` for
fleet — so a red cell points at the same code path the old suite
would have caught.
"""

from __future__ import annotations

import contextlib
import os
import time

import numpy as np

__all__ = [
    "EXECUTORS",
    "apply_env",
    "executor_names",
    "register_executor",
    "run_cell",
]

EXECUTORS = {}

#: registry tags -> kernel-tier family (checked in precedence order)
_COMPILED_TAGS = frozenset({"cnative", "numba"})


def register_executor(name: str):
    """Class decorator-free registration: ``@register_executor("x")``."""

    def deco(fn):
        EXECUTORS[name] = fn
        return fn

    return deco


def executor_names() -> tuple:
    return tuple(sorted(EXECUTORS))


@contextlib.contextmanager
def apply_env(env: dict):
    """Temporarily overlay ``env`` onto ``os.environ``."""
    saved = {k: os.environ.get(k) for k in env}
    os.environ.update({k: str(v) for k, v in env.items()})
    try:
        yield
    finally:
        for k, old in saved.items():
            if old is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = old


def run_cell(cell, *, scale: int = 64, seed: int = 0) -> dict:
    """Run one cell under its env overlay; return its JSON-ready row."""
    try:
        fn = EXECUTORS[cell.executor]
    except KeyError:
        raise KeyError(
            f"unknown executor {cell.executor!r}; known: {sorted(EXECUTORS)}"
        ) from None
    row = cell.to_row()
    # The compiled backend decides availability at import time from
    # REPRO_COMPILED_DISABLE; import it *before* the overlay so a
    # numpy-tier cell can't pin the compiled tier off for the whole
    # process.  In-process tier selection filters by registry tag; the
    # env overlay exists so an exported row reproduces the cell in a
    # fresh process with the same tier set.
    import repro.ops  # noqa: F401

    t0 = time.perf_counter()
    try:
        with apply_env(cell.env_dict):
            result = fn(
                cell.axes_dict, config=cell.config_dict, scale=scale, seed=seed
            )
    except Exception as exc:  # noqa: BLE001 - a cell must never kill the run
        result = {"status": "fail", "error": f"{type(exc).__name__}: {exc}"}
    row["seconds"] = round(time.perf_counter() - t0, 6)
    row.update(result)
    return row


# ---------------------------------------------------------------------------
# tier helpers
# ---------------------------------------------------------------------------

def tier_of(tags) -> str:
    """Map a kernel variant's registry tags to its tier family."""
    tags = set(tags)
    if tags & _COMPILED_TAGS:
        return "compiled"
    if "scipy" in tags:
        return "scipy"
    return "numpy"


def variants_in_tier(matrix, tier: str) -> list:
    """Roster variant names of ``matrix`` whose tags map to ``tier``."""
    from repro import ops

    out = []
    for name in ops.variant_names_for(matrix):
        if tier_of(ops.get_variant(matrix, name).tags) == tier:
            out.append(name)
    return out


# ---------------------------------------------------------------------------
# parity-check: every roster variant vs the dense reference
# ---------------------------------------------------------------------------

@register_executor("parity-check")
def parity_check(axes, *, config, scale, seed):
    from repro.engine import bind
    from repro.formats import convert
    from repro.scenarios.fixtures import materialize

    coo = materialize(axes["matrix-class"], scale=scale, seed=seed)
    m = convert(coo, axes["format"])
    variants = variants_in_tier(m, axes["kernel-tier"])
    if not variants:
        return {
            "status": "skip",
            "reason": f"no {axes['kernel-tier']} variants for {axes['format']}",
        }
    dense = coo.todense()
    x = np.random.default_rng(seed + 17).standard_normal(coo.shape[1])
    ref = dense @ x
    checked = []
    for name in variants:
        y = bind(m, tune=False, variant=name).spmv(x)
        np.testing.assert_allclose(y, ref, rtol=1e-10, atol=1e-12)
        checked.append(name)
    return {"status": "ok", "variants": checked}


# ---------------------------------------------------------------------------
# chaos-drill: named plan through distributed_spmv, verdict per plan
# ---------------------------------------------------------------------------

def _fault_injector(plan_name: str, *, nranks: int, config: dict):
    """Injector for a named composite plan or a ``one:<kind>`` drill."""
    from repro.faults import FaultEvent, FaultPlan

    if plan_name.startswith("one:"):
        kind = plan_name[len("one:"):]
        target = dict(config.get("target", ()))
        delay = 0.01 if kind in ("halo_delay", "slow_worker") else 0.0
        plan = FaultPlan(
            (FaultEvent(kind, 0.1, target=target, delay_s=delay),),
            name=plan_name,
        )
    else:
        plan = FaultPlan.named(plan_name, nranks=nranks, delay_s=0.01)
    return plan.injector()


@register_executor("chaos-drill")
def chaos_drill(axes, *, config, scale, seed):
    from repro.distributed import build_plan, distributed_spmv, partition_rows
    from repro.faults import RetryExhausted, RetryPolicy
    from repro.formats import CSRMatrix
    from repro.scenarios.fixtures import random_coo

    nparts = 4
    csr = CSRMatrix.from_coo(random_coo(72, seed=161, max_row=9))
    part = partition_rows(csr.nrows, nparts, row_weights=csr.row_lengths())
    plan = build_plan(csr, part)
    x = np.random.default_rng(3).normal(size=plan.ncols)
    y_ref = distributed_spmv(plan, x, mode=axes["mode"])

    inj = _fault_injector(axes["fault-plan"], nranks=nparts, config=config)
    retry = RetryPolicy(max_attempts=3)
    timeout = 4.0 if axes["backend"] == "processes" else 2.0
    expect = config.get("expect", "recover")
    try:
        y = distributed_spmv(
            plan, x, backend=axes["backend"], mode=axes["mode"],
            faults=inj, retry=retry, timeout=timeout,
        )
    except RetryExhausted as exc:
        if expect != "exhaust":
            return {"status": "fail", "error": f"unexpected exhaustion: {exc}"}
        return {
            "status": "ok",
            "verdict": "exhausted as planned",
            "attempts": exc.attempts,
        }
    if expect == "exhaust":
        return {"status": "fail", "error": "plan was expected to exhaust"}
    if not np.array_equal(y, y_ref):
        return {"status": "fail", "error": "recovered result not bitwise"}
    return {
        "status": "ok",
        "verdict": "recovered bitwise",
        "injected": inj.injected,
    }


# ---------------------------------------------------------------------------
# serve-roundtrip: policy x fault plan x tracing through SpMVServer
# ---------------------------------------------------------------------------

@register_executor("serve-roundtrip")
def serve_roundtrip(axes, *, config, scale, seed):
    from repro import obs
    from repro.engine import bind
    from repro.faults import FaultPlan, RetryPolicy
    from repro.formats import CSRMatrix
    from repro.scenarios.fixtures import random_coo
    from repro.serve import Client, MatrixRegistry, SpMVServer

    variant = "csr_scipy"  # stored-order delegate: spmv == spmm column
    csr = CSRMatrix.from_coo(random_coo(60, seed=3, max_row=7))
    traced = axes.get("trace") == "on"
    workers = 2
    faults = None
    if axes["fault-plan"] != "none":
        faults = FaultPlan.named(
            axes["fault-plan"], workers=workers
        ).injector()

    obs.reset_all()
    if traced:
        obs.enable()
    try:
        reg = MatrixRegistry()
        reg.register("A", matrix=csr, variant=variant)
        server = SpMVServer(
            reg, policy=axes["serve-policy"], workers=workers,
            max_delay_ms=1.0, faults=faults,
        )
        try:
            client = Client(server, retry=RetryPolicy(max_attempts=4))
            x = np.random.default_rng(seed).standard_normal(csr.ncols)
            y = client.spmv("A", x, timeout=30.0)
        finally:
            server.close()
        ref = bind(csr, tune=False, variant=variant).spmv(x)
        if not np.array_equal(y, ref):
            return {"status": "fail", "error": "round-trip not bitwise"}
        result = {"status": "ok", "verdict": "round-trip bitwise"}
        if traced:
            from repro.obs.spans import get_tracer

            spans = [s.name for s in get_tracer().finished()]
            if "serve.request" not in spans:
                return {"status": "fail", "error": "no serve.request span"}
            result["spans"] = len(spans)
        if faults is not None:
            result["injected"] = faults.injected
        return result
    finally:
        obs.disable()
        obs.reset_all()


# ---------------------------------------------------------------------------
# fleet-drill: shards x replicas x shard-kill plan through FleetRouter
# ---------------------------------------------------------------------------

@register_executor("fleet-drill")
def fleet_drill(axes, *, config, scale, seed):
    from repro.engine import bind
    from repro.faults import FaultPlan
    from repro.formats import convert
    from repro.matrices import poisson2d
    from repro.serve import Fleet, FleetRouter

    variant = "csr_scipy"
    csr = convert(poisson2d(24), "CRS")
    x = np.random.default_rng(seed).standard_normal(csr.ncols)
    ref = bind(csr, tune=False, variant=variant).spmv(x)
    shards, replicas = int(axes["shards"]), int(axes["replicas"])
    with Fleet(shards, mode="inproc", workers=1) as fleet:
        router = FleetRouter(fleet, replicas=replicas)
        router.register("A", csr, blocks=max(2, shards))
        injected = 0
        if axes["fault-plan"] != "none":
            inj = FaultPlan.named(
                axes["fault-plan"], nranks=shards, workers=1, delay_s=0.01
            ).injector()
            router.faults = inj
        y = router.spmv("A", x, timeout=30.0)
        if axes["fault-plan"] != "none":
            injected = inj.injected
    if not np.array_equal(y, ref):
        return {"status": "fail", "error": "sharded result not bitwise"}
    return {"status": "ok", "verdict": "sharded bitwise", "injected": injected}


# ---------------------------------------------------------------------------
# bench-probe: one timed spmv per (suite matrix, format, tier)
# ---------------------------------------------------------------------------

@register_executor("bench-probe")
def bench_probe(axes, *, config, scale, seed):
    from repro.engine import bind
    from repro.formats import convert
    from repro.scenarios.fixtures import materialize

    reps = int(config.get("reps", 3))
    coo = materialize(axes["suite-matrix"], scale=scale, seed=seed)
    m = convert(coo, axes["format"])
    variants = variants_in_tier(m, axes["kernel-tier"])
    if not variants:
        return {
            "status": "skip",
            "reason": f"no {axes['kernel-tier']} variants for {axes['format']}",
        }
    x = np.random.default_rng(seed).standard_normal(coo.shape[1])
    best = None
    for name in variants:
        bound = bind(m, tune=False, variant=name)
        bound.spmv(x)  # warm
        t0 = time.perf_counter()
        for _ in range(reps):
            bound.spmv(x)
        dt = (time.perf_counter() - t0) / reps
        gflops = 2.0 * coo.nnz / dt / 1e9 if dt > 0 else 0.0
        if best is None or gflops > best["gflops"]:
            best = {"variant": name, "gflops": round(gflops, 4)}
    return {"status": "ok", "nnz": int(coo.nnz), **best}
