"""Named matrix fixtures shared by tests, benchmarks, and scenario cells.

Before the scenario harness these generators were copied between
``tests/_test_common.py``, ``tests/test_ops.py`` and the bench
scripts; now there is one table.  A *matrix class* names a structural
shape (random square with empty rows, rectangular, one dense row,
0x0, a 2-D Poisson stencil); :func:`materialize` turns a name into a
COO matrix, and the scenario specs reference classes purely by name
so the run matrix stays data.

Paper-suite generator keys (``DLR1`` ... ``UHBR``) are also accepted:
they materialise through :func:`repro.matrices.generate` at the
caller's scale, which is how the bench suites reuse the same axis.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ALL_FORMATS",
    "GPU_FORMATS",
    "MATRIX_CLASSES",
    "PERMUTING_FORMATS",
    "SQUARE_ONLY_FORMATS",
    "empty_coo",
    "is_square_class",
    "materialize",
    "matrix_classes",
    "random_coo",
    "single_dense_row_coo",
]

#: every registered format that implements spmv (COO included)
ALL_FORMATS = (
    "COO",
    "CRS",
    "ELLPACK",
    "ELLPACK-R",
    "JDS",
    "pJDS",
    "SELL-C-sigma",
    "CMRS",
    "ARG-CSR",
)
#: formats with a GPU kernel trace
GPU_FORMATS = (
    "ELLPACK",
    "ELLPACK-R",
    "JDS",
    "pJDS",
    "SELL-C-sigma",
    "CMRS",
    "ARG-CSR",
)
#: formats that permute rows
PERMUTING_FORMATS = ("JDS", "pJDS", "SELL-C-sigma")
#: formats whose construction requires nrows == ncols
SQUARE_ONLY_FORMATS = ("JDS", "pJDS", "SELL-C-sigma")


def random_coo(
    n: int = 60,
    m: int | None = None,
    *,
    seed: int = 0,
    max_row: int = 12,
    min_row: int = 0,
    dtype=np.float64,
    empty_row_fraction: float = 0.1,
):
    """Random rectangular COO with a skewed row-length distribution."""
    from repro.formats import COOMatrix

    m = n if m is None else m
    rng = np.random.default_rng(seed)
    rows, cols, vals = [], [], []
    for i in range(n):
        if rng.random() < empty_row_fraction and min_row == 0:
            continue
        k = int(rng.integers(max(min_row, 1), max_row + 1))
        k = min(k, m)
        c = rng.choice(m, size=k, replace=False)
        rows.extend([i] * k)
        cols.extend(c.tolist())
        vals.extend(rng.normal(size=k).tolist())
    return COOMatrix(
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(vals, dtype=dtype),
        (n, m),
        sum_duplicates=False,
    )


def single_dense_row_coo(n: int = 20):
    """One fully dense row amid empties — the pJDS worst case."""
    from repro.formats import COOMatrix

    rng = np.random.default_rng(11)
    rows = np.full(n, 3, dtype=np.int64)
    cols = np.arange(n, dtype=np.int64)
    vals = rng.normal(size=n)
    # a couple of scattered extras so conversion paths see >1 row
    rows = np.concatenate([rows, [0, n - 1]])
    cols = np.concatenate([cols, [1, 2]])
    vals = np.concatenate([vals, [0.5, -0.25]])
    return COOMatrix(rows, cols, vals, (n, n))


def empty_coo():
    """The 0x0 degenerate matrix."""
    from repro.formats import COOMatrix

    z = np.empty(0, dtype=np.int64)
    return COOMatrix(z, z, np.empty(0), (0, 0))


def _poisson2d_coo():
    from repro.matrices import poisson2d

    return poisson2d(12, 13)


#: matrix class name -> (builder, square?)
MATRIX_CLASSES = {
    "random-square": (lambda: random_coo(60, seed=3), True),
    "rectangular": (lambda: random_coo(40, 70, seed=5), False),
    "single-dense-row": (lambda: single_dense_row_coo(), True),
    "empty": (lambda: empty_coo(), True),
    "empty-rows": (lambda: random_coo(50, seed=31, empty_row_fraction=0.4), True),
    "poisson2d": (lambda: _poisson2d_coo(), True),
}


def matrix_classes() -> tuple:
    """Sorted matrix-class names (the ``matrix-class`` scenario axis)."""
    return tuple(sorted(MATRIX_CLASSES))


def is_square_class(name: str) -> bool:
    """True when the class builds a square matrix (suite keys are square)."""
    if name in MATRIX_CLASSES:
        return MATRIX_CLASSES[name][1]
    return True


def materialize(name: str, *, scale: int = 64, seed: int = 0):
    """Build the COO matrix a class (or paper-suite key) names."""
    if name in MATRIX_CLASSES:
        return MATRIX_CLASSES[name][0]()
    from repro.matrices import SUITE_KEYS, generate

    if name in SUITE_KEYS:
        return generate(name, scale=scale, seed=seed)
    raise KeyError(
        f"unknown matrix class {name!r}; known: "
        f"{sorted(MATRIX_CLASSES) + sorted(SUITE_KEYS)}"
    )
