"""The shared scenario specs: axes + suites the whole repo runs from.

This module is the single source of truth for *what exists*:

* **axes** — each axis's value set is sourced live from the owning
  registry (`available_formats()` for formats, ``NAMED_PLANS`` for
  fault plans, the serve scheduler's ``POLICIES`` for backpressure
  policies, ...), so the CLI, the pytest parametrisations and CI can
  never drift on the roster;
* **suites** — named combinator trees (:mod:`repro.scenarios.matrix`)
  expanding to :class:`~repro.scenarios.matrix.ScenarioCell` rows,
  each bound to the executor that knows how to run it
  (:mod:`repro.scenarios.executors`);
* **waves** — ``full`` is the whole expansion; ``smoke`` is a
  seed-deterministic strict :class:`Subset` of it sized per suite.

``tests/test_ops.py`` (parity matrix) and ``tests/test_faults.py``
(chaos matrix) parametrise straight from :func:`expand_suite`; the
bench scripts pick their candidate (matrix, format) combos from the
``bench`` suite; ``repro matrix expand|run`` turns the same cells
into CI-gateable JSON rows.
"""

from __future__ import annotations

from repro.scenarios.matrix import (
    Base,
    Filter,
    Product,
    ScenarioCell,
    Subset,
    Sum,
)

__all__ = [
    "AXES",
    "BENCH_FORMATS",
    "PLAN_EXPECTATIONS",
    "SMOKE_SIZES",
    "SUITES",
    "WAVES",
    "axis_values",
    "expand_suite",
    "suite_names",
]

WAVES = ("smoke", "full")

#: chaos-drill verdict each named distributed plan must produce
#: ("recover" = bitwise-identical recovery; "exhaust" = the retry
#: budget must die with a typed RetryExhausted — that is the plan's job)
PLAN_EXPECTATIONS = {
    "smoke": "recover",
    "exchange": "recover",
    "crashes": "recover",
    "stubborn": "exhaust",
}

#: single-event kind drills (the old hand-rolled acceptance grid):
#: ``one:<kind>`` fault-plan values with their canonical targets
SINGLE_FAULT_TARGETS = {
    "one:rank_crash": {"rank": 1},
    "one:kernel_exception": {"rank": 0},
    "one:slow_worker": {"rank": 2},
    "one:halo_drop": {"rank": 0, "dst": 1},
    "one:halo_delay": {"rank": 1, "dst": 0},
}
PLAN_EXPECTATIONS.update({name: "recover" for name in SINGLE_FAULT_TARGETS})


# ---------------------------------------------------------------------------
# axes (value sets sourced live from the owning registries)
# ---------------------------------------------------------------------------

def _formats() -> tuple:
    """Every registered format, straight from the format registry."""
    from repro.formats import available_formats

    return tuple(available_formats())


def _matrix_classes() -> tuple:
    from repro.scenarios.fixtures import matrix_classes

    return matrix_classes()


def _suite_matrices() -> tuple:
    from repro.matrices import SUITE_KEYS

    return tuple(SUITE_KEYS)


def _kernel_tiers() -> tuple:
    """Tier *families* (host-independent; availability checked at run)."""
    return ("numpy", "scipy", "compiled")


def _backends() -> tuple:
    return ("threads", "processes")


def _modes() -> tuple:
    from repro.distributed.modes import MODES

    names = tuple(m for m in ("vector", "task") if m in MODES)
    return names or ("vector", "task")


def _fault_plans() -> tuple:
    from repro.faults import NAMED_PLANS

    return tuple(sorted(NAMED_PLANS))


def _distributed_plans() -> tuple:
    """Named plans whose events all target the distributed runtime."""
    from repro.faults import FaultPlan, NAMED_PLANS

    out = []
    for name in sorted(NAMED_PLANS):
        if name == "soak":  # long-running wave, kept behind `-m soak`
            continue
        plan = FaultPlan.named(name, nranks=4, workers=2)
        if all(ev.layer in ("distributed", "sim", "engine") for ev in plan):
            out.append(name)
    return tuple(out)


def _serve_policies() -> tuple:
    from repro.serve.scheduler import POLICIES

    return tuple(sorted(POLICIES))


AXES = {
    "matrix-class": _matrix_classes,
    "suite-matrix": _suite_matrices,
    "format": _formats,
    "kernel-tier": _kernel_tiers,
    "backend": _backends,
    "mode": _modes,
    "fault-plan": _fault_plans,
    "serve-policy": _serve_policies,
}


def axis_values(name: str) -> tuple:
    """The live value set of one axis (KeyError on unknown axis)."""
    try:
        fn = AXES[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario axis {name!r}; known: {sorted(AXES)}"
        ) from None
    return fn()


# ---------------------------------------------------------------------------
# suites
# ---------------------------------------------------------------------------

#: env a cell carries so reproducing it out of process pins the tier set
_TIER_ENV = {
    "numpy": {"REPRO_COMPILED_DISABLE": "all"},
    "scipy": {"REPRO_COMPILED_DISABLE": "numba,cnative"},
    "compiled": {},
}


def _parity_spec():
    """format x matrix-class x kernel-tier, every roster variant checked."""
    classes = tuple(
        c for c in axis_values("matrix-class") if c != "poisson2d"
    )
    return Product(
        Base("matrix-class", classes),
        Base("format", axis_values("format")),
        Base("kernel-tier", axis_values("kernel-tier")),
    )


#: processes drills are an order of magnitude slower each, so that
#: backend runs the composite smoke plan plus the two representative
#: single-event kinds (a crash and a dropped halo edge); the full plan
#: set runs on threads.
_PROCESS_PLANS = ("smoke", "one:rank_crash", "one:halo_drop")


def _chaos_spec():
    """backend x mode x fault plan (named composites + ``one:`` kinds)."""
    plans = _distributed_plans() + tuple(sorted(SINGLE_FAULT_TARGETS))
    threads = Product(
        Base("backend", ("threads",)),
        Base("mode", axis_values("mode")),
        Base("fault-plan", plans),
    )
    processes = Filter(
        lambda c: c["fault-plan"] in _PROCESS_PLANS,
        Product(
            Base("backend", ("processes",)),
            Base("mode", axis_values("mode")),
            Base("fault-plan", plans),
        ),
    )
    return Sum(threads, processes)


def _serve_spec():
    """serve-policy x fault plan x tracing; traced cells run fault-free."""
    spec = Product(
        Base("serve-policy", axis_values("serve-policy")),
        Base("fault-plan", ("none", "serve")),
        Base("trace", ("off", "on")),
    )
    return Filter(
        lambda c: not (c["trace"] == "on" and c["fault-plan"] != "none"),
        spec,
    )


def _fleet_spec():
    """shards x replicas x fault plan; failure drills need a replica."""
    spec = Product(
        Base("shards", (1, 2)),
        Base("replicas", (1, 2)),
        Base("fault-plan", ("none", "fleet")),
    )
    return Filter(
        lambda c: c["replicas"] <= c["shards"]
        and (c["fault-plan"] == "none" or (c["shards"] >= 2 and c["replicas"] >= 2)),
        spec,
    )


#: the engine-bound formats the bench suite (and the bench scripts,
#: which import this) probe — the paper's CRS/pJDS pair, the two
#: intermediate column-sweep formats, and the two related-work
#: challengers (Koza's CMRS, Heller-Oberhuber's ARG-CSR)
BENCH_FORMATS = ("CRS", "pJDS", "ELLPACK-R", "SELL-C-sigma", "CMRS", "ARG-CSR")


def _bench_spec():
    """paper-suite matrix x engine format x kernel tier (perf probes)."""
    return Product(
        Base("suite-matrix", axis_values("suite-matrix")),
        Base("format", BENCH_FORMATS),
        Base("kernel-tier", axis_values("kernel-tier")),
    )


#: suite name -> (spec builder, executor binding)
SUITES = {
    "parity": (_parity_spec, "parity-check"),
    "chaos": (_chaos_spec, "chaos-drill"),
    "serve": (_serve_spec, "serve-roundtrip"),
    "fleet": (_fleet_spec, "fleet-drill"),
    "bench": (_bench_spec, "bench-probe"),
}

#: cells in the smoke wave of each suite (always < the full expansion,
#: so smoke is a *strict* subset — the property tests assert it)
SMOKE_SIZES = {
    "parity": 12,
    "chaos": 5,
    "serve": 3,
    "fleet": 2,
    "bench": 6,
}


def suite_names() -> tuple:
    return tuple(sorted(SUITES))


def _cell_env(suite: str, combo: dict) -> dict:
    env = dict(_TIER_ENV.get(combo.get("kernel-tier", ""), {}))
    return env


def _cell_config(suite: str, combo: dict) -> dict:
    cfg = {}
    plan = combo.get("fault-plan")
    if suite == "chaos" and plan is not None:
        cfg["expect"] = PLAN_EXPECTATIONS.get(plan, "recover")
        if plan in SINGLE_FAULT_TARGETS:
            cfg["target"] = tuple(sorted(SINGLE_FAULT_TARGETS[plan].items()))
    return cfg


def expand_suite(
    name: str, *, wave: str = "full", seed: int = 0
) -> tuple:
    """Expand one suite into its :class:`ScenarioCell` rows.

    ``wave="smoke"`` applies the suite's :class:`Subset` sample
    (seed-deterministic; always a strict subset of ``full``).
    """
    try:
        builder, executor = SUITES[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario suite {name!r}; known: {sorted(SUITES)}"
        ) from None
    if wave not in WAVES:
        raise ValueError(f"unknown wave {wave!r}; use one of {WAVES}")
    spec = builder()
    if wave == "smoke":
        spec = Subset(spec, SMOKE_SIZES[name])
    return tuple(
        ScenarioCell.build(
            name,
            executor,
            combo,
            env=_cell_env(name, combo),
            config=_cell_config(name, combo),
            wave=wave,
        )
        for combo in spec.expand(seed)
    )
