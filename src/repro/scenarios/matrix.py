"""Teuthology-style scenario combinators: an algebra over axis values.

A scenario *spec* is a tree of combinators that expands into a flat,
deduplicated, canonically ordered run matrix.  Leaves contribute axis
bindings, inner nodes combine them:

* :class:`Base` — one axis with its candidate values
  (``Base("format", ("CRS", "pJDS"))`` → two one-axis combos),
* :class:`Product` — the cross product of child combos (axes must be
  disjoint: a combo binds each axis at most once),
* :class:`Sum` — the union of child combos (duplicates collapse),
* :class:`Filter` — keeps only combos accepted by a predicate (the
  place validity rules live, e.g. "square-only formats never meet a
  rectangular matrix class"),
* :class:`Subset` — a seed-deterministic sample of the child's combos
  (wave sampling: the ``smoke`` wave is a strict subset of ``full``).

Expansion guarantees — the invariants the property tests pin down:

* **deduplicated**: ``len(expand(spec)) == len(set(...))`` (the
  frozenset property from the teuthology matrix tests),
* **seed-deterministic**: the same ``(spec, seed)`` always yields the
  same tuple, byte for byte once serialised,
* **order-canonical**: reordering ``Product``/``Sum`` children or the
  values inside a ``Base`` never changes the expanded *set*, and the
  output ordering is derived from the combos themselves (sorted by
  canonical key), not from tree shape,
* **subset-monotone**: ``Subset`` output is always a subset of its
  child's expansion, strict whenever ``k`` is smaller.

Values must be hashable and JSON-representable (strings, numbers,
bools, tuples); determinism across *processes* is why sampling uses a
keyed blake2b ranking instead of Python's salted ``hash``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = [
    "Base",
    "Combo",
    "Filter",
    "Product",
    "ScenarioCell",
    "Subset",
    "Sum",
    "canonical_key",
    "combo_digest",
    "expand",
]


#: a combo is an immutable mapping axis -> value
Combo = dict


def canonical_key(combo: Combo) -> tuple:
    """The order-free identity of a combo: sorted ``(axis, value)`` pairs."""
    return tuple(sorted((str(k), _freeze(v)) for k, v in combo.items()))


def _freeze(value):
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    return value


def combo_digest(combo: Combo, *, salt: str = "") -> str:
    """Process-stable hex digest of a combo (used for ids and sampling)."""
    h = hashlib.blake2b(digest_size=8)
    h.update(salt.encode())
    h.update(repr(canonical_key(combo)).encode())
    return h.hexdigest()


class Spec:
    """Base class for combinator nodes."""

    def expand(self, seed: int = 0) -> tuple:
        """Deduplicated, canonically ordered tuple of combos."""
        combos = self._combos(seed)
        seen = {}
        for c in combos:
            seen.setdefault(canonical_key(c), c)
        return tuple(seen[k] for k in sorted(seen))

    def _combos(self, seed: int):  # pragma: no cover - abstract
        raise NotImplementedError

    def size(self, seed: int = 0) -> int:
        return len(self.expand(seed))

    # sugar: a * b == Product(a, b); a + b == Sum(a, b)
    def __mul__(self, other: "Spec") -> "Product":
        return Product(self, other)

    def __add__(self, other: "Spec") -> "Sum":
        return Sum(self, other)


@dataclass(frozen=True)
class Base(Spec):
    """One axis with its candidate values."""

    axis: str
    values: tuple

    def __post_init__(self):
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValueError(f"axis {self.axis!r} has no values")

    def _combos(self, seed: int):
        return [{self.axis: v} for v in self.values]


class Sum(Spec):
    """Union of child expansions (duplicates collapse)."""

    def __init__(self, *children: Spec):
        if not children:
            raise ValueError("Sum needs at least one child")
        self.children = tuple(children)

    def _combos(self, seed: int):
        out = []
        for child in self.children:
            out.extend(child.expand(seed))
        return out


class Product(Spec):
    """Cross product of child expansions; axes must stay disjoint."""

    def __init__(self, *children: Spec):
        if not children:
            raise ValueError("Product needs at least one child")
        self.children = tuple(children)

    def _combos(self, seed: int):
        combos: list[Combo] = [{}]
        for child in self.children:
            nxt = []
            for left in combos:
                for right in child.expand(seed):
                    overlap = set(left) & set(right)
                    if overlap:
                        raise ValueError(
                            f"Product rebinds axes {sorted(overlap)}"
                        )
                    merged = dict(left)
                    merged.update(right)
                    nxt.append(merged)
            combos = nxt
        return combos


class Filter(Spec):
    """Keep only combos accepted by ``predicate(combo) -> bool``."""

    def __init__(self, predicate, child: Spec):
        self.predicate = predicate
        self.child = child

    def _combos(self, seed: int):
        return [c for c in self.child.expand(seed) if self.predicate(c)]


class Subset(Spec):
    """A seed-deterministic sample of ``k`` combos from the child.

    Each combo is ranked by a keyed blake2b digest of its canonical
    key — the same ``(child, k, seed)`` always selects the same
    subset, independent of tree shape, process, or axis ordering, and
    the selection is always a subset of the child's full expansion.
    """

    def __init__(self, child: Spec, k: int):
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        self.child = child
        self.k = k

    def _combos(self, seed: int):
        combos = self.child.expand(seed)
        ranked = sorted(
            combos, key=lambda c: combo_digest(c, salt=f"subset:{seed}")
        )
        return ranked[: self.k]


# ---------------------------------------------------------------------------
# the expanded row: one runnable cell
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioCell:
    """One row of an expanded run matrix.

    ``axes`` is the combo that produced the cell; ``executor`` names
    the binding that knows how to run it (parity-check, chaos-drill,
    serve-roundtrip, fleet-drill, bench-probe); ``env`` is propagated
    into ``os.environ`` for the duration of the run (and exported in
    the JSON row so CI can reproduce the cell out of process);
    ``config`` carries executor keyword defaults the axes don't encode.
    """

    suite: str
    executor: str
    axes: tuple  # canonical (axis, value) pairs
    env: tuple = ()
    config: tuple = ()
    wave: str = "full"

    @classmethod
    def build(cls, suite, executor, combo, *, env=None, config=None, wave="full"):
        return cls(
            suite=suite,
            executor=executor,
            axes=canonical_key(combo),
            env=tuple(sorted((env or {}).items())),
            config=tuple(sorted((config or {}).items())),
            wave=wave,
        )

    @property
    def axes_dict(self) -> dict:
        return dict(self.axes)

    @property
    def env_dict(self) -> dict:
        return dict(self.env)

    @property
    def config_dict(self) -> dict:
        return dict(self.config)

    @property
    def cell_id(self) -> str:
        """Deterministic short id: ``<suite>-<digest>``."""
        return f"{self.suite}-{combo_digest(dict(self.axes), salt=self.suite)}"

    def label(self) -> str:
        """Human-readable id for pytest parametrisation and tables."""
        parts = [f"{k}={_render(v)}" for k, v in self.axes]
        return "/".join(parts)

    def to_row(self) -> dict:
        """JSON-ready row (stable key order handled by the serialiser)."""
        return {
            "cell_id": self.cell_id,
            "suite": self.suite,
            "executor": self.executor,
            "wave": self.wave,
            "axes": self.axes_dict,
            "env": self.env_dict,
            "config": self.config_dict,
        }


def _render(value) -> str:
    if isinstance(value, tuple):
        return "+".join(_render(v) for v in value)
    return str(value)


def expand(spec: Spec, seed: int = 0) -> tuple:
    """Module-level convenience: ``spec.expand(seed)``."""
    return spec.expand(seed)
