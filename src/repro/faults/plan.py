"""Seeded, deterministic fault schedules (the chaos harness's input).

A :class:`FaultPlan` is an immutable, ordered schedule of
:class:`FaultEvent` records — *which* fault, *where* (layer + target
labels), and *how often* it may fire.  Plans come from three places:

* :meth:`FaultPlan.generate` — a seeded RNG draws a schedule; the same
  seed always produces the same plan (the determinism contract the
  chaos tests assert),
* :meth:`FaultPlan.named` — curated plans (``smoke``, ``exchange``,
  ``crashes``, ``stubborn``, ``serve``, ``fleet``, ``soak``) used by the
  ``repro chaos`` CLI and CI,
* explicit construction from events in tests.

The plan itself never mutates at run time; firing state lives in the
:class:`~repro.faults.inject.FaultInjector` built via
:meth:`FaultPlan.injector`, so one plan can be replayed any number of
times (``same seed => same schedule => same injections``).

Fault taxonomy (``FAULT_KINDS``):

====================  =============  =====================================
kind                  default layer  effect at the injection site
====================  =============  =====================================
rank_crash            distributed    the rank dies before sending halos
halo_drop             distributed    one outgoing halo message is lost
halo_delay            distributed    one outgoing halo message is late
kernel_exception      any            the compute kernel raises
slow_worker           any            the worker sleeps ``delay_s``
worker_crash          serve          a batcher worker thread dies
registry_load_failure serve          the matrix loader fails
shard_kill            serve          a fleet shard process is killed
====================  =============  =====================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

__all__ = [
    "FAULT_KINDS",
    "FAULT_LAYERS",
    "NAMED_PLANS",
    "FaultEvent",
    "FaultPlan",
]

FAULT_KINDS = (
    "rank_crash",
    "halo_drop",
    "halo_delay",
    "kernel_exception",
    "slow_worker",
    "worker_crash",
    "registry_load_failure",
    "shard_kill",
)

FAULT_LAYERS = ("distributed", "serve", "engine", "sim")

#: kinds whose default layer is the distributed runtime
DISTRIBUTED_KINDS = (
    "rank_crash",
    "halo_drop",
    "halo_delay",
    "kernel_exception",
    "slow_worker",
)

_DEFAULT_LAYER = {
    "rank_crash": "distributed",
    "halo_drop": "distributed",
    "halo_delay": "distributed",
    "kernel_exception": "distributed",
    "slow_worker": "distributed",
    "worker_crash": "serve",
    "registry_load_failure": "serve",
    "shard_kill": "serve",
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` is a sorted tuple of ``(label, value)`` pairs; an event
    matches an injection site when every target pair is present among
    the site's labels (an empty target is a wildcard).  ``times`` is
    how many matches the event may consume (``times <= 0`` means
    unlimited), and ``when`` is the logical schedule time in
    ``[0, horizon)`` used only for ordering and the schedule
    invariants — wall-clock injection order is decided by the sites.
    """

    kind: str
    when: float
    layer: str = ""
    target: tuple = ()
    times: int = 1
    delay_s: float = 0.0
    note: str = ""

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; use one of {FAULT_KINDS}")
        layer = self.layer or _DEFAULT_LAYER[self.kind]
        object.__setattr__(self, "layer", layer)
        if layer not in FAULT_LAYERS:
            raise ValueError(f"unknown layer {layer!r}; use one of {FAULT_LAYERS}")
        if self.when < 0:
            raise ValueError(f"when must be >= 0, got {self.when}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        # normalise targets to a canonical sorted tuple of pairs
        tgt = self.target
        if isinstance(tgt, dict):
            tgt = tuple(sorted(tgt.items()))
        else:
            tgt = tuple(sorted(tuple(pair) for pair in tgt))
        object.__setattr__(self, "target", tgt)

    @property
    def labels(self) -> dict:
        return dict(self.target)

    def matches(self, layer: str, **labels: object) -> bool:
        """True when this event applies to the given injection site."""
        if self.layer != layer:
            return False
        return all(labels.get(k, _MISSING) == v for k, v in self.target)

    def describe(self) -> str:
        tgt = ",".join(f"{k}={v}" for k, v in self.target) or "*"
        extra = f" delay={self.delay_s:g}s" if self.delay_s else ""
        times = f" x{self.times}" if self.times != 1 else ""
        return f"[{self.when:6.3f}] {self.layer}:{self.kind}({tgt}){times}{extra}"


class _Missing:
    def __repr__(self):  # pragma: no cover - cosmetic
        return "<missing>"


_MISSING = _Missing()


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, ordered fault schedule."""

    events: tuple = ()
    name: str = "custom"
    seed: int | None = None
    horizon: float = 1.0

    def __post_init__(self):
        evs = tuple(
            ev if isinstance(ev, FaultEvent) else FaultEvent(**ev)
            for ev in self.events
        )
        # canonical order: schedule time, then construction order (stable)
        order = sorted(range(len(evs)), key=lambda i: (evs[i].when, i))
        object.__setattr__(self, "events", tuple(evs[i] for i in order))
        if self.horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {self.horizon}")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def for_layer(self, layer: str) -> tuple:
        return tuple(ev for ev in self.events if ev.layer == layer)

    def kinds(self) -> dict:
        """Event count per kind (for reports and tests)."""
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def validate(self) -> "FaultPlan":
        """Assert the schedule invariants; returns self for chaining.

        * events sorted by ``when`` (ties broken stably),
        * every ``when`` within ``[0, horizon)``,
        * the schedule is stable under replay (re-constructing a plan
          from its own events reproduces it bit-for-bit).
        """
        whens = [ev.when for ev in self.events]
        if whens != sorted(whens):
            raise AssertionError(f"plan {self.name!r}: events out of order")
        for ev in self.events:
            if not 0 <= ev.when < self.horizon:
                raise AssertionError(
                    f"plan {self.name!r}: event outside horizon: {ev.describe()}"
                )
        if replace(self).events != self.events:
            raise AssertionError(f"plan {self.name!r}: unstable under replay")
        return self

    def injector(self):
        """A fresh, zero-state :class:`~repro.faults.inject.FaultInjector`."""
        from repro.faults.inject import FaultInjector

        return FaultInjector(self)

    def describe(self) -> str:
        head = f"fault plan {self.name!r}: {len(self.events)} events"
        if self.seed is not None:
            head += f" (seed={self.seed})"
        return "\n".join([head, *("  " + ev.describe() for ev in self.events)])

    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        nranks: int = 4,
        kinds: tuple = DISTRIBUTED_KINDS,
        horizon: float = 1.0,
        max_events_per_kind: int = 2,
        workers: int = 2,
        delay_s: float = 0.02,
    ) -> "FaultPlan":
        """Draw a deterministic schedule from ``seed``.

        The same ``(seed, nranks, kinds, ...)`` always yields the same
        plan; run-to-run determinism of the *injections* then follows
        from the deterministic site matching in the injector.
        """
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        rng = random.Random(seed)
        events: list[FaultEvent] = []
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
            for _ in range(rng.randint(1, max(1, max_events_per_kind))):
                when = rng.random() * horizon
                layer = _DEFAULT_LAYER[kind]
                if kind in ("halo_drop", "halo_delay"):
                    if nranks < 2:
                        continue  # no edges to fault
                    src = rng.randrange(nranks)
                    dst = rng.choice([r for r in range(nranks) if r != src])
                    target = {"rank": src, "dst": dst}
                elif kind == "worker_crash":
                    target = {"worker": rng.randrange(max(1, workers))}
                elif kind == "registry_load_failure":
                    target = {}
                else:
                    target = {"rank": rng.randrange(nranks)}
                events.append(
                    FaultEvent(
                        kind=kind,
                        when=when,
                        layer=layer,
                        target=target,
                        delay_s=delay_s if kind in ("halo_delay", "slow_worker") else 0.0,
                    )
                )
        return cls(tuple(events), name=f"seed:{seed}", seed=seed, horizon=horizon)

    @classmethod
    def named(
        cls,
        name: str,
        *,
        nranks: int = 4,
        workers: int = 2,
        delay_s: float = 0.02,
    ) -> "FaultPlan":
        """One of the curated plans (see :data:`NAMED_PLANS`)."""
        builder = NAMED_PLANS.get(name)
        if builder is None:
            raise ValueError(
                f"unknown fault plan {name!r}; known: {sorted(NAMED_PLANS)} "
                "(or pass an integer seed)"
            )
        return builder(nranks=nranks, workers=workers, delay_s=delay_s)


# ---------------------------------------------------------------------------
# curated plans
# ---------------------------------------------------------------------------

def _plan_smoke(*, nranks: int, workers: int, delay_s: float) -> FaultPlan:
    """One of everything cheap: a crash, a dropped edge, a kernel error."""
    last = max(nranks - 1, 0)
    events = [
        FaultEvent("rank_crash", 0.10, target={"rank": last}),
        FaultEvent("kernel_exception", 0.30, target={"rank": 0}),
        FaultEvent("slow_worker", 0.50, target={"rank": 0}, delay_s=delay_s),
    ]
    if nranks >= 2:
        events.append(FaultEvent("halo_drop", 0.20, target={"rank": 0, "dst": 1}))
        events.append(
            FaultEvent("halo_delay", 0.40, target={"rank": 1, "dst": 0}, delay_s=delay_s)
        )
    return FaultPlan(tuple(events), name="smoke")


def _plan_exchange(*, nranks: int, workers: int, delay_s: float) -> FaultPlan:
    """Message-layer faults only: late and lost halo edges."""
    events = []
    for i in range(max(nranks - 1, 1)):
        src, dst = i, (i + 1) % nranks
        if src == dst:
            continue
        kind = "halo_drop" if i % 2 == 0 else "halo_delay"
        events.append(
            FaultEvent(
                kind,
                when=0.1 + 0.1 * i,
                target={"rank": src, "dst": dst},
                delay_s=delay_s if kind == "halo_delay" else 0.0,
            )
        )
    return FaultPlan(tuple(events), name="exchange")


def _plan_crashes(*, nranks: int, workers: int, delay_s: float) -> FaultPlan:
    """Every rank crashes exactly once (the full-recovery drill)."""
    return FaultPlan(
        tuple(
            FaultEvent("rank_crash", when=0.1 + 0.8 * r / max(nranks, 1), target={"rank": r})
            for r in range(nranks)
        ),
        name="crashes",
    )


def _plan_stubborn(*, nranks: int, workers: int, delay_s: float) -> FaultPlan:
    """Rank 0 crashes on every attempt — exhausts any retry budget."""
    return FaultPlan(
        (FaultEvent("rank_crash", 0.1, target={"rank": 0}, times=0),),
        name="stubborn",
    )


def _plan_serve(*, nranks: int, workers: int, delay_s: float) -> FaultPlan:
    """Serving-layer faults: kill every batcher worker, fail one load."""
    events = [
        FaultEvent("worker_crash", 0.1 + 0.05 * w, layer="serve", target={"worker": w})
        for w in range(max(workers, 1))
    ]
    events.append(FaultEvent("registry_load_failure", 0.05, layer="serve"))
    events.append(FaultEvent("kernel_exception", 0.3, layer="serve"))
    return FaultPlan(tuple(events), name="serve")


def _plan_fleet(*, nranks: int, workers: int, delay_s: float) -> FaultPlan:
    """Fleet drill: kill one shard mid-load, slow a worker on another.

    ``nranks`` doubles as the shard count; the victim is the last
    shard so single-shard fleets still get a kill.
    """
    victim = max(nranks - 1, 0)
    events = [
        FaultEvent("shard_kill", 0.3, layer="serve", target={"shard": victim}),
        FaultEvent(
            "slow_worker",
            0.1,
            layer="serve",
            target={"shard": 0, "worker": 0},
            delay_s=delay_s,
        ),
    ]
    return FaultPlan(tuple(events), name="fleet")


def _plan_soak(*, nranks: int, workers: int, delay_s: float) -> FaultPlan:
    """A long generated schedule for soak testing (seeded, still
    deterministic)."""
    base = FaultPlan.generate(
        1234, nranks=nranks, max_events_per_kind=4, delay_s=delay_s
    )
    return FaultPlan(base.events, name="soak", seed=1234)


NAMED_PLANS: dict = {
    "smoke": _plan_smoke,
    "exchange": _plan_exchange,
    "crashes": _plan_crashes,
    "stubborn": _plan_stubborn,
    "serve": _plan_serve,
    "fleet": _plan_fleet,
    "soak": _plan_soak,
}
