"""repro.faults — deterministic fault injection + resilience policies.

The chaos harness for the distributed runtime and the SpMV server:

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultEvent`:
  seeded, immutable fault schedules (``same seed => same schedule``),
  plus the curated named plans the ``repro chaos`` CLI replays.
* :mod:`repro.faults.inject` — :class:`FaultInjector`: thread-safe
  firing state threaded through ``distributed.runtime`` (thread and
  process backends), ``distributed.modes`` (timing perturbation),
  ``serve.scheduler`` / ``serve.registry`` and ``engine.bound``;
  every injection emits ``faults_injected_total`` and a
  ``fault.injected`` span through :mod:`repro.obs`.
* :mod:`repro.faults.retry` — :class:`RetryPolicy` (capped exponential
  backoff, deterministic jitter, per-call budgets) and
  :class:`RetryExhausted` (typed, carries the full fault history).

See ``docs/resilience.md`` for the fault taxonomy, the retry semantics
of every layer, and how to write a plan.
"""

from repro.faults.inject import (
    FaultError,
    FaultInjector,
    FaultRecord,
    InjectedFault,
)
from repro.faults.plan import (
    DISTRIBUTED_KINDS,
    FAULT_KINDS,
    FAULT_LAYERS,
    NAMED_PLANS,
    FaultEvent,
    FaultPlan,
)
from repro.faults.retry import RetryExhausted, RetryPolicy, call_with_retry

__all__ = [
    "DISTRIBUTED_KINDS",
    "FAULT_KINDS",
    "FAULT_LAYERS",
    "NAMED_PLANS",
    "FaultEvent",
    "FaultPlan",
    "FaultError",
    "FaultInjector",
    "FaultRecord",
    "InjectedFault",
    "RetryExhausted",
    "RetryPolicy",
    "call_with_retry",
]
