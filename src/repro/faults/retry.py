"""Retry policies: capped exponential backoff with deterministic jitter.

One :class:`RetryPolicy` value is shared by every resilience layer —
the distributed driver re-executing failed ranks, the serve client
re-submitting transiently failed requests — with per-layer *budgets*
(``budget`` caps the total number of retries a single logical call may
spend, across all its sub-failures).

Backoff is the classic capped exponential,
``min(base * 2**(attempt-1), cap)``, plus a *deterministic* jitter
drawn from ``hash(seed, attempt)`` — chaos runs must be replayable, so
nothing here consults a global RNG or the clock.

When a policy's attempts (or budget) are exhausted the caller raises
:class:`RetryExhausted`, which carries the complete fault history —
every exception observed across the attempts — so operators see the
*sequence* of failures, not just the last one.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.faults.inject import FaultError

__all__ = ["RetryPolicy", "RetryExhausted", "call_with_retry"]


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry a failed unit of work.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    initial execution plus up to two retries.  ``budget`` (optional)
    caps the *total* retries one logical operation may spend across all
    its failing sub-units (e.g. several crashed ranks of one
    ``distributed_spmv``); ``None`` leaves only the per-unit cap.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.0
    max_delay_s: float = 1.0
    jitter_s: float = 0.0
    seed: int = 0
    budget: int | None = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0 or self.jitter_s < 0:
            raise ValueError("delays must be >= 0")
        if self.budget is not None and self.budget < 0:
            raise ValueError(f"budget must be >= 0, got {self.budget}")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            return 0.0
        base = min(self.base_delay_s * (2.0 ** (attempt - 1)), self.max_delay_s)
        if self.jitter_s:
            # deterministic jitter: replayable chaos runs
            base += (
                random.Random(self.seed * 1_000_003 + attempt).random()
                * self.jitter_s
            )
        return min(base, self.max_delay_s + self.jitter_s)

    def retries(self) -> int:
        """Retries available per unit (attempts after the first)."""
        return self.max_attempts - 1


class RetryExhausted(FaultError):
    """All attempts (or the retry budget) were spent without success.

    ``history`` is the ordered list of exceptions observed — the fault
    history of the whole recovery effort — and ``site`` names the unit
    that could not be recovered.
    """

    def __init__(self, site: str, attempts: int, history: list | None = None,
                 reason: str = ""):
        self.site = site
        self.attempts = attempts
        self.history = list(history or [])
        tail = f": {reason}" if reason else ""
        seen = "; ".join(
            f"{type(e).__name__}: {e}" for e in self.history[-3:]
        )
        super().__init__(
            f"retries exhausted for {site} after {attempts} attempt(s){tail}"
            + (f" [history: {seen}]" if seen else "")
        )


def call_with_retry(
    fn,
    policy: RetryPolicy,
    *,
    site: str,
    retryable: tuple = (FaultError,),
    on_retry=None,
    sleep=time.sleep,
):
    """Run ``fn()`` under ``policy``; returns its result.

    Retries only exceptions in ``retryable``; anything else propagates
    immediately.  ``on_retry(attempt, exc)`` is called before each
    retry (the hook layers use to bump their obs counters).
    """
    history: list[Exception] = []
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except retryable as exc:  # noqa: PERF203 - retry loop
            history.append(exc)
            if attempt + 1 >= policy.max_attempts:
                raise RetryExhausted(site, attempt + 1, history) from exc
            if on_retry is not None:
                on_retry(attempt + 1, exc)
            d = policy.delay(attempt + 1)
            if d:
                sleep(d)
    raise AssertionError("unreachable")  # pragma: no cover
