"""The runtime half of the chaos harness: firing scheduled faults.

A :class:`FaultInjector` wraps one :class:`~repro.faults.plan.FaultPlan`
with mutable firing state (how many times each event has been
consumed) plus the recovery bookkeeping the resilience layers report
through — faults *injected*, *retried* and *recovered* — so the
``repro chaos`` CLI and the chaos tests can read one coherent
:meth:`report` after a run.

Injection sites consume events in two styles:

* **directives** — the distributed driver pulls one round of rank
  directives (:meth:`rank_directives`) *before* launching workers, so
  the workers (threads *or* forked processes) receive plain data and
  the injector's state stays in exactly one address space.  This is
  what makes the process backend's injections deterministic.
* **points** — in-process layers (serve scheduler/registry, engine)
  call the ``*_fault`` helpers at their sites; matching events raise
  :class:`InjectedFault` or sleep, under the injector's lock.

Every injection is recorded and, when :mod:`repro.obs` is enabled,
published as a ``faults_injected_total{kind,layer}`` counter plus a
zero-length ``fault.injected`` span so Chrome traces show the fault
inline with the work it perturbed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace

from repro import obs
from repro.faults.plan import FaultEvent, FaultPlan

__all__ = ["FaultError", "InjectedFault", "FaultRecord", "FaultInjector"]


class FaultError(RuntimeError):
    """Base class of the fault-injection error family."""


class InjectedFault(FaultError):
    """An injected fault fired at a site (picklable across processes)."""

    def __init__(self, kind: str, site: str, labels: dict | None = None,
                 message: str | None = None):
        self.kind = kind
        self.site = site
        self.labels = dict(labels or {})
        where = ", ".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
        super().__init__(
            message or f"injected fault {kind!r} at {site}" + (f" ({where})" if where else "")
        )

    def __reduce__(self):
        return (type(self), (self.kind, self.site, self.labels, self.args[0]))


@dataclass(frozen=True)
class FaultRecord:
    """One observed injection (for reports and assertions)."""

    event: FaultEvent
    site: str
    t_wall: float


class FaultInjector:
    """Thread-safe firing state + recovery accounting over a plan."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        # remaining fire budget per event; None = unlimited (times <= 0)
        self._remaining: list[int | None] = [
            (None if ev.times <= 0 else ev.times) for ev in plan.events
        ]
        self._records: list[FaultRecord] = []
        self._retried: dict[str, int] = {}
        self._recovered: dict[str, int] = {}

    # ------------------------------------------------------------------
    # consumption primitives
    # ------------------------------------------------------------------
    def _consume_locked(self, ev_idx: int, site: str) -> FaultEvent:
        rem = self._remaining[ev_idx]
        if rem is not None:
            self._remaining[ev_idx] = rem - 1
        ev = self.plan.events[ev_idx]
        self._records.append(FaultRecord(ev, site, time.time()))
        if obs.enabled():
            obs.inc("faults_injected_total", 1, kind=ev.kind, layer=ev.layer)
            # stamp the victim: whatever span encloses the injection
            # point (a serve.batch, an engine.spmv, a rank chain)
            # carries the fault so ``repro obs trace`` shows it in situ
            obs.annotate_current(fault=ev.kind, fault_site=site)
            with obs.span("fault.injected", kind=ev.kind, layer=ev.layer,
                          site=site, **{str(k): str(v) for k, v in ev.target}):
                pass
        return ev

    def take_one(self, kind: str, layer: str, site: str, **labels) -> FaultEvent | None:
        """Consume the first live event matching ``(kind, layer, labels)``."""
        with self._lock:
            for i, ev in enumerate(self.plan.events):
                if ev.kind != kind or not self._live_locked(i):
                    continue
                if ev.matches(layer, **labels):
                    return self._consume_locked(i, site)
        return None

    def _live_locked(self, i: int) -> bool:
        rem = self._remaining[i]
        return rem is None or rem > 0

    # ------------------------------------------------------------------
    # distributed layer: one round of directives per rank execution
    # ------------------------------------------------------------------
    def rank_directives(self, rank: int, *, site: str = "distributed.rank") -> list[dict]:
        """Consume one occurrence of every live distributed-layer event
        targeting ``rank`` and return plain-data directives.

        Directives are picklable dicts (``{"kind": ..., "dst": ...,
        "delay_s": ...}``) applied by the rank worker — thread or
        forked process — so injection state never leaves the driver.
        """
        out: list[dict] = []
        with self._lock:
            for i, ev in enumerate(self.plan.events):
                if not self._live_locked(i):
                    continue
                if not ev.matches("distributed", rank=rank, dst=_ANY):
                    continue
                self._consume_locked(i, f"{site}[{rank}]")
                d = {"kind": ev.kind, "delay_s": ev.delay_s}
                dst = ev.labels.get("dst")
                if dst is not None:
                    d["dst"] = dst
                out.append(d)
        return out

    # ------------------------------------------------------------------
    # serve layer points
    # ------------------------------------------------------------------
    def worker_fault(self, worker: int) -> None:
        """Batcher-worker site: crash (raise) or slow (sleep) the worker."""
        ev = self.take_one("slow_worker", "serve", "serve.worker", worker=worker)
        if ev is not None and ev.delay_s:
            time.sleep(ev.delay_s)
        ev = self.take_one("worker_crash", "serve", "serve.worker", worker=worker)
        if ev is not None:
            raise InjectedFault("worker_crash", "serve.worker", {"worker": worker})

    def batch_fault(self, matrix: str, worker: int) -> None:
        """Batch-execution site: fail the whole coalesced spmm call."""
        ev = self.take_one(
            "kernel_exception", "serve", "serve.batch", matrix=matrix, worker=worker
        )
        if ev is not None:
            raise InjectedFault(
                "kernel_exception", "serve.batch", {"matrix": matrix, "worker": worker}
            )

    def load_fault(self, matrix: str) -> None:
        """Registry-load site: fail the loader for ``matrix``."""
        ev = self.take_one(
            "registry_load_failure", "serve", "serve.registry_load", matrix=matrix
        )
        if ev is not None:
            raise InjectedFault(
                "registry_load_failure", "serve.registry_load", {"matrix": matrix}
            )

    # ------------------------------------------------------------------
    # engine layer point
    # ------------------------------------------------------------------
    def engine_fault(self, **labels) -> None:
        """Bound-kernel site: raise or sleep inside ``BoundMatrix.spmv``."""
        ev = self.take_one("slow_worker", "engine", "engine.spmv", **labels)
        if ev is not None and ev.delay_s:
            time.sleep(ev.delay_s)
        ev = self.take_one("kernel_exception", "engine", "engine.spmv", **labels)
        if ev is not None:
            raise InjectedFault("kernel_exception", "engine.spmv", labels)

    # ------------------------------------------------------------------
    # timing-simulator perturbation (repro.distributed.modes)
    # ------------------------------------------------------------------
    def perturb_node(self, stats):
        """Perturb one rank's :class:`~repro.distributed.modes.NodeStats`.

        ``slow_worker`` inflates the rank's kernel workload and
        ``halo_delay`` its message volume by ``1 + delay_s`` each, so
        the injected fault shows up as genuinely longer intervals in
        the simulated Fig. 4 timeline.  Returns ``(stats, kinds)``
        where ``kinds`` lists what was injected.
        """
        kinds: list[str] = []
        factor_kernel = 1.0
        factor_comm = 1.0
        while True:
            ev = self.take_one("slow_worker", "sim", "sim.kernel", rank=stats.rank)
            if ev is None:
                break
            factor_kernel *= 1.0 + max(ev.delay_s, 0.1)
            kinds.append("slow_worker")
        while True:
            ev = self.take_one("halo_delay", "sim", "sim.exchange", rank=stats.rank, dst=_ANY)
            if ev is None:
                break
            factor_comm *= 1.0 + max(ev.delay_s, 0.1)
            kinds.append("halo_delay")
        if not kinds:
            return stats, kinds
        scale = lambda d, f: {k: int(round(v * f)) for k, v in d.items()}  # noqa: E731
        stats = replace(
            stats,
            nnz_local=int(round(stats.nnz_local * factor_kernel)),
            nnz_nonlocal=int(round(stats.nnz_nonlocal * factor_kernel)),
            send_bytes=scale(stats.send_bytes, factor_comm),
            recv_bytes=scale(stats.recv_bytes, factor_comm),
        )
        return stats, kinds

    # ------------------------------------------------------------------
    # recovery accounting
    # ------------------------------------------------------------------
    def note_retry(self, layer: str) -> None:
        with self._lock:
            self._retried[layer] = self._retried.get(layer, 0) + 1
        if obs.enabled():
            obs.inc("faults_retries_total", 1, layer=layer)

    def note_recovered(self, layer: str) -> None:
        with self._lock:
            self._recovered[layer] = self._recovered.get(layer, 0) + 1
        if obs.enabled():
            obs.inc("faults_recovered_total", 1, layer=layer)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def records(self) -> list[FaultRecord]:
        with self._lock:
            return list(self._records)

    @property
    def injected(self) -> int:
        with self._lock:
            return len(self._records)

    def injected_by_kind(self) -> dict:
        out: dict[str, int] = {}
        for rec in self.records:
            out[rec.event.kind] = out.get(rec.event.kind, 0) + 1
        return out

    def unfired(self) -> list[FaultEvent]:
        """Events with remaining budget (never matched a site)."""
        with self._lock:
            return [
                ev
                for i, ev in enumerate(self.plan.events)
                if self._remaining[i] is not None
                and self._remaining[i] == self.plan.events[i].times
            ]

    def report(self) -> dict:
        """JSON-friendly recovery report (the CLI's payload)."""
        with self._lock:
            records = list(self._records)
            retried = dict(self._retried)
            recovered = dict(self._recovered)
        by_kind: dict[str, int] = {}
        for rec in records:
            by_kind[rec.event.kind] = by_kind.get(rec.event.kind, 0) + 1
        return {
            "plan": self.plan.name,
            "events": len(self.plan.events),
            "injected": len(records),
            "injected_by_kind": by_kind,
            "retried": sum(retried.values()),
            "retried_by_layer": retried,
            "recovered": sum(recovered.values()),
            "recovered_by_layer": recovered,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<FaultInjector plan={self.plan.name!r} events={len(self.plan.events)} "
            f"injected={self.injected}>"
        )


class _Any:
    """Sentinel that equals anything (wildcard site label)."""

    def __eq__(self, other) -> bool:
        return True

    def __ne__(self, other) -> bool:
        return False

    def __hash__(self) -> int:  # pragma: no cover - never keyed
        return 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<any>"


_ANY = _Any()
