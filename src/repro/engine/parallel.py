"""Shared-memory multiprocessing row-block SpMV backend.

The node-level analogue of the paper's multi-GPGPU execution modes
(Sect. III-A): the matrix is split into contiguous, nnz-balanced CSR
row blocks (one per worker process, mirroring
:func:`repro.distributed.partition.partition_rows`), the input and
output vectors live in :mod:`multiprocessing.shared_memory` segments,
and every worker runs the row-local ``np.add.reduceat`` kernel over
its own block.

Two execution modes mirror ``distributed/modes.py``:

* ``"vector"`` — each worker runs one unsplit kernel over its whole
  row block against the full shared ``x``.  Because the per-row
  reduction sees exactly the same element sequence as the serial
  ``csr_reduceat`` kernel, the result is **bitwise identical** to the
  serial engine regardless of the number of workers.
* ``"task"`` — each worker splits its block into *local* columns
  (inside its own row range) and *nonlocal* columns and runs two
  kernels, adding the partial results.  This models the overlapped
  kernel split (and its write-the-result-twice penalty, the
  +8/Nnzr bytes/flop of Sect. III-A); the within-row summation order
  changes, so results match serial only to rounding.

Worker processes are persistent: ``ParallelSpMV`` spawns them once and
each ``spmv`` call only copies ``x`` into shared memory, wakes the
workers, and waits for their row blocks — no per-call process or
matrix setup.  Always ``close()`` (or use as a context manager) to
release the shared segments.
"""

from __future__ import annotations

import multiprocessing as mp
from multiprocessing import shared_memory

import numpy as np

from repro import obs
from repro.distributed.partition import partition_rows
from repro.formats.base import SparseMatrixFormat
from repro.formats.csr import CSRMatrix

__all__ = ["ParallelSpMV", "parallel_spmv", "PARALLEL_MODES"]

PARALLEL_MODES = ("vector", "task")


def _block_spmv(indptr, indices, data, x, y):
    """Row-local reduceat kernel: ``y = A_block @ x`` (stored rows only).

    Identical arithmetic to the serial ``csr_reduceat`` variant: the
    per-row product sequence and reduction order do not depend on how
    rows are grouped into blocks, which is what makes vector mode
    bitwise reproducible.
    """
    y[:] = 0.0
    if data.shape[0] == 0:
        return y
    prod = data * x[indices]
    lengths = np.diff(indptr)
    nonempty = np.flatnonzero(lengths > 0)
    y[nonempty] = np.add.reduceat(prod, indptr[:-1][nonempty])
    return y


def _split_local(indptr, indices, data, lo, hi):
    """Split a CSR block into (local, nonlocal) column parts.

    Local means column index in ``[lo, hi)`` — the worker's own row
    range, i.e. the part that needs no "halo" in the distributed
    picture.  Both parts keep the original row structure (their
    ``indptr`` spans the same rows).
    """
    nrows = indptr.shape[0] - 1
    mask = (indices >= lo) & (indices < hi)
    row_of = np.repeat(np.arange(nrows, dtype=np.int64), np.diff(indptr))
    parts = []
    for m in (mask, ~mask):
        cnt = np.bincount(row_of[m], minlength=nrows)
        ip = np.zeros(nrows + 1, dtype=indptr.dtype)
        np.cumsum(cnt, out=ip[1:])
        parts.append((ip, indices[m], data[m]))
    return parts


def _worker_loop(
    rank,
    indptr,
    indices,
    data,
    row_range,
    mode,
    x_name,
    y_name,
    ncols,
    nrows_total,
    dtype_str,
    task_q,
    done_q,
):
    """Persistent worker: attach to the shared vectors, serve spmv calls."""
    dtype = np.dtype(dtype_str)
    shm_x = shared_memory.SharedMemory(name=x_name)
    shm_y = shared_memory.SharedMemory(name=y_name)
    try:
        x = np.ndarray(ncols, dtype=dtype, buffer=shm_x.buf)
        y_full = np.ndarray(nrows_total, dtype=dtype, buffer=shm_y.buf)
        lo, hi = row_range
        y = y_full[lo:hi]
        if mode == "task":
            (lip, lidx, ldat), (nip, nidx, ndat) = _split_local(
                indptr, indices, data, lo, hi
            )
            scratch = np.empty(hi - lo, dtype=dtype)
        while True:
            msg = task_q.get()
            if msg is None:
                break
            try:
                if mode == "vector":
                    _block_spmv(indptr, indices, data, x, y)
                else:
                    # split kernel: local part then nonlocal part, the
                    # result vector is written twice (Sect. III-A cost)
                    _block_spmv(lip, lidx, ldat, x, y)
                    _block_spmv(nip, nidx, ndat, x, scratch)
                    y += scratch
                done_q.put((rank, None))
            except Exception as exc:  # pragma: no cover - defensive
                done_q.put((rank, f"{type(exc).__name__}: {exc}"))
    finally:
        shm_x.close()
        shm_y.close()


class ParallelSpMV:
    """Persistent pool of row-block SpMV workers over shared vectors.

    Parameters
    ----------
    matrix:
        Any registered format; it is converted to CSR row blocks.
    nworkers:
        Number of worker processes (block count).
    mode:
        ``"vector"`` (unsplit kernel, bitwise-matches serial) or
        ``"task"`` (local/nonlocal split, matches to rounding).
    """

    def __init__(
        self,
        matrix: SparseMatrixFormat,
        nworkers: int,
        *,
        mode: str = "vector",
        start_method: str | None = None,
    ):
        if mode not in PARALLEL_MODES:
            raise ValueError(
                f"unknown parallel mode {mode!r}; choose from {PARALLEL_MODES}"
            )
        if nworkers < 1:
            raise ValueError(f"nworkers must be >= 1, got {nworkers}")
        csr = (
            matrix
            if isinstance(matrix, CSRMatrix)
            else CSRMatrix.from_coo(matrix.to_coo())
        )
        nworkers = min(nworkers, csr.nrows)
        self.mode = mode
        self.nworkers = nworkers
        self.nrows = csr.nrows
        self.ncols = csr.ncols
        self.nnz = csr.nnz
        self.dtype = csr.dtype
        self.partition = partition_rows(
            csr.nrows, nworkers, row_weights=csr.row_lengths().astype(np.float64)
        )
        self.calls = 0
        self._closed = False

        itemsize = self.dtype.itemsize
        self._shm_x = shared_memory.SharedMemory(
            create=True, size=max(1, self.ncols * itemsize)
        )
        self._shm_y = shared_memory.SharedMemory(
            create=True, size=max(1, self.nrows * itemsize)
        )
        self._x = np.ndarray(self.ncols, dtype=self.dtype, buffer=self._shm_x.buf)
        self._y = np.ndarray(self.nrows, dtype=self.dtype, buffer=self._shm_y.buf)

        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        ctx = mp.get_context(start_method)
        self._done_q = ctx.SimpleQueue()
        self._task_qs = []
        self._procs = []
        indptr = csr.indptr
        indices = csr.indices
        data = csr.data
        with obs.span("engine.parallel.start", nworkers=nworkers, mode=mode):
            for rank, (lo, hi) in enumerate(self.partition):
                p0, p1 = int(indptr[lo]), int(indptr[hi])
                block_indptr = (indptr[lo : hi + 1] - p0).copy()
                tq = ctx.SimpleQueue()
                proc = ctx.Process(
                    target=_worker_loop,
                    args=(
                        rank,
                        block_indptr,
                        indices[p0:p1].copy(),
                        data[p0:p1].copy(),
                        (lo, hi),
                        mode,
                        self._shm_x.name,
                        self._shm_y.name,
                        self.ncols,
                        self.nrows,
                        self.dtype.str,
                        tq,
                        self._done_q,
                    ),
                    daemon=True,
                )
                proc.start()
                self._task_qs.append(tq)
                self._procs.append(proc)

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``y = A @ x`` computed by the worker pool.

        ``x`` is copied into the shared input segment; each worker
        writes its row block of the shared output, which is then
        copied into ``out`` (allocated if missing).
        """
        if self._closed:
            raise RuntimeError("ParallelSpMV is closed")
        x = np.asarray(x)
        if x.shape != (self.ncols,):
            raise ValueError(f"x must have shape ({self.ncols},), got {x.shape}")
        if x.dtype != self.dtype:
            x = x.astype(self.dtype)
        self._x[:] = x
        for tq in self._task_qs:
            tq.put("go")
        errors = []
        for _ in range(self.nworkers):
            rank, err = self._done_q.get()
            if err is not None:
                errors.append(f"worker {rank}: {err}")
        if errors:
            raise RuntimeError("; ".join(errors))
        self.calls += 1
        if obs.enabled():
            obs.inc(
                "engine_parallel_spmv_total", 1,
                mode=self.mode, nworkers=str(self.nworkers),
            )
        if out is None:
            return self._y.copy()
        if out.shape != (self.nrows,):
            raise ValueError(
                f"out must have shape ({self.nrows},), got {out.shape}"
            )
        np.copyto(out, self._y, casting="same_kind")
        return out

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and release the shared segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for tq in self._task_qs:
            try:
                tq.put(None)
            except (OSError, ValueError):  # pragma: no cover
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        self._x = None
        self._y = None
        for shm in (self._shm_x, self._shm_y):
            try:
                shm.close()
                shm.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass

    def __enter__(self) -> "ParallelSpMV":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ParallelSpMV {self.nrows}x{self.ncols} nnz={self.nnz} "
            f"workers={self.nworkers} mode={self.mode} calls={self.calls}>"
        )


def parallel_spmv(
    matrix: SparseMatrixFormat,
    x: np.ndarray,
    *,
    nworkers: int,
    mode: str = "vector",
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`ParallelSpMV`."""
    with ParallelSpMV(matrix, nworkers, mode=mode) as pool:
        return pool.spmv(x)
