"""Deprecated shim — the batched SpMM kernels moved to :mod:`repro.ops`.

The fused block kernels and the format dispatch live in
:mod:`repro.ops.spmm_kernels` now (registered under ``op="spmm"`` in
the central registry).  The two historical entry points remain
importable here but emit one :class:`DeprecationWarning` per process.
"""

from __future__ import annotations

from repro.ops.spmm_kernels import spmm_dispatch as _spmm_dispatch
from repro.ops.spmm_kernels import spmm_permuted as _spmm_permuted
from repro.utils.deprecation import deprecated_alias

__all__ = ["spmm_dispatch", "spmm_permuted"]

spmm_dispatch = deprecated_alias(
    _spmm_dispatch,
    old="repro.engine.spmm.spmm_dispatch",
    new="repro.ops.spmm_dispatch",
)
spmm_permuted = deprecated_alias(
    _spmm_permuted,
    old="repro.engine.spmm.spmm_permuted",
    new="repro.ops.spmm_permuted",
)
