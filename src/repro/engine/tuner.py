"""Per-matrix kernel-variant autotuning (the CMRS lesson).

For each bound matrix the tuner times every candidate kernel variant of
its format (2-5 NumPy/scipy kernels from the :mod:`repro.ops` registry) on the
live data and picks the fastest.  Decisions are cached under a *matrix
fingerprint* — shape, nnz, dtype and a row-length histogram digest — in
:class:`repro.matrices.cache.TunerCache`, so binding a structurally
identical matrix later (another solver run, another process) skips the
timing phase: the decision is deterministic once cached.

Everything is instrumented through :mod:`repro.obs` when enabled:
``engine_tune_total`` / ``engine_tune_cache_hits_total`` counters, an
``engine_variant_seconds`` histogram per candidate, and one
``engine.tune`` span per tuning run.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.engine.workspace import Workspace
from repro.ops.registry import KernelVariant, get_variant, variants_for
from repro.formats.base import SparseMatrixFormat

__all__ = ["fingerprint", "TuneResult", "autotune", "default_tuner_cache"]

_DEFAULT_CACHE = None
_DEFAULT_CACHE_LOCK = threading.Lock()


def default_tuner_cache():
    """Process-wide :class:`~repro.matrices.cache.TunerCache` singleton.

    Safe to call from concurrent ``bind()`` paths (e.g. the
    :mod:`repro.serve` worker pool): the double-checked lock guarantees
    exactly one cache is ever created, so decisions recorded by one
    thread are visible to all others.
    """
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        with _DEFAULT_CACHE_LOCK:
            if _DEFAULT_CACHE is None:
                from repro.matrices.cache import TunerCache

                _DEFAULT_CACHE = TunerCache()
    return _DEFAULT_CACHE


def fingerprint(matrix: SparseMatrixFormat) -> str:
    """Structural fingerprint of a matrix instance.

    Captures what the kernel-variant choice actually depends on — the
    format, dimensions, nnz, dtype and the row-length *distribution*
    (a 64-bin histogram) — while ignoring the values, so re-assembled
    matrices with identical sparsity structure share a cache entry.
    """
    lengths = matrix.row_lengths()
    hist = np.bincount(
        np.minimum(np.asarray(lengths, dtype=np.int64), 4095), minlength=1
    )
    # compress to 64 bins so the digest is stable and small
    pad = -(-hist.shape[0] // 64) * 64
    h = np.zeros(pad, dtype=np.int64)
    h[: hist.shape[0]] = hist
    binned = h.reshape(64, -1).sum(axis=1)
    digest = hashlib.sha1(binned.tobytes()).hexdigest()[:16]
    # fold in the candidate roster: a cached decision must not outlive
    # the variant set it was ranked against (e.g. the optional compiled
    # delegates registering on one machine but not another)
    roster = ",".join(v.name for v in variants_for(matrix))
    vdigest = hashlib.sha1(roster.encode()).hexdigest()[:8]
    # ... and the available kernel-tier set (numba/cnative presence and
    # version): a cache warmed without a compiled backend must not pin
    # a slow NumPy variant after the backend becomes available, and
    # recorded timings from one tier set are not comparable to another's
    from repro.kernels import compiled as _ctier

    tiers = ",".join(_ctier.kernel_tiers())
    tdigest = hashlib.sha1(tiers.encode()).hexdigest()[:8]
    return (
        f"{matrix.name}:{matrix.nrows}x{matrix.ncols}:nnz{matrix.nnz}:"
        f"{matrix.dtype.name}:rl{digest}:vs{vdigest}:kt{tdigest}"
    )


@dataclass(frozen=True)
class TuneResult:
    """Outcome of one autotuning run."""

    fingerprint: str
    variant: str
    #: best wall-clock seconds per call for each candidate
    timings: dict[str, float] = field(default_factory=dict)
    cache_hit: bool = False
    #: whether model-guided pruning was applied to this run
    pruned: bool = False
    #: candidates dropped by the model before timing (predicted order)
    dropped: tuple[str, ...] = ()
    #: predicted seconds per candidate (whole roster, pruned or not)
    predicted: dict[str, float] = field(default_factory=dict)
    #: registry tags of the winning variant (tier provenance)
    tier: tuple[str, ...] = ()
    #: modelled traffic of the winner over its measured time, in GB/s
    measured_gbs: float | None = None
    #: modelled sustainable GB/s of the winner (bandwidth x tier eff.)
    predicted_gbs: float | None = None

    @property
    def best_seconds(self) -> float:
        return self.timings.get(self.variant, float("nan"))


def _time_variant(
    variant: KernelVariant,
    matrix: SparseMatrixFormat,
    ws: Workspace,
    x: np.ndarray,
    y: np.ndarray,
    reps: int,
) -> float:
    """Best-of-``reps`` wall-clock seconds of one variant (after warmup)."""
    variant.run(matrix, ws, x, y)  # warmup: builds workspace buffers
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        variant.run(matrix, ws, x, y)
        best = min(best, time.perf_counter() - t0)
    return best


def autotune(
    matrix: SparseMatrixFormat,
    ws: Workspace | None = None,
    *,
    reps: int = 3,
    seed: int = 0,
    cache=None,
    use_cache: bool = True,
    prune: bool = False,
    top_k: int = 2,
) -> TuneResult:
    """Pick the fastest kernel variant for ``matrix``.

    A cached decision for the matrix's fingerprint is returned
    immediately (``cache_hit=True``, no timings).  Otherwise each
    candidate runs ``reps`` times on a seeded random RHS and the
    fastest wins; the decision is persisted.

    With ``prune=True`` the Eq.-1 traffic model
    (:func:`repro.perfmodel.predict.prune_roster`) ranks the roster
    analytically first and only the ``top_k`` fastest-predicted
    candidates are timed; the prediction table, the dropped names and
    the winner's predicted-vs-measured GB/s are recorded alongside the
    decision.

    Determinism: for a given fingerprint the decision is stable once
    recorded — repeated binds resolve from the cache, never re-race.
    """
    if ws is None:
        ws = Workspace()
    fp = fingerprint(matrix)
    cache = cache if cache is not None else default_tuner_cache()

    if obs.enabled():
        obs.inc("engine_tune_total", 1, format=matrix.name)

    if use_cache:
        rec = cache.get(fp)
        if rec is not None:
            try:
                get_variant(matrix, rec["variant"])
            except KeyError:
                rec = None  # stale entry from an older variant set
        if rec is not None:
            if obs.enabled():
                obs.inc("engine_tune_cache_hits_total", 1, format=matrix.name)
            return TuneResult(
                fingerprint=fp,
                variant=rec["variant"],
                timings={k: float(v) for k, v in rec.get("timings", {}).items()},
                cache_hit=True,
                pruned=bool(rec.get("pruned", False)),
                dropped=tuple(rec.get("dropped", ())),
                predicted={
                    k: float(v) for k, v in rec.get("predicted", {}).items()
                },
                tier=tuple(rec.get("tier", ())),
                measured_gbs=rec.get("measured_gbs"),
                predicted_gbs=rec.get("predicted_gbs"),
            )

    candidates = variants_for(matrix)
    predicted: dict[str, float] = {}
    dropped: tuple[str, ...] = ()
    preds_by_name: dict = {}
    did_prune = False
    if prune and len(candidates) > 1:
        from repro.perfmodel.predict import prune_roster

        keep, dropped_names, preds = prune_roster(
            matrix, top_k=top_k, candidates=candidates
        )
        preds_by_name = {p.name: p for p in preds}
        predicted = {p.name: p.predicted_seconds for p in preds}
        keep_set = set(keep)
        candidates = [c for c in candidates if c.name in keep_set]
        dropped = tuple(dropped_names)
        did_prune = True

    rng = np.random.default_rng(seed)
    x = rng.standard_normal(matrix.ncols).astype(matrix.dtype)
    y = np.zeros(matrix.nrows, dtype=matrix.dtype)

    timings: dict[str, float] = {}
    with obs.span("engine.tune", format=matrix.name, fingerprint=fp):
        for v in candidates:
            dt = _time_variant(v, matrix, ws, x, y, reps)
            timings[v.name] = dt
            if obs.enabled():
                obs.observe(
                    "engine_variant_seconds", dt, variant=v.name,
                    format=matrix.name,
                )
    best = min(timings, key=timings.get)
    tier = tuple(get_variant(matrix, best).tags)
    measured_gbs = None
    predicted_gbs = None
    bp = preds_by_name.get(best)
    if bp is not None:
        predicted_gbs = round(bp.effective_gbs, 3)
        if timings[best] > 0:
            measured_gbs = round(bp.bytes_per_call / timings[best] / 1e9, 3)
    if use_cache:
        cache.put(
            fp,
            {
                "variant": best,
                "timings": timings,
                "format": matrix.name,
                "tier": list(tier),
                "pruned": did_prune,
                "dropped": list(dropped),
                "predicted": predicted,
                "measured_gbs": measured_gbs,
                "predicted_gbs": predicted_gbs,
            },
        )
    if obs.enabled():
        obs.set_gauge(
            "engine_tuned_variant_seconds", timings[best],
            format=matrix.name, variant=best,
        )
    return TuneResult(
        fingerprint=fp,
        variant=best,
        timings=timings,
        pruned=did_prune,
        dropped=dropped,
        predicted=predicted,
        tier=tier,
        measured_gbs=measured_gbs,
        predicted_gbs=predicted_gbs,
    )
