"""Deprecated shim — the kernel-variant tables moved to :mod:`repro.ops`.

Historically this module hard-coded the per-format spMVM kernel lists
and the isinstance dispatch chain.  The ISSUE-4 refactor absorbed both
into the central registry (:mod:`repro.ops.registry`, kernel bodies in
:mod:`repro.ops.spmv_kernels`); every name below still resolves but
the callable entry points emit one :class:`DeprecationWarning` per
process.  New code should import from :mod:`repro.ops`.
"""

from __future__ import annotations

from repro.ops.registry import KernelVariant
from repro.ops.registry import get_variant as _get_variant
from repro.ops.registry import variant_names_for as _variant_names_for
from repro.ops.registry import variants_for as _variants_for
from repro.ops.spmv_kernels import (  # noqa: F401 - re-exported for compat
    _HAVE_CSR_MATVEC,
    _scipy_sparsetools,
)
from repro.ops.spmv_kernels import stored_csr_triplet as _stored_csr_triplet
from repro.utils.deprecation import deprecated_alias

__all__ = [
    "KernelVariant",
    "variants_for",
    "variant_names_for",
    "get_variant",
    "stored_csr_triplet",
]

variants_for = deprecated_alias(
    _variants_for,
    old="repro.engine.variants.variants_for",
    new="repro.ops.variants_for",
)
variant_names_for = deprecated_alias(
    _variant_names_for,
    old="repro.engine.variants.variant_names_for",
    new="repro.ops.variant_names_for",
)
get_variant = deprecated_alias(
    _get_variant,
    old="repro.engine.variants.get_variant",
    new="repro.ops.get_variant",
)
stored_csr_triplet = deprecated_alias(
    _stored_csr_triplet,
    old="repro.engine.variants.stored_csr_triplet",
    new="repro.ops.stored_csr_triplet",
)
