"""Reusable per-matrix scratch buffers for allocation-free kernels.

The paper's Eq. (1) argument is that spMVM is bandwidth-bound; a NumPy
host kernel that allocates O(nnz) temporaries per call fights the
allocator and the memory subsystem instead of streaming the matrix.
A :class:`Workspace` owns named persistent buffers so a bound kernel's
steady-state inner loop touches only pre-existing memory:

* ``prod``-style O(nnz) scratch for gathered/products,
* float64 accumulation scratch for the prefix-sum CSR variant,
* O(nrows) accumulators and output staging.

Buffers are created lazily on first request and re-used verbatim on
every following call; :attr:`Workspace.allocations` counts creations so
tests can assert the steady state allocates nothing new.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """Named pool of persistent ndarray scratch buffers.

    A workspace is bound to one matrix instance (the engine creates one
    per :class:`~repro.engine.bound.BoundMatrix`); buffer shapes are
    fixed after first creation, and requesting the same name with a
    different shape/dtype raises, which catches kernel bookkeeping bugs
    early instead of silently reallocating every call.
    """

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self._consts: dict[str, object] = {}
        self.allocations = 0

    def buf(self, name: str, shape, dtype) -> np.ndarray:
        """Get-or-create the persistent buffer ``name``.

        The content of a returned buffer is *undefined*; kernels must
        fully overwrite it (or explicitly ``fill(0)``) before reading.
        """
        shape = tuple(int(s) for s in np.atleast_1d(shape))
        dtype = np.dtype(dtype)
        arr = self._buffers.get(name)
        if arr is None:
            arr = np.empty(shape, dtype=dtype)
            self._buffers[name] = arr
            self.allocations += 1
            return arr
        if arr.shape != shape or arr.dtype != dtype:
            raise ValueError(
                f"workspace buffer {name!r} requested as {shape}/{dtype} but "
                f"exists as {arr.shape}/{arr.dtype}"
            )
        return arr

    def const(self, name: str, factory):
        """Get-or-create a precomputed constant (index arrays, run maps).

        ``factory`` is called once; the result is cached under ``name``.
        Unlike :meth:`buf`, constants are treated as immutable by the
        kernels.
        """
        if name not in self._consts:
            self._consts[name] = factory()
            self.allocations += 1
        return self._consts[name]

    @property
    def nbytes(self) -> int:
        """Total bytes held by the scratch buffers (not the constants)."""
        return int(sum(b.nbytes for b in self._buffers.values()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Workspace {len(self._buffers)} buffers, "
            f"{len(self._consts)} consts, {self.nbytes} bytes>"
        )
