"""Zero-allocation autotuned SpMV/SpMM execution engine.

The engine layer turns a *storage format* (the :mod:`repro.formats` /
:mod:`repro.core` classes, which describe how nonzeros are laid out)
into an *execution state*: a matrix **bound** to a persistent
workspace and the kernel variant that the autotuner measured to be
fastest for its structure.

* :mod:`repro.engine.workspace` — named, reusable scratch buffers so
  steady-state kernel calls perform no allocation.
* :mod:`repro.ops` — the central kernel registry the engine resolves
  variants from (2-5 candidate NumPy kernels per format plus the
  optional compiled scipy delegates, and the batched SpMM kernels).
* :mod:`repro.engine.tuner` — times candidates on the live matrix and
  caches the decision under a structural fingerprint.
* :mod:`repro.engine.bound` — :class:`BoundMatrix` + the
  :func:`make_spmv_operator` closure solvers consume.
* :mod:`repro.engine.parallel` — shared-memory multiprocessing
  row-block backend mirroring the distributed vector/task modes.

``variants_for``/``get_variant``/``spmm_dispatch``/``spmm_permuted``
are canonical re-exports from :mod:`repro.ops` (the old deep-module
paths ``repro.engine.variants`` and ``repro.engine.spmm`` still exist
as warn-once deprecation shims).
"""

from repro.engine.bound import BoundMatrix, bind, make_spmv_operator
from repro.engine.parallel import PARALLEL_MODES, ParallelSpMV, parallel_spmv
from repro.engine.tuner import (
    TuneResult,
    autotune,
    default_tuner_cache,
    fingerprint,
)
from repro.engine.workspace import Workspace
from repro.ops.registry import KernelVariant, get_variant, variants_for
from repro.ops.spmm_kernels import spmm_dispatch, spmm_permuted

__all__ = [
    "BoundMatrix",
    "KernelVariant",
    "PARALLEL_MODES",
    "ParallelSpMV",
    "parallel_spmv",
    "TuneResult",
    "Workspace",
    "autotune",
    "bind",
    "default_tuner_cache",
    "fingerprint",
    "get_variant",
    "make_spmv_operator",
    "spmm_dispatch",
    "spmm_permuted",
    "variants_for",
]
