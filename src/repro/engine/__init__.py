"""Zero-allocation autotuned SpMV/SpMM execution engine.

The engine layer turns a *storage format* (the :mod:`repro.formats` /
:mod:`repro.core` classes, which describe how nonzeros are laid out)
into an *execution state*: a matrix **bound** to a persistent
workspace and the kernel variant that the autotuner measured to be
fastest for its structure.

* :mod:`repro.engine.workspace` — named, reusable scratch buffers so
  steady-state kernel calls perform no allocation.
* :mod:`repro.engine.variants` — 2-3 candidate NumPy kernels per
  format (reduceat vs cumsum vs bincount for CRS/COO, column-sweep vs
  fused-gather for the ELLPACK/jagged family, width-grouped vs
  per-chunk for SELL-C-sigma).
* :mod:`repro.engine.tuner` — times candidates on the live matrix and
  caches the decision under a structural fingerprint.
* :mod:`repro.engine.bound` — :class:`BoundMatrix` + the
  :func:`make_spmv_operator` closure solvers consume.
* :mod:`repro.engine.spmm` — batched block-of-vectors kernels.
* :mod:`repro.engine.parallel` — shared-memory multiprocessing
  row-block backend mirroring the distributed vector/task modes.
"""

from repro.engine.bound import BoundMatrix, bind, make_spmv_operator
from repro.engine.parallel import PARALLEL_MODES, ParallelSpMV, parallel_spmv
from repro.engine.spmm import spmm_dispatch, spmm_permuted
from repro.engine.tuner import (
    TuneResult,
    autotune,
    default_tuner_cache,
    fingerprint,
)
from repro.engine.variants import KernelVariant, get_variant, variants_for
from repro.engine.workspace import Workspace

__all__ = [
    "BoundMatrix",
    "KernelVariant",
    "PARALLEL_MODES",
    "ParallelSpMV",
    "parallel_spmv",
    "TuneResult",
    "Workspace",
    "autotune",
    "bind",
    "default_tuner_cache",
    "fingerprint",
    "get_variant",
    "make_spmv_operator",
    "spmm_dispatch",
    "spmm_permuted",
    "variants_for",
]
