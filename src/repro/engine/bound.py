"""Binding a matrix to a tuned, zero-allocation execution state.

``bind(matrix)`` packages a format instance with

* a persistent :class:`~repro.engine.workspace.Workspace` (gather /
  product / accumulator scratch created on first call, reused after),
* the autotuned kernel variant for this matrix's structure,
* preallocated output staging,

so iterative solvers can run allocation-free inner loops.  The bound
kernels compute in the matrix's native dtype (the Eq. (1) code-balance
argument: fewer bytes moved per flop) and expose the same stored-basis
``spmv_permuted`` shortcut as the jagged formats themselves.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro import obs
from repro.core.jds import JaggedDiagonalsBase
from repro.engine.tuner import TuneResult, autotune
from repro.engine.workspace import Workspace
from repro.obs import profile as _profile
from repro.ops.registry import KernelVariant, get_variant, variants_for
from repro.formats.base import SparseMatrixFormat

__all__ = ["BoundMatrix", "bind", "make_spmv_operator"]


class BoundMatrix:
    """A format instance bound to a workspace and a chosen kernel variant."""

    def __init__(
        self,
        matrix: SparseMatrixFormat,
        variant: KernelVariant,
        workspace: Workspace,
        tune_result: TuneResult | None = None,
        faults=None,
        label: str | None = None,
    ):
        self.matrix = matrix
        self.variant = variant
        self.workspace = workspace
        self.tune_result = tune_result
        #: optional :class:`~repro.faults.inject.FaultInjector`; its
        #: engine-layer events fire at the top of :meth:`spmv`
        self.faults = faults
        #: attribution-table identity of the *matrix* (formats of the
        #: same matrix share it); the serve registry sets the served
        #: name here, anonymous handles get a shape-derived default
        self.matrix_label = label or f"m{matrix.nrows}x{matrix.ncols}"
        self._is_jagged = isinstance(matrix, JaggedDiagonalsBase)
        perm = getattr(matrix, "permutation", None)
        self._permutes = perm is not None and not perm.is_identity
        # stored-order staging for permuting formats
        self._acc = (
            np.zeros(matrix.nrows, dtype=matrix.dtype) if self._permutes else None
        )
        self.calls = 0
        # per-handle instrumentation cache: (metrics generation,
        # profiler generation, counter child, spmv slot, spmm slot,
        # Eq.-1 balance).  Resolving the labeled counter child and the
        # profiler slot once per handle keeps the instrumented hot
        # path to an attribute read + a couple of float adds — the
        # --obs-overhead gate budget.
        self._obs_cache: tuple | None = None

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape

    @property
    def nrows(self) -> int:
        return self.matrix.nrows

    @property
    def ncols(self) -> int:
        return self.matrix.ncols

    @property
    def nnz(self) -> int:
        return self.matrix.nnz

    @property
    def dtype(self) -> np.dtype:
        return self.matrix.dtype

    @property
    def variant_name(self) -> str:
        return self.variant.name

    # ------------------------------------------------------------------
    def _obs_state(self) -> tuple:
        """Cached instrumentation handles (valid for one obs generation)."""
        reg = obs.get_registry()
        prof = _profile.get_profiler()
        cache = self._obs_cache
        if (
            cache is not None
            and cache[0] == reg.generation
            and cache[1] == prof.generation
        ):
            return cache
        m = self.matrix
        nnzr = m.nnz / max(m.nrows, 1)
        cache = (
            reg.generation,
            prof.generation,
            reg.counter("engine_spmv_total").labels(
                format=m.name, variant=self.variant.name
            ),
            prof.slot(self.matrix_label, m.name, self.variant.name, "spmv"),
            prof.slot(self.matrix_label, m.name, "spmm_dispatch", "spmm"),
            _profile.model_bytes_per_flop(max(nnzr, 1e-9)),
        )
        self._obs_cache = cache
        return cache

    def _run_kernel(self, x: np.ndarray, y: np.ndarray) -> None:
        m = self.matrix
        if self._permutes:
            self.variant.run(m, self.workspace, x, self._acc)
            # gather through the inverse permutation rather than fancy
            # scatter: np.take's contiguous write path is faster
            inv = self.workspace.const(
                "perm_inverse", lambda: m.permutation.inverse
            )
            np.take(self._acc, inv, out=y, mode="clip")
        else:
            self.variant.run(m, self.workspace, x, y)

    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``y = A @ x`` through the bound (tuned, workspace) kernel.

        With a caller-provided ``out`` the steady state performs no
        allocation at all.  Under instrumentation the call feeds the
        attribution profiler and — when a span is open on this thread,
        i.e. the call belongs to a trace — records an ``engine.spmv``
        kernel span annotated with achieved vs Eq.-1 model bandwidth.
        """
        m = self.matrix
        if self.faults is not None:
            # chaos hook: kernel_exception raises, slow_worker sleeps
            self.faults.engine_fault(format=m.name, variant=self.variant.name)
        x = m.check_rhs(x)
        # variants fully write y (their contract), so skip the zero-fill
        y = m.alloc_result(out, x, zero=False)
        self.calls += 1
        if not obs.enabled():
            self._run_kernel(x, y)
            return y
        _, _, counter, slot, _, balance = self._obs_state()
        counter.inc()
        tracer = obs.get_tracer()
        traced = tracer.current() is not None
        n = _profile.get_profiler().sample_every
        slot.calls += 1
        sampled = n > 0 and slot.calls % n == 1 % n
        if not (traced or sampled):
            self._run_kernel(x, y)
            return y
        if traced:
            with tracer.span(
                "engine.spmv",
                matrix=self.matrix_label,
                format=m.name,
                variant=self.variant.name,
            ) as sp:
                t0 = time.perf_counter()
                self._run_kernel(x, y)
                dt = time.perf_counter() - t0
                gflops = 2.0 * m.nnz / dt / 1e9 if dt > 0 else 0.0
                sp.set_attr("gflops", gflops)
                sp.set_attr("gbs", gflops * balance)
                sp.set_attr("model_balance", balance)
        else:
            t0 = time.perf_counter()
            self._run_kernel(x, y)
            dt = time.perf_counter() - t0
        if sampled:
            slot.add(
                _profile.KernelSample(
                    matrix=self.matrix_label,
                    fmt=m.name,
                    variant=self.variant.name,
                    op="spmv",
                    seconds=dt,
                    nnz=m.nnz,
                    nnzr=m.nnz / max(m.nrows, 1),
                )
            )
        return y

    def spmv_permuted(self, x_perm: np.ndarray) -> np.ndarray:
        """Stored-basis product for the Sect. II-A Krylov workflow.

        Only jagged formats (whose variants understand the permuted
        column indices) support this; the result is written into a
        persistent staging buffer — copy it if you need it to survive
        the next call.
        """
        m = self.matrix
        if not self.variant.supports_permuted:
            raise TypeError(
                f"variant {self.variant.name!r} has no permuted-basis kernel"
            )
        if m.nrows != m.ncols:
            raise ValueError("permuted-basis spmv requires a square matrix")
        x_perm = m.check_rhs(x_perm)
        y = self.workspace.buf("bound_yperm", m.nrows, m.dtype)
        self.calls += 1
        self.variant.run(m, self.workspace, x_perm, y, permuted=True)
        return y

    def spmm(self, X: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Batched multi-vector product through the engine SpMM kernels.

        Instrumented like :meth:`spmv`: profiler sample per call (the
        batch path is cold enough that thinning isn't needed) and an
        ``engine.spmm`` kernel span when a trace is active — this is
        the span a served batch's trace tree bottoms out in.
        """
        from repro.ops.spmm_kernels import spmm_dispatch

        X, out = self.matrix.check_rhs_block(X, out)
        self.calls += 1
        m = self.matrix
        if not obs.enabled():
            return spmm_dispatch(m, X, out, ws=self.workspace)
        _, _, _, _, slot, balance = self._obs_state()
        block = int(X.shape[1])
        tracer = obs.get_tracer()
        slot.calls += 1
        if tracer.current() is not None:
            with tracer.span(
                "engine.spmm",
                matrix=self.matrix_label,
                format=m.name,
                block=block,
            ) as sp:
                t0 = time.perf_counter()
                y = spmm_dispatch(m, X, out, ws=self.workspace)
                dt = time.perf_counter() - t0
                gflops = 2.0 * m.nnz * block / dt / 1e9 if dt > 0 else 0.0
                sp.set_attr("gflops", gflops)
                sp.set_attr("gbs", gflops * balance)
                sp.set_attr("model_balance", balance)
        else:
            t0 = time.perf_counter()
            y = spmm_dispatch(m, X, out, ws=self.workspace)
            dt = time.perf_counter() - t0
        slot.add(
            _profile.KernelSample(
                matrix=self.matrix_label,
                fmt=m.name,
                variant="spmm_dispatch",
                op="spmm",
                seconds=dt,
                nnz=m.nnz,
                nnzr=m.nnz / max(m.nrows, 1),
                block=block,
            )
        )
        return y

    def clone(self) -> "BoundMatrix":
        """A new handle sharing the matrix + tune decision, fresh workspace.

        A :class:`BoundMatrix` is **not** safe to call from two threads
        at once: ``spmv``/``spmm`` scribble into the handle's named
        :class:`~repro.engine.workspace.Workspace` buffers (and the
        permuting formats' staging accumulator), so concurrent calls
        corrupt each other's scratch.  ``clone()`` is the supported way
        to share one tuned matrix across workers — the (read-only)
        matrix data and the autotuner's variant decision are shared,
        while every clone owns private scratch.  The matrix registry of
        :mod:`repro.serve` hands each worker its own clone.

        The fault injector (when set) is shared by clones: its firing
        state is thread-safe and per-event budgets are global, so a
        ``times=1`` engine fault fires exactly once across all workers.
        """
        return BoundMatrix(
            self.matrix, self.variant, Workspace(), self.tune_result,
            faults=self.faults, label=self.matrix_label,
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<BoundMatrix {self.matrix.name} {self.nrows}x{self.ncols} "
            f"variant={self.variant.name} calls={self.calls}>"
        )


def bind(
    matrix: SparseMatrixFormat,
    *,
    tune: bool = True,
    variant: str | None = None,
    reps: int = 3,
    seed: int = 0,
    cache=None,
    use_cache: bool = True,
    prune: bool = False,
    top_k: int = 2,
    faults=None,
    label: str | None = None,
) -> BoundMatrix:
    """Bind ``matrix`` to a workspace and a kernel variant.

    ``variant`` forces a specific kernel by name; otherwise the
    autotuner runs (``tune=True``, cached per fingerprint) or the
    format's first-listed variant is taken (``tune=False``).
    ``prune=True`` lets the Eq.-1 traffic model shrink the roster to
    the ``top_k`` plausible winners before timing.
    ``faults`` attaches a :class:`~repro.faults.inject.FaultInjector`
    whose engine-layer events fire inside :meth:`BoundMatrix.spmv`.
    ``label`` names the matrix in profiler attribution tables.
    """
    ws = Workspace()
    tr = None
    if variant is not None:
        chosen = get_variant(matrix, variant)
    elif tune:
        with obs.span("engine.bind", format=matrix.name):
            tr = autotune(
                matrix, ws, reps=reps, seed=seed, cache=cache,
                use_cache=use_cache, prune=prune, top_k=top_k,
            )
        chosen = get_variant(matrix, tr.variant)
    else:
        chosen = variants_for(matrix)[0]
    return BoundMatrix(matrix, chosen, ws, tr, faults=faults, label=label)


def make_spmv_operator(
    matrix: SparseMatrixFormat | BoundMatrix,
    *,
    permuted: bool = False,
    tune: bool = True,
    num_buffers: int = 2,
) -> Callable[[np.ndarray], np.ndarray]:
    """Allocation-free ``A @ x`` closure over a bound matrix.

    Output buffers are ping-ponged (``num_buffers`` of them), so the
    classic three-term recurrences (CG, Lanczos, KPM, power iteration)
    can hold the previous result while the next one is computed without
    any per-iteration allocation.  Results are only valid until the
    buffer cycles back — callers needing longer-lived results must
    copy.
    """
    bound = matrix if isinstance(matrix, BoundMatrix) else bind(matrix, tune=tune)
    if permuted:
        return bound.spmv_permuted
    if num_buffers < 1:
        raise ValueError(f"num_buffers must be >= 1, got {num_buffers}")
    buffers = [
        np.zeros(bound.nrows, dtype=bound.dtype) for _ in range(num_buffers)
    ]
    state = {"i": 0}

    def apply(x: np.ndarray) -> np.ndarray:
        i = state["i"]
        state["i"] = (i + 1) % num_buffers
        return bound.spmv(x, out=buffers[i])

    apply.bound = bound  # type: ignore[attr-defined] - introspection hook
    return apply
