"""Binding a matrix to a tuned, zero-allocation execution state.

``bind(matrix)`` packages a format instance with

* a persistent :class:`~repro.engine.workspace.Workspace` (gather /
  product / accumulator scratch created on first call, reused after),
* the autotuned kernel variant for this matrix's structure,
* preallocated output staging,

so iterative solvers can run allocation-free inner loops.  The bound
kernels compute in the matrix's native dtype (the Eq. (1) code-balance
argument: fewer bytes moved per flop) and expose the same stored-basis
``spmv_permuted`` shortcut as the jagged formats themselves.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro import obs
from repro.core.jds import JaggedDiagonalsBase
from repro.engine.tuner import TuneResult, autotune
from repro.engine.workspace import Workspace
from repro.ops.registry import KernelVariant, get_variant, variants_for
from repro.formats.base import SparseMatrixFormat

__all__ = ["BoundMatrix", "bind", "make_spmv_operator"]


class BoundMatrix:
    """A format instance bound to a workspace and a chosen kernel variant."""

    def __init__(
        self,
        matrix: SparseMatrixFormat,
        variant: KernelVariant,
        workspace: Workspace,
        tune_result: TuneResult | None = None,
        faults=None,
    ):
        self.matrix = matrix
        self.variant = variant
        self.workspace = workspace
        self.tune_result = tune_result
        #: optional :class:`~repro.faults.inject.FaultInjector`; its
        #: engine-layer events fire at the top of :meth:`spmv`
        self.faults = faults
        self._is_jagged = isinstance(matrix, JaggedDiagonalsBase)
        perm = getattr(matrix, "permutation", None)
        self._permutes = perm is not None and not perm.is_identity
        # stored-order staging for permuting formats
        self._acc = (
            np.zeros(matrix.nrows, dtype=matrix.dtype) if self._permutes else None
        )
        self.calls = 0

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape

    @property
    def nrows(self) -> int:
        return self.matrix.nrows

    @property
    def ncols(self) -> int:
        return self.matrix.ncols

    @property
    def nnz(self) -> int:
        return self.matrix.nnz

    @property
    def dtype(self) -> np.dtype:
        return self.matrix.dtype

    @property
    def variant_name(self) -> str:
        return self.variant.name

    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``y = A @ x`` through the bound (tuned, workspace) kernel.

        With a caller-provided ``out`` the steady state performs no
        allocation at all.
        """
        m = self.matrix
        if self.faults is not None:
            # chaos hook: kernel_exception raises, slow_worker sleeps
            self.faults.engine_fault(format=m.name, variant=self.variant.name)
        x = m.check_rhs(x)
        # variants fully write y (their contract), so skip the zero-fill
        y = m.alloc_result(out, x, zero=False)
        self.calls += 1
        if self._permutes:
            self.variant.run(m, self.workspace, x, self._acc)
            # gather through the inverse permutation rather than fancy
            # scatter: np.take's contiguous write path is faster
            inv = self.workspace.const(
                "perm_inverse", lambda: m.permutation.inverse
            )
            np.take(self._acc, inv, out=y, mode="clip")
        else:
            self.variant.run(m, self.workspace, x, y)
        if obs.enabled():
            obs.inc(
                "engine_spmv_total", 1, format=m.name, variant=self.variant.name
            )
        return y

    def spmv_permuted(self, x_perm: np.ndarray) -> np.ndarray:
        """Stored-basis product for the Sect. II-A Krylov workflow.

        Only jagged formats (whose variants understand the permuted
        column indices) support this; the result is written into a
        persistent staging buffer — copy it if you need it to survive
        the next call.
        """
        m = self.matrix
        if not self.variant.supports_permuted:
            raise TypeError(
                f"variant {self.variant.name!r} has no permuted-basis kernel"
            )
        if m.nrows != m.ncols:
            raise ValueError("permuted-basis spmv requires a square matrix")
        x_perm = m.check_rhs(x_perm)
        y = self.workspace.buf("bound_yperm", m.nrows, m.dtype)
        self.calls += 1
        self.variant.run(m, self.workspace, x_perm, y, permuted=True)
        return y

    def spmm(self, X: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Batched multi-vector product through the engine SpMM kernels."""
        from repro.ops.spmm_kernels import spmm_dispatch

        X, out = self.matrix.check_rhs_block(X, out)
        self.calls += 1
        return spmm_dispatch(self.matrix, X, out, ws=self.workspace)

    def clone(self) -> "BoundMatrix":
        """A new handle sharing the matrix + tune decision, fresh workspace.

        A :class:`BoundMatrix` is **not** safe to call from two threads
        at once: ``spmv``/``spmm`` scribble into the handle's named
        :class:`~repro.engine.workspace.Workspace` buffers (and the
        permuting formats' staging accumulator), so concurrent calls
        corrupt each other's scratch.  ``clone()`` is the supported way
        to share one tuned matrix across workers — the (read-only)
        matrix data and the autotuner's variant decision are shared,
        while every clone owns private scratch.  The matrix registry of
        :mod:`repro.serve` hands each worker its own clone.

        The fault injector (when set) is shared by clones: its firing
        state is thread-safe and per-event budgets are global, so a
        ``times=1`` engine fault fires exactly once across all workers.
        """
        return BoundMatrix(
            self.matrix, self.variant, Workspace(), self.tune_result,
            faults=self.faults,
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<BoundMatrix {self.matrix.name} {self.nrows}x{self.ncols} "
            f"variant={self.variant.name} calls={self.calls}>"
        )


def bind(
    matrix: SparseMatrixFormat,
    *,
    tune: bool = True,
    variant: str | None = None,
    reps: int = 3,
    seed: int = 0,
    cache=None,
    use_cache: bool = True,
    faults=None,
) -> BoundMatrix:
    """Bind ``matrix`` to a workspace and a kernel variant.

    ``variant`` forces a specific kernel by name; otherwise the
    autotuner runs (``tune=True``, cached per fingerprint) or the
    format's first-listed variant is taken (``tune=False``).
    ``faults`` attaches a :class:`~repro.faults.inject.FaultInjector`
    whose engine-layer events fire inside :meth:`BoundMatrix.spmv`.
    """
    ws = Workspace()
    tr = None
    if variant is not None:
        chosen = get_variant(matrix, variant)
    elif tune:
        with obs.span("engine.bind", format=matrix.name):
            tr = autotune(
                matrix, ws, reps=reps, seed=seed, cache=cache, use_cache=use_cache
            )
        chosen = get_variant(matrix, tr.variant)
    else:
        chosen = variants_for(matrix)[0]
    return BoundMatrix(matrix, chosen, ws, tr, faults=faults)


def make_spmv_operator(
    matrix: SparseMatrixFormat | BoundMatrix,
    *,
    permuted: bool = False,
    tune: bool = True,
    num_buffers: int = 2,
) -> Callable[[np.ndarray], np.ndarray]:
    """Allocation-free ``A @ x`` closure over a bound matrix.

    Output buffers are ping-ponged (``num_buffers`` of them), so the
    classic three-term recurrences (CG, Lanczos, KPM, power iteration)
    can hold the previous result while the next one is computed without
    any per-iteration allocation.  Results are only valid until the
    buffer cycles back — callers needing longer-lived results must
    copy.
    """
    bound = matrix if isinstance(matrix, BoundMatrix) else bind(matrix, tune=tune)
    if permuted:
        return bound.spmv_permuted
    if num_buffers < 1:
        raise ValueError(f"num_buffers must be >= 1, got {num_buffers}")
    buffers = [
        np.zeros(bound.nrows, dtype=bound.dtype) for _ in range(num_buffers)
    ]
    state = {"i": 0}

    def apply(x: np.ndarray) -> np.ndarray:
        i = state["i"]
        state["i"] = (i + 1) % num_buffers
        return bound.spmv(x, out=buffers[i])

    apply.bound = bound  # type: ignore[attr-defined] - introspection hook
    return apply
