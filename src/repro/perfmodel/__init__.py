"""Analytic performance models of Sect. II-B (Eqs. 1-4) + CPU baseline."""

from repro.perfmodel.balance import (
    alpha_bounds,
    alpha_from_balance,
    code_balance,
    code_balance_dp,
    code_balance_sp,
    predicted_gflops,
)
from repro.perfmodel.cpu import (
    WESTMERE_BANDWIDTH_GBS,
    CPUReport,
    cpu_crs_gflops,
    crs_code_balance_dp,
    estimate_alpha_cpu,
    model_cpu_crs,
)
from repro.perfmodel.roofline import (
    RooflinePoint,
    attainable_gflops,
    ridge_intensity,
    roofline_series,
    spmv_intensity,
)
from repro.perfmodel.pcie_model import (
    PCIeAnalysis,
    analyse,
    nnzr_lower_bound_10pct,
    nnzr_upper_bound_50pct,
    t_mvm,
    t_pci,
)
from repro.perfmodel.predict import (
    TIER_EFFICIENCY,
    VariantPrediction,
    explain_rows,
    predict_spmv,
    prune_roster,
    variant_tier,
)

__all__ = [
    "alpha_bounds",
    "alpha_from_balance",
    "code_balance",
    "code_balance_dp",
    "code_balance_sp",
    "predicted_gflops",
    "WESTMERE_BANDWIDTH_GBS",
    "CPUReport",
    "cpu_crs_gflops",
    "crs_code_balance_dp",
    "estimate_alpha_cpu",
    "model_cpu_crs",
    "PCIeAnalysis",
    "analyse",
    "nnzr_lower_bound_10pct",
    "nnzr_upper_bound_50pct",
    "t_mvm",
    "t_pci",
    "RooflinePoint",
    "attainable_gflops",
    "ridge_intensity",
    "roofline_series",
    "spmv_intensity",
    "TIER_EFFICIENCY",
    "VariantPrediction",
    "explain_rows",
    "predict_spmv",
    "prune_roster",
    "variant_tier",
]
