"""CPU baseline model: CRS spMVM on a dual-socket Westmere node.

Table I's last row reports the CRS double-precision performance of a
dual-socket (12-core) Intel Westmere node: 5.7 / 5.8 / 3.9 / 4.1 GF/s
for DLR1 / DLR2 / HMEp / sAMG (implementation details in ref. [4]).

CPU spMVM is memory-bandwidth bound just like the GPU kernels, with
the CRS double-precision balance

    B_CRS = (8 + 4 + 8*alpha + 16/Nnzr + 4/Nnzr) / 2

(the extra ``4/Nnzr`` is the row-pointer load).  A Westmere EP node
sustains ~40 GB/s (STREAM triad, both sockets).  The much larger CPU
cache hierarchy (12 MB LLC per socket) gives smaller alpha than the
GPU for banded matrices; callers either supply alpha or let
:func:`estimate_alpha_cpu` derive one from the matrix structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.base import SparseMatrixFormat

__all__ = [
    "WESTMERE_BANDWIDTH_GBS",
    "WESTMERE_LLC_BYTES",
    "crs_code_balance_dp",
    "cpu_crs_gflops",
    "estimate_alpha_cpu",
    "CPUReport",
    "model_cpu_crs",
]

#: sustained node-level memory bandwidth of a dual-socket Westmere EP
WESTMERE_BANDWIDTH_GBS = 40.0
#: combined last-level cache of both sockets
WESTMERE_LLC_BYTES = 2 * 12 * 1024**2


def crs_code_balance_dp(alpha: float, nnzr: float) -> float:
    """DP bytes/flop of the CRS kernel (row pointer included)."""
    if nnzr <= 0:
        raise ValueError(f"Nnzr must be > 0, got {nnzr}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    return (8.0 + 4.0 + 8.0 * alpha + 16.0 / nnzr + 4.0 / nnzr) / 2.0


def cpu_crs_gflops(
    alpha: float, nnzr: float, bandwidth_gbs: float = WESTMERE_BANDWIDTH_GBS
) -> float:
    """Bandwidth-limited CRS DP performance."""
    if bandwidth_gbs <= 0:
        raise ValueError(f"bandwidth must be > 0, got {bandwidth_gbs}")
    return bandwidth_gbs / crs_code_balance_dp(alpha, nnzr)


def estimate_alpha_cpu(
    matrix: SparseMatrixFormat,
    llc_bytes: int = WESTMERE_LLC_BYTES,
    *,
    scale: int = 1,
) -> float:
    """Coarse RHS-reuse estimate for the CPU cache hierarchy.

    The CRS sweep is row-by-row; a RHS element is reused from cache if
    the rows referencing it fit their gather footprints into the LLC
    between touches.  We estimate the resident window as
    ``llc_bytes / (bytes gathered per row)`` rows and count, per
    non-zero, whether the same column was touched within that window —
    computable exactly from the COO triplets.  ``scale`` shrinks the
    LLC alongside a shrunk matrix (see ``DeviceSpec.scaled``).
    """
    coo = matrix.to_coo()
    if coo.nnz == 0:
        return 0.0
    itemsize = coo.dtype.itemsize
    llc = max(llc_bytes // max(scale, 1), itemsize)
    nnzr = max(coo.nnz / coo.nrows, 1e-9)
    window_rows = max(int(llc / (nnzr * itemsize)), 1)
    # previous row touching the same column, per non-zero
    order = np.lexsort((coo.rows, coo.cols))
    cols = coo.cols[order]
    rows = coo.rows[order]
    same = cols[1:] == cols[:-1]
    gap = rows[1:] - rows[:-1]
    hits = int(np.count_nonzero(same & (gap <= window_rows)))
    misses = coo.nnz - hits
    return misses / coo.nnz


@dataclass(frozen=True)
class CPUReport:
    """Modelled CPU CRS execution for one matrix."""

    nrows: int
    nnz: int
    nnzr: float
    alpha: float
    bandwidth_gbs: float
    gflops: float
    code_balance: float


def model_cpu_crs(
    matrix: SparseMatrixFormat,
    *,
    bandwidth_gbs: float = WESTMERE_BANDWIDTH_GBS,
    alpha: float | None = None,
    scale: int = 1,
) -> CPUReport:
    """Evaluate the Westmere CRS model on a matrix."""
    nnzr = matrix.avg_row_length
    if alpha is None:
        alpha = estimate_alpha_cpu(matrix, scale=scale)
    balance = crs_code_balance_dp(alpha, nnzr)
    return CPUReport(
        nrows=matrix.nrows,
        nnz=matrix.nnz,
        nnzr=nnzr,
        alpha=alpha,
        bandwidth_gbs=bandwidth_gbs,
        gflops=bandwidth_gbs / balance,
        code_balance=balance,
    )
