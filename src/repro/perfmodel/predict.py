"""Model-guided roster scoring: Eq.-1 code balance per kernel variant.

The paper's argument (Sect. II-B) is that spMVM performance is
*predictable*: the kernel is bandwidth-bound, so time is just bytes
moved over attainable bandwidth, and the byte count follows from the
format's storage layout (Eq. 1).  Schubert/Hager/Fehske
(arXiv:0910.4836) apply the same discipline to multicore hosts.  This
module turns that into a tuning strategy: instead of timing every
candidate in the roster, score each one analytically and let the
autotuner measure only the plausible winners (``top_k`` pruning) —
O(1) measurements instead of an exhaustive sweep.

Per-variant traffic model (double precision, per spmv call)::

    bytes = S * (v + i + alpha * v)      entry value + index + RHS gather
          + nrows * 2 * v                LHS read-modify-write (Eq. 1's
                                         16/Nnzr per flop, un-amortised)
          + S * extra                    variant-specific spill traffic
          + aux                          format metadata streams

``aux`` is the format's declared per-spmv metadata traffic
(``spmv_aux_traffic_bytes`` attribute, 0 when absent): CMRS reads a
strip pointer plus a one-byte row counter per entry, ARG-CSR its group
descriptors and per-row id/length streams — the terms that feed the
``B = 6 + 4*alpha + 8/Nnzr`` code balance beyond value+index traffic.
The unpadded scipy delegates sweep a plain CSR view instead of the
native layout, so ``aux`` does not apply to them.

where ``S`` is the number of *stored slots the variant actually
sweeps* (nnz for CSR and the unpadded scipy delegates, the padded
rectangle/slot count for ELLPACK / JDS / SELL), ``v`` the value
itemsize, ``i`` the column-index itemsize and ``alpha`` in
``[1/Nnzr, 1]`` the RHS reuse parameter of Eq. 1 (default: the
cache-friendly ``1/Nnzr`` lower bound, appropriate for a host whose
LLC holds the RHS).

``extra`` is what separates the tiers.  A fused compiled kernel
(scipy / cnative / numba) touches each stored entry exactly once:
``extra = 0``.  Every pure-NumPy kernel must materialise the gathered
product ``x[col] * val`` — one write plus one read per slot
(``extra = 2v``) — unless it is cache-blocked (``blocked`` tag), in
which case the gather rectangle is reduced while cache-resident and
only a fraction spills (``extra = v/2``).

Predicted time divides bytes by *effective* bandwidth: the measured
host copy bandwidth (:func:`repro.obs.profile.measure_host_bandwidth`,
the same reference the attribution profiler uses) times a per-tier
efficiency factor that accounts for non-traffic overheads (NumPy
per-call dispatch, per-column Python loops).  The factors are
calibration constants, not measurements — they only need to *order*
the tiers correctly for pruning to keep the true winner in the top-k;
``bench_kernels.py --prune-quality`` measures how often it does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "VariantPrediction",
    "TIER_EFFICIENCY",
    "variant_tier",
    "predict_spmv",
    "prune_roster",
    "explain_rows",
]

#: fraction of the reference copy bandwidth each tier typically
#: sustains on the spmv sweep (calibration constants; see module doc)
TIER_EFFICIENCY = {
    "cnative": 0.90,
    "numba": 0.85,
    "scipy": 0.85,
    "numpy-blocked": 0.60,
    "numpy": 0.45,
}

#: tags (in priority order) that decide a variant's tier
_TIER_TAGS = ("cnative", "numba", "scipy")


def variant_tier(tags: tuple[str, ...]) -> str:
    """Map a kernel's registry tags onto a :data:`TIER_EFFICIENCY` key."""
    for t in _TIER_TAGS:
        if t in tags:
            return t
    if "blocked" in tags:
        return "numpy-blocked"
    return "numpy"


@dataclass(frozen=True)
class VariantPrediction:
    """Analytic score of one roster candidate on one matrix."""

    name: str
    tags: tuple[str, ...]
    tier: str
    #: stored slots the variant sweeps (padding included where swept)
    slots: int
    #: modelled main-memory traffic of one spmv call
    bytes_per_call: int
    #: Eq.-1-style code balance of the variant: bytes / (2 * nnz) flops
    balance: float
    #: modelled sustainable bandwidth (reference BW x tier efficiency)
    effective_gbs: float
    predicted_seconds: float

    @property
    def predicted_gflops(self) -> float:
        if self.predicted_seconds <= 0:
            return 0.0
        return self._flops / self.predicted_seconds / 1e9

    @property
    def _flops(self) -> float:
        # balance is bytes/flop by construction
        return self.bytes_per_call / self.balance if self.balance else 0.0


def _swept_slots(matrix, tags: tuple[str, ...]) -> int:
    """Stored slots one spmv sweep of this variant touches.

    The scipy delegates sweep unpadded CSR views (nnz entries) even
    for padded formats; every other kernel walks the format's native
    layout, padding included.
    """
    if "scipy" in tags:
        return matrix.nnz
    slots = getattr(matrix, "total_slots", None)  # JDS / pJDS / SELL
    if slots is not None:
        return int(slots)
    width = getattr(matrix, "width", None)  # ELLPACK rectangle
    if width is not None and hasattr(matrix, "padded_rows"):
        return int(width) * int(matrix.padded_rows)
    return matrix.nnz  # CSR / COO


def _extra_bytes_per_slot(tier: str, value_bytes: int) -> float:
    if tier in ("cnative", "numba", "scipy"):
        return 0.0
    if tier == "numpy-blocked":
        return value_bytes / 2.0
    return 2.0 * value_bytes


def _reference_bandwidth() -> float:
    from repro.obs import profile as _profile

    return _profile.reference_bandwidth_gbs()


def predict_spmv(
    matrix,
    *,
    bandwidth_gbs: float | None = None,
    alpha: float | None = None,
    candidates=None,
) -> list[VariantPrediction]:
    """Score every spmv roster candidate; fastest-predicted first.

    ``bandwidth_gbs`` defaults to the measured host copy bandwidth
    (cached process-wide by :mod:`repro.obs.profile`); ``alpha``
    defaults to Eq. 1's ``1/Nnzr`` lower bound.  ``candidates``
    (sequence of :class:`~repro.ops.registry.KernelSpec`) defaults to
    the live registry roster for the matrix.
    """
    from repro.ops.registry import variants_for

    if candidates is None:
        candidates = variants_for(matrix)
    bw = bandwidth_gbs if bandwidth_gbs is not None else _reference_bandwidth()
    if bw <= 0:
        raise ValueError(f"bandwidth must be > 0, got {bw}")
    nrows = max(matrix.nrows, 1)
    nnzr = max(matrix.nnz / nrows, 1e-9)
    if alpha is None:
        alpha = 1.0 / max(nnzr, 1.0)
    v = np.dtype(matrix.dtype).itemsize
    flops = 2.0 * max(matrix.nnz, 1)

    preds = []
    for spec in candidates:
        tier = variant_tier(spec.tags)
        slots = max(_swept_slots(matrix, spec.tags), 1)
        # index itemsize: the registry formats store int64 indices; the
        # scipy delegates narrow to int32 when the matrix allows it
        i = 4 if ("scipy" in spec.tags and matrix.nnz < 2**31) else 8
        base = slots * (v + i + alpha * v) + nrows * 2 * v
        extra = slots * _extra_bytes_per_slot(tier, v)
        # format metadata streams (strip counters, group descriptors);
        # the scipy delegates sweep an unpadded CSR view instead
        aux = (
            0
            if "scipy" in spec.tags
            else int(getattr(matrix, "spmv_aux_traffic_bytes", 0))
        )
        total = int(base + extra + aux)
        eff = bw * TIER_EFFICIENCY[tier]
        secs = total / (eff * 1e9)
        preds.append(
            VariantPrediction(
                name=spec.name,
                tags=tuple(spec.tags),
                tier=tier,
                slots=slots,
                bytes_per_call=total,
                balance=total / flops,
                effective_gbs=eff,
                predicted_seconds=secs,
            )
        )
    preds.sort(key=lambda p: p.predicted_seconds)
    return preds


def prune_roster(
    matrix,
    top_k: int = 3,
    *,
    bandwidth_gbs: float | None = None,
    candidates=None,
) -> tuple[list[str], list[str], list[VariantPrediction]]:
    """``(keep, dropped, predictions)`` for model-guided tuning.

    ``keep`` holds the ``top_k`` fastest-predicted candidate names (in
    predicted order); the autotuner times only those.  Guarantees at
    least one candidate survives whatever ``top_k`` says.
    """
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    preds = predict_spmv(
        matrix, bandwidth_gbs=bandwidth_gbs, candidates=candidates
    )
    keep = [p.name for p in preds[:top_k]]
    dropped = [p.name for p in preds[top_k:]]
    return keep, dropped, preds


def explain_rows(
    preds: list[VariantPrediction],
    *,
    keep: list[str] | None = None,
    timings: dict[str, float] | None = None,
) -> list[dict]:
    """JSON/CLI-friendly rows merging predictions with measurements."""
    rows = []
    for p in preds:
        row = {
            "variant": p.name,
            "tier": p.tier,
            "slots": p.slots,
            "model_bytes": p.bytes_per_call,
            "balance_bytes_per_flop": round(p.balance, 3),
            "predicted_us": round(p.predicted_seconds * 1e6, 2),
            "predicted_gbs": round(p.effective_gbs, 2),
            "kept": keep is None or p.name in keep,
        }
        if timings is not None and p.name in timings:
            t = timings[p.name]
            row["measured_us"] = round(t * 1e6, 2)
            row["measured_gbs"] = (
                round(p.bytes_per_call / t / 1e9, 2) if t > 0 else None
            )
        rows.append(row)
    return rows
