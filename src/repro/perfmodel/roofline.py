"""Roofline helpers: where spMVM sits on the machine's ceiling diagram.

spMVM's arithmetic intensity is `1/B` flops per byte (inverse code
balance, Eq. 1) — far left of the ridge point on any modern machine.
These helpers compute attainable performance, ridge points and the
series needed to draw the classic log-log plot for the devices and
CPU node of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.device import DeviceSpec, Precision

__all__ = ["RooflinePoint", "attainable_gflops", "ridge_intensity", "roofline_series", "spmv_intensity"]


def attainable_gflops(
    intensity: float, peak_gflops: float, bandwidth_gbs: float
) -> float:
    """min(peak, intensity * bandwidth) — the roofline."""
    if intensity < 0:
        raise ValueError(f"intensity must be >= 0, got {intensity}")
    if peak_gflops <= 0 or bandwidth_gbs <= 0:
        raise ValueError("peak and bandwidth must be > 0")
    return min(peak_gflops, intensity * bandwidth_gbs)


def ridge_intensity(peak_gflops: float, bandwidth_gbs: float) -> float:
    """Intensity (flops/byte) where the machine turns compute-bound."""
    if peak_gflops <= 0 or bandwidth_gbs <= 0:
        raise ValueError("peak and bandwidth must be > 0")
    return peak_gflops / bandwidth_gbs


def spmv_intensity(code_balance_bytes_per_flop: float) -> float:
    """Arithmetic intensity of an spMVM with the given code balance."""
    if code_balance_bytes_per_flop <= 0:
        raise ValueError("code balance must be > 0")
    return 1.0 / code_balance_bytes_per_flop


@dataclass(frozen=True)
class RooflinePoint:
    """One workload on one machine's roofline."""

    label: str
    intensity: float
    attainable: float
    peak_gflops: float
    bandwidth_gbs: float

    @property
    def memory_bound(self) -> bool:
        return self.intensity < ridge_intensity(self.peak_gflops, self.bandwidth_gbs)

    @property
    def peak_fraction(self) -> float:
        return self.attainable / self.peak_gflops


def roofline_series(
    device: DeviceSpec,
    precision: Precision = "DP",
    *,
    intensities: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """(intensity, attainable GF/s) samples for plotting one roofline."""
    peak = device.peak_gflops(precision)
    bw = device.bandwidth_gbs
    if intensities is None:
        ridge = ridge_intensity(peak, bw)
        intensities = np.logspace(
            np.log10(ridge / 256.0), np.log10(ridge * 16.0), 60
        )
    att = np.minimum(peak, intensities * bw)
    return intensities, att
