"""Code-balance model of the ELLPACK/pJDS kernels — Eq. (1) of the paper.

The worst-case double-precision code balance is

    B_DP(alpha, Nnzr) = (8 + 4 + 8*alpha + 16/Nnzr) / 2
                      = 6 + 4*alpha + 8/Nnzr     [bytes/flop]

with the per-flop shares of the matrix entry (8 B), its column index
(4 B), the RHS gather (8*alpha B) and the LHS read-modify-write
(16/Nnzr B per row amortised).  ``alpha`` in [1/Nnzr, 1] is the RHS
reuse parameter: 1 = every gather from memory, 1/Nnzr = each element
loaded once (the kappa = 0 case of ref. [4]).

The single-precision variant halves the value and RHS/LHS element
sizes: B_SP = 4 + 2*alpha + 4/Nnzr.
"""

from __future__ import annotations

__all__ = [
    "code_balance_dp",
    "code_balance_sp",
    "code_balance",
    "alpha_bounds",
    "predicted_gflops",
    "alpha_from_balance",
]


def _check(alpha: float, nnzr: float) -> None:
    if nnzr <= 0:
        raise ValueError(f"Nnzr must be > 0, got {nnzr}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")


def code_balance_dp(alpha: float, nnzr: float) -> float:
    """Eq. (1): DP bytes/flop of the ELLPACK/pJDS kernel family."""
    _check(alpha, nnzr)
    return 6.0 + 4.0 * alpha + 8.0 / nnzr


def code_balance_sp(alpha: float, nnzr: float) -> float:
    """SP variant of Eq. (1): 4-byte values, indices stay 4 bytes."""
    _check(alpha, nnzr)
    return 4.0 + 2.0 * alpha + 4.0 / nnzr


def code_balance(alpha: float, nnzr: float, precision: str = "DP") -> float:
    """Dispatch on the paper's precision labels."""
    if precision == "DP":
        return code_balance_dp(alpha, nnzr)
    if precision == "SP":
        return code_balance_sp(alpha, nnzr)
    raise ValueError(f"precision must be 'SP' or 'DP', got {precision!r}")


def alpha_bounds(nnzr: float) -> tuple[float, float]:
    """The paper's admissible range ``1/Nnzr <= alpha <= 1``."""
    if nnzr <= 0:
        raise ValueError(f"Nnzr must be > 0, got {nnzr}")
    return (1.0 / nnzr, 1.0)


def predicted_gflops(
    bandwidth_gbs: float, alpha: float, nnzr: float, precision: str = "DP"
) -> float:
    """Bandwidth-limited performance: BW / B."""
    if bandwidth_gbs <= 0:
        raise ValueError(f"bandwidth must be > 0, got {bandwidth_gbs}")
    return bandwidth_gbs / code_balance(alpha, nnzr, precision)


def alpha_from_balance(balance: float, nnzr: float, precision: str = "DP") -> float:
    """Invert Eq. (1): the alpha a measured code balance implies.

    Useful for comparing the mechanistic simulator (which reports real
    byte counts) against the analytic model.  May exceed 1 when cache
    lines are only partially used.
    """
    if nnzr <= 0:
        raise ValueError(f"Nnzr must be > 0, got {nnzr}")
    if precision == "DP":
        return (balance - 6.0 - 8.0 / nnzr) / 4.0
    if precision == "SP":
        return (balance - 4.0 - 4.0 / nnzr) / 2.0
    raise ValueError(f"precision must be 'SP' or 'DP', got {precision!r}")
