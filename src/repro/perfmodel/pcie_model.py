"""PCIe-inclusive performance model — Eqs. (2), (3), (4) of the paper.

Wall-clock split of one double-precision spMVM with host transfers:

    T_MVM = (8 N / B_GPU) * (Nnzr * (alpha + 3/2) + 2)        (Eq. 2)
    T_PCI = 16 N / B_PCI

and the derived admissibility bounds on the average row length:

* more than 50 % PCIe penalty (T_MVM <= T_PCI) when

      Nnzr <= 2 * (B_GPU/B_PCI - 1) / (alpha + 3/2)           (Eq. 3)

* less than 10 % PCIe penalty (T_MVM >= 10 T_PCI) when

      Nnzr >= (20 * B_GPU/B_PCI - 2) / (alpha + 3/2)          (Eq. 4)

These are the equations that rule out HMEp (Nnzr ~ 15) and sAMG
(Nnzr ~ 7) for GPU acceleration and admit the DLR/UHBR matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "t_mvm",
    "t_pci",
    "nnzr_upper_bound_50pct",
    "nnzr_lower_bound_10pct",
    "PCIeAnalysis",
    "analyse",
]


def _check(n: int, bw_gpu: float, bw_pci: float) -> None:
    if n <= 0:
        raise ValueError(f"N must be > 0, got {n}")
    if bw_gpu <= 0 or bw_pci <= 0:
        raise ValueError("bandwidths must be > 0")


def t_mvm(n: int, nnzr: float, alpha: float, bw_gpu_bytes: float) -> float:
    """Eq. (2), first part: pure kernel wall-clock (double precision)."""
    _check(n, bw_gpu_bytes, 1.0)
    if nnzr <= 0:
        raise ValueError(f"Nnzr must be > 0, got {nnzr}")
    return 8.0 * n / bw_gpu_bytes * (nnzr * (alpha + 1.5) + 2.0)


def t_pci(n: int, bw_pci_bytes: float) -> float:
    """Eq. (2), second part: RHS upload + LHS download (DP)."""
    _check(n, 1.0, bw_pci_bytes)
    return 16.0 * n / bw_pci_bytes


def nnzr_upper_bound_50pct(bw_ratio: float, alpha: float) -> float:
    """Eq. (3): below this Nnzr the PCIe penalty exceeds 50 %."""
    if bw_ratio <= 0:
        raise ValueError(f"bandwidth ratio must be > 0, got {bw_ratio}")
    return 2.0 * (bw_ratio - 1.0) / (alpha + 1.5)


def nnzr_lower_bound_10pct(bw_ratio: float, alpha: float) -> float:
    """Eq. (4): above this Nnzr the PCIe penalty stays below 10 %."""
    if bw_ratio <= 0:
        raise ValueError(f"bandwidth ratio must be > 0, got {bw_ratio}")
    return (20.0 * bw_ratio - 2.0) / (alpha + 1.5)


@dataclass(frozen=True)
class PCIeAnalysis:
    """Model evaluation for one matrix on one device configuration."""

    n: int
    nnzr: float
    alpha: float
    bw_gpu_gbs: float
    bw_pci_gbs: float
    t_mvm_s: float
    t_pci_s: float
    nnzr_bound_50pct: float
    nnzr_bound_10pct: float

    @property
    def bw_ratio(self) -> float:
        return self.bw_gpu_gbs / self.bw_pci_gbs

    @property
    def pcie_penalty(self) -> float:
        """T_PCI / T_MVM."""
        return self.t_pci_s / self.t_mvm_s

    @property
    def kernel_gflops(self) -> float:
        return 2.0 * self.n * self.nnzr / self.t_mvm_s * 1e-9

    @property
    def effective_gflops(self) -> float:
        """Including PCIe transfers (the 3.7 / 2.3 / 10.9 GF/s numbers)."""
        return 2.0 * self.n * self.nnzr / (self.t_mvm_s + self.t_pci_s) * 1e-9

    @property
    def gpu_worthwhile(self) -> bool:
        """Above the 50 %-penalty threshold of Eq. (3)."""
        return self.nnzr > self.nnzr_bound_50pct


def analyse(
    n: int,
    nnzr: float,
    alpha: float,
    *,
    bw_gpu_gbs: float = 91.0,
    bw_pci_gbs: float = 6.0,
) -> PCIeAnalysis:
    """Evaluate Eqs. (2)-(4) for one matrix/device combination."""
    ratio = bw_gpu_gbs / bw_pci_gbs
    return PCIeAnalysis(
        n=n,
        nnzr=nnzr,
        alpha=alpha,
        bw_gpu_gbs=bw_gpu_gbs,
        bw_pci_gbs=bw_pci_gbs,
        t_mvm_s=t_mvm(n, nnzr, alpha, bw_gpu_gbs * 1e9),
        t_pci_s=t_pci(n, bw_pci_gbs * 1e9),
        nnzr_bound_50pct=nnzr_upper_bound_50pct(ratio, alpha),
        nnzr_bound_10pct=nnzr_lower_bound_10pct(ratio, alpha),
    )
